// Unit tests for the discrete-event engine: EventQueue, Simulator,
// CalloutTable, Rng, and time helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/callout.h"
#include "src/sim/event_queue.h"
#include "src/sim/krace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ikdp {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(2), 2ll * 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Microseconds(1500)), 1.5);
}

TEST(TimeTest, FractionalConstructorsRound) {
  EXPECT_EQ(MillisecondsF(0.5), Microseconds(500));
  EXPECT_EQ(MicrosecondsF(0.0005), Nanoseconds(1));  // rounds 0.5ns up
  EXPECT_EQ(SecondsF(1e-9), 1);
}

TEST(TimeTest, TransferTime) {
  // 1 MB at 1 MB/s is one second.
  EXPECT_EQ(TransferTime(1000000, 1e6), kSecond);
  // 8 KB at 20 MB/s.
  EXPECT_EQ(TransferTime(8192, 20e6), SecondsF(8192 / 20e6));
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
  EXPECT_EQ(FormatDuration(Milliseconds(5)), "5.000ms");
  EXPECT_EQ(FormatDuration(Microseconds(7)), "7.000us");
  EXPECT_EQ(FormatDuration(42), "42ns");
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTime when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTime when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  EventId a = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.size(), 1u);
  SimTime when = 0;
  q.PopNext(&when)();
  EXPECT_EQ(when, 20);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelFiredEventReturnsFalse) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  SimTime when = 0;
  q.PopNext(&when);
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.After(Milliseconds(5), [&] { seen.push_back(sim.Now()); });
  sim.After(Milliseconds(1), [&] { seen.push_back(sim.Now()); });
  EXPECT_EQ(sim.Run(), Milliseconds(5));
  EXPECT_EQ(seen, (std::vector<SimTime>{Milliseconds(1), Milliseconds(5)}));
}

TEST(SimulatorTest, NestedSchedulingFromHandlers) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10) {
      sim.After(Microseconds(10), hop);
    }
  };
  sim.After(0, hop);
  sim.Run();
  EXPECT_EQ(hops, 10);
  EXPECT_EQ(sim.Now(), Microseconds(90));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.After(Milliseconds(1), [&] { ++fired; });
  sim.After(Milliseconds(10), [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(Milliseconds(5)), Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.RunUntil(Seconds(3)), Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.After(Milliseconds(2), [] {});
  sim.RunUntil(Milliseconds(2));
  bool fired = false;
  sim.After(-5, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), Milliseconds(2));
}

TEST(SimulatorTest, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.After(Milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.After(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

class CalloutTest : public ::testing::Test {
 protected:
  Simulator sim_;
  CalloutTable callouts_{&sim_, /*hz=*/256};
};

TEST_F(CalloutTest, TickDuration) {
  EXPECT_EQ(callouts_.TickDuration(), kSecond / 256);
  EXPECT_EQ(callouts_.hz(), 256);
}

TEST_F(CalloutTest, TimeoutFiresOnTickBoundary) {
  SimTime fired_at = -1;
  callouts_.Timeout([&] { fired_at = sim_.Now(); }, 1);
  sim_.Run();
  EXPECT_EQ(fired_at, callouts_.TickDuration());
  EXPECT_EQ(fired_at % callouts_.TickDuration(), 0);
}

TEST_F(CalloutTest, TimeoutMultipleTicks) {
  SimTime fired_at = -1;
  callouts_.Timeout([&] { fired_at = sim_.Now(); }, 5);
  sim_.Run();
  EXPECT_EQ(fired_at, 5 * callouts_.TickDuration());
}

TEST_F(CalloutTest, ScheduleHeadRunsBeforeFifoEntriesOnSameTick) {
  std::vector<int> order;
  callouts_.Timeout([&] { order.push_back(1); }, 1);
  callouts_.Timeout([&] { order.push_back(2); }, 1);
  callouts_.ScheduleHead([&] { order.push_back(0); });
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(CalloutTest, ScheduleHeadFromHandlerLandsOnNextTick) {
  std::vector<SimTime> fire_times;
  callouts_.ScheduleHead([&] {
    fire_times.push_back(sim_.Now());
    callouts_.ScheduleHead([&] { fire_times.push_back(sim_.Now()); });
  });
  sim_.Run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[1] - fire_times[0], callouts_.TickDuration());
}

TEST_F(CalloutTest, UntimeoutRemovesPendingEntry) {
  bool fired = false;
  CalloutId id = callouts_.Timeout([&] { fired = true; }, 3);
  EXPECT_TRUE(callouts_.Untimeout(id));
  EXPECT_FALSE(callouts_.Untimeout(id));
  sim_.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(callouts_.Pending(), 0u);
}

TEST_F(CalloutTest, ObserverSeesBatchSizes) {
  std::vector<int> batches;
  callouts_.set_softclock_observer([&](int n) { batches.push_back(n); });
  callouts_.Timeout([] {}, 1);
  callouts_.Timeout([] {}, 1);
  callouts_.Timeout([] {}, 2);
  sim_.Run();
  EXPECT_EQ(batches, (std::vector<int>{2, 1}));
  EXPECT_EQ(callouts_.softclock_runs(), 2u);
}

TEST_F(CalloutTest, MidTickTimeoutRoundsUpToNextEdge) {
  // Advance to the middle of a tick, then ask for a 1-tick timeout: it must
  // fire at the next edge, not a full tick later.
  sim_.After(callouts_.TickDuration() / 2, [&] {
    callouts_.Timeout([] {}, 1);
  });
  sim_.Run();
  EXPECT_EQ(sim_.Now(), callouts_.TickDuration());
}


TEST_F(CalloutTest, UntimeoutAfterFireReturnsFalse) {
  CalloutId id = callouts_.Timeout([] {}, 1);
  sim_.Run();
  EXPECT_FALSE(callouts_.Untimeout(id));
}

TEST_F(CalloutTest, IndependentTablesDoNotInterfere) {
  CalloutTable other(&sim_, 100);
  std::vector<int> order;
  callouts_.Timeout([&] { order.push_back(256); }, 1);   // fires at 1/256 s
  other.Timeout([&] { order.push_back(100); }, 1);       // fires at 1/100 s
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{256, 100}));
}

// --- same-timestamp tie-break perturbation (src/sim/krace.h) ---
//
// The event queue's only schedule freedom is the order of same-timestamp
// events; SetPerturbSeed re-keys that tie-break by a seeded hash.  These
// tests pin the legality envelope: every seed yields a permutation of the
// same event set, seed 0 is the historical insertion order, equal seeds
// reproduce exactly, and causality (a child scheduled by a same-time event
// runs after its creator) survives every seed.

std::vector<int> SameTimeFireOrder(uint64_t seed) {
  Krace().SetPerturbSeed(seed);
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.At(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  Krace().SetPerturbSeed(0);
  return order;
}

TEST(PerturbTest, SeedZeroIsInsertionOrder) {
  EXPECT_EQ(SameTimeFireOrder(0), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PerturbTest, EverySeedYieldsAPermutation) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<int> order = SameTimeFireOrder(seed);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
        << "seed " << seed << " dropped or duplicated events";
  }
}

TEST(PerturbTest, SameSeedReproducesExactly) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(SameTimeFireOrder(seed), SameTimeFireOrder(seed))
        << "seed " << seed;
  }
}

TEST(PerturbTest, SomeSeedActuallyPermutes) {
  // The perturbation would be vacuous if every seed reproduced insertion
  // order; with 8 events and 8 seeds, at least one must differ.
  const std::vector<int> base = SameTimeFireOrder(0);
  bool permuted = false;
  for (uint64_t seed = 1; seed <= 8 && !permuted; ++seed) {
    permuted = (SameTimeFireOrder(seed) != base);
  }
  EXPECT_TRUE(permuted);
}

TEST(PerturbTest, DistinctTimestampsStayClockOrdered) {
  for (uint64_t seed = 0; seed <= 4; ++seed) {
    Krace().SetPerturbSeed(seed);
    Simulator sim;
    std::vector<int> order;
    // Scheduled in reverse time order on purpose.
    for (int i = 7; i >= 0; --i) {
      sim.At(Milliseconds(i + 1), [&order, i] { order.push_back(i); });
    }
    sim.Run();
    Krace().SetPerturbSeed(0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
        << "seed " << seed;
  }
}

TEST(PerturbTest, ChildAlwaysRunsAfterItsCreator) {
  // Every tie-break permutation is a LEGAL schedule: an event scheduled by
  // a same-timestamp event pops after its creator under any key order,
  // because the creator had already been popped when it scheduled.
  for (uint64_t seed = 0; seed <= 8; ++seed) {
    Krace().SetPerturbSeed(seed);
    Simulator sim;
    std::vector<int> order;  // parent p recorded as p, child as p + 100
    for (int p = 0; p < 4; ++p) {
      sim.At(Milliseconds(1), [&sim, &order, p] {
        order.push_back(p);
        sim.After(0, [&order, p] { order.push_back(p + 100); });
      });
    }
    sim.Run();
    Krace().SetPerturbSeed(0);
    ASSERT_EQ(order.size(), 8u) << "seed " << seed;
    for (int p = 0; p < 4; ++p) {
      const auto parent = std::find(order.begin(), order.end(), p);
      const auto child = std::find(order.begin(), order.end(), p + 100);
      ASSERT_NE(parent, order.end());
      ASSERT_NE(child, order.end());
      EXPECT_LT(parent - order.begin(), child - order.begin())
          << "seed " << seed << ": child of " << p << " ran before it";
    }
  }
}

TEST(PerturbTest, CancellationWorksUnderPerturbation) {
  for (uint64_t seed = 0; seed <= 4; ++seed) {
    Krace().SetPerturbSeed(seed);
    Simulator sim;
    int fired = 0;
    std::vector<EventId> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(sim.At(Milliseconds(1), [&fired] { ++fired; }));
    }
    EXPECT_TRUE(sim.Cancel(ids[1]));
    EXPECT_TRUE(sim.Cancel(ids[4]));
    sim.Run();
    Krace().SetPerturbSeed(0);
    EXPECT_EQ(fired, 4) << "seed " << seed;
  }
}

TEST(PerturbTest, SameTickCalloutsKeepArmingOrderUnderAnySeed) {
  // Same-tick callouts run inside ONE softclock event in arming order; the
  // tie-break permutes events, never the intra-event list walk, so callout
  // FIFO order is schedule-independent by construction.
  for (uint64_t seed = 0; seed <= 4; ++seed) {
    Krace().SetPerturbSeed(seed);
    Simulator sim;
    CalloutTable callouts(&sim, /*hz=*/256);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
      callouts.Timeout([&order, i] { order.push_back(i); }, 2);
    }
    sim.Run();
    Krace().SetPerturbSeed(0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3})) << "seed " << seed;
  }
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(2024);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 10);
  }
}

}  // namespace
}  // namespace ikdp
