// Unit tests for the coroutine task layer.

#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ikdp {
namespace {

// An awaitable that suspends and resumes via a simulator event after `delay`.
SuspendAndCall SimSleep(Simulator* sim, SimDuration delay) {
  return SuspendAndCall(
      [sim, delay](std::coroutine_handle<> h) { sim->After(delay, [h] { h.resume(); }); });
}

TEST(TaskTest, RootTaskRunsOnStart) {
  bool ran = false;
  auto body = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  Task<> t = body();
  EXPECT_FALSE(ran);  // lazy start
  bool done = false;
  t.Start([&] { done = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(done);
  EXPECT_TRUE(t.done());
}

TEST(TaskTest, SuspendsAcrossSimEvents) {
  Simulator sim;
  std::vector<SimTime> stamps;
  auto body = [&]() -> Task<> {
    stamps.push_back(sim.Now());
    co_await SimSleep(&sim, Milliseconds(3));
    stamps.push_back(sim.Now());
    co_await SimSleep(&sim, Milliseconds(4));
    stamps.push_back(sim.Now());
  };
  Task<> t = body();
  bool done = false;
  t.Start([&] { done = true; });
  EXPECT_FALSE(done);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, Milliseconds(3), Milliseconds(7)}));
}

TEST(TaskTest, NestedTasksChainValues) {
  Simulator sim;
  auto leaf = [&](int x) -> Task<int> {
    co_await SimSleep(&sim, Milliseconds(1));
    co_return x * 2;
  };
  int result = 0;
  auto root = [&]() -> Task<> {
    const int a = co_await leaf(10);
    const int b = co_await leaf(a);
    result = b;
  };
  Task<> t = root();
  t.Start();
  sim.Run();
  EXPECT_EQ(result, 40);
  EXPECT_EQ(sim.Now(), Milliseconds(2));
}

TEST(TaskTest, DeeplyNestedSynchronousTasksDontOverflow) {
  // Symmetric transfer means a long chain of immediately-completing child
  // tasks must not grow the real stack.
  std::function<Task<int>(int)> countdown = [&](int n) -> Task<int> {
    if (n == 0) {
      co_return 0;
    }
    co_return 1 + co_await countdown(n - 1);
  };
  int result = -1;
  auto root = [&]() -> Task<> { result = co_await countdown(50000); };
  Task<> t = root();
  t.Start();
  EXPECT_EQ(result, 50000);
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  auto thrower = []() -> Task<int> {
    throw std::runtime_error("boom");
    co_return 0;  // unreachable; makes this a coroutine
  };
  bool caught = false;
  auto root = [&]() -> Task<> {
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
  };
  Task<> t = root();
  t.Start();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, TwoRootsInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  auto make = [&](int id, SimDuration step) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await SimSleep(&sim, step);
      order.push_back(id);
    }
  };
  Task<> a = make(1, Milliseconds(2));
  Task<> b = make(2, Milliseconds(3));
  a.Start();
  b.Start();
  sim.Run();
  // a fires at 2,4,6; b at 3,6,9.  At t=6 b's event was scheduled first
  // (inserted at t=3, before a's t=4 insertion), so b precedes a there.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(TaskTest, MoveTransfersOwnership) {
  auto body = []() -> Task<int> { co_return 7; };
  Task<int> a = body();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
}

TEST(TaskTest, VoidTaskAwaitable) {
  Simulator sim;
  int steps = 0;
  auto child = [&]() -> Task<> {
    ++steps;
    co_await SimSleep(&sim, Milliseconds(1));
    ++steps;
  };
  auto root = [&]() -> Task<> {
    co_await child();
    ++steps;
  };
  Task<> t = root();
  t.Start();
  sim.Run();
  EXPECT_EQ(steps, 3);
}

}  // namespace
}  // namespace ikdp
