// Cross-cutting invariant tests:
//  * the CPU accounting identity (process + switch + interrupt <= elapsed)
//    over randomized mixed workloads;
//  * a model-checked EventQueue fuzz (random schedule/cancel/pop against a
//    reference multimap);
//  * the machine report's coherence.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/disk.h"
#include "src/metrics/report.h"
#include "src/os/kernel.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 7 + 1); }

// --- EventQueue model fuzz ---

class EventQueueFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventQueue q;
  // Reference: firing time -> insertion sequence (fire order within a time).
  struct ModelEvent {
    EventId id;
    int payload;
  };
  std::multimap<SimTime, ModelEvent> model;
  std::vector<int> fired_q;
  std::vector<int> fired_model;
  int next_payload = 0;
  SimTime now = 0;

  for (int step = 0; step < 2000; ++step) {
    const uint64_t op = rng.Below(10);
    if (op < 5) {
      // Schedule at now + random delay.
      const SimTime when = now + static_cast<SimTime>(rng.Below(1000));
      const int payload = next_payload++;
      const EventId id = q.Schedule(when, [payload, &fired_q] { fired_q.push_back(payload); });
      model.emplace(when, ModelEvent{id, payload});
    } else if (op < 7 && !model.empty()) {
      // Cancel a random live event.
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      EXPECT_TRUE(q.Cancel(it->second.id));
      EXPECT_FALSE(q.Cancel(it->second.id));  // double cancel refused
      model.erase(it);
    } else if (!q.empty()) {
      // Pop the earliest event; it must match the model's earliest (ties by
      // insertion order = lowest id).
      auto it = model.begin();
      auto best = it;
      for (; it != model.end() && it->first == best->first; ++it) {
        if (it->second.id < best->second.id) {
          best = it;
        }
      }
      SimTime when = 0;
      q.PopNext(&when)();
      EXPECT_EQ(when, best->first);
      EXPECT_GE(when, now);
      now = when;
      fired_model.push_back(best->second.payload);
      model.erase(best);
      ASSERT_EQ(fired_q.back(), fired_model.back()) << "step " << step;
    }
    ASSERT_EQ(q.size(), model.size()) << "step " << step;
  }
  // Drain the remainder.
  while (!q.empty()) {
    SimTime when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired_q.size(), fired_model.size() + (fired_q.size() - fired_model.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Values(11, 22, 33, 44));

// --- CPU accounting identity over mixed workloads ---

class AccountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccountingTest, BusyNeverExceedsElapsed) {
  Rng rng(GetParam());
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  RamDisk ram(&kernel.cpu(), 16 << 20);
  DiskDriver scsi(&kernel.cpu(), &sim, Rz58Params());
  FileSystem* ram_fs = kernel.MountFs(&ram, "r");
  FileSystem* scsi_fs = kernel.MountFs(&scsi, "s");
  ram_fs->CreateFileInstant("a", 16 * kBlockSize, Fill);
  scsi_fs->CreateFileInstant("b", 16 * kBlockSize, Fill);

  // A CPU spinner, a splicer, and a read/write copier, all at once.
  bool stop = false;
  kernel.Spawn("spin", [&](Process& p) -> Task<> {
    while (!stop) {
      co_await kernel.cpu().Use(p, Microseconds(500 + rng.Below(1000)));
    }
  });
  kernel.Spawn("splicer", [&](Process& p) -> Task<> {
    const int s = co_await kernel.Open(p, "r:a", kOpenRead);
    const int d = co_await kernel.Open(p, "s:acopy", kOpenWrite | kOpenCreate);
    co_await kernel.Splice(p, s, d, kSpliceEof);
  });
  kernel.Spawn("copier", [&](Process& p) -> Task<> {
    const int s = co_await kernel.Open(p, "s:b", kOpenRead);
    const int d = co_await kernel.Open(p, "r:bcopy", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> buf;
    int64_t n = 0;
    while ((n = co_await kernel.Read(p, s, 8192, &buf)) > 0) {
      co_await kernel.Write(p, d, buf.data(), n);
    }
    co_await kernel.FsyncFd(p, d);
    stop = true;
  });
  sim.Run();
  ASSERT_EQ(kernel.cpu().alive(), 0);

  const SimTime elapsed = sim.Now();
  const CpuSystem::Stats& s = kernel.cpu().stats();
  const SimDuration busy = s.process_work + s.context_switch + s.interrupt_work;
  EXPECT_GT(elapsed, 0);
  EXPECT_LE(busy, elapsed) << "CPU accounting exceeded wall time";
  // The spinner kept the machine essentially saturated.
  EXPECT_GE(IdleFraction(kernel, elapsed), 0.0);
  EXPECT_LT(IdleFraction(kernel, elapsed), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingTest, ::testing::Values(5, 6, 7));

TEST(ReportTest, PrintsCoherentSummary) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  RamDisk a(&kernel.cpu(), 16 << 20);
  RamDisk b(&kernel.cpu(), 16 << 20);
  FileSystem* fsa = kernel.MountFs(&a, "a");
  kernel.MountFs(&b, "b");
  fsa->CreateFileInstant("f", 8 * kBlockSize, Fill);
  kernel.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel.Splice(p, s, d, kSpliceEof);
  });
  sim.Run();
  std::ostringstream os;
  PrintMachineReport(os, kernel);
  const std::string r = os.str();
  EXPECT_NE(r.find("machine report"), std::string::npos);
  EXPECT_NE(r.find("1 started, 1 completed"), std::string::npos);
  EXPECT_NE(r.find("65536 bytes moved"), std::string::npos);
  EXPECT_NE(r.find("syscalls"), std::string::npos);
  EXPECT_GE(IdleFraction(kernel, sim.Now()), 0.0);
}

}  // namespace
}  // namespace ikdp
