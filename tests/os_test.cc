// Tests for the Kernel syscall layer: open/close/read/write/lseek/fcntl/
// fsync semantics and error paths, pause/itimer/SIGIO, socket descriptors,
// and multi-process behaviour.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dev/frame_source.h"
#include "src/dev/null_device.h"
#include "src/dev/paced_sink.h"
#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 11 + 3) & 0xff); }

class OsTest : public ::testing::Test {
 protected:
  OsTest() : kernel_(&sim_, DecStation5000Costs()), ram_(&kernel_.cpu(), 16 << 20) {
    fs_ = kernel_.MountFs(&ram_, "fs");
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk ram_;
  FileSystem* fs_;
};

TEST_F(OsTest, OpenMissingFileFails) {
  Run([&](Process& p) -> Task<> {
    EXPECT_EQ(co_await kernel_.Open(p, "fs:nope", kOpenRead), -1);
    EXPECT_EQ(co_await kernel_.Open(p, "nofs:x", kOpenRead), -1);
    EXPECT_EQ(co_await kernel_.Open(p, "/dev/nodev", kOpenRead), -1);
    EXPECT_EQ(co_await kernel_.Open(p, "garbage", kOpenRead), -1);
  });
}

TEST_F(OsTest, OpenCreateMakesFile) {
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:new", kOpenWrite | kOpenCreate);
    EXPECT_GE(fd, 3);
    EXPECT_NE(fs_->Lookup("new"), nullptr);
    EXPECT_EQ(co_await kernel_.Close(p, fd), 0);
  });
}

TEST_F(OsTest, OpenTruncEmptiesFile) {
  fs_->CreateFileInstant("t", 3 * kBlockSize, Fill);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:t", kOpenWrite | kOpenTrunc);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(fs_->Lookup("t")->size, 0);
  });
}

TEST_F(OsTest, ReadWriteRoundTripThroughFds) {
  Run([&](Process& p) -> Task<> {
    const int w = co_await kernel_.Open(p, "fs:f", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> data(5000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = Fill(static_cast<int64_t>(i));
    }
    EXPECT_EQ(co_await kernel_.Write(p, w, data), 5000);
    co_await kernel_.Close(p, w);
    const int r = co_await kernel_.Open(p, "fs:f", kOpenRead);
    std::vector<uint8_t> back;
    EXPECT_EQ(co_await kernel_.Read(p, r, 10000, &back), 5000);
    EXPECT_EQ(back, data);
    // Sequential reads advance the offset; at EOF read returns 0.
    EXPECT_EQ(co_await kernel_.Read(p, r, 10, &back), 0);
  });
}

TEST_F(OsTest, LseekRepositions) {
  fs_->CreateFileInstant("s", 2 * kBlockSize, Fill);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:s", kOpenRead);
    EXPECT_EQ(co_await kernel_.Lseek(p, fd, kBlockSize), kBlockSize);
    std::vector<uint8_t> back;
    co_await kernel_.Read(p, fd, 4, &back);
    EXPECT_EQ(back[0], Fill(kBlockSize));
    // Negative offsets and bad fds fail.
    EXPECT_EQ(co_await kernel_.Lseek(p, fd, -5), -1);
    EXPECT_EQ(co_await kernel_.Lseek(p, 99, 0), -1);
  });
}

TEST_F(OsTest, BadFdOperationsFail) {
  Run([&](Process& p) -> Task<> {
    std::vector<uint8_t> buf;
    EXPECT_EQ(co_await kernel_.Read(p, 42, 10, &buf), -1);
    EXPECT_EQ(co_await kernel_.Write(p, 42, nullptr, 0), -1);
    EXPECT_EQ(co_await kernel_.Close(p, 42), -1);
    EXPECT_EQ(co_await kernel_.Fcntl(p, 42, true), -1);
    EXPECT_EQ(co_await kernel_.FsyncFd(p, 42), -1);
  });
}

TEST_F(OsTest, CloseInvalidatesFd) {
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:c", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.Close(p, fd), 0);
    std::vector<uint8_t> buf;
    EXPECT_EQ(co_await kernel_.Read(p, fd, 10, &buf), -1);
    EXPECT_EQ(co_await kernel_.Close(p, fd), -1);  // double close
  });
}

TEST_F(OsTest, FsyncPushesDelayedWrites) {
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:d", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> data(kBlockSize, 0x3C);
    co_await kernel_.Write(p, fd, data);
    EXPECT_EQ(ram_.stats().writes, 0u);  // delayed
    EXPECT_EQ(co_await kernel_.FsyncFd(p, fd), 0);
    EXPECT_GT(ram_.stats().writes, 0u);
  });
}

TEST_F(OsTest, FcntlSetsAndClearsFasync) {
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "fs:a", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.Fcntl(p, fd, true), 0);
    EXPECT_TRUE(kernel_.GetFile(p, fd)->fasync);
    EXPECT_EQ(co_await kernel_.Fcntl(p, fd, false), 0);
    EXPECT_FALSE(kernel_.GetFile(p, fd)->fasync);
  });
}

TEST_F(OsTest, SpliceStatusTracksAsyncSpliceInFlight) {
  // splice_status is the FASYNC completion probe for offset-less endpoints:
  // 1 while an async splice involving the fd is in flight, 0 once it
  // finished (cleared before SIGIO posts, so a handler can trust a 0), -1
  // on a bad fd.
  fs_->CreateFileInstant("src", 8 * kBlockSize, Fill);
  int sigio = 0;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { ++sigio; });
    const int src = co_await kernel_.Open(p, "fs:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "fs:dst", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, 99), -1);
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, src), 0);

    EXPECT_EQ(co_await kernel_.Fcntl(p, dst, true), 0);  // FASYNC -> async splice
    EXPECT_EQ(co_await kernel_.Splice(p, src, dst, 8 * kBlockSize), 0);
    // Both endpoints report in-flight while the stream moves.
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, src), 1);
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, dst), 1);

    co_await kernel_.Pause(p);  // SIGIO announces completion
    EXPECT_EQ(sigio, 1);
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, src), 0);
    EXPECT_EQ(co_await kernel_.SpliceStatus(p, dst), 0);
    EXPECT_EQ(co_await kernel_.SpliceError(p, dst), 0);
    EXPECT_EQ(co_await kernel_.Tell(p, dst), 8 * kBlockSize);
  });
}

TEST_F(OsTest, PauseWaitsForSignalAndRunsHandler) {
  Process* proc = nullptr;
  SimTime woke = -1;
  int handled = 0;
  kernel_.Spawn("waiter", [&](Process& p) -> Task<> {
    proc = &p;
    kernel_.Sigaction(p, kSigAlrm, [&] { ++handled; });
    co_await kernel_.Pause(p);
    woke = sim_.Now();
  });
  sim_.After(Milliseconds(25), [&] { kernel_.cpu().Post(*proc, kSigAlrm); });
  sim_.Run();
  EXPECT_GE(woke, Milliseconds(25));
  EXPECT_EQ(handled, 1);
}

TEST_F(OsTest, ItimerFiresPeriodically) {
  std::vector<SimTime> fires;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigAlrm, [&] { fires.push_back(sim_.Now()); });
    kernel_.Setitimer(p, Milliseconds(100));
    for (int i = 0; i < 5; ++i) {
      co_await kernel_.Pause(p);
    }
    kernel_.StopItimer(p);
  });
  ASSERT_EQ(fires.size(), 5u);
  for (size_t i = 1; i < fires.size(); ++i) {
    const SimDuration gap = fires[i] - fires[i - 1];
    // Callout-tick quantized ~100 ms intervals.
    EXPECT_GE(gap, Milliseconds(90));
    EXPECT_LE(gap, Milliseconds(110));
  }
}

TEST_F(OsTest, StopItimerHaltsSignals) {
  int fires = 0;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigAlrm, [&] { ++fires; });
    kernel_.Setitimer(p, Milliseconds(50));
    co_await kernel_.Pause(p);
    kernel_.StopItimer(p);
    co_await kernel_.SleepFor(p, Milliseconds(500));
  });
  EXPECT_EQ(fires, 1);
}

TEST_F(OsTest, SleepForAdvancesTime) {
  SimTime end = -1;
  Run([&](Process& p) -> Task<> {
    co_await kernel_.SleepFor(p, Milliseconds(123));
    end = sim_.Now();
  });
  EXPECT_GE(end, Milliseconds(123));
  EXPECT_LT(end, Milliseconds(125));
}

TEST_F(OsTest, DeviceFileWriteBlocksAtDevicePace) {
  PacedSink dac(&sim_, "dac", /*rate_bps=*/8192.0, /*fifo_bytes=*/8192);
  kernel_.RegisterCharDev("dac", &dac);
  SimTime end = -1;
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "/dev/dac", kOpenWrite);
    std::vector<uint8_t> data(3 * 8192, 1);
    EXPECT_EQ(co_await kernel_.Write(p, fd, data), 3 * 8192);
    end = sim_.Now();
  });
  // 3 chunks into an 8 KB FIFO draining at 8 KB/s: the last accepted write
  // waits for ~2 chunks to drain.
  EXPECT_GT(end, MillisecondsF(1900.0));
}

TEST_F(OsTest, SocketFdsReadAndWrite) {
  UdpSocket a(&kernel_.cpu());
  UdpSocket b(&kernel_.cpu());
  NetworkLink wire(&sim_, LoopbackParams());
  a.ConnectTo(&b, &wire);
  std::string got;
  kernel_.Spawn("tx", [&](Process& p) -> Task<> {
    const int fd = kernel_.OpenSocket(p, &a);
    const std::vector<uint8_t> msg{'h', 'i', '!'};
    co_await kernel_.Write(p, fd, msg);
  });
  kernel_.Spawn("rx", [&](Process& p) -> Task<> {
    const int fd = kernel_.OpenSocket(p, &b);
    std::vector<uint8_t> buf;
    const int64_t n = co_await kernel_.Read(p, fd, 100, &buf);
    got.assign(buf.begin(), buf.begin() + n);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(got, "hi!");
}

TEST_F(OsTest, FdTablesArePerProcess) {
  int fd_a = -1;
  int fd_b = -1;
  int64_t cross_read = 0;
  kernel_.Spawn("a", [&](Process& p) -> Task<> {
    fd_a = co_await kernel_.Open(p, "fs:pa", kOpenWrite | kOpenCreate);
  });
  kernel_.Spawn("b", [&](Process& p) -> Task<> {
    fd_b = co_await kernel_.Open(p, "fs:pb", kOpenWrite | kOpenCreate);
    // a's descriptor number is not visible here unless b opened it too.
    std::vector<uint8_t> buf;
    cross_read = co_await kernel_.Read(p, fd_b + 1, 10, &buf);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(fd_a, 3);
  EXPECT_EQ(fd_b, 3);  // independent numbering
  EXPECT_EQ(cross_read, -1);
}

TEST_F(OsTest, SyscallsChargeTrapOverhead) {
  Process* proc = nullptr;
  kernel_.Spawn("t", [&](Process& p) -> Task<> {
    proc = &p;
    for (int i = 0; i < 10; ++i) {
      (void)co_await kernel_.Open(p, "fs:nope", kOpenRead);
    }
  });
  sim_.Run();
  EXPECT_GE(proc->stats().cpu_time, 10 * kernel_.cpu().costs().syscall_overhead);
}

TEST_F(OsTest, SpliceOnDeviceSourceBoundedByBytes) {
  NullDevice null(&sim_);
  PacedSink dac(&sim_, "fastdac", 10e6, 1 << 20);
  kernel_.RegisterCharDev("null", &null);
  kernel_.RegisterCharDev("dac", &dac);
  fs_->CreateFileInstant("audio", 4 * kBlockSize, Fill);
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "fs:audio", kOpenRead);
    const int dst = co_await kernel_.Open(p, "/dev/dac", kOpenWrite);
    // Two half-file splices.
    EXPECT_EQ(co_await kernel_.Splice(p, src, dst, 2 * kBlockSize), 2 * kBlockSize);
    EXPECT_EQ(co_await kernel_.Splice(p, src, dst, 2 * kBlockSize), 2 * kBlockSize);
    EXPECT_EQ(co_await kernel_.Splice(p, src, dst, 2 * kBlockSize), 0);  // EOF
  });
  EXPECT_EQ(dac.bytes_accepted(), 4 * kBlockSize);
}

TEST_F(OsTest, ManyProcessesShareTheMachine) {
  constexpr int kProcs = 8;
  int done = 0;
  for (int i = 0; i < kProcs; ++i) {
    kernel_.Spawn("worker", [&, i](Process& p) -> Task<> {
      const std::string name = "fs:w" + std::to_string(i);
      const int fd = co_await kernel_.Open(p, name, kOpenWrite | kOpenCreate);
      std::vector<uint8_t> data(kBlockSize, static_cast<uint8_t>(i));
      co_await kernel_.Write(p, fd, data);
      co_await kernel_.FsyncFd(p, fd);
      co_await kernel_.Close(p, fd);
      ++done;
    });
  }
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(done, kProcs);
  for (int i = 0; i < kProcs; ++i) {
    Inode* ip = fs_->Lookup("w" + std::to_string(i));
    ASSERT_NE(ip, nullptr);
    EXPECT_EQ(ip->size, kBlockSize);
  }
}


TEST_F(OsTest, DupSharesOpenFileAndOffset) {
  fs_->CreateFileInstant("dd", 2 * kBlockSize, Fill);
  Run([&](Process& p) -> Task<> {
    const int a = co_await kernel_.Open(p, "fs:dd", kOpenRead);
    const int b = co_await kernel_.Dup(p, a);
    EXPECT_GE(b, 0);
    EXPECT_NE(a, b);
    std::vector<uint8_t> buf;
    co_await kernel_.Read(p, a, 100, &buf);
    // The dup shares the seek offset: reading via b continues at 100.
    co_await kernel_.Read(p, b, 1, &buf);
    EXPECT_EQ(buf[0], Fill(100));
    // Closing one descriptor leaves the other usable.
    co_await kernel_.Close(p, a);
    EXPECT_EQ(co_await kernel_.Read(p, b, 1, &buf), 1);
    EXPECT_EQ(co_await kernel_.Dup(p, 99), -1);
  });
}

TEST_F(OsTest, SpliceOntoSameInodeRejected) {
  fs_->CreateFileInstant("self", 4 * kBlockSize, Fill);
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int a = co_await kernel_.Open(p, "fs:self", kOpenRead);
    const int b = co_await kernel_.Open(p, "fs:self", kOpenWrite);
    rval = co_await kernel_.Splice(p, a, b, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
}


TEST_F(OsTest, DeviceFileReadDeliversFrames) {
  FrameSource fb(&sim_, "fb0", /*frame_bytes=*/1000, /*frame_interval=*/Milliseconds(20));
  kernel_.RegisterCharDev("fb0", &fb);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "/dev/fb0", kOpenRead);
    std::vector<uint8_t> buf;
    const int64_t n = co_await kernel_.Read(p, fd, 4096, &buf);
    EXPECT_EQ(n, 1000);  // one frame
    EXPECT_GE(sim_.Now(), Milliseconds(20));  // waited for scan-out
    std::vector<uint8_t> expect;
    FrameSource::FillFrame(0, 1000, &expect);
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), buf.begin()));
    // Writing to a pure source fails cleanly (no deadlock).
    EXPECT_EQ(co_await kernel_.Write(p, fd, buf.data(), 10), -1);
  });
}

}  // namespace
}  // namespace ikdp
