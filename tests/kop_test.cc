// Tests for kop, the verifiable in-kernel splice operators: the static
// verifier (seeded-violation fixtures per rule class), the interpreter
// (checksum/filter/transform/route semantics and the short-chunk runtime
// re-check), the kop_load/kop_attach syscalls, operator execution inside
// sync and ring splices, the fault machinery on mid-stream rejection
// (sticky errno, LINKED-sibling cancellation, no leaked buffers), fan-out
// routing via splice_multi, and the CPU attribution closure with the
// kop.* charge buckets populated.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/kop/kop.h"
#include "src/net/udp_socket.h"
#include "src/os/kernel.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 40503u + 13) >> 3 & 0xff); }

KopStage ChecksumStage() {
  KopStage s;
  s.kind = KopStageKind::kChecksum;
  return s;
}

KopProgram ChecksumProgram() {
  KopProgram p;
  p.stages.push_back(ChecksumStage());
  return p;
}

// Keep a chunk iff its first byte equals `arg`.
KopProgram KeepIfFirstByteIs(uint8_t arg) {
  KopProgram p;
  KopStage s;
  s.kind = KopStageKind::kFilter;
  s.filter_mode = KopFilterMode::kKeepIfEq;
  s.off = 0;
  s.len = 1;
  s.arg = arg;
  p.stages.push_back(s);
  return p;
}

// Abort the stream iff a chunk's first byte equals `arg`.
KopProgram AbortIfFirstByteIs(uint8_t arg) {
  KopProgram p;
  KopStage s;
  s.kind = KopStageKind::kFilter;
  s.filter_mode = KopFilterMode::kAbortIfEq;
  s.off = 0;
  s.len = 1;
  s.arg = arg;
  p.stages.push_back(s);
  return p;
}

KopProgram RouteProgram(int n_sinks) {
  KopProgram p;
  KopStage s;
  s.kind = KopStageKind::kRoute;
  s.off = 0;
  s.len = 1;
  s.n_sinks = n_sinks;
  p.stages.push_back(s);
  return p;
}

SpliceChunk MakeChunk(int64_t nbytes, uint8_t fill) {
  SpliceChunk c;
  c.nbytes = nbytes;
  c.data = std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(kBlockSize), fill);
  return c;
}

// --- verifier -------------------------------------------------------------

TEST(KopVerifyTest, AcceptsLinearPrograms) {
  KopProgram p;
  p.stages.push_back(ChecksumStage());
  KopStage t;
  t.kind = KopStageKind::kTransform;
  t.arg = 0x5a;
  p.stages.push_back(t);
  EXPECT_TRUE(KopVerify(p, kBlockSize).empty());
  EXPECT_EQ(p.SinkCount(), 1);
  EXPECT_FALSE(p.CanDrop());

  KopProgram f = KeepIfFirstByteIs(0xab);
  EXPECT_TRUE(KopVerify(f, kBlockSize).empty());
  EXPECT_TRUE(f.CanDrop());

  KopProgram r = RouteProgram(2);
  EXPECT_TRUE(KopVerify(r, kBlockSize).empty());
  EXPECT_EQ(r.SinkCount(), 2);
}

TEST(KopVerifyTest, SeededViolationsEachFlagTheirRule) {
  const std::set<std::string> want = {"empty-program", "too-many-stages",
                                      "unbounded-loop", "out-of-chunk",
                                      "route-not-last", "sink-mismatch"};
  std::set<std::string> seen;
  for (const KopSeededViolation& v : KopSeededViolations(kBlockSize)) {
    const std::vector<KopFinding> findings = KopVerify(v.program, kBlockSize);
    ASSERT_FALSE(findings.empty()) << "seeded violation for " << v.rule << " passed";
    bool flagged = false;
    for (const KopFinding& f : findings) {
      flagged = flagged || f.rule == v.rule;
    }
    EXPECT_TRUE(flagged) << "seeded violation for " << v.rule
                         << " was rejected, but under a different rule";
    seen.insert(v.rule);
  }
  // One fixture per rule class: the table and the rule set stay in sync.
  EXPECT_EQ(seen, want);
}

// --- interpreter ----------------------------------------------------------

TEST(KopExecTest, ChecksumFoldsDeterministically) {
  const KopProgram p = ChecksumProgram();
  const CostConfig costs = DecStation5000Costs();
  KopRunState a;
  KopRunState b;
  SpliceChunk c1 = MakeChunk(kBlockSize, 0x3c);
  SpliceChunk c2 = MakeChunk(kBlockSize, 0x3c);
  const KopOutcome o1 = KopExecChunk(p, c1, &a, costs);
  KopExecChunk(p, c2, &b, costs);
  EXPECT_EQ(o1.kind, KopOutcome::Kind::kPass);
  EXPECT_GT(o1.cost, 0);
  EXPECT_NE(a.checksum, 0u);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.bytes_in, kBlockSize);
  EXPECT_EQ(a.bytes_out, kBlockSize);

  // A different payload folds to a different checksum.
  KopRunState d;
  SpliceChunk c3 = MakeChunk(kBlockSize, 0x3d);
  KopExecChunk(p, c3, &d, costs);
  EXPECT_NE(a.checksum, d.checksum);
}

TEST(KopExecTest, TransformClonesBeforeMutating) {
  KopProgram p;
  KopStage t;
  t.kind = KopStageKind::kTransform;
  t.arg = 0xff;
  p.stages.push_back(t);
  KopRunState st;
  SpliceChunk c = MakeChunk(kBlockSize, 0x0f);
  const BufData original = c.data;  // aliases the "buffer cache" storage
  const KopOutcome out = KopExecChunk(p, c, &st, DecStation5000Costs());
  EXPECT_EQ(out.kind, KopOutcome::Kind::kPass);
  // The chunk now carries a private transformed copy...
  EXPECT_NE(c.data, original);
  EXPECT_EQ((*c.data)[0], 0xf0);
  // ...and the shared source buffer was never scribbled on.
  EXPECT_EQ((*original)[0], 0x0f);
}

TEST(KopExecTest, FilterKeepsDropsAndAborts) {
  const CostConfig costs = DecStation5000Costs();
  KopRunState st;
  SpliceChunk keep = MakeChunk(kBlockSize, 0xab);
  SpliceChunk drop = MakeChunk(kBlockSize, 0x00);
  const KopProgram f = KeepIfFirstByteIs(0xab);
  EXPECT_EQ(KopExecChunk(f, keep, &st, costs).kind, KopOutcome::Kind::kPass);
  EXPECT_EQ(KopExecChunk(f, drop, &st, costs).kind, KopOutcome::Kind::kDrop);
  EXPECT_EQ(st.chunks_in, 2);
  EXPECT_EQ(st.chunks_dropped, 1);
  EXPECT_EQ(st.bytes_out, kBlockSize);

  SpliceChunk poison = MakeChunk(kBlockSize, 0xee);
  const KopOutcome rej =
      KopExecChunk(AbortIfFirstByteIs(0xee), poison, &st, costs);
  EXPECT_EQ(rej.kind, KopOutcome::Kind::kReject);
  EXPECT_EQ(rej.error, kErrKopReject);
  EXPECT_EQ(st.chunks_rejected, 1);
}

TEST(KopExecTest, RoutePicksSinkFromPayload) {
  const KopProgram r = RouteProgram(3);
  const CostConfig costs = DecStation5000Costs();
  KopRunState st;
  for (uint8_t b = 0; b < 7; ++b) {
    SpliceChunk c = MakeChunk(kBlockSize, b);
    const KopOutcome out = KopExecChunk(r, c, &st, costs);
    EXPECT_EQ(out.kind, KopOutcome::Kind::kPass);
    EXPECT_EQ(out.route, b % 3);
  }
}

TEST(KopExecTest, ShortChunkRejectsOutOfWindowAccess) {
  // The verifier accepted this window against full-size chunks; the last
  // chunk of a file is short, and the runtime re-check must reject rather
  // than read past the payload.
  KopProgram p;
  KopStage s;
  s.kind = KopStageKind::kChecksum;
  s.off = 100;
  s.len = 50;
  p.stages.push_back(s);
  ASSERT_TRUE(KopVerify(p, kBlockSize).empty());
  KopRunState st;
  SpliceChunk tail = MakeChunk(120, 0x42);  // window [100, 150) > 120 bytes
  const KopOutcome out = KopExecChunk(p, tail, &st, DecStation5000Costs());
  EXPECT_EQ(out.kind, KopOutcome::Kind::kReject);
  EXPECT_EQ(out.error, kErrKopReject);
}

// --- syscalls and the splice data path ------------------------------------

class KopTest : public ::testing::Test {
 protected:
  KopTest()
      : kernel_(&sim_, DecStation5000Costs()),
        rama_(&kernel_.cpu(), 16 << 20),
        ramb_(&kernel_.cpu(), 16 << 20),
        scsia_(&kernel_.cpu(), &sim_, Rz56Params()),
        scsib_(&kernel_.cpu(), &sim_, Rz56Params()) {
    fs_rama_ = kernel_.MountFs(&rama_, "rama");
    fs_ramb_ = kernel_.MountFs(&ramb_, "ramb");
    fs_scsia_ = kernel_.MountFs(&scsia_, "scsia");
    fs_scsib_ = kernel_.MountFs(&scsib_, "scsib");
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  void VerifyFile(FileSystem* fs, const std::string& name, int64_t nbytes) {
    kernel_.cache().FlushAllInstant();
    Inode* ip = fs->Lookup(name);
    ASSERT_NE(ip, nullptr);
    EXPECT_EQ(ip->size, nbytes);
    const std::vector<uint8_t> back = fs->ReadFileInstant(ip);
    ASSERT_EQ(static_cast<int64_t>(back.size()), nbytes);
    for (int64_t i = 0; i < nbytes; ++i) {
      ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
    }
  }

  // Every cache buffer must be acquirable after an error path: a leaked
  // buffer header would leave this loop short (fault_test's idiom).
  void VerifyNoLeakedBuffers() {
    int got = 0;
    Run([&](Process& p) -> Task<> {
      std::vector<Buf*> held;
      for (int i = 0; i < kernel_.cache().nbufs(); ++i) {
        held.push_back(co_await kernel_.cache().GetBlk(p, &scsib_, 5000 + i));
        ++got;
      }
      for (Buf* b : held) {
        kernel_.cache().Brelse(b);
      }
    });
    EXPECT_EQ(got, kernel_.cache().nbufs());
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk rama_;
  RamDisk ramb_;
  DiskDriver scsia_;
  DiskDriver scsib_;
  FileSystem* fs_rama_;
  FileSystem* fs_ramb_;
  FileSystem* fs_scsia_;
  FileSystem* fs_scsib_;
};

TEST_F(KopTest, KopLoadVerifiesAndMintsIds) {
  int bad = 0;
  int id1 = 0;
  int id2 = 0;
  Run([&](Process& p) -> Task<> {
    KopProgram broken;  // empty-program: the verifier must refuse it
    bad = co_await kernel_.KopLoad(p, broken);
    id1 = co_await kernel_.KopLoad(p, ChecksumProgram());
    id2 = co_await kernel_.KopLoad(p, KeepIfFirstByteIs(0xab));
  });
  EXPECT_EQ(bad, -1);
  EXPECT_GT(id1, 0);
  EXPECT_GT(id2, id1);
  EXPECT_EQ(kernel_.stats().kop_loads, 2u);
  EXPECT_EQ(kernel_.stats().kop_load_failures, 1u);
}

TEST_F(KopTest, KopAttachBindsDetachesAndRefusesUnknownIds) {
  fs_rama_->CreateFileInstant("src", 4 * kBlockSize, Fill);
  int attach_ok = -2;
  int detach_ok = -2;
  int attach_unknown = -2;
  int attach_badfd = -2;
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int id = co_await kernel_.KopLoad(p, ChecksumProgram());
    attach_ok = co_await kernel_.KopAttach(p, fd, id);
    detach_ok = co_await kernel_.KopAttach(p, fd, 0);
    attach_unknown = co_await kernel_.KopAttach(p, fd, 99);
    attach_badfd = co_await kernel_.KopAttach(p, 999, id);
  });
  EXPECT_EQ(attach_ok, 0);
  EXPECT_EQ(detach_ok, 0);
  EXPECT_EQ(attach_unknown, -1);
  EXPECT_EQ(attach_badfd, -1);
  EXPECT_EQ(kernel_.stats().kop_attaches, 1u);
}

TEST_F(KopTest, ChecksumOperatorLeavesSpliceByteIdentical) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  int64_t moved = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    const int id = co_await kernel_.KopLoad(p, ChecksumProgram());
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(moved, kBytes);
  VerifyFile(fs_ramb_, "dst", kBytes);
  const SpliceEngine::Stats& s = kernel_.splice_engine().stats();
  EXPECT_EQ(s.kop_chunks_in, 16u);
  EXPECT_EQ(s.kop_chunks_dropped, 0u);
  EXPECT_EQ(s.kop_bytes_in, kBytes);
  EXPECT_EQ(s.kop_bytes_out, kBytes);
  EXPECT_GT(s.kop_exec_time, 0);
}

TEST_F(KopTest, FilterProgramRefusedOverRegularFileSink) {
  // A dropping operator over a file sink would punch holes in the byte
  // offsets; the bind check refuses with EINVAL before any data moves.
  fs_rama_->CreateFileInstant("src", 4 * kBlockSize, Fill);
  int64_t rval = 0;
  int err_src = -1;
  int err_dst = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    const int id = co_await kernel_.KopLoad(p, KeepIfFirstByteIs(0xab));
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    rval = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    err_src = co_await kernel_.SpliceError(p, src);
    err_dst = co_await kernel_.SpliceError(p, dst);
  });
  EXPECT_EQ(rval, -1);
  EXPECT_EQ(err_src, kErrInval);
  EXPECT_EQ(err_dst, kErrInval);
  EXPECT_EQ(kernel_.splice_engine().stats().kop_chunks_in, 0u);
}

TEST_F(KopTest, FilterDropsNinetyPercentInKernel) {
  // 20 blocks, every 10th tagged 0xAB in its first byte: the operator keeps
  // 2 chunks and consumes 18 inside the kernel, and the splice returns only
  // the delivered bytes.
  constexpr int kBlocks = 20;
  constexpr int64_t kBytes = kBlocks * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, [](int64_t i) -> uint8_t {
    if (i % kBlockSize == 0) {
      return (i / kBlockSize) % 10 == 0 ? 0xab : 0x00;
    }
    return Fill(i);
  });
  UdpSocket sa(&kernel_.cpu());
  UdpSocket sb(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  NetworkLink wire(&sim_, EthernetParams());
  sa.ConnectTo(&sb, &wire);

  int64_t moved = -1;
  kernel_.Spawn("sender", [&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int sock = kernel_.OpenSocket(p, &sa);
    const int id = co_await kernel_.KopLoad(p, KeepIfFirstByteIs(0xab));
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    moved = co_await kernel_.Splice(p, src, sock, kSpliceEof);
    co_await kernel_.Write(p, sock, nullptr, 0);  // EOF marker
  });
  int64_t received = 0;
  bool tags_ok = true;
  kernel_.Spawn("receiver", [&](Process& p) -> Task<> {
    const int sock = kernel_.OpenSocket(p, &sb);
    std::vector<uint8_t> buf;
    for (;;) {
      const int64_t n = co_await kernel_.Read(p, sock, kBlockSize, &buf);
      if (n == 0) {
        break;
      }
      if (n < 0) {
        continue;
      }
      tags_ok = tags_ok && buf[0] == 0xab;  // only tagged blocks got through
      received += n;
    }
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(moved, 2 * kBlockSize);
  EXPECT_EQ(received, 2 * kBlockSize);
  EXPECT_TRUE(tags_ok);
  const SpliceEngine::Stats& s = kernel_.splice_engine().stats();
  EXPECT_EQ(s.kop_chunks_in, static_cast<uint64_t>(kBlocks));
  EXPECT_EQ(s.kop_chunks_dropped, 18u);
  EXPECT_EQ(s.kop_bytes_out, 2 * kBlockSize);
}

TEST_F(KopTest, MidStreamRejectIsStickyAndLeaksNothing) {
  // Block 5 carries the poison byte: the stream aborts there with the
  // operator's own errno, sticky-first on both descriptors, and every
  // buffer header is released.
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, [](int64_t i) -> uint8_t {
    if (i % kBlockSize == 0) {
      return i / kBlockSize == 5 ? 0xee : 0x00;
    }
    return Fill(i);
  });
  UdpSocket sa(&kernel_.cpu());
  UdpSocket sb(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  NetworkLink wire(&sim_, EthernetParams());
  sa.ConnectTo(&sb, &wire);

  int64_t rval = 0;
  int err_src = -1;
  int err_sock = -1;
  int err_src_again = -1;
  int err_after_clean = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int sock = kernel_.OpenSocket(p, &sa);
    const int id = co_await kernel_.KopLoad(p, AbortIfFirstByteIs(0xee));
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    rval = co_await kernel_.Splice(p, src, sock, kSpliceEof);
    err_src = co_await kernel_.SpliceError(p, src);
    err_sock = co_await kernel_.SpliceError(p, sock);
    err_src_again = co_await kernel_.SpliceError(p, src);
    // A subsequent clean splice (the fd is at EOF) resets the errno.
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, 0), 0);
    EXPECT_EQ(co_await kernel_.Splice(p, src, sock, kSpliceEof), 0);
    err_after_clean = co_await kernel_.SpliceError(p, src);
  });
  EXPECT_EQ(rval, -1);
  EXPECT_EQ(err_src, kErrKopReject);
  EXPECT_EQ(err_sock, kErrKopReject);
  EXPECT_EQ(err_src_again, kErrKopReject);  // sticky until the next splice
  EXPECT_EQ(err_after_clean, 0);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
  EXPECT_EQ(kernel_.splice_engine().stats().kop_chunks_rejected, 1u);
  VerifyNoLeakedBuffers();
}

TEST_F(KopTest, RingSqeRunsOperatorAndReportsInCqe) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("s0", kBytes, Fill);
  fs_rama_->CreateFileInstant("s1", kBytes, Fill);
  std::vector<SpliceCqe> cqes(2);
  int harvested = -1;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int id = co_await kernel_.KopLoad(p, ChecksumProgram());
    for (int i = 0; i < 2; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = static_cast<uint64_t>(i);
      sqe.kop_id = i == 0 ? id : 0;  // operator on stream 0 only
      EXPECT_EQ(kernel_.RingPrepare(p, ring, sqe), 0);
    }
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 2), 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 2);
  });
  ASSERT_EQ(harvested, 2);
  for (const SpliceCqe& c : cqes) {
    EXPECT_EQ(c.error, 0);
    EXPECT_EQ(c.result, kBytes);
    if (c.cookie == 0) {
      EXPECT_TRUE(c.kop_active);
      EXPECT_NE(c.kop_checksum, 0u);
      EXPECT_EQ(c.kop_dropped, 0);
    } else {
      EXPECT_FALSE(c.kop_active);
      EXPECT_EQ(c.kop_checksum, 0u);
    }
  }
  VerifyFile(fs_ramb_, "d0", kBytes);
  VerifyFile(fs_ramb_, "d1", kBytes);
}

TEST_F(KopTest, RingRefusesUnknownKopIdAtAdmission) {
  constexpr int64_t kBytes = 4 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  std::vector<SpliceCqe> cqes(1);
  int harvested = -1;
  uint64_t engine_started = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    SpliceSqe sqe;
    sqe.src_fd = src;
    sqe.dst_fd = dst;
    sqe.nbytes = kBytes;
    sqe.cookie = 7;
    sqe.kop_id = 42;  // never loaded
    kernel_.RingPrepare(p, ring, sqe);
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 1, 1), 1);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 1);
    engine_started = kernel_.splice_engine().stats().splices_started;
  });
  ASSERT_EQ(harvested, 1);
  EXPECT_EQ(cqes[0].cookie, 7u);
  EXPECT_EQ(cqes[0].error, kAioEInval);
  EXPECT_FALSE(cqes[0].kop_active);
  EXPECT_EQ(engine_started, 0u);
}

TEST_F(KopTest, RingKopRejectCancelsLinkedSiblingWithOneCqeEach) {
  // Stage 1 (file -> pipe) carries an aborting operator that trips on block
  // 4; the LINKED stage 2 (pipe -> file) must be torn down with ECANCELED
  // and each SQE must produce exactly one CQE.
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, [](int64_t i) -> uint8_t {
    if (i % kBlockSize == 0) {
      return i / kBlockSize == 4 ? 0xee : 0x00;
    }
    return Fill(i);
  });
  std::vector<SpliceCqe> cqes(4);
  int harvested = -1;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    int pr = -1;
    int pw = -1;
    EXPECT_EQ(co_await kernel_.CreatePipe(p, &pr, &pw), 0);
    const int id = co_await kernel_.KopLoad(p, AbortIfFirstByteIs(0xee));
    SpliceSqe s1;
    s1.src_fd = src;
    s1.dst_fd = pw;
    s1.nbytes = kBytes;
    s1.flags = kSqeLinked;
    s1.cookie = 1;
    s1.kop_id = id;
    SpliceSqe s2;
    s2.src_fd = pr;
    s2.dst_fd = dst;
    s2.nbytes = kBytes;
    s2.cookie = 2;
    kernel_.RingPrepare(p, ring, s1);
    kernel_.RingPrepare(p, ring, s2);
    // min_complete=2: a lost sibling CQE would deadlock here and Run()
    // would report the process as stuck.
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 2), 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 4);
  });
  ASSERT_EQ(harvested, 2);  // one CQE per SQE: none lost, none duplicated
  const SpliceCqe* c1 = nullptr;
  const SpliceCqe* c2 = nullptr;
  for (int i = 0; i < harvested; ++i) {
    if (cqes[static_cast<size_t>(i)].cookie == 1) c1 = &cqes[static_cast<size_t>(i)];
    if (cqes[static_cast<size_t>(i)].cookie == 2) c2 = &cqes[static_cast<size_t>(i)];
  }
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->error, kErrKopReject);  // the operator's errno, preserved
  EXPECT_TRUE(c1->kop_active);
  EXPECT_LT(c1->result, kBytes);
  EXPECT_EQ(c2->error, kAioECanceled);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
  VerifyNoLeakedBuffers();
}

TEST_F(KopTest, SpliceMultiRoutesChunksAcrossSinks) {
  // 8 blocks whose first byte alternates 0/1: a 2-way route program must
  // steer the even blocks to sink 0 and the odd blocks to sink 1.
  constexpr int kBlocks = 8;
  constexpr int64_t kBytes = kBlocks * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, [](int64_t i) -> uint8_t {
    if (i % kBlockSize == 0) {
      return static_cast<uint8_t>((i / kBlockSize) % 2);
    }
    return Fill(i);
  });
  UdpSocket sa0(&kernel_.cpu());
  UdpSocket sb0(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  UdpSocket sa1(&kernel_.cpu());
  UdpSocket sb1(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  NetworkLink w0(&sim_, EthernetParams());
  NetworkLink w1(&sim_, EthernetParams());
  sa0.ConnectTo(&sb0, &w0);
  sa1.ConnectTo(&sb1, &w1);

  int64_t moved = -1;
  kernel_.Spawn("sender", [&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int d0 = kernel_.OpenSocket(p, &sa0);
    const int d1 = kernel_.OpenSocket(p, &sa1);
    const int id = co_await kernel_.KopLoad(p, RouteProgram(2));
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    const std::vector<int> dsts = {d0, d1};
    moved = co_await kernel_.SpliceMulti(p, src, dsts, kSpliceEof);
    co_await kernel_.Write(p, d0, nullptr, 0);  // EOF markers
    co_await kernel_.Write(p, d1, nullptr, 0);
  });
  int64_t got0 = 0;
  int64_t got1 = 0;
  bool routing_ok = true;
  auto receiver = [&](UdpSocket* s, int64_t* got, uint8_t tag) {
    return [&, s, got, tag](Process& p) -> Task<> {
      const int sock = kernel_.OpenSocket(p, s);
      std::vector<uint8_t> buf;
      for (;;) {
        const int64_t n = co_await kernel_.Read(p, sock, kBlockSize, &buf);
        if (n == 0) {
          break;
        }
        if (n < 0) {
          continue;
        }
        routing_ok = routing_ok && buf[0] == tag;
        *got += n;
      }
    };
  };
  kernel_.Spawn("recv0", receiver(&sb0, &got0, 0));
  kernel_.Spawn("recv1", receiver(&sb1, &got1, 1));
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(moved, kBytes);
  EXPECT_EQ(got0, 4 * kBlockSize);
  EXPECT_EQ(got1, 4 * kBlockSize);
  EXPECT_TRUE(routing_ok);
}

TEST_F(KopTest, SpliceMultiRefusesMismatchedSinkSets) {
  fs_rama_->CreateFileInstant("src", 4 * kBlockSize, Fill);
  int64_t no_program = 0;
  int64_t wrong_fanout = 0;
  int64_t file_sink = 0;
  int err_src = -1;
  UdpSocket sa(&kernel_.cpu());
  UdpSocket sb(&kernel_.cpu());
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int d0 = kernel_.OpenSocket(p, &sa);
    const int d1 = kernel_.OpenSocket(p, &sb);
    // No route program attached at all.
    const std::vector<int> dsts = {d0, d1};
    no_program = co_await kernel_.SpliceMulti(p, src, dsts, kSpliceEof);
    err_src = co_await kernel_.SpliceError(p, src);
    // A 3-way route over a 2-sink destination list.
    const int id = co_await kernel_.KopLoad(p, RouteProgram(3));
    EXPECT_EQ(co_await kernel_.KopAttach(p, src, id), 0);
    wrong_fanout = co_await kernel_.SpliceMulti(p, src, dsts, kSpliceEof);
    // Seekable destinations are refused outright.
    const int f = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    const std::vector<int> mixed = {d0, f};
    file_sink = co_await kernel_.SpliceMulti(p, src, mixed, kSpliceEof);
  });
  EXPECT_EQ(no_program, -1);
  EXPECT_EQ(err_src, kErrInval);
  EXPECT_EQ(wrong_fanout, -1);
  EXPECT_EQ(file_sink, -1);
  EXPECT_EQ(kernel_.splice_engine().stats().splices_started, 0u);
}

TEST_F(KopTest, AttributionClosureHoldsWithOperatorsAttached) {
  // Operators run from every context the data path has — the syscall layer
  // (load-time verification, parked sync charges), interrupt/softclock chunk
  // execution, and the ring reaper's completion pass.  The ledger must still
  // close exactly, with the kop refinement buckets populated.
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_scsia_->CreateFileInstant("sync_src", kBytes, Fill);
  fs_scsia_->CreateFileInstant("ring_src", kBytes, Fill);
  std::vector<SpliceCqe> cqes(1);
  Run([&](Process& p) -> Task<> {
    const int id = co_await kernel_.KopLoad(p, ChecksumProgram());
    // Sync splice with the operator bound to the source.
    const int s1 = co_await kernel_.Open(p, "scsia:sync_src", kOpenRead);
    const int d1 = co_await kernel_.Open(p, "ramb:sync_dst", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.KopAttach(p, s1, id), 0);
    EXPECT_EQ(co_await kernel_.Splice(p, s1, d1, kSpliceEof), kBytes);
    // Ring splice with the operator named in the SQE.
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int s2 = co_await kernel_.Open(p, "scsia:ring_src", kOpenRead);
    const int d2 = co_await kernel_.Open(p, "ramb:ring_dst", kOpenWrite | kOpenCreate);
    SpliceSqe sqe;
    sqe.src_fd = s2;
    sqe.dst_fd = d2;
    sqe.nbytes = kBytes;
    sqe.cookie = 1;
    sqe.kop_id = id;
    kernel_.RingPrepare(p, ring, sqe);
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 1, 1), 1);
    EXPECT_EQ(kernel_.RingHarvest(p, ring, cqes.data(), 1), 1);
  });
  EXPECT_EQ(cqes[0].error, 0);
  EXPECT_TRUE(cqes[0].kop_active);

  std::string err;
  EXPECT_TRUE(kernel_.cpu().CheckAttributionClosure(&err)) << err;

  SimDuration kop_total = 0;
  std::set<CpuSystem::ChargeBucket> kop_buckets;
  for (const auto& [key, ns] : kernel_.cpu().attribution()) {
    if (key.bucket == CpuSystem::ChargeBucket::kKopProcess ||
        key.bucket == CpuSystem::ChargeBucket::kKopInterrupt ||
        key.bucket == CpuSystem::ChargeBucket::kKopSoftclock) {
      kop_total += ns;
      kop_buckets.insert(key.bucket);
    }
  }
  EXPECT_GT(kop_total, 0);
  // Load-time verification and parked sync-path charges bill the process...
  EXPECT_TRUE(kop_buckets.count(CpuSystem::ChargeBucket::kKopProcess));
  // ...and the ring reaper's per-op finalization always runs at softclock.
  EXPECT_TRUE(kop_buckets.count(CpuSystem::ChargeBucket::kKopSoftclock));
}

}  // namespace
}  // namespace ikdp
