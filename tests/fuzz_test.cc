// Model-based randomized testing: a driver process performs a long random
// sequence of filesystem and splice operations against the simulated kernel
// while a plain in-memory model tracks what the bytes should be.  At every
// read and at the end of the run, the kernel's view must match the model.
// Seeds are fixed, so every failure is exactly reproducible.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"
#include "src/sim/random.h"

namespace ikdp {
namespace {

constexpr int kOpsPerRun = 120;
constexpr int64_t kMaxFileBlocks = 24;

struct ModelFile {
  std::vector<uint8_t> bytes;
};

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomOpsMatchModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  RamDisk ram(&kernel.cpu(), 32 << 20);
  DiskDriver scsi_a(&kernel.cpu(), &sim, Rz56Params());
  DiskDriver scsi_b(&kernel.cpu(), &sim, Rz58Params());
  std::vector<FileSystem*> fses = {
      kernel.MountFs(&ram, "fs0"),
      kernel.MountFs(&scsi_a, "fs1"),
      kernel.MountFs(&scsi_b, "fs2"),
  };

  // Model state: "fsIndex/name" -> contents.
  std::map<std::string, ModelFile> model;
  int next_name = 0;
  bool mismatch = false;
  std::string mismatch_what;

  auto pick_existing = [&](Rng& r) -> std::string {
    if (model.empty()) {
      return "";
    }
    auto it = model.begin();
    std::advance(it, static_cast<int64_t>(r.Below(model.size())));
    return it->first;
  };
  auto fs_of = [&](const std::string& key) -> FileSystem* {
    return fses[static_cast<size_t>(key[2] - '0')];
  };
  auto path_of = [&](const std::string& key) -> std::string {
    // key is "fsN/name" -> "fsN:name"
    std::string p = key;
    p[3] = ':';
    return p.substr(0, 3) + ":" + key.substr(4);
  };

  kernel.Spawn("fuzzer", [&](Process& p) -> Task<> {
    for (int op = 0; op < kOpsPerRun && !mismatch; ++op) {
      const uint64_t kind = rng.Below(100);
      if (kind < 25 || model.empty()) {
        // CREATE: instant file with random contents.
        const int fs_idx = static_cast<int>(rng.Below(fses.size()));
        const std::string name = "f" + std::to_string(next_name++);
        const std::string key = "fs" + std::to_string(fs_idx) + "/" + name;
        const int64_t nbytes =
            static_cast<int64_t>(rng.Below(kMaxFileBlocks * kBlockSize)) + 1;
        ModelFile mf;
        mf.bytes.resize(static_cast<size_t>(nbytes));
        for (auto& b : mf.bytes) {
          b = static_cast<uint8_t>(rng.Next());
        }
        const std::vector<uint8_t> snapshot = mf.bytes;  // capture before move
        Inode* ip = fses[static_cast<size_t>(fs_idx)]->CreateFileInstant(
            name, nbytes, [&snapshot](int64_t i) { return snapshot[static_cast<size_t>(i)]; });
        if (ip == nullptr) {
          continue;  // name collision cannot happen; device full could
        }
        model[key] = std::move(mf);
      } else if (kind < 45) {
        // WRITE: random range through the timed path.
        const std::string key = pick_existing(rng);
        ModelFile& mf = model[key];
        const int64_t off = static_cast<int64_t>(rng.Below(mf.bytes.size()));
        const int64_t len =
            std::min<int64_t>(static_cast<int64_t>(rng.Below(3 * kBlockSize)) + 1,
                              4 * kBlockSize);
        std::vector<uint8_t> data(static_cast<size_t>(len));
        for (auto& b : data) {
          b = static_cast<uint8_t>(rng.Next());
        }
        const int fd = co_await kernel.Open(p, path_of(key), kOpenWrite);
        if (fd < 0) {
          mismatch = true;
          mismatch_what = "open-for-write failed: " + key;
          break;
        }
        co_await kernel.Lseek(p, fd, off);
        const int64_t put = co_await kernel.Write(p, fd, data.data(), len);
        if (put != len) {
          mismatch = true;
          mismatch_what = "short write: " + key;
          break;
        }
        co_await kernel.Close(p, fd);
        if (mf.bytes.size() < static_cast<size_t>(off + len)) {
          mf.bytes.resize(static_cast<size_t>(off + len), 0);
        }
        std::copy(data.begin(), data.end(), mf.bytes.begin() + off);
      } else if (kind < 70) {
        // READ + VERIFY: random range.
        const std::string key = pick_existing(rng);
        const ModelFile& mf = model[key];
        const int64_t off = static_cast<int64_t>(rng.Below(mf.bytes.size()));
        const int64_t len = static_cast<int64_t>(rng.Below(4 * kBlockSize)) + 1;
        const int fd = co_await kernel.Open(p, path_of(key), kOpenRead);
        co_await kernel.Lseek(p, fd, off);
        std::vector<uint8_t> back;
        const int64_t got = co_await kernel.Read(p, fd, len, &back);
        co_await kernel.Close(p, fd);
        const int64_t expect =
            std::min<int64_t>(len, static_cast<int64_t>(mf.bytes.size()) - off);
        if (got != expect) {
          mismatch = true;
          mismatch_what = "short read: " + key;
          break;
        }
        for (int64_t i = 0; i < got; ++i) {
          if (back[static_cast<size_t>(i)] != mf.bytes[static_cast<size_t>(off + i)]) {
            mismatch = true;
            mismatch_what = "read mismatch: " + key + " at " + std::to_string(off + i);
            break;
          }
        }
      } else if (kind < 90) {
        // SPLICE: whole-file (or bounded prefix) into a fresh file on a
        // random filesystem.
        const std::string src_key = pick_existing(rng);
        const ModelFile& src_mf = model[src_key];
        const int dst_fs = static_cast<int>(rng.Below(fses.size()));
        const std::string dst_name = "f" + std::to_string(next_name++);
        const std::string dst_key = "fs" + std::to_string(dst_fs) + "/" + dst_name;
        const bool whole = rng.Below(2) == 0;
        const int64_t limit =
            whole ? kSpliceEof
                  : static_cast<int64_t>(rng.Below(src_mf.bytes.size())) + 1;
        const int sfd = co_await kernel.Open(p, path_of(src_key), kOpenRead);
        const int dfd =
            co_await kernel.Open(p, path_of(dst_key), kOpenWrite | kOpenCreate);
        const int64_t moved = co_await kernel.Splice(p, sfd, dfd, limit);
        co_await kernel.Close(p, sfd);
        co_await kernel.Close(p, dfd);
        const int64_t expect =
            whole ? static_cast<int64_t>(src_mf.bytes.size())
                  : std::min<int64_t>(limit, static_cast<int64_t>(src_mf.bytes.size()));
        if (moved != expect) {
          mismatch = true;
          mismatch_what = "splice moved " + std::to_string(moved) + " expected " +
                          std::to_string(expect) + ": " + src_key + " -> " + dst_key;
          break;
        }
        ModelFile dst_mf;
        dst_mf.bytes.assign(src_mf.bytes.begin(), src_mf.bytes.begin() + expect);
        model[dst_key] = std::move(dst_mf);
      } else if (kind < 95) {
        // FSYNC a random file's filesystem.
        const std::string key = pick_existing(rng);
        const int fd = co_await kernel.Open(p, path_of(key), kOpenWrite);
        co_await kernel.FsyncFd(p, fd);
        co_await kernel.Close(p, fd);
      } else {
        // REMOVE.  Flush and invalidate first: freed blocks may be
        // reallocated by a later instant-create, and stale cache entries
        // (clean or dirty) keyed by those physical blocks must not survive
        // (the documented Truncate/Remove contract).
        const std::string key = pick_existing(rng);
        FileSystem* fs = fs_of(key);
        const int fd = co_await kernel.Open(p, path_of(key), kOpenWrite);
        co_await kernel.FsyncFd(p, fd);
        co_await kernel.Close(p, fd);
        fs->Remove(key.substr(4));
        kernel.cache().InvalidateDev(fs->dev());
        model.erase(key);
      }
    }
  });

  sim.Run();
  ASSERT_EQ(kernel.cpu().alive(), 0) << "fuzzer deadlocked (seed " << seed << ")";
  ASSERT_FALSE(mismatch) << mismatch_what << " (seed " << seed << ")";

  // Final sweep: every surviving file matches the model byte-for-byte.
  kernel.cache().FlushAllInstant();
  for (const auto& [key, mf] : model) {
    FileSystem* fs = fs_of(key);
    Inode* ip = fs->Lookup(key.substr(4));
    ASSERT_NE(ip, nullptr) << key << " (seed " << seed << ")";
    ASSERT_EQ(ip->size, static_cast<int64_t>(mf.bytes.size()))
        << key << " (seed " << seed << ")";
    const std::vector<uint8_t> back = fs->ReadFileInstant(ip);
    ASSERT_EQ(back.size(), mf.bytes.size()) << key;
    for (size_t i = 0; i < back.size(); ++i) {
      ASSERT_EQ(back[i], mf.bytes[i]) << key << " byte " << i << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ikdp
