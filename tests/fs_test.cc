// Unit and property tests for the FFS-like filesystem: directory ops, bmap
// (direct / indirect / double-indirect), the read/write data path, fsync,
// allocation contiguity, and the splice-flavoured no-zero-fill mapping.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/buf/buffer_cache.h"
#include "src/dev/ram_disk.h"
#include "src/fs/filesystem.h"
#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 2654435761u) >> 7 & 0xff); }

class FsTest : public ::testing::Test {
 protected:
  FsTest()
      : cpu_(&sim_, DecStation5000Costs()),
        cache_(&cpu_, 64),
        ram_(&cpu_, 64 << 20),
        fs_(&cpu_, &cache_, &ram_, "ramfs") {}

  void RunProc(std::function<Task<>(Process&)> body) {
    cpu_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(cpu_.alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  CpuSystem cpu_;
  BufferCache cache_;
  RamDisk ram_;
  FileSystem fs_;
};

TEST_F(FsTest, CreateLookupRemove) {
  Inode* a = fs_.Create("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(fs_.Lookup("a"), a);
  EXPECT_EQ(fs_.Create("a"), nullptr);  // duplicate
  EXPECT_EQ(fs_.Lookup("b"), nullptr);
  EXPECT_TRUE(fs_.Remove("a"));
  EXPECT_FALSE(fs_.Remove("a"));
  EXPECT_EQ(fs_.Lookup("a"), nullptr);
}

TEST_F(FsTest, WriteThenReadSmallFile) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("f");
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = Fill(static_cast<int64_t>(i));
    }
    const int64_t wrote = co_await fs_.Write(p, ip, 0, data.data(), 1000);
    EXPECT_EQ(wrote, 1000);
    EXPECT_EQ(ip->size, 1000);
    std::vector<uint8_t> back;
    const int64_t got = co_await fs_.Read(p, ip, 0, 2000, &back);
    EXPECT_EQ(got, 1000);
    EXPECT_EQ(back, data);
  });
}

TEST_F(FsTest, WriteSpansIndirectBlocks) {
  // 20 blocks crosses the 12-direct boundary into the indirect block.
  constexpr int64_t kBytes = 20 * kBlockSize;
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("big");
    std::vector<uint8_t> data(kBytes);
    for (int64_t i = 0; i < kBytes; ++i) {
      data[static_cast<size_t>(i)] = Fill(i);
    }
    co_await fs_.Write(p, ip, 0, data.data(), kBytes);
    EXPECT_NE(ip->indirect, 0);
    std::vector<uint8_t> back;
    co_await fs_.Read(p, ip, 0, kBytes, &back);
    EXPECT_EQ(back, data);
  });
}

TEST_F(FsTest, BmapDoubleIndirectReach) {
  // Logical block beyond 12 + 2048 needs the double-indirect path.
  const int64_t lbn = kDirectBlocks + kPtrsPerBlock + 5;
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("huge");
    const int64_t pbn = co_await fs_.Bmap(p, ip, lbn, /*alloc=*/true, /*for_splice=*/true);
    EXPECT_NE(pbn, 0);
    EXPECT_NE(ip->dindirect, 0);
    // Re-mapping without alloc returns the same block.
    const int64_t again = co_await fs_.Bmap(p, ip, lbn, /*alloc=*/false);
    EXPECT_EQ(again, pbn);
  });
}

TEST_F(FsTest, BmapUnmappedReturnsZeroWithoutAlloc) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("sparse");
    EXPECT_EQ(co_await fs_.Bmap(p, ip, 0, false), 0);
    EXPECT_EQ(co_await fs_.Bmap(p, ip, 100, false), 0);
    EXPECT_EQ(co_await fs_.Bmap(p, ip, 5000, false), 0);
  });
}

TEST_F(FsTest, SequentialAllocationIsContiguous) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("seq");
    std::vector<int64_t> map =
        co_await fs_.MapRange(p, ip, 32, /*alloc=*/true, /*for_splice=*/true);
    int contiguous = 0;
    for (size_t i = 1; i < map.size(); ++i) {
      if (map[i] == map[i - 1] + 1) {
        ++contiguous;
      }
    }
    // Data blocks are contiguous except where indirect blocks interleave.
    EXPECT_GE(contiguous, 29);
  });
}

TEST_F(FsTest, StockBmapZeroFillsFreshBlocks) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("zf");
    co_await fs_.MapRange(p, ip, 8, /*alloc=*/true, /*for_splice=*/false);
  });
  EXPECT_EQ(fs_.stats().zero_fill_writes, 8u);
}

TEST_F(FsTest, SpliceBmapSkipsZeroFill) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("nzf");
    co_await fs_.MapRange(p, ip, 8, /*alloc=*/true, /*for_splice=*/true);
  });
  EXPECT_EQ(fs_.stats().zero_fill_writes, 0u);
}

TEST_F(FsTest, InstantFileRoundTrip) {
  constexpr int64_t kBytes = 3 * kBlockSize + 777;
  Inode* ip = fs_.CreateFileInstant("inst", kBytes, Fill);
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->size, kBytes);
  const std::vector<uint8_t> back = fs_.ReadFileInstant(ip);
  ASSERT_EQ(static_cast<int64_t>(back.size()), kBytes);
  for (int64_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
  }
}

TEST_F(FsTest, InstantFileReadableThroughTimedPath) {
  constexpr int64_t kBytes = 16 * kBlockSize;  // crosses into indirect
  Inode* ip = fs_.CreateFileInstant("inst2", kBytes, Fill);
  ASSERT_NE(ip, nullptr);
  RunProc([&](Process& p) -> Task<> {
    std::vector<uint8_t> back;
    const int64_t got = co_await fs_.Read(p, ip, 0, kBytes, &back);
    EXPECT_EQ(got, kBytes);
    for (int64_t i = 0; i < kBytes; ++i) {
      EXPECT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
    }
  });
}

TEST_F(FsTest, TimedWriteVisibleInstantlyAfterFsync) {
  constexpr int64_t kBytes = 5 * kBlockSize;
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("sync");
    std::vector<uint8_t> data(kBytes);
    for (int64_t i = 0; i < kBytes; ++i) {
      data[static_cast<size_t>(i)] = Fill(i);
    }
    co_await fs_.Write(p, ip, 0, data.data(), kBytes);
    co_await fs_.Fsync(p, ip);
  });
  Inode* ip = fs_.Lookup("sync");
  ASSERT_NE(ip, nullptr);
  const std::vector<uint8_t> back = fs_.ReadFileInstant(ip);
  for (int64_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
  }
}

TEST_F(FsTest, RemoveFreesAllBlocks) {
  const int64_t before = fs_.FreeBlocks();
  Inode* ip = fs_.CreateFileInstant("tmp", 40 * kBlockSize, Fill);
  ASSERT_NE(ip, nullptr);
  EXPECT_LT(fs_.FreeBlocks(), before);
  fs_.Remove("tmp");
  EXPECT_EQ(fs_.FreeBlocks(), before);
}

TEST_F(FsTest, PartialOverwritePreservesNeighbours) {
  Inode* ip = fs_.CreateFileInstant("ow", 2 * kBlockSize, Fill);
  RunProc([&](Process& p) -> Task<> {
    const std::vector<uint8_t> patch(100, 0xEE);
    co_await fs_.Write(p, ip, kBlockSize - 50, patch.data(), 100);
    std::vector<uint8_t> back;
    co_await fs_.Read(p, ip, 0, 2 * kBlockSize, &back);
    EXPECT_EQ(back[static_cast<size_t>(kBlockSize - 51)], Fill(kBlockSize - 51));
    for (int64_t i = kBlockSize - 50; i < kBlockSize + 50; ++i) {
      EXPECT_EQ(back[static_cast<size_t>(i)], 0xEE) << i;
    }
    EXPECT_EQ(back[static_cast<size_t>(kBlockSize + 50)], Fill(kBlockSize + 50));
  });
}

TEST_F(FsTest, ReadAtEofReturnsZero) {
  Inode* ip = fs_.CreateFileInstant("eof", 100, Fill);
  RunProc([&](Process& p) -> Task<> {
    std::vector<uint8_t> back;
    EXPECT_EQ(co_await fs_.Read(p, ip, 100, 10, &back), 0);
    EXPECT_EQ(co_await fs_.Read(p, ip, 1000, 10, &back), 0);
    // Short read at the tail.
    EXPECT_EQ(co_await fs_.Read(p, ip, 90, 100, &back), 10);
  });
}

TEST_F(FsTest, SparseFileReadsZeros) {
  RunProc([&](Process& p) -> Task<> {
    Inode* ip = fs_.Create("holes");
    const std::vector<uint8_t> tail(10, 0x77);
    // Write only at offset 3 blocks; blocks 0-2 stay holes.
    co_await fs_.Write(p, ip, 3 * kBlockSize, tail.data(), 10);
    std::vector<uint8_t> back;
    co_await fs_.Read(p, ip, 0, kBlockSize, &back);
    for (uint8_t b : back) {
      EXPECT_EQ(b, 0);
    }
    co_await fs_.Read(p, ip, 3 * kBlockSize, 10, &back);
    EXPECT_EQ(back, tail);
  });
}

TEST_F(FsTest, WriteChargesCopyinToProcess) {
  Process* proc = nullptr;
  cpu_.Spawn("writer", [&](Process& p) -> Task<> {
    proc = &p;
    Inode* ip = fs_.Create("w");
    std::vector<uint8_t> data(8 * kBlockSize, 1);
    co_await fs_.Write(p, ip, 0, data.data(), static_cast<int64_t>(data.size()));
  });
  sim_.Run();
  // copyin of 64 KB at ~10 MB/s is ~6.4 ms, plus RAM-disk-free (delayed
  // writes, no flush) bookkeeping.
  EXPECT_GT(proc->stats().cpu_time, Milliseconds(6));
}

// Parameterized sweep: write files of many sizes and verify contents through
// the timed path (covers direct, indirect and double-indirect shapes).
class FsSizeSweep : public FsTest, public ::testing::WithParamInterface<int64_t> {};

TEST_P(FsSizeSweep, RoundTrip) {
  const int64_t nbytes = GetParam();
  Inode* ip = fs_.CreateFileInstant("sweep", nbytes, Fill);
  ASSERT_NE(ip, nullptr);
  RunProc([&](Process& p) -> Task<> {
    std::vector<uint8_t> back;
    int64_t off = 0;
    bool ok = true;
    while (off < nbytes) {
      const int64_t got = co_await fs_.Read(p, ip, off, 64 * 1024, &back);
      if (got <= 0) {
        break;
      }
      for (int64_t i = 0; i < got && ok; ++i) {
        ok = back[static_cast<size_t>(i)] == Fill(off + i);
      }
      off += got;
    }
    EXPECT_TRUE(ok);
    EXPECT_EQ(off, nbytes);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, FsSizeSweep,
                         ::testing::Values(1, 512, kBlockSize - 1, kBlockSize, kBlockSize + 1,
                                           12 * kBlockSize,               // all direct
                                           13 * kBlockSize,               // first indirect
                                           (12 + 2048) * kBlockSize,      // full single indirect
                                           (12 + 2048 + 3) * kBlockSize,  // into double indirect
                                           1000000));

}  // namespace
}  // namespace ikdp
