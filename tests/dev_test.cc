// Unit tests for the device layer: DiskDriver (disksort, interrupts),
// RamDisk, PacedSink, FrameSource, NullDevice.

#include <gtest/gtest.h>

#include <vector>

#include "src/buf/buffer_cache.h"
#include "src/dev/disk_driver.h"
#include "src/dev/frame_source.h"
#include "src/dev/null_device.h"
#include "src/dev/paced_sink.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/kern/cpu.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

class DevTest : public ::testing::Test {
 protected:
  DevTest() : cpu_(&sim_, DecStation5000Costs()) {}

  Simulator sim_;
  CpuSystem cpu_;
};

Buf MakeIoBuf(BlockDevice* dev, int64_t blkno, bool read, BufferCache* cache = nullptr) {
  Buf b;
  b.cache = cache;
  b.dev = dev;
  b.blkno = blkno;
  b.data = MakeBufData();
  // In-flight I/O must be on an owned buffer: BufStateChecker aborts a
  // Strategy/Biodone on a non-busy header.
  b.Set(kBufBusy);
  if (read) {
    b.Set(kBufRead);
  }
  return b;
}

TEST_F(DevTest, DiskDriverCompletesViaInterruptAndCallback) {
  DiskDriver drv(&cpu_, &sim_, Rz56Params());
  std::vector<uint8_t> pat(kBlockSize, 0xAB);
  drv.PokeBlock(5, pat);

  Buf b;
  b.dev = &drv;
  b.blkno = 5;
  b.data = MakeBufData();
  b.Set(kBufBusy);
  b.Set(kBufRead);
  b.Set(kBufCall);
  bool done = false;
  b.iodone = [&](Buf& self) {
    done = true;
    EXPECT_EQ((*self.data)[0], 0xAB);
  };
  // Route Biodone through the kBufCall hook without a cache: emulate by
  // calling the strategy and letting the driver call Biodone -> needs cache.
  // Instead, attach a minimal cache-free completion by using the iodone
  // directly: the driver requires a cache pointer, so create one.
  BufferCache cache(&cpu_, 4);
  b.cache = &cache;
  drv.Strategy(b);
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(drv.stats().interrupts, 1u);
  EXPECT_GT(cpu_.stats().interrupt_work, 0);
}

TEST_F(DevTest, DisksortOrdersElevatorSweep) {
  DiskDriver drv(&cpu_, &sim_, Rz56Params());
  BufferCache cache(&cpu_, 4);
  std::vector<int64_t> completion_order;
  std::vector<Buf> bufs;
  bufs.reserve(4);
  const int64_t blknos[] = {100, 50, 150, 75};
  for (int64_t blk : blknos) {
    bufs.push_back(MakeIoBuf(&drv, blk, /*read=*/true, &cache));
  }
  for (auto& b : bufs) {
    b.Set(kBufCall);
    b.iodone = [&](Buf& self) { completion_order.push_back(self.blkno); };
    drv.Strategy(b);
  }
  sim_.Run();
  // First issued request (100) goes straight to hardware; the rest sort into
  // an ascending sweep from 100: 150 first run, then 50, 75 next sweep.
  EXPECT_EQ(completion_order, (std::vector<int64_t>{100, 150, 50, 75}));
}

TEST_F(DevTest, RamDiskSynchronousCompletion) {
  RamDisk ram(&cpu_, 1 << 20);
  BufferCache cache(&cpu_, 4);
  Buf b = MakeIoBuf(&ram, 3, /*read=*/false, &cache);
  (*b.data)[0] = 0x5A;
  b.Set(kBufCall);
  bool done = false;
  b.iodone = [&](Buf&) { done = true; };
  const SimDuration charge = ram.Strategy(b);
  EXPECT_TRUE(done);  // completed before Strategy returned
  EXPECT_EQ(charge, cpu_.costs().BcopyTime(kBlockSize));
  EXPECT_EQ(ram.PeekBlock(3)[0], 0x5A);
}

TEST_F(DevTest, PacedSinkDrainsAtConfiguredRate) {
  PacedSink dac(&sim_, "speaker", /*rate_bps=*/8000.0, /*fifo_bytes=*/16000);
  BufData chunk = MakeBufData();
  SimTime done_at = -1;
  ASSERT_TRUE(dac.WriteAsync(chunk, 8000, [&] { done_at = sim_.Now(); }));
  sim_.Run();
  EXPECT_EQ(done_at, Seconds(1));  // 8000 bytes at 8 KB/s
}

TEST_F(DevTest, PacedSinkRejectsWhenFifoFull) {
  PacedSink dac(&sim_, "speaker", 8000.0, 10000);
  BufData chunk = MakeBufData();
  EXPECT_TRUE(dac.WriteAsync(chunk, 8000, nullptr));
  EXPECT_FALSE(dac.WriteAsync(chunk, 8000, nullptr));  // 16000 > 10000
  EXPECT_LE(dac.WriteSpace(), 2000);
  // After a second of draining there is room again.
  sim_.RunUntil(Seconds(1));
  EXPECT_TRUE(dac.WriteAsync(chunk, 8000, nullptr));
}

TEST_F(DevTest, PacedSinkBackToBackChunksQueue) {
  PacedSink dac(&sim_, "dac", 1000.0, 1 << 20);
  BufData chunk = MakeBufData();
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dac.WriteAsync(chunk, 1000, [&] { done.push_back(sim_.Now()); }));
  }
  sim_.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{Seconds(1), Seconds(2), Seconds(3)}));
  EXPECT_EQ(dac.bytes_accepted(), 3000);
}

TEST_F(DevTest, FrameSourceDeliversFramesOnSchedule) {
  FrameSource fb(&sim_, "fb0", /*frame_bytes=*/1024, /*frame_interval=*/Milliseconds(100));
  std::vector<SimTime> arrivals;
  std::vector<int64_t> sizes;
  std::function<void()> pump = [&] {
    fb.ReadAsync(2048, [&](BufData data, int64_t n) {
      arrivals.push_back(sim_.Now());
      sizes.push_back(n);
      (void)data;
      if (arrivals.size() < 3) {
        pump();
      }
    });
  };
  pump();
  sim_.Run();
  EXPECT_EQ(arrivals, (std::vector<SimTime>{Milliseconds(100), Milliseconds(200),
                                            Milliseconds(300)}));
  EXPECT_EQ(sizes, (std::vector<int64_t>{1024, 1024, 1024}));
}

TEST_F(DevTest, FrameSourceContentIsVerifiable) {
  FrameSource fb(&sim_, "fb0", 512, Milliseconds(10));
  BufData got;
  int64_t got_n = 0;
  fb.ReadAsync(512, [&](BufData d, int64_t n) {
    got = std::move(d);
    got_n = n;
  });
  sim_.Run();
  ASSERT_EQ(got_n, 512);
  std::vector<uint8_t> expect;
  FrameSource::FillFrame(0, 512, &expect);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), got->begin()));
}

TEST_F(DevTest, FrameSourcePartialReadsWalkTheFrame) {
  FrameSource fb(&sim_, "fb0", 1024, Milliseconds(10));
  std::vector<int64_t> sizes;
  std::function<void()> pump = [&] {
    fb.ReadAsync(400, [&](BufData, int64_t n) {
      sizes.push_back(n);
      if (sizes.size() < 3) {
        pump();
      }
    });
  };
  pump();
  sim_.Run();
  // 400 + 400 + 224 covers one 1024-byte frame.
  EXPECT_EQ(sizes, (std::vector<int64_t>{400, 400, 224}));
}

TEST_F(DevTest, FrameSourceRejectsConcurrentRequests) {
  FrameSource fb(&sim_, "fb0", 512, Milliseconds(10));
  EXPECT_TRUE(fb.ReadAsync(512, [](BufData, int64_t) {}));
  EXPECT_FALSE(fb.ReadAsync(512, [](BufData, int64_t) {}));
  sim_.Run();
}

TEST_F(DevTest, NullDeviceAcceptsEverything) {
  NullDevice null(&sim_);
  BufData chunk = MakeBufData();
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(null.WriteAsync(chunk, kBlockSize, [&] { ++done; }));
  }
  sim_.Run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(null.bytes_sunk(), 100 * kBlockSize);
  EXPECT_EQ(sim_.Now(), 0);
}

TEST_F(DevTest, DiskDriverPipelinesQueuedRequests) {
  DiskDriver drv(&cpu_, &sim_, Rz58Params());
  BufferCache cache(&cpu_, 32);
  int done = 0;
  std::vector<Buf> bufs;
  bufs.reserve(16);
  for (int64_t i = 0; i < 16; ++i) {
    bufs.push_back(MakeIoBuf(&drv, i, /*read=*/true, &cache));
  }
  const SimTime t0 = sim_.Now();
  for (auto& b : bufs) {
    b.Set(kBufCall);
    b.iodone = [&](Buf&) { ++done; };
    drv.Strategy(b);
  }
  sim_.Run();
  EXPECT_EQ(done, 16);
  // Sequential stream of 16 blocks: after the first seek+rotation the rest
  // ride the media/cache, so well under 16 * (seek + rotation).
  EXPECT_LT(sim_.Now() - t0, Milliseconds(120));
}

}  // namespace
}  // namespace ikdp
