// Tests for the SLO monitor (src/metrics/slo.h) and the span derivation /
// export helpers (src/metrics/span_trace.h): online percentiles and goodput,
// the sim-time stall watchdog's flag-once/progress-clears discipline,
// TraceLog pair derivation into child spans, per-request CPU breakdowns, and
// the folded-stack / Chrome / extended-telemetry exports round-tripping
// through the bundled JSON reader.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/kern/cpu.h"
#include "src/metrics/slo.h"
#include "src/metrics/span_trace.h"
#include "src/metrics/trace_export.h"
#include "src/sim/kspan.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace ikdp {
namespace {

TEST(SloMonitor, PercentilesGoodputAndWindow) {
  SloMonitor slo(Seconds(10));
  // 10 requests, 1..10 ms latency, 1000 bytes each, back to back.
  for (uint64_t i = 1; i <= 10; ++i) {
    const SimTime start = static_cast<SimTime>(i) * 100000;
    slo.OnRequestStart(i, start);
    slo.OnRequestEnd(i, start + Milliseconds(static_cast<int64_t>(i)), 1000, false);
  }
  const SloReport r = slo.Report(Milliseconds(100));
  EXPECT_EQ(r.completed, 10u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.open, 0u);
  EXPECT_EQ(r.bytes, 10000);
  // Log2 buckets report conservative upper bounds: ordered, median-covering,
  // and max is the exact maximum sample.
  EXPECT_GE(r.p50_ns, Milliseconds(5));
  EXPECT_LE(r.p50_ns, r.p99_ns);
  EXPECT_LE(r.p99_ns, r.p999_ns);
  EXPECT_LE(r.p999_ns, Milliseconds(16));
  EXPECT_EQ(r.max_ns, Milliseconds(10));
  // Window: first arrival to last completion.
  EXPECT_EQ(r.window_start, 100000);
  EXPECT_EQ(r.window_end, 10 * 100000 + Milliseconds(10));
  const double window_s = static_cast<double>(r.window_end - r.window_start) / 1e9;
  EXPECT_NEAR(r.goodput_bps, 10000.0 / window_s, 1.0);
}

TEST(SloMonitor, ErrorCompletionsCountLatencyButNotBytes) {
  SloMonitor slo(Seconds(10));
  slo.OnRequestStart(1, 0);
  slo.OnRequestEnd(1, Milliseconds(2), 5000, /*error=*/true);
  slo.OnRequestStart(2, 0);
  slo.OnRequestEnd(2, Milliseconds(1), 3000, /*error=*/false);
  const SloReport r = slo.Report(Milliseconds(5));
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(r.bytes, 3000);  // the failed request's bytes are not goodput
  EXPECT_EQ(slo.latency().count(), 2u);  // but its latency was observed
}

TEST(SloMonitor, UnknownIdsAreIgnored) {
  SloMonitor slo(Seconds(1));
  slo.OnRequestProgress(99, Milliseconds(1));
  slo.OnRequestEnd(99, Milliseconds(2), 1000, false);
  const SloReport r = slo.Report(Milliseconds(3));
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.bytes, 0);
}

TEST(SloMonitor, StallWatchdogFlagsOnceAndProgressClears) {
  SloMonitor slo(Milliseconds(10));
  slo.OnRequestStart(1, 0);
  slo.OnRequestStart(2, 0);

  // Under threshold: nothing.
  EXPECT_TRUE(slo.CheckStalls(Milliseconds(10)).empty());

  // Over threshold: both flag, deterministically in id order.
  std::vector<uint64_t> stalled = slo.CheckStalls(Milliseconds(11));
  ASSERT_EQ(stalled.size(), 2u);
  EXPECT_EQ(stalled[0], 1u);
  EXPECT_EQ(stalled[1], 2u);

  // A flagged request does not re-flag while still silent.
  EXPECT_TRUE(slo.CheckStalls(Milliseconds(25)).empty());
  EXPECT_EQ(slo.Report(Milliseconds(25)).stall_flags, 2u);

  // Progress clears the flag; a NEW silence re-flags.
  slo.OnRequestProgress(1, Milliseconds(30));
  EXPECT_TRUE(slo.CheckStalls(Milliseconds(35)).empty());
  stalled = slo.CheckStalls(Milliseconds(41));
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], 1u);
  EXPECT_EQ(slo.Report(Milliseconds(41)).stall_flags, 3u);

  // Completion retires the id entirely.
  slo.OnRequestEnd(1, Milliseconds(50), 100, false);
  slo.OnRequestEnd(2, Milliseconds(50), 100, false);
  EXPECT_TRUE(slo.CheckStalls(Seconds(1)).empty());
}

// --- span derivation from trace pairs ---

TEST(SpanTraceBuilder, DerivesChildSpansFromDocumentedPairs) {
  KspanCollector c;
  const SpanId req = c.Begin(0, "request", kNoSpan);
  SpanTraceBuilder builder(&c);

  // A syscall interval stamped with the request's span.
  TraceRecord enter;
  enter.time = 100;
  enter.kind = TraceKind::kSyscallEnter;
  enter.a = 7;  // pid
  enter.tag = "splice";
  enter.span = req;
  builder.Observe(enter);
  EXPECT_EQ(builder.PendingIntervals(), 1u);

  TraceRecord exit = enter;
  exit.time = 900;
  exit.kind = TraceKind::kSyscallExit;
  builder.Observe(exit);
  EXPECT_EQ(builder.PendingIntervals(), 0u);

  // A disk transfer keyed by (device, serial).
  TraceRecord dd;
  dd.time = 200;
  dd.kind = TraceKind::kDiskDispatch;
  dd.a = 3;  // serial
  dd.b = 8192;
  dd.tag = "RZ56";
  dd.span = req;
  builder.Observe(dd);
  TraceRecord dc = dd;
  dc.time = 700;
  dc.kind = TraceKind::kDiskComplete;
  builder.Observe(dc);

  ASSERT_EQ(builder.derived().count("syscall"), 1u);
  ASSERT_EQ(builder.derived().count("disk.xfer"), 1u);

  // Derived spans nest under the request and carry the interval bounds.
  int found = 0;
  for (const SpanRecord& s : c.spans()) {
    if (std::string(s.name) == "syscall") {
      EXPECT_EQ(s.parent, req);
      EXPECT_EQ(s.start, 100);
      EXPECT_EQ(s.end, 900);
      ++found;
    } else if (std::string(s.name) == "disk.xfer") {
      EXPECT_EQ(s.parent, req);
      EXPECT_EQ(s.start, 200);
      EXPECT_EQ(s.end, 700);
      ++found;
    }
  }
  EXPECT_EQ(found, 2);

  c.End(1000, req);
  std::string err;
  EXPECT_TRUE(c.CheckBalanced(&err)) << err;
}

// --- per-request CPU breakdowns and exports ---

// Two requests with child spans and a hand-built attribution ledger.
struct BreakdownFixture {
  KspanCollector c;
  SpanId r1 = kNoSpan;
  SpanId r2 = kNoSpan;
  SpanId child1 = kNoSpan;
  std::map<CpuSystem::ChargeKey, SimDuration> attr;

  BreakdownFixture() {
    r1 = c.Begin(0, "request", kNoSpan, /*arg=*/1);
    child1 = c.Begin(10, "splice.stream", r1);
    r2 = c.Begin(20, "request", kNoSpan, /*arg=*/2);
    c.End(500, child1, 4096);
    c.End(600, r1, 4096);
    c.End(800, r2, 4096);
    attr[{CpuSystem::ChargeBucket::kProcess, "process", r1}] = 300;
    attr[{CpuSystem::ChargeBucket::kInterrupt, "disk", child1}] = 150;
    attr[{CpuSystem::ChargeBucket::kProcess, "process", r2}] = 200;
    // Charges on spans nobody minted fold under "untracked".
    attr[{CpuSystem::ChargeBucket::kInterrupt, "net", kNoSpan}] = 42;
  }
};

TEST(RequestBreakdowns, RollUpChildChargesToTheRoot) {
  BreakdownFixture f;
  const std::vector<RequestBreakdown> rows = BuildRequestBreakdowns(f.c, f.attr);
  ASSERT_EQ(rows.size(), 2u);  // one per ROOT, in mint order
  EXPECT_EQ(rows[0].root, f.r1);
  EXPECT_EQ(rows[0].arg, 1);
  EXPECT_EQ(rows[0].Latency(), 600);
  EXPECT_EQ(rows[0].cpu_total, 450);  // root's own 300 + child's 150
  EXPECT_EQ(rows[0].cpu.at("process/process"), 300);
  EXPECT_EQ(rows[0].cpu.at("interrupt/disk"), 150);
  EXPECT_EQ(rows[1].root, f.r2);
  EXPECT_EQ(rows[1].cpu_total, 200);
}

TEST(RequestBreakdowns, FoldedStacksCoverEveryAttributedNanosecond) {
  BreakdownFixture f;
  std::ostringstream os;
  ExportFoldedStacks(f.c, f.attr, os);
  const std::string out = os.str();
  // Child charges fold under the request path; unknown spans under
  // "untracked".
  EXPECT_NE(out.find("request;splice.stream;interrupt:disk 150"), std::string::npos) << out;
  EXPECT_NE(out.find("untracked;interrupt:net 42"), std::string::npos) << out;
  // The lines' values sum to the ledger total.
  int64_t total = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    total += std::stoll(line.substr(sp + 1));
  }
  EXPECT_EQ(total, 300 + 150 + 200 + 42);
}

TEST(RequestBreakdowns, ChromeTraceAndSpanSectionsRoundTrip) {
  BreakdownFixture f;

  std::ostringstream chrome;
  ExportSpanChromeTrace(f.c, chrome);
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(chrome.str(), &parsed)) << chrome.str();
  const JsonValue* events = parsed.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  // One begin + one end event per (closed) span.
  EXPECT_EQ(events->items.size(), 2 * f.c.spans().size());

  // The extended-telemetry sections parse when wrapped as an object and
  // mirror the collector and the ledger exactly.
  const std::string sections = RenderSpanSections(f.c, f.attr);
  JsonValue doc;
  ASSERT_TRUE(ParseJson("{" + sections + "}", &doc)) << sections;
  const JsonValue* spans = doc.Get("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->Get("begun")->number, 3.0);
  EXPECT_EQ(spans->Get("ended")->number, 3.0);
  EXPECT_EQ(spans->Get("bad_ends")->number, 0.0);
  EXPECT_EQ(spans->Get("by_name")->Get("request")->number, 2.0);
  const JsonValue* attr = doc.Get("attribution");
  ASSERT_NE(attr, nullptr);
  ASSERT_TRUE(attr->IsArray());
  ASSERT_EQ(attr->items.size(), f.attr.size());
  double ns_total = 0;
  for (const JsonValue& row : attr->items) {
    ASSERT_NE(row.Get("bucket"), nullptr);
    ASSERT_NE(row.Get("subsystem"), nullptr);
    ASSERT_NE(row.Get("span"), nullptr);
    ns_total += row.Get("ns")->number;
  }
  EXPECT_EQ(ns_total, 300 + 150 + 200 + 42);
}

}  // namespace
}  // namespace ikdp
