// Integration tests for the splice engine and syscall: file-to-file copies
// across disk types, content integrity, flow-control invariants, async
// (FASYNC + SIGIO) completion, socket and device endpoints, and the
// zero-copy buffer-sharing machinery.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/null_device.h"
#include "src/dev/paced_sink.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/net/udp_socket.h"
#include "src/os/kernel.h"
#include "src/sim/simulator.h"
#include "src/splice/file_endpoint.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 40503u + 13) >> 3 & 0xff); }

// A machine with two RAM disks and two SCSI disks, all mounted.
class SpliceTest : public ::testing::Test {
 protected:
  SpliceTest()
      : kernel_(&sim_, DecStation5000Costs()),
        rama_(&kernel_.cpu(), 16 << 20),
        ramb_(&kernel_.cpu(), 16 << 20),
        scsia_(&kernel_.cpu(), &sim_, Rz56Params()),
        scsib_(&kernel_.cpu(), &sim_, Rz56Params()) {
    fs_rama_ = kernel_.MountFs(&rama_, "rama");
    fs_ramb_ = kernel_.MountFs(&ramb_, "ramb");
    fs_scsia_ = kernel_.MountFs(&scsia_, "scsia");
    fs_scsib_ = kernel_.MountFs(&scsib_, "scsib");
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  // Verifies dst file contents equal Fill over [0, nbytes) after flushing.
  void VerifyFile(FileSystem* fs, const std::string& name, int64_t nbytes) {
    kernel_.cache().FlushAllInstant();  // metadata may still be delayed-write
    Inode* ip = fs->Lookup(name);
    ASSERT_NE(ip, nullptr);
    EXPECT_EQ(ip->size, nbytes);
    const std::vector<uint8_t> back = fs->ReadFileInstant(ip);
    ASSERT_EQ(static_cast<int64_t>(back.size()), nbytes);
    for (int64_t i = 0; i < nbytes; ++i) {
      ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
    }
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk rama_;
  RamDisk ramb_;
  DiskDriver scsia_;
  DiskDriver scsib_;
  FileSystem* fs_rama_;
  FileSystem* fs_ramb_;
  FileSystem* fs_scsia_;
  FileSystem* fs_scsib_;
};

TEST_F(SpliceTest, FileToFileRamDisks) {
  constexpr int64_t kBytes = 64 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  int64_t moved = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    EXPECT_GE(src, 0);
    EXPECT_GE(dst, 0);
    moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(moved, kBytes);
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, FileToFileScsiDisks) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  int64_t moved = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:dst", kOpenWrite | kOpenCreate);
    moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(moved, kBytes);
  VerifyFile(fs_scsib_, "dst", kBytes);
}

TEST_F(SpliceTest, PartialTailBlock) {
  constexpr int64_t kBytes = 5 * kBlockSize + 1234;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  int64_t moved = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(moved, kBytes);
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, SizeLimitedSpliceAdvancesOffset) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  std::vector<int64_t> moved;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    // Four sequential quarter-file splices, like the paper's video frames.
    for (int i = 0; i < 4; ++i) {
      moved.push_back(co_await kernel_.Splice(p, src, dst, 4 * kBlockSize));
    }
    // A fifth returns 0: EOF.
    moved.push_back(co_await kernel_.Splice(p, src, dst, 4 * kBlockSize));
  });
  EXPECT_EQ(moved, (std::vector<int64_t>{4 * kBlockSize, 4 * kBlockSize, 4 * kBlockSize,
                                         4 * kBlockSize, 0}));
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, AsyncSpliceSignalsSigio) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  int sigio_count = 0;
  int64_t rval = -1;
  SimTime signalled_at = -1;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] {
      ++sigio_count;
      signalled_at = sim_.Now();
    });
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, src, /*fasync=*/true);
    rval = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    EXPECT_EQ(sigio_count, 0);  // returned immediately, transfer in flight
    co_await kernel_.Pause(p);
  });
  EXPECT_EQ(rval, 0);
  EXPECT_EQ(sigio_count, 1);
  EXPECT_GT(signalled_at, 0);
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, CallingProcessKeepsRunningDuringAsyncSplice) {
  constexpr int64_t kBytes = 128 * kBlockSize;  // 1 MB between SCSI disks
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  int64_t ops_before_sigio = 0;
  bool done = false;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { done = true; });
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:dst", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, src, true);
    co_await kernel_.Splice(p, src, dst, kSpliceEof);
    // "A calling process may continue user-mode execution while I/O is
    // proceeding between objects."
    while (!done) {
      co_await kernel_.cpu().Use(p, Milliseconds(1));
      ++ops_before_sigio;
      p.TakeSignals();
    }
  });
  // The 1 MB SCSI-to-SCSI transfer takes hundreds of ms; the process must
  // have made substantial progress meanwhile.
  EXPECT_GT(ops_before_sigio, 100);
  VerifyFile(fs_scsib_, "dst", kBytes);
}

TEST_F(SpliceTest, FlowControlRespectsWatermarks) {
  // Drive the engine directly so the descriptor's flow-control stats can be
  // inspected before it is destroyed.
  constexpr int64_t kBytes = 64 * kBlockSize;
  Inode* src_ip = fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  Inode* dst_ip = fs_scsib_->Create("dst");
  SpliceDescriptor::Stats observed;
  int64_t moved = -1;
  Run([&](Process& p) -> Task<> {
    std::vector<int64_t> smap =
        co_await fs_scsia_->MapRange(p, src_ip, kBytes / kBlockSize, false, false);
    std::vector<int64_t> dmap =
        co_await fs_scsib_->MapRange(p, dst_ip, kBytes / kBlockSize, true, true);
    auto source = std::make_unique<FileSpliceSource>(&kernel_.cache(), fs_scsia_->dev(),
                                                     std::move(smap), kBytes);
    auto sink =
        std::make_unique<FileSpliceSink>(&kernel_.cache(), fs_scsib_->dev(), std::move(dmap));
    struct Waiter {
      bool done = false;
    } w;
    SpliceDescriptor* d =
        kernel_.splice_engine().Start(std::move(source), std::move(sink), SpliceOptions{},
                                      [&](int64_t m) {
                                        moved = m;
                                        observed = d->stats();
                                        w.done = true;
                                        kernel_.cpu().Wakeup(&w);
                                      });
    while (!w.done) {
      co_await kernel_.cpu().Sleep(p, &w, kPriWait);
    }
  });
  EXPECT_EQ(moved, kBytes);
  // "up to five additional reads" — never more than the refill batch.
  EXPECT_LE(observed.max_pending_reads, 5);
  EXPECT_GE(observed.max_pending_reads, 2);  // real pipelining happened
  EXPECT_LE(observed.max_pending_writes, 8);
  EXPECT_GT(observed.refills, 0u);
}

TEST_F(SpliceTest, SpliceRejectsMisalignedOffset) {
  fs_rama_->CreateFileInstant("src", 4 * kBlockSize, Fill);
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    co_await kernel_.Lseek(p, src, 100);  // misaligned
    rval = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
}

TEST_F(SpliceTest, SpliceRejectsBadFds) {
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    rval = co_await kernel_.Splice(p, 7, 8, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
}

TEST_F(SpliceTest, EmptySourceCompletesWithZero) {
  fs_rama_->CreateFileInstant("empty", 0, Fill);
  int64_t rval = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:empty", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(rval, 0);
}

TEST_F(SpliceTest, FileToPacedDeviceRunsAtPlaybackRate) {
  // 64 KB of "audio" at 64 KB/s should take ~1 s, driven by the device.
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("audio", kBytes, Fill);
  PacedSink dac(&sim_, "speaker", /*rate_bps=*/65536.0, /*fifo_bytes=*/4 * kBlockSize);
  kernel_.RegisterCharDev("speaker", &dac);
  SimTime done_at = -1;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:audio", kOpenRead);
    const int dst = co_await kernel_.Open(p, "/dev/speaker", kOpenWrite);
    const int64_t moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    EXPECT_EQ(moved, kBytes);
    done_at = sim_.Now();
  });
  EXPECT_EQ(dac.bytes_accepted(), kBytes);
  EXPECT_GT(done_at, MillisecondsF(900.0));
  EXPECT_LT(done_at, MillisecondsF(1300.0));
}

TEST_F(SpliceTest, FileToSocketToFileRelay) {
  // a: file -> socket splice; b: receives and writes (read/write loop).
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  UdpSocket sa(&kernel_.cpu());
  UdpSocket sb(&kernel_.cpu());
  NetworkLink wire(&sim_, EthernetParams());
  sa.ConnectTo(&sb, &wire);

  kernel_.Spawn("sender", [&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int sock = kernel_.OpenSocket(p, &sa);
    const int64_t moved = co_await kernel_.Splice(p, src, sock, kSpliceEof);
    EXPECT_EQ(moved, kBytes);
    // End-of-stream datagram.
    co_await kernel_.Write(p, sock, nullptr, 0);
  });
  int64_t received = 0;
  bool eof = false;
  kernel_.Spawn("receiver", [&](Process& p) -> Task<> {
    const int sock = kernel_.OpenSocket(p, &sb);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> buf;
    while (!eof) {
      const int64_t n = co_await kernel_.Read(p, sock, kBlockSize, &buf);
      if (n == 0) {
        eof = true;
        break;
      }
      if (n < 0) {
        continue;
      }
      co_await kernel_.Write(p, dst, buf.data(), n);
      received += n;
    }
    co_await kernel_.FsyncFd(p, dst);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(received, kBytes);
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, SocketToSocketSplice) {
  // src proc writes datagrams into socket s1 -> s2; a relay process splices
  // s2 -> s3 entirely in-kernel; sink proc reads from s4.
  // UDP has no end-to-end backpressure: the producer can outrun the relay,
  // so the intermediate receive buffers must absorb the full burst for this
  // test to be lossless (drops are legal and exercised in net_test).
  UdpSocket s1(&kernel_.cpu());
  UdpSocket s2(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  UdpSocket s3(&kernel_.cpu());
  UdpSocket s4(&kernel_.cpu(), 48 * 1024, 256 * 1024);
  NetworkLink l12(&sim_, EthernetParams());
  NetworkLink l34(&sim_, EthernetParams());
  s1.ConnectTo(&s2, &l12);
  s3.ConnectTo(&s4, &l34);

  constexpr int kDgrams = 20;
  constexpr int64_t kDgram = 4096;

  kernel_.Spawn("producer", [&](Process& p) -> Task<> {
    const int out = kernel_.OpenSocket(p, &s1);
    std::vector<uint8_t> payload(kDgram);
    for (int i = 0; i < kDgrams; ++i) {
      for (int64_t j = 0; j < kDgram; ++j) {
        payload[static_cast<size_t>(j)] = Fill(i * kDgram + j);
      }
      co_await kernel_.Write(p, out, payload);
    }
    co_await kernel_.Write(p, out, nullptr, 0);  // EOF marker
  });

  int64_t relayed = -1;
  kernel_.Spawn("relay", [&](Process& p) -> Task<> {
    const int in = kernel_.OpenSocket(p, &s2);
    const int out = kernel_.OpenSocket(p, &s3);
    relayed = co_await kernel_.Splice(p, in, out, kSpliceEof);
    // Forward the end-of-stream marker downstream.
    co_await kernel_.Write(p, out, nullptr, 0);
  });

  int64_t received = 0;
  bool content_ok = true;
  kernel_.Spawn("consumer", [&](Process& p) -> Task<> {
    const int in = kernel_.OpenSocket(p, &s4);
    std::vector<uint8_t> buf;
    for (;;) {
      const int64_t n = co_await kernel_.Read(p, in, kDgram, &buf);
      if (n <= 0) {
        break;
      }
      for (int64_t j = 0; j < n && content_ok; ++j) {
        content_ok = buf[static_cast<size_t>(j)] == Fill(received + j);
      }
      received += n;
    }
  });

  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(relayed, kDgrams * kDgram);
  EXPECT_EQ(received, kDgrams * kDgram);
  EXPECT_TRUE(content_ok);
  // The relay's splice forwarded the EOF marker too, so the consumer exits.
}

TEST_F(SpliceTest, ZeroCopyAblationStillCorrect) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  kernel_.splice_options().zero_copy = false;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    const int64_t moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    EXPECT_EQ(moved, kBytes);
  });
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, NoCalloutDeferralAblationStillCorrect) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  kernel_.splice_options().callout_deferral = false;
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:dst", kOpenWrite | kOpenCreate);
    const int64_t moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    EXPECT_EQ(moved, kBytes);
  });
  VerifyFile(fs_scsib_, "dst", kBytes);
}

TEST_F(SpliceTest, ZeroCopySharesDataAreas) {
  // With zero copy, the splice must not perform RAM-disk-to-RAM-disk byte
  // copies beyond the device transfers themselves: the transient write
  // header aliases the read buffer.  Observable as transient allocations
  // with zero extra bcopy charges in the cache.
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  Run([&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  EXPECT_EQ(kernel_.cache().stats().transient_allocs, 8u);
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(SpliceTest, ConcurrentSplicesShareTheEngine) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  fs_rama_->CreateFileInstant("s1", kBytes, Fill);
  fs_scsia_->CreateFileInstant("s2", kBytes, Fill);
  int64_t m1 = -1;
  int64_t m2 = -1;
  kernel_.Spawn("a", [&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "rama:s1", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:d1", kOpenWrite | kOpenCreate);
    m1 = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  kernel_.Spawn("b", [&](Process& p) -> Task<> {
    const int src = co_await kernel_.Open(p, "scsia:s2", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:d2", kOpenWrite | kOpenCreate);
    m2 = co_await kernel_.Splice(p, src, dst, kSpliceEof);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(m1, kBytes);
  EXPECT_EQ(m2, kBytes);
  EXPECT_EQ(kernel_.splice_engine().stats().splices_completed, 2u);
  VerifyFile(fs_ramb_, "d1", kBytes);
  VerifyFile(fs_scsib_, "d2", kBytes);
}


TEST_F(SpliceTest, ConcurrentFasyncSplicesCompleteWithCoalescedSigio) {
  // N concurrent FASYNC splices from ONE process: the paper's mechanism
  // carries no per-operation status, and pending SIGIOs coalesce, so the
  // process must discover per-stream completion itself (tell(2) on the
  // destination offset, which moves only when a splice finishes).
  constexpr int kStreams = 4;
  constexpr int64_t kBytes = 16 * kBlockSize;
  for (int i = 0; i < kStreams; ++i) {
    fs_rama_->CreateFileInstant("s" + std::to_string(i), kBytes, Fill);
  }
  int sigio_count = 0;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { ++sigio_count; });
    std::vector<int> dfd(kStreams);
    for (int i = 0; i < kStreams; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      dfd[static_cast<size_t>(i)] = co_await kernel_.Open(
          p, "ramb:d" + std::to_string(i), kOpenWrite | kOpenCreate);
      co_await kernel_.Fcntl(p, src, /*fasync=*/true);
      EXPECT_EQ(co_await kernel_.Splice(p, src, dfd[static_cast<size_t>(i)], kBytes), 0);
    }
    std::vector<bool> done(kStreams, false);
    int remaining = kStreams;
    while (remaining > 0) {
      const int sweep_start = sigio_count;
      for (int i = 0; i < kStreams; ++i) {
        if (done[static_cast<size_t>(i)]) {
          continue;
        }
        if (co_await kernel_.Tell(p, dfd[static_cast<size_t>(i)]) >= kBytes) {
          done[static_cast<size_t>(i)] = true;
          --remaining;
        }
      }
      if (remaining == 0) {
        break;
      }
      if (sigio_count != sweep_start) {
        continue;  // a completion landed mid-sweep; re-sweep instead of pausing
      }
      co_await kernel_.Pause(p);
    }
  });
  // Signals coalesce: anywhere from one SIGIO (all N merged) to one each.
  EXPECT_GE(sigio_count, 1);
  EXPECT_LE(sigio_count, kStreams);
  for (int i = 0; i < kStreams; ++i) {
    VerifyFile(fs_ramb_, "d" + std::to_string(i), kBytes);
  }
}

TEST_F(SpliceTest, AsyncCompletionSigioInterruptsSyncSplice) {
  // Cancel-while-pending ordering: a pending async splice completes while
  // the same process sits in a long SYNCHRONOUS splice.  The completion's
  // SIGIO interrupts the sync splice (a signal cancels it, Section 3), the
  // call returns its partial count, and the async transfer is unaffected.
  // The RAM-disk async splice is paced by the softclock (~250 ms for 1 MB),
  // long enough for the SCSI sync splice to make real progress first.
  constexpr int64_t kAsyncBytes = 128 * kBlockSize;  // RAM: ~250 ms
  constexpr int64_t kSyncBytes = 512 * kBlockSize;   // SCSI: hundreds of ms
  fs_rama_->CreateFileInstant("a", kAsyncBytes, Fill);
  fs_scsia_->CreateFileInstant("big", kSyncBytes, Fill);
  int sigio_count = 0;
  int64_t sync_moved = -1;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { ++sigio_count; });
    const int asrc = co_await kernel_.Open(p, "rama:a", kOpenRead);
    const int adst = co_await kernel_.Open(p, "ramb:da", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, asrc, /*fasync=*/true);
    EXPECT_EQ(co_await kernel_.Splice(p, asrc, adst, kAsyncBytes), 0);
    const int ssrc = co_await kernel_.Open(p, "scsia:big", kOpenRead);
    const int sdst = co_await kernel_.Open(p, "scsib:dbig", kOpenWrite | kOpenCreate);
    sync_moved = co_await kernel_.Splice(p, ssrc, sdst, kSpliceEof);
    EXPECT_EQ(sigio_count, 1);  // the handler ran at the sync splice's exit
  });
  // The sync splice was cut short by the async completion's signal...
  EXPECT_GT(sync_moved, 0);
  EXPECT_LT(sync_moved, kSyncBytes);
  // ...and the async transfer still finished intact.
  VerifyFile(fs_ramb_, "da", kAsyncBytes);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(SpliceTest, SignalInterruptsSynchronousSplice) {
  // Section 3: the splice runs "until an end of file condition is reached or
  // the operation is interrupted by the caller".  A signal during a long
  // synchronous splice cancels it; the call returns the partial byte count.
  constexpr int64_t kBytes = 512 * kBlockSize;  // 4 MB over slow SCSI disks
  fs_scsia_->CreateFileInstant("long", kBytes, Fill);
  int64_t moved = -1;
  SimTime returned_at = -1;
  Process* proc = kernel_.Spawn("splicer", [&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigAlrm, [] {});
    const int src = co_await kernel_.Open(p, "scsia:long", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:part", kOpenWrite | kOpenCreate);
    moved = co_await kernel_.Splice(p, src, dst, kSpliceEof);
    returned_at = sim_.Now();
  });
  sim_.After(Milliseconds(500), [&] { kernel_.cpu().Post(*proc, kSigAlrm); });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  // Partial progress: more than nothing, far less than the whole file, and
  // the call returned promptly after the signal (in-flight chunks drained).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kBytes / 2);
  EXPECT_GE(returned_at, Milliseconds(500));
  EXPECT_LT(returned_at, Milliseconds(900));
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

}  // namespace
}  // namespace ikdp
