// Unit tests for the hardware timing models: DiskModel, NetworkLink, costs.

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/hw/link.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

constexpr int64_t kBlock = 8192;

TEST(CostsTest, CopyTimesScaleLinearly) {
  const CostConfig c = DecStation5000Costs();
  EXPECT_EQ(c.BcopyTime(0), 0);
  EXPECT_NEAR(static_cast<double>(c.BcopyTime(2 * kBlock)),
              2.0 * static_cast<double>(c.BcopyTime(kBlock)), 2.0);
  // Kernel block copy: 8 KB at 20 MB/s (cache-warm) is ~410 us.
  EXPECT_GT(c.BcopyTime(kBlock), Microseconds(350));
  EXPECT_LT(c.BcopyTime(kBlock), Microseconds(500));
  // User copy: 8 KB at 6.7 MB/s (uncached) is ~1.2 ms.
  EXPECT_GT(c.CopyioTime(kBlock), Microseconds(1000));
  EXPECT_LT(c.CopyioTime(kBlock), Microseconds(1400));
}

class DiskTest : public ::testing::Test {
 protected:
  SimDuration TimeOneRequest(DiskModel& disk, int64_t offset, int64_t nbytes, bool is_read) {
    const SimTime start = sim_.Now();
    SimTime end = -1;
    disk.Submit(DiskRequest{offset, nbytes, is_read, [&](bool) { end = sim_.Now(); }});
    sim_.Run();
    EXPECT_GE(end, 0) << "request never completed";
    return end - start;
  }

  Simulator sim_;
};

TEST_F(DiskTest, FirstReadPaysSeekRotationTransfer) {
  DiskModel disk(&sim_, Rz56Params());
  const DiskParams& p = disk.params();
  const SimDuration t = TimeOneRequest(disk, 100 * kBlock, kBlock, /*is_read=*/true);
  // First access from cylinder 0 to a nearby cylinder: overhead + small seek
  // + avg rotation + media transfer.
  const SimDuration media = TransferTime(kBlock, p.media_rate_bps);
  EXPECT_GT(t, p.controller_overhead + p.avg_rotational_latency + media);
  EXPECT_LT(t, p.controller_overhead + p.max_seek + p.avg_rotational_latency + media +
                   Milliseconds(1));
}

TEST_F(DiskTest, SequentialReadsHitReadAheadCache) {
  DiskModel disk(&sim_, Rz56Params());
  const SimDuration t0 = TimeOneRequest(disk, 0, kBlock, true);
  // Give the drive time to prefetch the next blocks into its cache.
  sim_.RunUntil(sim_.Now() + Milliseconds(50));
  const SimDuration t1 = TimeOneRequest(disk, kBlock, kBlock, true);
  // The second read is served from the cache segment at bus rate: no seek,
  // no rotation, no media transfer.
  EXPECT_LT(t1, t0 / 2);
  EXPECT_EQ(t1, disk.params().controller_overhead +
                    TransferTime(kBlock, disk.params().bus_rate_bps));
  EXPECT_EQ(disk.stats().read_cache_hits, 1u);
}

TEST_F(DiskTest, CacheHitWaitsForPrefetchFrontier) {
  DiskModel disk(&sim_, Rz56Params());
  const DiskParams& p = disk.params();
  TimeOneRequest(disk, 0, kBlock, true);
  // Immediately read the last block of the 64 KB segment: the prefetch
  // frontier (filling at media rate) has not reached it yet, so the request
  // waits roughly (56 KB - already_filled) / media_rate.
  const SimDuration t = TimeOneRequest(disk, 7 * kBlock, kBlock, true);
  const SimDuration full_fill = TransferTime(7 * kBlock, p.media_rate_bps);
  EXPECT_LT(t, full_fill + TransferTime(kBlock, p.bus_rate_bps) + p.controller_overhead +
                   Milliseconds(1));
  EXPECT_GT(t, TransferTime(kBlock, p.bus_rate_bps));
}

TEST_F(DiskTest, SequentialMediaAccessSkipsRotationalLatency) {
  DiskParams p = Rz56Params();
  p.cache_bytes = 0;  // force every read to the media
  DiskModel disk(&sim_, p);
  TimeOneRequest(disk, 0, kBlock, true);
  const SimDuration t1 = TimeOneRequest(disk, kBlock, kBlock, true);
  // Same cylinder, physically sequential: overhead + transfer only.
  EXPECT_EQ(t1, p.controller_overhead + TransferTime(kBlock, p.media_rate_bps));
}

TEST_F(DiskTest, NonSequentialWritePaysRotation) {
  DiskModel disk(&sim_, Rz56Params());
  const DiskParams& p = disk.params();
  TimeOneRequest(disk, 0, kBlock, false);
  const SimDuration t = TimeOneRequest(disk, 10 * kBlock, kBlock, false);
  EXPECT_GE(t, p.controller_overhead + p.avg_rotational_latency +
                   TransferTime(kBlock, p.media_rate_bps));
}

TEST_F(DiskTest, WriteInvalidatesOverlappingSegment) {
  DiskModel disk(&sim_, Rz56Params());
  TimeOneRequest(disk, 0, kBlock, true);         // creates segment [8K, 72K)
  TimeOneRequest(disk, 2 * kBlock, kBlock, false);  // overlaps the segment
  const uint64_t hits_before = disk.stats().read_cache_hits;
  TimeOneRequest(disk, kBlock, kBlock, true);
  EXPECT_EQ(disk.stats().read_cache_hits, hits_before);  // miss: segment gone
}

TEST_F(DiskTest, RequestsServiceFifo) {
  DiskParams p = Rz56Params();
  p.sched = DiskSched::kFifo;
  p.max_coalesce_bytes = 0;  // strict pre-scheduler behaviour
  DiskModel disk(&sim_, p);
  std::vector<int> order;
  disk.Submit(DiskRequest{0, kBlock, true, [&](bool) { order.push_back(0); }});
  disk.Submit(DiskRequest{50 * kBlock, kBlock, true, [&](bool) { order.push_back(1); }});
  disk.Submit(DiskRequest{kBlock, kBlock, true, [&](bool) { order.push_back(2); }});
  EXPECT_EQ(disk.QueueDepth(), 3u);
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(disk.Idle());
  EXPECT_EQ(disk.stats().max_queue_depth, 3u);
  EXPECT_EQ(disk.stats().coalesced, 0u);
  EXPECT_EQ(disk.stats().queue_sort_passes, 0u);
}

TEST_F(DiskTest, CLookServicesAscendingWithWrap) {
  DiskParams p = Rz56Params();
  ASSERT_EQ(p.sched, DiskSched::kCLook);  // the default policy
  DiskModel disk(&sim_, p);
  std::vector<int> order;
  // Request 0 starts immediately; 1 (far) and 2 (near, but arrives later)
  // queue behind it.  C-LOOK resumes the sweep at the end of request 0, so
  // the near request is picked before the far one despite arriving last.
  disk.Submit(DiskRequest{0, kBlock, true, [&](bool) { order.push_back(0); }});
  disk.Submit(DiskRequest{50 * kBlock, kBlock, true, [&](bool) { order.push_back(1); }});
  disk.Submit(DiskRequest{10 * kBlock, kBlock, true, [&](bool) { order.push_back(2); }});
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
  EXPECT_GT(disk.stats().queue_sort_passes, 0u);

  // Wrap: with the sweep position past both, the lowest offset goes first.
  order.clear();
  disk.Submit(DiskRequest{200 * kBlock, kBlock, true, [&](bool) { order.push_back(0); }});
  disk.Submit(DiskRequest{30 * kBlock, kBlock, true, [&](bool) { order.push_back(1); }});
  disk.Submit(DiskRequest{20 * kBlock, kBlock, true, [&](bool) { order.push_back(2); }});
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(DiskTest, AdjacentReadsCoalesceIntoOneTransfer) {
  DiskParams p = Rz56Params();
  p.cache_bytes = 0;  // keep timing on the media path for exact math
  DiskModel disk(&sim_, p);
  std::vector<SimTime> done(3, -1);
  std::vector<int> order;
  disk.Submit(DiskRequest{100 * kBlock, kBlock, true, [&](bool) {
    done[0] = sim_.Now();
    order.push_back(0);
  }});
  disk.Submit(DiskRequest{101 * kBlock, kBlock, true, [&](bool) {
    done[1] = sim_.Now();
    order.push_back(1);
  }});
  disk.Submit(DiskRequest{102 * kBlock, kBlock, true, [&](bool) {
    done[2] = sim_.Now();
    order.push_back(2);
  }});
  sim_.Run();
  // Request 0 went out alone; 1 and 2 were queued adjacent to it and merge
  // into a single physical transfer: one completion time for both, in
  // ascending-offset order, with one controller overhead and no extra
  // rotation (sequential to the first transfer).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(done[1], done[2]);
  EXPECT_EQ(disk.stats().coalesced, 1u);
  EXPECT_EQ(done[2] - done[0],
            p.controller_overhead + TransferTime(2 * kBlock, p.media_rate_bps));
}

TEST_F(DiskTest, CoalescingRespectsDirectionAndBound) {
  DiskParams p = Rz56Params();
  p.cache_bytes = 0;
  p.max_coalesce_bytes = 2 * kBlock;  // at most one extra block per transfer
  DiskModel disk(&sim_, p);
  int completions = 0;
  auto count = [&](bool) { ++completions; };
  // A write wedged between adjacent reads must not merge with them.
  disk.Submit(DiskRequest{100 * kBlock, kBlock, true, count});
  disk.Submit(DiskRequest{101 * kBlock, kBlock, false, count});
  disk.Submit(DiskRequest{101 * kBlock, kBlock, true, count});
  sim_.Run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(disk.stats().coalesced, 0u);

  // Four adjacent reads behind a busy disk: the bound caps each transfer at
  // two blocks, so they go out as two coalesced pairs.
  disk.ResetStats();
  completions = 0;
  disk.Submit(DiskRequest{200 * kBlock, kBlock, true, count});
  disk.Submit(DiskRequest{300 * kBlock, kBlock, true, count});
  disk.Submit(DiskRequest{301 * kBlock, kBlock, true, count});
  disk.Submit(DiskRequest{302 * kBlock, kBlock, true, count});
  disk.Submit(DiskRequest{303 * kBlock, kBlock, true, count});
  sim_.Run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(disk.stats().coalesced, 2u);
  EXPECT_EQ(disk.stats().max_queue_depth, 5u);
}

TEST_F(DiskTest, StatsAccumulate) {
  DiskModel disk(&sim_, Rz58Params());
  TimeOneRequest(disk, 0, kBlock, true);
  TimeOneRequest(disk, kBlock, kBlock, true);
  TimeOneRequest(disk, 0, kBlock, false);
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().bytes_read, 2 * kBlock);
  EXPECT_EQ(disk.stats().bytes_written, kBlock);
  EXPECT_GT(disk.stats().busy_time, 0);
}

TEST_F(DiskTest, Rz58SegmentedCacheTracksMultipleStreams) {
  DiskModel disk(&sim_, Rz58Params());
  // Interleave two sequential streams far apart; both should enjoy read-ahead
  // hits because the RZ58 keeps 4 independent segments.
  const int64_t base_a = 0;
  const int64_t base_b = 500ll * 1000 * 1000;
  TimeOneRequest(disk, base_a, kBlock, true);
  TimeOneRequest(disk, base_b, kBlock, true);
  TimeOneRequest(disk, base_a + kBlock, kBlock, true);
  TimeOneRequest(disk, base_b + kBlock, kBlock, true);
  EXPECT_EQ(disk.stats().read_cache_hits, 2u);
}

TEST_F(DiskTest, Rz56SingleSegmentThrashesOnTwoStreams) {
  DiskModel disk(&sim_, Rz56Params());
  const int64_t base_a = 0;
  const int64_t base_b = 300ll * 1000 * 1000;
  TimeOneRequest(disk, base_a, kBlock, true);
  TimeOneRequest(disk, base_b, kBlock, true);  // evicts stream A's segment
  TimeOneRequest(disk, base_a + kBlock, kBlock, true);
  EXPECT_EQ(disk.stats().read_cache_hits, 0u);
}

TEST_F(DiskTest, SustainedSequentialReadApproachesMediaRate) {
  DiskModel disk(&sim_, Rz56Params());
  constexpr int kBlocks = 256;  // 2 MB
  int done = 0;
  const SimTime start = sim_.Now();
  for (int i = 0; i < kBlocks; ++i) {
    disk.Submit(DiskRequest{i * kBlock, kBlock, true, [&](bool) { ++done; }});
  }
  sim_.Run();
  EXPECT_EQ(done, kBlocks);
  const double secs = ToSeconds(sim_.Now() - start);
  const double rate = kBlocks * kBlock / secs;
  // Sequential streaming should land within a factor ~[0.55, 1.0] of the
  // media rate (controller overhead and bus transfers cost something).
  EXPECT_GT(rate, 0.55 * disk.params().media_rate_bps);
  EXPECT_LT(rate, 1.0 * disk.params().media_rate_bps);
}


TEST_F(DiskTest, SeekTimeMonotoneInDistance) {
  // Property: longer seeks never take less time.  Probed by timing cold
  // random reads at increasing distances from cylinder 0.
  DiskParams p = Rz56Params();
  p.cache_bytes = 0;  // no read-ahead interference
  SimDuration prev = 0;
  const int64_t cyl_bytes = p.bytes_per_cylinder;
  for (int64_t cyls : {1, 10, 100, 400, 800}) {
    DiskModel disk(&sim_, p);
    const int64_t offset = (cyls * cyl_bytes / kBlock) * kBlock;
    const SimDuration t = TimeOneRequest(disk, offset, kBlock, true);
    EXPECT_GE(t, prev) << "seek of " << cyls << " cylinders";
    prev = t;
  }
}

TEST_F(DiskTest, PrefetchFrontierNeverExceedsSegment) {
  DiskModel disk(&sim_, Rz56Params());
  TimeOneRequest(disk, 0, kBlock, true);  // starts a 64 KB segment at 8 KB
  // Long after the segment has fully filled, a read at its far edge is a
  // pure bus-rate hit; a read just beyond it is a miss.
  sim_.RunUntil(sim_.Now() + Seconds(1));
  const SimDuration hit = TimeOneRequest(disk, 8 * kBlock, kBlock, true);
  EXPECT_EQ(hit, disk.params().controller_overhead +
                     TransferTime(kBlock, disk.params().bus_rate_bps));
}

TEST(LinkTest, FrameTransmissionTime) {
  Simulator sim;
  NetworkLink link(&sim, EthernetParams());
  SimTime delivered = -1;
  link.Send(1466, [&](int64_t bytes) {
    EXPECT_EQ(bytes, 1466);
    delivered = sim.Now();
  });
  sim.Run();
  const LinkParams& p = link.params();
  EXPECT_EQ(delivered, TransferTime(1466 + p.per_frame_overhead_bytes, p.bandwidth_bps) +
                           p.propagation_delay);
}

TEST(LinkTest, FramesSerializeOnTheWire) {
  Simulator sim;
  NetworkLink link(&sim, EthernetParams());
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.Send(1000, [&](int64_t) { arrivals.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  const SimDuration tx =
      TransferTime(1000 + link.params().per_frame_overhead_bytes, link.params().bandwidth_bps);
  EXPECT_EQ(arrivals[1] - arrivals[0], tx);
  EXPECT_EQ(arrivals[2] - arrivals[1], tx);
}

TEST(LinkTest, QueueOverflowDropsFrames) {
  Simulator sim;
  LinkParams p = EthernetParams();
  p.tx_queue_frames = 2;
  NetworkLink link(&sim, p);
  int delivered = 0;
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.Send(1000, [&](int64_t) { ++delivered; })) {
      ++accepted;
    }
  }
  sim.Run();
  // One in flight + two queued.
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().frames_dropped, 7u);
}

// --- fault plans (src/hw/fault.h) ---

TEST_F(DiskTest, FaultPlanInjectsReadErrorsDeterministically) {
  DiskFaultPlan plan;
  plan.read_error_rate = 0.3;
  plan.seed = 7;
  auto run = [&](std::vector<bool>* outcomes) {
    Simulator sim;
    DiskModel disk(&sim, Rz56Params());
    disk.SetFaultPlan(plan);
    for (int i = 0; i < 50; ++i) {
      disk.Submit(DiskRequest{i * kBlock, kBlock, true,
                              [&, i](bool ok) { outcomes->push_back(ok); }});
    }
    sim.Run();
    return disk.stats().errors;
  };
  std::vector<bool> a;
  std::vector<bool> b;
  const uint64_t errs_a = run(&a);
  const uint64_t errs_b = run(&b);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);  // same seed, same request sequence => same outcomes
  EXPECT_EQ(errs_a, errs_b);
  EXPECT_GT(errs_a, 0u);
  EXPECT_LT(errs_a, 50u);
}

TEST_F(DiskTest, FaultPlanFailureReportsErrnoAfterFullServiceTime) {
  DiskFaultPlan plan;
  plan.read_error_rate = 1.0;  // every read fails
  DiskModel disk(&sim_, Rz56Params());
  disk.SetFaultPlan(plan);
  bool ok = true;
  SimTime done_at = -1;
  const SimTime start = sim_.Now();
  disk.Submit(DiskRequest{100 * kBlock, kBlock, true, [&](bool k) {
    ok = k;
    done_at = sim_.Now();
  }});
  sim_.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(disk.last_error(), kErrIo);
  // The error is detected at the media, not at submission: the request still
  // pays seek + rotation + transfer.
  EXPECT_GT(done_at - start, disk.params().controller_overhead);
  EXPECT_EQ(disk.stats().errors, 1u);
}

TEST_F(DiskTest, TransientErrorsClearPermanentOnesStick) {
  DiskFaultPlan plan;
  plan.read_error_rate = 1.0;
  plan.permanent = true;
  DiskModel disk(&sim_, Rz56Params());
  disk.SetFaultPlan(plan);
  int fails = 0;
  for (int i = 0; i < 3; ++i) {
    disk.Submit(DiskRequest{0, kBlock, true, [&](bool ok) { fails += ok ? 0 : 1; }});
    sim_.Run();
  }
  EXPECT_EQ(fails, 3);  // grown defect: the offset stays bad

  // Transient plan on a fresh disk: rate drives each draw independently, so
  // a rate-0 plan after one forced failure must succeed.
  DiskFaultPlan transient;
  transient.read_error_rate = 1.0;
  DiskModel disk2(&sim_, Rz56Params());
  disk2.SetFaultPlan(transient);
  bool first = true;
  disk2.Submit(DiskRequest{0, kBlock, true, [&](bool ok) { first = ok; }});
  sim_.Run();
  EXPECT_FALSE(first);
  transient.read_error_rate = 0.0;
  transient.write_byte_budget = 1 << 30;  // keep the plan Enabled()
  disk2.SetFaultPlan(transient);
  bool second = false;
  disk2.Submit(DiskRequest{0, kBlock, true, [&](bool ok) { second = ok; }});
  sim_.Run();
  EXPECT_TRUE(second);  // transient: the same offset reads fine now
}

TEST_F(DiskTest, WriteByteBudgetFailsWithEnospc) {
  DiskFaultPlan plan;
  plan.write_byte_budget = 2 * kBlock;
  DiskModel disk(&sim_, Rz56Params());
  disk.SetFaultPlan(plan);
  std::vector<bool> outcomes;
  std::vector<int> errnos;
  for (int i = 0; i < 4; ++i) {
    disk.Submit(DiskRequest{i * kBlock, kBlock, false, [&](bool ok) {
      outcomes.push_back(ok);
      errnos.push_back(disk.last_error());
    }});
    sim_.Run();
  }
  EXPECT_EQ(outcomes, (std::vector<bool>{true, true, false, false}));
  EXPECT_EQ(errnos[2], kErrNoSpc);
  EXPECT_EQ(errnos[3], kErrNoSpc);
  EXPECT_EQ(disk.stats().enospc_errors, 2u);
  // Reads are not bounded by the budget.
  bool read_ok = false;
  disk.Submit(DiskRequest{0, kBlock, true, [&](bool ok) { read_ok = ok; }});
  sim_.Run();
  EXPECT_TRUE(read_ok);
}

TEST_F(DiskTest, LatencySpikesStretchServiceTime) {
  DiskParams p = Rz56Params();
  p.cache_bytes = 0;
  DiskFaultPlan plan;
  plan.spike_rate = 1.0;
  plan.spike_delay = Milliseconds(40);
  DiskModel slow(&sim_, p);
  slow.SetFaultPlan(plan);
  const SimDuration spiked = TimeOneRequest(slow, 100 * kBlock, kBlock, true);

  Simulator sim2;
  DiskModel fast(&sim2, p);
  SimTime end = -1;
  fast.Submit(DiskRequest{100 * kBlock, kBlock, true, [&](bool) { end = sim2.Now(); }});
  sim2.Run();
  EXPECT_EQ(spiked, end + Milliseconds(40));
  EXPECT_EQ(slow.stats().latency_spikes, 1u);
  EXPECT_EQ(slow.stats().errors, 0u);  // a spike is slow, not wrong
}

TEST(LinkTest, FaultPlanLossDropsDeliveryButNotSendCompletion) {
  Simulator sim;
  NetworkLink link(&sim, EthernetParams());
  LinkFaultPlan plan;
  plan.loss_rate = 1.0;
  link.SetFaultPlan(plan);
  int sent = 0;
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    link.Send(1000, [&](int64_t) { ++delivered; }, [&] { ++sent; });
  }
  sim.Run();
  // The interface can't tell a lost frame from a delivered one: on_sent
  // fires for every frame, but none reach the receiver.
  EXPECT_EQ(sent, 5);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().frames_lost, 5u);
}

TEST(LinkTest, FaultPlanJitterDelaysDeliveryDeterministically) {
  LinkFaultPlan plan;
  plan.jitter_rate = 1.0;
  plan.jitter_max = Milliseconds(5);
  plan.seed = 11;
  auto run = [&]() {
    Simulator sim;
    NetworkLink link(&sim, EthernetParams());
    link.SetFaultPlan(plan);
    std::vector<SimTime> arrivals;
    for (int i = 0; i < 10; ++i) {
      link.Send(1000, [&](int64_t) { arrivals.push_back(sim.Now()); });
    }
    sim.Run();
    return arrivals;
  };
  const std::vector<SimTime> a = run();
  const std::vector<SimTime> b = run();
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);  // same seed => same jitter sequence

  // Every arrival is later than the no-fault schedule and within jitter_max.
  Simulator sim;
  NetworkLink clean(&sim, EthernetParams());
  std::vector<SimTime> base;
  for (int i = 0; i < 10; ++i) {
    clean.Send(1000, [&](int64_t) { base.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(base.size(), 10u);
  uint64_t jittered = 0;
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_GE(a[i], base[i]);
    EXPECT_LE(a[i], base[i] + Milliseconds(5));
    if (a[i] > base[i]) ++jittered;
  }
  EXPECT_GT(jittered, 0u);
}

TEST(LinkTest, NoFaultPlanMeansNoRandomDraws) {
  // Determinism contract: an absent (or all-off) plan leaves timing exactly
  // on the pre-fault path.
  Simulator sim;
  NetworkLink link(&sim, EthernetParams());
  LinkFaultPlan off;  // every knob zero
  link.SetFaultPlan(off);
  SimTime delivered = -1;
  link.Send(1466, [&](int64_t) { delivered = sim.Now(); });
  sim.Run();
  const LinkParams& p = link.params();
  EXPECT_EQ(delivered, TransferTime(1466 + p.per_frame_overhead_bytes, p.bandwidth_bps) +
                           p.propagation_delay);
  EXPECT_EQ(link.stats().frames_lost, 0u);
  EXPECT_EQ(link.stats().frames_jittered, 0u);
}

TEST(LinkTest, TenMbitEthernetThroughput) {
  Simulator sim;
  NetworkLink link(&sim, EthernetParams());
  constexpr int kFrames = 100;
  constexpr int64_t kPayload = 1466;
  int64_t received = 0;
  std::function<void()> pump = [&] {
    link.Send(kPayload, [&](int64_t b) { received += b; });
  };
  for (int i = 0; i < kFrames; ++i) {
    pump();
  }
  sim.Run();
  const double rate = static_cast<double>(received) / ToSeconds(sim.Now());
  EXPECT_GT(rate, 1.1e6);  // > 1.1 MB/s of payload on a 1.25 MB/s wire
  EXPECT_LT(rate, 1.25e6);
}

}  // namespace
}  // namespace ikdp
