// Tests for the in-kernel pipe: byte-stream semantics, back-pressure, EOF,
// broken-pipe behaviour, and splices into and out of pipe ends
// (sendfile-style patterns).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dev/ram_disk.h"
#include "src/ipc/pipe.h"
#include "src/os/kernel.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 89 + 5) & 0xff); }

// --- Pipe object semantics (no kernel) ---

TEST(PipeUnitTest, WriteThenReadRoundTrip) {
  Pipe pipe(1024);
  auto data = MakeBufData();
  data->assign({'a', 'b', 'c'});
  ASSERT_TRUE(pipe.WriteAsync(data, 3, nullptr));
  std::string got;
  ASSERT_TRUE(pipe.ReadAsync(16, [&](BufData d, int64_t n) {
    got.assign(d->begin(), d->begin() + n);
  }));
  EXPECT_EQ(got, "abc");
  EXPECT_EQ(pipe.Buffered(), 0);
}

TEST(PipeUnitTest, ReadBlocksUntilData) {
  Pipe pipe(1024);
  int64_t got = -1;
  ASSERT_TRUE(pipe.ReadAsync(16, [&](BufData, int64_t n) { got = n; }));
  EXPECT_EQ(got, -1);  // parked
  auto data = MakeBufData();
  pipe.WriteAsync(data, 5, nullptr);
  EXPECT_EQ(got, 5);
}

TEST(PipeUnitTest, WriteRefusedWhenFull) {
  Pipe pipe(10);
  auto data = MakeBufData();
  EXPECT_TRUE(pipe.WriteAsync(data, 6, nullptr));
  EXPECT_FALSE(pipe.WriteAsync(data, 6, nullptr));  // 12 > 10
  EXPECT_EQ(pipe.WriteSpace(), 4);
  EXPECT_EQ(pipe.stats().writes_refused, 1u);
}

TEST(PipeUnitTest, WriteDoneFiresWhenReaderDrains) {
  Pipe pipe(100);
  auto data = MakeBufData();
  bool drained = false;
  ASSERT_TRUE(pipe.WriteAsync(data, 50, [&] { drained = true; }));
  EXPECT_FALSE(drained);
  pipe.ReadAsync(20, [](BufData, int64_t) {});
  EXPECT_FALSE(drained);  // 30 bytes still buffered
  pipe.ReadAsync(40, [](BufData, int64_t) {});
  EXPECT_TRUE(drained);
}

TEST(PipeUnitTest, EofAfterWriteEndCloses) {
  Pipe pipe(100);
  auto data = MakeBufData();
  pipe.WriteAsync(data, 4, nullptr);
  pipe.CloseWriteEnd();
  int64_t first = -1;
  pipe.ReadAsync(16, [&](BufData, int64_t n) { first = n; });
  EXPECT_EQ(first, 4);  // residual bytes still readable
  int64_t second = -1;
  pipe.ReadAsync(16, [&](BufData, int64_t n) { second = n; });
  EXPECT_EQ(second, 0);  // then EOF
}

TEST(PipeUnitTest, CloseWriteEndWakesParkedReaderWithEof) {
  Pipe pipe(100);
  int64_t got = -1;
  pipe.ReadAsync(16, [&](BufData, int64_t n) { got = n; });
  EXPECT_EQ(got, -1);
  pipe.CloseWriteEnd();
  EXPECT_EQ(got, 0);
}

TEST(PipeUnitTest, BrokenPipeRefusesWritesAndReleasesWriters) {
  Pipe pipe(100);
  auto data = MakeBufData();
  bool released = false;
  pipe.WriteAsync(data, 60, [&] { released = true; });
  pipe.CloseReadEnd();
  EXPECT_TRUE(released);  // blocked writer is unstuck (data lost)
  EXPECT_FALSE(pipe.WriteAsync(data, 1, nullptr));
}

// --- pipe(2) through the kernel ---

class PipeKernelTest : public ::testing::Test {
 protected:
  PipeKernelTest() : kernel_(&sim_, DecStation5000Costs()), ram_(&kernel_.cpu(), 16 << 20) {
    fs_ = kernel_.MountFs(&ram_, "fs");
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk ram_;
  FileSystem* fs_;
};

TEST_F(PipeKernelTest, ProducerConsumerByteStream) {
  constexpr int64_t kBytes = 100000;
  int rfd = -1;
  int wfd = -1;
  bool plumbed = false;
  int64_t received = 0;
  bool content_ok = true;

  // One process creates the pipe, then producer and consumer share it (the
  // harness shares the Process-keyed fd table through captured fd ints plus
  // GetFile, standing in for fork-time descriptor inheritance).
  Process* owner = kernel_.Spawn("owner", [&](Process& p) -> Task<> {
    EXPECT_EQ(co_await kernel_.CreatePipe(p, &rfd, &wfd), 0);
    plumbed = true;
    // Producer side, same process: write the stream then close.
    std::vector<uint8_t> chunk(4096);
    int64_t sent = 0;
    while (sent < kBytes) {
      const int64_t n = std::min<int64_t>(4096, kBytes - sent);
      for (int64_t i = 0; i < n; ++i) {
        chunk[static_cast<size_t>(i)] = Fill(sent + i);
      }
      const int64_t put = co_await kernel_.Write(p, wfd, chunk.data(), n);
      EXPECT_EQ(put, n);
      sent += n;
    }
    co_await kernel_.Close(p, wfd);  // EOF for the reader
  });

  kernel_.Spawn("consumer", [&](Process& p) -> Task<> {
    while (!plumbed) {
      co_await kernel_.SleepFor(p, Milliseconds(1));
    }
    std::vector<uint8_t> buf;
    for (;;) {
      // Read through the owner's descriptor object.
      std::shared_ptr<File> f = kernel_.GetFile(*owner, rfd);
      EXPECT_TRUE(f != nullptr);
      if (f == nullptr) {
        break;
      }
      const int64_t n = co_await f->Read(p, 8192, &buf);
      if (n <= 0) {
        break;
      }
      for (int64_t i = 0; i < n && content_ok; ++i) {
        content_ok = buf[static_cast<size_t>(i)] == Fill(received + i);
      }
      received += n;
    }
  });

  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(received, kBytes);
  EXPECT_TRUE(content_ok);
}

TEST_F(PipeKernelTest, FileToPipeSplice) {
  // sendfile pattern: splice a file into the pipe; a reader drains it.
  constexpr int64_t kBytes = 24 * kBlockSize;
  fs_->CreateFileInstant("src", kBytes, Fill);
  int rfd = -1;
  int wfd = -1;
  int64_t moved = -1;
  int64_t received = 0;
  bool content_ok = true;
  bool plumbed = false;

  Process* owner = kernel_.Spawn("splicer", [&](Process& p) -> Task<> {
    co_await kernel_.CreatePipe(p, &rfd, &wfd);
    plumbed = true;
    const int src = co_await kernel_.Open(p, "fs:src", kOpenRead);
    moved = co_await kernel_.Splice(p, src, wfd, kSpliceEof);
    co_await kernel_.Close(p, wfd);
  });

  kernel_.Spawn("drainer", [&](Process& p) -> Task<> {
    while (!plumbed) {
      co_await kernel_.SleepFor(p, Milliseconds(1));
    }
    std::vector<uint8_t> buf;
    for (;;) {
      std::shared_ptr<File> f = kernel_.GetFile(*owner, rfd);
      const int64_t n = co_await f->Read(p, 8192, &buf);
      if (n <= 0) {
        break;
      }
      for (int64_t i = 0; i < n && content_ok; ++i) {
        content_ok = buf[static_cast<size_t>(i)] == Fill(received + i);
      }
      received += n;
    }
  });

  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(moved, kBytes);
  EXPECT_EQ(received, kBytes);
  EXPECT_TRUE(content_ok);
}

TEST_F(PipeKernelTest, PipeToFileSpliceSingleProcess) {
  // Within one process: fill the pipe, close the write end, then splice the
  // residue into a file (bounded by the pipe's EOF).
  constexpr int64_t kBytes = 3 * kBlockSize;  // fits the pipe's 32 KB ring
  int rfd = -1;
  int wfd = -1;
  int64_t moved = -1;
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    co_await kernel_.CreatePipe(p, &rfd, &wfd);
    std::vector<uint8_t> data(kBytes);
    for (int64_t i = 0; i < kBytes; ++i) {
      data[static_cast<size_t>(i)] = Fill(i);
    }
    co_await kernel_.Write(p, wfd, data);
    co_await kernel_.Close(p, wfd);  // EOF backs the byte bound below
    const int dst = co_await kernel_.Open(p, "fs:out", kOpenWrite | kOpenCreate);
    // Splicing INTO a file needs a byte bound (the destination is premapped);
    // an unbounded pipe->file splice is rejected, which the next test checks.
    moved = co_await kernel_.Splice(p, rfd, dst, kBytes);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_EQ(moved, kBytes);
  kernel_.cache().FlushAllInstant();
  Inode* ip = fs_->Lookup("out");
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->size, kBytes);
  const std::vector<uint8_t> back = fs_->ReadFileInstant(ip);
  for (int64_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << i;
  }
}

TEST_F(PipeKernelTest, UnboundedSpliceIntoFileRejected) {
  int rfd = -1;
  int wfd = -1;
  int64_t rval = 0;
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    co_await kernel_.CreatePipe(p, &rfd, &wfd);
    const int dst = co_await kernel_.Open(p, "fs:out2", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, rfd, dst, kSpliceEof);
  });
  sim_.Run();
  EXPECT_EQ(rval, -1);
}

TEST_F(PipeKernelTest, SpliceRejectsWrongEnds) {
  int rfd = -1;
  int wfd = -1;
  fs_->CreateFileInstant("src", kBlockSize, Fill);
  int64_t from_write_end = 0;
  int64_t into_read_end = 0;
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    co_await kernel_.CreatePipe(p, &rfd, &wfd);
    const int src = co_await kernel_.Open(p, "fs:src", kOpenRead);
    into_read_end = co_await kernel_.Splice(p, src, rfd, kSpliceEof);
    from_write_end = co_await kernel_.Splice(p, wfd, src, kSpliceEof);
  });
  sim_.Run();
  EXPECT_EQ(into_read_end, -1);
  EXPECT_EQ(from_write_end, -1);
}

}  // namespace
}  // namespace ikdp
