// Integration tests for the SpliceServer workload (src/workload/splice_server.h):
// every submit mode delivers the full request stream with the CPU attribution
// closure intact, the span tree balances with a collector attached, span
// recording and hooks change nothing in simulated time, the same seed
// reproduces the same run, and the hook feed drives the SLO monitor
// correctly (including the stall watchdog under an aggressive threshold).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/metrics/slo.h"
#include "src/sim/kspan.h"
#include "src/sim/time.h"
#include "src/workload/splice_server.h"

namespace ikdp {
namespace {

SpliceServerConfig SmallConfig(SubmitMode mode) {
  SpliceServerConfig cfg;
  cfg.n_clients = 16;
  cfg.n_objects = 8;
  cfg.object_bytes = 2 * kBlockSize;
  cfg.total_requests = 40;
  cfg.offered_rps = 400.0;
  cfg.sync_workers = 4;
  cfg.ring_inflight = 8;
  cfg.seed = 7;
  cfg.mode = mode;
  return cfg;
}

class SpliceServerModes : public ::testing::TestWithParam<SubmitMode> {};

TEST_P(SpliceServerModes, DeliversEveryRequestWithClosure) {
  const SpliceServerConfig cfg = SmallConfig(GetParam());
  const SpliceServerResult r = RunSpliceServer(cfg);
  EXPECT_EQ(r.requests, static_cast<uint64_t>(cfg.total_requests));
  EXPECT_EQ(r.completed, static_cast<uint64_t>(cfg.total_requests));
  EXPECT_EQ(r.errored, 0u);
  EXPECT_EQ(r.bytes, cfg.object_bytes * cfg.total_requests);
  EXPECT_TRUE(r.closure_ok) << r.closure_err;
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.server_traps, 0u);
  EXPECT_GT(r.end_time, 0);
  // The merged ledger mirrors both CPUs' totals, so it cannot be empty.
  EXPECT_FALSE(r.attribution.empty());
}

TEST_P(SpliceServerModes, SpansBalanceAndRecordingIsFree) {
  const SpliceServerConfig cfg = SmallConfig(GetParam());
  const SpliceServerResult off = RunSpliceServer(cfg);

  KspanCollector spans;
  AttachKspan(&spans);
  const SpliceServerResult on = RunSpliceServer(cfg);
  AttachKspan(nullptr);

  // Zero simulated-time overhead: the collector only records.
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.server_traps, on.server_traps);
  EXPECT_EQ(off.server_cpu.process_work, on.server_cpu.process_work);
  EXPECT_EQ(off.server_cpu.interrupt_work, on.server_cpu.interrupt_work);
  EXPECT_EQ(off.server_cpu.switches, on.server_cpu.switches);

  // Every request minted a root span; every span closed exactly once.
  std::string err;
  EXPECT_TRUE(spans.CheckBalanced(&err)) << err;
  uint64_t roots = 0;
  for (const SpanRecord& s : spans.spans()) {
    if (s.parent == kNoSpan && std::string(s.name) == "server.request") {
      ++roots;
      EXPECT_FALSE(s.error);
      EXPECT_EQ(s.result, cfg.object_bytes);
    }
  }
  EXPECT_EQ(roots, static_cast<uint64_t>(cfg.total_requests));
}

TEST_P(SpliceServerModes, SameSeedReproducesTheRun) {
  const SpliceServerConfig cfg = SmallConfig(GetParam());
  const SpliceServerResult a = RunSpliceServer(cfg);
  const SpliceServerResult b = RunSpliceServer(cfg);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.server_traps, b.server_traps);
  EXPECT_EQ(a.server_cpu.process_work, b.server_cpu.process_work);
  // ChargeKey only defines operator< (map ordering), so compare entry-wise.
  ASSERT_EQ(a.attribution.size(), b.attribution.size());
  auto bi = b.attribution.begin();
  for (const auto& [key, t] : a.attribution) {
    EXPECT_FALSE(key < bi->first || bi->first < key);
    EXPECT_EQ(t, bi->second);
    ++bi;
  }
}

TEST_P(SpliceServerModes, HooksDriveTheSloMonitor) {
  const SpliceServerConfig cfg = SmallConfig(GetParam());
  SloMonitor slo(Seconds(10));
  uint64_t ticks = 0;
  SpliceServerHooks hooks;
  hooks.on_start = [&](uint64_t id, SimTime t) { slo.OnRequestStart(id, t); };
  hooks.on_progress = [&](uint64_t id, SimTime t, int64_t) { slo.OnRequestProgress(id, t); };
  hooks.on_end = [&](uint64_t id, SimTime t, int64_t bytes, bool error) {
    slo.OnRequestEnd(id, t, bytes, error);
  };
  hooks.on_tick = [&](SimTime now) {
    ++ticks;
    slo.CheckStalls(now);
  };
  const SpliceServerResult r = RunSpliceServer(cfg, hooks);
  EXPECT_TRUE(r.ok) << r.closure_err;

  const SloReport report = slo.Report(r.end_time);
  EXPECT_EQ(report.completed, static_cast<uint64_t>(cfg.total_requests));
  EXPECT_EQ(report.open, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.bytes, r.bytes);
  EXPECT_GT(report.p50_ns, 0);
  EXPECT_LE(report.p50_ns, report.p99_ns);
  EXPECT_LE(report.p99_ns, report.p999_ns);
  EXPECT_GT(report.goodput_bps, 0.0);
  // Requests sit comfortably under a 10 s threshold: no stalls.
  EXPECT_EQ(report.stall_flags, 0u);
  EXPECT_GT(ticks, 0u);
}

TEST_P(SpliceServerModes, AggressiveWatchdogFlagsQueueing) {
  // With a threshold far below the wire's transfer time, time-to-first-byte
  // alone exceeds it: the watchdog must flag requests and the flags must
  // surface in the report.  (This is the detector the fault suite relies on;
  // here we prove it actually fires when latency exists.)
  SpliceServerConfig cfg = SmallConfig(GetParam());
  cfg.tick = Milliseconds(1);
  SloMonitor slo(Microseconds(100));
  SpliceServerHooks hooks;
  hooks.on_start = [&](uint64_t id, SimTime t) { slo.OnRequestStart(id, t); };
  hooks.on_progress = [&](uint64_t id, SimTime t, int64_t) { slo.OnRequestProgress(id, t); };
  hooks.on_end = [&](uint64_t id, SimTime t, int64_t bytes, bool error) {
    slo.OnRequestEnd(id, t, bytes, error);
  };
  hooks.on_tick = [&](SimTime now) { slo.CheckStalls(now); };
  const SpliceServerResult r = RunSpliceServer(cfg, hooks);
  EXPECT_TRUE(r.ok) << r.closure_err;
  EXPECT_GT(slo.Report(r.end_time).stall_flags, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SpliceServerModes,
                         ::testing::Values(SubmitMode::kSyncLoop, SubmitMode::kFasyncSigio,
                                           SubmitMode::kRing),
                         [](const ::testing::TestParamInfo<SubmitMode>& info) {
                           switch (info.param) {
                             case SubmitMode::kSyncLoop:
                               return "SyncLoop";
                             case SubmitMode::kFasyncSigio:
                               return "FasyncSigio";
                             case SubmitMode::kRing:
                               return "Ring";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ikdp
