// Failure-injection tests: injected media errors must propagate cleanly
// through the disk driver, buffer cache, filesystem, read()/write() syscalls,
// and the splice engine — partial results reported, no hangs, every buffer
// released.

#include <gtest/gtest.h>

#include <vector>

#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 53 + 7) & 0xff); }

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : kernel_(&sim_, DecStation5000Costs()),
        src_(&kernel_.cpu(), &sim_, Rz56Params()),
        dst_(&kernel_.cpu(), &sim_, Rz56Params()) {
    src_fs_ = kernel_.MountFs(&src_, "src");
    dst_fs_ = kernel_.MountFs(&dst_, "dst");
  }

  // Fails every access to the block containing `offset` on `drv`.
  static void FailBlockAt(DiskDriver* drv, int64_t offset) {
    drv->disk().SetFaultHook(
        [offset](int64_t req_offset, bool) { return req_offset == offset; });
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  Kernel kernel_;
  DiskDriver src_;
  DiskDriver dst_;
  FileSystem* src_fs_;
  FileSystem* dst_fs_;
};

TEST_F(FaultTest, DiskModelReportsInjectedError) {
  bool ok = true;
  src_.disk().SetFaultHook([](int64_t, bool) { return true; });
  src_.disk().Submit(DiskRequest{0, kBlockSize, true, [&](bool o) { ok = o; }});
  sim_.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(src_.disk().stats().errors, 1u);
}

TEST_F(FaultTest, BreadSurfacesErrorFlag) {
  src_.disk().SetFaultHook([](int64_t, bool is_read) { return is_read; });
  Run([&](Process& p) -> Task<> {
    Buf* b = co_await kernel_.cache().Bread(p, &src_, 100);
    EXPECT_TRUE(b->Has(kBufError));
    kernel_.cache().Brelse(b);
  });
  // An errored buffer must not be cached as valid: clear the hook and the
  // next read goes to the device again.
  src_.disk().SetFaultHook(nullptr);
  src_.PokeBlock(100, std::vector<uint8_t>(kBlockSize, 0x42));
  Run([&](Process& p) -> Task<> {
    Buf* b = co_await kernel_.cache().Bread(p, &src_, 100);
    EXPECT_FALSE(b->Has(kBufError));
    EXPECT_EQ((*b->data)[0], 0x42);
    kernel_.cache().Brelse(b);
  });
}

TEST_F(FaultTest, FileReadReturnsShortCountThenError) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail the file's 5th block.
  const int64_t bad_pbn = src_fs_->ReadFileInstant(ip).size() > 0
                              ? 16 + 4  // first data block is 16; 5th block
                              : -1;
  FailBlockAt(&src_, bad_pbn * kBlockSize);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "src:f", kOpenRead);
    std::vector<uint8_t> buf;
    // Whole-file read: stops short at the bad block.
    const int64_t n = co_await kernel_.Read(p, fd, kBytes, &buf);
    EXPECT_GT(n, 0);
    EXPECT_LT(n, kBytes);
    // The next read starts exactly at the bad block: immediate error.
    const int64_t n2 = co_await kernel_.Read(p, fd, kBlockSize, &buf);
    EXPECT_EQ(n2, -1);
  });
}

TEST_F(FaultTest, SpliceAbortsOnReadError) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail the 10th data block of the source.
  FailBlockAt(&src_, (16 + 9) * kBlockSize);
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
  // Machine quiescent; all descriptors and buffers released.
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
  EXPECT_EQ(kernel_.cache().PendingWrites(&dst_), 0);
  int got = 0;
  Run([&](Process& p) -> Task<> {
    std::vector<Buf*> held;
    for (int i = 0; i < kernel_.cache().nbufs(); ++i) {
      held.push_back(co_await kernel_.cache().GetBlk(p, &dst_, 5000 + i));
      ++got;
    }
    for (Buf* b : held) {
      kernel_.cache().Brelse(b);
    }
  });
  EXPECT_EQ(got, kernel_.cache().nbufs());
}

TEST_F(FaultTest, SpliceAbortsOnWriteError) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail every write beyond the destination's 12th data block.
  dst_.disk().SetFaultHook([](int64_t offset, bool is_read) {
    return !is_read && offset >= (16 + 12) * kBlockSize;
  });
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, AsyncSpliceErrorStillSignalsSigio) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 3) * kBlockSize);
  bool signalled = false;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { signalled = true; });
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, s, true);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), 0);
    co_await kernel_.Pause(p);
  });
  EXPECT_TRUE(signalled);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, CpSurvivesDestinationWriteErrors) {
  // cp's delayed writes fail at fsync time; the copy still terminates and
  // the machine stays healthy (UNIX loses the data, as it did in 1993).
  constexpr int64_t kBytes = 8 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  dst_.disk().SetFaultHook([](int64_t, bool is_read) { return !is_read; });
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> buf;
    int64_t n = 0;
    while ((n = co_await kernel_.Read(p, s, 8192, &buf)) > 0) {
      co_await kernel_.Write(p, d, buf.data(), n);
    }
    co_await kernel_.FsyncFd(p, d);
  });
  EXPECT_GT(dst_.disk().stats().errors, 0u);
  EXPECT_EQ(kernel_.cache().PendingWrites(&dst_), 0);
}

TEST_F(FaultTest, SyncSpliceReportsErrnoOnBothDescriptors) {
  // Regression: a mid-stream read error used to surface only as -1; the
  // errno now lands on both endpoints for SpliceError to report.
  constexpr int64_t kBytes = 32 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 9) * kBlockSize);
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), -1);
    EXPECT_EQ(co_await kernel_.SpliceError(p, s), kErrIo);
    EXPECT_EQ(co_await kernel_.SpliceError(p, d), kErrIo);
    // A later successful splice clears the sticky errno.
    src_.disk().SetFaultHook(nullptr);
    co_await kernel_.Lseek(p, s, 0);
    EXPECT_GT(co_await kernel_.Splice(p, s, d, kSpliceEof), 0);
    EXPECT_EQ(co_await kernel_.SpliceError(p, s), 0);
    EXPECT_EQ(co_await kernel_.SpliceError(p, d), 0);
  });
}

TEST_F(FaultTest, SetupPremapReportsEioOnUnreadableIndirectBlock) {
  // The splice premap bmaps the whole source up front.  An unreadable
  // indirect block is an I/O error, not a hole: the splice must refuse with
  // EIO recorded (a hole would be EINVAL) rather than claim the range is
  // sparse.
  constexpr int64_t kBytes = 16 * kBlockSize;  // crosses the 12-direct boundary
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  ASSERT_NE(ip->indirect, 0);
  FailBlockAt(&src_, ip->indirect * kBlockSize);
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), -1);
    EXPECT_EQ(co_await kernel_.SpliceError(p, s), kErrIo);
    EXPECT_EQ(co_await kernel_.SpliceError(p, d), kErrIo);
  });
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, WriteFailsCleanlyWhenBlockMapUnreadable) {
  // Regression: bmap with alloc used to treat an unreadable indirect block
  // as all-holes and allocate fresh blocks over it, scribbling pointers
  // into stale contents.  The write must fail with -1 and leave the
  // existing map untouched.
  constexpr int64_t kBytes = 16 * kBlockSize;
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  ASSERT_NE(ip->indirect, 0);
  FailBlockAt(&src_, ip->indirect * kBlockSize);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "src:f", kOpenWrite);
    co_await kernel_.Lseek(p, fd, 14 * kBlockSize);
    std::vector<uint8_t> data(kBlockSize, 0xEE);
    EXPECT_EQ(co_await kernel_.Write(p, fd, data.data(), kBlockSize), -1);
  });
  // Nothing was overwritten: with the fault cleared the file reads back
  // exactly as created.
  src_.disk().SetFaultHook(nullptr);
  kernel_.cache().FlushAllInstant();
  const std::vector<uint8_t> back = src_fs_->ReadFileInstant(ip);
  ASSERT_EQ(back.size(), static_cast<size_t>(kBytes));
  int bad = 0;
  for (int64_t i = 0; i < kBytes; ++i) {
    bad += back[static_cast<size_t>(i)] != Fill(i);
  }
  EXPECT_EQ(bad, 0);
}

TEST_F(FaultTest, WriteBudgetErrnoKeepsIdentityThroughSplice) {
  // ENOSPC from the device's byte budget must stay distinguishable from a
  // media error all the way up to the syscall layer.
  constexpr int64_t kBytes = 16 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  DiskFaultPlan plan;
  plan.write_byte_budget = 4 * kBlockSize;
  dst_.disk().SetFaultPlan(plan);
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), -1);
    EXPECT_EQ(co_await kernel_.SpliceError(p, d), kErrNoSpc);
  });
  EXPECT_GT(dst_.disk().stats().enospc_errors, 0u);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, FasyncSpliceErrorDiscoveredViaSpliceError) {
  // SIGIO carries no status: after the signal, SpliceError is how a FASYNC
  // program tells an aborted stream from a finished one.
  constexpr int64_t kBytes = 16 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 3) * kBlockSize);
  int err_s = -2;
  int err_d = -2;
  Run([&](Process& p) -> Task<> {
    bool signalled = false;
    kernel_.Sigaction(p, kSigIo, [&] { signalled = true; });
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, s, true);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), 0);
    co_await kernel_.Pause(p);
    EXPECT_TRUE(signalled);
    err_s = co_await kernel_.SpliceError(p, s);
    err_d = co_await kernel_.SpliceError(p, d);
  });
  EXPECT_EQ(err_s, kErrIo);
  EXPECT_EQ(err_d, kErrIo);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, MidStreamErrorStopsReadahead) {
  // An errored stream must tear down, not keep prefetching the rest of the
  // file (and charging interrupt CPU for reads nobody will consume).
  constexpr int64_t kBytes = 64 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 7) * kBlockSize);  // 8th data block
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
  // Run() drains the simulation: quiescence means no readahead engine is
  // still charging CPU.  The read count proves teardown was prompt — far
  // below the 64 data blocks a healthy stream would fetch.
  EXPECT_LT(src_.disk().stats().reads, 30u);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, RingCqeCarriesDeviceErrno) {
  // The ring path: a mid-stream device error must surface in the op's CQE
  // with the device's errno and the partial byte count — exactly one CQE.
  constexpr int64_t kBytes = 16 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 3) * kBlockSize);
  SpliceCqe cqe;
  int ncqe = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    EXPECT_GT(ring, 0);
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    SpliceSqe sqe;
    sqe.src_fd = s;
    sqe.dst_fd = d;
    sqe.nbytes = kSpliceEof;
    sqe.cookie = 42;
    EXPECT_EQ(kernel_.RingPrepare(p, ring, sqe), 0);
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 1, 1), 1);
    ncqe = kernel_.RingHarvest(p, ring, &cqe, 1);
  });
  EXPECT_EQ(ncqe, 1);
  EXPECT_EQ(cqe.cookie, 42u);
  EXPECT_EQ(cqe.error, kErrIo);
  EXPECT_GT(cqe.result, 0);  // bytes moved before the bad block
  EXPECT_LT(cqe.result, kBytes);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, TransientErrorDoesNotPoisonLaterReads) {
  constexpr int64_t kBytes = 4 * kBlockSize;
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  (void)ip;
  int failures = 2;
  src_.disk().SetFaultHook([&failures](int64_t, bool is_read) {
    if (is_read && failures > 0) {
      --failures;
      return true;
    }
    return false;
  });
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "src:f", kOpenRead);
    std::vector<uint8_t> buf;
    // First attempts hit the injected errors...
    (void)co_await kernel_.Read(p, fd, kBlockSize, &buf);
    co_await kernel_.Lseek(p, fd, 0);
    (void)co_await kernel_.Read(p, fd, kBlockSize, &buf);
    // ...then the fault clears and the data comes back intact.
    co_await kernel_.Lseek(p, fd, 0);
    const int64_t n = co_await kernel_.Read(p, fd, kBytes, &buf);
    EXPECT_EQ(n, kBytes);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[static_cast<size_t>(i)], Fill(i)) << i;
    }
  });
}

}  // namespace
}  // namespace ikdp
