// Failure-injection tests: injected media errors must propagate cleanly
// through the disk driver, buffer cache, filesystem, read()/write() syscalls,
// and the splice engine — partial results reported, no hangs, every buffer
// released.

#include <gtest/gtest.h>

#include <vector>

#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 53 + 7) & 0xff); }

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : kernel_(&sim_, DecStation5000Costs()),
        src_(&kernel_.cpu(), &sim_, Rz56Params()),
        dst_(&kernel_.cpu(), &sim_, Rz56Params()) {
    src_fs_ = kernel_.MountFs(&src_, "src");
    dst_fs_ = kernel_.MountFs(&dst_, "dst");
  }

  // Fails every access to the block containing `offset` on `drv`.
  static void FailBlockAt(DiskDriver* drv, int64_t offset) {
    drv->disk().SetFaultHook(
        [offset](int64_t req_offset, bool) { return req_offset == offset; });
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  Kernel kernel_;
  DiskDriver src_;
  DiskDriver dst_;
  FileSystem* src_fs_;
  FileSystem* dst_fs_;
};

TEST_F(FaultTest, DiskModelReportsInjectedError) {
  bool ok = true;
  src_.disk().SetFaultHook([](int64_t, bool) { return true; });
  src_.disk().Submit(DiskRequest{0, kBlockSize, true, [&](bool o) { ok = o; }});
  sim_.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(src_.disk().stats().errors, 1u);
}

TEST_F(FaultTest, BreadSurfacesErrorFlag) {
  src_.disk().SetFaultHook([](int64_t, bool is_read) { return is_read; });
  Run([&](Process& p) -> Task<> {
    Buf* b = co_await kernel_.cache().Bread(p, &src_, 100);
    EXPECT_TRUE(b->Has(kBufError));
    kernel_.cache().Brelse(b);
  });
  // An errored buffer must not be cached as valid: clear the hook and the
  // next read goes to the device again.
  src_.disk().SetFaultHook(nullptr);
  src_.PokeBlock(100, std::vector<uint8_t>(kBlockSize, 0x42));
  Run([&](Process& p) -> Task<> {
    Buf* b = co_await kernel_.cache().Bread(p, &src_, 100);
    EXPECT_FALSE(b->Has(kBufError));
    EXPECT_EQ((*b->data)[0], 0x42);
    kernel_.cache().Brelse(b);
  });
}

TEST_F(FaultTest, FileReadReturnsShortCountThenError) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail the file's 5th block.
  const int64_t bad_pbn = src_fs_->ReadFileInstant(ip).size() > 0
                              ? 16 + 4  // first data block is 16; 5th block
                              : -1;
  FailBlockAt(&src_, bad_pbn * kBlockSize);
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "src:f", kOpenRead);
    std::vector<uint8_t> buf;
    // Whole-file read: stops short at the bad block.
    const int64_t n = co_await kernel_.Read(p, fd, kBytes, &buf);
    EXPECT_GT(n, 0);
    EXPECT_LT(n, kBytes);
    // The next read starts exactly at the bad block: immediate error.
    const int64_t n2 = co_await kernel_.Read(p, fd, kBlockSize, &buf);
    EXPECT_EQ(n2, -1);
  });
}

TEST_F(FaultTest, SpliceAbortsOnReadError) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail the 10th data block of the source.
  FailBlockAt(&src_, (16 + 9) * kBlockSize);
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
  // Machine quiescent; all descriptors and buffers released.
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
  EXPECT_EQ(kernel_.cache().PendingWrites(&dst_), 0);
  int got = 0;
  Run([&](Process& p) -> Task<> {
    std::vector<Buf*> held;
    for (int i = 0; i < kernel_.cache().nbufs(); ++i) {
      held.push_back(co_await kernel_.cache().GetBlk(p, &dst_, 5000 + i));
      ++got;
    }
    for (Buf* b : held) {
      kernel_.cache().Brelse(b);
    }
  });
  EXPECT_EQ(got, kernel_.cache().nbufs());
}

TEST_F(FaultTest, SpliceAbortsOnWriteError) {
  constexpr int64_t kBytes = 32 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  // Fail every write beyond the destination's 12th data block.
  dst_.disk().SetFaultHook([](int64_t offset, bool is_read) {
    return !is_read && offset >= (16 + 12) * kBlockSize;
  });
  int64_t rval = 0;
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    rval = co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  EXPECT_EQ(rval, -1);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, AsyncSpliceErrorStillSignalsSigio) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  FailBlockAt(&src_, (16 + 3) * kBlockSize);
  bool signalled = false;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [&] { signalled = true; });
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, s, true);
    EXPECT_EQ(co_await kernel_.Splice(p, s, d, kSpliceEof), 0);
    co_await kernel_.Pause(p);
  });
  EXPECT_TRUE(signalled);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(FaultTest, CpSurvivesDestinationWriteErrors) {
  // cp's delayed writes fail at fsync time; the copy still terminates and
  // the machine stays healthy (UNIX loses the data, as it did in 1993).
  constexpr int64_t kBytes = 8 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  dst_.disk().SetFaultHook([](int64_t, bool is_read) { return !is_read; });
  Run([&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> buf;
    int64_t n = 0;
    while ((n = co_await kernel_.Read(p, s, 8192, &buf)) > 0) {
      co_await kernel_.Write(p, d, buf.data(), n);
    }
    co_await kernel_.FsyncFd(p, d);
  });
  EXPECT_GT(dst_.disk().stats().errors, 0u);
  EXPECT_EQ(kernel_.cache().PendingWrites(&dst_), 0);
}

TEST_F(FaultTest, TransientErrorDoesNotPoisonLaterReads) {
  constexpr int64_t kBytes = 4 * kBlockSize;
  Inode* ip = src_fs_->CreateFileInstant("f", kBytes, Fill);
  (void)ip;
  int failures = 2;
  src_.disk().SetFaultHook([&failures](int64_t, bool is_read) {
    if (is_read && failures > 0) {
      --failures;
      return true;
    }
    return false;
  });
  Run([&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "src:f", kOpenRead);
    std::vector<uint8_t> buf;
    // First attempts hit the injected errors...
    (void)co_await kernel_.Read(p, fd, kBlockSize, &buf);
    co_await kernel_.Lseek(p, fd, 0);
    (void)co_await kernel_.Read(p, fd, kBlockSize, &buf);
    // ...then the fault clears and the data comes back intact.
    co_await kernel_.Lseek(p, fd, 0);
    const int64_t n = co_await kernel_.Read(p, fd, kBytes, &buf);
    EXPECT_EQ(n, kBytes);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[static_cast<size_t>(i)], Fill(i)) << i;
    }
  });
}

}  // namespace
}  // namespace ikdp
