// Direct unit tests of SpliceEngine internals using scripted fake endpoints:
// drain budget per tick, read-retry arming, EOF-marker release, sink-refusal
// requeueing, descriptor stats, and options plumbing.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <map>
#include <vector>

#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/sim/callout.h"
#include "src/sim/simulator.h"
#include "src/splice/splice_engine.h"

namespace ikdp {
namespace {

// A source delivering `total_chunks` synchronous chunks of `chunk_bytes`,
// optionally refusing the first `refusals` StartRead calls.
// Observations land in test-owned counters: the engine owns (and destroys)
// the endpoints with the descriptor, so tests must not touch them after the
// splice completes.
struct SourceObs {
  int reads = 0;
  int releases = 0;
};

class ScriptedSource : public SpliceSource {
 public:
  ScriptedSource(int64_t total_chunks, int64_t chunk_bytes, int refusals = 0,
                 SourceObs* obs = nullptr)
      : total_chunks_(total_chunks), chunk_bytes_(chunk_bytes), refusals_(refusals), obs_(obs) {}

  int64_t TotalBytes() const override { return total_chunks_ * chunk_bytes_; }
  int64_t ChunkBytes() const override { return chunk_bytes_; }

  bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) override {
    if (refusals_ > 0) {
      --refusals_;
      return false;
    }
    if (obs_ != nullptr) {
      ++obs_->reads;
    }
    SpliceChunk c;
    c.index = index;
    c.nbytes = chunk_bytes_;
    c.data = MakeBufData();
    done(std::move(c));  // synchronous completion
    return true;
  }

  void Release(SpliceChunk& chunk) override {
    (void)chunk;
    if (obs_ != nullptr) {
      ++obs_->releases;
    }
  }

 private:
  int64_t total_chunks_;
  int64_t chunk_bytes_;
  int refusals_;
  SourceObs* obs_;
};

// A sink recording write times into test-owned vectors; optionally refuses
// the first `refusals` StartWrite calls; completes synchronously.
struct SinkObs {
  std::vector<SimTime> write_times;
  std::vector<int64_t> indices;
};

class ScriptedSink : public SpliceSink {
 public:
  ScriptedSink(Simulator* sim, SinkObs* obs, int refusals = 0)
      : sim_(sim), obs_(obs), refusals_(refusals) {}

  bool StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) override {
    if (refusals_ > 0) {
      --refusals_;
      return false;
    }
    if (obs_ != nullptr) {
      obs_->write_times.push_back(sim_->Now());
      obs_->indices.push_back(chunk.index);
    }
    done(true);
    return true;
  }

 private:
  Simulator* sim_;
  SinkObs* obs_;
  int refusals_;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : cpu_(&sim_, DecStation5000Costs()), callouts_(&sim_, 256),
                 engine_(&cpu_, &callouts_) {}

  int64_t RunSplice(std::unique_ptr<SpliceSource> src, std::unique_ptr<SpliceSink> sink,
                    SpliceOptions opts) {
    int64_t moved = -2;
    engine_.Start(std::move(src), std::move(sink), opts,
                  [&moved](int64_t m) { moved = m; });
    sim_.Run();
    return moved;
  }

  Simulator sim_;
  CpuSystem cpu_;
  CalloutTable callouts_;
  SpliceEngine engine_;
};

TEST_F(EngineTest, DrainBudgetBoundsChunksPerTick) {
  SinkObs obs;
  auto src = std::make_unique<ScriptedSource>(12, 1000);
  auto sink = std::make_unique<ScriptedSink>(&sim_, &obs);
  SpliceOptions opts;
  opts.max_chunks_per_tick = 3;
  opts.max_inflight_chunks = 64;
  opts.refill_batch = 64;  // everything readable at once
  const int64_t moved = RunSplice(std::move(src), std::move(sink), opts);
  EXPECT_EQ(moved, 12000);
  // Writes happen on tick boundaries, at most 3 per tick.
  const SimDuration tick = callouts_.TickDuration();
  std::map<SimTime, int> per_tick;
  for (SimTime t : obs.write_times) {
    EXPECT_EQ(t % tick, 0);
    ++per_tick[t];
  }
  for (const auto& [t, n] : per_tick) {
    EXPECT_LE(n, 3) << "tick at " << t;
  }
  EXPECT_GE(per_tick.size(), 4u);  // 12 chunks / 3 per tick
}

TEST_F(EngineTest, InflightBoundLimitsSynchronousReadahead) {
  SourceObs obs;
  auto src = std::make_unique<ScriptedSource>(100, 500, 0, &obs);
  auto sink = std::make_unique<ScriptedSink>(&sim_, nullptr);
  SpliceOptions opts;
  opts.max_inflight_chunks = 4;
  opts.refill_batch = 16;
  opts.max_chunks_per_tick = 2;

  // Snapshot how far ahead the source has been read right after Start: the
  // in-flight bound must cap it even though reads complete synchronously.
  engine_.Start(std::move(src), std::move(sink), opts, [](int64_t) {});
  EXPECT_LE(obs.reads, 4);
  sim_.Run();
  EXPECT_EQ(obs.reads, 100);
  EXPECT_EQ(obs.releases, 100);  // every chunk released exactly once
}

TEST_F(EngineTest, ReadRefusalArmsRetryAndRecovers) {
  SourceObs obs;
  auto src = std::make_unique<ScriptedSource>(5, 100, /*refusals=*/3, &obs);
  auto sink = std::make_unique<ScriptedSink>(&sim_, nullptr);
  const int64_t moved = RunSplice(std::move(src), std::move(sink), SpliceOptions{});
  EXPECT_EQ(moved, 500);
  EXPECT_EQ(obs.reads, 5);
}

TEST_F(EngineTest, SinkRefusalRequeuesInOrder) {
  SinkObs obs;
  auto src = std::make_unique<ScriptedSource>(6, 100);
  auto sink = std::make_unique<ScriptedSink>(&sim_, &obs, /*refusals=*/2);
  const int64_t moved = RunSplice(std::move(src), std::move(sink), SpliceOptions{});
  EXPECT_EQ(moved, 600);
  // Order preserved despite the refusals (chunks requeue at the front).
  EXPECT_EQ(obs.indices, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST_F(EngineTest, EmptySourceCompletesAsynchronously) {
  auto src = std::make_unique<ScriptedSource>(0, 100);
  auto sink = std::make_unique<ScriptedSink>(&sim_, nullptr);
  int64_t moved = -2;
  engine_.Start(std::move(src), std::move(sink), SpliceOptions{},
                [&moved](int64_t m) { moved = m; });
  EXPECT_EQ(moved, -2) << "completion must not fire inside Start()";
  sim_.Run();
  EXPECT_EQ(moved, 0);
  EXPECT_EQ(engine_.active(), 0);
}

TEST_F(EngineTest, StatsCountRetriesAndRefills) {
  auto src = std::make_unique<ScriptedSource>(10, 100, /*refusals=*/2);
  auto sink = std::make_unique<ScriptedSink>(&sim_, nullptr, /*refusals=*/1);
  SpliceDescriptor* d = nullptr;
  SpliceDescriptor::Stats observed;
  d = engine_.Start(std::move(src), std::move(sink), SpliceOptions{},
                    [&](int64_t) { observed = d->stats(); });
  sim_.Run();
  EXPECT_GE(observed.read_retries, 1u);
  EXPECT_GE(observed.write_retries, 1u);
  EXPECT_GT(observed.refills, 0u);
}

TEST_F(EngineTest, CancelMidTransferReleasesAllChunksAndCompletesOnce) {
  SourceObs obs;
  auto src = std::make_unique<ScriptedSource>(64, 1000, 0, &obs);
  auto sink = std::make_unique<ScriptedSink>(&sim_, nullptr);
  SpliceOptions opts;
  opts.max_inflight_chunks = 8;
  opts.refill_batch = 8;
  opts.max_chunks_per_tick = 2;
  int completions = 0;
  int64_t moved = -2;
  SpliceDescriptor* d = engine_.Start(std::move(src), std::move(sink), opts, [&](int64_t m) {
    ++completions;
    moved = m;
  });
  // Let a few drain ticks run, then cancel with chunks still in flight.
  sim_.RunUntil(3 * callouts_.TickDuration());
  ASSERT_EQ(completions, 0);
  engine_.Cancel(d);
  sim_.Run();
  EXPECT_EQ(completions, 1) << "on_complete must fire exactly once";
  EXPECT_GE(moved, 0);
  EXPECT_LT(moved, 64 * 1000);
  EXPECT_EQ(obs.releases, obs.reads) << "every read chunk must be released";
  EXPECT_EQ(engine_.active(), 0);
}

// A source whose reads complete from interrupt context after a short delay,
// the way a real DMA device's completion arrives.
class InterruptSource : public SpliceSource {
 public:
  InterruptSource(Simulator* sim, CpuSystem* cpu, int64_t total_chunks, int64_t chunk_bytes)
      : sim_(sim), cpu_(cpu), total_chunks_(total_chunks), chunk_bytes_(chunk_bytes) {}

  int64_t TotalBytes() const override { return total_chunks_ * chunk_bytes_; }
  int64_t ChunkBytes() const override { return chunk_bytes_; }

  bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) override {
    sim_->After(Microseconds(5), [this, index, done = std::move(done)] {
      cpu_->RunInterrupt(0, [this, index, done] {
        SpliceChunk c;
        c.index = index;
        c.nbytes = chunk_bytes_;
        c.data = MakeBufData();
        done(c);
      });
    });
    return true;
  }

  void Release(SpliceChunk& chunk) override { (void)chunk; }

 private:
  Simulator* sim_;
  CpuSystem* cpu_;
  int64_t total_chunks_;
  int64_t chunk_bytes_;
};

TEST(SpliceChargeTest, SyncCompletionChargeIsNotDropped) {
  // ScriptedSource completes its reads synchronously inside Start(), in
  // process context.  The read-handler cost of those completions must land
  // in the pending sync charge for the syscall layer to bill, not vanish.
  Simulator sim;
  CpuSystem cpu(&sim, DecStation5000Costs());
  CalloutTable callouts(&sim, 256);
  SpliceEngine engine(&cpu, &callouts);

  SourceObs obs;
  SpliceOptions opts;
  opts.max_inflight_chunks = 4;  // four reads complete inside Start()
  opts.refill_batch = 4;
  engine.Start(std::make_unique<ScriptedSource>(8, 1000, 0, &obs),
               std::make_unique<ScriptedSink>(&sim, nullptr), opts, [](int64_t) {});
  const int sync_reads = obs.reads;
  EXPECT_GE(sync_reads, 1);
  const SimDuration charge = engine.TakeSyncCharge();
  EXPECT_EQ(charge, sync_reads * cpu.costs().splice_read_handler);
  EXPECT_EQ(engine.TakeSyncCharge(), 0) << "charge must drain exactly once";

  sim.Run();
  // Post-setup handler work runs from softclock/interrupt context and is
  // billed to interrupt accounting, never to the pending sync charge.
  EXPECT_EQ(engine.TakeSyncCharge(), 0);
}

TEST(SpliceChargeTest, SyncAndAsyncCompletionChargeTheSameTotal) {
  // The same transfer must account the same total handler CPU whether read
  // completions arrive synchronously in process context (charged via
  // TakeSyncCharge) or from interrupt context (charged to the interrupt).
  // Zero the softclock overhead so interrupt_work isolates handler charges;
  // the two modes may arm a different number of drain ticks.
  CostConfig costs = DecStation5000Costs();
  costs.softclock_per_callout = 0;
  const int64_t kChunks = 8;
  const int64_t kChunkBytes = 1000;

  SimDuration sync_total = 0;
  {
    Simulator sim;
    CpuSystem cpu(&sim, costs);
    CalloutTable callouts(&sim, 256);
    SpliceEngine engine(&cpu, &callouts);
    engine.Start(std::make_unique<ScriptedSource>(kChunks, kChunkBytes),
                 std::make_unique<ScriptedSink>(&sim, nullptr), SpliceOptions{}, [](int64_t) {});
    sync_total += engine.TakeSyncCharge();
    EXPECT_GT(sync_total, 0);  // the regression: this used to be dropped
    sim.Run();
    sync_total += engine.TakeSyncCharge() + cpu.stats().interrupt_work;
  }

  SimDuration async_total = 0;
  {
    Simulator sim;
    CpuSystem cpu(&sim, costs);
    CalloutTable callouts(&sim, 256);
    SpliceEngine engine(&cpu, &callouts);
    engine.Start(std::make_unique<InterruptSource>(&sim, &cpu, kChunks, kChunkBytes),
                 std::make_unique<ScriptedSink>(&sim, nullptr), SpliceOptions{}, [](int64_t) {});
    EXPECT_EQ(engine.TakeSyncCharge(), 0);  // nothing completed in Start()
    sim.Run();
    EXPECT_EQ(engine.TakeSyncCharge(), 0);  // all handlers ran at interrupt
    async_total = cpu.stats().interrupt_work;
  }

  EXPECT_EQ(sync_total, async_total);
}

TEST_F(EngineTest, EngineStatsAccumulateAcrossSplices) {
  for (int i = 0; i < 3; ++i) {
    RunSplice(std::make_unique<ScriptedSource>(4, 250),
              std::make_unique<ScriptedSink>(&sim_, nullptr), SpliceOptions{});
  }
  EXPECT_EQ(engine_.stats().splices_started, 3u);
  EXPECT_EQ(engine_.stats().splices_completed, 3u);
  EXPECT_EQ(engine_.stats().total_bytes, 3 * 1000);
  EXPECT_EQ(engine_.active(), 0);
}

}  // namespace
}  // namespace ikdp
