// Unit tests for the krace happens-before race detector (src/sim/krace.h):
// every edge kind that ORDERS two same-timestamp accesses (schedule chains,
// ordering channels, the clock itself, program order) must silence the
// detector, every missing edge must fire it, and the access-kind lattice
// (read / write / commute) must conflict exactly as documented.  The abort
// mode's crash path is pinned with EXPECT_DEATH, mirroring
// tests/kcheck_runtime_test.cc for the context checker.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/buf/buf.h"
#include "src/buf/buffer_cache.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/sim/krace.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

class KraceTest : public ::testing::Test {
 protected:
  // The detector is process-wide; tests force collect mode and restore
  // whatever the environment selected (the CI suite runs under
  // IKDP_KRACE=abort) so neighbouring tests keep their configuration.
  void SetUp() override {
    saved_mode_ = Krace().mode();
    saved_seed_ = Krace().perturb_seed();
    Krace().SetPerturbSeed(0);
    Krace().SetMode(KraceDetector::Mode::kCollect);
  }
  void TearDown() override {
    Krace().SetPerturbSeed(saved_seed_);
    Krace().SetMode(saved_mode_);
  }

  std::string FirstRace() const {
    return Krace().races().empty() ? std::string("(none)")
                                   : Krace().races()[0].Describe();
  }

  KraceDetector::Mode saved_mode_ = KraceDetector::Mode::kOff;
  uint64_t saved_seed_ = 0;
  Simulator sim_;
  int field_ = 0;
};

// --- the positive direction: a genuine race is reported ---

TEST_F(KraceTest, UnorderedSameTimeWritesRace) {
  // Two host-scheduled events at one timestamp have no schedule edge: a
  // legal tie-break permutation reverses them.
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  ASSERT_EQ(Krace().races().size(), 1u);
  const KraceDetector::Race& r = Krace().races()[0];
  EXPECT_EQ(r.obj, &field_);
  EXPECT_EQ(r.time, 10);
  EXPECT_NE(r.Describe().find("Fixture::field"), std::string::npos);
}

TEST_F(KraceTest, ReadVsConcurrentWriteRaces) {
  sim_.At(10, [&] { IKDP_KRACE_READ(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

TEST_F(KraceTest, SiblingsOfOneParentStillRace) {
  // A schedule edge orders parent -> child, not child -> sibling: two
  // children spawned by the same event remain unordered with each other.
  sim_.At(10, [&] {
    sim_.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
    sim_.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

TEST_F(KraceTest, DistinctFieldsDoNotInteract) {
  int other = 0;
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&other, "Fixture::other"); });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

// --- edges that order accesses must silence the detector ---

TEST_F(KraceTest, ScheduleEdgeOrdersParentAndChild) {
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    sim_.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, ScheduleChainReachesGrandchildren) {
  // The ancestor set is transitive through an intermediary that never
  // touches the field itself.
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    sim_.After(0, [&] {
      sim_.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
    });
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, CrossTimestampAccessesAreClockOrdered) {
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.At(20, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, ChannelReleaseAcquireOrders) {
  // The dynamic half of IKDP_ORDERED_BY: release-after-publish in the
  // first event, acquire-before-consume in the second.
  int chan = 0;
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    Krace().ChannelRelease(&chan);
  });
  sim_.At(10, [&] {
    Krace().ChannelAcquire(&chan);
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, ChannelEdgeComposesWithScheduleEdges) {
  // X -schedule-> A -channel-> B must make X happen-before B: the release
  // carries the releaser's own same-timestamp ancestors, not just the
  // releasing event.  Queue order at t=10 is X, H, A(child of X),
  // B(child of H), so B really does acquire after A releases.
  int chan = 0;
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    sim_.After(0, [&] { Krace().ChannelRelease(&chan); });
  });
  sim_.At(10, [&] {
    sim_.After(0, [&] {
      Krace().ChannelAcquire(&chan);
      IKDP_KRACE_WRITE(&field_, "Fixture::field");
    });
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, ChannelEdgeNeedsTheAcquire) {
  // Releasing alone proves nothing: a consumer that skips the acquire is
  // exactly the bug the channel annotation exists to catch.
  int chan = 0;
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    Krace().ChannelRelease(&chan);
  });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

// --- the access-kind lattice ---

TEST_F(KraceTest, ConcurrentReadsDoNotRace) {
  sim_.At(10, [&] { IKDP_KRACE_READ(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_READ(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, CommutingUpdatesDoNotRaceEachOther) {
  // Two order-insensitive updates (counter bumps) commute by declaration.
  sim_.At(10, [&] { IKDP_KRACE_COMMUTE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_COMMUTE(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, CommuteStillRacesWithPlainRead) {
  // An unordered reader CAN observe either side of a commuting update; only
  // commute/commute pairs are exempt.
  sim_.At(10, [&] { IKDP_KRACE_COMMUTE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_READ(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

TEST_F(KraceTest, CommuteStillRacesWithPlainWrite) {
  sim_.At(10, [&] { IKDP_KRACE_COMMUTE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

TEST_F(KraceTest, MixedKindsWithinOneEventAreProgramOrdered) {
  sim_.At(10, [&] {
    IKDP_KRACE_READ(&field_, "Fixture::field");
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    IKDP_KRACE_COMMUTE(&field_, "Fixture::field");
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

// --- bookkeeping corners ---

TEST_F(KraceTest, HostSideAccessesAreExempt) {
  // Setup/verification code runs between events on the one real thread; it
  // cannot be reordered against anything.
  IKDP_KRACE_WRITE(&field_, "Fixture::field");
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  IKDP_KRACE_READ(&field_, "Fixture::field");
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, CancelledChildLeavesNoPendingState) {
  sim_.At(10, [&] {
    IKDP_KRACE_WRITE(&field_, "Fixture::field");
    const EventId child =
        sim_.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
    EXPECT_TRUE(sim_.Cancel(child));
  });
  sim_.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, PriorRunStateIsDiscardedOnNewSimulator) {
  // EventIds restart per Simulator, and the detector is process-wide:
  // without a per-run reset, run 2's events alias run 1's records at the
  // same (address, field, timestamp).  Here run 2's writer has a different
  // id than run 1's, so stale state would fabricate a cross-run race.
  {
    Simulator first;
    first.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
    first.Run();
  }
  Simulator second;
  second.At(10, [] {});  // occupies the event id run 1's writer had
  second.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  second.Run();
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, EventIdReuseAcrossRunsDoesNotMaskRaces) {
  // The false-negative twin: run 1 records ordered writes under ids 1 and
  // 2; run 2 reuses those ids for a GENUINE racing pair.  Stale records
  // would make run 2's accesses look like duplicates of run 1's ("same
  // event, same kind") and silently swallow the race.
  {
    Simulator first;
    first.At(10, [&] {
      IKDP_KRACE_WRITE(&field_, "Fixture::field");
      first.After(0, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
    });
    first.Run();
    ASSERT_TRUE(Krace().races().empty()) << FirstRace();
  }
  Simulator second;
  second.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  second.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  second.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
}

TEST_F(KraceTest, SetPerturbSeedStartsACleanRun) {
  // A seed sweep reruns the same workload; each seed is a fresh run whose
  // events must not be compared against the previous seed's records.
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  ASSERT_EQ(Krace().races().size(), 1u);
  Krace().SetPerturbSeed(1);
  EXPECT_TRUE(Krace().races().empty());
  EXPECT_EQ(Krace().perturb_seed(), 1u);
}

TEST_F(KraceTest, ResetClearsRecordedRaces) {
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.At(10, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
  sim_.Run();
  ASSERT_FALSE(Krace().races().empty());
  Krace().Reset();
  EXPECT_TRUE(Krace().races().empty());
}

// --- abort mode ---

using KraceDeathTest = KraceTest;

TEST_F(KraceDeathTest, AbortModeAbortsOnFirstRace) {
  EXPECT_DEATH(
      {
        Krace().SetMode(KraceDetector::Mode::kAbort);
        sim_.At(5, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
        sim_.At(5, [&] { IKDP_KRACE_WRITE(&field_, "Fixture::field"); });
        sim_.Run();
      },
      "krace:");
}

// --- integration: an instrumented kernel path under the detector ---

TEST_F(KraceTest, BufferCacheAsyncReadPathIsRaceFree) {
  // BreadAsync drives the instrumented Buf::flags, freelist, and hash-chain
  // probes through interrupt-context completion; the handoffs all carry
  // real edges, so collect mode must stay silent.
  CpuSystem cpu(&sim_, DecStation5000Costs());
  BufferCache cache(&cpu, 16);
  RamDisk ram(&cpu, 4 << 20);
  ram.PokeBlock(3, std::vector<uint8_t>(kBlockSize, 0x5a));
  Buf* got = nullptr;
  cache.BreadAsync(&ram, 3, [&](Buf& b) { got = &b; });
  sim_.Run();
  ASSERT_NE(got, nullptr);
  cache.Brelse(got);
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

TEST_F(KraceTest, BufferCacheReadAheadBurstIsRaceFree) {
  // Several overlapping async reads complete through the disk driver's
  // single interrupt engine; distinct buffers must not alias in the
  // detector and the shared freelist/hash structures must stay ordered
  // (or commuting) under the burst.
  CpuSystem cpu(&sim_, DecStation5000Costs());
  BufferCache cache(&cpu, 16);
  RamDisk ram(&cpu, 4 << 20);
  for (int64_t blk = 0; blk < 8; ++blk) {
    ram.PokeBlock(blk, std::vector<uint8_t>(kBlockSize, uint8_t(blk)));
  }
  int done = 0;
  for (int64_t blk = 0; blk < 8; ++blk) {
    cache.IssueReadAhead(&ram, blk);
  }
  cache.BreadAsync(&ram, 2, [&](Buf& b) {
    ++done;
    cache.Brelse(&b);
  });
  sim_.Run();
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(Krace().races().empty()) << FirstRace();
}

}  // namespace
}  // namespace ikdp
