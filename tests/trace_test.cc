// Tests for the ktrace-style event log: ring semantics (including wrap
// boundaries), kernel hook coverage (syscalls, dispatch, sleep/wakeup,
// interrupts, splice lifecycle and flow control, buffer cache, disk
// scheduler, callouts), ordering, the off-by-default guarantee, and the
// JSON exporters' round-trip schema.

#include <gtest/gtest.h>
#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"

#include <sstream>

#include "src/dev/ram_disk.h"
#include "src/metrics/trace_export.h"
#include "src/os/kernel.h"
#include "src/sim/trace.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 31); }

TEST(TraceLogTest, RecordsAndSnapshotsInOrder) {
  TraceLog log(16);
  log.Record(100, TraceKind::kDispatch, 1);
  log.Record(200, TraceKind::kSleep, 1, 20);
  log.Record(300, TraceKind::kWakeup, 1);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].time, 100);
  EXPECT_EQ(snap[1].kind, TraceKind::kSleep);
  EXPECT_EQ(snap[1].b, 20);
  EXPECT_EQ(snap[2].time, 300);
  EXPECT_EQ(log.total(), 3u);
}

TEST(TraceLogTest, RingWrapsKeepingNewest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].a, 6);  // oldest retained
  EXPECT_EQ(snap[3].a, 9);  // newest
  EXPECT_EQ(log.total(), 10u);
}

TEST(TraceLogTest, ExactlyFullRingDoesNotWrap) {
  TraceLog log(4);
  for (int i = 0; i < 4; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].a, 0);  // nothing evicted yet
  EXPECT_EQ(snap[3].a, 3);
  EXPECT_EQ(log.total(), 4u);
}

TEST(TraceLogTest, OnePastCapacityEvictsExactlyTheOldest) {
  TraceLog log(4);
  for (int i = 0; i < 5; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].a, 1);
  EXPECT_EQ(snap[3].a, 4);
}

TEST(TraceLogTest, WrapAtExactMultipleOfCapacity) {
  // After k * capacity records the write cursor is back at slot 0; the
  // snapshot rotation must still start from the oldest retained record.
  TraceLog log(4);
  for (int i = 0; i < 12; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[static_cast<size_t>(i)].a, 8 + i);  // strictly ascending, oldest first
  }
  EXPECT_EQ(log.total(), 12u);
}

TEST(TraceLogTest, FilterAfterWrapKeepsOrder) {
  TraceLog log(6);
  for (int i = 0; i < 10; ++i) {
    log.Record(i, i % 2 == 0 ? TraceKind::kDispatch : TraceKind::kWakeup, i);
  }
  const auto only = log.Filter(
      [](const TraceRecord& r) { return r.kind == TraceKind::kDispatch; });
  ASSERT_EQ(only.size(), 3u);  // 4, 6, 8 retained
  EXPECT_EQ(only[0].a, 4);
  EXPECT_EQ(only[1].a, 6);
  EXPECT_EQ(only[2].a, 8);
}

TEST(TraceLogTest, ObserverSeesEveryRecordEvenAfterEviction) {
  TraceLog log(2);
  int seen = 0;
  int64_t last = -1;
  log.set_observer([&](const TraceRecord& r) {
    ++seen;
    last = r.a;
  });
  for (int i = 0; i < 7; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  EXPECT_EQ(seen, 7);  // eviction does not hide records from the tap
  EXPECT_EQ(last, 6);
  EXPECT_EQ(log.Snapshot().size(), 2u);
}

TEST(TraceLogTest, FilterSelects) {
  TraceLog log(16);
  log.Record(1, TraceKind::kDispatch, 1);
  log.Record(2, TraceKind::kInterrupt, 500);
  log.Record(3, TraceKind::kDispatch, 2);
  const auto only = log.Filter(
      [](const TraceRecord& r) { return r.kind == TraceKind::kDispatch; });
  ASSERT_EQ(only.size(), 2u);
  EXPECT_EQ(only[1].a, 2);
}

TEST(TraceLogTest, DumpIsHumanReadable) {
  TraceLog log(8);
  log.Record(Milliseconds(5), TraceKind::kSyscallEnter, 7, 0, "read");
  std::ostringstream os;
  log.Dump(os);
  EXPECT_NE(os.str().find("syscall-enter"), std::string::npos);
  EXPECT_NE(os.str().find("read"), std::string::npos);
}

class TraceKernelTest : public ::testing::Test {
 protected:
  TraceKernelTest()
      : kernel_(&sim_, DecStation5000Costs()),
        rama_(&kernel_.cpu(), 16 << 20),
        ramb_(&kernel_.cpu(), 16 << 20) {
    fsa_ = kernel_.MountFs(&rama_, "a");
    fsb_ = kernel_.MountFs(&ramb_, "b");
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk rama_;
  RamDisk ramb_;
  FileSystem* fsa_;
  FileSystem* fsb_;
};

TEST_F(TraceKernelTest, OffByDefaultRecordsNothing) {
  fsa_->CreateFileInstant("f", 4 * kBlockSize, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  sim_.Run();
  EXPECT_EQ(kernel_.cpu().trace(), nullptr);  // nothing attached, nothing to record
}

TEST_F(TraceKernelTest, CapturesSpliceLifecycle) {
  TraceLog log(8192);
  kernel_.cpu().set_trace(&log);
  constexpr int64_t kBytes = 6 * kBlockSize;
  fsa_->CreateFileInstant("f", kBytes, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  sim_.Run();

  const auto starts =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceStart; });
  const auto chunks =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceChunk; });
  const auto dones =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceDone; });
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(chunks.size(), 6u);  // one per block
  ASSERT_EQ(dones.size(), 1u);
  EXPECT_EQ(dones[0].b, kBytes);
  // Lifecycle ordering: start before every chunk, done after the last.
  EXPECT_LE(starts[0].time, chunks.front().time);
  EXPECT_LE(chunks.back().time, dones[0].time);
  // All records share the descriptor serial.
  for (const auto& c : chunks) {
    EXPECT_EQ(c.a, starts[0].a);
  }
}

TEST_F(TraceKernelTest, CapturesSyscallsAndScheduling) {
  TraceLog log(8192);
  kernel_.cpu().set_trace(&log);
  fsa_->CreateFileInstant("f", 2 * kBlockSize, Fill);
  kernel_.Spawn("reader", [&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "a:f", kOpenRead);
    std::vector<uint8_t> buf;
    co_await kernel_.Read(p, fd, kBlockSize, &buf);
    co_await kernel_.Close(p, fd);
  });
  sim_.Run();

  auto by_tag = [&](const char* tag, TraceKind kind) {
    return log.Filter([tag, kind](const TraceRecord& r) {
      return r.kind == kind && std::string(r.tag) == tag;
    });
  };
  EXPECT_EQ(by_tag("open", TraceKind::kSyscallEnter).size(), 1u);
  EXPECT_EQ(by_tag("read", TraceKind::kSyscallEnter).size(), 1u);
  EXPECT_EQ(by_tag("read", TraceKind::kSyscallExit).size(), 1u);
  EXPECT_EQ(by_tag("close", TraceKind::kSyscallEnter).size(), 1u);
  // At least one dispatch (the process starting).
  EXPECT_GE(
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDispatch; }).size(),
      1u);
  // Enter precedes exit for the read call.
  const auto enter = by_tag("read", TraceKind::kSyscallEnter)[0];
  const auto exit_rec = by_tag("read", TraceKind::kSyscallExit)[0];
  EXPECT_LT(enter.time, exit_rec.time);
}

TEST_F(TraceKernelTest, CapturesInterruptsOnScsiPath) {
  TraceLog log(8192);
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  kernel.cpu().set_trace(&log);
  DiskDriver scsi(&kernel.cpu(), &sim, Rz56Params());
  FileSystem* fs = kernel.MountFs(&scsi, "d");
  fs->CreateFileInstant("f", 2 * kBlockSize, Fill);
  kernel.Spawn("p", [&](Process& p) -> Task<> {
    const int fd = co_await kernel.Open(p, "d:f", kOpenRead);
    std::vector<uint8_t> buf;
    co_await kernel.Read(p, fd, 2 * kBlockSize, &buf);
  });
  sim.Run();
  const auto intrs =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kInterrupt; });
  EXPECT_GE(intrs.size(), 2u);  // one per disk completion at least
  for (const auto& r : intrs) {
    EXPECT_GT(r.a, 0);  // charged duration recorded
  }
}

TEST_F(TraceKernelTest, CapturesBufferCacheAndSpliceFlowControl) {
  TraceLog log(1 << 14);
  kernel_.AttachTrace(&log);
  constexpr int64_t kBytes = 8 * kBlockSize;
  fsa_->CreateFileInstant("f", kBytes, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, s, d, kSpliceEof);
    // Re-read the source so the cache sees hits on warm blocks.
    co_await kernel_.Lseek(p, s, 0);
    std::vector<uint8_t> buf;
    co_await kernel_.Read(p, s, kBlockSize, &buf);
  });
  sim_.Run();

  auto count = [&](TraceKind k) {
    return log.Filter([k](const TraceRecord& r) { return r.kind == k; }).size();
  };
  // Cold splice reads miss, the re-read hits.
  EXPECT_GE(count(TraceKind::kBreadMiss), 8u);
  EXPECT_GE(count(TraceKind::kBreadHit), 1u);
  // Every issued read is recorded and pairs with exactly one chunk
  // completion by (serial, index).
  const auto reads =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceRead; });
  const auto chunks =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceChunk; });
  ASSERT_EQ(reads.size(), 8u);
  ASSERT_EQ(chunks.size(), 8u);
  for (size_t i = 0; i < reads.size(); ++i) {
    bool paired = false;
    for (const auto& c : chunks) {
      if (c.a == reads[i].a && c.b == reads[i].b) {
        EXPECT_GE(c.time, reads[i].time);
        paired = true;
      }
    }
    EXPECT_TRUE(paired) << "chunk " << reads[i].b << " never completed";
  }
  // Watermark refills: every low-water crossing is followed by a refill
  // record with the batch size.
  EXPECT_EQ(count(TraceKind::kSpliceLowWater), count(TraceKind::kSpliceRefill));
  // The splice machinery runs off the callout table.
  EXPECT_GE(count(TraceKind::kCalloutArm), 1u);
  EXPECT_GE(count(TraceKind::kSoftclockRun), 1u);
}

TEST_F(TraceKernelTest, RunnablePairsWithDispatch) {
  TraceLog log(1 << 14);
  kernel_.AttachTrace(&log);
  fsa_->CreateFileInstant("f", 2 * kBlockSize, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "a:f", kOpenRead);
    std::vector<uint8_t> buf;
    co_await kernel_.Read(p, fd, kBlockSize, &buf);
  });
  sim_.Run();
  const auto runnable =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kRunnable; });
  ASSERT_GE(runnable.size(), 1u);
  // Each runnable record is followed by a dispatch of the same pid at a
  // time >= the runnable time.
  for (const auto& r : runnable) {
    const auto later = log.Filter([&](const TraceRecord& d) {
      return d.kind == TraceKind::kDispatch && d.a == r.a && d.time >= r.time;
    });
    EXPECT_GE(later.size(), 1u) << "pid " << r.a << " made runnable but never dispatched";
  }
}

TEST(TraceDiskSchedTest, DispatchCompletePairsAndCoalesce) {
  TraceLog log(4096);
  Simulator sim;
  DiskModel disk(&sim, Rz56Params());
  disk.set_trace(&log);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    DiskRequest r;
    r.offset = i * 8192;  // physically adjacent: the scheduler coalesces
    r.nbytes = 8192;
    r.is_read = true;
    r.done = [&done](bool ok) { done += ok ? 1 : 0; };
    disk.Submit(std::move(r));
  }
  sim.Run();
  ASSERT_EQ(done, 4);
  const auto dispatches =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDiskDispatch; });
  const auto completes =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDiskComplete; });
  ASSERT_EQ(dispatches.size(), completes.size());
  ASSERT_GE(dispatches.size(), 1u);
  for (size_t i = 0; i < dispatches.size(); ++i) {
    // Serial and byte totals match within the pair; completion is later.
    EXPECT_EQ(dispatches[i].a, completes[i].a);
    EXPECT_EQ(dispatches[i].b, completes[i].b);
    EXPECT_LT(dispatches[i].time, completes[i].time);
  }
  // The adjacent requests merged: fewer transfers than requests, and the
  // merges are visible.
  const auto coalesces =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDiskCoalesce; });
  EXPECT_EQ(dispatches.size() + coalesces.size(), 4u);
  EXPECT_GE(coalesces.size(), 1u);
}

TEST(TraceDiskSchedTest, SweepWrapRecorded) {
  TraceLog log(4096);
  Simulator sim;
  DiskParams params = Rz56Params();
  params.max_coalesce_bytes = 0;  // keep every request distinct
  DiskModel disk(&sim, params);
  disk.set_trace(&log);
  int done = 0;
  auto submit = [&](int64_t offset) {
    DiskRequest r;
    r.offset = offset;
    r.nbytes = 8192;
    r.is_read = true;
    r.done = [&done](bool) { ++done; };
    disk.Submit(std::move(r));
  };
  // First request puts the sweep position past the low offsets; the queued
  // low requests then force a C-LOOK wrap.
  submit(100 * 1024 * 1024);
  submit(8192);
  submit(0);
  sim.Run();
  ASSERT_EQ(done, 3);
  const auto wraps =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDiskSweepWrap; });
  ASSERT_GE(wraps.size(), 1u);
  EXPECT_EQ(wraps[0].a, 0);  // wrapped to the lowest queued offset
  EXPECT_GT(wraps[0].b, 0);  // from a sweep position beyond it
}

// --- exporter round-trips ---

TEST(TraceExportTest, ChromeTraceParsesAndHasExpectedShape) {
  TraceLog log(64);
  log.Record(1000, TraceKind::kSyscallEnter, 7, 0, "read");
  log.Record(5000, TraceKind::kSyscallExit, 7, 0, "read");
  log.Record(6000, TraceKind::kInterrupt, 1500);
  log.Record(7000, TraceKind::kDiskDispatch, 1, 8192, "RZ56");
  log.Record(9000, TraceKind::kDiskComplete, 1, 8192, "RZ56");
  log.Record(9500, TraceKind::kSpliceStart, 1, 4);
  log.Record(9900, TraceKind::kSpliceDone, 1, 32768);
  std::ostringstream os;
  ExportChromeTrace(log, os);

  JsonValue root;
  ASSERT_TRUE(ParseJson(os.str(), &root)) << os.str();
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());

  int begins = 0;
  int ends = 0;
  int metas = 0;
  bool disk_slice = false;
  for (const JsonValue& ev : events->items) {
    const std::string& ph = ev.Get("ph")->str;
    if (ph == "B") {
      ++begins;
      if (ev.Get("cat")->str == "syscall") {
        EXPECT_EQ(ev.Get("name")->str, "read");
        EXPECT_EQ(ev.Get("ts")->number, 1.0);  // 1000 ns = 1 us
      }
    }
    if (ph == "E") {
      ++ends;
    }
    if (ph == "M") {
      ++metas;
    }
    if (ph == "X") {
      EXPECT_EQ(ev.Get("dur")->number, 1.5);  // 1500 ns
    }
    const JsonValue* name = ev.Get("name");
    if (name != nullptr && name->str.find("xfer") != std::string::npos) {
      disk_slice = true;
    }
  }
  EXPECT_EQ(begins, 2);  // syscall B + disk B
  EXPECT_EQ(ends, 2);
  EXPECT_GE(metas, 2);  // process_name + thread names
  EXPECT_TRUE(disk_slice);
}

TEST(TraceExportTest, RegistryJsonRoundTripsSchema) {
  MetricsRegistry registry;
  registry.SetCounter("cache.hits", 42);
  registry.SetCounter("cache.misses", 7);
  LatencyHistogram* h = registry.Histogram("disk.service_time.RZ56");
  h->Add(1000);
  h->Add(3000);
  h->Add(1000000);
  std::ostringstream os;
  ExportRegistryJson(registry, os);

  JsonValue root;
  ASSERT_TRUE(ParseJson(os.str(), &root)) << os.str();
  ASSERT_NE(root.Get("schema"), nullptr);
  EXPECT_EQ(root.Get("schema")->str, kTelemetrySchema);

  const JsonValue* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Get("cache.hits")->number, 42.0);
  EXPECT_EQ(counters->Get("cache.misses")->number, 7.0);

  const JsonValue* hists = root.Get("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hj = hists->Get("disk.service_time.RZ56");
  ASSERT_NE(hj, nullptr);
  EXPECT_EQ(hj->Get("count")->number, 3.0);
  EXPECT_EQ(hj->Get("sum")->number, 1004000.0);
  EXPECT_EQ(hj->Get("min")->number, 1000.0);
  EXPECT_EQ(hj->Get("max")->number, 1000000.0);
  const JsonValue* buckets = hj->Get("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->IsArray());
  double total = 0;
  for (const JsonValue& b : buckets->items) {
    total += b.Get("count")->number;
    EXPECT_LT(b.Get("lo")->number, b.Get("hi")->number);
  }
  EXPECT_EQ(total, 3.0);  // bucket counts cover every sample
}

TEST(TraceExportTest, ExportAfterRingWrapStaysWellFormed) {
  TraceLog log(8);
  for (int i = 0; i < 40; ++i) {
    log.Record(i * 100, TraceKind::kDispatch, i % 3, 0, "p");
  }
  std::ostringstream os;
  ExportChromeTrace(log, os);
  JsonValue root;
  ASSERT_TRUE(ParseJson(os.str(), &root));
  // Retained events only, all with ascending timestamps.
  const JsonValue* events = root.Get("traceEvents");
  double prev = -1;
  int data_events = 0;
  for (const JsonValue& ev : events->items) {
    if (ev.Get("ph")->str != "i") {
      continue;
    }
    ++data_events;
    EXPECT_GE(ev.Get("ts")->number, prev);
    prev = ev.Get("ts")->number;
  }
  EXPECT_EQ(data_events, 8);
}

TEST(TraceExportTest, JsonParserRejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(ParseJson("", &v));
  EXPECT_FALSE(ParseJson("{", &v));
  EXPECT_FALSE(ParseJson("{\"a\":}", &v));
  EXPECT_FALSE(ParseJson("[1,2", &v));
  EXPECT_FALSE(ParseJson("\"unterminated", &v));
  EXPECT_FALSE(ParseJson("{} trailing", &v));
  EXPECT_TRUE(ParseJson("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true}}", &v));
  EXPECT_EQ(v.Get("a")->items[2].number, -300.0);
  EXPECT_TRUE(ParseJson("\"esc \\\" \\\\ \\n \\u0041\"", &v));
  EXPECT_EQ(v.str, "esc \" \\ \n A");
}

}  // namespace
}  // namespace ikdp
