// Tests for the ktrace-style event log: ring semantics, kernel hook
// coverage (syscalls, dispatch, sleep/wakeup, interrupts, splice
// lifecycle), ordering, and the off-by-default guarantee.

#include <gtest/gtest.h>
#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"

#include <sstream>

#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"
#include "src/sim/trace.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 31); }

TEST(TraceLogTest, RecordsAndSnapshotsInOrder) {
  TraceLog log(16);
  log.Record(100, TraceKind::kDispatch, 1);
  log.Record(200, TraceKind::kSleep, 1, 20);
  log.Record(300, TraceKind::kWakeup, 1);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].time, 100);
  EXPECT_EQ(snap[1].kind, TraceKind::kSleep);
  EXPECT_EQ(snap[1].b, 20);
  EXPECT_EQ(snap[2].time, 300);
  EXPECT_EQ(log.total(), 3u);
}

TEST(TraceLogTest, RingWrapsKeepingNewest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(i, TraceKind::kDispatch, i);
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].a, 6);  // oldest retained
  EXPECT_EQ(snap[3].a, 9);  // newest
  EXPECT_EQ(log.total(), 10u);
}

TEST(TraceLogTest, FilterSelects) {
  TraceLog log(16);
  log.Record(1, TraceKind::kDispatch, 1);
  log.Record(2, TraceKind::kInterrupt, 500);
  log.Record(3, TraceKind::kDispatch, 2);
  const auto only = log.Filter(
      [](const TraceRecord& r) { return r.kind == TraceKind::kDispatch; });
  ASSERT_EQ(only.size(), 2u);
  EXPECT_EQ(only[1].a, 2);
}

TEST(TraceLogTest, DumpIsHumanReadable) {
  TraceLog log(8);
  log.Record(Milliseconds(5), TraceKind::kSyscallEnter, 7, 0, "read");
  std::ostringstream os;
  log.Dump(os);
  EXPECT_NE(os.str().find("syscall-enter"), std::string::npos);
  EXPECT_NE(os.str().find("read"), std::string::npos);
}

class TraceKernelTest : public ::testing::Test {
 protected:
  TraceKernelTest()
      : kernel_(&sim_, DecStation5000Costs()),
        rama_(&kernel_.cpu(), 16 << 20),
        ramb_(&kernel_.cpu(), 16 << 20) {
    fsa_ = kernel_.MountFs(&rama_, "a");
    fsb_ = kernel_.MountFs(&ramb_, "b");
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk rama_;
  RamDisk ramb_;
  FileSystem* fsa_;
  FileSystem* fsb_;
};

TEST_F(TraceKernelTest, OffByDefaultRecordsNothing) {
  fsa_->CreateFileInstant("f", 4 * kBlockSize, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  sim_.Run();
  EXPECT_EQ(kernel_.cpu().trace(), nullptr);  // nothing attached, nothing to record
}

TEST_F(TraceKernelTest, CapturesSpliceLifecycle) {
  TraceLog log(8192);
  kernel_.cpu().set_trace(&log);
  constexpr int64_t kBytes = 6 * kBlockSize;
  fsa_->CreateFileInstant("f", kBytes, Fill);
  kernel_.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel_.Open(p, "a:f", kOpenRead);
    const int d = co_await kernel_.Open(p, "b:g", kOpenWrite | kOpenCreate);
    co_await kernel_.Splice(p, s, d, kSpliceEof);
  });
  sim_.Run();

  const auto starts =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceStart; });
  const auto chunks =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceChunk; });
  const auto dones =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kSpliceDone; });
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(chunks.size(), 6u);  // one per block
  ASSERT_EQ(dones.size(), 1u);
  EXPECT_EQ(dones[0].b, kBytes);
  // Lifecycle ordering: start before every chunk, done after the last.
  EXPECT_LE(starts[0].time, chunks.front().time);
  EXPECT_LE(chunks.back().time, dones[0].time);
  // All records share the descriptor serial.
  for (const auto& c : chunks) {
    EXPECT_EQ(c.a, starts[0].a);
  }
}

TEST_F(TraceKernelTest, CapturesSyscallsAndScheduling) {
  TraceLog log(8192);
  kernel_.cpu().set_trace(&log);
  fsa_->CreateFileInstant("f", 2 * kBlockSize, Fill);
  kernel_.Spawn("reader", [&](Process& p) -> Task<> {
    const int fd = co_await kernel_.Open(p, "a:f", kOpenRead);
    std::vector<uint8_t> buf;
    co_await kernel_.Read(p, fd, kBlockSize, &buf);
    co_await kernel_.Close(p, fd);
  });
  sim_.Run();

  auto by_tag = [&](const char* tag, TraceKind kind) {
    return log.Filter([tag, kind](const TraceRecord& r) {
      return r.kind == kind && std::string(r.tag) == tag;
    });
  };
  EXPECT_EQ(by_tag("open", TraceKind::kSyscallEnter).size(), 1u);
  EXPECT_EQ(by_tag("read", TraceKind::kSyscallEnter).size(), 1u);
  EXPECT_EQ(by_tag("read", TraceKind::kSyscallExit).size(), 1u);
  EXPECT_EQ(by_tag("close", TraceKind::kSyscallEnter).size(), 1u);
  // At least one dispatch (the process starting).
  EXPECT_GE(
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kDispatch; }).size(),
      1u);
  // Enter precedes exit for the read call.
  const auto enter = by_tag("read", TraceKind::kSyscallEnter)[0];
  const auto exit_rec = by_tag("read", TraceKind::kSyscallExit)[0];
  EXPECT_LT(enter.time, exit_rec.time);
}

TEST_F(TraceKernelTest, CapturesInterruptsOnScsiPath) {
  TraceLog log(8192);
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  kernel.cpu().set_trace(&log);
  DiskDriver scsi(&kernel.cpu(), &sim, Rz56Params());
  FileSystem* fs = kernel.MountFs(&scsi, "d");
  fs->CreateFileInstant("f", 2 * kBlockSize, Fill);
  kernel.Spawn("p", [&](Process& p) -> Task<> {
    const int fd = co_await kernel.Open(p, "d:f", kOpenRead);
    std::vector<uint8_t> buf;
    co_await kernel.Read(p, fd, 2 * kBlockSize, &buf);
  });
  sim.Run();
  const auto intrs =
      log.Filter([](const TraceRecord& r) { return r.kind == TraceKind::kInterrupt; });
  EXPECT_GE(intrs.size(), 2u);  // one per disk completion at least
  for (const auto& r : intrs) {
    EXPECT_GT(r.a, 0);  // charged duration recorded
  }
}

}  // namespace
}  // namespace ikdp
