// Tests for the asynchronous splice ring (src/aio/): batched submission in
// one trap, trapless harvest, SQ backpressure (EAGAIN and block-on-full),
// cancellation, LINKED pipeline groups, CQ overflow staging, and the ring's
// trace/telemetry surface.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/metrics/telemetry.h"
#include "src/metrics/trace_export.h"
#include "src/os/kernel.h"
#include "src/sim/kspan.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 40503u + 13) >> 3 & 0xff); }

class AioTest : public ::testing::Test {
 protected:
  AioTest()
      : kernel_(&sim_, DecStation5000Costs()),
        rama_(&kernel_.cpu(), 16 << 20),
        ramb_(&kernel_.cpu(), 16 << 20),
        scsia_(&kernel_.cpu(), &sim_, Rz56Params()),
        scsib_(&kernel_.cpu(), &sim_, Rz56Params()) {
    fs_rama_ = kernel_.MountFs(&rama_, "rama");
    fs_ramb_ = kernel_.MountFs(&ramb_, "ramb");
    fs_scsia_ = kernel_.MountFs(&scsia_, "scsia");
    fs_scsib_ = kernel_.MountFs(&scsib_, "scsib");
  }

  void Run(std::function<Task<>(Process&)> body) {
    kernel_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(kernel_.cpu().alive(), 0) << "process deadlocked";
  }

  void VerifyFile(FileSystem* fs, const std::string& name, int64_t nbytes) {
    kernel_.cache().FlushAllInstant();
    Inode* ip = fs->Lookup(name);
    ASSERT_NE(ip, nullptr);
    EXPECT_EQ(ip->size, nbytes);
    const std::vector<uint8_t> back = fs->ReadFileInstant(ip);
    ASSERT_EQ(static_cast<int64_t>(back.size()), nbytes);
    for (int64_t i = 0; i < nbytes; ++i) {
      ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
    }
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk rama_;
  RamDisk ramb_;
  DiskDriver scsia_;
  DiskDriver scsib_;
  FileSystem* fs_rama_;
  FileSystem* fs_ramb_;
  FileSystem* fs_scsia_;
  FileSystem* fs_scsib_;
};

TEST_F(AioTest, BatchSubmitsInOneTrapAndCompletesAll) {
  constexpr int kStreams = 4;
  constexpr int64_t kBytes = 8 * kBlockSize;
  for (int i = 0; i < kStreams; ++i) {
    fs_rama_->CreateFileInstant("s" + std::to_string(i), kBytes, Fill);
  }
  int entered = -1;
  int harvested = -1;
  std::vector<SpliceCqe> cqes(kStreams);
  uint64_t traps_for_enter = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    EXPECT_GT(ring, 0);
    for (int i = 0; i < kStreams; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = 100 + static_cast<uint64_t>(i);
      EXPECT_EQ(kernel_.RingPrepare(p, ring, sqe), 0);
    }
    const uint64_t traps_before = p.stats().syscall_traps;
    entered = co_await kernel_.RingEnter(p, ring, kStreams, kStreams);
    traps_for_enter = p.stats().syscall_traps - traps_before;
    // Harvest never traps.
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), kStreams);
    EXPECT_EQ(p.stats().syscall_traps - traps_before, traps_for_enter);
  });
  EXPECT_EQ(entered, kStreams);
  // The whole batch cost exactly ONE kernel entry.
  EXPECT_EQ(traps_for_enter, 1u);
  ASSERT_EQ(harvested, kStreams);
  std::vector<bool> seen(kStreams, false);
  for (const SpliceCqe& c : cqes) {
    const int idx = static_cast<int>(c.cookie) - 100;
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kStreams);
    seen[static_cast<size_t>(idx)] = true;
    EXPECT_EQ(c.error, 0);
    EXPECT_EQ(c.result, kBytes);
    EXPECT_GT(c.latency, 0);
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
  for (int i = 0; i < kStreams; ++i) {
    VerifyFile(fs_ramb_, "d" + std::to_string(i), kBytes);
  }
}

TEST_F(AioTest, SqFullReturnsEagainThenRecovers) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  for (int i = 0; i < 4; ++i) {
    fs_rama_->CreateFileInstant("s" + std::to_string(i), kBytes, Fill);
  }
  RingConfig cfg;
  cfg.sq_entries = 2;
  int first = -1;
  int bounced = 0;
  int second = -1;
  int third = -1;
  uint64_t eagains = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, cfg);
    for (int i = 0; i < 4; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = static_cast<uint64_t>(i);
      kernel_.RingPrepare(p, ring, sqe);
    }
    // Only 2 of 4 fit under the SQ cap: partial admission, not an error.
    first = co_await kernel_.RingEnter(p, ring, 4, 0);
    // The queue is still full, so a second submit bounces with EAGAIN.
    bounced = co_await kernel_.RingEnter(p, ring, 2, 0);
    // to_submit = 0 turns RingEnter into a pure completion wait.
    co_await kernel_.RingEnter(p, ring, 0, 2);
    std::vector<SpliceCqe> cqes(4);
    third = kernel_.RingHarvest(p, ring, cqes.data(), 4);
    EXPECT_EQ(third, 2);  // freeing SQ slots for the bounced pair
    second = co_await kernel_.RingEnter(p, ring, 2, 2);
    third += kernel_.RingHarvest(p, ring, cqes.data() + third, 4 - third);
    for (const SpliceCqe& c : cqes) {
      EXPECT_EQ(c.error, 0);
    }
    eagains = kernel_.GetRing(p, ring)->stats().eagain_returns;
  });
  EXPECT_EQ(first, 2);
  EXPECT_EQ(bounced, -kAioEAgain);
  EXPECT_EQ(second, 2);
  EXPECT_EQ(third, 4);
  EXPECT_EQ(eagains, 1u);
  for (int i = 0; i < 4; ++i) {
    VerifyFile(fs_ramb_, "d" + std::to_string(i), kBytes);
  }
}

TEST_F(AioTest, BlockOnFullSleepsUntilTheReaperFreesSlots) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("s0", kBytes, Fill);
  fs_rama_->CreateFileInstant("s1", kBytes, Fill);
  RingConfig cfg;
  cfg.sq_entries = 1;
  cfg.block_on_full = true;
  int entered = -1;
  int harvested = -1;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, cfg);
    for (int i = 0; i < 2; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = static_cast<uint64_t>(i);
      kernel_.RingPrepare(p, ring, sqe);
    }
    // The second SQE does not fit until the first op's completion posts;
    // block_on_full makes this one call sleep through that instead of
    // bouncing.
    entered = co_await kernel_.RingEnter(p, ring, 2, 2);
    std::vector<SpliceCqe> cqes(2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 2);
  });
  EXPECT_EQ(entered, 2);
  EXPECT_EQ(harvested, 2);
  VerifyFile(fs_ramb_, "d0", kBytes);
  VerifyFile(fs_ramb_, "d1", kBytes);
}

TEST_F(AioTest, CancelQueuedOpButNotStartedOrUnknown) {
  // The started op is a 4 MB SCSI-to-SCSI transfer (hundreds of ms) so it
  // is still in flight when the cancels run; max_inflight = 1 holds the
  // second op in the ring's queue behind it.
  constexpr int64_t kBigBytes = 512 * kBlockSize;
  constexpr int64_t kSmallBytes = 8 * kBlockSize;
  fs_scsia_->CreateFileInstant("s0", kBigBytes, Fill);
  fs_scsia_->CreateFileInstant("s1", kSmallBytes, Fill);
  RingConfig cfg;
  cfg.max_inflight = 1;  // the second op must wait in the queue
  int cancel_queued = -1;
  int cancel_started = -1;
  int cancel_unknown = -1;
  std::vector<SpliceCqe> cqes;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, cfg);
    for (int i = 0; i < 2; ++i) {
      const int src = co_await kernel_.Open(p, "scsia:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "scsib:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = i == 0 ? kBigBytes : kSmallBytes;
      sqe.cookie = 10 + static_cast<uint64_t>(i);
      kernel_.RingPrepare(p, ring, sqe);
    }
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 0), 2);
    cancel_started = co_await kernel_.RingCancel(p, ring, 10);
    cancel_queued = co_await kernel_.RingCancel(p, ring, 11);
    cancel_unknown = co_await kernel_.RingCancel(p, ring, 99);
    co_await kernel_.RingEnter(p, ring, 0, 2);
    cqes.resize(2);
    EXPECT_EQ(kernel_.RingHarvest(p, ring, cqes.data(), 2), 2);
  });
  EXPECT_EQ(cancel_started, -kAioEBusy);
  EXPECT_EQ(cancel_queued, 0);
  EXPECT_EQ(cancel_unknown, -kAioENoent);
  for (const SpliceCqe& c : cqes) {
    if (c.cookie == 10) {
      EXPECT_EQ(c.error, 0);
      EXPECT_EQ(c.result, kBigBytes);
    } else {
      EXPECT_EQ(c.cookie, 11u);
      EXPECT_EQ(c.error, kAioECanceled);
      EXPECT_EQ(c.result, 0);
    }
  }
  VerifyFile(fs_scsib_, "d0", kBigBytes);
}

TEST_F(AioTest, LinkedGroupRunsPipelineStagesConcurrently) {
  // file -> pipe -> file, with a transfer 8x the pipe's 32 KB capacity:
  // stage 1 can only finish if stage 2 drains the pipe while stage 1 is
  // still writing, proving LINKED stages start concurrently (sequential
  // io_uring-style links would deadlock here).
  constexpr int64_t kBytes = 32 * kBlockSize;  // 256 KB
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  int entered = -1;
  std::vector<SpliceCqe> cqes(2);
  int harvested = -1;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    int pr = -1;
    int pw = -1;
    EXPECT_EQ(co_await kernel_.CreatePipe(p, &pr, &pw), 0);
    SpliceSqe s1;
    s1.src_fd = src;
    s1.dst_fd = pw;
    s1.nbytes = kBytes;
    s1.flags = kSqeLinked;
    s1.cookie = 1;
    SpliceSqe s2;
    s2.src_fd = pr;
    s2.dst_fd = dst;
    s2.nbytes = kBytes;
    s2.cookie = 2;
    kernel_.RingPrepare(p, ring, s1);
    kernel_.RingPrepare(p, ring, s2);
    entered = co_await kernel_.RingEnter(p, ring, 2, 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 2);
  });
  EXPECT_EQ(entered, 2);
  ASSERT_EQ(harvested, 2);
  for (const SpliceCqe& c : cqes) {
    EXPECT_EQ(c.error, 0) << "cookie " << c.cookie;
    EXPECT_EQ(c.result, kBytes) << "cookie " << c.cookie;
  }
  VerifyFile(fs_ramb_, "dst", kBytes);
}

TEST_F(AioTest, LinkedGroupAdmissionFailureCancelsSiblings) {
  constexpr int64_t kBytes = 8 * kBlockSize;
  fs_rama_->CreateFileInstant("src", kBytes, Fill);
  std::vector<SpliceCqe> cqes(2);
  int harvested = -1;
  uint64_t engine_started = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "rama:src", kOpenRead);
    SpliceSqe bad;
    bad.src_fd = 999;  // not an open descriptor
    bad.dst_fd = src;
    bad.nbytes = kBytes;
    bad.flags = kSqeLinked;
    bad.cookie = 1;
    SpliceSqe linked;
    linked.src_fd = src;
    linked.dst_fd = src;  // never reached: the group dies at its first member
    linked.nbytes = kBytes;
    linked.cookie = 2;
    kernel_.RingPrepare(p, ring, bad);
    kernel_.RingPrepare(p, ring, linked);
    // Both SQEs are consumed (that is what the return counts), both fail.
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 2), 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 2);
    engine_started = kernel_.splice_engine().stats().splices_started;
  });
  ASSERT_EQ(harvested, 2);
  EXPECT_EQ(cqes[0].cookie, 1u);
  EXPECT_EQ(cqes[0].error, kAioEBadf);
  EXPECT_EQ(cqes[1].cookie, 2u);
  EXPECT_EQ(cqes[1].error, kAioECanceled);
  // Nothing in the group reached the splice engine.
  EXPECT_EQ(engine_started, 0u);
}

TEST_F(AioTest, MidStreamErrorTearsDownLinkedGroupWithOneCqeEach) {
  // Regression: a mid-stream device error in stage 1 of a LINKED pipeline
  // used to strand stage 2 blocked on the drained pipe — its read was never
  // retracted, MaybeFinish never fired, and the CQE was lost (RingEnter
  // would deadlock below).  Teardown must produce exactly one CQE per SQE:
  // the errored op with the device errno, the sibling with ECANCELED.
  constexpr int64_t kBytes = 32 * kBlockSize;
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  scsia_.disk().SetFaultHook([](int64_t offset, bool is_read) {
    return is_read && offset == (16 + 9) * kBlockSize;  // 10th data block
  });
  std::vector<SpliceCqe> cqes(4);
  int harvested = -1;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    int pr = -1;
    int pw = -1;
    EXPECT_EQ(co_await kernel_.CreatePipe(p, &pr, &pw), 0);
    SpliceSqe s1;
    s1.src_fd = src;
    s1.dst_fd = pw;
    s1.nbytes = kBytes;
    s1.flags = kSqeLinked;
    s1.cookie = 1;
    SpliceSqe s2;
    s2.src_fd = pr;
    s2.dst_fd = dst;
    s2.nbytes = kBytes;
    s2.cookie = 2;
    kernel_.RingPrepare(p, ring, s1);
    kernel_.RingPrepare(p, ring, s2);
    // min_complete=2: if the sibling's completion were lost, this would
    // deadlock and Run() would report the process as stuck.
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 2), 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 4);
    const SpliceRing* r = kernel_.GetRing(p, ring);
    submitted = r->stats().submitted;
    completed = r->stats().completed;
  });
  ASSERT_EQ(harvested, 2);  // one CQE per SQE: none lost, none duplicated
  EXPECT_EQ(submitted, 2u);
  EXPECT_EQ(completed, 2u);
  const SpliceCqe* c1 = nullptr;
  const SpliceCqe* c2 = nullptr;
  for (int i = 0; i < harvested; ++i) {
    if (cqes[static_cast<size_t>(i)].cookie == 1) c1 = &cqes[static_cast<size_t>(i)];
    if (cqes[static_cast<size_t>(i)].cookie == 2) c2 = &cqes[static_cast<size_t>(i)];
  }
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->error, kAioEIo);  // the device's errno, preserved
  EXPECT_GT(c1->result, 0);       // partial bytes before the bad block
  EXPECT_LT(c1->result, kBytes);
  EXPECT_EQ(c2->error, kAioECanceled);
  EXPECT_LT(c2->result, kBytes);
  EXPECT_EQ(kernel_.splice_engine().active(), 0);
}

TEST_F(AioTest, LinkedGroupTeardownClosesEverySpanExactlyOnce) {
  // Span-lifecycle discipline on the nastiest error path: a mid-stream
  // device error tears down a LINKED group, so one op ends with the device
  // errno and its sibling ends cancelled.  Both "aio.op" spans (and the
  // engine's nested "splice.stream" spans) must close exactly once — an
  // error path that leaks an open span corrupts every per-request view
  // downstream.
  constexpr int64_t kBytes = 32 * kBlockSize;
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  scsia_.disk().SetFaultHook([](int64_t offset, bool is_read) {
    return is_read && offset == (16 + 9) * kBlockSize;
  });
  KspanCollector spans;
  AttachKspan(&spans);
  std::vector<SpliceCqe> cqes(4);
  int harvested = -1;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "ramb:dst", kOpenWrite | kOpenCreate);
    int pr = -1;
    int pw = -1;
    EXPECT_EQ(co_await kernel_.CreatePipe(p, &pr, &pw), 0);
    SpliceSqe s1;
    s1.src_fd = src;
    s1.dst_fd = pw;
    s1.nbytes = kBytes;
    s1.flags = kSqeLinked;
    s1.cookie = 1;
    SpliceSqe s2;
    s2.src_fd = pr;
    s2.dst_fd = dst;
    s2.nbytes = kBytes;
    s2.cookie = 2;
    kernel_.RingPrepare(p, ring, s1);
    kernel_.RingPrepare(p, ring, s2);
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 2, 2), 2);
    harvested = kernel_.RingHarvest(p, ring, cqes.data(), 4);
  });
  AttachKspan(nullptr);
  ASSERT_EQ(harvested, 2);

  std::string err;
  EXPECT_TRUE(spans.CheckBalanced(&err)) << err;
  EXPECT_EQ(spans.bad_ends(), 0u);

  // One "aio.op" span per SQE, closed with the op's fate: the errored op
  // and the cancelled sibling both carry error=true.
  int ops = 0;
  int op_errors = 0;
  for (const SpanRecord& s : spans.spans()) {
    if (std::string(s.name) == "aio.op") {
      ++ops;
      EXPECT_FALSE(s.open());
      op_errors += s.error ? 1 : 0;
    }
  }
  EXPECT_EQ(ops, 2);
  EXPECT_EQ(op_errors, 2);
}

TEST_F(AioTest, CqOverflowStagesAndRecoversOnHarvest) {
  constexpr int64_t kBytes = 4 * kBlockSize;
  for (int i = 0; i < 4; ++i) {
    fs_rama_->CreateFileInstant("s" + std::to_string(i), kBytes, Fill);
  }
  RingConfig cfg;
  cfg.cq_entries = 2;
  uint64_t overflows = 0;
  std::vector<SpliceCqe> cqes(4);
  int harvested = 0;
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, cfg);
    for (int i = 0; i < 4; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = static_cast<uint64_t>(i);
      kernel_.RingPrepare(p, ring, sqe);
    }
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 4, 4), 4);
    SpliceRing* r = kernel_.GetRing(p, ring);
    overflows = r->stats().overflows;
    EXPECT_EQ(r->CqAvailable(), 4);  // 2 in the CQ + 2 staged in overflow
    // Draining the CQ pulls the staged completions through; none are lost.
    harvested += kernel_.RingHarvest(p, ring, cqes.data(), 3);
    harvested += kernel_.RingHarvest(p, ring, cqes.data() + harvested, 3);
  });
  EXPECT_EQ(overflows, 2u);
  EXPECT_EQ(harvested, 4);
  for (int i = 0; i < 4; ++i) {
    VerifyFile(fs_ramb_, "d" + std::to_string(i), kBytes);
  }
}

TEST_F(AioTest, RingErrorsOnBadArguments) {
  Run([&](Process& p) -> Task<> {
    RingConfig bad;
    bad.sq_entries = 0;
    EXPECT_EQ(co_await kernel_.RingSetup(p, bad), -kAioEInval);
    SpliceSqe sqe;
    EXPECT_EQ(kernel_.RingPrepare(p, 42, sqe), -kAioEBadf);
    EXPECT_EQ(co_await kernel_.RingEnter(p, 42, 1, 0), -kAioEBadf);
    SpliceCqe cqe;
    EXPECT_EQ(kernel_.RingHarvest(p, 42, &cqe, 1), -kAioEBadf);
    EXPECT_EQ(co_await kernel_.RingCancel(p, 42, 1), -kAioEBadf);

    // A malformed SQE fails with a CQE, not a lost entry.
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    SpliceSqe nofd;
    nofd.src_fd = 7;
    nofd.dst_fd = 8;
    nofd.nbytes = 4096;
    nofd.cookie = 5;
    kernel_.RingPrepare(p, ring, nofd);
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, 1, 1), 1);
    EXPECT_EQ(kernel_.RingHarvest(p, ring, &cqe, 1), 1);
    EXPECT_EQ(cqe.cookie, 5u);
    EXPECT_EQ(cqe.error, kAioEBadf);
  });
}

TEST_F(AioTest, RingEventsExportToChromeTraceAndTelemetry) {
  constexpr int kStreams = 3;
  constexpr int64_t kBytes = 8 * kBlockSize;
  for (int i = 0; i < kStreams; ++i) {
    fs_rama_->CreateFileInstant("s" + std::to_string(i), kBytes, Fill);
  }
  TraceLog trace(1 << 16);
  MetricsRegistry registry;
  TelemetryCollector collector(&registry);
  collector.Attach(&trace);
  kernel_.AttachTrace(&trace);
  Run([&](Process& p) -> Task<> {
    const int ring = co_await kernel_.RingSetup(p, RingConfig{});
    for (int i = 0; i < kStreams; ++i) {
      const int src = co_await kernel_.Open(p, "rama:s" + std::to_string(i), kOpenRead);
      const int dst = co_await kernel_.Open(p, "ramb:d" + std::to_string(i),
                                            kOpenWrite | kOpenCreate);
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kBytes;
      sqe.cookie = static_cast<uint64_t>(i);
      kernel_.RingPrepare(p, ring, sqe);
    }
    EXPECT_EQ(co_await kernel_.RingEnter(p, ring, kStreams, kStreams), kStreams);
    std::vector<SpliceCqe> cqes(kStreams);
    EXPECT_EQ(kernel_.RingHarvest(p, ring, cqes.data(), kStreams), kStreams);
  });

  // Online pairing: one latency sample per op, no dangling intervals.
  EXPECT_EQ(registry.Histogram("aio.completion_latency")->count(),
            static_cast<uint64_t>(kStreams));
  EXPECT_GE(registry.Histogram("aio.sq_depth")->count(), 1u);
  EXPECT_EQ(collector.PendingIntervals(), 0u);

  // Chrome-trace export: a "b"/"e" async span pair per op in the aio
  // category, parseable by the strict bundled reader.
  std::ostringstream os;
  ExportChromeTrace(trace, os);
  JsonValue json;
  ASSERT_TRUE(ParseJson(os.str(), &json));
  const JsonValue* events = json.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  int begins = 0;
  int ends = 0;
  for (const JsonValue& ev : events->items) {
    const JsonValue* cat = ev.Get("cat");
    const JsonValue* ph = ev.Get("ph");
    if (cat == nullptr || ph == nullptr || cat->str != "aio") {
      continue;
    }
    if (ph->str == "b") {
      ++begins;
    } else if (ph->str == "e") {
      ++ends;
    }
  }
  EXPECT_EQ(begins, kStreams);
  EXPECT_EQ(ends, kStreams);
}

TEST_F(AioTest, TellReportsDestinationOffsetOnlyAtCompletion) {
  constexpr int64_t kBytes = 16 * kBlockSize;
  fs_scsia_->CreateFileInstant("src", kBytes, Fill);
  int64_t mid_offset = -1;
  int64_t end_offset = -1;
  Run([&](Process& p) -> Task<> {
    kernel_.Sigaction(p, kSigIo, [] {});
    const int src = co_await kernel_.Open(p, "scsia:src", kOpenRead);
    const int dst = co_await kernel_.Open(p, "scsib:dst", kOpenWrite | kOpenCreate);
    co_await kernel_.Fcntl(p, dst, /*fasync=*/true);
    EXPECT_EQ(co_await kernel_.Splice(p, src, dst, kBytes), 0);
    // In flight: the destination offset has not moved yet.
    mid_offset = co_await kernel_.Tell(p, dst);
    co_await kernel_.Pause(p);
    end_offset = co_await kernel_.Tell(p, dst);
  });
  EXPECT_EQ(mid_offset, 0);
  EXPECT_EQ(end_offset, kBytes);
  VerifyFile(fs_scsib_, "dst", kBytes);
}

}  // namespace
}  // namespace ikdp
