// Tests for the kspan layer (src/sim/kspan.h): cursor push/pop discipline,
// collector span lifecycle (begin/end exactly once, bad-end accounting,
// balance checking), the attached/detached split of KspanBegin, and parent
// chains (RootOf).
//
// Every test that attaches a collector detaches it before returning: the
// collector pointer is process-global and a leaked attachment would bleed
// span state into unrelated tests.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/kspan.h"

namespace ikdp {
namespace {

// RAII attachment so an ASSERT mid-test cannot leak the global pointer.
class Attached {
 public:
  explicit Attached(KspanCollector* c) { AttachKspan(c); }
  ~Attached() { AttachKspan(nullptr); }
};

TEST(KspanCursor, DefaultsToUntaggedNoSpan) {
  const KspanCursor& cur = CurrentKspan();
  EXPECT_STREQ(cur.subsystem, "");
  EXPECT_EQ(cur.span, kNoSpan);
}

TEST(KspanCursor, ScopeNestsAndRestoresLifo) {
  {
    KspanScope outer("splice", 7);
    EXPECT_STREQ(CurrentKspan().subsystem, "splice");
    EXPECT_EQ(CurrentKspan().span, 7u);
    {
      KspanScope inner("disk", 9);
      EXPECT_STREQ(CurrentKspan().subsystem, "disk");
      EXPECT_EQ(CurrentKspan().span, 9u);
    }
    EXPECT_STREQ(CurrentKspan().subsystem, "splice");
    EXPECT_EQ(CurrentKspan().span, 7u);
  }
  EXPECT_STREQ(CurrentKspan().subsystem, "");
  EXPECT_EQ(CurrentKspan().span, kNoSpan);
}

TEST(KspanCursor, SetSpanRewritesInPlaceButScopeStillRestores) {
  {
    KspanScope scope("process", 3);
    KspanCursorSetSpan(11);
    EXPECT_EQ(CurrentKspan().span, 11u);
    // The subsystem tag is untouched: SetSpan relabels the work, not the
    // layer doing it.
    EXPECT_STREQ(CurrentKspan().subsystem, "process");
  }
  EXPECT_EQ(CurrentKspan().span, kNoSpan);
}

TEST(KspanCollector, MintsEndsAndBalances) {
  KspanCollector c;
  const SpanId root = c.Begin(100, "request", kNoSpan, /*arg=*/42);
  const SpanId child = c.Begin(110, "splice.stream", root);
  EXPECT_NE(root, kNoSpan);
  EXPECT_NE(child, kNoSpan);
  EXPECT_NE(root, child);
  EXPECT_TRUE(c.Known(root));
  EXPECT_TRUE(c.IsOpen(root));
  EXPECT_EQ(c.begun(), 2u);
  EXPECT_EQ(c.open_count(), 2u);

  std::string err;
  EXPECT_FALSE(c.CheckBalanced(&err)) << "open spans must fail the balance check";
  EXPECT_NE(err.find("request"), std::string::npos) << err;

  c.End(200, child, /*result=*/4096);
  c.End(250, root, /*result=*/4096);
  EXPECT_FALSE(c.IsOpen(root));
  EXPECT_EQ(c.ended(), 2u);
  EXPECT_EQ(c.open_count(), 0u);
  EXPECT_TRUE(c.CheckBalanced(&err)) << err;

  const SpanRecord* r = c.Find(root);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->start, 100);
  EXPECT_EQ(r->end, 250);
  EXPECT_EQ(r->a, 42);
  EXPECT_EQ(r->result, 4096);
  EXPECT_FALSE(r->error);
}

TEST(KspanCollector, DoubleEndAndUnknownEndAreBadEnds) {
  KspanCollector c;
  const SpanId s = c.Begin(0, "op", kNoSpan);
  c.End(10, s);
  c.End(20, s);          // double end
  c.End(30, s + 1000);   // never minted
  EXPECT_EQ(c.bad_ends(), 2u);
  std::string err;
  EXPECT_FALSE(c.CheckBalanced(&err)) << "bad ends must fail the balance check";
}

TEST(KspanCollector, ErrorEndIsRecordedOnTheSpan) {
  KspanCollector c;
  const SpanId s = c.Begin(0, "op", kNoSpan);
  c.End(10, s, /*result=*/-5, /*error=*/true);
  const SpanRecord* r = c.Find(s);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->error);
  EXPECT_EQ(r->result, -5);
}

TEST(KspanCollector, RootOfWalksParentChain) {
  KspanCollector c;
  const SpanId root = c.Begin(0, "request", kNoSpan);
  const SpanId mid = c.Begin(1, "splice.stream", root);
  const SpanId leaf = c.Begin(2, "aio.op", mid);
  EXPECT_EQ(c.RootOf(leaf), root);
  EXPECT_EQ(c.RootOf(mid), root);
  EXPECT_EQ(c.RootOf(root), root);
  // An id the collector never minted is its own root (orphan).
  EXPECT_EQ(c.RootOf(9999), 9999u);
}

TEST(KspanGlobal, DetachedBeginInheritsTheCursor) {
  ASSERT_EQ(Kspan(), nullptr);
  {
    KspanScope scope("splice", 55);
    // No collector: no mint, the work inherits its requester's identity.
    EXPECT_EQ(KspanBegin(10, "splice.stream"), 55u);
    EXPECT_FALSE(KspanOwned());
    // Ending an inherited id with no collector is a no-op, not a crash.
    KspanEnd(20, 55);
  }
  EXPECT_EQ(KspanBegin(30, "splice.stream"), kNoSpan);
}

TEST(KspanGlobal, AttachedBeginMintsChildOfTheCursor) {
  KspanCollector c;
  Attached attach(&c);
  EXPECT_TRUE(KspanOwned());

  // Cursor at default -> root span.
  const SpanId root = KspanBegin(0, "server.request", /*arg=*/7);
  ASSERT_NE(root, kNoSpan);
  EXPECT_EQ(c.Find(root)->parent, kNoSpan);

  // Cursor carrying the root -> child span.
  SpanId child = kNoSpan;
  {
    KspanScope scope("splice", root);
    child = KspanBegin(5, "splice.stream");
  }
  ASSERT_NE(child, kNoSpan);
  EXPECT_EQ(c.Find(child)->parent, root);
  EXPECT_EQ(c.RootOf(child), root);

  KspanEnd(8, child, /*result=*/128);
  KspanEnd(9, root, /*result=*/128);
  std::string err;
  EXPECT_TRUE(c.CheckBalanced(&err)) << err;
}

}  // namespace
}  // namespace ikdp
