// Property tests for the splice engine: for every combination of disk type,
// transfer size, and engine options, a file-to-file splice must move exactly
// the requested bytes, preserve content byte-for-byte, respect the
// flow-control bounds, and leave the machine quiescent.  Cancellation must
// converge and release every buffer.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"
#include "src/splice/file_endpoint.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 131 + 17) & 0xff); }

enum class PDisk { kRam, kRz56, kRz58 };

const char* PDiskName(PDisk d) {
  switch (d) {
    case PDisk::kRam:
      return "Ram";
    case PDisk::kRz56:
      return "Rz56";
    case PDisk::kRz58:
      return "Rz58";
  }
  return "?";
}

struct PropertyCase {
  PDisk disk;
  int64_t bytes;
  bool zero_copy;
  bool callout_deferral;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  return std::string(PDiskName(c.disk)) + "_" + std::to_string(c.bytes) + "B" +
         (c.zero_copy ? "_zc" : "_copy") + (c.callout_deferral ? "_defer" : "_direct");
}

class SplicePropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  std::unique_ptr<BlockDevice> MakeDev(PDisk kind, Kernel& k, Simulator& sim) {
    switch (kind) {
      case PDisk::kRam:
        return std::make_unique<RamDisk>(&k.cpu(), 32 << 20);
      case PDisk::kRz56:
        return std::make_unique<DiskDriver>(&k.cpu(), &sim, Rz56Params());
      case PDisk::kRz58:
        return std::make_unique<DiskDriver>(&k.cpu(), &sim, Rz58Params());
    }
    return nullptr;
  }
};

TEST_P(SplicePropertyTest, MovesExactlyAndPreservesContent) {
  const PropertyCase& c = GetParam();
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  kernel.splice_options().zero_copy = c.zero_copy;
  kernel.splice_options().callout_deferral = c.callout_deferral;
  auto src_dev = MakeDev(c.disk, kernel, sim);
  auto dst_dev = MakeDev(c.disk, kernel, sim);
  FileSystem* src_fs = kernel.MountFs(src_dev.get(), "src");
  FileSystem* dst_fs = kernel.MountFs(dst_dev.get(), "dst");
  Inode* src_ip = src_fs->CreateFileInstant("f", c.bytes, Fill);
  ASSERT_NE(src_ip, nullptr);

  int64_t moved = -1;
  kernel.Spawn("scp", [&](Process& p) -> Task<> {
    const int s = co_await kernel.Open(p, "src:f", kOpenRead);
    const int d = co_await kernel.Open(p, "dst:g", kOpenWrite | kOpenCreate);
    moved = co_await kernel.Splice(p, s, d, kSpliceEof);
  });
  sim.Run();

  // Quiescence: no live processes, no active descriptors, no busy buffers.
  ASSERT_EQ(kernel.cpu().alive(), 0);
  EXPECT_EQ(kernel.splice_engine().active(), 0);
  EXPECT_EQ(moved, c.bytes);
  EXPECT_EQ(kernel.cache().PendingWrites(dst_dev.get()), 0);

  kernel.cache().FlushAllInstant();
  Inode* dst_ip = dst_fs->Lookup("g");
  ASSERT_NE(dst_ip, nullptr);
  EXPECT_EQ(dst_ip->size, c.bytes);
  const std::vector<uint8_t> back = dst_fs->ReadFileInstant(dst_ip);
  ASSERT_EQ(static_cast<int64_t>(back.size()), c.bytes);
  for (int64_t i = 0; i < c.bytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplicePropertyTest,
    ::testing::Values(
        // Size edge cases on the RAM disk.
        PropertyCase{PDisk::kRam, 1, true, true}, PropertyCase{PDisk::kRam, kBlockSize - 1, true, true},
        PropertyCase{PDisk::kRam, kBlockSize, true, true},
        PropertyCase{PDisk::kRam, kBlockSize + 1, true, true},
        PropertyCase{PDisk::kRam, 7 * kBlockSize + 123, true, true},
        PropertyCase{PDisk::kRam, 100 * kBlockSize, true, true},
        // Crossing the indirect-block boundary.
        PropertyCase{PDisk::kRam, 15 * kBlockSize, true, true},
        // SCSI disks, interrupt-driven completion.
        PropertyCase{PDisk::kRz56, 3 * kBlockSize, true, true},
        PropertyCase{PDisk::kRz56, 40 * kBlockSize + 57, true, true},
        PropertyCase{PDisk::kRz58, 25 * kBlockSize, true, true},
        // Option ablations.
        PropertyCase{PDisk::kRam, 20 * kBlockSize, false, true},
        PropertyCase{PDisk::kRam, 20 * kBlockSize, true, false},
        PropertyCase{PDisk::kRam, 20 * kBlockSize, false, false},
        PropertyCase{PDisk::kRz58, 20 * kBlockSize, false, true},
        PropertyCase{PDisk::kRz58, 20 * kBlockSize, true, false}),
    CaseName);

// Watermark sweep: every (low, high, batch) combination must preserve
// correctness; the pending counters must respect the configured bounds.
class WatermarkPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WatermarkPropertyTest, BoundsHoldAndContentSurvives) {
  const auto [low, high, batch] = GetParam();
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  DiskDriver src_dev(&kernel.cpu(), &sim, Rz56Params());
  DiskDriver dst_dev(&kernel.cpu(), &sim, Rz56Params());
  FileSystem* src_fs = kernel.MountFs(&src_dev, "src");
  FileSystem* dst_fs = kernel.MountFs(&dst_dev, "dst");
  constexpr int64_t kBytes = 30 * kBlockSize;
  Inode* src_ip = src_fs->CreateFileInstant("f", kBytes, Fill);
  Inode* dst_ip = dst_fs->Create("g");

  SpliceOptions opts;
  opts.read_low_watermark = low;
  opts.write_high_watermark = high;
  opts.refill_batch = batch;
  opts.max_inflight_chunks = batch + high;

  SpliceDescriptor::Stats observed;
  int64_t moved = -1;
  kernel.Spawn("driver", [&](Process& p) -> Task<> {
    std::vector<int64_t> smap =
        co_await src_fs->MapRange(p, src_ip, kBytes / kBlockSize, false, false);
    std::vector<int64_t> dmap =
        co_await dst_fs->MapRange(p, dst_ip, kBytes / kBlockSize, true, true);
    auto source = std::make_unique<FileSpliceSource>(&kernel.cache(), src_fs->dev(),
                                                     std::move(smap), kBytes);
    auto sink =
        std::make_unique<FileSpliceSink>(&kernel.cache(), dst_fs->dev(), std::move(dmap));
    struct Waiter {
      bool done = false;
    } w;
    SpliceDescriptor* d = nullptr;
    d = kernel.splice_engine().Start(std::move(source), std::move(sink), opts,
                                     [&](int64_t m) {
                                       moved = m;
                                       observed = d->stats();
                                       w.done = true;
                                       kernel.cpu().Wakeup(&w);
                                     });
    while (!w.done) {
      co_await kernel.cpu().Sleep(p, &w, kPriWait);
    }
  });
  sim.Run();
  ASSERT_EQ(kernel.cpu().alive(), 0);
  EXPECT_EQ(moved, kBytes);
  EXPECT_LE(observed.max_pending_reads, batch);
  dst_ip->size = kBytes;  // engine-level run bypasses the syscall's updater
  kernel.cache().FlushAllInstant();
  const std::vector<uint8_t> back = dst_fs->ReadFileInstant(dst_ip);
  for (int64_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Watermarks, WatermarkPropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 6),   // read low
                                            ::testing::Values(1, 5, 10),  // write high
                                            ::testing::Values(1, 5, 8))); // refill batch

// Cancellation: a splice cancelled mid-flight stops issuing reads, drains,
// reports partial progress, and releases every cache buffer.
TEST(SpliceCancelTest, ConvergesAndReleasesBuffers) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  DiskDriver src_dev(&kernel.cpu(), &sim, Rz56Params());
  DiskDriver dst_dev(&kernel.cpu(), &sim, Rz56Params());
  FileSystem* src_fs = kernel.MountFs(&src_dev, "src");
  FileSystem* dst_fs = kernel.MountFs(&dst_dev, "dst");
  constexpr int64_t kBytes = 200 * kBlockSize;
  Inode* src_ip = src_fs->CreateFileInstant("f", kBytes, Fill);
  Inode* dst_ip = dst_fs->Create("g");

  int64_t moved = -1;
  SpliceDescriptor* d = nullptr;
  kernel.Spawn("driver", [&](Process& p) -> Task<> {
    std::vector<int64_t> smap =
        co_await src_fs->MapRange(p, src_ip, kBytes / kBlockSize, false, false);
    std::vector<int64_t> dmap =
        co_await dst_fs->MapRange(p, dst_ip, kBytes / kBlockSize, true, true);
    auto source = std::make_unique<FileSpliceSource>(&kernel.cache(), src_fs->dev(),
                                                     std::move(smap), kBytes);
    auto sink =
        std::make_unique<FileSpliceSink>(&kernel.cache(), dst_fs->dev(), std::move(dmap));
    d = kernel.splice_engine().Start(std::move(source), std::move(sink), SpliceOptions{},
                                     [&](int64_t m) { moved = m; });
  });
  sim.After(Milliseconds(300), [&] {
    ASSERT_NE(d, nullptr);
    kernel.splice_engine().Cancel(d);
  });
  sim.Run();
  EXPECT_GE(moved, 0);
  EXPECT_LT(moved, kBytes);          // genuinely cancelled mid-flight
  EXPECT_GT(moved, 2 * kBlockSize);  // but after real progress
  EXPECT_EQ(kernel.splice_engine().active(), 0);
  EXPECT_EQ(kernel.cache().PendingWrites(&dst_dev), 0);
  // All cache buffers must be back on the free list (none busy): a fresh
  // full-cache sweep of GetBlk must succeed without sleeping.
  int got = 0;
  kernel.Spawn("sweeper", [&](Process& p) -> Task<> {
    std::vector<Buf*> held;
    for (int i = 0; i < kernel.cache().nbufs(); ++i) {
      held.push_back(co_await kernel.cache().GetBlk(p, &src_dev, 10000 + i));
      ++got;
    }
    for (Buf* b : held) {
      kernel.cache().Brelse(b);
    }
  });
  sim.Run();
  EXPECT_EQ(got, kernel.cache().nbufs());
}

}  // namespace
}  // namespace ikdp
