// Runtime mirrors of the kcheck static rules (docs/kcheck.md): ContextGuard
// tracks the executing context and the blocking primitives assert on it;
// BufStateChecker enforces the B_BUSY ownership discipline on every buffer
// transition.  These tests pin down both directions — the trackers report
// the right context on legal paths, and each illegal transition aborts with
// a diagnostic naming the rule (EXPECT_DEATH).

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/buf/buf.h"
#include "src/buf/buffer_cache.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kern/process.h"
#include "src/sim/callout.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

class KcheckRuntimeTest : public ::testing::Test {
 protected:
  KcheckRuntimeTest()
      : cpu_(&sim_, DecStation5000Costs()), cache_(&cpu_, 16), ram_(&cpu_, 4 << 20) {}

  void RunProc(std::function<Task<>(Process&)> body) {
    cpu_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(cpu_.alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  CpuSystem cpu_;
  BufferCache cache_;
  RamDisk ram_;
};

// --- positive direction: the context tracker reports the truth ---

TEST_F(KcheckRuntimeTest, HostContextByDefault) {
  EXPECT_EQ(CurrentExecContext(), ExecContext::kHost);
  EXPECT_FALSE(AtInterruptLevel());
}

TEST_F(KcheckRuntimeTest, ProcessBodiesRunInProcessContext) {
  ExecContext seen = ExecContext::kHost;
  RunProc([&](Process& p) -> Task<> {
    co_await cpu_.Use(p, Milliseconds(1));
    seen = CurrentExecContext();
  });
  EXPECT_EQ(seen, ExecContext::kProcess);
}

TEST_F(KcheckRuntimeTest, RunInterruptBodiesRunAtInterruptLevel) {
  ExecContext seen = ExecContext::kHost;
  bool at_level = false;
  cpu_.RunInterrupt(Microseconds(100), [&] {
    seen = CurrentExecContext();
    at_level = AtInterruptLevel();
  });
  sim_.Run();
  EXPECT_EQ(seen, ExecContext::kInterrupt);
  EXPECT_TRUE(at_level);
  EXPECT_EQ(CurrentExecContext(), ExecContext::kHost) << "guard must unwind";
}

TEST_F(KcheckRuntimeTest, CalloutBodiesRunAtSoftclockLevel) {
  CalloutTable callouts(&sim_, /*hz=*/256);
  ExecContext seen = ExecContext::kHost;
  callouts.Timeout([&] { seen = CurrentExecContext(); }, 2);
  sim_.Run();
  EXPECT_EQ(seen, ExecContext::kSoftclock);
  EXPECT_EQ(CurrentExecContext(), ExecContext::kHost) << "guard must unwind";
}

// --- negative direction: every illegal transition aborts loudly ---

using KcheckRuntimeDeathTest = KcheckRuntimeTest;

TEST_F(KcheckRuntimeDeathTest, BlockingPrimitiveAtInterruptLevelAborts) {
  EXPECT_DEATH(
      {
        cpu_.RunInterrupt(Microseconds(50), [&] {
          // The first thing CpuSystem::Sleep/Use do.  This is the dynamic
          // mirror of kcheck's interrupt-sleep rule, reached through a
          // std::function the static call graph cannot follow.
          AssertCanBlock("sleep");
        });
        sim_.Run();
      },
      "blocking primitives");
}

TEST_F(KcheckRuntimeDeathTest, BlockingPrimitiveAtSoftclockLevelAborts) {
  CalloutTable callouts(&sim_, /*hz=*/256);
  EXPECT_DEATH(
      {
        callouts.Timeout([&] { AssertCanBlock("biowait"); }, 1);
        sim_.Run();
      },
      "blocking primitives");
}

TEST_F(KcheckRuntimeDeathTest, ChargeInterruptFromHostAborts) {
  EXPECT_DEATH(cpu_.ChargeInterrupt(Microseconds(10)), "interrupt CPU accounting");
}

TEST_F(KcheckRuntimeDeathTest, DoubleBrelseAborts) {
  ram_.PokeBlock(5, std::vector<uint8_t>(kBlockSize, 0xab));
  EXPECT_DEATH(
      {
        Buf* grabbed = nullptr;
        cache_.BreadAsync(&ram_, 5, [&](Buf& b) { grabbed = &b; });
        sim_.Run();
        ASSERT_NE(grabbed, nullptr);
        cache_.Brelse(grabbed);
        cache_.Brelse(grabbed);  // B_BUSY already clear: release of an un-owned buffer
      },
      "non-busy buffer");
}

TEST_F(KcheckRuntimeDeathTest, BiodoneOnNonBusyBufferAborts) {
  Buf b;
  b.dev = &ram_;
  b.blkno = 9;
  // No kBufBusy: nobody owns this buffer, so completing I/O on it is the
  // flag-discipline violation BufStateChecker::OnIoDone rejects.
  EXPECT_DEATH(cache_.IoDone(&b), "non-busy");
}

}  // namespace
}  // namespace ikdp
