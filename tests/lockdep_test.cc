// Unit tests for the lockdep validator (src/sim/lockdep.h) and the lock
// primitives' hook wiring (src/kern/lock.cc): collect mode must record the
// acquisition-order graph and every violation kind, abort mode's crash
// paths are pinned with EXPECT_DEATH (mirroring tests/krace_test.cc), off
// mode must cost nothing and catch nothing, and SleepLock contention must
// ride the ordinary Sleep/Wakeup scheduler path.

#include <gtest/gtest.h>

#include <string>

#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/kern/lock.h"
#include "src/kern/process.h"
#include "src/sim/lockdep.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  // The validator is process-wide; force collect mode and restore whatever
  // the environment selected (CI runs the suite under IKDP_LOCKDEP=abort)
  // so neighbouring tests keep their configuration.
  void SetUp() override {
    saved_mode_ = Lockdep().mode();
    Lockdep().SetMode(LockdepValidator::Mode::kCollect);
  }
  void TearDown() override { Lockdep().SetMode(saved_mode_); }

  bool HasViolation(const std::string& kind) {
    for (const auto& v : Lockdep().violations()) {
      if (v.kind == kind) {
        return true;
      }
    }
    return false;
  }

  LockdepValidator::Mode saved_mode_;
};

TEST_F(LockdepTest, RankOrderedNestingIsCleanAndRecorded) {
  SpinLock outer("outer", 10);
  SpinLock inner("inner", 20);
  outer.Acquire();
  inner.Acquire();
  inner.Release();
  outer.Release();
  EXPECT_TRUE(Lockdep().violations().empty());
  ASSERT_EQ(Lockdep().edges().size(), 1u);
  EXPECT_EQ(Lockdep().edges().begin()->first.first, "outer");
  EXPECT_EQ(Lockdep().edges().begin()->first.second, "inner");
}

TEST_F(LockdepTest, CollectModeFlagsInversionAgainstRecordedOrder) {
  SpinLock a("a", 10);
  SpinLock b("b", 20);
  a.Acquire();
  b.Acquire();
  b.Release();
  a.Release();
  // The reverse nesting contradicts both the rank table and the recorded
  // a -> b edge.
  b.Acquire();
  a.Acquire();
  a.Release();
  b.Release();
  EXPECT_TRUE(HasViolation("rank"));
  EXPECT_TRUE(HasViolation("order-inversion"));
}

TEST_F(LockdepTest, CollectModeFlagsSleepUnderSpinlock) {
  SpinLock spin("spin", 10);
  SleepLock gate("gate", 90);
  spin.Acquire();
  gate.AcquireUncontended();  // may-block point with a SpinLock held
  gate.Release();
  spin.Release();
  EXPECT_TRUE(HasViolation("sleep-under-spinlock"));
}

TEST_F(LockdepTest, OffModeIgnoresInversions) {
  Lockdep().SetMode(LockdepValidator::Mode::kOff);
  EXPECT_FALSE(LockdepEnabled());
  SpinLock a("a", 10);
  SpinLock b("b", 20);
  b.Acquire();
  a.Acquire();
  a.Release();
  b.Release();
  EXPECT_TRUE(Lockdep().violations().empty());
  EXPECT_TRUE(Lockdep().edges().empty());
}

TEST_F(LockdepTest, AcquisitionCountersTrackDepthAndRank) {
  ResetLockStats();
  SpinLock outer("outer", 10);
  SpinLock inner("inner", 20);
  outer.Acquire();
  inner.Acquire();
  inner.Release();
  outer.Release();
  const LockStats& s = GlobalLockStats();
  EXPECT_EQ(s.spin_acquisitions, 2u);
  EXPECT_EQ(s.max_held, 2);
  EXPECT_EQ(s.max_held_rank, 20);
  EXPECT_EQ(s.cur_held, 0);
}

using LockdepDeathTest = LockdepTest;

TEST_F(LockdepDeathTest, OrderInversionAborts) {
  // The reverse nesting dies at the rank check — any inversion contradicts
  // the strictly-increasing rank table before the edge graph is consulted.
  EXPECT_DEATH(
      {
        Lockdep().SetMode(LockdepValidator::Mode::kAbort);
        SpinLock a("a", 10);
        SpinLock b("b", 20);
        b.Acquire();
        a.Acquire();
      },
      "lockdep (rank|order-inversion)");
}

TEST_F(LockdepDeathTest, DoubleAcquireAborts) {
  EXPECT_DEATH(
      {
        Lockdep().SetMode(LockdepValidator::Mode::kAbort);
        SpinLock a("a", 10);
        a.Acquire();
        a.Acquire();
      },
      "lockdep double-acquire");
}

TEST_F(LockdepDeathTest, SleepUnderSpinlockAborts) {
  EXPECT_DEATH(
      {
        Lockdep().SetMode(LockdepValidator::Mode::kAbort);
        SpinLock spin("spin", 10);
        SleepLock gate("gate", 90);
        spin.Acquire();
        gate.AcquireUncontended();
      },
      "lockdep sleep-under-spinlock");
}

TEST_F(LockdepTest, SleepLockContentionRidesTheScheduler) {
  ResetLockStats();
  Simulator sim;
  CostConfig costs;
  costs.context_switch = 0;
  costs.syscall_overhead = 0;
  costs.interrupt_overhead = 0;
  CpuSystem cpu(&sim, costs);
  SleepLock gate("gate", 90);
  std::string order;

  cpu.Spawn("holder", [&](Process& p) -> Task<> {
    co_await gate.Acquire(&cpu, p);
    order += "H";
    int chan = 0;
    // Hold across a genuine suspension: the contender must sleep, not spin.
    sim.After(Milliseconds(5), [&] { cpu.Wakeup(&chan); });
    co_await cpu.Sleep(p, &chan, kPriLock);
    gate.Release(&cpu);
    order += "h";
  });
  cpu.Spawn("contender", [&](Process& p) -> Task<> {
    co_await gate.Acquire(&cpu, p);
    order += "C";
    gate.Release(&cpu);
  });
  sim.Run();

  EXPECT_EQ(order, "HhC");
  const LockStats& s = GlobalLockStats();
  EXPECT_EQ(s.sleep_acquisitions, 2u);
  EXPECT_GE(s.sleep_contention, 1u);
  EXPECT_EQ(s.cur_held, 0);
}

}  // namespace
}  // namespace ikdp
