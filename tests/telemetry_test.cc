// Tests for the metrics layer: log2 histogram bucketing and quantiles, the
// named-metric registry, the online telemetry collector's interval pairing,
// and whole-kernel counter capture.

#include <gtest/gtest.h>

#include <sstream>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/metrics/histogram.h"
#include "src/metrics/telemetry.h"
#include "src/metrics/trace_export.h"
#include "src/os/kernel.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 13 + 1); }

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  LatencyHistogram h;
  h.Add(0);
  h.Add(1);        // [1, 2)      -> bucket 1
  h.Add(2);        // [2, 4)      -> bucket 2
  h.Add(3);        // [2, 4)
  h.Add(1024);     // [1024, 2048) -> bucket 11
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(LatencyHistogram::BucketLo(11), 1024);
  EXPECT_EQ(LatencyHistogram::BucketHi(11), 2048);
  EXPECT_EQ(LatencyHistogram::BucketLo(0), 0);
}

TEST(LatencyHistogramTest, HugeValuesLandInTheLastBucket) {
  LatencyHistogram h;
  h.Add(INT64_MAX);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.max(), INT64_MAX);
  EXPECT_EQ(h.Quantile(1.0), INT64_MAX);
}

TEST(LatencyHistogramTest, QuantilesAreConservativeUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Add(100);  // bucket [64, 128)
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(10000);  // bucket [8192, 16384)
  }
  // p50 falls in the low bucket: bound 127, capped at nothing below max.
  EXPECT_EQ(h.Quantile(0.5), 127);
  // p99 falls in the high bucket; the bound is capped at the true max.
  EXPECT_EQ(h.Quantile(0.99), 10000);
  EXPECT_EQ(h.Quantile(0.0), 127);  // lowest non-empty bucket
  // Empty histogram.
  LatencyHistogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0);
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
}

TEST(LatencyHistogramTest, PrintShowsDistribution) {
  LatencyHistogram h;
  h.Add(1000);
  h.Add(2000);
  std::ostringstream os;
  h.Print(os);
  EXPECT_NE(os.str().find("count 2"), std::string::npos);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(MetricsRegistryTest, CountersAndEnumerationOrder) {
  MetricsRegistry r;
  r.SetCounter("z.last", 3);
  r.SetCounter("a.first", 1);
  r.SetCounter("m.middle", 2);
  EXPECT_EQ(r.GetCounter("a.first"), 1);
  EXPECT_EQ(r.GetCounter("missing"), 0);
  EXPECT_FALSE(r.HasCounter("missing"));
  r.SetCounter("a.first", 10);  // overwrite
  EXPECT_EQ(r.GetCounter("a.first"), 10);
  // Deterministic name-ordered enumeration.
  std::vector<std::string> names;
  for (const auto& [name, v] : r.counters()) {
    names.push_back(name);
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.first");
  EXPECT_EQ(names[2], "z.last");
  // Histogram get-or-create returns a stable pointer.
  LatencyHistogram* h = r.Histogram("lat");
  h->Add(5);
  EXPECT_EQ(r.Histogram("lat"), h);
  EXPECT_EQ(r.Histogram("lat")->count(), 1u);
}

TEST(TelemetryCollectorTest, PairsIntervalsByKey) {
  MetricsRegistry registry;
  TelemetryCollector collector(&registry);

  // Two interleaved syscalls on different pids.
  collector.Observe({1000, TraceKind::kSyscallEnter, 1, 0, "read"});
  collector.Observe({1500, TraceKind::kSyscallEnter, 2, 0, "write"});
  collector.Observe({4000, TraceKind::kSyscallExit, 1, 0, "read"});
  collector.Observe({9500, TraceKind::kSyscallExit, 2, 0, "write"});
  EXPECT_EQ(registry.Histogram("syscall.latency.read")->count(), 1u);
  EXPECT_EQ(registry.Histogram("syscall.latency.read")->sum(), 3000);
  EXPECT_EQ(registry.Histogram("syscall.latency.write")->sum(), 8000);

  // Run-queue wait.
  collector.Observe({100, TraceKind::kRunnable, 7, 0, "p"});
  collector.Observe({700, TraceKind::kDispatch, 7, 0, "p"});
  EXPECT_EQ(registry.Histogram("cpu.runq_wait")->sum(), 600);

  // Disk transfers keyed by (device, serial): same serial on two devices
  // must not collide.
  collector.Observe({0, TraceKind::kDiskDispatch, 1, 8192, "dev.a"});
  collector.Observe({100, TraceKind::kDiskDispatch, 1, 8192, "dev.b"});
  collector.Observe({5000, TraceKind::kDiskComplete, 1, 8192, "dev.a"});
  collector.Observe({5100, TraceKind::kDiskComplete, 1, 8192, "dev.b"});
  EXPECT_EQ(registry.Histogram("disk.service_time.dev.a")->sum(), 5000);
  EXPECT_EQ(registry.Histogram("disk.service_time.dev.b")->sum(), 5000);

  // Splice chunk latency keyed by (serial, index).
  collector.Observe({0, TraceKind::kSpliceRead, 1, 0, ""});
  collector.Observe({10, TraceKind::kSpliceRead, 1, 1, ""});
  collector.Observe({300, TraceKind::kSpliceChunk, 1, 1, ""});
  collector.Observe({500, TraceKind::kSpliceChunk, 1, 0, ""});
  const LatencyHistogram* chunk = registry.Histogram("splice.chunk_latency");
  EXPECT_EQ(chunk->count(), 2u);
  EXPECT_EQ(chunk->sum(), 290 + 500);
  EXPECT_EQ(collector.PendingIntervals(), 0u);

  // Unmatched ends are ignored, unmatched begins stay pending.
  collector.Observe({100, TraceKind::kDiskComplete, 9, 0, "dev.a"});
  collector.Observe({200, TraceKind::kSpliceRead, 2, 0, ""});
  EXPECT_EQ(collector.PendingIntervals(), 1u);
  EXPECT_EQ(registry.Histogram("disk.service_time.dev.a")->count(), 1u);
}

TEST(TelemetryCollectorTest, PairsRingOpsByRingAndCookie) {
  MetricsRegistry registry;
  TelemetryCollector collector(&registry);
  // The same cookie on two different rings must not collide: the pairing
  // key is the (ring, cookie) composite.
  collector.Observe({100, TraceKind::kRingOpSubmit, 1, 7, ""});
  collector.Observe({200, TraceKind::kRingOpSubmit, 2, 7, ""});
  collector.Observe({900, TraceKind::kRingOpComplete, 1, 7, ""});
  collector.Observe({1200, TraceKind::kRingOpComplete, 2, 7, ""});
  const LatencyHistogram* lat = registry.Histogram("aio.completion_latency");
  EXPECT_EQ(lat->count(), 2u);
  EXPECT_EQ(lat->sum(), 800 + 1000);
  EXPECT_EQ(collector.PendingIntervals(), 0u);
  // SQ depth samples land straight in the histogram.
  collector.Observe({1300, TraceKind::kRingSqDepth, 1, 5, ""});
  EXPECT_EQ(registry.Histogram("aio.sq_depth")->count(), 1u);
  EXPECT_EQ(registry.Histogram("aio.sq_depth")->sum(), 5);
  // An unmatched completion is ignored; an unmatched submit stays pending.
  collector.Observe({1400, TraceKind::kRingOpComplete, 3, 9, ""});
  collector.Observe({1500, TraceKind::kRingOpSubmit, 3, 9, ""});
  EXPECT_EQ(lat->count(), 2u);
  EXPECT_EQ(collector.PendingIntervals(), 1u);
}

TEST(TraceExportTest, JsonEscapeNeutralizesMetacharacters) {
  EXPECT_EQ(JsonEscape("plain.name-42"), "plain.name-42");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(TraceExportTest, EvilDeviceNamesSurviveExportRoundTrip) {
  // A device (or metric) name containing JSON metacharacters must never
  // produce unparseable output from either exporter.
  const std::string evil = "rz56\"\\evil\nname";

  MetricsRegistry registry;
  registry.SetCounter("disk." + evil + ".requests", 17);
  registry.Histogram("disk.service_time." + evil)->Add(1234);
  std::ostringstream reg_os;
  ExportRegistryJson(registry, reg_os);
  JsonValue reg_json;
  ASSERT_TRUE(ParseJson(reg_os.str(), &reg_json)) << reg_os.str();
  const JsonValue* counters = reg_json.Get("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* evil_counter = counters->Get("disk." + evil + ".requests");
  ASSERT_NE(evil_counter, nullptr);  // the name round-trips intact
  EXPECT_EQ(evil_counter->number, 17.0);

  TraceLog log(1 << 10);
  log.Record(100, TraceKind::kDiskDispatch, 1, 8192, evil.c_str());
  log.Record(500, TraceKind::kDiskComplete, 1, 8192, evil.c_str());
  std::ostringstream trace_os;
  ExportChromeTrace(log, trace_os);
  JsonValue trace_json;
  ASSERT_TRUE(ParseJson(trace_os.str(), &trace_json)) << trace_os.str();
  const JsonValue* events = trace_json.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_FALSE(events->items.empty());
}

TEST(TelemetryCollectorTest, FeedsFromLiveKernelRun) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  DiskDriver disk(&kernel.cpu(), &sim, Rz56Params());
  RamDisk ram(&kernel.cpu(), 16 << 20);
  FileSystem* src = kernel.MountFs(&disk, "d");
  kernel.MountFs(&ram, "r");
  src->CreateFileInstant("f", 4 * kBlockSize, Fill);

  TraceLog log(1 << 14);
  MetricsRegistry registry;
  TelemetryCollector collector(&registry);
  collector.Attach(&log);
  kernel.AttachTrace(&log);

  kernel.Spawn("p", [&](Process& p) -> Task<> {
    const int s = co_await kernel.Open(p, "d:f", kOpenRead);
    const int d = co_await kernel.Open(p, "r:g", kOpenWrite | kOpenCreate);
    co_await kernel.Splice(p, s, d, kSpliceEof);
  });
  sim.Run();

  CaptureKernelCounters(&registry, kernel);

  // Online histograms fed through the observer.
  EXPECT_EQ(registry.Histogram("splice.chunk_latency")->count(), 4u);
  EXPECT_GE(registry.Histogram("disk.service_time.RZ56")->count(), 1u);
  EXPECT_GE(registry.Histogram("syscall.latency.open")->count(), 2u);
  EXPECT_GE(registry.Histogram("cpu.runq_wait")->count(), 1u);
  // Histogram time sum must agree with the disk's own busy-time ledger.
  EXPECT_EQ(registry.Histogram("disk.service_time.RZ56")->sum(),
            registry.GetCounter("disk.d.busy_time_ns"));

  // Sampled counters mirror the kernel's stats structs.
  EXPECT_EQ(registry.GetCounter("sys.syscalls"),
            static_cast<int64_t>(kernel.stats().syscalls));
  EXPECT_EQ(registry.GetCounter("splice.total_bytes"), 4 * kBlockSize);
  EXPECT_EQ(registry.GetCounter("cache.misses"),
            static_cast<int64_t>(kernel.cache().stats().misses));
  EXPECT_EQ(registry.GetCounter("disk.d.requests"),
            static_cast<int64_t>(disk.stats().requests));
  EXPECT_GT(registry.GetCounter("cpu.process_work_ns"), 0);
  // The RAM-disk mount has no scheduler: no counters under its prefix.
  EXPECT_FALSE(registry.HasCounter("disk.r.requests"));
}

}  // namespace
}  // namespace ikdp
