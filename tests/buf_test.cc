// Unit tests for the buffer cache against real device drivers (RAM disk and
// SCSI disk driver), covering the classic blocking API, the splice
// (non-blocking) API, reuse/victim behaviour, and content integrity.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/buf/buf.h"
#include "src/buf/buffer_cache.h"
#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/kern/cpu.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

std::vector<uint8_t> Pattern(int64_t blkno) {
  std::vector<uint8_t> v(kBlockSize);
  for (int64_t i = 0; i < kBlockSize; ++i) {
    v[static_cast<size_t>(i)] = static_cast<uint8_t>((blkno * 37 + i) & 0xff);
  }
  return v;
}

class BufTest : public ::testing::Test {
 protected:
  BufTest()
      : cpu_(&sim_, DecStation5000Costs()),
        cache_(&cpu_, 16),
        ram_(&cpu_, 4 << 20),
        scsi_(&cpu_, &sim_, Rz56Params()) {}

  // Runs `body` as a process and the simulation to completion.
  void RunProc(std::function<Task<>(Process&)> body) {
    cpu_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(cpu_.alive(), 0) << "process deadlocked";
  }

  Simulator sim_;
  CpuSystem cpu_;
  BufferCache cache_;
  RamDisk ram_;
  DiskDriver scsi_;
};

TEST_F(BufTest, BreadReturnsDeviceContents) {
  ram_.PokeBlock(3, Pattern(3));
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Bread(p, &ram_, 3);
    EXPECT_TRUE(b->Has(kBufDone));
    EXPECT_EQ(*b->data, Pattern(3));
    cache_.Brelse(b);
  });
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(BufTest, SecondBreadHitsCache) {
  ram_.PokeBlock(5, Pattern(5));
  RunProc([&](Process& p) -> Task<> {
    Buf* a = co_await cache_.Bread(p, &ram_, 5);
    cache_.Brelse(a);
    Buf* b = co_await cache_.Bread(p, &ram_, 5);
    EXPECT_EQ(a, b);  // same frame
    cache_.Brelse(b);
  });
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_EQ(cache_.stats().misses, 1u);
  EXPECT_EQ(ram_.stats().reads, 1u);  // device touched once
}

TEST_F(BufTest, BreadFromScsiChargesWallClockTime) {
  scsi_.PokeBlock(10, Pattern(10));
  SimTime done = -1;
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Bread(p, &scsi_, 10);
    EXPECT_EQ(*b->data, Pattern(10));
    cache_.Brelse(b);
    done = sim_.Now();
  });
  // At least a rotation plus media transfer.
  EXPECT_GT(done, Milliseconds(8));
}

TEST_F(BufTest, BwriteRoundTripsThroughDevice) {
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &ram_, 7);
    *b->data = Pattern(7);
    co_await cache_.Bwrite(p, b);
  });
  EXPECT_EQ(ram_.PeekBlock(7), Pattern(7));
}

TEST_F(BufTest, BdwriteDefersDeviceWrite) {
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &ram_, 9);
    *b->data = Pattern(9);
    cache_.Bdwrite(p, b);
    EXPECT_EQ(ram_.stats().writes, 0u);  // nothing hit the device yet
    // Re-reading sees the dirty cached data.
    Buf* again = co_await cache_.Bread(p, &ram_, 9);
    EXPECT_EQ(*again->data, Pattern(9));
    cache_.Brelse(again);
  });
  EXPECT_EQ(ram_.stats().reads, 0u);  // pure cache hit
}

TEST_F(BufTest, FlushDevWritesDelayedBlocksAndWaits) {
  RunProc([&](Process& p) -> Task<> {
    for (int64_t i = 0; i < 5; ++i) {
      Buf* b = co_await cache_.GetBlk(p, &scsi_, 100 + i);
      *b->data = Pattern(100 + i);
      cache_.Bdwrite(p, b);
    }
    co_await cache_.FlushDev(p, &scsi_);
    EXPECT_EQ(cache_.PendingWrites(&scsi_), 0);
  });
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scsi_.PeekBlock(100 + i), Pattern(100 + i));
  }
}

TEST_F(BufTest, LruVictimIsFlushedWhenDirty) {
  // Dirty more blocks than the cache holds; reuse must write victims out.
  RunProc([&](Process& p) -> Task<> {
    for (int64_t i = 0; i < 32; ++i) {  // cache has 16 buffers
      Buf* b = co_await cache_.GetBlk(p, &ram_, i);
      *b->data = Pattern(i);
      cache_.Bdwrite(p, b);
    }
    co_await cache_.FlushDev(p, &ram_);
  });
  EXPECT_GT(cache_.stats().delwri_flushes, 0u);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(ram_.PeekBlock(i), Pattern(i)) << "block " << i;
  }
}

TEST_F(BufTest, GetBlkSleepsWhenAllBuffersBusy) {
  // Hold every buffer busy, then have a second process try to get one.
  std::vector<Buf*> held;
  SimTime got_at = -1;
  cpu_.Spawn("holder", [&](Process& p) -> Task<> {
    for (int64_t i = 0; i < 16; ++i) {
      Buf* b = co_await cache_.GetBlk(p, &ram_, i);
      held.push_back(b);
    }
    // Give the waiter time to block, then release one buffer.
    co_await cpu_.Sleep(p, &held, kPriWait);
    cache_.Brelse(held[0]);
  });
  cpu_.Spawn("waiter", [&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &ram_, 99);
    got_at = sim_.Now();
    cache_.Brelse(b);
  });
  sim_.After(Milliseconds(50), [&] { cpu_.Wakeup(&held); });
  sim_.Run();
  EXPECT_GE(got_at, Milliseconds(50));
}

TEST_F(BufTest, WantedBufferWakesSecondReader) {
  scsi_.PokeBlock(42, Pattern(42));
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    cpu_.Spawn("reader", [&](Process& p) -> Task<> {
      Buf* b = co_await cache_.Bread(p, &scsi_, 42);
      EXPECT_EQ(*b->data, Pattern(42));
      cache_.Brelse(b);
      ++done;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(scsi_.stats().requests, 1u);  // one physical read, one hit
}

TEST_F(BufTest, BusyBlockRaceSleepsOnWantedAndWakes) {
  // Two processes race on one cached block: the holder keeps it busy while
  // the waiter's getblk must set kBufWanted, sleep, and wake on Brelse —
  // without touching the device again.
  ram_.PokeBlock(11, Pattern(11));
  SimTime release_at = -1;
  SimTime got_at = -1;
  int holder_chan = 0;
  cpu_.Spawn("holder", [&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Bread(p, &ram_, 11);
    co_await cpu_.Sleep(p, &holder_chan, kPriWait);  // hold busy until woken
    EXPECT_TRUE(b->Has(kBufWanted)) << "waiter should have marked the buffer";
    release_at = sim_.Now();
    cache_.Brelse(b);
  });
  cpu_.Spawn("waiter", [&](Process& p) -> Task<> {
    co_await cpu_.Use(p, Microseconds(100));  // let the holder acquire first
    Buf* b = co_await cache_.Bread(p, &ram_, 11);
    got_at = sim_.Now();
    EXPECT_EQ(*b->data, Pattern(11));
    cache_.Brelse(b);
  });
  sim_.After(Milliseconds(20), [&] { cpu_.Wakeup(&holder_chan); });
  sim_.Run();
  EXPECT_EQ(cpu_.alive(), 0) << "a process deadlocked";
  EXPECT_GE(release_at, Milliseconds(20));
  EXPECT_GE(got_at, release_at);
  EXPECT_EQ(ram_.stats().reads, 1u);  // the waiter hit the cache
}

TEST_F(BufTest, DelwriVictimIsWrittenBeforeFrameReuse) {
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &ram_, 0);
    *b->data = Pattern(0);
    cache_.Bdwrite(p, b);
    Buf* victim = b;
    bool reused = false;
    // Cycle more fresh blocks than there are clean frames: the dirty buffer
    // reaches the LRU head, is flushed, re-enters the freelist clean, and
    // only then may its frame be reused.
    for (int64_t i = 100; i < 132; ++i) {
      Buf* f = co_await cache_.GetBlk(p, &ram_, i);
      if (f == victim) {
        reused = true;
        EXPECT_EQ(ram_.stats().writes, 1u) << "flush must precede reuse";
        EXPECT_EQ(ram_.PeekBlock(0), Pattern(0));
      }
      cache_.Brelse(f);
    }
    EXPECT_TRUE(reused);
  });
  EXPECT_GT(cache_.stats().delwri_flushes, 0u);
  EXPECT_EQ(ram_.PeekBlock(0), Pattern(0));
}

TEST_F(BufTest, DelwriVictimWriteErrorIsCounted) {
  // Every write to the SCSI disk fails at the media; a victim flush forced
  // by reuse must surface in delwri_write_errors instead of vanishing.
  // (The redirty path may retry and fail again, so >= 1.)
  scsi_.disk().SetFaultHook([](int64_t, bool is_read) { return !is_read; });
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &scsi_, 3);
    *b->data = Pattern(3);
    cache_.Bdwrite(p, b);
    for (int64_t i = 100; i < 120; ++i) {
      Buf* f = co_await cache_.Bread(p, &ram_, i);
      cache_.Brelse(f);
    }
  });
  EXPECT_GT(cache_.stats().delwri_flushes, 0u);
  EXPECT_GE(cache_.stats().delwri_write_errors, 1u);
}

TEST_F(BufTest, DelwriVictimWriteFailureRedirtiesAndRetries) {
  // Regression: a victim write that fails transiently used to re-enter the
  // freelist CLEAN — the dirty data silently vanished on frame reuse.  The
  // buffer must be redirtied and written successfully on a later pass.
  int fail_budget = 1;
  scsi_.disk().SetFaultHook(
      [&](int64_t, bool is_read) { return !is_read && fail_budget-- > 0; });
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &scsi_, 3);
    *b->data = Pattern(3);
    cache_.Bdwrite(p, b);
    // Cycle the LRU with paced reads (the SCSI write takes ~20 ms of
    // simulated time) until the redirtied buffer is re-victimized and the
    // retried write lands.  Deterministic; the bound is just a backstop.
    for (int64_t i = 100; i < 400 && scsi_.PeekBlock(3) != Pattern(3); ++i) {
      Buf* f = co_await cache_.Bread(p, &ram_, i);
      cache_.Brelse(f);
      co_await cpu_.Use(p, Milliseconds(2));
    }
  });
  EXPECT_EQ(cache_.stats().delwri_write_errors, 1u);
  EXPECT_EQ(cache_.stats().delwri_data_lost, 0u);
  EXPECT_EQ(scsi_.PeekBlock(3), Pattern(3));  // the data survived the fault
}

TEST_F(BufTest, DelwriRepeatedWriteFailureBoundsRetriesAndCountsLoss) {
  // A write that can never succeed must not livelock the allocator: after
  // kDelwriRetryLimit failed victim flushes the cache gives up, counts the
  // loss, and reclaims the frame.
  scsi_.disk().SetFaultHook([](int64_t, bool is_read) { return !is_read; });
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &scsi_, 3);
    *b->data = Pattern(3);
    cache_.Bdwrite(p, b);
    // Paced LRU churn re-victimizes the redirtied buffer until the retry
    // budget is exhausted and the loss is recorded (bound is a backstop).
    for (int64_t i = 100; i < 500 && cache_.stats().delwri_data_lost == 0; ++i) {
      Buf* f = co_await cache_.Bread(p, &ram_, i);
      cache_.Brelse(f);
      co_await cpu_.Use(p, Milliseconds(2));
    }
  });
  EXPECT_EQ(cache_.stats().delwri_write_errors,
            static_cast<uint64_t>(BufferCache::kDelwriRetryLimit));
  EXPECT_EQ(cache_.stats().delwri_data_lost, 1u);
}

TEST_F(BufTest, FsyncWriteErrorKeepsDataForRetry) {
  // FlushDev with a failing device returns with the block still dirty
  // (fsync-reports-EIO semantics); once the fault clears, a second flush
  // lands the data.
  bool fail_writes = true;
  scsi_.disk().SetFaultHook(
      [&](int64_t, bool is_read) { return !is_read && fail_writes; });
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &scsi_, 5);
    *b->data = Pattern(5);
    cache_.Bdwrite(p, b);
    co_await cache_.FlushDev(p, &scsi_);  // fails at the media
    EXPECT_GT(cache_.stats().delwri_write_errors, 0u);
    fail_writes = false;
    co_await cache_.FlushDev(p, &scsi_);
  });
  EXPECT_EQ(scsi_.PeekBlock(5), Pattern(5));
  EXPECT_EQ(cache_.stats().delwri_data_lost, 0u);
}

TEST_F(BufTest, InvalidateDevPutsBuffersAtFreelistFront) {
  ram_.PokeBlock(1, Pattern(1));
  RunProc([&](Process& p) -> Task<> {
    Buf* a = co_await cache_.Bread(p, &ram_, 1);
    cache_.Brelse(a);
    // Age other frames behind it (different device, so the invalidation
    // below touches only `a`).
    for (int64_t i = 50; i < 55; ++i) {
      Buf* b = co_await cache_.GetBlk(p, &scsi_, i);
      cache_.Brelse(b);
    }
    cache_.InvalidateDev(&ram_);
    // Worthless buffers go to the freelist FRONT: the very next miss must
    // recycle the invalidated frame ahead of every never-used frame.
    Buf* b = co_await cache_.GetBlk(p, &ram_, 99);
    EXPECT_EQ(b, a);
    cache_.Brelse(b);
  });
}

TEST_F(BufTest, BreadaIssuesReadAhead) {
  scsi_.PokeBlock(0, Pattern(0));
  scsi_.PokeBlock(1, Pattern(1));
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Breada(p, &scsi_, 0, 1);
    cache_.Brelse(b);
    // Wait for the async read-ahead to land, then block 1 must be a hit.
    co_await cpu_.Use(p, Milliseconds(100));
    const uint64_t misses = cache_.stats().misses;
    Buf* ra = co_await cache_.Bread(p, &scsi_, 1);
    EXPECT_EQ(cache_.stats().misses, misses);
    EXPECT_EQ(*ra->data, Pattern(1));
    cache_.Brelse(ra);
  });
  EXPECT_EQ(scsi_.stats().requests, 2u);
}

TEST_F(BufTest, InvalidateDevForcesColdRead) {
  ram_.PokeBlock(2, Pattern(2));
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Bread(p, &ram_, 2);
    cache_.Brelse(b);
    cache_.InvalidateDev(&ram_);
    Buf* again = co_await cache_.Bread(p, &ram_, 2);
    EXPECT_EQ(*again->data, Pattern(2));
    cache_.Brelse(again);
  });
  EXPECT_EQ(ram_.stats().reads, 2u);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

// --- splice (non-blocking) API ---

TEST_F(BufTest, BreadAsyncDeliversViaIodone) {
  scsi_.PokeBlock(8, Pattern(8));
  Buf* got = nullptr;
  SimTime when = -1;
  ASSERT_TRUE(cache_.BreadAsync(&scsi_, 8, [&](Buf& b) {
    got = &b;
    when = sim_.Now();
  }));
  EXPECT_EQ(got, nullptr);  // not synchronous for a cold block
  sim_.Run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got->data, Pattern(8));
  EXPECT_GT(when, 0);
  EXPECT_TRUE(got->Has(kBufDone));
  cache_.Brelse(got);
}

TEST_F(BufTest, BreadAsyncCacheHitIsSynchronous) {
  ram_.PokeBlock(4, Pattern(4));
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.Bread(p, &ram_, 4);
    cache_.Brelse(b);
  });
  Buf* got = nullptr;
  ASSERT_TRUE(cache_.BreadAsync(&ram_, 4, [&](Buf& b) { got = &b; }));
  ASSERT_NE(got, nullptr);  // delivered before returning
  EXPECT_EQ(*got->data, Pattern(4));
  cache_.Brelse(got);
}

TEST_F(BufTest, TransientHeaderSharesDataArea) {
  scsi_.PokeBlock(6, Pattern(6));
  bool wrote = false;
  ASSERT_TRUE(cache_.BreadAsync(&scsi_, 6, [&](Buf& src) {
    // Write side: header with no data of its own, aliasing the read buffer.
    Buf* w = cache_.AllocTransientHeader(&ram_, 20);
    EXPECT_EQ(w->data, nullptr);
    w->data = src.data;
    w->bcount = src.bcount;
    w->splice_peer = &src;
    cache_.BawriteAsync(w, [&](Buf& done_buf) {
      cache_.Brelse(done_buf.splice_peer);
      cache_.FreeTransientHeader(&done_buf);
      wrote = true;
    });
  }));
  sim_.Run();
  EXPECT_TRUE(wrote);
  // Zero-copy path: the bytes landed on the RAM disk without an intermediate
  // cache-to-cache copy.
  EXPECT_EQ(ram_.PeekBlock(20), Pattern(6));
}

TEST_F(BufTest, BreadAsyncFailsWhenNoBufferAvailable) {
  std::vector<Buf*> held;
  cpu_.Spawn("holder", [&](Process& p) -> Task<> {
    for (int64_t i = 0; i < 16; ++i) {
      held.push_back(co_await cache_.GetBlk(p, &ram_, i));
    }
  });
  sim_.Run();
  EXPECT_FALSE(cache_.BreadAsync(&scsi_, 1, [](Buf&) { FAIL(); }));
  EXPECT_EQ(cache_.stats().async_read_fails, 1u);
  for (Buf* b : held) {
    cache_.Brelse(b);
  }
}

TEST_F(BufTest, VictimReuseWithAliasedDataGetsFreshFrame) {
  // A buffer whose data area is still shared by a transient header must not
  // be scribbled on when the frame is recycled.
  ram_.PokeBlock(0, Pattern(0));
  Buf* src = nullptr;
  ASSERT_TRUE(cache_.BreadAsync(&ram_, 0, [&](Buf& b) { src = &b; }));
  ASSERT_NE(src, nullptr);
  Buf* w = cache_.AllocTransientHeader(&ram_, 30);
  w->data = src->data;  // alias held across the release below
  cache_.Brelse(src);
  RunProc([&](Process& p) -> Task<> {
    // Force reuse of every frame.
    for (int64_t i = 100; i < 116; ++i) {
      Buf* b = co_await cache_.GetBlk(p, &ram_, i);
      *b->data = Pattern(i);
      cache_.Brelse(b);
    }
  });
  // The aliased frame still holds block 0's bytes.
  EXPECT_EQ(*w->data, Pattern(0));
  cache_.FreeTransientHeader(w);
}

TEST_F(BufTest, PendingWritesTracksAsyncWrites) {
  RunProc([&](Process& p) -> Task<> {
    Buf* b = co_await cache_.GetBlk(p, &scsi_, 50);
    *b->data = Pattern(50);
    co_await cache_.Bawrite(p, b);
    EXPECT_EQ(cache_.PendingWrites(&scsi_), 1);
    co_await cache_.FlushDev(p, &scsi_);
    EXPECT_EQ(cache_.PendingWrites(&scsi_), 0);
  });
  EXPECT_EQ(scsi_.PeekBlock(50), Pattern(50));
}

TEST_F(BufTest, RamDiskWriteChargesCopyToCaller) {
  Process* proc = nullptr;
  cpu_.Spawn("copier", [&](Process& p) -> Task<> {
    proc = &p;
    Buf* b = co_await cache_.GetBlk(p, &ram_, 0);
    *b->data = Pattern(0);
    co_await cache_.Bwrite(p, b);
  });
  sim_.Run();
  // The process paid for the 8 KB write bcopy (~410 us) plus bookkeeping.
  EXPECT_GT(proc->stats().cpu_time, Microseconds(400));
}

TEST_F(BufTest, RamDiskReadIsZeroCopy) {
  ram_.PokeBlock(0, Pattern(0));
  Process* proc = nullptr;
  cpu_.Spawn("reader", [&](Process& p) -> Task<> {
    proc = &p;
    Buf* b = co_await cache_.Bread(p, &ram_, 0);
    EXPECT_EQ(*b->data, Pattern(0));
    cache_.Brelse(b);
  });
  sim_.Run();
  // The RAM disk maps read buffers onto its core: bookkeeping only.
  EXPECT_LT(proc->stats().cpu_time, Microseconds(200));
}

TEST_F(BufTest, ScsiReadDoesNotChargeCopyToCaller) {
  scsi_.PokeBlock(0, Pattern(0));
  Process* proc = nullptr;
  cpu_.Spawn("reader", [&](Process& p) -> Task<> {
    proc = &p;
    Buf* b = co_await cache_.Bread(p, &scsi_, 0);
    cache_.Brelse(b);
  });
  sim_.Run();
  // DMA: only bookkeeping costs, far below a bcopy.
  EXPECT_LT(proc->stats().cpu_time, Microseconds(200));
}

}  // namespace
}  // namespace ikdp
