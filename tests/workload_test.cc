// Tests for the workload programs (cp, scp, the CPU-bound test program) and
// the experiment harness, using small files so the whole Table-1/Table-2
// machinery is exercised quickly.

#include <gtest/gtest.h>

#include "src/dev/ram_disk.h"
#include "src/metrics/experiment.h"
#include "src/metrics/tables.h"
#include "src/os/kernel.h"
#include "src/workload/programs.h"

namespace ikdp {
namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>((i * 2654435761u) >> 5 & 0xff); }

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : kernel_(&sim_, DecStation5000Costs()),
        src_(&kernel_.cpu(), 16 << 20),
        dst_(&kernel_.cpu(), 16 << 20) {
    src_fs_ = kernel_.MountFs(&src_, "src");
    dst_fs_ = kernel_.MountFs(&dst_, "dst");
  }

  Simulator sim_;
  Kernel kernel_;
  RamDisk src_;
  RamDisk dst_;
  FileSystem* src_fs_;
  FileSystem* dst_fs_;
};

TEST_F(WorkloadTest, CpCopiesAndSyncs) {
  constexpr int64_t kBytes = 20 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  CopyResult result;
  kernel_.Spawn("cp", [&](Process& p) -> Task<> {
    co_await CpProgram(kernel_, p, "src:f", "dst:g", 8192, &result);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, kBytes);
  EXPECT_GT(result.end, result.start);
  // fsync ran: the destination device holds the data already.
  Inode* ip = dst_fs_->Lookup("g");
  ASSERT_NE(ip, nullptr);
  kernel_.cache().FlushAllInstant();  // metadata only
  const std::vector<uint8_t> back = dst_fs_->ReadFileInstant(ip);
  for (int64_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(back[static_cast<size_t>(i)], Fill(i)) << i;
  }
}

TEST_F(WorkloadTest, ScpCopiesViaSplice) {
  constexpr int64_t kBytes = 20 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  CopyResult result;
  kernel_.Spawn("scp", [&](Process& p) -> Task<> {
    co_await ScpProgram(kernel_, p, "src:f", "dst:g", &result);
  });
  sim_.Run();
  ASSERT_EQ(kernel_.cpu().alive(), 0);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, kBytes);
  EXPECT_EQ(kernel_.splice_engine().stats().splices_completed, 1u);
}

TEST_F(WorkloadTest, ScpUsesLessProcessCpuThanCp) {
  constexpr int64_t kBytes = 64 * kBlockSize;
  src_fs_->CreateFileInstant("f", kBytes, Fill);
  CopyResult cp_result;
  CopyResult scp_result;
  Process* cp_proc = kernel_.Spawn("cp", [&](Process& p) -> Task<> {
    co_await CpProgram(kernel_, p, "src:f", "dst:g1", 8192, &cp_result);
  });
  sim_.Run();
  Process* scp_proc = kernel_.Spawn("scp", [&](Process& p) -> Task<> {
    co_await ScpProgram(kernel_, p, "src:f", "dst:g2", &scp_result);
  });
  sim_.Run();
  ASSERT_TRUE(cp_result.ok);
  ASSERT_TRUE(scp_result.ok);
  // The core claim, at the process level: splice removes the per-block
  // copyin/copyout and syscalls from the calling process.
  EXPECT_LT(scp_proc->stats().cpu_time, cp_proc->stats().cpu_time / 4);
  // The splice blocks the caller exactly once for the whole transfer (cp on
  // a synchronous RAM disk never blocks at all, so only scp's bound is
  // meaningful here; the per-block sleep comparison lives in the SCSI
  // experiments).
  EXPECT_LE(scp_proc->stats().voluntary_switches, 2u);
}

TEST_F(WorkloadTest, CpMissingSourceFailsCleanly) {
  CopyResult result;
  kernel_.Spawn("cp", [&](Process& p) -> Task<> {
    co_await CpProgram(kernel_, p, "src:missing", "dst:g", 8192, &result);
  });
  sim_.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bytes, 0);
}

TEST_F(WorkloadTest, TestProgramCountsOps) {
  TestProgramState state;
  kernel_.Spawn("test", [&](Process& p) -> Task<> {
    co_await TestProgram(kernel_, p, Milliseconds(2), &state);
  });
  sim_.After(Milliseconds(101), [&] { state.stop = true; });
  sim_.Run();
  // 2 ms ops for ~101 ms: 50 full ops plus the one that observes stop.
  EXPECT_GE(state.ops, 50);
  EXPECT_LE(state.ops, 52);
}

TEST(ExperimentTest, SmallRamExperimentVerifies) {
  ExperimentConfig cfg;
  cfg.disk = DiskKind::kRam;
  cfg.file_bytes = 1 << 20;
  cfg.use_splice = true;
  cfg.with_test_program = true;
  const ExperimentResult r = RunCopyExperiment(cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 1 << 20);
  EXPECT_GT(r.throughput_kbs, 0);
  EXPECT_GE(r.slowdown, 1.0);
  EXPECT_GT(r.test_ops, 0);
  EXPECT_GT(r.splice_transients, 0u);
}

TEST(ExperimentTest, ThroughputOrderingScpBeatsCpOnRam) {
  ExperimentConfig cfg;
  cfg.disk = DiskKind::kRam;
  cfg.file_bytes = 2 << 20;
  cfg.with_test_program = false;
  cfg.use_splice = false;
  const ExperimentResult cp = RunCopyExperiment(cfg);
  cfg.use_splice = true;
  const ExperimentResult scp = RunCopyExperiment(cfg);
  ASSERT_TRUE(cp.ok);
  ASSERT_TRUE(scp.ok);
  EXPECT_GT(scp.throughput_kbs, cp.throughput_kbs * 1.2);
}

TEST(ExperimentTest, AvailabilityOrderingScpBeatsCp) {
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58}) {
    ExperimentConfig cfg;
    cfg.disk = disk;
    cfg.file_bytes = 2 << 20;
    cfg.with_test_program = true;
    cfg.use_splice = false;
    const ExperimentResult cp = RunCopyExperiment(cfg);
    cfg.use_splice = true;
    const ExperimentResult scp = RunCopyExperiment(cfg);
    ASSERT_TRUE(cp.ok) << DiskKindName(disk);
    ASSERT_TRUE(scp.ok) << DiskKindName(disk);
    EXPECT_GT(cp.slowdown, scp.slowdown) << DiskKindName(disk);
    EXPECT_GE(scp.slowdown, 0.99) << DiskKindName(disk);
  }
}

TEST(ExperimentTest, TableRunnersProduceCompleteRows) {
  const auto t1 = RunTable1(1 << 20);
  ASSERT_EQ(t1.size(), 3u);
  for (const auto& row : t1) {
    EXPECT_TRUE(row.cp.ok);
    EXPECT_TRUE(row.scp.ok);
    EXPECT_GT(row.MeasuredImprovement(), 1.0);
  }
  const auto t2 = RunTable2(1 << 20);
  ASSERT_EQ(t2.size(), 3u);
  for (const auto& row : t2) {
    EXPECT_TRUE(row.cp.ok);
    EXPECT_TRUE(row.scp.ok);
    EXPECT_GT(row.MeasuredImprovementPct(), 0.0);
  }
}

TEST(ExperimentTest, SummaryStringMentionsVerification) {
  ExperimentConfig cfg;
  cfg.disk = DiskKind::kRam;
  cfg.file_bytes = 1 << 20;
  cfg.use_splice = true;
  const ExperimentResult r = RunCopyExperiment(cfg);
  const std::string s = Summary(r);
  EXPECT_NE(s.find("verified"), std::string::npos);
  EXPECT_NE(s.find("scp"), std::string::npos);
}

}  // namespace
}  // namespace ikdp
