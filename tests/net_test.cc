// Unit tests for UDP sockets over simulated links: delivery, truncation,
// buffer limits, drops, duplex pairs, and interrupt charging.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/hw/costs.h"
#include "src/hw/link.h"
#include "src/kern/cpu.h"
#include "src/net/udp_socket.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

BufData Payload(const std::string& s) {
  auto d = MakeBufData();
  d->assign(s.begin(), s.end());
  return d;
}

std::string AsString(const BufData& d, int64_t n) {
  return std::string(d->begin(), d->begin() + n);
}

class NetTest : public ::testing::Test {
 protected:
  NetTest()
      : cpu_(&sim_, DecStation5000Costs()),
        wire_(&sim_, EthernetParams()),
        a_(&cpu_),
        b_(&cpu_) {
    a_.ConnectTo(&b_, &wire_);
  }

  Simulator sim_;
  CpuSystem cpu_;
  NetworkLink wire_;
  UdpSocket a_;
  UdpSocket b_;
};

TEST_F(NetTest, DatagramRoundTrip) {
  bool sent = false;
  ASSERT_TRUE(a_.SendAsync(Payload("hello"), 5, [&] { sent = true; }));
  std::string got;
  ASSERT_TRUE(b_.RecvAsync(100, [&](BufData d, int64_t n) { got = AsString(d, n); }));
  sim_.Run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(a_.stats().dgrams_sent, 1u);
  EXPECT_EQ(b_.stats().dgrams_received, 1u);
}

TEST_F(NetTest, RecvBeforeSendCompletes) {
  std::string got;
  ASSERT_TRUE(b_.RecvAsync(100, [&](BufData d, int64_t n) { got = AsString(d, n); }));
  sim_.RunUntil(Milliseconds(1));
  EXPECT_EQ(got, "");
  a_.SendAsync(Payload("later"), 5, nullptr);
  sim_.Run();
  EXPECT_EQ(got, "later");
}

TEST_F(NetTest, DatagramBoundariesPreserved) {
  std::vector<std::string> got;
  a_.SendAsync(Payload("one"), 3, nullptr);
  a_.SendAsync(Payload("two"), 3, nullptr);
  a_.SendAsync(Payload("three"), 5, nullptr);
  std::function<void()> pump = [&] {
    b_.RecvAsync(100, [&](BufData d, int64_t n) {
      got.push_back(AsString(d, n));
      if (got.size() < 3) {
        pump();
      }
    });
  };
  pump();
  sim_.Run();
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(NetTest, OversizeDatagramTruncatesOnRecv) {
  a_.SendAsync(Payload("abcdefghij"), 10, nullptr);
  std::string got;
  int64_t got_n = -1;
  b_.RecvAsync(4, [&](BufData d, int64_t n) {
    got_n = n;
    got = AsString(d, n);
  });
  sim_.Run();
  EXPECT_EQ(got_n, 4);
  EXPECT_EQ(got, "abcd");
}

TEST_F(NetTest, SendBufferLimitsInflight) {
  UdpSocket tight(&cpu_, /*sndbuf_bytes=*/10000, /*rcvbuf_bytes=*/48 * 1024);
  tight.ConnectTo(&b_, &wire_);
  auto big = MakeBufData();
  EXPECT_TRUE(tight.SendAsync(big, 8000, nullptr));
  EXPECT_FALSE(tight.SendAsync(big, 8000, nullptr));  // 16000 > 10000
  EXPECT_EQ(tight.SendSpace(), 2000);
  sim_.Run();  // drains the wire
  EXPECT_EQ(tight.SendSpace(), 10000);
  EXPECT_TRUE(tight.SendAsync(big, 8000, nullptr));
  sim_.Run();
}

TEST_F(NetTest, RecvBufferOverflowDropsDatagrams) {
  UdpSocket src(&cpu_);
  UdpSocket dst(&cpu_, 48 * 1024, /*rcvbuf_bytes=*/2500);
  NetworkLink fast(&sim_, LoopbackParams());
  src.ConnectTo(&dst, &fast);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(src.SendAsync(Payload(std::string(1000, 'x')), 1000, nullptr));
  }
  sim_.Run();  // nobody receives
  EXPECT_EQ(dst.stats().dgrams_received, 2u);  // 2 * 1000 <= 2500
  EXPECT_EQ(dst.stats().dgrams_dropped_rcvbuf, 3u);
  EXPECT_EQ(dst.RecvQueuedBytes(), 2000);
}

TEST_F(NetTest, SendWithoutPeerFails) {
  UdpSocket lonely(&cpu_);
  EXPECT_FALSE(lonely.SendAsync(Payload("x"), 1, nullptr));
}

TEST_F(NetTest, FullDuplexPair) {
  NetworkLink back(&sim_, EthernetParams());
  b_.ConnectTo(&a_, &back);
  std::string at_b;
  std::string at_a;
  a_.SendAsync(Payload("ping"), 4, nullptr);
  b_.RecvAsync(16, [&](BufData d, int64_t n) {
    at_b = AsString(d, n);
    b_.SendAsync(Payload("pong"), 4, nullptr);
  });
  a_.RecvAsync(16, [&](BufData d, int64_t n) { at_a = AsString(d, n); });
  sim_.Run();
  EXPECT_EQ(at_b, "ping");
  EXPECT_EQ(at_a, "pong");
}

TEST_F(NetTest, ArrivalChargesInterruptWork) {
  a_.SendAsync(Payload(std::string(8000, 'z')), 8000, nullptr);
  sim_.Run();
  // Interrupt + protocol + checksum of 8 KB.
  const CostConfig& c = cpu_.costs();
  EXPECT_GE(cpu_.stats().interrupt_work,
            c.interrupt_overhead + c.net_proto_packet + c.ChecksumTime(8000));
}

TEST_F(NetTest, LargeDatagramFragmentsOnWire) {
  const uint64_t frames_before = wire_.stats().frames_sent;
  a_.SendAsync(Payload(std::string(8192, 'q')), 8192, nullptr);
  std::string got;
  b_.RecvAsync(8192, [&](BufData d, int64_t n) { got = AsString(d, n); });
  sim_.Run();
  // One logical datagram on the link...
  EXPECT_EQ(wire_.stats().frames_sent, frames_before + 1);
  EXPECT_EQ(got.size(), 8192u);
  // ...but its wire time covers 6 fragment overheads: > raw payload time.
  EXPECT_GT(wire_.stats().busy_time, TransferTime(8192, wire_.params().bandwidth_bps));
}

TEST_F(NetTest, ReceiverCopyIsStable) {
  // Sender mutates its buffer right after transmission; the receiver must
  // still see the original bytes.
  auto buf = Payload("original!!");
  a_.SendAsync(buf, 10, [&] { std::fill(buf->begin(), buf->end(), 'X'); });
  std::string got;
  b_.RecvAsync(10, [&](BufData d, int64_t n) { got = AsString(d, n); });
  sim_.Run();
  EXPECT_EQ(got, "original!!");
}

TEST_F(NetTest, ThroughputBoundedByWire) {
  // Pump 400 KB through the 10 Mbit/s link with an 8 KB window of one.
  constexpr int kDgrams = 50;
  constexpr int64_t kDgram = 8192;
  int sent = 0;
  std::function<void()> pump = [&] {
    if (++sent <= kDgrams) {
      ASSERT_TRUE(a_.SendAsync(Payload(std::string(kDgram, 'p')), kDgram, pump));
    }
  };
  pump();
  int64_t received = 0;
  std::function<void()> drain = [&] {
    b_.RecvAsync(kDgram, [&](BufData, int64_t n) {
      received += n;
      drain();
    });
  };
  drain();
  sim_.Run();
  EXPECT_EQ(received, kDgrams * kDgram);
  const double rate = static_cast<double>(received) / ToSeconds(sim_.Now());
  EXPECT_GT(rate, 1.0e6);
  EXPECT_LT(rate, 1.25e6);
}


TEST_F(NetTest, ZeroLengthDatagramCarriesEndOfStream) {
  // The repository-wide convention: a zero-length datagram marks the end of
  // a stream (legal UDP).  It must traverse the wire and deliver n == 0.
  ASSERT_TRUE(a_.SendAsync(MakeBufData(), 0, nullptr));
  int64_t got = -1;
  b_.RecvAsync(100, [&](BufData, int64_t n) { got = n; });
  sim_.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b_.stats().dgrams_received, 1u);
}

TEST_F(NetTest, SendSpaceRestoredAfterTransmit) {
  const int64_t before = a_.SendSpace();
  a_.SendAsync(Payload(std::string(4000, 'x')), 4000, nullptr);
  EXPECT_EQ(a_.SendSpace(), before - 4000);
  sim_.Run();
  EXPECT_EQ(a_.SendSpace(), before);
}

TEST_F(NetTest, CancelRecvDropsParkedReadButKeepsQueuedData) {
  EXPECT_FALSE(b_.CancelRecv());  // nothing parked
  bool fired = false;
  ASSERT_TRUE(b_.RecvAsync(100, [&](BufData, int64_t) { fired = true; }));
  EXPECT_TRUE(b_.CancelRecv());
  a_.SendAsync(Payload("kept"), 4, nullptr);
  sim_.Run();
  EXPECT_FALSE(fired);  // the cancelled read never fires
  EXPECT_EQ(b_.RecvQueuedBytes(), 4);  // the datagram stays for a future reader
  std::string got;
  b_.RecvAsync(100, [&](BufData d, int64_t n) { got = AsString(d, n); });
  EXPECT_EQ(got, "kept");
}

TEST(NetBackpressureTest, FullInterfaceRefusalChargesNoCpuAtAnySpeed) {
  // Property (regression for the splice low-water refill): when the
  // interface queue is full, SendAsync must refuse BEFORE paying the UDP
  // output-path charge — a sink retrying off the softclock backpressures at
  // zero CPU cost instead of busy-waiting in disguise.  Holds at every link
  // speed: acceptance is bounded by queue slots, not bandwidth.
  for (const double bps : {1e6 / 8, 10e6 / 8, 100e6 / 8}) {
    Simulator sim;
    CpuSystem cpu(&sim, DecStation5000Costs());
    LinkParams lp = EthernetParams();
    lp.bandwidth_bps = bps;
    lp.tx_queue_frames = 2;
    NetworkLink wire(&sim, lp);
    UdpSocket src(&cpu);
    UdpSocket dst(&cpu);
    src.ConnectTo(&dst, &wire);
    constexpr int kAttempts = 20;
    constexpr int64_t kDgram = 1000;
    int accepted = 0;
    const SimDuration before = cpu.stats().interrupt_work;
    cpu.RunInterrupt(0, [&] {
      for (int i = 0; i < kAttempts; ++i) {
        if (src.SendAsync(Payload(std::string(kDgram, 'x')), kDgram, nullptr)) {
          ++accepted;
        }
      }
    });
    const SimDuration charged = cpu.stats().interrupt_work - before;
    // One frame in flight + two queued, independent of bandwidth (no sim
    // time passes inside the burst).
    EXPECT_EQ(accepted, 3) << "bps=" << bps;
    EXPECT_EQ(src.stats().dgrams_dropped_wire,
              static_cast<uint64_t>(kAttempts - accepted))
        << "bps=" << bps;
    // Every accepted send paid the protocol charge; every refusal paid zero.
    EXPECT_EQ(charged, accepted * cpu.costs().UdpPacketTime(kDgram)) << "bps=" << bps;
    // Backpressure is transient: once the wire drains, sends flow again.
    sim.Run();
    EXPECT_TRUE(wire.HasTxRoom());
    EXPECT_TRUE(src.SendAsync(Payload(std::string(kDgram, 'y')), kDgram, nullptr));
    sim.Run();
    EXPECT_EQ(dst.stats().dgrams_received, 4u) << "bps=" << bps;
  }
}

TEST_F(NetTest, ChecksumCostScalesWithSize) {
  const CostConfig c = DecStation5000Costs();
  EXPECT_GT(c.UdpPacketTime(8192), c.UdpPacketTime(100));
  EXPECT_EQ(c.UdpPacketTime(0), c.net_proto_packet);
}

}  // namespace
}  // namespace ikdp
