// Unit tests for the kernel CPU system: scheduling, priorities, quanta,
// sleep/wakeup, signals, and interrupt-level CPU stealing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/kern/process.h"
#include "src/sim/callout.h"
#include "src/sim/krace.h"
#include "src/sim/simulator.h"

namespace ikdp {
namespace {

// Costs with zeroed overheads make timing arithmetic exact in tests that are
// about scheduling structure rather than cost accounting.
CostConfig ZeroCosts() {
  CostConfig c;
  c.context_switch = 0;
  c.syscall_overhead = 0;
  c.interrupt_overhead = 0;
  c.quantum = Milliseconds(100);
  return c;
}

class CpuTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(CpuTest, SingleProcessRunsToCompletion) {
  CpuSystem cpu(&sim_, ZeroCosts());
  SimTime finished = -1;
  cpu.Spawn("solo", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(7));
    finished = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(finished, Milliseconds(7));
  EXPECT_EQ(cpu.alive(), 0);
  EXPECT_EQ(cpu.stats().process_work, Milliseconds(7));
}

TEST_F(CpuTest, ContextSwitchCostDelaysFirstBurst) {
  CostConfig costs = ZeroCosts();
  costs.context_switch = Microseconds(200);
  CpuSystem cpu(&sim_, costs);
  SimTime finished = -1;
  cpu.Spawn("solo", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(1));
    finished = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(finished, Microseconds(200) + Milliseconds(1));
  EXPECT_EQ(cpu.stats().context_switch, Microseconds(200));
}

TEST_F(CpuTest, EqualPriorityProcessesRoundRobin) {
  CpuSystem cpu(&sim_, ZeroCosts());
  std::vector<std::pair<int, SimTime>> finishes;
  for (int i = 0; i < 2; ++i) {
    cpu.Spawn("worker", [&, i](Process& p) -> Task<> {
      co_await cpu.Use(p, Milliseconds(250));
      finishes.emplace_back(i, sim_.Now());
    });
  }
  sim_.Run();
  ASSERT_EQ(finishes.size(), 2u);
  // With a 100 ms quantum: A runs [0,100), B [100,200), A [200,300), B
  // [300,400), A [400,450) done at 450, B [450,500) done at 500.
  EXPECT_EQ(finishes[0], (std::pair<int, SimTime>{0, Milliseconds(450)}));
  EXPECT_EQ(finishes[1], (std::pair<int, SimTime>{1, Milliseconds(500)}));
}

TEST_F(CpuTest, LoneProcessKeepsCpuAcrossQuanta) {
  CpuSystem cpu(&sim_, ZeroCosts());
  SimTime finished = -1;
  cpu.Spawn("hog", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(350));
    finished = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(finished, Milliseconds(350));
  // No other runnable process: quantum expiry must not charge switches.
  EXPECT_EQ(cpu.stats().switches, 1u);
}

TEST_F(CpuTest, SleepWakeupRoundTrip) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  SimTime woke_at = -1;
  cpu.Spawn("sleeper", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(1));
    co_await cpu.Sleep(p, &chan, kPriBio);
    woke_at = sim_.Now();
  });
  sim_.After(Milliseconds(10), [&] { cpu.Wakeup(&chan); });
  sim_.Run();
  EXPECT_EQ(woke_at, Milliseconds(10));
}

TEST_F(CpuTest, WakeupWithNoSleepersIsNoop) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  cpu.Wakeup(&chan);
  sim_.Run();
  EXPECT_EQ(cpu.stats().switches, 0u);
}

TEST_F(CpuTest, IoBoundPreemptsCpuHogOnWakeup) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  std::vector<SimTime> io_bursts;
  // The I/O-bound process sleeps at kPriBio and does 1 ms of work per wakeup.
  cpu.Spawn("io", [&](Process& p) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await cpu.Sleep(p, &chan, kPriBio);
      co_await cpu.Use(p, Milliseconds(1));
      io_bursts.push_back(sim_.Now());
      p.ResetPriority();
    }
  });
  SimTime hog_done = -1;
  cpu.Spawn("hog", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(50));
    hog_done = sim_.Now();
  });
  // Wake the I/O process mid-hog-burst at 10, 20, 30 ms.
  for (int i = 1; i <= 3; ++i) {
    sim_.After(Milliseconds(10 * i), [&] { cpu.Wakeup(&chan); });
  }
  sim_.Run();
  // Each wakeup preempts the hog immediately and the I/O burst finishes 1 ms
  // later.
  EXPECT_EQ(io_bursts,
            (std::vector<SimTime>{Milliseconds(11), Milliseconds(21), Milliseconds(31)}));
  // The hog's 50 ms of work is delayed by 3 ms of stolen bursts.
  EXPECT_EQ(hog_done, Milliseconds(53));
}

TEST_F(CpuTest, PreemptedProcessResumesAheadOfEqualPeers) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  std::vector<std::string> order;
  // io is spawned first so it is dispatched at t=0 and is already sleeping on
  // the channel when the wakeup fires.
  cpu.Spawn("io", [&](Process& p) -> Task<> {
    co_await cpu.Sleep(p, &chan, kPriBio);
    co_await cpu.Use(p, Milliseconds(1));
    order.push_back("io");
  });
  cpu.Spawn("A", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(30));
    order.push_back("A");
  });
  cpu.Spawn("B", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(30));
    order.push_back("B");
  });
  sim_.After(Milliseconds(5), [&] { cpu.Wakeup(&chan); });
  sim_.Run();
  // A is preempted at 5 ms but must resume before B (front-of-class), so
  // completion order is io, A, B.
  EXPECT_EQ(order, (std::vector<std::string>{"io", "A", "B"}));
}

TEST_F(CpuTest, InterruptStealsFromRunningBurst) {
  CpuSystem cpu(&sim_, ZeroCosts());
  SimTime finished = -1;
  cpu.Spawn("worker", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(10));
    finished = sim_.Now();
  });
  bool handler_ran = false;
  sim_.After(Milliseconds(4), [&] {
    cpu.RunInterrupt(Milliseconds(2), [&] { handler_ran = true; });
  });
  sim_.Run();
  EXPECT_TRUE(handler_ran);
  // 10 ms of work stretched by a 2 ms interrupt.
  EXPECT_EQ(finished, Milliseconds(12));
  EXPECT_EQ(cpu.stats().interrupt_work, Milliseconds(2));
}

TEST_F(CpuTest, ChargeInterruptExtendsTheSteal) {
  CpuSystem cpu(&sim_, ZeroCosts());
  SimTime finished = -1;
  cpu.Spawn("worker", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(10));
    finished = sim_.Now();
  });
  sim_.After(Milliseconds(1), [&] {
    cpu.RunInterrupt(Milliseconds(1), [&] { cpu.ChargeInterrupt(Milliseconds(3)); });
  });
  sim_.Run();
  EXPECT_EQ(finished, Milliseconds(14));
  EXPECT_EQ(cpu.stats().interrupt_work, Milliseconds(4));
}

TEST_F(CpuTest, OverlappingInterruptsSerialize) {
  CpuSystem cpu(&sim_, ZeroCosts());
  std::vector<SimTime> starts;
  sim_.After(Milliseconds(1), [&] {
    cpu.RunInterrupt(Milliseconds(5), [&] { starts.push_back(sim_.Now()); });
    cpu.RunInterrupt(Milliseconds(5), [&] { starts.push_back(sim_.Now()); });
  });
  sim_.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], Milliseconds(1));
  EXPECT_EQ(starts[1], Milliseconds(6));  // begins after the first completes
}

TEST_F(CpuTest, InterruptDuringIdleDelaysNextDispatch) {
  CostConfig costs = ZeroCosts();
  CpuSystem cpu(&sim_, costs);
  int chan = 0;
  SimTime resumed = -1;
  cpu.Spawn("sleeper", [&](Process& p) -> Task<> {
    co_await cpu.Sleep(p, &chan, kPriBio);
    resumed = sim_.Now();
  });
  sim_.After(Milliseconds(5), [&] {
    cpu.RunInterrupt(Milliseconds(3), [&] { cpu.Wakeup(&chan); });
  });
  sim_.Run();
  // The wakeup happens at interrupt entry (t=5) but the CPU is busy with the
  // interrupt until t=8, so the process resumes then.
  EXPECT_EQ(resumed, Milliseconds(8));
}

TEST_F(CpuTest, SignalWakesInterruptibleSleep) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  SimTime woke = -1;
  int handled = 0;
  Process* proc = cpu.Spawn("waiter", [&](Process& p) -> Task<> {
    p.Sigaction(kSigIo, [&] { ++handled; });
    co_await cpu.Sleep(p, &chan, kPriWait, /*interruptible=*/true);
    woke = sim_.Now();
    p.TakeSignals();
  });
  sim_.After(Milliseconds(3), [&] { cpu.Post(*proc, kSigIo); });
  sim_.Run();
  EXPECT_EQ(woke, Milliseconds(3));
  EXPECT_EQ(handled, 1);
}

TEST_F(CpuTest, SignalDoesNotWakeUninterruptibleSleep) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  SimTime woke = -1;
  Process* proc = cpu.Spawn("disksleep", [&](Process& p) -> Task<> {
    co_await cpu.Sleep(p, &chan, kPriBio, /*interruptible=*/false);
    woke = sim_.Now();
  });
  sim_.After(Milliseconds(3), [&] { cpu.Post(*proc, kSigIo); });
  sim_.After(Milliseconds(9), [&] { cpu.Wakeup(&chan); });
  sim_.Run();
  EXPECT_EQ(woke, Milliseconds(9));
  EXPECT_TRUE(proc->SignalPending());
}

TEST_F(CpuTest, PendingSignalMakesInterruptibleSleepImmediate) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  SimTime woke = -1;
  cpu.Spawn("waiter", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(1));
    cpu.Post(p, kSigAlrm);
    co_await cpu.Sleep(p, &chan, kPriWait, /*interruptible=*/true);
    woke = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(woke, Milliseconds(1));
}

TEST_F(CpuTest, CpuTimeAccountingPerProcess) {
  CostConfig costs = ZeroCosts();
  costs.context_switch = Microseconds(100);
  CpuSystem cpu(&sim_, costs);
  Process* a = cpu.Spawn("a", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(150));
  });
  Process* b = cpu.Spawn("b", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Milliseconds(70));
  });
  sim_.Run();
  EXPECT_EQ(a->stats().cpu_time, Milliseconds(150));
  EXPECT_EQ(b->stats().cpu_time, Milliseconds(70));
  EXPECT_EQ(cpu.stats().process_work, Milliseconds(220));
  // Total elapsed = work + all switch costs.
  EXPECT_EQ(sim_.Now(), Milliseconds(220) +
                            static_cast<SimDuration>(cpu.stats().switches) * Microseconds(100));
}

TEST_F(CpuTest, ZeroWorkUseCompletesAndChecksPreemption) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int steps = 0;
  cpu.Spawn("nop", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, 0);
    ++steps;
    co_await cpu.Use(p, 0);
    ++steps;
  });
  sim_.Run();
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(sim_.Now(), 0);
}

TEST_F(CpuTest, ManyProcessesFairShare) {
  CpuSystem cpu(&sim_, ZeroCosts());
  constexpr int kProcs = 5;
  std::vector<SimTime> finish(kProcs, -1);
  for (int i = 0; i < kProcs; ++i) {
    cpu.Spawn("p", [&, i](Process& p) -> Task<> {
      co_await cpu.Use(p, Milliseconds(200));
      finish[i] = sim_.Now();
    });
  }
  sim_.Run();
  // All finish within the last kProcs quanta of the 1-second total.
  for (int i = 0; i < kProcs; ++i) {
    EXPECT_GT(finish[i], Milliseconds(1000) - kProcs * Milliseconds(100));
    EXPECT_LE(finish[i], Milliseconds(1000));
  }
  EXPECT_EQ(sim_.Now(), Milliseconds(1000));
}

// The shape of the paper's Table 1 experiment in miniature: a CPU-bound test
// program contends with an I/O-bound process that periodically steals the
// CPU at high priority.  The test program's progress rate must drop by
// roughly the I/O process's CPU share.
TEST_F(CpuTest, CpuAvailabilityShape) {
  CpuSystem cpu(&sim_, ZeroCosts());
  int chan = 0;
  int64_t ops = 0;
  // io first, so it reaches its sleep before the first wakeup tick.
  cpu.Spawn("io", [&](Process& p) -> Task<> {
    for (;;) {
      co_await cpu.Sleep(p, &chan, kPriBio);
      co_await cpu.Use(p, Milliseconds(4));  // 40% of CPU
      p.ResetPriority();
    }
  });
  cpu.Spawn("test", [&](Process& p) -> Task<> {
    for (;;) {
      co_await cpu.Use(p, Milliseconds(1));
      ++ops;
    }
  });
  // Wake the I/O process every 10 ms.
  std::function<void()> tick = [&] {
    cpu.Wakeup(&chan);
    sim_.After(Milliseconds(10), tick);
  };
  sim_.After(Milliseconds(10), tick);
  sim_.RunUntil(Seconds(10));
  // Test program should get ~60% of the CPU: 6000 ops out of 10000.
  EXPECT_NEAR(static_cast<double>(ops), 6000.0, 100.0);
}


// --- 4.3BSD priority decay (opt-in) ---

CostConfig DecayCosts() {
  CostConfig c;
  c.context_switch = 0;
  c.syscall_overhead = 0;
  c.interrupt_overhead = 0;
  c.quantum = Milliseconds(100);
  c.priority_decay = true;
  return c;
}

TEST_F(CpuTest, DecayPenalizesCpuHog) {
  CpuSystem cpu(&sim_, DecayCosts());
  Process* hog = cpu.Spawn("hog", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Seconds(5));
  });
  sim_.RunUntil(Seconds(3));
  EXPECT_GT(hog->cpu_estimate(), 0.5);
  EXPECT_GT(hog->decay_penalty(), 5);
  sim_.Run();
}

TEST_F(CpuTest, FreshProcessOutranksPenalizedHog) {
  CpuSystem cpu(&sim_, DecayCosts());
  cpu.Spawn("hog", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Seconds(20));
  });
  // Let the hog accumulate penalty, then start a sprinter.
  SimTime sprint_done = -1;
  SimTime sprint_start = -1;
  sim_.After(Seconds(3), [&] {
    sprint_start = sim_.Now();
    cpu.Spawn("sprinter", [&](Process& p) -> Task<> {
      co_await cpu.Use(p, Milliseconds(500));
      sprint_done = sim_.Now();
    });
  });
  sim_.Run();
  // With the hog penalized, the sprinter gets (nearly) the whole CPU: well
  // under the 1 s a fair 50/50 share would take.
  EXPECT_GT(sprint_done, 0);
  EXPECT_LT(sprint_done - sprint_start, Milliseconds(800));
}

TEST_F(CpuTest, WithoutDecaySprinterTimeshares) {
  CpuSystem cpu(&sim_, ZeroCosts());  // decay off
  cpu.Spawn("hog", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Seconds(20));
  });
  SimTime sprint_done = -1;
  SimTime sprint_start = -1;
  sim_.After(Seconds(3), [&] {
    sprint_start = sim_.Now();
    cpu.Spawn("sprinter", [&](Process& p) -> Task<> {
      co_await cpu.Use(p, Milliseconds(500));
      sprint_done = sim_.Now();
    });
  });
  sim_.Run();
  // Fair round-robin: the 500 ms of work takes ~1 s of wall time.
  EXPECT_GE(sprint_done - sprint_start, Milliseconds(900));
}

TEST_F(CpuTest, DecayEstimateFadesWhenIdle) {
  CpuSystem cpu(&sim_, DecayCosts());
  int chan = 0;
  Process* proc = cpu.Spawn("burst-then-idle", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Seconds(2));
    co_await cpu.Sleep(p, &chan, kPriWait);
  });
  sim_.RunUntil(Seconds(3));
  const double peak = proc->cpu_estimate();
  EXPECT_GT(peak, 0.2);
  sim_.RunUntil(Seconds(10));
  EXPECT_LT(proc->cpu_estimate(), peak / 4);
  cpu.Wakeup(&chan);
  sim_.Run();
}

TEST_F(CpuTest, KernelSleepPriorityUnaffectedByDecay) {
  CpuSystem cpu(&sim_, DecayCosts());
  int chan = 0;
  // A process that has burned CPU still wakes from a disk sleep at kPriBio.
  Process* proc = cpu.Spawn("mixed", [&](Process& p) -> Task<> {
    co_await cpu.Use(p, Seconds(3));
    co_await cpu.Sleep(p, &chan, kPriBio);
    EXPECT_EQ(p.priority(), kPriBio);
    p.ResetPriority();
    EXPECT_GE(p.priority(), kPriUser);  // penalty applies only at user level
  });
  sim_.After(Seconds(4), [&] { cpu.Wakeup(&chan); });
  sim_.Run();
  EXPECT_TRUE(proc->dead());
}

// --- same-timestamp callout vs. interrupt ordering under krace ---
//
// The callout table's softclock tick and a device interrupt can land on the
// same simulated instant; whether their accesses to one field are a race
// depends entirely on whether a causality edge connects them.  These tests
// pin both directions at the kern layer (the detector's own unit tests live
// in tests/krace_test.cc).

class CpuKraceTest : public CpuTest {
 protected:
  void SetUp() override {
    saved_mode_ = Krace().mode();
    Krace().SetMode(KraceDetector::Mode::kCollect);
  }
  void TearDown() override { Krace().SetMode(saved_mode_); }
  KraceDetector::Mode saved_mode_ = KraceDetector::Mode::kOff;
};

TEST_F(CpuKraceTest, UnrelatedSameTimestampCalloutAndInterruptRace) {
  // Find the instant the first callout tick fires (hz-dependent).
  SimTime fire = -1;
  {
    Simulator probe_sim;
    CalloutTable probe(&probe_sim, /*hz=*/256);
    probe.Timeout([&] { fire = probe_sim.Now(); }, 1);
    probe_sim.Run();
  }
  ASSERT_GT(fire, 0);

  // A softclock write and an interrupt-level write at that same instant
  // with NO edge between them: a legal tie-break permutation swaps them.
  CpuSystem cpu(&sim_, ZeroCosts());
  CalloutTable callouts(&sim_, /*hz=*/256);
  int field = 0;
  callouts.Timeout([&] { IKDP_KRACE_WRITE(&field, "CpuKrace::field"); }, 1);
  sim_.At(fire, [&] {
    cpu.RunInterrupt(Microseconds(10),
                     [&] { IKDP_KRACE_WRITE(&field, "CpuKrace::field"); });
  });
  sim_.Run();
  EXPECT_EQ(Krace().races().size(), 1u);
  if (!Krace().races().empty()) {
    // The report names both contexts, not just both events.
    const std::string desc = Krace().races()[0].Describe();
    EXPECT_NE(desc.find("softclock"), std::string::npos) << desc;
    EXPECT_NE(desc.find("interrupt"), std::string::npos) << desc;
  }
}

TEST_F(CpuKraceTest, InterruptRaisedByCalloutBodyIsOrdered) {
  // The biodone shape: softclock work raises the interrupt itself, so the
  // interrupt body is a causal descendant of the tick — same field, same
  // instant, no race.
  CpuSystem cpu(&sim_, ZeroCosts());
  CalloutTable callouts(&sim_, /*hz=*/256);
  int field = 0;
  bool interrupt_ran = false;
  callouts.Timeout(
      [&] {
        IKDP_KRACE_WRITE(&field, "CpuKrace::field");
        cpu.RunInterrupt(Microseconds(10), [&] {
          IKDP_KRACE_WRITE(&field, "CpuKrace::field");
          interrupt_ran = true;
        });
      },
      1);
  sim_.Run();
  EXPECT_TRUE(interrupt_ran);
  EXPECT_TRUE(Krace().races().empty())
      << Krace().races()[0].Describe();
}

}  // namespace
}  // namespace ikdp
