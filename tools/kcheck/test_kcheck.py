#!/usr/bin/env python3
"""Self-test for kcheck: each rule class must reject its seeded fixture,
the clean fixture must pass, and the real tree must be clean.

Run from the repo root (ctest does):  python3 tools/kcheck/test_kcheck.py
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
KCHECK = os.path.join(HERE, "kcheck.py")
TESTDATA = os.path.join(HERE, "testdata")
REPO = os.path.dirname(os.path.dirname(HERE))


def run_kcheck(*args):
    proc = subprocess.run(
        [sys.executable, KCHECK, "--json"] + list(args),
        capture_output=True, text=True, cwd=REPO)
    if proc.returncode == 2:
        raise RuntimeError("kcheck usage error: %s" % proc.stderr)
    return proc.returncode, json.loads(proc.stdout)


def fixture(name):
    return os.path.join(TESTDATA, name)


class FixtureRejection(unittest.TestCase):
    """Each seeded-violation fixture must produce its rule's finding."""

    def assert_rule(self, findings, rule, substr):
        hits = [f for f in findings if f["rule"] == rule]
        self.assertTrue(hits, "expected a %s finding, got: %s" % (rule, findings))
        self.assertTrue(any(substr in f["message"] for f in hits),
                        "no %s finding mentions %r: %s" % (rule, substr, hits))

    def test_interrupt_sleep(self):
        rc, findings = run_kcheck(fixture("bad_interrupt_sleep.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "interrupt-sleep", "CpuSystem::Sleep")
        # The report must show the full call chain through the unannotated
        # intermediary, not just the endpoint.
        self.assert_rule(findings, "interrupt-sleep", "HandlePacket")

    def test_undominated_charge(self):
        rc, findings = run_kcheck(fixture("bad_charge.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "undominated-charge", "Meter::Account")
        # The dominated and annotated call sites must NOT be flagged.
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Tally", msgs)
        self.assertNotIn("IrqMeter", msgs)

    def test_buf_flags(self):
        rc, findings = run_kcheck(fixture("bad_buf_flags.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "buf-double-release", "DoubleRelease")
        self.assert_rule(findings, "buf-release-unowned", "stray")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("ReleaseTwiceLegit", msgs)
        self.assertNotIn("BranchExclusive", msgs)

    def test_guard_violation(self):
        rc, findings = run_kcheck(fixture("bad_guard.cc"))
        self.assertEqual(rc, 1)
        # Bare access from the wrong context.
        self.assert_rule(findings, "guard-violation", "user_bytes_")
        # ANY accessor vs a narrower guard set.
        self.assert_rule(findings, "guard-violation", "Anywhere")
        # Receiver-qualified access resolved through the member-type table.
        self.assert_rule(findings, "guard-violation", "Watcher::Poll")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Syscall", "Tick", "Helper", "shared_"):
            self.assertNotIn(quiet, msgs)

    def test_annotation_mismatch(self):
        rc, findings = run_kcheck(fixture("bad_annotation_mismatch.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "annotation-mismatch", "Pump::Drain")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fill", msgs)
        self.assertNotIn("Stop", msgs)

    def test_unknown_order_channel(self):
        rc, findings = run_kcheck(fixture("bad_data_annotations.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "unknown-order-channel", "mailbox")
        self.assert_rule(findings, "unknown-order-channel", "hypervisor")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("posted_", msgs)
        self.assertNotIn("count_", msgs)

    def test_stale_waiver(self):
        rc, findings = run_kcheck(fixture("bad_stale_waiver.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "stale-waiver", "undominated-charge")
        self.assert_rule(findings, "stale-waiver", "unknown rule")

    def test_annotation_conflict(self):
        rc, findings = run_kcheck(fixture("bad_annotation_conflict.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "annotation-conflict", "Pump::Drain")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fill", msgs)

    def test_double_acquire(self):
        rc, findings = run_kcheck(fixture("bad_double_acquire.cc"))
        self.assertEqual(rc, 1)
        # Direct re-acquire, closure through a helper, and EXCLUDES breach.
        self.assert_rule(findings, "double-acquire", "Dev::Twice")
        self.assert_rule(findings, "double-acquire", "Dev::Locked")
        self.assert_rule(findings, "double-acquire", "IKDP_EXCLUDES(devq)")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fine", msgs)
        self.assertNotIn("AlsoCallsUnlocked", msgs)

    def test_sleep_under_spinlock(self):
        rc, findings = run_kcheck(fixture("bad_sleep_under_spinlock.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "sleep-under-spinlock", "Net::Direct")
        self.assert_rule(findings, "sleep-under-spinlock", "Net::Indirect")
        self.assert_rule(findings, "sleep-under-spinlock", "co_await")
        self.assert_rule(findings, "sleep-under-spinlock", "SleepLock 'gate'")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Signals", msgs)

    def test_lock_order_cycle(self):
        rc, findings = run_kcheck(fixture("bad_lock_order_cycle.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "lock-order-cycle",
                         "ranks must strictly increase")
        self.assert_rule(findings, "lock-order-cycle", "cycle between")
        self.assert_rule(findings, "lock-order-cycle", "redeclared with rank")
        # AB follows the declared order; only BA and the redeclaration are
        # at fault.
        for f in findings:
            self.assertNotIn("Sys::AB acquires", f["message"])

    def test_unreleased_lock(self):
        rc, findings = run_kcheck(fixture("bad_unreleased_lock.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "unreleased-lock", "Q::Leak")
        self.assert_rule(findings, "unreleased-lock", "Q::ForgetsEnd")
        self.assert_rule(findings, "unreleased-lock", "lambda body")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Q::Begin", "Q::End ", "Balanced", "GuardScope"):
            self.assertNotIn(quiet, msgs)

    def test_lock_guard_violation(self):
        rc, findings = run_kcheck(fixture("bad_lock_guard.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "lock-guard-violation", "Ring::Peek")
        self.assert_rule(findings, "lock-guard-violation", "Probe::Steal")
        self.assert_rule(findings, "lock-guard-violation", "phantom")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Push", "HeldHelper", "Drive", "Channel"):
            self.assertNotIn(quiet, msgs)

    def test_clean_fixture(self):
        rc, findings = run_kcheck(fixture("good_clean.cc"))
        self.assertEqual(rc, 0)
        self.assertEqual(findings, [])

    def test_fixture_completeness(self):
        # Every rule kcheck knows must be exercised by some seeded fixture:
        # a rule nobody can trigger is dead weight or, worse, silently broken.
        sys.path.insert(0, HERE)
        try:
            import kcheck as mod
        finally:
            sys.path.pop(0)
        produced = set()
        for name in sorted(os.listdir(TESTDATA)):
            if not name.startswith("bad_") or not name.endswith(".cc"):
                continue
            _, findings = run_kcheck(fixture(name))
            produced.update(f["rule"] for f in findings)
        missing = mod.KNOWN_RULES - produced
        self.assertFalse(
            missing,
            "rules with no fixture coverage: %s" % ", ".join(sorted(missing)))

    def test_github_output(self):
        proc = subprocess.run(
            [sys.executable, KCHECK, "--github", fixture("bad_guard.cc")],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 1)
        lines = proc.stdout.splitlines()
        annotations = [l for l in lines if l.startswith("::error ")]
        self.assertTrue(annotations, proc.stdout)
        for a in annotations:
            self.assertRegex(
                a, r"^::error file=\S+,line=\d+,title=kcheck [\w-]+::")
        self.assertIn("guard-violation", annotations[0])
        # The summary line carries the findings count.
        self.assertRegex(lines[-1], r"^kcheck: \d+ finding\(s\)")

    def test_waiver_suppresses(self):
        # A `kcheck: allow(<rule>)` comment on the offending line silences it.
        import tempfile
        with open(fixture("bad_charge.cc")) as f:
            src = f.read()
        src = src.replace("cpu_->ChargeInterrupt(cycles);\n  }\n\n  // OK",
                          "cpu_->ChargeInterrupt(cycles);"
                          "  // kcheck: allow(undominated-charge)\n  }\n\n  // OK")
        self.assertIn("kcheck: allow", src)
        with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as f:
            f.write(src)
            path = f.name
        try:
            rc, findings = run_kcheck(path)
        finally:
            os.unlink(path)
        self.assertEqual(rc, 0, findings)


class TreeIsClean(unittest.TestCase):
    """The real source tree must satisfy every rule."""

    def test_src_tree(self):
        rc, findings = run_kcheck("--root", "src")
        self.assertEqual(rc, 0,
                         "kcheck found violations in src/:\n%s"
                         % "\n".join("%s:%s [%s] %s" % (f["file"], f["line"],
                                                        f["rule"], f["message"])
                                     for f in findings))

    def test_annotations_parsed(self):
        # Guard against the silent-parser failure mode: a clean run must be
        # clean because the contracts hold, not because nothing was parsed.
        proc = subprocess.run(
            [sys.executable, KCHECK, "--root", "src", "--list-functions"],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        lines = proc.stdout.splitlines()
        annotated = [l for l in lines if " process " in l or " interrupt " in l
                     or " softclock " in l or " any " in l]
        self.assertGreater(len(lines), 300, "function database too small")
        self.assertGreater(len(annotated), 80,
                           "too few annotated functions parsed — frontend "
                           "regression?")
        # Spot-check load-bearing contract entries.
        joined = "\n".join(annotated)
        for expect in ("CpuSystem::Sleep", "CpuSystem::ChargeInterrupt",
                       "CalloutTable::RunTick", "SpliceRing::Reap",
                       "BufferCache::Brelse"):
            self.assertIn(expect, joined)


if __name__ == "__main__":
    unittest.main()
