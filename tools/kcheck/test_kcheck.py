#!/usr/bin/env python3
"""Self-test for kcheck: each rule class must reject its seeded fixture,
the clean fixture must pass, and the real tree must be clean.

Run from the repo root (ctest does):  python3 tools/kcheck/test_kcheck.py
"""

import contextlib
import io
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
KCHECK = os.path.join(HERE, "kcheck.py")
TESTDATA = os.path.join(HERE, "testdata")
REPO = os.path.dirname(os.path.dirname(HERE))


def run_kcheck(*args):
    proc = subprocess.run(
        [sys.executable, KCHECK, "--json"] + list(args),
        capture_output=True, text=True, cwd=REPO)
    if proc.returncode == 2:
        raise RuntimeError("kcheck usage error: %s" % proc.stderr)
    return proc.returncode, json.loads(proc.stdout)


def fixture(name):
    return os.path.join(TESTDATA, name)


class FixtureRejection(unittest.TestCase):
    """Each seeded-violation fixture must produce its rule's finding."""

    def assert_rule(self, findings, rule, substr):
        hits = [f for f in findings if f["rule"] == rule]
        self.assertTrue(hits, "expected a %s finding, got: %s" % (rule, findings))
        self.assertTrue(any(substr in f["message"] for f in hits),
                        "no %s finding mentions %r: %s" % (rule, substr, hits))

    def test_interrupt_sleep(self):
        rc, findings = run_kcheck(fixture("bad_interrupt_sleep.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "interrupt-sleep", "CpuSystem::Sleep")
        # The report must show the full call chain through the unannotated
        # intermediary, not just the endpoint.
        self.assert_rule(findings, "interrupt-sleep", "HandlePacket")

    def test_undominated_charge(self):
        rc, findings = run_kcheck(fixture("bad_charge.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "undominated-charge", "Meter::Account")
        # The dominated and annotated call sites must NOT be flagged.
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Tally", msgs)
        self.assertNotIn("IrqMeter", msgs)

    def test_buf_flags(self):
        rc, findings = run_kcheck(fixture("bad_buf_flags.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "buf-double-release", "DoubleRelease")
        self.assert_rule(findings, "buf-release-unowned", "stray")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("ReleaseTwiceLegit", msgs)
        self.assertNotIn("BranchExclusive", msgs)

    def test_guard_violation(self):
        rc, findings = run_kcheck(fixture("bad_guard.cc"))
        self.assertEqual(rc, 1)
        # Bare access from the wrong context.
        self.assert_rule(findings, "guard-violation", "user_bytes_")
        # ANY accessor vs a narrower guard set.
        self.assert_rule(findings, "guard-violation", "Anywhere")
        # Receiver-qualified access resolved through the member-type table.
        self.assert_rule(findings, "guard-violation", "Watcher::Poll")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Syscall", "Tick", "Helper", "shared_"):
            self.assertNotIn(quiet, msgs)

    def test_annotation_mismatch(self):
        rc, findings = run_kcheck(fixture("bad_annotation_mismatch.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "annotation-mismatch", "Pump::Drain")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fill", msgs)
        self.assertNotIn("Stop", msgs)

    def test_unknown_order_channel(self):
        rc, findings = run_kcheck(fixture("bad_data_annotations.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "unknown-order-channel", "mailbox")
        self.assert_rule(findings, "unknown-order-channel", "hypervisor")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("posted_", msgs)
        self.assertNotIn("count_", msgs)

    def test_stale_waiver(self):
        rc, findings = run_kcheck(fixture("bad_stale_waiver.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "stale-waiver", "undominated-charge")
        self.assert_rule(findings, "stale-waiver", "unknown rule")

    def test_annotation_conflict(self):
        rc, findings = run_kcheck(fixture("bad_annotation_conflict.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "annotation-conflict", "Pump::Drain")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fill", msgs)

    def test_double_acquire(self):
        rc, findings = run_kcheck(fixture("bad_double_acquire.cc"))
        self.assertEqual(rc, 1)
        # Direct re-acquire, closure through a helper, and EXCLUDES breach.
        self.assert_rule(findings, "double-acquire", "Dev::Twice")
        self.assert_rule(findings, "double-acquire", "Dev::Locked")
        self.assert_rule(findings, "double-acquire", "IKDP_EXCLUDES(devq)")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Fine", msgs)
        self.assertNotIn("AlsoCallsUnlocked", msgs)

    def test_sleep_under_spinlock(self):
        rc, findings = run_kcheck(fixture("bad_sleep_under_spinlock.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "sleep-under-spinlock", "Net::Direct")
        self.assert_rule(findings, "sleep-under-spinlock", "Net::Indirect")
        self.assert_rule(findings, "sleep-under-spinlock", "co_await")
        self.assert_rule(findings, "sleep-under-spinlock", "SleepLock 'gate'")
        msgs = " ".join(f["message"] for f in findings)
        self.assertNotIn("Signals", msgs)

    def test_lock_order_cycle(self):
        rc, findings = run_kcheck(fixture("bad_lock_order_cycle.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "lock-order-cycle",
                         "ranks must strictly increase")
        self.assert_rule(findings, "lock-order-cycle", "cycle between")
        self.assert_rule(findings, "lock-order-cycle", "redeclared with rank")
        # Pair: the declared IKDP_ACQUIRED_AFTER order contradicts the ranks.
        self.assert_rule(findings, "lock-order-cycle",
                         "declared IKDP_ACQUIRED_AFTER")
        # AB follows the declared order (and b_'s IKDP_ACQUIRED_AFTER(a_)
        # agrees with the ranks); only BA and the declarations are at fault.
        for f in findings:
            self.assertNotIn("Sys::AB acquires", f["message"])
            self.assertNotIn("'beta' (rank 20) declared", f["message"])

    def test_requires_contract(self):
        rc, findings = run_kcheck(fixture("bad_requires.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "lock-guard-violation",
                         "IKDP_REQUIRES(tbl)")
        self.assert_rule(findings, "lock-guard-violation", "Tbl::Careless")
        # The helper's own guarded read rides the declared contract even
        # though one caller is lock-free (the caller intersection alone
        # would be empty here).
        for f in findings:
            self.assertNotIn("accesses Tbl::n_", f["message"])
            self.assertNotIn("Tbl::Size ", f["message"])

    def test_unreleased_lock(self):
        rc, findings = run_kcheck(fixture("bad_unreleased_lock.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "unreleased-lock", "Q::Leak")
        self.assert_rule(findings, "unreleased-lock", "Q::ForgetsEnd")
        self.assert_rule(findings, "unreleased-lock", "lambda body")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Q::Begin", "Q::End ", "Balanced", "GuardScope"):
            self.assertNotIn(quiet, msgs)

    def test_lock_guard_violation(self):
        rc, findings = run_kcheck(fixture("bad_lock_guard.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "lock-guard-violation", "Ring::Peek")
        self.assert_rule(findings, "lock-guard-violation", "Probe::Steal")
        self.assert_rule(findings, "lock-guard-violation", "phantom")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Push", "HeldHelper", "Drive", "Channel"):
            self.assertNotIn(quiet, msgs)

    def test_errno_clobber(self):
        rc, findings = run_kcheck(fixture("bad_errno_clobber.cc"))
        self.assertEqual(rc, 1)
        # Unconditional overwrite after the guarded first store.
        self.assert_rule(findings, "errno-clobber", "Chan::WriteDone")
        # Store on the proven-nonzero edge.
        self.assert_rule(findings, "errno-clobber", "Chan::Cancel")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("ReadDone", "Reset", "Retry"):
            self.assertNotIn(quiet, msgs)

    def test_discarded_failure(self):
        rc, findings = run_kcheck(fixture("bad_discarded_failure.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "discarded-failure", "Pipe::Flush")
        # The may-fail summary must follow the propagating wrapper.
        self.assert_rule(findings, "discarded-failure", "Disk::SubmitFirst")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Close", "Checked", "Forward", "Tick"):
            self.assertNotIn(quiet, msgs)

    def test_resource_leak(self):
        rc, findings = run_kcheck(fixture("bad_resource_leak.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "resource-leak-on-error-path",
                         "Fs::ReadMeta")
        # The acquires-resource summary must follow the wrapper.
        self.assert_rule(findings, "resource-leak-on-error-path",
                         "Fs::CopyOut")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("ReadData", "FailFast", "Handoff", "Steal"):
            self.assertNotIn(quiet, msgs)

    def test_charge_context_mismatch(self):
        rc, findings = run_kcheck(fixture("bad_charge_context.cc"))
        self.assertEqual(rc, 1)
        self.assert_rule(findings, "charge-context-mismatch", "Acct::Settle")
        # Interrupt-side bucket literal on the unproven arm only.
        self.assert_rule(findings, "charge-context-mismatch",
                         "ChargeBucket::kInterrupt")
        # Process-side bucket from softclock context.
        self.assert_rule(findings, "charge-context-mismatch", "Acct::Replay")
        msgs = " ".join(f["message"] for f in findings)
        for quiet in ("Split", "Direct", "Book", "kKopInterrupt"):
            self.assertNotIn(quiet, msgs)

    def test_clean_fixture(self):
        rc, findings = run_kcheck(fixture("good_clean.cc"))
        self.assertEqual(rc, 0)
        self.assertEqual(findings, [])

    def test_multiline_heads_listed(self):
        # Regression: a function-like #define directly before a function
        # whose return type sits on its own line used to swallow that
        # function — the directive merged into the declaration head and the
        # balanced-paren scan took the macro's parameter list — so both
        # --list-functions and the findings-count summary undercounted.
        rc, findings = run_kcheck(fixture("good_multiline_heads.cc"))
        self.assertEqual(rc, 0)
        self.assertEqual(findings, [])
        proc = subprocess.run(
            [sys.executable, KCHECK, "--list-functions",
             fixture("good_multiline_heads.cc")],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for qname in ("AfterMacro",
                      "MultiLine::InClass",
                      "MultiLine::OutOfLine"):
            self.assertIn(qname, proc.stdout)
        # The macro itself must NOT be recorded as a function.
        self.assertNotIn("CHECK", proc.stdout)

    def test_fixture_completeness(self):
        # Every rule kcheck knows must be exercised by some seeded fixture:
        # a rule nobody can trigger is dead weight or, worse, silently broken.
        sys.path.insert(0, HERE)
        try:
            import kcheck as mod
        finally:
            sys.path.pop(0)
        produced = set()
        for name in sorted(os.listdir(TESTDATA)):
            if not name.startswith("bad_") or not name.endswith(".cc"):
                continue
            _, findings = run_kcheck(fixture(name))
            produced.update(f["rule"] for f in findings)
        missing = mod.KNOWN_RULES - produced
        self.assertFalse(
            missing,
            "rules with no fixture coverage: %s" % ", ".join(sorted(missing)))

    def test_github_output(self):
        proc = subprocess.run(
            [sys.executable, KCHECK, "--github", fixture("bad_guard.cc")],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 1)
        lines = proc.stdout.splitlines()
        annotations = [l for l in lines if l.startswith("::error ")]
        self.assertTrue(annotations, proc.stdout)
        for a in annotations:
            self.assertRegex(
                a, r"^::error file=\S+,line=\d+,title=kcheck [\w-]+::")
        self.assertIn("guard-violation", annotations[0])
        # The summary line carries the findings count.
        self.assertRegex(lines[-1], r"^kcheck: \d+ finding\(s\)")

    def test_waiver_suppresses(self):
        # A `kcheck: allow(<rule>)` comment on the offending line silences it.
        import tempfile
        with open(fixture("bad_charge.cc")) as f:
            src = f.read()
        src = src.replace("cpu_->ChargeInterrupt(cycles);\n  }\n\n  // OK",
                          "cpu_->ChargeInterrupt(cycles);"
                          "  // kcheck: allow(undominated-charge)\n  }\n\n  // OK")
        self.assertIn("kcheck: allow", src)
        with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as f:
            f.write(src)
            path = f.name
        try:
            rc, findings = run_kcheck(path)
        finally:
            os.unlink(path)
        self.assertEqual(rc, 0, findings)


    def test_waiver_suppresses_kpath_rules(self):
        # Every kpath rule family — and the new lock-contract checks
        # (IKDP_REQUIRES, IKDP_ACQUIRED_AFTER) — honours
        # `kcheck: allow(<rule>)` on the offending line: waiving each
        # reported line empties the run.
        import tempfile
        for name in ("bad_errno_clobber.cc", "bad_discarded_failure.cc",
                     "bad_resource_leak.cc", "bad_charge_context.cc",
                     "bad_requires.cc", "bad_lock_order_cycle.cc"):
            with self.subTest(fixture=name):
                rc, findings = run_kcheck(fixture(name))
                self.assertEqual(rc, 1)
                with open(fixture(name)) as f:
                    lines = f.read().split("\n")
                for fd in findings:
                    lines[fd["line"] - 1] += \
                        "  // kcheck: allow(%s)" % fd["rule"]
                with tempfile.NamedTemporaryFile(
                        "w", suffix=".cc", delete=False) as f:
                    f.write("\n".join(lines))
                    path = f.name
                try:
                    rc, findings = run_kcheck(path)
                finally:
                    os.unlink(path)
                self.assertEqual(rc, 0, findings)


class SarifOutput(unittest.TestCase):
    """--sarif: a SARIF 2.1.0 document CI can upload to code scanning."""

    def _sarif(self, name):
        proc = subprocess.run(
            [sys.executable, KCHECK, "--sarif", fixture(name)],
            capture_output=True, text=True, cwd=REPO)
        return proc.returncode, json.loads(proc.stdout)

    def test_document_validates(self):
        rc, doc = self._sarif("bad_guard.cc")
        self.assertEqual(rc, 1)
        # Validate against the vendored schema subset (offline; fetching the
        # full OASIS schema would need network access).
        with open(os.path.join(HERE, "sarif-2.1.0-subset.schema.json")) as f:
            schema = json.load(f)
        try:
            import jsonschema
        except ImportError:
            jsonschema = None
        if jsonschema is not None:
            jsonschema.validate(doc, schema)
        # Structural assertions that hold with or without jsonschema.
        self.assertEqual(doc["version"], "2.1.0")
        self.assertTrue(doc["$schema"].endswith("sarif-schema-2.1.0.json"))
        self.assertEqual(len(doc["runs"]), 1)
        driver = doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "kcheck")
        ids = [r["id"] for r in driver["rules"]]
        self.assertEqual(len(ids), len(set(ids)), "duplicate rule ids")
        results = doc["runs"][0]["results"]
        self.assertTrue(results)
        for res in results:
            self.assertEqual(ids[res["ruleIndex"]], res["ruleId"])
            self.assertEqual(res["level"], "error")
            self.assertTrue(res["message"]["text"])
            loc = res["locations"][0]["physicalLocation"]
            self.assertTrue(
                loc["artifactLocation"]["uri"].endswith("bad_guard.cc"))
            self.assertNotIn("\\", loc["artifactLocation"]["uri"])
            self.assertGreaterEqual(loc["region"]["startLine"], 1)

    def test_clean_run_has_empty_results(self):
        rc, doc = self._sarif("good_clean.cc")
        self.assertEqual(rc, 0)
        self.assertEqual(doc["runs"][0]["results"], [])
        # The rule table is still complete: stable ruleIndex across runs.
        self.assertGreater(len(doc["runs"][0]["tool"]["driver"]["rules"]), 10)


class IncrementalCache(unittest.TestCase):
    """--cache / --changed-only: identical findings cold, warm, and after
    invalidation — and a real speedup on the warm path."""

    @staticmethod
    def _run_inproc(argv):
        # In-process so the timing compares the analysis, not interpreter
        # start-up (which dwarfs the warm path from a subprocess).
        sys.path.insert(0, HERE)
        try:
            import kcheck as mod
        finally:
            sys.path.pop(0)
        out = io.StringIO()
        t0 = time.perf_counter()
        with contextlib.redirect_stdout(out):
            rc = mod.main(argv)
        return rc, out.getvalue(), time.perf_counter() - t0

    def test_cache_hit_identical_and_faster(self):
        cwd = os.getcwd()
        os.chdir(REPO)
        try:
            with tempfile.TemporaryDirectory() as cachedir:
                rc1, out1, t_cold = self._run_inproc(
                    ["--json", "--cache", cachedir, "--root", "src"])
                rc2, out2, t_warm = self._run_inproc(
                    ["--json", "--cache", cachedir, "--root", "src"])
        finally:
            os.chdir(cwd)
        self.assertEqual(rc1, rc2)
        self.assertEqual(out1, out2, "cache replay changed the findings")
        self.assertGreaterEqual(
            t_cold / max(t_warm, 1e-9), 5.0,
            "cached run not >=5x faster: cold %.3fs, warm %.3fs"
            % (t_cold, t_warm))

    def test_cache_invalidation_recomputes(self):
        with tempfile.TemporaryDirectory() as tmp:
            cachedir = os.path.join(tmp, "cache")
            tgt = os.path.join(tmp, "bad_guard.cc")
            shutil.copy(fixture("bad_guard.cc"), tgt)
            rc1, f1 = run_kcheck("--cache", cachedir, tgt)
            rc2, f2 = run_kcheck("--cache", cachedir, tgt)
            self.assertEqual(rc1, 1)
            self.assertEqual((rc1, f1), (rc2, f2))
            # Edit the file: entries keyed on the old content must not
            # replay.  The prepended line shifts every finding down one.
            with open(tgt) as f:
                text = f.read()
            with open(tgt, "w") as f:
                f.write("// edited\n" + text)
            rc3, f3 = run_kcheck("--cache", cachedir, tgt)
            rc4, f4 = run_kcheck(tgt)  # uncached reference on the edited tree
            self.assertEqual((rc3, f3), (rc4, f4),
                             "cached run diverged from uncached after edit")
            self.assertNotEqual([x["line"] for x in f1],
                                [x["line"] for x in f3])

    def test_changed_only_filters_to_git_changes(self):
        with tempfile.TemporaryDirectory() as tmp:
            def git(*a):
                subprocess.run(["git", "-C", tmp,
                                "-c", "user.email=kcheck@test",
                                "-c", "user.name=kcheck"] + list(a),
                               check=True, capture_output=True)
            git("init", "-q")
            shutil.copy(fixture("bad_guard.cc"),
                        os.path.join(tmp, "committed.cc"))
            git("add", "committed.cc")
            git("commit", "-qm", "seed")
            shutil.copy(fixture("bad_charge.cc"),
                        os.path.join(tmp, "changed.cc"))  # untracked
            proc = subprocess.run(
                [sys.executable, KCHECK, "--json", "--changed-only",
                 "committed.cc", "changed.cc"],
                capture_output=True, text=True, cwd=tmp)
            self.assertEqual(proc.returncode, 1, proc.stderr)
            files = {f["file"] for f in json.loads(proc.stdout)}
            self.assertEqual(files, {"changed.cc"},
                             "committed-and-unchanged findings not filtered")
            # Without the flag, both files report.
            proc2 = subprocess.run(
                [sys.executable, KCHECK, "--json",
                 "committed.cc", "changed.cc"],
                capture_output=True, text=True, cwd=tmp)
            files2 = {f["file"] for f in json.loads(proc2.stdout)}
            self.assertEqual(files2, {"committed.cc", "changed.cc"})


class TsaBridge(unittest.TestCase):
    """Every klock fixture must ALSO fire under the second, independent
    checker: Clang -Wthread-safety through the IKDP_CLANG_TSA bridge.

    The fixtures guard their minimal stubs behind IKDP_TSA_FIXTURE_STUB;
    testdata/tsa_stub.h defines it and supplies annotated lock classes, so
    `clang++ -fsyntax-only -include tsa_stub.h <fixture>` runs the
    thread-safety analysis over the very same BAD bodies kcheck flags.
    Assertions are deliberately loose (>= 1 thread-safety warning, zero
    errors) so clang version drift in wording does not break the suite.
    Skipped when clang++ is not installed; CI always runs it.
    """

    TSA_FIXTURES = (
        "bad_unreleased_lock.cc",
        "bad_double_acquire.cc",
        "bad_lock_order_cycle.cc",
        "bad_sleep_under_spinlock.cc",
        "bad_lock_guard.cc",
        "bad_requires.cc",
    )

    @classmethod
    def setUpClass(cls):
        import shutil
        cls.clang = shutil.which("clang++")

    def _compile(self, name):
        return subprocess.run(
            [self.clang, "-fsyntax-only", "-std=c++20",
             "-Wthread-safety", "-Wthread-safety-beta",
             "-include", fixture("tsa_stub.h"), fixture(name)],
            capture_output=True, text=True, cwd=REPO)

    def test_fixtures_fire_under_clang_tsa(self):
        if not self.clang:
            self.skipTest("clang++ not on PATH")
        for name in self.TSA_FIXTURES:
            with self.subTest(fixture=name):
                proc = self._compile(name)
                self.assertEqual(proc.returncode, 0, proc.stderr)
                self.assertNotIn("error:", proc.stderr, proc.stderr)
                self.assertIn(
                    "-Wthread-safety", proc.stderr,
                    "expected >= 1 thread-safety warning from %s, got:\n%s"
                    % (name, proc.stderr or "(no diagnostics)"))


class TreeIsClean(unittest.TestCase):
    """The real source tree must satisfy every rule."""

    def test_src_tree(self):
        rc, findings = run_kcheck("--root", "src")
        self.assertEqual(rc, 0,
                         "kcheck found violations in src/:\n%s"
                         % "\n".join("%s:%s [%s] %s" % (f["file"], f["line"],
                                                        f["rule"], f["message"])
                                     for f in findings))

    def test_annotations_parsed(self):
        # Guard against the silent-parser failure mode: a clean run must be
        # clean because the contracts hold, not because nothing was parsed.
        proc = subprocess.run(
            [sys.executable, KCHECK, "--root", "src", "--list-functions"],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        lines = proc.stdout.splitlines()
        annotated = [l for l in lines if " process " in l or " interrupt " in l
                     or " softclock " in l or " any " in l]
        self.assertGreater(len(lines), 300, "function database too small")
        self.assertGreater(len(annotated), 80,
                           "too few annotated functions parsed — frontend "
                           "regression?")
        # Spot-check load-bearing contract entries.
        joined = "\n".join(annotated)
        for expect in ("CpuSystem::Sleep", "CpuSystem::ChargeInterrupt",
                       "CalloutTable::RunTick", "SpliceRing::Reap",
                       "BufferCache::Brelse"):
            self.assertIn(expect, joined)


if __name__ == "__main__":
    unittest.main()
