// kcheck fixture: may-fail call whose error return is silently dropped.
// Parsed by kcheck only — never compiled.
//
// Expected findings: [discarded-failure] in Pipe::Flush (direct drop) and
// Pipe::Drain (drop of a wrapper that propagates a may-fail result).
// Pipe::Close ((void)-cast), Pipe::Checked (result tested), Pipe::Forward
// (result returned), and Pipe::Tick (callee cannot fail) are clean.

constexpr int kErrIo = 5;

class Disk {
 public:
  // May fail: returns a named error code.
  int Submit(int blk) {
    if (blk < 0) {
      return kErrIo;
    }
    return 0;
  }

  // Propagates the failure: may-fail via the interprocedural summary.
  int SubmitFirst() { return Submit(0); }

  // Cannot fail.
  void Kick() {}
};

class Pipe {
 public:
  // BAD: the error return of Submit is dropped on the floor.
  void Flush(int blk) {
    pending_ = 0;
    disk_->Submit(blk);
  }

  // BAD: the wrapper's propagated failure is dropped too.
  void Drain() { disk_->SubmitFirst(); }

  // OK: the (void) cast documents the deliberate drop.
  void Close() { (void)disk_->Submit(0); }

  // OK: the result is checked.
  int Checked(int blk) {
    int err = disk_->Submit(blk);
    if (err != 0) {
      return err;
    }
    return 0;
  }

  // OK: the result is returned to the caller.
  int Forward(int blk) { return disk_->Submit(blk); }

  // OK: Kick cannot fail; a bare call is fine.
  void Tick() { disk_->Kick(); }

 private:
  Disk* disk_;
  int pending_ = 0;
};
