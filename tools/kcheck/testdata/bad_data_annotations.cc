// kcheck fixture: data-annotation vocabulary errors.
// Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [unknown-order-channel]  retired_ names channel `mailbox`, which the
//                            dynamic checker carries no edges for
//   [unknown-order-channel]  depth_ lists unknown context `hypervisor`

class RingFixture {
 private:
  int retired_ IKDP_ORDERED_BY(mailbox) = 0;           // BAD
  int depth_ IKDP_GUARDED_BY(hypervisor) = 0;          // BAD
  int posted_ IKDP_ORDERED_BY(reaper) = 0;             // OK
  int count_ IKDP_GUARDED_BY(process, interrupt) = 0;  // OK
};
