// kcheck fixture: lock-order-cycle — acquisition orders that can deadlock.
// Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [lock-order-cycle]  Sys::BA acquires 'alpha' (rank 10) while holding
//                       'beta' (rank 20) — ranks must strictly increase
//   [lock-order-cycle]  cycle between 'alpha' and 'beta' (Sys::AB orders
//                       alpha -> beta, Sys::BA the reverse)
//   [lock-order-cycle]  Clone redeclares 'alpha' with rank 30
//
// Sys::AB alone is quiet: rank 10 before rank 20 is the declared order.

#define IKDP_LOCK_RANK(lock, rank)

class SpinLock {
 public:
  void Acquire();
  void Release();
};

class Sys {
 public:
  // OK: outer rank 10, inner rank 20.
  void AB() {
    a_.Acquire();
    b_.Acquire();
    b_.Release();
    a_.Release();
  }

  // BAD: the reverse nesting — together with AB this is a textbook ABBA
  // deadlock, and on its own it already violates the rank order.
  void BA() {
    b_.Acquire();
    a_.Acquire();
    a_.Release();
    b_.Release();
  }

 private:
  SpinLock a_ IKDP_LOCK_RANK(alpha, 10);
  SpinLock b_ IKDP_LOCK_RANK(beta, 20);
};

class Clone {
 private:
  // BAD: same lock name, different rank — the order table must be global.
  SpinLock c_ IKDP_LOCK_RANK(alpha, 30);
};
