// kcheck fixture: lock-order-cycle — acquisition orders that can deadlock.
// Parsed by kcheck, and ALSO compiled by Clang -Wthread-safety through
// testdata/tsa_stub.h: b_ declares IKDP_ACQUIRED_AFTER(a_), so Sys::BA's
// reverse nesting fires under -Wthread-safety-beta too.  The Clone and
// Pair cases are kcheck-only (rank-table consistency is outside TSA).
//
// Expected findings:
//   [lock-order-cycle]  Sys::BA acquires 'alpha' (rank 10) while holding
//                       'beta' (rank 20) — ranks must strictly increase
//   [lock-order-cycle]  cycle between 'alpha' and 'beta' (Sys::AB orders
//                       alpha -> beta, Sys::BA the reverse)
//   [lock-order-cycle]  Clone redeclares 'alpha' with rank 30
//   [lock-order-cycle]  Pair declares 'px' IKDP_ACQUIRED_AFTER 'py' but
//                       ranks px (30) BELOW py (40) — the declared order
//                       contradicts the rank table
//
// Sys::AB alone is quiet: rank 10 before rank 20 is the declared order,
// and b_'s IKDP_ACQUIRED_AFTER(a_) agrees with the ranks.

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_ACQUIRED_AFTER(member)

class SpinLock {
 public:
  void Acquire();
  void Release();
};
#endif  // IKDP_TSA_FIXTURE_STUB

class Sys {
 public:
  // OK: outer rank 10, inner rank 20.
  void AB() {
    a_.Acquire();
    b_.Acquire();
    b_.Release();
    a_.Release();
  }

  // BAD: the reverse nesting — together with AB this is a textbook ABBA
  // deadlock, and on its own it already violates the rank order.
  void BA() {
    b_.Acquire();
    a_.Acquire();
    a_.Release();
    b_.Release();
  }

 private:
  SpinLock a_ IKDP_LOCK_RANK(alpha, 10);
  // The declared order matches the ranks: quiet for kcheck, and the
  // attribute Clang sees (acquired_after(a_)) is what makes BA warn.
  SpinLock b_ IKDP_LOCK_RANK(beta, 20) IKDP_ACQUIRED_AFTER(a_);
};

class Clone {
 private:
  // BAD: same lock name, different rank — the order table must be global.
  SpinLock c_ IKDP_LOCK_RANK(alpha, 30);
};

class Pair {
 private:
  // BAD: x_ claims it is acquired after y_, but its rank (30) is LOWER
  // than y_'s (40) — the declaration and the rank table cannot both hold.
  SpinLock x_ IKDP_LOCK_RANK(px, 30) IKDP_ACQUIRED_AFTER(y_);
  SpinLock y_ IKDP_LOCK_RANK(py, 40);
};
