// kcheck fixture: definition-only context annotation.
// Parsed by kcheck only — never compiled.
//
// Expected finding: [annotation-mismatch] at Pump::Drain's out-of-line
// definition — the declaration in the class body makes no context claim, so
// the IKDP_CTX_INTERRUPT on the definition is invisible to callers reading
// the header.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT

class Pump {
 public:
  void Drain();                  // unannotated declaration: the bug
  IKDP_CTX_PROCESS void Fill();  // OK: annotated where callers look
  void Stop();                   // OK: never annotated anywhere

 private:
  int level_ = 0;
};

// BAD: the contract lives only here.
IKDP_CTX_INTERRUPT void Pump::Drain() { level_ = 0; }

// OK: a definition matching an annotated declaration need not restate it.
void Pump::Fill() { ++level_; }

void Pump::Stop() { level_ = -1; }
