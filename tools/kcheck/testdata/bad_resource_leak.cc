// kcheck fixture: acquired buffer leaks on an early error return.
// Parsed by kcheck only — never compiled.
//
// Expected findings: [resource-leak-on-error-path] in Fs::ReadMeta (early
// return skips the release) and Fs::CopyOut (leak through a wrapper
// acquirer).  Fs::ReadData (every path releases), Fs::FailFast (the
// null-check edge proves the acquisition failed), Fs::Handoff (ownership
// escapes into a callee), and Fs::Steal (ownership returned to the caller)
// are clean.

constexpr int kErrIo = 5;

struct Buf {
  int data;
  bool valid;
};

struct Cache {
  Buf* Bread(int blk);
  void Brelse(Buf* b);
  // Wrapper: returns the result of an acquirer, so it is one too.
  Buf* LookupOrRead(int blk) { return Bread(blk); }
};

class Fs {
 public:
  // BAD: the invalid-buffer arm returns without Brelse.
  int ReadMeta(int blk) {
    Buf* b = cache_->Bread(blk);
    if (!b->valid) {
      return kErrIo;
    }
    meta_ = b->data;
    cache_->Brelse(b);
    return 0;
  }

  // BAD: the acquirer summary follows the wrapper; the error arm leaks.
  int CopyOut(int blk, int limit) {
    auto* b = cache_->LookupOrRead(blk);
    if (b->data > limit) {
      return kErrIo;
    }
    cache_->Brelse(b);
    return 0;
  }

  // OK: both arms release before returning.
  int ReadData(int blk) {
    Buf* b = cache_->Bread(blk);
    if (!b->valid) {
      cache_->Brelse(b);
      return kErrIo;
    }
    data_ = b->data;
    cache_->Brelse(b);
    return 0;
  }

  // OK: the null check proves there is nothing to release on that arm.
  int FailFast(int blk) {
    Buf* b = cache_->Bread(blk);
    if (b == nullptr) {
      return kErrIo;
    }
    cache_->Brelse(b);
    return 0;
  }

  // OK: ownership escapes into the callee (it releases).
  void Handoff(int blk) {
    Buf* b = cache_->Bread(blk);
    Consume(b);
  }

  // OK: ownership is transferred to the caller.
  Buf* Steal(int blk) {
    Buf* b = cache_->Bread(blk);
    return b;
  }

  void Consume(Buf* b);

 private:
  Cache* cache_;
  int meta_ = 0;
  int data_ = 0;
};
