// kcheck fixture: idiomatic, contract-respecting code.  Expected: 0 findings.
// Parsed by kcheck only — never compiled.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT
#define IKDP_CTX_ANY

struct Buf {};

struct CpuSystem {
  IKDP_CTX_PROCESS void Sleep(const void* chan, int pri) { (void)chan; (void)pri; }
  IKDP_CTX_ANY void Wakeup(const void* chan) { (void)chan; }
  bool InInterrupt() const { return false; }
  void ChargeInterrupt(long cycles) { (void)cycles; }
};

struct BufferCache {
  Buf* TryGetBlk(int dev, long blkno) { (void)dev; (void)blkno; return nullptr; }
  void Brelse(Buf* b) { (void)b; }
};

class GoodDriver {
 public:
  // Interrupt handler that only wakes sleepers and charges under a
  // domination check: all within contract.
  IKDP_CTX_INTERRUPT void TxInterrupt(long cycles) {
    cpu_->Wakeup(&doneq_);
    if (cpu_->InInterrupt()) {
      cpu_->ChargeInterrupt(cycles);
    }
  }

  // Process-context path may block and handle buffers normally.
  IKDP_CTX_PROCESS void FlushOne(BufferCache* cache) {
    Buf* b = cache->TryGetBlk(0, 3);
    if (b != nullptr) {
      cache->Brelse(b);
    }
    cpu_->Sleep(&doneq_, 20);
  }

 private:
  CpuSystem* cpu_;
  char doneq_;
};
