// kcheck fixture: annotation-conflict — one function, two different
// IKDP_CTX_* claims.  Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [annotation-conflict]  Pump::Drain declared IKDP_CTX_PROCESS but
//                          defined IKDP_CTX_INTERRUPT
//
// Pump::Fill is quiet: declaration and definition agree.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT

class Pump {
 public:
  // BAD: the declaration promises process context...
  IKDP_CTX_PROCESS void Drain();

  // OK: consistent at both sites.
  IKDP_CTX_PROCESS void Fill();
};

// ...but the definition claims interrupt context.
IKDP_CTX_INTERRUPT void Pump::Drain() {}

IKDP_CTX_PROCESS void Pump::Fill() {}
