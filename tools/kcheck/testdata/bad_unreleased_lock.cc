// kcheck fixture: unreleased-lock — an exit path that keeps a lock held.
// Parsed by kcheck, and ALSO compiled by Clang -Wthread-safety through
// testdata/tsa_stub.h (which defines IKDP_TSA_FIXTURE_STUB and supplies
// annotated lock classes), so every BAD case fires under both checkers.
//
// Expected findings:
//   [unreleased-lock]  Q::Leak can return with 'queue' held (the early
//                      return skips the Release)
//   [unreleased-lock]  Q::ForgetsEnd is declared IKDP_RELEASES(queue) but
//                      never releases it
//   [unreleased-lock]  Q::ArmBad's lambda body acquires 'queue' and ends
//                      without releasing it
//
// Q::Begin / Q::End are quiet: the hand-off is declared with
// IKDP_ACQUIRES / IKDP_RELEASES.  Q::Balanced and Q::GuardScope are quiet:
// a matched Release and a SpinGuard both end the section.

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_ACQUIRES(lock)
#define IKDP_RELEASES(lock)
#define IKDP_GUARDED_BY(...)

class SpinLock {
 public:
  void Acquire();
  void Release();
};

class SpinGuard {
 public:
  SpinGuard(SpinLock& l);
};
#endif  // IKDP_TSA_FIXTURE_STUB

class Q {
 public:
  // BAD: the early return leaks the lock.
  void Leak() {
    lock_.Acquire();
    if (n_ == 0) {
      return;
    }
    lock_.Release();
  }

  // OK: declared hand-off pair.
  IKDP_ACQUIRES(queue) void Begin() { lock_.Acquire(); }
  IKDP_RELEASES(queue) void End() { lock_.Release(); }

  // BAD: promises to release the caller's lock but keeps it.
  IKDP_RELEASES(queue) void ForgetsEnd() { ++n_; }

  // BAD: a deferred callback must leave the lock as it found it.
  void ArmBad() {
    cb_ = [this] {
      lock_.Acquire();
      ++n_;
    };
  }

  // OK: matched pair.
  void Balanced() {
    lock_.Acquire();
    ++n_;
    lock_.Release();
  }

  // OK: the guard releases at scope end, even across the return.
  int GuardScope() {
    SpinGuard g(lock_);
    return n_;
  }

 private:
  SpinLock lock_ IKDP_LOCK_RANK(queue, 10);
  int n_ IKDP_GUARDED_BY(lock:queue) = 0;
  std::function<void()> cb_;
};
