// Clang thread-safety stub for the klock fixtures.
//
// The bad_*.cc klock fixtures are normally parsed by kcheck only.  To prove
// every one of them ALSO fires under the second, independent checker — Clang
// -Wthread-safety through the IKDP_CLANG_TSA bridge (src/kern/ctx.h) — the
// self-test compiles each fixture with
//
//   clang++ -fsyntax-only -std=c++20 -Wthread-safety -Wthread-safety-beta \
//           -include tools/kcheck/testdata/tsa_stub.h <fixture>
//
// and asserts thread-safety warnings come out.  This header defines
// IKDP_TSA_FIXTURE_STUB (the fixtures guard their own minimal stubs behind
// its absence), duplicates the bridge's macro machinery, registers the
// fixture lock names, and supplies ANNOTATED lock classes.
//
// Two deliberate fictions:
//
//  * `ikdp_tsa_sleepable` — a global capability("context") object required
//    by every blocking primitive (CpuSystem::Sleep, SleepLock::Acquire).
//    TSA has no concept of blocking; requiring a capability that no
//    spinlock critical section holds turns sleep-under-spinlock into an
//    ordinary capability violation.
//
//  * 'phantom' (bad_lock_guard.cc) has NO registration below, so the
//    guarded_by dispatch silently drops that annotation — undeclared-lock
//    reporting is kcheck's job, and the fixture comment says so.

#ifndef TOOLS_KCHECK_TESTDATA_TSA_STUB_H_
#define TOOLS_KCHECK_TESTDATA_TSA_STUB_H_

#define IKDP_TSA_FIXTURE_STUB 1

#include <coroutine>
#include <functional>

// --- the bridge machinery, as in src/kern/ctx.h (TSA branch) ---

#define IKDP_TSA_PASTE(...) IKDP_TSA_PASTE_I(__VA_ARGS__)
#define IKDP_TSA_PASTE_I(x, ...) x##_ikdp_tsa_cap
#define IKDP_TSA_GB(...) \
  IKDP_TSA_GB_PICK(__VA_ARGS__, IKDP_TSA_GB_LOCK, IKDP_TSA_GB_CTX, )(__VA_ARGS__)
#define IKDP_TSA_GB_PICK(a, b, c, ...) c
#define IKDP_TSA_GB_LOCK(ignored, member) __attribute__((guarded_by(member)))
#define IKDP_TSA_GB_CTX(...)
#define IKDP_TSA_FN(attr, ...) IKDP_TSA_FN_I(attr, __VA_ARGS__)
#define IKDP_TSA_FN_I(attr, ignored, member) __attribute__((attr(member)))

#define IKDP_GUARDED_BY(...) IKDP_TSA_GB(IKDP_TSA_PASTE(__VA_ARGS__))
#define IKDP_ACQUIRES(l) IKDP_TSA_FN(acquire_capability, IKDP_TSA_PASTE(l))
#define IKDP_RELEASES(l) IKDP_TSA_FN(release_capability, IKDP_TSA_PASTE(l))
#define IKDP_EXCLUDES(l) IKDP_TSA_FN(locks_excluded, IKDP_TSA_PASTE(l))
#define IKDP_REQUIRES(l) IKDP_TSA_FN(requires_capability, IKDP_TSA_PASTE(l))
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_ACQUIRED_AFTER(member) __attribute__((acquired_after(member)))

// --- capability-name registrations for the fixture locks ---

#define queue_ikdp_tsa_cap , lock_
#define devq_ikdp_tsa_cap , lock_
#define ring_ikdp_tsa_cap , lock_
#define nic_ikdp_tsa_cap , lock_
#define gate_ikdp_tsa_cap , gate_
#define tbl_ikdp_tsa_cap , lock_
// 'phantom' deliberately unregistered (see header comment).

// --- the sleepable fiction ---

struct __attribute__((capability("context"))) SleepableCtx {};
extern SleepableCtx ikdp_tsa_sleepable;

// --- annotated lock classes, as src/kern/lock.h builds them ---

class __attribute__((capability("mutex"))) SpinLock {
 public:
  void Acquire() __attribute__((acquire_capability()));
  void Release() __attribute__((release_capability()));
};

class __attribute__((scoped_lockable)) SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) __attribute__((acquire_capability(lock)));
  ~SpinGuard() __attribute__((release_capability()));
};

class __attribute__((capability("mutex"))) SleepLock {
 public:
  void Acquire() __attribute__((
      acquire_capability(), requires_capability(ikdp_tsa_sleepable)));
  void AcquireUncontended() __attribute__((
      acquire_capability(), requires_capability(ikdp_tsa_sleepable)));
  void Release() __attribute__((release_capability()));
};

class CpuSystem {
 public:
  void Sleep() __attribute__((requires_capability(ikdp_tsa_sleepable)));
  void Wakeup();
  void Wakeup(void* chan);
};

// --- minimal coroutine types for bad_sleep_under_spinlock.cc ---

struct Waiter {
  bool await_ready();
  void await_suspend(std::coroutine_handle<>);
  void await_resume();
};

struct TaskVoid {
  struct promise_type {
    TaskVoid get_return_object();
    std::suspend_never initial_suspend();
    std::suspend_never final_suspend() noexcept;
    void return_void();
    void unhandled_exception();
  };
};

#endif  // TOOLS_KCHECK_TESTDATA_TSA_STUB_H_
