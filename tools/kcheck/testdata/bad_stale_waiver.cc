// kcheck fixture: waiver comments that no longer suppress anything.
// Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [stale-waiver]  the undominated-charge waiver below matches no finding
//   [stale-waiver]  `interupt-sleep` names an unknown rule (typo)

struct Meter {
  void Account(long cycles) { total_ += cycles; }  // kcheck: allow(undominated-charge)
  long Total() { return total_; }  // kcheck: allow(interupt-sleep)
  long total_ = 0;
};
