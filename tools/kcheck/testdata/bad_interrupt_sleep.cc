// kcheck fixture: a blocking primitive reachable from interrupt context.
// Parsed by kcheck only — never compiled.  The IKDP_CTX_* tokens below are
// recognized as macro names; no include of src/kern/ctx.h is needed.
//
// Expected finding: [interrupt-sleep] at the cpu_->Sleep call, reached as
// NicDriver::RxInterrupt (interrupt) -> NicDriver::HandlePacket ->
// CpuSystem::Sleep.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT

struct CpuSystem {
  IKDP_CTX_PROCESS void Sleep(const void* chan, int pri) { (void)chan; (void)pri; }
  IKDP_CTX_PROCESS void Use(long amount) { (void)amount; }
};

class NicDriver {
 public:
  // Unannotated helper: the violation is indirect, through the call graph.
  void HandlePacket(int len) {
    if (len > 1500) {
      cpu_->Sleep(&waitq_, 20);  // blocks at interrupt level: the bug
    }
  }

  IKDP_CTX_INTERRUPT void RxInterrupt(int len) { HandlePacket(len); }

 private:
  CpuSystem* cpu_;
  char waitq_;
};
