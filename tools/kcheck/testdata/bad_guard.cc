// kcheck fixture: guard-set violations on IKDP_GUARDED_BY members.
// Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [guard-violation]  NicState::Isr writes user_bytes_ (guarded by
//                      process) from IKDP_CTX_INTERRUPT
//   [guard-violation]  NicState::Anywhere touches tick_ (guarded by
//                      process, softclock) from IKDP_CTX_ANY — an ANY
//                      function must be safe in every context
//   [guard-violation]  Watcher::Poll reaches irq_count_ (guarded by
//                      interrupt) through a typed receiver from
//                      IKDP_CTX_PROCESS

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT
#define IKDP_CTX_SOFTCLOCK
#define IKDP_CTX_ANY

class NicState {
 public:
  // BAD: an interrupt-context function touching process-only state.
  IKDP_CTX_INTERRUPT void Isr() {
    ++irq_count_;     // OK: interrupt is in the guard set
    user_bytes_ = 0;  // BAD: guarded by process
  }

  // BAD: ANY must be callable from every context, but tick_'s guard set
  // excludes interrupt.
  IKDP_CTX_ANY void Anywhere() { ++tick_; }

  // OK: process-context access to process state; `any`-guarded members are
  // open to every annotated accessor.
  IKDP_CTX_PROCESS void Syscall() {
    user_bytes_ += 4;
    ++shared_;
  }

  // OK: softclock is in tick_'s guard set.
  IKDP_CTX_SOFTCLOCK void Tick() { ++tick_; }

  // OK: unannotated functions make no context claim; the call-graph rules
  // own them.
  void Helper() { user_bytes_ = 1; }

 private:
  int irq_count_ IKDP_GUARDED_BY(interrupt) = 0;
  long user_bytes_ IKDP_GUARDED_BY(process) = 0;
  long tick_ IKDP_GUARDED_BY(process, softclock) = 0;
  int shared_ IKDP_GUARDED_BY(any) = 0;
};

class Watcher {
 public:
  // BAD: receiver-qualified access, resolved through the member-type table
  // (nic_ -> NicState).
  IKDP_CTX_PROCESS void Poll() {
    if (nic_->irq_count_ != 0) {
      Report();
    }
  }

  void Report() {}

 private:
  NicState* nic_;
};
