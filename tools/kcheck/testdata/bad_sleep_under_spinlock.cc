// kcheck fixture: sleep-under-spinlock — giving up the processor while a
// SpinLock is held.  Parsed by kcheck, and ALSO compiled by Clang
// -Wthread-safety through testdata/tsa_stub.h.  TSA has no notion of
// blocking, so the stub gives every blocking primitive (CpuSystem::Sleep,
// SleepLock::Acquire) requires_capability(ikdp_tsa_sleepable) — a fiction
// capability no spinlock section holds — which makes Direct, Blocks, and
// TakesGate warn.  The co_await in Await is invisible to TSA (kcheck-only:
// suspension points are not in the thread-safety model).
//
// Expected findings:
//   [sleep-under-spinlock]  Net::Direct calls CpuSystem::Sleep under 'nic'
//   [sleep-under-spinlock]  Net::Indirect reaches Sleep through
//                           Net::Blocks while holding 'nic'
//   [sleep-under-spinlock]  Net::Await co_awaits while holding 'nic'
//   [sleep-under-spinlock]  Net::TakesGate acquires SleepLock 'gate'
//                           while holding SpinLock 'nic'
//
// Net::Blocks is also flagged: its only caller holds 'nic', so the
// entry-held fixpoint pins the blame on the sleep site too.
// Net::Signals is quiet: Wakeup only enqueues, it never blocks.

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)

class SpinLock {
 public:
  void Acquire();
  void Release();
};

class SleepLock {
 public:
  void Acquire();
  void AcquireUncontended();
  void Release();
};

class CpuSystem {
 public:
  void Sleep();
  void Wakeup();
};

struct TaskVoid {};
struct Waiter {};
#endif  // IKDP_TSA_FIXTURE_STUB

class Net {
 public:
  // BAD: the blocking primitive itself, under a spinlock.
  void Direct() {
    lock_.Acquire();
    cpu_->Sleep();
    lock_.Release();
  }

  void Blocks() { cpu_->Sleep(); }

  // BAD: the block is one call away, but the lock is still held across it.
  void Indirect() {
    lock_.Acquire();
    Blocks();
    lock_.Release();
  }

  // BAD: a coroutine suspension point is a context switch.
  TaskVoid Await() {
    lock_.Acquire();
    co_await Turnstile();
    lock_.Release();
  }

  // BAD: SleepLock::Acquire may suspend until the holder releases.
  void TakesGate() {
    lock_.Acquire();
    gate_.Acquire();
    gate_.Release();
    lock_.Release();
  }

  // OK: Wakeup is enqueue-only; holding the lock across it is the whole
  // point of the discipline.
  void Signals() {
    lock_.Acquire();
    cpu_->Wakeup();
    lock_.Release();
  }

  Waiter Turnstile();

 private:
  SpinLock lock_ IKDP_LOCK_RANK(nic, 10);
  SleepLock gate_ IKDP_LOCK_RANK(gate, 90);
  CpuSystem* cpu_;
};
