// kcheck fixture: double-acquire — re-locking a lock already held.
// Parsed by kcheck, and ALSO compiled by Clang -Wthread-safety through
// testdata/tsa_stub.h, so the BAD cases fire under both checkers (TSA
// catches Twice and CallsExcluded; the Reenter closure case needs kcheck's
// interprocedural acquisition closure).
//
// Expected findings:
//   [double-acquire]  Dev::Twice re-acquires 'devq' it already holds
//   [double-acquire]  Dev::Reenter calls Dev::Locked, which acquires
//                     'devq', while already holding it (closure)
//   [double-acquire]  Dev::CallsExcluded calls Dev::MustNotHold
//                     (IKDP_EXCLUDES(devq)) while holding 'devq'
//
// Dev::Fine and Dev::AlsoCallsUnlocked are quiet: balanced sections and a
// lock-free call to Locked (which keeps Locked's entry-held set empty, so
// Locked's own acquire is legitimate).

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_EXCLUDES(lock)
#define IKDP_GUARDED_BY(...)

class SpinLock {
 public:
  void Acquire();
  void Release();
};
#endif  // IKDP_TSA_FIXTURE_STUB

class Dev {
 public:
  // BAD: second Acquire while the first is still held — on a uniprocessor
  // spinlock this deadlocks instantly.
  void Twice() {
    lock_.Acquire();
    lock_.Acquire();
    lock_.Release();
    lock_.Release();
  }

  // Acquires devq itself; legitimate when entered lock-free.
  void Locked() {
    lock_.Acquire();
    ++depth_;
    lock_.Release();
  }

  // BAD: calls a helper whose acquisition closure includes the held lock.
  void Reenter() {
    lock_.Acquire();
    Locked();
    lock_.Release();
  }

  // OK: the lock-free caller keeps Locked's entry-held fixpoint empty.
  void AlsoCallsUnlocked() { Locked(); }

  IKDP_EXCLUDES(devq) void MustNotHold() {}

  // BAD: violates the callee's declared EXCLUDES contract.
  void CallsExcluded() {
    lock_.Acquire();
    MustNotHold();
    lock_.Release();
  }

  // OK: one balanced critical section.
  void Fine() {
    lock_.Acquire();
    ++depth_;
    lock_.Release();
  }

 private:
  SpinLock lock_ IKDP_LOCK_RANK(devq, 10);
  int depth_ IKDP_GUARDED_BY(lock:devq) = 0;
};
