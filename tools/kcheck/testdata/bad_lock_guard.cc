// kcheck fixture: lock-guard-violation — touching an
// IKDP_GUARDED_BY(lock:...) member without its lock held.
// Parsed by kcheck, and ALSO compiled by Clang -Wthread-safety through
// testdata/tsa_stub.h, so the BAD cases fire under both checkers.  TSA
// flags Peek and Steal; it ALSO flags HeldHelper (it cannot see kcheck's
// caller-intersection fixpoint — HeldHelper stays unannotated precisely so
// the fixpoint keeps getting exercised), and it silently DROPS stray_'s
// annotation ('phantom' has no capability registration in the stub), where
// kcheck reports the undeclared lock instead — the two checkers cover each
// other's blind spots.
//
// Expected findings:
//   [lock-guard-violation]  Ring::Peek reads head_ with no lock held
//   [lock-guard-violation]  Probe::Steal reaches head_ through a typed
//                           receiver without the lock
//   [lock-guard-violation]  stray_ is guarded by a lock nobody declared
//
// Ring::Push (SpinGuard), Ring::Drive (explicit pair) and Ring::HeldHelper
// (only ever called with the lock held — the entry-held fixpoint) are
// quiet.  Ring::Channel is quiet: `&head_` is the wait-channel idiom, an
// address used as a token, not a data access.

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_GUARDED_BY(...)

class SpinLock {
 public:
  void Acquire();
  void Release();
};

class SpinGuard {
 public:
  SpinGuard(SpinLock& l);
};

class CpuSystem {
 public:
  void Wakeup(void* chan);
};
#endif  // IKDP_TSA_FIXTURE_STUB

class Ring {
 public:
  // BAD: unlocked read of a guarded member.
  int Peek() { return head_; }

  // OK: scoped guard covers the increment.
  void Push() {
    SpinGuard g(lock_);
    ++head_;
  }

  // OK: every caller holds the lock, so the helper inherits it.
  int HeldHelper() { return head_ + 1; }

  // OK: explicit pair around the helper call.
  void Drive() {
    lock_.Acquire();
    depth_ = HeldHelper();
    lock_.Release();
  }

  // OK: address-of as a wakeup channel, not an access.
  void Channel() { cpu_->Wakeup(&head_); }

 private:
  friend class Probe;  // Steal needs member access for its BAD read

  SpinLock lock_ IKDP_LOCK_RANK(ring, 20);
  int head_ IKDP_GUARDED_BY(lock:ring) = 0;
  int depth_ = 0;
  // BAD: no lock named 'phantom' exists anywhere in the scan.
  int stray_ IKDP_GUARDED_BY(lock:phantom) = 0;
  CpuSystem* cpu_;
};

class Probe {
 public:
  // BAD: receiver-qualified unlocked access.
  int Steal() { return ring_->head_; }

 private:
  Ring* ring_;
};
