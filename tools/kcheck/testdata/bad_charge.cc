// kcheck fixture: ChargeInterrupt with no dominating InInterrupt() check.
// Parsed by kcheck only — never compiled.
//
// Expected finding: [undominated-charge] in Meter::Account.  Meter::Tally is
// clean (dominated); IrqMeter::Bump is clean (annotated IKDP_CTX_INTERRUPT).

#define IKDP_CTX_INTERRUPT

struct CpuSystem {
  bool InInterrupt() const { return false; }
  void ChargeInterrupt(long cycles) { (void)cycles; }
};

class Meter {
 public:
  // BAD: charges interrupt time from arbitrary context.
  void Account(long cycles) {
    total_ += cycles;
    cpu_->ChargeInterrupt(cycles);
  }

  // OK: the charge is dominated by an InInterrupt() check.
  void Tally(long cycles) {
    if (cpu_->InInterrupt()) {
      cpu_->ChargeInterrupt(cycles);
    }
  }

 private:
  CpuSystem* cpu_;
  long total_ = 0;
};

class IrqMeter {
 public:
  // OK: the enclosing function is annotated as interrupt context.
  IKDP_CTX_INTERRUPT void Bump(long cycles) { cpu_->ChargeInterrupt(cycles); }

 private:
  CpuSystem* cpu_;
};
