// kcheck fixture: charge bucket disagrees with the declared IKDP_CTX_*.
// Parsed by kcheck only — never compiled.
//
// Expected findings: [charge-context-mismatch] in Acct::Settle (interrupt
// charge from IKDP_CTX_PROCESS with no InInterrupt proof), Acct::Mixed
// (interrupt-side bucket literal on the unproven arm), and Acct::Replay
// (process-side bucket charged from IKDP_CTX_SOFTCLOCK).  Acct::Split
// (charge dominated by InInterrupt), Acct::Direct (IKDP_CTX_INTERRUPT may
// charge interrupt-side), and Acct::Book (process bucket from process
// context) are clean.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_INTERRUPT
#define IKDP_CTX_SOFTCLOCK

struct CpuSystem {
  enum class ChargeBucket { kProcess, kInterrupt, kSoftclock, kKopProcess, kKopInterrupt };
  bool InInterrupt() const;
  void ChargeInterrupt(long cycles);
  void ChargeKop(ChargeBucket b, long cycles);
  void Charge(ChargeBucket b, long cycles);
};

class Acct {
 public:
  // BAD: process context, no InInterrupt() proof on the charge path.
  IKDP_CTX_PROCESS void Settle(long cycles) {
    cpu_->ChargeInterrupt(cycles);
  }

  // BAD: the false arm of the InInterrupt check still charges an
  // interrupt-side bucket.
  IKDP_CTX_PROCESS void Mixed(long cycles) {
    if (cpu_->InInterrupt()) {
      cpu_->Charge(CpuSystem::ChargeBucket::kKopInterrupt, cycles);
    } else {
      cpu_->Charge(CpuSystem::ChargeBucket::kInterrupt, cycles);
    }
  }

  // BAD: softclock context must never charge the process-side bucket.
  IKDP_CTX_SOFTCLOCK void Replay(long cycles) {
    cpu_->Charge(CpuSystem::ChargeBucket::kProcess, cycles);
  }

  // OK: every interrupt-side charge is dominated by the proof.
  IKDP_CTX_PROCESS void Split(long cycles) {
    if (cpu_->InInterrupt()) {
      cpu_->ChargeInterrupt(cycles);
    } else {
      cpu_->Charge(CpuSystem::ChargeBucket::kProcess, cycles);
    }
  }

  // OK: interrupt context charges interrupt-side freely.
  IKDP_CTX_INTERRUPT void Direct(long cycles) {
    cpu_->ChargeInterrupt(cycles);
    cpu_->Charge(CpuSystem::ChargeBucket::kKopInterrupt, cycles);
  }

  // OK: process bucket from process context.
  IKDP_CTX_PROCESS void Book(long cycles) {
    cpu_->Charge(CpuSystem::ChargeBucket::kProcess, cycles);
  }

 private:
  CpuSystem* cpu_;
};
