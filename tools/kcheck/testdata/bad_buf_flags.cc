// kcheck fixture: buffer flag-discipline violations.
// Parsed by kcheck only — never compiled.
//
// Expected findings:
//   [buf-double-release]   second Brelse in DoubleRelease
//   [buf-release-unowned]  Brelse of the never-acquired local in ReleaseStray

struct Buf {};

struct BufferCache {
  Buf* TryGetBlk(int dev, long blkno) { (void)dev; (void)blkno; return nullptr; }
  void Brelse(Buf* b) { (void)b; }
};

// BAD: straight-line double release of the same buffer.
void DoubleRelease(BufferCache* cache) {
  Buf* b = cache->TryGetBlk(0, 7);
  cache->Brelse(b);
  cache->Brelse(b);
}

// BAD: releases a local Buf that was never acquired (no bread/getblk/
// transient alloc/Set(kBufBusy) in sight).
void ReleaseStray(BufferCache* cache) {
  Buf stray;
  cache->Brelse(&stray);
}

// OK: re-acquisition between the two releases.
void ReleaseTwiceLegit(BufferCache* cache) {
  Buf* b = cache->TryGetBlk(0, 7);
  cache->Brelse(b);
  b = cache->TryGetBlk(0, 8);
  cache->Brelse(b);
}

// OK: branch-exclusive releases are not straight-line; kcheck stays quiet.
void BranchExclusive(BufferCache* cache, bool flush) {
  Buf* b = cache->TryGetBlk(0, 9);
  if (flush) {
    cache->Brelse(b);
  } else {
    cache->Brelse(b);
  }
}
