// kcheck regression fixture: declaration heads the scanner used to lose.
// Expected: 0 findings — AND `--list-functions` must list every function
// below.  Parsed by kcheck only — never compiled.
//
// The seeded shapes:
//
//  * a function-like macro definition (with a backslash continuation)
//    directly before a function whose return type sits on its own line.
//    Before preprocessor-line blanking, the `#define CHECK(x)` text merged
//    into the next declaration head, the balanced-paren scan grabbed the
//    macro's parameter list, and AfterMacro silently vanished from the
//    function database (a bogus `CHECK` entry appeared instead) — so both
//    --list-functions and the findings-count summary undercounted.
//
//  * multi-line signatures: return type on its own line, annotation on its
//    own line, parameters spread across lines — in-class and out-of-line.

#define IKDP_CTX_PROCESS
#define IKDP_CTX_ANY

#define CHECK(x) \
  ((void)(x))

int
AfterMacro(int a) {
  CHECK(a >= 0);
  return a;
}

class MultiLine {
 public:
  IKDP_CTX_ANY
  int
  InClass(int a,
          int b) {
    return a + b;
  }

  IKDP_CTX_PROCESS
  long OutOfLine(int dev,
                 long blkno);

 private:
  long total_ = 0;
};

IKDP_CTX_PROCESS
long
MultiLine::OutOfLine(int dev,
                     long blkno) {
  CHECK(dev >= 0);
  total_ += blkno;
  return total_;
}
