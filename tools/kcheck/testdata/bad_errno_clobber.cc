// kcheck fixture: sticky first-errno member overwritten without a zero check.
// Parsed by kcheck only — never compiled.
//
// Expected findings: [errno-clobber] in Chan::WriteDone (unconditional
// overwrite) and Chan::Cancel (overwrite on the proven-nonzero edge).
// Chan::ReadDone (guarded store), Chan::Reset (stores zero), and
// Chan::Retry (store dominated by a zero check through an early return)
// are clean.

#define IKDP_STICKY_ERRNO
#define IKDP_GUARDED_BY(...)

constexpr int kErrIo = 5;
constexpr int kErrCancel = 125;

class Chan {
 public:
  // OK: the tree idiom — only the FIRST failure lands.
  void ReadDone(int err) {
    if (error_ == 0) {
      error_ = err;
    }
  }

  // BAD: a later failure clobbers the first errno unconditionally.
  void WriteDone(int err) {
    if (error_ == 0) {
      error_ = err;
    }
    error_ = kErrIo;
  }

  // BAD: the branch proves error_ != 0, and the store still overwrites it.
  void Cancel() {
    if (error_ != 0) {
      error_ = kErrCancel;
    }
  }

  // OK: resetting to zero is always allowed (stream reuse).
  void Reset() { error_ = 0; }

  // OK: the early return dominates the store with the zero proof.
  void Retry(int err) {
    if (error_ != 0) {
      return;
    }
    error_ = err;
  }

 private:
  int error_ IKDP_GUARDED_BY(any) IKDP_STICKY_ERRNO = 0;
};
