// kcheck fixture: IKDP_REQUIRES(l) — the caller-side half of the lock-held
// helper contract.  Parsed by kcheck, and ALSO compiled by Clang
// -Wthread-safety through testdata/tsa_stub.h (IKDP_REQUIRES becomes
// requires_capability), so the BAD case fires under both checkers.
//
// Expected findings:
//   [lock-guard-violation]  Tbl::Careless calls Tbl::SizeLocked
//                           (IKDP_REQUIRES(tbl)) without holding 'tbl'
//
// Tbl::SizeLocked itself is quiet: the declared contract seeds the
// entry-held set, so its guarded read of n_ is satisfied even though one of
// its callers is broken (a caller-intersection fixpoint alone would lose
// the lock here — that is exactly what the annotation is for).  Tbl::Size
// is quiet: it holds the lock around the call.

#ifndef IKDP_TSA_FIXTURE_STUB
#define IKDP_LOCK_RANK(lock, rank)
#define IKDP_GUARDED_BY(...)
#define IKDP_REQUIRES(lock)

class SpinLock {
 public:
  void Acquire();
  void Release();
};
#endif  // IKDP_TSA_FIXTURE_STUB

class Tbl {
 public:
  // Lock-held helper: the contract says 'tbl' is held at entry and exit.
  IKDP_REQUIRES(tbl) int SizeLocked() { return n_; }

  // OK: holds the lock across the call.
  int Size() {
    lock_.Acquire();
    int n = SizeLocked();
    lock_.Release();
    return n;
  }

  // BAD: calls the IKDP_REQUIRES helper with no lock held.
  int Careless() { return SizeLocked(); }

 private:
  SpinLock lock_ IKDP_LOCK_RANK(tbl, 10);
  int n_ IKDP_GUARDED_BY(lock:tbl) = 0;
};
