"""kpath: path-sensitive control-flow substrate for kcheck.

kcheck's original lock/guard rules walked each function body LEXICALLY: one
linear pass with a scope stack, `return` blocks restoring the pre-block held
set.  That walker cannot see that an `if` and its `else` are alternatives,
that a loop body runs again, or that an early `return` is a path of its own —
exactly the branchy error paths where the splice stack's invariants break.

kpath replaces that substrate with a real per-function control-flow graph
built from the same stripped token stream:

  * basic blocks of source intervals, with true/false-labelled branch edges
    carrying the condition text (so rules can be path-sensitive on simple
    predicates like `if (d->error_ == 0)` or `if (InInterrupt())`);
  * early returns, `break`/`continue`, `do`/`while`/`for` loops (back edges;
    the finite-lattice walks below reach a fixpoint instead of unrolling —
    the classical widening for these domains), `switch` with C++ fallthrough;
  * scope structure as explicit push/pop/unwind pseudo-items, so RAII
    releases (SpinGuard) fire on EVERY exit from their scope, including the
    paths the lexical walker could not see;
  * lambda bodies excluded from the enclosing graph and built as their own
    CFGs (deferred callbacks execute later, from an empty context);
  * `co_await` suspension points kept as ordinary events (the lock walk
    treats them as blocking; the CFG needs no extra node kind).

On top of the CFG, `walk_cfg` drives the same event/sink interface the
lexical walker exposed, so the existing lock rules re-base without changing
their finding shapes; and two interprocedural summaries (`may_fail`,
`acquires_resource`) are computed to fixpoint over the call graph for the
error-path rule families (errno-clobber, discarded-failure,
resource-leak-on-error-path, charge-context-mismatch) in kcheck.py.

Known approximations (documented in docs/kcheck.md):
  * `?:`, `&&`, `||` are not control flow here: a ternary is one linear
    segment.  `goto` is treated as a plain statement (unused in this tree).
  * exceptions are not modelled (the tree compiles without them in spirit:
    kernel code, no throw sites).
  * condition predicates are matched textually (`x == 0`, `!x`,
    `x != nullptr`, `InInterrupt()`); anything more complex is opaque and
    the walk takes both edges with unchanged state.
"""

import re

EXIT_KEYWORDS = {"return", "co_return"}
_WORD_RE = re.compile(r"[A-Za-z_]\w*")


class Stmt:
    """One node of the statement tree: kind plus interval payloads."""

    __slots__ = ("kind", "seg", "cond", "body", "els", "cases", "pos")

    def __init__(self, kind, pos, seg=None, cond=None, body=None, els=None,
                 cases=None):
        self.kind = kind      # simple/if/while/do/for/switch/return/break/
        #                       continue/block
        self.pos = pos
        self.seg = seg        # (start, end) source interval, if any
        self.cond = cond      # (start, end) condition interval, if any
        self.body = body      # [Stmt]
        self.els = els        # [Stmt] or None
        self.cases = cases    # [(label_pos, [Stmt])] for switch


class StmtParser:
    """Recursive-descent statement scanner over one stripped body.

    `regions` are lambda-body brace intervals (from find_lambda_regions):
    they are skipped wholesale — a lambda's interior is another function.
    """

    def __init__(self, body, regions):
        self.body = body
        self.n = len(body)
        self.region_start = {s: e for s, e in regions}

    def parse(self, i=0, end=None):
        if end is None:
            end = self.n
        stmts = []
        while True:
            i = self._skip_ws(i, end)
            if i >= end:
                break
            st, i = self._stmt(i, end)
            if st is not None:
                stmts.append(st)
        return stmts

    def _skip_ws(self, i, end):
        while i < end and self.body[i] in " \t\n\r":
            i += 1
        return i

    def _keyword_at(self, i):
        m = _WORD_RE.match(self.body, i)
        return m.group(0) if m else None

    def _match_paren(self, i):
        """i at '('; returns index past the matching ')'."""
        depth = 0
        while i < self.n:
            c = self.body[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return self.n

    def _match_brace(self, i):
        depth = 0
        while i < self.n:
            c = self.body[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return self.n

    def _to_semicolon(self, i, end):
        """Consumes one simple statement: to the ';' at paren depth 0.
        Lambda bodies and aggregate-init braces are opaque."""
        depth = 0
        while i < end:
            c = self.body[i]
            if c == "{":
                i = self._match_brace(i)
                continue
            if c == "(" or c == "[":
                depth += 1
            elif c == ")" or c == "]":
                depth -= 1
            elif c == ";" and depth <= 0:
                return i + 1
            elif c == "}" and depth <= 0:
                return i  # malformed / end of scope: stop without consuming
            i += 1
        return end

    def _stmt(self, i, end):
        body = self.body
        c = body[i]
        if c == ";":
            return None, i + 1
        if c == "}":
            return None, i + 1  # tolerated; _block handles its own close
        if c == "{":
            close = self._match_brace(i)
            inner = self.parse(i + 1, close - 1)
            return Stmt("block", i, body=inner), close
        kw = self._keyword_at(i)
        if kw == "if":
            j = body.find("(", i, end)
            if j < 0:
                return Stmt("simple", i, seg=(i, end)), end
            cend = self._match_paren(j)
            then_stmt, j2 = self._stmt(self._skip_ws(cend, end), end)
            then = [then_stmt] if then_stmt else []
            j3 = self._skip_ws(j2, end)
            els = None
            if self._keyword_at(j3) == "else":
                e_stmt, j4 = self._stmt(self._skip_ws(j3 + 4, end), end)
                els = [e_stmt] if e_stmt else []
                j2 = j4
            return Stmt("if", i, cond=(j + 1, cend - 1), body=then,
                        els=els), j2
        if kw == "while":
            j = body.find("(", i, end)
            if j < 0:
                return Stmt("simple", i, seg=(i, end)), end
            cend = self._match_paren(j)
            b_stmt, j2 = self._stmt(self._skip_ws(cend, end), end)
            return Stmt("while", i, cond=(j + 1, cend - 1),
                        body=[b_stmt] if b_stmt else []), j2
        if kw == "for":
            j = body.find("(", i, end)
            if j < 0:
                return Stmt("simple", i, seg=(i, end)), end
            cend = self._match_paren(j)
            b_stmt, j2 = self._stmt(self._skip_ws(cend, end), end)
            return Stmt("for", i, cond=(j + 1, cend - 1),
                        body=[b_stmt] if b_stmt else []), j2
        if kw == "do":
            b_stmt, j2 = self._stmt(self._skip_ws(i + 2, end), end)
            j3 = self._skip_ws(j2, end)
            cond = None
            if j3 < end and self._keyword_at(j3) == "while":
                jp = body.find("(", j3, end)
                if jp >= 0:
                    cend = self._match_paren(jp)
                    cond = (jp + 1, cend - 1)
                    j3 = self._to_semicolon(cend, end)
            return Stmt("do", i, cond=cond,
                        body=[b_stmt] if b_stmt else []), j3
        if kw == "switch":
            j = body.find("(", i, end)
            if j < 0:
                return Stmt("simple", i, seg=(i, end)), end
            cend = self._match_paren(j)
            j2 = self._skip_ws(cend, end)
            if j2 < end and body[j2] == "{":
                close = self._match_brace(j2)
                cases = self._split_cases(j2 + 1, close - 1)
                return Stmt("switch", i, cond=(j + 1, cend - 1),
                            cases=cases), close
            return Stmt("simple", i, seg=(i, cend)), cend
        if kw in ("return", "co_return"):
            j = self._to_semicolon(i, end)
            return Stmt("return", i, seg=(i, j)), j
        if kw == "break":
            return Stmt("break", i), self._to_semicolon(i, end)
        if kw == "continue":
            return Stmt("continue", i), self._to_semicolon(i, end)
        if kw in ("case", "default"):
            j = body.find(":", i)
            return None, (j + 1 if j >= 0 else end)
        if kw == "else":  # stray else (defensive)
            e_stmt, j2 = self._stmt(self._skip_ws(i + 4, end), end)
            return e_stmt, j2
        # A simple statement (may contain opaque lambda/init braces).
        j = self._to_semicolon(i, end)
        return Stmt("simple", i, seg=(i, j)), j

    def _label_colon(self, start, stop):
        """First ':' that is a label terminator, skipping '::' pairs."""
        body = self.body
        j = start
        while j < stop:
            if body[j] == ":":
                if j + 1 < self.n and body[j + 1] == ":":
                    j += 2
                    continue
                return j
            j += 1
        return -1

    def _split_cases(self, i, end):
        """[(label_pos, [Stmt])] for a switch body; leading statements before
        the first label (rare) become an anonymous first case."""
        body = self.body
        labels = [i]
        depth = 0
        j = i
        while j < end:
            c = body[j]
            if c == "{":
                j = self._match_brace(j)
                continue
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0:
                kw = None
                if c in "cd" and (j == i or not body[j - 1].isalnum()
                                  and body[j - 1] != "_"):
                    kw = self._keyword_at(j)
                if kw in ("case", "default") and j > i:
                    labels.append(j)
                    j = self._label_colon(j, end)
                    if j < 0:
                        break
            j += 1
        cases = []
        for k, start in enumerate(labels):
            stop = labels[k + 1] if k + 1 < len(labels) else end
            colon = self._label_colon(start, stop)
            begin = colon + 1 if colon >= 0 else start
            cases.append((start, self.parse(begin, stop)))
        return cases


class Block:
    __slots__ = ("bid", "items", "succ")

    def __init__(self, bid):
        self.bid = bid
        # Ordered items: ("seg", s, e) | ("push",) | ("pop",) |
        # ("unwind", nscopes) | ("exit", pos)
        self.items = []
        # [(target Block, edge)] with edge None or ("true"/"false", cs, ce).
        self.succ = []


class Cfg:
    def __init__(self):
        self.blocks = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self):
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b


class CfgBuilder:
    """Statement tree -> CFG with scope pseudo-items."""

    def __init__(self, body_len):
        self.body_len = body_len
        self.cfg = Cfg()
        # (break_target, continue_target, scope_depth_at_loop) stack.
        self.loops = []
        self.depth = 0  # current scope depth (function body scope = 1)

    def build(self, stmts):
        cfg = self.cfg
        cur = cfg.new_block()
        cfg.entry.succ.append((cur, None))
        cur.items.append(("push",))
        self.depth = 1
        cur = self._seq(stmts, cur)
        if cur is not None:
            cur.items.append(("unwind", self.depth))
            cur.items.append(("exit", self.body_len))
            cur.succ.append((cfg.exit, None))
        return cfg

    def _seq(self, stmts, cur):
        for st in stmts:
            if cur is None:
                # Unreachable code after return/break: still walk it (the
                # lexical walker did), from a fresh disconnected block seeded
                # with the fall-through state by the caller.  We keep it
                # simple: chain it as if reachable.
                cur = self.cfg.new_block()
            cur = self._stmt(st, cur)
        return cur

    def _stmt(self, st, cur):
        cfg = self.cfg
        k = st.kind
        if k == "simple":
            cur.items.append(("seg",) + st.seg)
            return cur
        if k == "return":
            cur.items.append(("seg",) + st.seg)
            cur.items.append(("unwind", self.depth))
            cur.items.append(("exit", st.pos))
            cur.succ.append((cfg.exit, None))
            return None
        if k == "break":
            if self.loops:
                target, _, loop_depth = self.loops[-1]
                cur.items.append(("unwind", self.depth - loop_depth))
                cur.succ.append((target, None))
            return None
        if k == "continue":
            if self.loops:
                _, target, loop_depth = self.loops[-1]
                cur.items.append(("unwind", self.depth - loop_depth))
                if target is not None:
                    cur.succ.append((target, None))
            return None
        if k == "block":
            cur.items.append(("push",))
            self.depth += 1
            out = self._seq(st.body, cur)
            self.depth -= 1
            if out is None:
                return None
            out.items.append(("pop",))
            return out
        if k == "if":
            cur.items.append(("seg",) + st.cond)
            then_in = cfg.new_block()
            join = cfg.new_block()
            cur.succ.append((then_in, ("true",) + st.cond))
            then_out = self._seq(st.body, then_in)
            if then_out is not None:
                then_out.succ.append((join, None))
            if st.els is not None:
                els_in = cfg.new_block()
                cur.succ.append((els_in, ("false",) + st.cond))
                els_out = self._seq(st.els, els_in)
                if els_out is not None:
                    els_out.succ.append((join, None))
            else:
                cur.succ.append((join, ("false",) + st.cond))
            return join
        if k in ("while", "for"):
            header = cfg.new_block()
            cur.succ.append((header, None))
            header.items.append(("seg",) + st.cond)
            body_in = cfg.new_block()
            after = cfg.new_block()
            header.succ.append((body_in, ("true",) + st.cond))
            header.succ.append((after, ("false",) + st.cond))
            self.loops.append((after, header, self.depth))
            body_out = self._seq(st.body, body_in)
            self.loops.pop()
            if body_out is not None:
                body_out.succ.append((header, None))  # back edge
            return after
        if k == "do":
            body_in = cfg.new_block()
            after = cfg.new_block()
            cur.succ.append((body_in, None))
            self.loops.append((after, body_in, self.depth))
            body_out = self._seq(st.body, body_in)
            self.loops.pop()
            if body_out is not None:
                if st.cond:
                    body_out.items.append(("seg",) + st.cond)
                    body_out.succ.append((body_in, ("true",) + st.cond))
                    body_out.succ.append((after, ("false",) + st.cond))
                else:
                    body_out.succ.append((after, None))
            return after
        if k == "switch":
            cur.items.append(("seg",) + st.cond)
            after = self.cfg.new_block()
            self.loops.append((after, None, self.depth))
            prev_out = None
            for _, case_stmts in st.cases:
                case_in = cfg.new_block()
                cur.succ.append((case_in, None))
                if prev_out is not None:  # C++ fallthrough
                    prev_out.succ.append((case_in, None))
                prev_out = self._seq(case_stmts, case_in)
            self.loops.pop()
            if prev_out is not None:
                prev_out.succ.append((after, None))
            # No default: the condition may match nothing.
            cur.succ.append((after, None))
            return after
        raise AssertionError("unknown stmt kind %r" % k)


def build_cfg(body, start, end, excluded_regions):
    """CFG over `body[start:end]` (absolute positions preserved).

    `excluded_regions` are lambda-body brace intervals inside the range:
    their interiors produce no seg items, so events inside them never fire
    on this walk — each lambda gets its own CFG via another build_cfg call
    over its interior.
    """
    parser = StmtParser(body, excluded_regions)
    stmts = parser.parse(start, end)
    cfg = CfgBuilder(end).build(stmts)
    if excluded_regions:
        _cut_regions(cfg, excluded_regions)
    return cfg


def _iter_tree(stmts):
    for st in stmts:
        yield st
        for sub in (st.body or ()):
            yield from _iter_tree([sub])
        for sub in (st.els or ()):
            yield from _iter_tree([sub])
        for _, case_stmts in (st.cases or ()):
            yield from _iter_tree(case_stmts)


def iter_stmts(body, lambda_regions, kinds=None):
    """Yields every Stmt in `body`, lambda interiors included.

    Each lambda region is parsed as its own statement list (the enclosing
    parse treats it as opaque).  `kinds` filters by Stmt.kind when given.
    """
    ranges = [(0, len(body), lambda_regions)]
    for s, e in lambda_regions:
        nested = [r for r in lambda_regions
                  if r != (s, e) and s < r[0] and r[1] <= e]
        ranges.append((s + 1, e, nested))
    for start, end, regions in ranges:
        parser = StmtParser(body, regions)
        for st in _iter_tree(parser.parse(start, end)):
            if kinds is None or st.kind in kinds:
                yield st


def cond_intervals(body, lambda_regions):
    """[(start, end)] of every branch/loop condition, lambdas included."""
    out = []
    for st in iter_stmts(body, lambda_regions):
        if st.cond is not None:
            out.append(st.cond)
    return out


def build_function_cfgs(body, lambda_regions):
    """(main_cfg, [lambda_cfg...]) for one function body.

    The main CFG excludes every lambda region; each lambda's CFG covers its
    interior and excludes regions strictly nested inside it (they get their
    own entries in the returned list — the lexical nesting is flattened, as
    each lambda is an independent deferred execution).
    """
    main = build_cfg(body, 0, len(body), lambda_regions)
    lams = []
    for s, e in lambda_regions:
        nested = [r for r in lambda_regions
                  if r != (s, e) and s < r[0] and r[1] <= e]
        lams.append(build_cfg(body, s + 1, e, nested))
    return main, lams


def _cut_regions(cfg, regions):
    """Splits seg items so no seg overlaps a lambda region."""
    for b in cfg.blocks:
        out = []
        for item in b.items:
            if item[0] != "seg":
                out.append(item)
                continue
            s, e = item[1], item[2]
            pieces = [(s, e)]
            for rs, re_ in regions:
                nxt = []
                for ps, pe in pieces:
                    if pe <= rs or ps >= re_:
                        nxt.append((ps, pe))
                        continue
                    if ps < rs:
                        nxt.append((ps, rs))
                    if pe > re_:
                        nxt.append((re_, pe))
                pieces = nxt
            out.extend(("seg", ps, pe) for ps, pe in pieces if ps < pe)
        b.items = out


# ---------------------------------------------------------------------------
# Generic path walk
# ---------------------------------------------------------------------------


def walk_paths(cfg, initial_state, transfer, edge_refine=None,
               max_visits=20000):
    """Depth-first walk of every CFG path with memoized (block, state).

    `transfer(block, state) -> out_state or None` processes one block's
    items (firing whatever sinks the rule wants); returning None prunes the
    path.  `edge_refine(edge, state) -> state or None` lets a rule sharpen
    state across a labelled true/false branch edge (None prunes the edge).

    States must be hashable (tuples).  Loops terminate because the state
    lattice is finite: revisiting a block in an already-seen state stops the
    path — this is the widening step; a loop iteration that changes nothing
    proves the fixpoint.  `max_visits` is a hard backstop for pathological
    bodies (hit only by adversarial input, never by the tree).
    """
    seen = set()
    stack = [(cfg.entry, initial_state)]
    visits = 0
    while stack:
        block, state = stack.pop()
        key = (block.bid, state)
        if key in seen:
            continue
        seen.add(key)
        visits += 1
        if visits > max_visits:
            break
        out = transfer(block, state)
        if out is None:
            continue
        for target, edge in block.succ:
            st = out
            if edge is not None and edge_refine is not None:
                st = edge_refine(edge, out)
                if st is None:
                    continue
            stack.append((target, st))


# ---------------------------------------------------------------------------
# Interprocedural summaries: may-fail and acquires-resource
# ---------------------------------------------------------------------------

# Error-return vocabulary: the tree's kErr* constants plus classic errno
# names.  `return -1;` style is deliberately excluded (too many innocent
# sentinel returns); error returns in this tree are named.
ERR_RETURN_RE = re.compile(
    r"\breturn\s+-?\s*(?:kErr\w+|E(?:IO|INVAL|NOMEM|AGAIN|NOSPC|PIPE|BADF|"
    r"INTR|FAULT|NXIO|BUSY|CANCELED|NODEV|SRCH|PERM|PROTO|EXIST|RANGE))\b")
RETURN_CALL_RE = re.compile(r"\breturn\s+(?:[\w:]+\s*(?:\.|->)\s*)?"
                            r"([A-Za-z_]\w*)\s*\(")
RETURN_VAR_RE = re.compile(r"\breturn\s+([A-Za-z_]\w*)\s*;")
ASSIGN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=\s*(?:[\w:]+\s*"
                            r"(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(")


def compute_may_fail(model, resolve):
    """qnames whose body can return a named error code, transitively.

    Seeds: a `return kErr...` / `return EIO` style statement.  Propagation:
    `return f(...)` where f may fail, or `return v;` where v was assigned
    from a may-fail call anywhere in the body.  `resolve(fn, name)` maps a
    bare callee name to a Function or None (ambiguity -> None, skipped).
    Resolution is call-graph-static, so each body is scanned once and the
    fixpoint iterates over precomputed dependency sets.
    """
    may_fail = set()
    deps = []  # (qname, {qnames whose may-fail propagates here})
    for fn in model.functions.values():
        if fn.body is None:
            continue
        body = fn.body
        if ERR_RETURN_RE.search(body):
            may_fail.add(fn.qname)
            continue
        ret_calls = set()
        for m in RETURN_CALL_RE.finditer(body):
            callee = resolve(fn, m.group(1))
            if callee is not None:
                ret_calls.add(callee.qname)
        assigns = {}
        for m in ASSIGN_CALL_RE.finditer(body):
            callee = resolve(fn, m.group(2))
            if callee is not None:
                assigns.setdefault(m.group(1), set()).add(callee.qname)
        for m in RETURN_VAR_RE.finditer(body):
            ret_calls |= assigns.get(m.group(1), set())
        if ret_calls:
            deps.append((fn.qname, ret_calls))
    changed = True
    while changed:
        changed = False
        for qname, sources in deps:
            if qname not in may_fail and sources & may_fail:
                may_fail.add(qname)
                changed = True
    return may_fail


def compute_acquirers(model, resolve, seed_names):
    """Bare names / qnames that RETURN an owned resource, transitively.

    Seeds are the buffer-acquisition primitives (`Bread`, `GetBlk`, ...); a
    wrapper that returns the result of an acquirer is itself an acquirer.
    Used by resource-leak-on-error-path so `Buf* b = LookupOrRead(...)`
    starts ownership just like a direct `Bread`.
    """
    acquirers = set(seed_names)
    deps = []
    for fn in model.functions.values():
        if fn.body is None:
            continue
        sources = set()
        for m in RETURN_CALL_RE.finditer(fn.body):
            sources.add(m.group(1))
            callee = resolve(fn, m.group(1))
            if callee is not None:
                sources.add(callee.qname)
        if sources:
            deps.append((fn, sources))
    changed = True
    while changed:
        changed = False
        for fn, sources in deps:
            if (fn.qname not in acquirers and fn.name not in acquirers
                    and sources & acquirers):
                acquirers.add(fn.qname)
                changed = True
    return acquirers


# ---------------------------------------------------------------------------
# Condition predicates (textual, deliberately simple)
# ---------------------------------------------------------------------------


def cond_checks_zero(cond_text, lvalue_re):
    """(polarity) the condition proves `lvalue == 0` on one edge.

    Returns "true" if the TRUE edge proves zero (e.g. `x == 0`, `!x`),
    "false" if the FALSE edge proves zero (e.g. `x != 0`, bare `x`), or
    None.  `lvalue_re` is a compiled regex matching the lvalue mention.
    """
    m = lvalue_re.search(cond_text)
    if not m:
        return None
    after = cond_text[m.end():].lstrip()
    before = cond_text[:m.start()].rstrip()
    if after.startswith("=="):
        rhs = after[2:].lstrip()
        if rhs.startswith(("0", "nullptr")):
            return "true"
    if after.startswith("!="):
        rhs = after[2:].lstrip()
        if rhs.startswith(("0", "nullptr")):
            return "false"
    if before.endswith("!") and not before.endswith("!="):
        return "true"
    # Bare truthiness mention: `if (x)` proves nonzero on the true edge.
    return "false"


def cond_has_call(cond_text, name):
    return re.search(r"\b%s\s*\(" % re.escape(name), cond_text) is not None
