#!/usr/bin/env python3
"""kcheck: context-discipline and buffer-ownership static analysis.

Checks the ikdp source tree against the execution-context contract declared
with the IKDP_CTX_* annotations (src/kern/ctx.h) and the 4.2BSD buffer flag
discipline enforced at runtime by BufStateChecker (src/buf/buf_check.h).

Rule classes
------------
  interrupt-sleep      A blocking primitive (CpuSystem::Sleep / CpuSystem::Use
                       or any IKDP_CTX_PROCESS-annotated function) is reachable
                       through the call graph from a function annotated
                       IKDP_CTX_INTERRUPT, IKDP_CTX_SOFTCLOCK, or IKDP_CTX_ANY.
  undominated-charge   CpuSystem::ChargeInterrupt is called from a function
                       that is neither annotated IKDP_CTX_INTERRUPT nor
                       lexically dominated by an InInterrupt() check.
  buf-double-release   The same buffer variable is released (Brelse /
                       FreeTransientHeader) twice in straight-line code with
                       no re-acquisition in between.
  buf-release-unowned  A locally declared Buf is released or written
                       (Brelse / Bwrite / Bawrite / BawriteAsync / Bdwrite /
                       FreeTransientHeader) without a visible acquisition
                       (bread / getblk / transient alloc / Set(kBufBusy)).
  annotation-conflict  A function carries two different IKDP_CTX_* annotations
                       across its declarations/definition.
  annotation-mismatch  A function's out-of-line definition carries an
                       IKDP_CTX_* annotation but its declaration does not:
                       the contract is invisible to callers reading the
                       header.  (Both-annotated-differently is reported as
                       annotation-conflict.)
  guard-violation      A member annotated IKDP_GUARDED_BY(ctx, ...) is
                       accessed from a function whose IKDP_CTX_* annotation
                       resolves outside the member's guard set (`any` on a
                       function means it must be safe in every context, so
                       it may only touch members guarded by all three).
                       Members annotated IKDP_ORDERED_BY are exempt here:
                       their cross-context serialization is checked
                       dynamically by src/sim/krace.h channel edges.
  unknown-order-channel  An IKDP_ORDERED_BY names a channel outside the
                       known set (callout, biodone, reaper, diskq), or an
                       IKDP_GUARDED_BY lists an unknown context.
  stale-waiver         A `kcheck: allow(<rule>)` comment no longer matches
                       any finding (or names an unknown rule); delete it so
                       dead waivers cannot hide future regressions.

Frontends
---------
The default frontend is a built-in lightweight C++ parser (comment/string
stripping, brace-scope tracking, qualified-name call graph).  It needs no
third-party packages and is what CI runs.  `--frontend=libclang` uses the
clang python bindings when they are installed; it is optional and gated —
kcheck exits with a clear message if the bindings are missing.

Known approximations of the builtin frontend (see docs/kcheck.md):
  * calls through an unresolvable receiver whose bare name matches more than
    one known function are skipped (no false positives, possible misses);
  * ChargeInterrupt domination is lexical: any earlier InInterrupt token in
    the same function body counts;
  * buf ownership is intraprocedural; function parameters and members are
    exempt (ownership transfer across calls is the runtime checker's job);
  * double-release is only flagged in straight-line code (no intervening
    closing brace or `else`), so branch-exclusive releases stay quiet.

A finding can be waived in place with a trailing `// kcheck: allow(<rule>)`
comment on the offending line; use sparingly and justify next to it.

Usage
-----
  kcheck.py [--compile-commands build/compile_commands.json] [--root src]
            [--frontend builtin|libclang] [--json] [--list-functions] [files...]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

ANNOTATION_MACROS = {
    "IKDP_CTX_PROCESS": "process",
    "IKDP_CTX_INTERRUPT": "interrupt",
    "IKDP_CTX_SOFTCLOCK": "softclock",
    "IKDP_CTX_ANY": "any",
}
NONBLOCKING_CTX = {"interrupt", "softclock", "any"}
ALL_CONTEXTS = frozenset({"process", "interrupt", "softclock"})

# Ordering channels the dynamic checker (src/sim/krace.h) knows how to
# carry; IKDP_ORDERED_BY must name one of these.
KNOWN_ORDER_CHANNELS = {"callout", "biodone", "reaper", "diskq"}

# Every rule kcheck can emit; waiver comments naming anything else are stale
# by construction.
KNOWN_RULES = {
    "interrupt-sleep", "undominated-charge", "buf-double-release",
    "buf-release-unowned", "annotation-conflict", "annotation-mismatch",
    "guard-violation", "unknown-order-channel", "stale-waiver",
}

# Blocking primitives recognized even without (in addition to) annotations.
BLOCKING_PRIMITIVES = {"CpuSystem::Sleep", "CpuSystem::Use"}

# Buffer-ownership vocabulary (rule class "busy-flag misuse").
BUF_ACQUIRE_NAMES = {
    "Bread", "Breada", "GetBlk", "TryGetBlk", "TryGrabFree",
    "AllocTransientHeader", "FreelistPop",
}
BUF_RELEASE_NAMES = {"Brelse", "FreeTransientHeader"}
# name -> index of the buffer argument (0-based).
BUF_WRITE_NAMES = {"Bwrite": 1, "Bawrite": 1, "Bdwrite": 1, "BawriteAsync": 0}

CPP_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "co_await", "co_return", "co_yield", "const",
    "constexpr", "const_cast", "continue", "decltype", "default", "delete",
    "do", "double", "dynamic_cast", "else", "enum", "explicit", "export",
    "extern", "false", "float", "for", "friend", "goto", "if", "inline",
    "int", "long", "mutable", "namespace", "new", "noexcept", "nullptr",
    "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this",
    "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while", "assert",
    "defined",
}


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal contents with spaces.

    Newlines are preserved so offsets keep mapping to the original lines.
    """
    out = list(text)
    i, n = 0, len(text)
    CODE, LINE, BLOCK, STR, CHR = range(5)
    state = CODE
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STR
                out[i] = " "
            elif c == "'":
                state = CHR
                out[i] = " "
            i += 1
        elif state == LINE:
            if c == "\n":
                state = CODE
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = CODE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # STR / CHR
            quote = '"' if state == STR else "'"
            if c == "\\":
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = CODE
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


class Function:
    def __init__(self, qname):
        self.qname = qname          # "Class::Name" or "Name" (free function)
        self.annotation = None      # process / interrupt / softclock / any
        self.annotation_site = None  # (file, line) that set it
        self.conflict = None        # (file, line, other_annotation)
        self.body = None            # stripped body text (definition)
        self.body_file = None
        self.body_line = None       # 1-based line of the opening brace
        self.calls = []             # (receiver or None, name, file, line)
        # Per-site annotation tracking for the annotation-mismatch rule.
        self.decl_annotation = None  # annotation seen on a declaration
        self.declared_at = None      # (file, line) of first declaration seen
        self.def_annotation = None   # annotation seen on the definition head
        self.def_out_of_line = False  # definition had an explicit Class:: head

    @property
    def cls(self):
        return self.qname.rsplit("::", 1)[0] if "::" in self.qname else None

    @property
    def name(self):
        return self.qname.rsplit("::", 1)[-1]


class Model:
    """Everything kcheck knows about the tree."""

    def __init__(self):
        self.functions = {}   # qname -> Function
        self.by_name = {}     # bare name -> [Function]
        self.members = {}     # class -> {member: type-class}
        self.raw_lines = {}   # file -> original text lines (for waivers)
        # Data-side annotations (IKDP_GUARDED_BY / IKDP_ORDERED_BY):
        # class -> {member: ("guard", frozenset(ctx), file, line) |
        #                   ("order", channel, file, line)}
        self.guards = {}
        # Waivers that actually suppressed a finding this run, so the
        # stale-waiver lint can flag the rest.
        self.used_waivers = set()

    def function(self, qname):
        fn = self.functions.get(qname)
        if fn is None:
            fn = Function(qname)
            self.functions[qname] = fn
            self.by_name.setdefault(fn.name, []).append(fn)
        return fn

    def waived(self, file, line, rule):
        lines = self.raw_lines.get(file)
        if not lines or not 1 <= line <= len(lines):
            return False
        if "kcheck: allow(%s)" % rule in lines[line - 1]:
            self.used_waivers.add((file, line, rule))
            return True
        return False


# Head of a function declaration/definition: tolerant of return types,
# templates in types, cv-qualifiers, trailing specifiers and ctor init lists.
CALL_RE = re.compile(r"(?:(\w+)\s*(?:\.|->)\s*)?(~?\w+)\s*\(")
QUAL_CALL_RE = re.compile(r"(\w+)\s*::\s*(\w+)\s*\(")
MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?([A-Za-z_]\w*)\s*(?:<[^;<>]*>)?\s*([*&]\s*)?([A-Za-z_]\w*_)\s*"
    r"(?:IKDP_\w+\s*\([^)]*\)\s*)?(?:=[^;]*)?;",
    re.M)
# A member declarator trailed by a data-side annotation.  The member name is
# whatever identifier immediately precedes the macro (guards trail the
# declarator, per src/kern/ctx.h).
GUARD_RE = re.compile(r"\b([A-Za-z_]\w*)\s+IKDP_GUARDED_BY\s*\(([^)]*)\)")
ORDER_RE = re.compile(r"\b([A-Za-z_]\w*)\s+IKDP_ORDERED_BY\s*\(\s*([A-Za-z_]\w*)\s*\)")
WAIVER_RE = re.compile(r"kcheck:\s*allow\(([A-Za-z][\w-]*)\)")


def parse_head(head):
    """Extracts (qualifier, name, annotation) from a declaration head.

    Returns None if the head does not look like a function.  `qualifier` is
    the explicit `Class::` prefix of an out-of-line definition, or None.
    """
    annotation = None
    for macro, ctx in ANNOTATION_MACROS.items():
        if re.search(r"\b%s\b" % macro, head):
            annotation = ctx
            break
    # Cut a constructor initializer list: "...) : member_(x)" -> keep up to ')'.
    # Find the parameter list: the last top-level "(...)" group.
    depth = 0
    open_idx = close_idx = -1
    for idx, ch in enumerate(head):
        if ch == "(":
            if depth == 0:
                open_idx = idx
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                close_idx = idx
                break  # first balanced group: the parameter list
    if open_idx < 0 or close_idx < 0:
        return None
    before = head[:open_idx].rstrip()
    m = re.search(r"(?:(\w+)\s*::\s*)?(~?\w+|operator\s*[^\s]+)$", before)
    if not m:
        return None
    qualifier, name = m.group(1), m.group(2)
    if name.startswith("operator"):
        return None
    bare = name.lstrip("~")
    if bare in CPP_KEYWORDS:
        return None
    # Heads like "return foo(" or "x = foo(" are statements, not declarations.
    prefix = before[: m.start()].strip()
    if prefix.endswith(("=", "return", ",", "(", "&&", "||", "!")):
        return None
    return qualifier, name, annotation


def find_matching_brace(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def line_of(code, idx, _cache={}):
    return code.count("\n", 0, idx) + 1


class FileParser:
    """Scope-tracking scan of one preprocessed (stripped) file."""

    def __init__(self, model, path, code):
        self.model = model
        self.path = path
        self.code = code

    def parse(self):
        self._scan_members()
        self._scan_scopes()

    def _scan_members(self):
        # Member variable types per class, for receiver resolution
        # (cpu_ -> CpuSystem).  Scans class bodies found by a simple pass.
        for m in re.finditer(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{(]*\{", self.code):
            cls = m.group(1)
            end = find_matching_brace(self.code, m.end() - 1)
            body = self.code[m.end():end]
            table = self.model.members.setdefault(cls, {})
            for mem in MEMBER_RE.finditer(body):
                table.setdefault(mem.group(3), mem.group(1))
            guards = self.model.guards.setdefault(cls, {})
            for mem in GUARD_RE.finditer(body):
                ctxs = frozenset(c.strip() for c in mem.group(2).split(",")
                                 if c.strip())
                line = line_of(self.code, m.end() + mem.start())
                guards.setdefault(mem.group(1),
                                  ("guard", ctxs, self.path, line))
            for mem in ORDER_RE.finditer(body):
                line = line_of(self.code, m.end() + mem.start())
                guards.setdefault(mem.group(1),
                                  ("order", mem.group(2), self.path, line))

    def _scan_scopes(self):
        code = self.code
        # Scope stack entries: (kind, name) where kind in
        # {ns, class, enum, func, block}.
        stack = []
        head_start = 0
        i = 0
        n = len(code)
        while i < n:
            c = code[i]
            if c == "{":
                head = code[head_start:i]
                kind, name = self._classify_head(head, stack)
                if kind == "func":
                    end = find_matching_brace(code, i)
                    self._record_definition(name, head, i, end)
                    i = end + 1
                    head_start = i
                    # Function bodies are consumed wholesale; nothing pushed.
                    continue
                stack.append((kind, name))
                i += 1
                head_start = i
            elif c == "}":
                if stack:
                    stack.pop()
                i += 1
                head_start = i
            elif c == ";":
                head = code[head_start:i]
                self._record_declaration(head, stack, head_start)
                i += 1
                head_start = i
            else:
                i += 1

    def _classify_head(self, head, stack):
        h = head.strip()
        m = re.search(r"\bnamespace\s+([A-Za-z_]\w*)?\s*$", h)
        if m:
            return "ns", m.group(1) or "<anon>"
        if re.search(r"\benum\b", h):
            return "enum", None
        m = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{]*)?$", h)
        if m:
            return "class", m.group(1)
        # Inside a function or plain block, any further brace is a block.
        kinds = [k for k, _ in stack]
        if "func" in kinds:
            return "block", None
        # Initializers like `int x = {...}` or array/aggregate init.
        if h.endswith("=") or re.search(r"=\s*$", h):
            return "block", None
        parsed = parse_head(h)
        if parsed and self._in_decl_scope(stack):
            return "func", parsed
        return "block", None

    @staticmethod
    def _in_decl_scope(stack):
        return all(k in ("ns", "class") for k, _ in stack)

    def _enclosing_class(self, stack):
        for kind, name in reversed(stack):
            if kind == "class":
                return name
        return None

    def _record_declaration(self, head, stack, head_pos):
        if not self._in_decl_scope(stack):
            return
        parsed = parse_head(head.strip())
        if not parsed:
            return
        qualifier, name, annotation = parsed
        if name.startswith("IKDP_"):
            return  # a data-member annotation macro, not a function
        line = line_of(self.code, head_pos + len(head) - len(head.lstrip()))
        cls = qualifier or self._enclosing_class(stack)
        qname = "%s::%s" % (cls, name) if cls else name
        fn = self.model.function(qname)
        if annotation is None:
            # Track that a declaration exists: annotation-mismatch needs to
            # distinguish "unannotated declaration" from "no declaration".
            if fn.declared_at is None:
                fn.declared_at = (self.path, line)
            return
        if fn.declared_at is None:
            fn.declared_at = (self.path, line)
        if fn.decl_annotation is None:
            fn.decl_annotation = annotation
        self._annotate(fn, annotation, line)

    def _record_definition(self, parsed, head, brace_idx, end_idx):
        qualifier, name, annotation = parsed
        # The enclosing class comes from the scope stack captured at classify
        # time; re-derive it from the explicit qualifier or the stack head.
        cls = qualifier or self._pending_class
        qname = "%s::%s" % (cls, name) if cls else name
        fn = self.model.function(qname)
        line = line_of(self.code, brace_idx)
        if annotation is not None:
            fn.def_annotation = annotation
            fn.def_out_of_line = qualifier is not None
            self._annotate(fn, annotation, line)
        body = self.code[brace_idx + 1:end_idx]
        fn.body = body
        fn.body_file = self.path
        fn.body_line = line
        base = brace_idx + 1
        for m in QUAL_CALL_RE.finditer(body):
            fn.calls.append((("::", m.group(1)), m.group(2), self.path,
                             line_of(self.code, base + m.start())))
        for m in CALL_RE.finditer(body):
            callee = m.group(2)
            if callee.lstrip("~") in CPP_KEYWORDS:
                continue
            # Skip the qualified ones already captured (receiver "::").
            pre = body[max(0, m.start() - 2):m.start()]
            if pre.rstrip().endswith("::"):
                continue
            fn.calls.append((m.group(1), callee, self.path,
                             line_of(self.code, base + m.start())))

    def _annotate(self, fn, annotation, line):
        if fn.annotation is None:
            fn.annotation = annotation
            fn.annotation_site = (self.path, line)
        elif fn.annotation != annotation and fn.conflict is None:
            fn.conflict = (self.path, line, annotation)

    # Patched in during _scan_scopes via classify: the class enclosing a
    # definition found inline in a class body.
    _pending_class = None


# FileParser._classify_head cannot easily pass the enclosing class through to
# _record_definition, so wrap the two calls.
_orig_classify = FileParser._classify_head


def _classify_with_class(self, head, stack):
    kind, name = _orig_classify(self, head, stack)
    if kind == "func":
        self._pending_class = self._enclosing_class(stack)
    return kind, name


FileParser._classify_head = _classify_with_class


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def as_dict(self):
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.rule, self.message)


def resolve_call(model, caller, receiver, name):
    """Returns the unique Function a call site can refer to, or None."""
    if isinstance(receiver, tuple):  # explicit Class::name qualification
        return model.functions.get("%s::%s" % (receiver[1], name))
    if receiver:
        # Receiver is a member variable of the caller's class with known type.
        table = model.members.get(caller.cls or "", {})
        rcls = table.get(receiver)
        if rcls:
            fn = model.functions.get("%s::%s" % (rcls, name))
            if fn:
                return fn
        # fall through: receiver of unknown type
    else:
        # Unqualified: prefer a method of the caller's own class.
        if caller.cls:
            own = model.functions.get("%s::%s" % (caller.cls, name))
            if own:
                return own
    cands = model.by_name.get(name, [])
    if len(cands) == 1:
        return cands[0]
    return None  # unknown or ambiguous: skipped (documented approximation)


def is_blocking(fn):
    return fn.qname in BLOCKING_PRIMITIVES or fn.annotation == "process"


def check_context_reachability(model, findings):
    roots = [f for f in model.functions.values()
             if f.annotation in NONBLOCKING_CTX and f.body is not None]
    for root in roots:
        # BFS with path reconstruction; each function visited once per root.
        seen = {root.qname}
        queue = [(root, [])]
        while queue:
            fn, path = queue.pop(0)
            for receiver, name, file, line in fn.calls:
                callee = resolve_call(model, fn, receiver, name)
                if callee is None or callee.qname in seen:
                    continue
                step = path + [(fn, callee, file, line)]
                if is_blocking(callee):
                    if model.waived(file, line, "interrupt-sleep"):
                        continue
                    chain = " -> ".join([root.qname] +
                                        [c.qname for _, c, _, _ in step])
                    findings.append(Finding(
                        "interrupt-sleep", file, line,
                        "%s (%s) reaches blocking %s: %s"
                        % (root.qname, root.annotation, callee.qname, chain)))
                    continue
                seen.add(callee.qname)
                if callee.body is not None:
                    queue.append((callee, step))


def check_charge_domination(model, findings):
    for fn in model.functions.values():
        if fn.body is None or fn.name == "ChargeInterrupt":
            continue
        for m in re.finditer(r"\bChargeInterrupt\s*\(", fn.body):
            if fn.annotation == "interrupt":
                continue
            if "InInterrupt" in fn.body[:m.start()]:
                continue
            line = fn.body_line + fn.body.count("\n", 0, m.start())
            if model.waived(fn.body_file, line, "undominated-charge"):
                continue
            findings.append(Finding(
                "undominated-charge", fn.body_file, line,
                "%s calls ChargeInterrupt without IKDP_CTX_INTERRUPT and "
                "without a dominating InInterrupt() check" % fn.qname))


def _last_ident(expr):
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else None


def check_buf_discipline(model, findings):
    for fn in model.functions.values():
        body = fn.body
        if body is None:
            continue
        local_bufs = set(re.findall(r"\bBuf\s*\*?\s*(\w+)\s*(?:=|;)", body))
        params = set(re.findall(r"[A-Za-z_]\w*", body[:0]))  # placeholder
        events = []  # (pos, kind, var, argtext)
        for m in re.finditer(r"\b(\w+)\s*=\s*[^;]*?\b(%s)\s*\(" %
                             "|".join(BUF_ACQUIRE_NAMES), body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*Set\s*\(\s*kBufBusy", body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*flags\s*\|?=\s*[^;]*kBufBusy", body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(%s)\s*\(([^;]*?)\)" %
                             "|".join(BUF_RELEASE_NAMES), body):
            var = _last_ident(m.group(2))
            if var:
                events.append((m.start(), "release", var))
        for name, argidx in BUF_WRITE_NAMES.items():
            for m in re.finditer(r"\b%s\s*\(([^;]*?)\)" % name, body):
                args = _split_args(m.group(1))
                if len(args) > argidx:
                    var = _last_ident(args[argidx])
                    if var:
                        events.append((m.start(), "write", var))
        events.sort()
        owned, released = set(), {}
        for pos, kind, var in events:
            line = fn.body_line + body.count("\n", 0, pos)
            if kind == "acquire":
                owned.add(var)
                released.pop(var, None)
                continue
            if var in released:
                prev = released[var]
                between = body[prev:pos]
                # Straight-line only: a closing brace or else between the two
                # releases means branch-exclusive paths; stay quiet.
                if "}" not in between and not re.search(r"\belse\b", between):
                    if not model.waived(fn.body_file, line, "buf-double-release"):
                        findings.append(Finding(
                            "buf-double-release", fn.body_file, line,
                            "%s releases '%s' twice without re-acquisition"
                            % (fn.qname, var)))
                continue
            if var in local_bufs and var not in owned:
                if not model.waived(fn.body_file, line, "buf-release-unowned"):
                    findings.append(Finding(
                        "buf-release-unowned", fn.body_file, line,
                        "%s %ss local Buf '%s' with no visible acquisition "
                        "(bread/getblk/transient alloc/Set(kBufBusy))"
                        % (fn.qname, kind, var)))
            owned.discard(var)
            released[var] = pos


def _split_args(argtext):
    args, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    args.append("".join(cur))
    return args


def check_annotation_conflicts(model, findings):
    for fn in model.functions.values():
        if fn.conflict:
            file, line, other = fn.conflict
            findings.append(Finding(
                "annotation-conflict", file, line,
                "%s annotated both %s (%s:%d) and %s"
                % (fn.qname, fn.annotation, fn.annotation_site[0],
                   fn.annotation_site[1], other)))


def check_annotation_mismatch(model, findings):
    """Out-of-line definition annotated, declaration silent.

    The declaration is what callers (and kcheck's own call-graph rules, which
    see the header first) read; an annotation living only on the definition
    is a contract nobody can rely on.  Both-sites-annotated-differently is
    annotation-conflict, not this rule.
    """
    for fn in model.functions.values():
        if (fn.def_annotation is None or not fn.def_out_of_line
                or fn.declared_at is None):
            continue
        if fn.decl_annotation is not None:
            continue
        file, line = fn.body_file, fn.body_line
        if model.waived(file, line, "annotation-mismatch"):
            continue
        findings.append(Finding(
            "annotation-mismatch", file, line,
            "%s: out-of-line definition is annotated IKDP_CTX_%s but the "
            "declaration at %s:%d carries no annotation; annotate the "
            "declaration"
            % (fn.qname, fn.def_annotation.upper(),
               fn.declared_at[0], fn.declared_at[1])))


def check_data_annotations(model, findings):
    """Vocabulary validation for IKDP_GUARDED_BY / IKDP_ORDERED_BY."""
    for cls, members in sorted(model.guards.items()):
        for member, (kind, payload, file, line) in sorted(members.items()):
            if kind == "order":
                if payload in KNOWN_ORDER_CHANNELS:
                    continue
                if model.waived(file, line, "unknown-order-channel"):
                    continue
                findings.append(Finding(
                    "unknown-order-channel", file, line,
                    "%s::%s is IKDP_ORDERED_BY(%s); known channels: %s"
                    % (cls, member, payload,
                       ", ".join(sorted(KNOWN_ORDER_CHANNELS)))))
            else:
                bad = payload - ALL_CONTEXTS - {"any"}
                if not bad:
                    continue
                if model.waived(file, line, "unknown-order-channel"):
                    continue
                findings.append(Finding(
                    "unknown-order-channel", file, line,
                    "%s::%s: IKDP_GUARDED_BY lists unknown context(s): %s"
                    % (cls, member, ", ".join(sorted(bad)))))


def _guard_set(payload):
    return ALL_CONTEXTS if "any" in payload else payload & ALL_CONTEXTS


def check_guard_violations(model, findings):
    """IKDP_GUARDED_BY member accessed outside its guard set.

    A function annotated IKDP_CTX_ANY must be safe in every context, so it
    may only touch members whose guard covers all three contexts.  Member
    occurrences resolve like calls do: bare names bind to the enclosing
    class, receiver-qualified accesses through the member-type table, and a
    tree-unique member name binds to its only owner.  Ambiguous receivers
    are skipped (no false positives, documented approximation).  ORDERED_BY
    members are exempt: the dynamic checker owns their serialization.
    """
    index = {}  # member name -> [(class, info)]
    for cls, members in model.guards.items():
        for member, info in members.items():
            index.setdefault(member, []).append((cls, info))
    seen = set()
    for fn in model.functions.values():
        if fn.body is None or fn.annotation is None:
            continue
        required = ALL_CONTEXTS if fn.annotation == "any" else {fn.annotation}
        for member, owners in index.items():
            if member not in fn.body:  # cheap pre-filter
                continue
            for m in re.finditer(
                    r"(?:\b(\w+)\s*(?:\.|->)\s*)?\b%s\b" % re.escape(member),
                    fn.body):
                recv = m.group(1)
                if recv is None or recv == "this":
                    cls = fn.cls
                    if cls is None or member not in model.guards.get(cls, {}):
                        continue
                else:
                    cls = model.members.get(fn.cls or "", {}).get(recv)
                    if cls is not None:
                        if member not in model.guards.get(cls, {}):
                            continue
                    elif len(owners) == 1:
                        cls = owners[0][0]
                    else:
                        continue  # ambiguous receiver: skipped
                kind, payload, gfile, gline = model.guards[cls][member]
                if kind != "guard":
                    continue
                allowed = _guard_set(payload)
                if required <= allowed:
                    continue
                line = fn.body_line + fn.body.count("\n", 0, m.start())
                key = (fn.body_file, line, cls, member)
                if key in seen:
                    continue
                seen.add(key)
                if model.waived(fn.body_file, line, "guard-violation"):
                    continue
                findings.append(Finding(
                    "guard-violation", fn.body_file, line,
                    "%s (IKDP_CTX_%s) accesses %s::%s, guarded by {%s} "
                    "(declared at %s:%d)"
                    % (fn.qname, fn.annotation.upper(), cls, member,
                       ", ".join(sorted(allowed)), gfile, gline)))


def check_stale_waivers(model, findings):
    """Waiver comments that suppressed nothing this run.

    Must run AFTER every other rule so used_waivers is complete.  A stale
    waiver is a latent hole: the finding it once hid is gone, but the
    comment would silently swallow the next regression on that line.
    """
    for file in sorted(model.raw_lines):
        for i, text in enumerate(model.raw_lines[file], 1):
            for m in WAIVER_RE.finditer(text):
                rule = m.group(1)
                if rule == "stale-waiver":
                    continue  # waiving the lint itself is meaningless
                if (file, i, rule) in model.used_waivers:
                    continue
                if rule not in KNOWN_RULES:
                    msg = "waiver names unknown rule '%s'" % rule
                else:
                    msg = ("waiver for '%s' no longer matches any finding; "
                           "delete it" % rule)
                findings.append(Finding("stale-waiver", file, i, msg))


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def collect_files(args):
    files = []
    if args.files:
        files.extend(args.files)
    if args.compile_commands:
        try:
            with open(args.compile_commands) as f:
                db = json.load(f)
        except OSError as e:
            sys.exit("kcheck: cannot read %s: %s" % (args.compile_commands, e))
        for entry in db:
            path = os.path.normpath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if args.root and args.root not in os.path.abspath(path):
                continue
            files.append(path)
    if args.root and not args.files:
        for dirpath, _, names in os.walk(args.root):
            for name in names:
                if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    seen, uniq = set(), []
    for f in files:
        a = os.path.abspath(f)
        if a not in seen and os.path.isfile(a):
            seen.add(a)
            uniq.append(f)
    if not uniq:
        sys.exit("kcheck: no input files (use --root, --compile-commands, "
                 "or list files)")
    return uniq


def run_builtin(files):
    model = Model()
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            sys.exit("kcheck: %s: %s" % (path, e))
        rel = os.path.relpath(path)
        model.raw_lines[rel] = text.splitlines()
        FileParser(model, rel, strip_comments_and_strings(text)).parse()
    return model


def run_libclang(files):
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        sys.exit("kcheck: --frontend=libclang requires the clang python "
                 "bindings (package `libclang`); they are not installed in "
                 "this environment.  Use the default --frontend=builtin.")
    # The libclang frontend shares the rule engine: it only has to fill a
    # Model.  Left as an optional path; the builtin frontend is canonical.
    sys.exit("kcheck: libclang frontend not implemented in this build; "
             "use --frontend=builtin")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="explicit source files to scan")
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="compile_commands.json to derive the TU list from")
    ap.add_argument("--root", metavar="DIR",
                    help="scan all C++ sources under DIR (default: src/ when "
                         "no files are given)")
    ap.add_argument("--frontend", choices=("builtin", "libclang"),
                    default="builtin")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON on stdout")
    ap.add_argument("--list-functions", action="store_true",
                    help="dump the parsed function database and exit")
    args = ap.parse_args(argv)

    if not args.files and not args.root and not args.compile_commands:
        args.root = "src" if os.path.isdir("src") else None

    files = collect_files(args)
    if args.frontend == "libclang":
        model = run_libclang(files)
    else:
        model = run_builtin(files)

    if args.list_functions:
        for qname in sorted(model.functions):
            fn = model.functions[qname]
            print("%-50s %-10s %s" % (qname, fn.annotation or "-",
                                      "def" if fn.body is not None else "decl"))
        return 0

    findings = []
    check_annotation_conflicts(model, findings)
    check_annotation_mismatch(model, findings)
    check_data_annotations(model, findings)
    check_guard_violations(model, findings)
    check_context_reachability(model, findings)
    check_charge_domination(model, findings)
    check_buf_discipline(model, findings)
    check_stale_waivers(model, findings)  # last: consumes used_waivers

    if args.json:
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        print("kcheck: %d file(s), %d function(s), %d finding(s)"
              % (len(files), len(model.functions), len(findings)),
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
