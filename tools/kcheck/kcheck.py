#!/usr/bin/env python3
"""kcheck: context-discipline and buffer-ownership static analysis.

Checks the ikdp source tree against the execution-context contract declared
with the IKDP_CTX_* annotations (src/kern/ctx.h) and the 4.2BSD buffer flag
discipline enforced at runtime by BufStateChecker (src/buf/buf_check.h).

Rule classes
------------
  interrupt-sleep      A blocking primitive (CpuSystem::Sleep / CpuSystem::Use
                       or any IKDP_CTX_PROCESS-annotated function) is reachable
                       through the call graph from a function annotated
                       IKDP_CTX_INTERRUPT, IKDP_CTX_SOFTCLOCK, or IKDP_CTX_ANY.
  undominated-charge   CpuSystem::ChargeInterrupt is called from a function
                       that is neither annotated IKDP_CTX_INTERRUPT nor
                       lexically dominated by an InInterrupt() check.
  buf-double-release   The same buffer variable is released (Brelse /
                       FreeTransientHeader) twice in straight-line code with
                       no re-acquisition in between.
  buf-release-unowned  A locally declared Buf is released or written
                       (Brelse / Bwrite / Bawrite / BawriteAsync / Bdwrite /
                       FreeTransientHeader) without a visible acquisition
                       (bread / getblk / transient alloc / Set(kBufBusy)).
  annotation-conflict  A function carries two different IKDP_CTX_* annotations
                       across its declarations/definition.
  annotation-mismatch  A function's out-of-line definition carries an
                       IKDP_CTX_* annotation but its declaration does not:
                       the contract is invisible to callers reading the
                       header.  (Both-annotated-differently is reported as
                       annotation-conflict.)
  guard-violation      A member annotated IKDP_GUARDED_BY(ctx, ...) is
                       accessed from a function whose IKDP_CTX_* annotation
                       resolves outside the member's guard set (`any` on a
                       function means it must be safe in every context, so
                       it may only touch members guarded by all three).
                       Members annotated IKDP_ORDERED_BY are exempt here:
                       their cross-context serialization is checked
                       dynamically by src/sim/krace.h channel edges.
  unknown-order-channel  An IKDP_ORDERED_BY names a channel outside the
                       known set (callout, biodone, reaper, diskq), or an
                       IKDP_GUARDED_BY lists an unknown context.
  stale-waiver         A `kcheck: allow(<rule>)` comment no longer matches
                       any finding (or names an unknown rule); delete it so
                       dead waivers cannot hide future regressions.

Lock rules (the static half of klock, docs/klock.md)
----------------------------------------------------
Locks are SpinLock / SleepLock members carrying an IKDP_LOCK_RANK(name, n)
trailer; members guarded by one are annotated IKDP_GUARDED_BY(lock:<name>).
kcheck tracks the lexically-held lock set through each function body
(Acquire / AcquireUncontended / Release / SpinGuard, with blocks that end in
return/break/continue restoring the pre-block set, and lambda bodies —
deferred callbacks — starting from an empty set).  Helpers that are only
ever called with a lock held inherit it through a caller-intersection
fixpoint, so `// lock-held` helpers need no annotation.

  lock-order-cycle     An acquisition order contradiction: a lock acquired
                       while holding one of equal or higher rank, two sites
                       acquiring a pair of locks in opposite orders (a cycle
                       in the observed order graph), or one lock name
                       declared with two different ranks.
  sleep-under-spinlock A blocking operation — CpuSystem::Sleep / Use
                       (directly or through the call graph), a SleepLock
                       Acquire, or a co_await — reached while a SpinLock is
                       held.  A spinning CPU cannot yield the processor.
  lock-guard-violation A member annotated IKDP_GUARDED_BY(lock:<name>) is
                       accessed at a point where <name> is not held.
  unreleased-lock      A path (early return, lambda end, or fall-off-end)
                       leaves a locally-acquired lock held, and the function
                       is not annotated IKDP_ACQUIRES(<name>).
  double-acquire       A held lock is acquired again — directly, through a
                       callee that (transitively) acquires it, or by calling
                       a function annotated IKDP_EXCLUDES(<name>) while
                       holding <name>.  On a uniprocessor this is a
                       self-deadlock, not contention.

Frontends
---------
The default frontend is a built-in lightweight C++ parser (comment/string
stripping, brace-scope tracking, qualified-name call graph).  It needs no
third-party packages and is what CI runs.  `--frontend=libclang` uses the
clang python bindings when they are installed; it is optional and gated —
kcheck exits with a clear message if the bindings are missing.

Known approximations of the builtin frontend (see docs/kcheck.md):
  * calls through an unresolvable receiver whose bare name matches more than
    one known function are skipped (no false positives, possible misses);
  * ChargeInterrupt domination is lexical: any earlier InInterrupt token in
    the same function body counts;
  * buf ownership is intraprocedural; function parameters and members are
    exempt (ownership transfer across calls is the runtime checker's job);
  * double-release is only flagged in straight-line code (no intervening
    closing brace or `else`), so branch-exclusive releases stay quiet.

A finding can be waived in place with a trailing `// kcheck: allow(<rule>)`
comment on the offending line; use sparingly and justify next to it.

Usage
-----
  kcheck.py [--compile-commands build/compile_commands.json] [--root src]
            [--frontend builtin|libclang] [--json] [--list-functions] [files...]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import bisect
import hashlib
import json
import os
import re
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import kpath  # noqa: E402  (the CFG/dataflow substrate, same directory)

ANNOTATION_MACROS = {
    "IKDP_CTX_PROCESS": "process",
    "IKDP_CTX_INTERRUPT": "interrupt",
    "IKDP_CTX_SOFTCLOCK": "softclock",
    "IKDP_CTX_ANY": "any",
}
NONBLOCKING_CTX = {"interrupt", "softclock", "any"}
ALL_CONTEXTS = frozenset({"process", "interrupt", "softclock"})

# Ordering channels the dynamic checker (src/sim/krace.h) knows how to
# carry; IKDP_ORDERED_BY must name one of these.
KNOWN_ORDER_CHANNELS = {"callout", "biodone", "reaper", "diskq"}

# Every rule kcheck can emit; waiver comments naming anything else are stale
# by construction.
KNOWN_RULES = {
    "interrupt-sleep", "undominated-charge", "buf-double-release",
    "buf-release-unowned", "annotation-conflict", "annotation-mismatch",
    "guard-violation", "unknown-order-channel", "stale-waiver",
    "lock-order-cycle", "sleep-under-spinlock", "lock-guard-violation",
    "unreleased-lock", "double-acquire",
    # kpath error-path families (CFG + interprocedural summaries).
    "errno-clobber", "discarded-failure", "resource-leak-on-error-path",
    "charge-context-mismatch",
}

# Functions whose resolved call (transitively, outside lambda bodies) means
# "this may give up the processor" for sleep-under-spinlock.
MAY_BLOCK_SEEDS = {"CpuSystem::Sleep", "CpuSystem::Use", "SleepLock::Acquire"}

# The lock primitives' own classes: their method bodies implement the
# discipline rather than follow it, so the lock rules skip them.
LOCK_IMPL_CLASSES = {"SpinLock", "SleepLock", "SpinGuard", "LockdepValidator"}

# Blocking primitives recognized even without (in addition to) annotations.
BLOCKING_PRIMITIVES = {"CpuSystem::Sleep", "CpuSystem::Use"}

# Buffer-ownership vocabulary (rule class "busy-flag misuse").
BUF_ACQUIRE_NAMES = {
    "Bread", "Breada", "GetBlk", "TryGetBlk", "TryGrabFree",
    "AllocTransientHeader", "FreelistPop",
}
BUF_RELEASE_NAMES = {"Brelse", "FreeTransientHeader"}
# name -> index of the buffer argument (0-based).
BUF_WRITE_NAMES = {"Bwrite": 1, "Bawrite": 1, "Bdwrite": 1, "BawriteAsync": 0}

CPP_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "co_await", "co_return", "co_yield", "const",
    "constexpr", "const_cast", "continue", "decltype", "default", "delete",
    "do", "double", "dynamic_cast", "else", "enum", "explicit", "export",
    "extern", "false", "float", "for", "friend", "goto", "if", "inline",
    "int", "long", "mutable", "namespace", "new", "noexcept", "nullptr",
    "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this",
    "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while", "assert",
    "defined",
}


def blank_preprocessor_lines(text):
    """Blanks preprocessor directive lines (with their backslash
    continuations), preserving newlines so offsets keep mapping.

    Directives are not statements: without this, a function-like macro
    definition (`#define CHECK(x) ...`) merges into the NEXT declaration
    head, the balanced-paren scan takes the macro's parameter list, and the
    function that follows — its return type now stranded on its own line
    relative to the matched name — silently drops out of the database.
    Run AFTER strip_comments_and_strings so a '#' inside a comment or
    string cannot blank a real code line.
    """
    out = []
    continued = False
    for line in text.split("\n"):
        if continued or line.lstrip().startswith("#"):
            continued = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            continued = False
            out.append(line)
    return "\n".join(out)


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal contents with spaces.

    Newlines are preserved so offsets keep mapping to the original lines.
    """
    out = list(text)
    i, n = 0, len(text)
    CODE, LINE, BLOCK, STR, CHR = range(5)
    state = CODE
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STR
                out[i] = " "
            elif c == "'":
                state = CHR
                out[i] = " "
            i += 1
        elif state == LINE:
            if c == "\n":
                state = CODE
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = CODE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # STR / CHR
            quote = '"' if state == STR else "'"
            if c == "\\":
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = CODE
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


class Function:
    def __init__(self, qname):
        self.qname = qname          # "Class::Name" or "Name" (free function)
        self.annotation = None      # process / interrupt / softclock / any
        self.annotation_site = None  # (file, line) that set it
        self.conflict = None        # (file, line, other_annotation)
        self.body = None            # stripped body text (definition)
        self.body_file = None
        self.body_line = None       # 1-based line of the opening brace
        self.calls = []             # (receiver or None, name, file, line)
        # Lock contract (IKDP_ACQUIRES / IKDP_RELEASES / IKDP_EXCLUDES /
        # IKDP_REQUIRES).
        self.acquires = set()
        self.releases = set()
        self.excludes = set()
        self.requires = set()       # held at entry AND exit (may drop inside)
        self.params = {}            # parameter name -> base type (best effort)
        self.entry_held = frozenset()  # locks held on entry (fixpoint result)
        self.lambda_regions = []    # [(start, end)] lambda bodies within body
        self.locals = None          # lazily-built {local ptr/ref -> class}
        self.cfgs = None            # lazily-built (main_cfg, [lambda_cfg])
        # Per-site annotation tracking for the annotation-mismatch rule.
        self.decl_annotation = None  # annotation seen on a declaration
        self.declared_at = None      # (file, line) of first declaration seen
        self.def_annotation = None   # annotation seen on the definition head
        self.def_out_of_line = False  # definition had an explicit Class:: head

    @property
    def cls(self):
        return self.qname.rsplit("::", 1)[0] if "::" in self.qname else None

    @property
    def name(self):
        return self.qname.rsplit("::", 1)[-1]


class Model:
    """Everything kcheck knows about the tree."""

    def __init__(self):
        self.functions = {}   # qname -> Function
        self.by_name = {}     # bare name -> [Function]
        self.members = {}     # class -> {member: type-class}
        self.raw_lines = {}   # file -> original text lines (for waivers)
        # Data-side annotations (IKDP_GUARDED_BY / IKDP_ORDERED_BY):
        # class -> {member: ("guard", frozenset(ctx), file, line) |
        #                   ("order", channel, file, line) |
        #                   ("lockguard", lockname, file, line)}
        self.guards = {}
        # Sticky-errno registry (IKDP_STICKY_ERRNO member trailers):
        # class -> {member: (file, line)}
        self.sticky = {}
        # Lock registry from IKDP_LOCK_RANK member trailers:
        # lock name -> (class, member, rank, spin, file, line)
        self.locks = {}
        self.lock_members = {}      # (class, member) -> lock name
        self.lock_rank_conflicts = []  # (name, rank, file, line) duplicates
        # IKDP_ACQUIRED_AFTER declarations, checked against the rank table:
        # (class, member, other member, file, line)
        self.lock_acq_after = []
        # Waivers that actually suppressed a finding this run, so the
        # stale-waiver lint can flag the rest.
        self.used_waivers = set()

    def function(self, qname):
        fn = self.functions.get(qname)
        if fn is None:
            fn = Function(qname)
            self.functions[qname] = fn
            self.by_name.setdefault(fn.name, []).append(fn)
        return fn

    def waived(self, file, line, rule):
        lines = self.raw_lines.get(file)
        if not lines or not 1 <= line <= len(lines):
            return False
        if "kcheck: allow(%s)" % rule in lines[line - 1]:
            self.used_waivers.add((file, line, rule))
            return True
        return False


# Head of a function declaration/definition: tolerant of return types,
# templates in types, cv-qualifiers, trailing specifiers and ctor init lists.
CALL_RE = re.compile(r"(?:(\w+)\s*(?:\.|->)\s*)?(~?\w+)\s*\(")
QUAL_CALL_RE = re.compile(r"(\w+)\s*::\s*(\w+)\s*\(")
MEMBER_RE = re.compile(
    r"^\s*(?:(?:const|mutable|static|constexpr)\s+)*([A-Za-z_]\w*)\s*"
    r"(?:<[^;<>]*>)?\s*([*&]\s*)?([A-Za-z_]\w*_)\s*"
    r"(?:IKDP_\w+\s*(?:\([^)]*\))?\s*)*(?:=[^;]*)?;",
    re.M)
# A member declarator trailed by a data-side annotation.  The member name is
# whatever identifier immediately precedes the macro (guards trail the
# declarator, per src/kern/ctx.h).
GUARD_RE = re.compile(r"\b([A-Za-z_]\w*)\s+IKDP_GUARDED_BY\s*\(([^)]*)\)")
# A sticky-first-errno member: written once on the first failure, then
# preserved (`if (x == 0) x = e;`).  Trails the declarator, after any other
# member annotation (src/kern/ctx.h).
STICKY_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+(?:IKDP_\w+\s*\([^)]*\)\s*)*IKDP_STICKY_ERRNO\b")
ORDER_RE = re.compile(r"\b([A-Za-z_]\w*)\s+IKDP_ORDERED_BY\s*\(\s*([A-Za-z_]\w*)\s*\)")
WAIVER_RE = re.compile(r"kcheck:\s*allow\(([A-Za-z][\w-]*)\)")
# A lock member declarator: `SpinLock lock_ IKDP_LOCK_RANK(cache, 40) = ...`.
LOCK_RANK_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+IKDP_LOCK_RANK\s*\(\s*([A-Za-z_]\w*)\s*,\s*(\d+)\s*\)")
# Function-head lock contract macros (lead the declaration, like IKDP_CTX_*).
FUNC_LOCK_ANN_RE = re.compile(
    r"\bIKDP_(ACQUIRES|RELEASES|EXCLUDES|REQUIRES)\s*\(\s*([A-Za-z_]\w*)\s*\)")
# A lock member declaring its place in the order relative to a sibling lock
# MEMBER (the payload is a member name so the Clang TSA bridge gets a valid
# capability expression): `SpinLock b_ IKDP_LOCK_RANK(beta, 20)
# IKDP_ACQUIRED_AFTER(a_)`.  kcheck cross-checks the claim against the ranks.
ACQ_AFTER_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+(?:IKDP_\w+\s*\([^)]*\)\s*)*"
    r"IKDP_ACQUIRED_AFTER\s*\(\s*([A-Za-z_]\w*)\s*\)")
# Lock operations on a (possibly receiver-qualified) lock member.  `->` on
# the lock itself is not used (locks are held by value); `source_->Release`
# style endpoint calls therefore do not match.
LOCK_OP_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?\b([A-Za-z_]\w*)\s*\.\s*"
    r"(Acquire|AcquireUncontended|Release)\s*\(")
SPINGUARD_RE = re.compile(
    r"\bSpinGuard\s+\w+\s*\(\s*(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?"
    r"([A-Za-z_]\w*)\s*\)")
# The tail of a statement head that introduces a lambda body: capture list,
# optional parameter list / specifiers / trailing return type.
LAMBDA_TAIL_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?(?:noexcept\b\s*)?"
    r"(?:->\s*[\w:<>,&*\s]+?)?\s*$")


def parse_head(head):
    """Extracts (qualifier, name, annotation, lock_ann) from a declaration
    head.

    Returns None if the head does not look like a function.  `qualifier` is
    the explicit `Class::` prefix of an out-of-line definition, or None.
    `lock_ann` maps ACQUIRES/RELEASES/EXCLUDES to the named locks.  The lock
    macros carry parentheses, so they are recorded and stripped BEFORE the
    balanced-paren scan that finds the parameter list.
    """
    lock_ann = {}
    for m in FUNC_LOCK_ANN_RE.finditer(head):
        lock_ann.setdefault(m.group(1), set()).add(m.group(2))
    head = FUNC_LOCK_ANN_RE.sub(" ", head)
    annotation = None
    for macro, ctx in ANNOTATION_MACROS.items():
        if re.search(r"\b%s\b" % macro, head):
            annotation = ctx
            break
    # Cut a constructor initializer list: "...) : member_(x)" -> keep up to ')'.
    # Find the parameter list: the last top-level "(...)" group.
    depth = 0
    open_idx = close_idx = -1
    for idx, ch in enumerate(head):
        if ch == "(":
            if depth == 0:
                open_idx = idx
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                close_idx = idx
                break  # first balanced group: the parameter list
    if open_idx < 0 or close_idx < 0:
        return None
    before = head[:open_idx].rstrip()
    m = re.search(r"(?:(\w+)\s*::\s*)?(~?\w+|operator\s*[^\s]+)$", before)
    if not m:
        return None
    qualifier, name = m.group(1), m.group(2)
    if name.startswith("operator"):
        return None
    bare = name.lstrip("~")
    if bare in CPP_KEYWORDS:
        return None
    # Heads like "return foo(" or "x = foo(" are statements, not declarations.
    prefix = before[: m.start()].strip()
    if prefix.endswith(("=", "return", ",", "(", "&&", "||", "!")):
        return None
    return qualifier, name, annotation, lock_ann


def parse_params(head):
    """Best-effort parameter name -> base type map from a definition head."""
    head = FUNC_LOCK_ANN_RE.sub(" ", head)
    depth = 0
    open_idx = close_idx = -1
    for idx, ch in enumerate(head):
        if ch == "(":
            if depth == 0:
                open_idx = idx
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                close_idx = idx
                break
    if open_idx < 0 or close_idx < 0:
        return {}
    params = {}
    for arg in _split_args(head[open_idx + 1:close_idx]):
        arg = arg.split("=")[0].strip()
        m = re.search(r"([A-Za-z_]\w*)\s*(?:<[^<>]*>)?[\s*&]+([A-Za-z_]\w*)$",
                      arg)
        if m and m.group(1) not in CPP_KEYWORDS:
            params[m.group(2)] = m.group(1)
    return params


def find_matching_brace(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def line_of(code, idx, _cache={}):
    return code.count("\n", 0, idx) + 1


class FileParser:
    """Scope-tracking scan of one preprocessed (stripped) file."""

    def __init__(self, model, path, code):
        self.model = model
        self.path = path
        self.code = code

    def parse(self):
        self._scan_members()
        self._scan_scopes()

    def _scan_members(self):
        # Member variable types per class, for receiver resolution
        # (cpu_ -> CpuSystem).  Scans class bodies found by a simple pass.
        for m in re.finditer(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{(]*\{", self.code):
            cls = m.group(1)
            end = find_matching_brace(self.code, m.end() - 1)
            body = self.code[m.end():end]
            table = self.model.members.setdefault(cls, {})
            for mem in MEMBER_RE.finditer(body):
                table.setdefault(mem.group(3), mem.group(1))
            guards = self.model.guards.setdefault(cls, {})
            for mem in GUARD_RE.finditer(body):
                entries = [c.strip() for c in mem.group(2).split(",")
                           if c.strip()]
                line = line_of(self.code, m.end() + mem.start())
                locknames = [e[len("lock:"):].strip() for e in entries
                             if e.startswith("lock:")]
                if locknames:
                    guards.setdefault(mem.group(1),
                                      ("lockguard", locknames[0],
                                       self.path, line))
                    continue
                guards.setdefault(mem.group(1),
                                  ("guard", frozenset(entries),
                                   self.path, line))
            for mem in LOCK_RANK_RE.finditer(body):
                member, lockname, rank = (mem.group(1), mem.group(2),
                                          int(mem.group(3)))
                line = line_of(self.code, m.end() + mem.start())
                mtype = table.get(member)
                spin = mtype != "SleepLock"
                prev = self.model.locks.get(lockname)
                if prev is not None and prev[2] != rank:
                    self.model.lock_rank_conflicts.append(
                        (lockname, rank, self.path, line))
                    continue
                self.model.locks.setdefault(
                    lockname, (cls, member, rank, spin, self.path, line))
                self.model.lock_members[(cls, member)] = lockname
            for mem in ACQ_AFTER_RE.finditer(body):
                line = line_of(self.code, m.end() + mem.start())
                self.model.lock_acq_after.append(
                    (cls, mem.group(1), mem.group(2), self.path, line))
            for mem in ORDER_RE.finditer(body):
                line = line_of(self.code, m.end() + mem.start())
                guards.setdefault(mem.group(1),
                                  ("order", mem.group(2), self.path, line))
            for mem in STICKY_RE.finditer(body):
                line = line_of(self.code, m.end() + mem.start())
                self.model.sticky.setdefault(cls, {}).setdefault(
                    mem.group(1), (self.path, line))

    def _scan_scopes(self):
        code = self.code
        # Scope stack entries: (kind, name) where kind in
        # {ns, class, enum, func, block}.
        stack = []
        head_start = 0
        i = 0
        n = len(code)
        while i < n:
            c = code[i]
            if c == "{":
                head = code[head_start:i]
                kind, name = self._classify_head(head, stack)
                if kind == "func":
                    end = find_matching_brace(code, i)
                    self._record_definition(name, head, i, end)
                    i = end + 1
                    head_start = i
                    # Function bodies are consumed wholesale; nothing pushed.
                    continue
                stack.append((kind, name))
                i += 1
                head_start = i
            elif c == "}":
                if stack:
                    stack.pop()
                i += 1
                head_start = i
            elif c == ";":
                head = code[head_start:i]
                self._record_declaration(head, stack, head_start)
                i += 1
                head_start = i
            else:
                i += 1

    def _classify_head(self, head, stack):
        h = head.strip()
        m = re.search(r"\bnamespace\s+([A-Za-z_]\w*)?\s*$", h)
        if m:
            return "ns", m.group(1) or "<anon>"
        if re.search(r"\benum\b", h):
            return "enum", None
        m = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{]*)?$", h)
        if m:
            return "class", m.group(1)
        # Inside a function or plain block, any further brace is a block.
        kinds = [k for k, _ in stack]
        if "func" in kinds:
            return "block", None
        # Initializers like `int x = {...}` or array/aggregate init.
        if h.endswith("=") or re.search(r"=\s*$", h):
            return "block", None
        parsed = parse_head(h)
        if parsed and self._in_decl_scope(stack):
            return "func", parsed
        return "block", None

    @staticmethod
    def _in_decl_scope(stack):
        return all(k in ("ns", "class") for k, _ in stack)

    def _enclosing_class(self, stack):
        for kind, name in reversed(stack):
            if kind == "class":
                return name
        return None

    def _record_declaration(self, head, stack, head_pos):
        if not self._in_decl_scope(stack):
            return
        parsed = parse_head(head.strip())
        if not parsed:
            return
        qualifier, name, annotation, lock_ann = parsed
        if name.startswith("IKDP_"):
            return  # a data-member annotation macro, not a function
        line = line_of(self.code, head_pos + len(head) - len(head.lstrip()))
        cls = qualifier or self._enclosing_class(stack)
        qname = "%s::%s" % (cls, name) if cls else name
        fn = self.model.function(qname)
        self._apply_lock_ann(fn, lock_ann)
        if annotation is None:
            # Track that a declaration exists: annotation-mismatch needs to
            # distinguish "unannotated declaration" from "no declaration".
            if fn.declared_at is None:
                fn.declared_at = (self.path, line)
            return
        if fn.declared_at is None:
            fn.declared_at = (self.path, line)
        if fn.decl_annotation is None:
            fn.decl_annotation = annotation
        self._annotate(fn, annotation, line)

    @staticmethod
    def _apply_lock_ann(fn, lock_ann):
        fn.acquires |= lock_ann.get("ACQUIRES", set())
        fn.releases |= lock_ann.get("RELEASES", set())
        fn.excludes |= lock_ann.get("EXCLUDES", set())
        fn.requires |= lock_ann.get("REQUIRES", set())

    def _record_definition(self, parsed, head, brace_idx, end_idx):
        qualifier, name, annotation, lock_ann = parsed
        # The enclosing class comes from the scope stack captured at classify
        # time; re-derive it from the explicit qualifier or the stack head.
        cls = qualifier or self._pending_class
        qname = "%s::%s" % (cls, name) if cls else name
        fn = self.model.function(qname)
        self._apply_lock_ann(fn, lock_ann)
        fn.params.update(parse_params(head))
        line = line_of(self.code, brace_idx)
        if annotation is not None:
            fn.def_annotation = annotation
            fn.def_out_of_line = qualifier is not None
            self._annotate(fn, annotation, line)
        body = self.code[brace_idx + 1:end_idx]
        fn.body = body
        fn.body_file = self.path
        fn.body_line = line
        base = brace_idx + 1
        for m in QUAL_CALL_RE.finditer(body):
            fn.calls.append((("::", m.group(1)), m.group(2), self.path,
                             line_of(self.code, base + m.start())))
        for m in CALL_RE.finditer(body):
            callee = m.group(2)
            if callee.lstrip("~") in CPP_KEYWORDS:
                continue
            # Skip the qualified ones already captured (receiver "::").
            pre = body[max(0, m.start() - 2):m.start()]
            if pre.rstrip().endswith("::"):
                continue
            fn.calls.append((m.group(1), callee, self.path,
                             line_of(self.code, base + m.start())))

    def _annotate(self, fn, annotation, line):
        if fn.annotation is None:
            fn.annotation = annotation
            fn.annotation_site = (self.path, line)
        elif fn.annotation != annotation and fn.conflict is None:
            fn.conflict = (self.path, line, annotation)

    # Patched in during _scan_scopes via classify: the class enclosing a
    # definition found inline in a class body.
    _pending_class = None


# FileParser._classify_head cannot easily pass the enclosing class through to
# _record_definition, so wrap the two calls.
_orig_classify = FileParser._classify_head


def _classify_with_class(self, head, stack):
    kind, name = _orig_classify(self, head, stack)
    if kind == "func":
        self._pending_class = self._enclosing_class(stack)
    return kind, name


FileParser._classify_head = _classify_with_class


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def as_dict(self):
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.rule, self.message)


def resolve_call(model, caller, receiver, name):
    """Returns the unique Function a call site can refer to, or None."""
    if isinstance(receiver, tuple):  # explicit Class::name qualification
        return model.functions.get("%s::%s" % (receiver[1], name))
    if receiver:
        # Receiver is a member variable of the caller's class with known type.
        table = model.members.get(caller.cls or "", {})
        rcls = table.get(receiver)
        if rcls:
            fn = model.functions.get("%s::%s" % (rcls, name))
            if fn:
                return fn
        # fall through: receiver of unknown type
    else:
        # Unqualified: prefer a method of the caller's own class.
        if caller.cls:
            own = model.functions.get("%s::%s" % (caller.cls, name))
            if own:
                return own
    cands = model.by_name.get(name, [])
    if len(cands) == 1:
        return cands[0]
    return None  # unknown or ambiguous: skipped (documented approximation)


def is_blocking(fn):
    return fn.qname in BLOCKING_PRIMITIVES or fn.annotation == "process"


def check_context_reachability(model, findings):
    roots = [f for f in model.functions.values()
             if f.annotation in NONBLOCKING_CTX and f.body is not None]
    for root in roots:
        # BFS with path reconstruction; each function visited once per root.
        seen = {root.qname}
        queue = [(root, [])]
        while queue:
            fn, path = queue.pop(0)
            for receiver, name, file, line in fn.calls:
                callee = resolve_call(model, fn, receiver, name)
                if callee is None or callee.qname in seen:
                    continue
                step = path + [(fn, callee, file, line)]
                if is_blocking(callee):
                    if model.waived(file, line, "interrupt-sleep"):
                        continue
                    chain = " -> ".join([root.qname] +
                                        [c.qname for _, c, _, _ in step])
                    findings.append(Finding(
                        "interrupt-sleep", file, line,
                        "%s (%s) reaches blocking %s: %s"
                        % (root.qname, root.annotation, callee.qname, chain)))
                    continue
                seen.add(callee.qname)
                if callee.body is not None:
                    queue.append((callee, step))


def check_charge_domination(model, findings):
    for fn in model.functions.values():
        if fn.body is None or fn.name == "ChargeInterrupt":
            continue
        for m in re.finditer(r"\bChargeInterrupt\s*\(", fn.body):
            if fn.annotation == "interrupt":
                continue
            if "InInterrupt" in fn.body[:m.start()]:
                continue
            line = fn.body_line + fn.body.count("\n", 0, m.start())
            if model.waived(fn.body_file, line, "undominated-charge"):
                continue
            findings.append(Finding(
                "undominated-charge", fn.body_file, line,
                "%s calls ChargeInterrupt without IKDP_CTX_INTERRUPT and "
                "without a dominating InInterrupt() check" % fn.qname))


def _last_ident(expr):
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else None


def check_buf_discipline(model, findings):
    for fn in model.functions.values():
        body = fn.body
        if body is None:
            continue
        local_bufs = set(re.findall(r"\bBuf\s*\*?\s*(\w+)\s*(?:=|;)", body))
        params = set(re.findall(r"[A-Za-z_]\w*", body[:0]))  # placeholder
        events = []  # (pos, kind, var, argtext)
        for m in re.finditer(r"\b(\w+)\s*=\s*[^;]*?\b(%s)\s*\(" %
                             "|".join(BUF_ACQUIRE_NAMES), body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*Set\s*\(\s*kBufBusy", body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*flags\s*\|?=\s*[^;]*kBufBusy", body):
            events.append((m.start(), "acquire", m.group(1)))
        for m in re.finditer(r"\b(%s)\s*\(([^;]*?)\)" %
                             "|".join(BUF_RELEASE_NAMES), body):
            var = _last_ident(m.group(2))
            if var:
                events.append((m.start(), "release", var))
        for name, argidx in BUF_WRITE_NAMES.items():
            for m in re.finditer(r"\b%s\s*\(([^;]*?)\)" % name, body):
                args = _split_args(m.group(1))
                if len(args) > argidx:
                    var = _last_ident(args[argidx])
                    if var:
                        events.append((m.start(), "write", var))
        events.sort()
        owned, released = set(), {}
        for pos, kind, var in events:
            line = fn.body_line + body.count("\n", 0, pos)
            if kind == "acquire":
                owned.add(var)
                released.pop(var, None)
                continue
            if var in released:
                prev = released[var]
                between = body[prev:pos]
                # Straight-line only: a closing brace or else between the two
                # releases means branch-exclusive paths; stay quiet.
                if "}" not in between and not re.search(r"\belse\b", between):
                    if not model.waived(fn.body_file, line, "buf-double-release"):
                        findings.append(Finding(
                            "buf-double-release", fn.body_file, line,
                            "%s releases '%s' twice without re-acquisition"
                            % (fn.qname, var)))
                continue
            if var in local_bufs and var not in owned:
                if not model.waived(fn.body_file, line, "buf-release-unowned"):
                    findings.append(Finding(
                        "buf-release-unowned", fn.body_file, line,
                        "%s %ss local Buf '%s' with no visible acquisition "
                        "(bread/getblk/transient alloc/Set(kBufBusy))"
                        % (fn.qname, kind, var)))
            owned.discard(var)
            released[var] = pos


def _split_args(argtext):
    args, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    args.append("".join(cur))
    return args


def check_annotation_conflicts(model, findings):
    for fn in model.functions.values():
        if fn.conflict:
            file, line, other = fn.conflict
            findings.append(Finding(
                "annotation-conflict", file, line,
                "%s annotated both %s (%s:%d) and %s"
                % (fn.qname, fn.annotation, fn.annotation_site[0],
                   fn.annotation_site[1], other)))


def check_annotation_mismatch(model, findings):
    """Out-of-line definition annotated, declaration silent.

    The declaration is what callers (and kcheck's own call-graph rules, which
    see the header first) read; an annotation living only on the definition
    is a contract nobody can rely on.  Both-sites-annotated-differently is
    annotation-conflict, not this rule.
    """
    for fn in model.functions.values():
        if (fn.def_annotation is None or not fn.def_out_of_line
                or fn.declared_at is None):
            continue
        if fn.decl_annotation is not None:
            continue
        file, line = fn.body_file, fn.body_line
        if model.waived(file, line, "annotation-mismatch"):
            continue
        findings.append(Finding(
            "annotation-mismatch", file, line,
            "%s: out-of-line definition is annotated IKDP_CTX_%s but the "
            "declaration at %s:%d carries no annotation; annotate the "
            "declaration"
            % (fn.qname, fn.def_annotation.upper(),
               fn.declared_at[0], fn.declared_at[1])))


def check_data_annotations(model, findings):
    """Vocabulary validation for IKDP_GUARDED_BY / IKDP_ORDERED_BY."""
    for cls, members in sorted(model.guards.items()):
        for member, (kind, payload, file, line) in sorted(members.items()):
            if kind == "order":
                if payload in KNOWN_ORDER_CHANNELS:
                    continue
                if model.waived(file, line, "unknown-order-channel"):
                    continue
                findings.append(Finding(
                    "unknown-order-channel", file, line,
                    "%s::%s is IKDP_ORDERED_BY(%s); known channels: %s"
                    % (cls, member, payload,
                       ", ".join(sorted(KNOWN_ORDER_CHANNELS)))))
            elif kind == "lockguard":
                if payload in model.locks:
                    continue
                if model.waived(file, line, "lock-guard-violation"):
                    continue
                findings.append(Finding(
                    "lock-guard-violation", file, line,
                    "%s::%s is IKDP_GUARDED_BY(lock:%s), but no lock named "
                    "'%s' is declared with IKDP_LOCK_RANK; known locks: %s"
                    % (cls, member, payload, payload,
                       ", ".join(sorted(model.locks)) or "(none)")))
            else:
                bad = payload - ALL_CONTEXTS - {"any"}
                if not bad:
                    continue
                if model.waived(file, line, "unknown-order-channel"):
                    continue
                findings.append(Finding(
                    "unknown-order-channel", file, line,
                    "%s::%s: IKDP_GUARDED_BY lists unknown context(s): %s"
                    % (cls, member, ", ".join(sorted(bad)))))


def _guard_set(payload):
    return ALL_CONTEXTS if "any" in payload else payload & ALL_CONTEXTS


def check_guard_violations(model, findings):
    """IKDP_GUARDED_BY member accessed outside its guard set.

    A function annotated IKDP_CTX_ANY must be safe in every context, so it
    may only touch members whose guard covers all three contexts.  Member
    occurrences resolve like calls do: bare names bind to the enclosing
    class, receiver-qualified accesses through the member-type table, and a
    tree-unique member name binds to its only owner.  Ambiguous receivers
    are skipped (no false positives, documented approximation).  ORDERED_BY
    members are exempt: the dynamic checker owns their serialization.
    """
    index = {}  # member name -> [(class, info)]
    for cls, members in model.guards.items():
        for member, info in members.items():
            index.setdefault(member, []).append((cls, info))
    seen = set()
    for fn in model.functions.values():
        if fn.body is None or fn.annotation is None:
            continue
        required = ALL_CONTEXTS if fn.annotation == "any" else {fn.annotation}
        for member, owners in index.items():
            if member not in fn.body:  # cheap pre-filter
                continue
            for m in re.finditer(
                    r"(?:\b(\w+)\s*(?:\.|->)\s*)?\b%s\b" % re.escape(member),
                    fn.body):
                recv = m.group(1)
                if recv is None or recv == "this":
                    cls = fn.cls
                    if cls is None or member not in model.guards.get(cls, {}):
                        continue
                else:
                    cls = model.members.get(fn.cls or "", {}).get(recv)
                    if cls is not None:
                        if member not in model.guards.get(cls, {}):
                            continue
                    elif len(owners) == 1:
                        cls = owners[0][0]
                    else:
                        continue  # ambiguous receiver: skipped
                kind, payload, gfile, gline = model.guards[cls][member]
                if kind != "guard":
                    continue
                allowed = _guard_set(payload)
                if required <= allowed:
                    continue
                line = fn.body_line + fn.body.count("\n", 0, m.start())
                key = (fn.body_file, line, cls, member)
                if key in seen:
                    continue
                seen.add(key)
                if model.waived(fn.body_file, line, "guard-violation"):
                    continue
                findings.append(Finding(
                    "guard-violation", fn.body_file, line,
                    "%s (IKDP_CTX_%s) accesses %s::%s, guarded by {%s} "
                    "(declared at %s:%d)"
                    % (fn.qname, fn.annotation.upper(), cls, member,
                       ", ".join(sorted(allowed)), gfile, gline)))


# ---------------------------------------------------------------------------
# Lock discipline (the static half of klock, docs/klock.md)
# ---------------------------------------------------------------------------


LOCAL_DECL_RE = re.compile(r"\b([A-Z]\w*)\s*[*&]+\s*([a-z_]\w*)\s*[=;,)]")


def fn_locals(fn):
    """Pointer/reference locals (and lambda params) with class-typed
    declarators, for receiver resolution inside bodies."""
    if fn.locals is None:
        fn.locals = {}
        for m in LOCAL_DECL_RE.finditer(fn.body):
            fn.locals.setdefault(m.group(2), m.group(1))
    return fn.locals


def resolve_lock_name(model, fn, receiver, member):
    """Maps a (receiver, member) lock mention to a registered lock name."""
    if receiver is None or receiver == "this":
        cls = fn.cls
    elif receiver in fn.params:
        cls = fn.params[receiver]
    else:
        cls = (model.members.get(fn.cls or "", {}).get(receiver)
               or fn_locals(fn).get(receiver))
    if cls is not None:
        name = model.lock_members.get((cls, member))
        if name:
            return name
    cands = {n for (c, m), n in model.lock_members.items() if m == member}
    if len(cands) == 1:
        return next(iter(cands))
    return None  # unknown or ambiguous: skipped (documented approximation)


def resolve_call_lock(model, fn, receiver, name):
    """resolve_call, but parameter and local-pointer types count too (the
    splice engine passes descriptors by pointer, so `d->InFlight()` must
    resolve)."""
    if receiver and not isinstance(receiver, tuple):
        rcls = fn.params.get(receiver) or fn_locals(fn).get(receiver)
        if rcls:
            cand = model.functions.get("%s::%s" % (rcls, name))
            if cand:
                return cand
    return resolve_call(model, fn, receiver, name)


def find_lambda_regions(body):
    """[(open_brace, close_brace)] of every lambda body, nested included.

    Lambdas are deferred callbacks here (callouts, completion handlers), so
    the tracker treats their bodies as separate execution: they start with
    an empty held set and must end balanced.
    """
    regions = []
    for i, c in enumerate(body):
        if c != "{":
            continue
        b = max(body.rfind(";", 0, i), body.rfind("{", 0, i),
                body.rfind("}", 0, i))
        if LAMBDA_TAIL_RE.search(body[b + 1:i]):
            regions.append((i, find_matching_brace(body, i)))
    return regions


def _in_region(regions, pos):
    return any(s < pos < e for s, e in regions)


def _trackable(model):
    for qname in sorted(model.functions):
        fn = model.functions[qname]
        if fn.body is not None and fn.cls not in LOCK_IMPL_CLASSES:
            yield fn


def scan_lock_events(model, fn):
    """{pos: [event]} for one body: lock ops, guards, awaits, resolved calls."""
    body = fn.body
    events = {}

    def add(pos, item):
        events.setdefault(pos, []).append(item)

    for m in LOCK_OP_RE.finditer(body):
        name = resolve_lock_name(model, fn, m.group(1), m.group(2))
        if name is not None:
            add(m.start(), ("op", m.group(3), name))
    for m in SPINGUARD_RE.finditer(body):
        name = resolve_lock_name(model, fn, m.group(1), m.group(2))
        if name is not None:
            add(m.start(), ("guard", name))
    for m in re.finditer(r"\bco_await\b", body):
        add(m.start(), ("await",))
    for m in QUAL_CALL_RE.finditer(body):
        callee = model.functions.get("%s::%s" % (m.group(1), m.group(2)))
        if callee is not None:
            add(m.start(), ("call", callee))
    for m in CALL_RE.finditer(body):
        callee_name = m.group(2)
        if callee_name.lstrip("~") in CPP_KEYWORDS:
            continue
        pre = body[max(0, m.start() - 2):m.start()]
        if pre.rstrip().endswith("::"):
            continue
        callee = resolve_call_lock(model, fn, m.group(1), callee_name)
        if callee is not None:
            add(m.start(), ("call", callee))
    return events


def get_cfgs(fn):
    """(main_cfg, [lambda_cfg...]) for fn.body, built once and cached."""
    if fn.cfgs is None:
        if not fn.lambda_regions:
            fn.lambda_regions = find_lambda_regions(fn.body)
        fn.cfgs = kpath.build_function_cfgs(fn.body, fn.lambda_regions)
    return fn.cfgs


def walk_held(model, fn, events, queries, sink):
    """Walks every CFG path of fn.body tracking the path-held lock set.

    Held entries are (lock name, origin) with origin in {"entry", "local",
    "guard"}.  The walk runs over the kpath CFG, so each branch arm, early
    return, and loop iteration is its own path (memoized to a fixpoint);
    SpinGuard entries release on every exit from their scope via the CFG's
    unwind pseudo-items — exactly the destructor semantics.  Lambda bodies
    run deferred, so each lambda CFG is walked separately from an empty held
    set and checked for balance at its exits.  sink(kind, pos, *info)
    receives every derived event; the rule layer turns them into findings
    (deduplicated by site, so revisits along other paths are cheap).
    """
    main, lams = get_cfgs(fn)
    entry = tuple((l, "entry") for l in sorted(fn.entry_held | fn.releases)
                  if l in model.locks)
    _walk_lock_cfg(model, fn, main, entry, events, queries, sink, "fn-exit")
    for cfg in lams:
        _walk_lock_cfg(model, fn, cfg, (), events, queries, sink,
                       "lambda-end")


def _walk_lock_cfg(model, fn, cfg, entry_held, events, queries, sink,
                   exit_kind):
    poss = sorted(set(events) | set(queries))

    def transfer(block, state):
        held = list(state[0])
        scopes = [list(s) for s in state[1]]

        def names():
            return [h[0] for h in held]

        def spin_held():
            for h, _ in held:
                if model.locks[h][3]:
                    return h
            return None

        def release(name):
            for j in range(len(held) - 1, -1, -1):
                if held[j][0] == name:
                    del held[j]
                    return

        def release_guard(name):
            for j in range(len(held) - 1, -1, -1):
                if held[j] == (name, "guard"):
                    del held[j]
                    return

        def acquire(pos, name, method, origin):
            if name in names():
                sink("double", pos, name, method)
                return
            spin = model.locks[name][3]
            sh = spin_held()
            if not spin and method == "Acquire" and sh is not None:
                sink("may-block", pos, "SleepLock '%s' Acquire" % name, sh)
            for h in names():
                sink("edge", pos, h, name)
            # Drop-and-reacquire: re-taking a lock the function held at
            # entry restores the entry obligation (the caller still holds
            # it conceptually), it does not create a local one — otherwise
            # every "release around blocking I/O, reacquire, continue" loop
            # would read as a leak on the post-reacquire exit paths.
            if origin == "local" and name in fn.entry_held:
                origin = "entry"
            held.append((name, origin))
            if origin == "guard" and scopes:
                scopes[-1].append(name)

        for item in block.items:
            tag = item[0]
            if tag == "seg":
                lo = bisect.bisect_left(poss, item[1])
                hi = bisect.bisect_left(poss, item[2])
                for pos in poss[lo:hi]:
                    for ev in events.get(pos, ()):
                        kind = ev[0]
                        if kind == "op":
                            _, method, name = ev
                            if method == "Release":
                                release(name)
                            else:
                                acquire(pos, name, method, "local")
                        elif kind == "guard":
                            acquire(pos, ev[1], "SpinGuard", "guard")
                        elif kind == "await":
                            sh = spin_held()
                            if sh is not None:
                                sink("may-block", pos, "co_await", sh)
                        elif kind == "call":
                            callee = ev[1]
                            sink("call", pos, callee, tuple(names()))
                            for l in sorted(callee.excludes):
                                if l in names():
                                    sink("exclude", pos, callee, l)
                            for l in sorted(callee.acquires):
                                if l in model.locks:
                                    acquire(pos, l, "callee", "local")
                            for l in sorted(callee.releases):
                                release(l)
                    for q in queries.get(pos, ()):
                        sink("query", pos, q, tuple(names()))
            elif tag == "push":
                scopes.append([])
            elif tag == "pop":
                if scopes:
                    for g in scopes.pop():
                        release_guard(g)
            elif tag == "unwind":
                for _ in range(min(item[1], len(scopes))):
                    for g in scopes.pop():
                        release_guard(g)
            elif tag == "exit":
                sink(exit_kind, item[1], list(held))
        return (tuple(held), tuple(tuple(s) for s in scopes))

    kpath.walk_paths(cfg, (entry_held, ()), transfer)


def compute_lock_closures(model):
    """(acq_closure, may_block) over the non-lambda call graph.

    acq_closure[qname]: every lock the function (or a callee, transitively)
    acquires during its own execution — lambda bodies excluded, they run
    later.  may_block: functions that can reach a blocking primitive the
    same way.
    """
    direct_acq, calls_out = {}, {}
    for fn in _trackable(model):
        regions = find_lambda_regions(fn.body)
        fn.lambda_regions = regions
        acq, outs = set(), set()
        for m in LOCK_OP_RE.finditer(fn.body):
            if m.group(3) == "Release" or _in_region(regions, m.start()):
                continue
            name = resolve_lock_name(model, fn, m.group(1), m.group(2))
            if name is not None:
                acq.add(name)
        for m in SPINGUARD_RE.finditer(fn.body):
            if not _in_region(regions, m.start()):
                name = resolve_lock_name(model, fn, m.group(1), m.group(2))
                if name is not None:
                    acq.add(name)
        for m in QUAL_CALL_RE.finditer(fn.body):
            if _in_region(regions, m.start()):
                continue
            callee = model.functions.get("%s::%s" % (m.group(1), m.group(2)))
            if callee is not None:
                outs.add(callee.qname)
        for m in CALL_RE.finditer(fn.body):
            if _in_region(regions, m.start()):
                continue
            if m.group(2).lstrip("~") in CPP_KEYWORDS:
                continue
            pre = fn.body[max(0, m.start() - 2):m.start()]
            if pre.rstrip().endswith("::"):
                continue
            callee = resolve_call_lock(model, fn, m.group(1), m.group(2))
            if callee is not None:
                outs.add(callee.qname)
        direct_acq[fn.qname] = acq
        calls_out[fn.qname] = outs

    acq_closure = {q: set(a) for q, a in direct_acq.items()}
    changed = True
    while changed:
        changed = False
        for q, outs in calls_out.items():
            mine = acq_closure[q]
            for callee in outs:
                extra = acq_closure.get(callee, set()) - mine
                if extra:
                    mine |= extra
                    changed = True

    may_block = set(MAY_BLOCK_SEEDS)
    changed = True
    while changed:
        changed = False
        for q, outs in calls_out.items():
            if q not in may_block and outs & may_block:
                may_block.add(q)
                changed = True
    return acq_closure, may_block


def compute_entry_held(model, rounds=4):
    """Caller-intersection fixpoint: a helper only ever called with lock L
    held gets entry_held = {L}, so `// lock-held` helpers (FreelistPush,
    InFlight, ...) need no annotation for lock-guard-violation.

    IKDP_REQUIRES(l) seeds the fixpoint directly: the annotated lock is held
    at entry no matter what the caller intersection would conclude (callers
    that do NOT hold it are flagged separately in check_lock_discipline)."""
    for fn in model.functions.values():
        declared = frozenset(l for l in fn.requires if l in model.locks)
        if declared - fn.entry_held:
            fn.entry_held |= declared
    cached = {fn.qname: scan_lock_events(model, fn) for fn in _trackable(model)}
    for _ in range(rounds):
        call_held = {}

        def sink(kind, pos, *a):
            if kind == "call":
                callee, heldnames = a
                call_held.setdefault(callee.qname, []).append(set(heldnames))

        for fn in _trackable(model):
            walk_held(model, fn, cached[fn.qname], {}, sink)
        changed = False
        for q, sets in call_held.items():
            fn = model.functions.get(q)
            if fn is None or fn.body is None:
                continue
            inter = frozenset(frozenset.intersection(*map(frozenset, sets)))
            inter |= frozenset(l for l in fn.requires if l in model.locks)
            if inter != fn.entry_held:
                fn.entry_held = inter
                changed = True
        if not changed:
            break
    return cached


def _lockguard_queries(model, fn, index):
    """{pos: [(cls, member, lockname, gfile, gline)]} member-access sites of
    IKDP_GUARDED_BY(lock:...) members in this body."""
    queries = {}
    for member, owners in index.items():
        if member not in fn.body:
            continue
        for m in re.finditer(
                r"(?:\b(\w+)\s*(?:\.|->)\s*)?\b%s\b" % re.escape(member),
                fn.body):
            # `&member` is the wait-channel / krace-channel idiom (an address
            # used as a token for Sleep/Wakeup), not a data access.
            before = fn.body[:m.start()].rstrip()
            if before.endswith("&") and not before.endswith("&&"):
                continue
            recv = m.group(1)
            if recv is None or recv == "this":
                cls = fn.cls
                if cls is None or member not in model.guards.get(cls, {}):
                    continue
            else:
                cls = (fn.params.get(recv)
                       or model.members.get(fn.cls or "", {}).get(recv)
                       or fn_locals(fn).get(recv))
                if cls is not None:
                    if member not in model.guards.get(cls, {}):
                        continue
                elif len(owners) == 1:
                    cls = owners[0][0]
                else:
                    continue  # ambiguous receiver: skipped
            kind, lockname, gfile, gline = model.guards[cls][member]
            if kind != "lockguard" or lockname not in model.locks:
                continue
            queries.setdefault(m.start(), []).append(
                (cls, member, lockname, gfile, gline))
    return queries


def check_lock_discipline(model, findings):
    for name, rank, file, line in model.lock_rank_conflicts:
        orig = model.locks.get(name)
        if model.waived(file, line, "lock-order-cycle"):
            continue
        findings.append(Finding(
            "lock-order-cycle", file, line,
            "lock '%s' redeclared with rank %d; first declared rank %d at "
            "%s:%d" % (name, rank, orig[2], orig[4], orig[5])))
    # IKDP_ACQUIRED_AFTER(m) claims this lock is acquired while the sibling
    # lock member `m` is held, i.e. `m` is the outer lock — so this lock's
    # rank must be strictly greater.  A contradiction with the rank table is
    # a declared ordering cycle.
    for cls, member, other, file, line in model.lock_acq_after:
        name = model.lock_members.get((cls, member))
        if name is None:
            continue  # not a ranked lock member; LOCK_RANK rules handle it
        oname = model.lock_members.get((cls, other))
        if oname is None:
            if not model.waived(file, line, "lock-order-cycle"):
                findings.append(Finding(
                    "lock-order-cycle", file, line,
                    "lock '%s': IKDP_ACQUIRED_AFTER(%s) names a member of "
                    "%s that is not a declared lock" % (name, other, cls)))
            continue
        rank, orank = model.locks[name][2], model.locks[oname][2]
        if rank <= orank:
            if not model.waived(file, line, "lock-order-cycle"):
                findings.append(Finding(
                    "lock-order-cycle", file, line,
                    "lock '%s' (rank %d) declared IKDP_ACQUIRED_AFTER '%s' "
                    "(rank %d), but inner locks must rank strictly higher"
                    % (name, rank, oname, orank)))
    if not model.locks:
        return
    acq_closure, may_block = compute_lock_closures(model)
    cached = compute_entry_held(model)
    index = {}
    for cls, members in model.guards.items():
        for member, info in members.items():
            if info[0] == "lockguard":
                index.setdefault(member, []).append((cls, info))

    edges = {}      # (outer, inner) -> (file, line, fn qname)
    reported = set()

    def emit(rule, file, line, key, message):
        if key in reported:
            return
        reported.add(key)
        if not model.waived(file, line, rule):
            findings.append(Finding(rule, file, line, message))

    for fn in _trackable(model):
        file = fn.body_file

        def line_at(pos, fn=fn):
            return fn.body_line + fn.body.count("\n", 0, pos)

        def sink(kind, pos, *a, fn=fn, file=file, line_at=line_at):
            if kind == "double":
                name, method = a
                emit("double-acquire", file, line_at(pos),
                     ("double", fn.qname, name, line_at(pos)),
                     "%s re-acquires '%s' (rank %d) already held — "
                     "uniprocessor self-deadlock"
                     % (fn.qname, name, model.locks[name][2]))
            elif kind == "edge":
                outer, inner = a
                edges.setdefault((outer, inner),
                                 (file, line_at(pos), fn.qname))
            elif kind == "may-block":
                what, spin = a
                emit("sleep-under-spinlock", file, line_at(pos),
                     ("mayblock", fn.qname, line_at(pos), what),
                     "%s: %s while holding SpinLock '%s'"
                     % (fn.qname, what, spin))
            elif kind == "exclude":
                callee, lock = a
                emit("double-acquire", file, line_at(pos),
                     ("exclude", fn.qname, callee.qname, lock, line_at(pos)),
                     "%s calls %s (IKDP_EXCLUDES(%s)) while holding '%s'"
                     % (fn.qname, callee.qname, lock, lock))
            elif kind == "call":
                callee, heldnames = a
                for l in sorted(callee.requires):
                    if l in model.locks and l not in heldnames:
                        emit("lock-guard-violation", file, line_at(pos),
                             ("requires", fn.qname, callee.qname, l,
                              line_at(pos)),
                             "%s calls %s (IKDP_REQUIRES(%s)) without "
                             "holding '%s'"
                             % (fn.qname, callee.qname, l, l))
                if not heldnames:
                    return
                spins = [h for h in heldnames if model.locks[h][3]]
                if spins and callee.qname in may_block:
                    emit("sleep-under-spinlock", file, line_at(pos),
                         ("sleepcall", fn.qname, callee.qname, line_at(pos)),
                         "%s calls %s, which may block, while holding "
                         "SpinLock '%s'" % (fn.qname, callee.qname, spins[0]))
                for l in sorted(acq_closure.get(callee.qname, ())):
                    if l in heldnames:
                        # A callee whose every caller holds l (entry_held)
                        # only re-locks after releasing; that is the drop-
                        # and-reacquire idiom, not a self-deadlock.
                        if l in callee.entry_held:
                            continue
                        emit("double-acquire", file, line_at(pos),
                             ("closure", fn.qname, callee.qname, l,
                              line_at(pos)),
                             "%s calls %s, which acquires '%s', while "
                             "already holding it"
                             % (fn.qname, callee.qname, l))
                    else:
                        for h in heldnames:
                            edges.setdefault((h, l),
                                             (file, line_at(pos), fn.qname))
            elif kind == "query":
                (cls, member, lockname, gfile, gline), heldnames = a
                if lockname in heldnames:
                    return
                emit("lock-guard-violation", file, line_at(pos),
                     ("guard", fn.qname, cls, member, line_at(pos)),
                     "%s accesses %s::%s without holding '%s' "
                     "(IKDP_GUARDED_BY(lock:%s) at %s:%d)"
                     % (fn.qname, cls, member, lockname, lockname,
                        gfile, gline))
            elif kind in ("fn-exit", "lambda-end"):
                held = a[0]
                for name, origin in held:
                    leak = (origin == "local" and name not in fn.acquires) or \
                           (origin == "entry" and name in fn.releases)
                    if not leak:
                        continue
                    where = ("lambda body ends" if kind == "lambda-end"
                             else "can return")
                    why = ("declared IKDP_RELEASES(%s) but did not release"
                           % name if origin == "entry" else
                           "not annotated IKDP_ACQUIRES(%s)" % name)
                    emit("unreleased-lock", file, line_at(pos),
                         ("leak", fn.qname, name, kind),
                         "%s %s with '%s' held (%s)"
                         % (fn.qname, where, name, why))

        queries = _lockguard_queries(model, fn, index)
        walk_held(model, fn, cached[fn.qname], queries, sink)

    # Rank monotonicity per observed edge, then cycles over the order graph.
    for (outer, inner), (file, line, via) in sorted(edges.items()):
        ro, ri = model.locks[outer][2], model.locks[inner][2]
        if ri <= ro:
            emit("lock-order-cycle", file, line,
                 ("rank", outer, inner),
                 "%s acquires '%s' (rank %d) while holding '%s' (rank %d); "
                 "ranks must strictly increase" % (via, inner, ri, outer, ro))
    graph = {}
    for (outer, inner) in edges:
        graph.setdefault(outer, set()).add(inner)

    def reachable(src, dst):
        seen, queue = {src}, [src]
        while queue:
            cur = queue.pop()
            for nxt in graph.get(cur, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    for (outer, inner), (file, line, via) in sorted(edges.items()):
        if outer != inner and reachable(inner, outer):
            emit("lock-order-cycle", file, line,
                 ("cycle", frozenset((outer, inner))),
                 "acquisition-order cycle between '%s' and '%s' (this site, "
                 "in %s, orders %s -> %s; another site orders the reverse)"
                 % (outer, inner, via, outer, inner))


# ---------------------------------------------------------------------------
# kpath error-path rules (docs/kcheck.md): errno-clobber, discarded-failure,
# resource-leak-on-error-path, charge-context-mismatch.  All four are
# path-sensitive walks over the kpath CFG; the first two also consume the
# interprocedural may-fail summary, the third the acquires-resource summary.
# ---------------------------------------------------------------------------

# Classes allowed to manipulate charge buckets directly (the ledger itself).
CHARGE_IMPL_CLASSES = {"CpuSystem"}
# Charge entry points that are only legal at interrupt/softclock level.
INTERRUPT_CHARGE_NAMES = {"ChargeInterrupt", "ChargeKop"}
INTR_BUCKET_LITERALS = {"kInterrupt", "kKopInterrupt", "kSoftclock",
                        "kKopSoftclock"}
PROC_BUCKET_LITERALS = {"kProcess", "kKopProcess"}
BUCKET_LITERAL_RE = re.compile(r"\bChargeBucket\s*::\s*(k\w+)")
ININTR_NEG_RE = re.compile(
    r"!\s*(?:[\w:]+\s*(?:\.|->)\s*)?InInterrupt\s*\(")
# Any assignment; filtered against the sticky-member registry per use.
ASSIGN_SITE_RE = re.compile(
    r"(?:\b(\w+)\s*(?:->|\.)\s*)?\b([A-Za-z_]\w*)\s*=(?!=)\s*([^;]*)")
# A statement that is nothing but one call (possibly qualified/member).
BARE_CALL_RE = re.compile(r"\s*(?:(\w+)\s*(->|\.|::)\s*)?(~?\w+)\s*\(")
# `var = [recv->]Acquirer(...)` with a plain (non-member) lvalue.
ACQ_ASSIGN_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*=(?!=)\s*"
    r"(?:[\w:]+\s*(?:->|\.)\s*)?([A-Za-z_]\w*)\s*\(")


def _line_at(fn, pos):
    return fn.body_line + fn.body.count("\n", 0, pos)


def _emit_path(model, findings, rule, fn, pos, message):
    line = _line_at(fn, pos)
    if not model.waived(fn.body_file, line, rule):
        findings.append(Finding(rule, fn.body_file, line, message))


def _match_paren_at(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def _seg_events(block, evpos):
    """Yields (pos, *payload) for sorted event list entries inside the
    block's seg items, in program order."""
    for item in block.items:
        if item[0] != "seg":
            continue
        lo = bisect.bisect_left(evpos, (item[1],))
        while lo < len(evpos) and evpos[lo][0] < item[2]:
            yield evpos[lo]
            lo += 1


def _member_class(model, fn, receiver):
    """Class a member access `receiver->member` resolves through."""
    if receiver is None or receiver == "this":
        return fn.cls
    return (fn.params.get(receiver)
            or model.members.get(fn.cls or "", {}).get(receiver)
            or fn_locals(fn).get(receiver))


def _check_errno_clobber(model, fn, sticky_names, findings):
    """IKDP_STICKY_ERRNO member overwritten while it may already hold the
    first error.  Lattice per (receiver, member): unknown / known-zero /
    known-set; `= 0` lowers, a guarded branch (`if (err == 0)`) lowers on
    the proving edge, any nonzero store from known-set is a clobber."""
    body = fn.body
    if not any(n in body for n in sticky_names):
        return
    writes = {}  # (recv, member) -> [(pos, iszero)]
    for m in ASSIGN_SITE_RE.finditer(body):
        recv, member, rhs = m.group(1), m.group(2), m.group(3)
        if member not in sticky_names:
            continue
        cls = _member_class(model, fn, recv)
        ok = cls in model.sticky and member in model.sticky[cls]
        if not ok and cls is None:
            owners = [c for c, d in model.sticky.items() if member in d]
            ok = len(owners) == 1
        if not ok:
            continue
        iszero = rhs.strip() in ("0", "nullptr")
        writes.setdefault((recv, member), []).append((m.start(), iszero))
    if not writes:
        return
    order = sorted(writes, key=lambda k: (k[0] or "", k[1]))
    idx = {k: i for i, k in enumerate(order)}
    mention = {}
    for recv, member in order:
        if recv:
            mention[(recv, member)] = re.compile(
                r"\b%s\s*(?:->|\.)\s*%s\b" % (re.escape(recv),
                                              re.escape(member)))
        else:
            mention[(recv, member)] = re.compile(
                r"(?<![\w.>])%s\b" % re.escape(member))
    evpos = sorted((p, k, iszero)
                   for k, lst in writes.items() for p, iszero in lst)
    hits = set()

    def transfer(block, state):
        st = list(state)
        for p, key, iszero in _seg_events(block, evpos):
            i = idx[key]
            if iszero:
                st[i] = "z"
            else:
                if st[i] == "s":
                    hits.add((p, key))
                st[i] = "s"
        return tuple(st)

    def refine(edge, state):
        label, cs, ce = edge
        cond = body[cs:ce]
        st = None
        for key, rx in mention.items():
            pol = kpath.cond_checks_zero(cond, rx)
            if pol is None:
                continue
            if st is None:
                st = list(state)
            # The edge matching the polarity proves the member is zero; the
            # opposite edge proves it already holds an error.
            st[idx[key]] = "z" if pol == label else "s"
        return state if st is None else tuple(st)

    init = tuple("u" for _ in order)
    main, lams = get_cfgs(fn)
    for cfg in [main] + lams:  # a lambda runs deferred: sticky state unknown
        kpath.walk_paths(cfg, init, transfer, refine)
    reported = set()
    for p, (recv, member) in sorted(hits):
        line = _line_at(fn, p)
        if (member, line) in reported:
            continue
        reported.add((member, line))
        access = "%s->%s" % (recv, member) if recv else member
        _emit_path(model, findings, "errno-clobber", fn, p,
                   "%s overwrites sticky errno member '%s' on a path where "
                   "it may already hold the first error; guard the store "
                   "with `if (%s == 0)`" % (fn.qname, access, access))


def _check_discarded_failure(model, fn, may_fail, findings):
    """A statement that is nothing but a call to a may-fail function: the
    error return is silently dropped.  `(void)f(...)` and uses inside
    larger expressions are naturally exempt (the statement is then not a
    bare call)."""
    body = fn.body
    for st in kpath.iter_stmts(body, fn.lambda_regions, kinds={"simple"}):
        if st.seg is None:
            continue
        s, e = st.seg
        text = body[s:e]
        m = BARE_CALL_RE.match(text)
        if m is None:
            continue
        recv, sep, name = m.group(1), m.group(2), m.group(3)
        if name.lstrip("~") in CPP_KEYWORDS:
            continue
        close = _match_paren_at(text, m.end() - 1)
        if text[close + 1:].strip(" \t\n;") != "":
            continue  # call is a subexpression, not the whole statement
        if sep == "::":
            callee = model.functions.get("%s::%s" % (recv, name))
        else:
            callee = resolve_call_lock(model, fn, recv, name)
        if callee is None or callee.qname not in may_fail:
            continue
        _emit_path(model, findings, "discarded-failure", fn, s + m.start(3),
                   "%s discards the error return of %s; check it, propagate "
                   "it, or cast to (void) to document the drop"
                   % (fn.qname, callee.qname))


def _check_resource_leak(model, fn, acquirers, findings):
    """A local acquired from an acquires-resource function must reach a
    release/write on every path to an exit.  Mentions that escape the
    value (call argument, return, reassignment target) end tracking
    conservatively; a null-check edge proves the failed-acquisition arm
    unowned."""
    body = fn.body
    acq = {}  # var -> [acquire pos]
    lhs_spans = []
    for m in ACQ_ASSIGN_RE.finditer(body):
        var, name = m.group(1), m.group(2)
        ok = name in acquirers
        if not ok:
            callee = resolve_call_lock(model, fn, None, name)
            ok = callee is not None and callee.qname in acquirers
        if ok:
            acq.setdefault(var, []).append(m.start())
            lhs_spans.append((m.start(1), m.end(1)))
    if not acq:
        return
    rel_names = set(BUF_RELEASE_NAMES) | set(BUF_WRITE_NAMES)
    rel_spans = []
    for m in re.finditer(r"\b(?:%s)\s*\(" % "|".join(rel_names), body):
        rel_spans.append((m.end() - 1, _match_paren_at(body, m.end() - 1)))
    conds = kpath.cond_intervals(body, fn.lambda_regions)

    def is_call_arg(code, pos):
        i = pos - 1
        while i >= 0 and code[i] in " \t\n":
            i -= 1
        if i < 0:
            return False
        if code[i] == ",":
            return True
        if code[i] == "(":
            j = i - 1
            while j >= 0 and code[j] in " \t\n":
                j -= 1
            return j >= 0 and (code[j].isalnum() or code[j] == "_")
        return False

    events = []  # (pos, kind, var) with kind acq|rel|kill
    for var, poss in acq.items():
        events.extend((p, "acq", var) for p in poss)
        for m in re.finditer(r"\b%s\b" % re.escape(var), body):
            p = m.start()
            if any(s <= p < e for s, e in lhs_spans):
                continue  # the acquiring assignment's own lvalue
            rest = body[m.end():m.end() + 3].lstrip()
            if rest.startswith(".") or rest.startswith("->"):
                continue  # receiver use keeps ownership
            if any(s < p < e for s, e in rel_spans):
                events.append((p, "rel", var))
                continue
            if any(s <= p < e for s, e in conds) and \
                    not is_call_arg(body, p):
                continue  # bare null test: handled by edge refinement
            events.append((p, "kill", var))
    order = sorted(acq)
    idx = {v: i for i, v in enumerate(order)}
    evpos = sorted(events)
    hits = {}  # var -> (exit pos, acquire pos)

    def transfer(block, state):
        st = list(state)
        for item in block.items:
            if item[0] == "seg":
                lo = bisect.bisect_left(evpos, (item[1],))
                while lo < len(evpos) and evpos[lo][0] < item[2]:
                    p, kind, var = evpos[lo]
                    lo += 1
                    i = idx[var]
                    if kind == "acq":
                        st[i] = "o"
                    elif st[i] == "o":
                        st[i] = "d"
            elif item[0] == "exit":
                for var, i in idx.items():
                    if st[i] == "o" and var not in hits:
                        hits[var] = (item[1], acq[var][0])
        return tuple(st)

    def refine(edge, state):
        label, cs, ce = edge
        cond = body[cs:ce]
        st = None
        for var, i in idx.items():
            if state[i] != "o":
                continue
            rx = re.compile(r"\b%s\b" % re.escape(var))
            mm = rx.search(cond)
            if mm is None or is_call_arg(cond, mm.start()):
                continue
            if cond[mm.end():].lstrip().startswith((".", "->")):
                continue  # member access, not a null test of the handle
            if kpath.cond_checks_zero(cond, rx) == label:
                if st is None:
                    st = list(state)
                st[i] = "u"  # this edge proves the acquisition failed
        return state if st is None else tuple(st)

    init = tuple("u" for _ in order)
    main, lams = get_cfgs(fn)
    for cfg in [main] + lams:
        kpath.walk_paths(cfg, init, transfer, refine)
    for var in sorted(hits):
        exit_pos, acq_pos = hits[var]
        _emit_path(model, findings, "resource-leak-on-error-path", fn,
                   exit_pos,
                   "%s exits here with '%s' (acquired at line %d) still "
                   "owned: no release/write on this path"
                   % (fn.qname, var, _line_at(fn, acq_pos)))


def _check_charge_context(model, fn, findings):
    """Charge calls and bucket literals must agree with the execution
    context: interrupt-side charges from process/any context need a
    dominating InInterrupt() check on every path; process-side buckets are
    never legal from interrupt/softclock context."""
    if fn.cls in CHARGE_IMPL_CLASSES:
        return
    ctx = fn.annotation
    if ctx is None:
        # No declared context to disagree with; un-annotated interrupt
        # charges stay the lexical undominated-charge rule's business.
        return
    body = fn.body
    events = []
    for m in CALL_RE.finditer(body):
        if m.group(2) in INTERRUPT_CHARGE_NAMES and \
                not _in_region(fn.lambda_regions, m.start()):
            events.append((m.start(), "charge", m.group(2)))
    for m in re.finditer(r"\b\w*(?:Charge|Attribute)\w*\s*\(", body):
        close = _match_paren_at(body, m.end() - 1)
        for bm in BUCKET_LITERAL_RE.finditer(body, m.end(), close):
            if not _in_region(fn.lambda_regions, bm.start()):
                events.append((bm.start(), "bucket", bm.group(1)))
    if not events:
        return
    if ctx in ("interrupt", "softclock"):
        for pos, kind, payload in sorted(set(events)):
            if kind == "bucket" and payload in PROC_BUCKET_LITERALS:
                _emit_path(model, findings, "charge-context-mismatch", fn,
                           pos,
                           "%s (IKDP_CTX_%s) charges process-side bucket "
                           "ChargeBucket::%s" % (fn.qname, ctx.upper(),
                                                 payload))
        return
    evpos = sorted(set(events))
    hits = set()

    def transfer(block, state):
        in_intr = state[0]
        for p, kind, payload in _seg_events(block, evpos):
            if in_intr:
                continue
            if kind == "charge" or payload in INTR_BUCKET_LITERALS:
                hits.add((p, kind, payload))
        return state

    def refine(edge, state):
        label, cs, ce = edge
        cond = body[cs:ce]
        if "InInterrupt" not in cond:
            return state
        pol = "false" if ININTR_NEG_RE.search(cond) else "true"
        return (1,) if label == pol else state

    main, _ = get_cfgs(fn)  # lambdas excluded: deferred, context unknown
    kpath.walk_paths(main, (0,), transfer, refine)
    for pos, kind, payload in sorted(hits):
        if kind == "charge":
            msg = ("%s (IKDP_CTX_%s) calls %s on a path where InInterrupt() "
                   "is not proven; charge under an InInterrupt() check or "
                   "annotate IKDP_CTX_INTERRUPT"
                   % (fn.qname, ctx.upper(), payload))
        else:
            msg = ("%s (IKDP_CTX_%s) charges interrupt-side bucket "
                   "ChargeBucket::%s without a dominating InInterrupt() "
                   "check" % (fn.qname, ctx.upper(), payload))
        _emit_path(model, findings, "charge-context-mismatch", fn, pos, msg)


def check_error_paths(model, findings):
    """Drives the four kpath rule families over every trackable body."""
    def resolve(fn, name):
        return resolve_call_lock(model, fn, None, name)
    may_fail = kpath.compute_may_fail(model, resolve)
    acquirers = kpath.compute_acquirers(model, resolve, BUF_ACQUIRE_NAMES)
    sticky_names = {mem for d in model.sticky.values() for mem in d}
    for fn in _trackable(model):
        get_cfgs(fn)  # ensures fn.lambda_regions and the CFG cache
        if sticky_names:
            _check_errno_clobber(model, fn, sticky_names, findings)
        _check_discarded_failure(model, fn, may_fail, findings)
        _check_resource_leak(model, fn, acquirers, findings)
        _check_charge_context(model, fn, findings)


def check_stale_waivers(model, findings):
    """Waiver comments that suppressed nothing this run.

    Must run AFTER every other rule so used_waivers is complete.  A stale
    waiver is a latent hole: the finding it once hid is gone, but the
    comment would silently swallow the next regression on that line.
    """
    for file in sorted(model.raw_lines):
        for i, text in enumerate(model.raw_lines[file], 1):
            for m in WAIVER_RE.finditer(text):
                rule = m.group(1)
                if rule == "stale-waiver":
                    continue  # waiving the lint itself is meaningless
                if (file, i, rule) in model.used_waivers:
                    continue
                if rule not in KNOWN_RULES:
                    msg = "waiver names unknown rule '%s'" % rule
                else:
                    msg = ("waiver for '%s' no longer matches any finding; "
                           "delete it" % rule)
                findings.append(Finding("stale-waiver", file, i, msg))


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def collect_files(args):
    files = []
    if args.files:
        files.extend(args.files)
    if args.compile_commands:
        try:
            with open(args.compile_commands) as f:
                db = json.load(f)
        except OSError as e:
            sys.exit("kcheck: cannot read %s: %s" % (args.compile_commands, e))
        for entry in db:
            path = os.path.normpath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if args.root and args.root not in os.path.abspath(path):
                continue
            files.append(path)
    if args.root and not args.files:
        for dirpath, _, names in os.walk(args.root):
            for name in names:
                if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    seen, uniq = set(), []
    for f in files:
        a = os.path.abspath(f)
        if a not in seen and os.path.isfile(a):
            seen.add(a)
            uniq.append(f)
    if not uniq:
        sys.exit("kcheck: no input files (use --root, --compile-commands, "
                 "or list files)")
    return uniq


# ---------------------------------------------------------------------------
# Incremental cache (--cache DIR)
# ---------------------------------------------------------------------------

CACHE_FORMAT = 1
_TOOL_HASH = None


def tool_hash():
    """Digest of the analyzer's own sources: editing kcheck.py or kpath.py
    invalidates every cache entry, so a cache can never replay findings an
    older rule set produced."""
    global _TOOL_HASH
    if _TOOL_HASH is None:
        h = hashlib.sha256(b"kcheck-cache-v%d" % CACHE_FORMAT)
        here = os.path.dirname(os.path.abspath(__file__))
        for name in ("kcheck.py", "kpath.py"):
            with open(os.path.join(here, name), "rb") as f:
                h.update(f.read())
        _TOOL_HASH = h.hexdigest()
    return _TOOL_HASH


class Cache:
    """Two-layer on-disk cache for incremental runs.

    Layer 1 (token, `<hash>.tok`): the comment-stripped, directive-blanked
    text of one file, keyed on sha256(tool sources + file content).  That
    transform is the hottest per-file step and depends on nothing but the
    file itself, so a warm entry survives edits to OTHER files.

    Layer 2 (run, `run-<hash>.json`): the complete findings of a whole run,
    keyed on the tool hash plus every input's (path, content-hash) pair.
    A hit replays the stored findings without parsing anything; any edit,
    rename, addition, or deletion changes the key.  The record stores the
    UNFILTERED findings — --changed-only filtering happens after replay —
    so a cached and an uncached run can never disagree.
    """

    def __init__(self, root):
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except OSError as e:
            sys.exit("kcheck: --cache %s: %s" % (root, e))

    def _put(self, path, data):
        # Write-then-rename so a crashed run never leaves a torn entry.
        tmp = "%s.tmp.%d" % (path, os.getpid())
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                f.write(data)
            os.replace(tmp, path)
        except OSError:
            pass  # cache is best-effort; the analysis result is already made

    def file_key(self, text):
        h = hashlib.sha256(tool_hash().encode())
        h.update(text.encode("utf-8", "replace"))
        return h.hexdigest()

    def get_tokens(self, key):
        try:
            with open(os.path.join(self.root, key + ".tok"),
                      encoding="utf-8") as f:
                return f.read()
        except OSError:
            return None

    def put_tokens(self, key, tokens):
        self._put(os.path.join(self.root, key + ".tok"), tokens)

    def run_key(self, file_hashes):
        h = hashlib.sha256(tool_hash().encode())
        for rel, fh in sorted(file_hashes):
            h.update(("%s\0%s\n" % (rel, fh)).encode())
        return h.hexdigest()

    def get_run(self, key):
        try:
            with open(os.path.join(self.root, "run-" + key + ".json"),
                      encoding="utf-8") as f:
                rec = json.load(f)
        except (OSError, ValueError):
            return None
        if rec.get("format") != CACHE_FORMAT:
            return None
        return rec

    def put_run(self, key, record):
        self._put(os.path.join(self.root, "run-" + key + ".json"),
                  json.dumps(record, indent=1))


def git_changed_files():
    """Paths (relative to the git worktree root = CWD) that git reports as
    modified, staged, renamed-to, or untracked."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as e:
        sys.exit("kcheck: --changed-only needs a git worktree: %s" % e)
    changed = set()
    for line in out.splitlines():
        entry = line[3:]
        if " -> " in entry:  # rename: the new path is the live one
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip().strip('"')
        if entry:
            changed.add(os.path.normpath(entry))
    return changed


def read_sources(files):
    srcs = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            sys.exit("kcheck: %s: %s" % (path, e))
        srcs.append((os.path.relpath(path), text))
    return srcs


def run_builtin(srcs, cache=None):
    model = Model()
    for rel, text in srcs:
        model.raw_lines[rel] = text.splitlines()
        tokens = None
        key = cache.file_key(text) if cache is not None else None
        if key is not None:
            tokens = cache.get_tokens(key)
        if tokens is None:
            tokens = blank_preprocessor_lines(strip_comments_and_strings(text))
            if key is not None:
                cache.put_tokens(key, tokens)
        FileParser(model, rel, tokens).parse()
    return model


def run_libclang(files):
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        sys.exit("kcheck: --frontend=libclang requires the clang python "
                 "bindings (package `libclang`); they are not installed in "
                 "this environment.  Use the default --frontend=builtin.")
    # The libclang frontend shares the rule engine: it only has to fill a
    # Model.  Left as an optional path; the builtin frontend is canonical.
    sys.exit("kcheck: libclang frontend not implemented in this build; "
             "use --frontend=builtin")


SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json")


def sarif_report(findings):
    """SARIF 2.1.0 document for the findings (one run, driver `kcheck`).

    Every rule kcheck can emit appears in the driver's rule table — stable
    ruleIndex values across runs — and each result points back into it.
    """
    rule_ids = sorted(KNOWN_RULES)
    index = {r: i for i, r in enumerate(rule_ids)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "kcheck",
                "rules": [{
                    "id": r,
                    "shortDescription": {"text": r},
                    "defaultConfiguration": {"level": "error"},
                } for r in rule_ids],
            }},
            "results": [{
                "ruleId": f.rule,
                "ruleIndex": index[f.rule],
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.file.replace(os.sep, "/"),
                        },
                        "region": {"startLine": f.line},
                    },
                }],
            } for f in findings],
        }],
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="explicit source files to scan")
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="compile_commands.json to derive the TU list from")
    ap.add_argument("--root", metavar="DIR",
                    help="scan all C++ sources under DIR (default: src/ when "
                         "no files are given)")
    ap.add_argument("--frontend", choices=("builtin", "libclang"),
                    default="builtin")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON on stdout")
    ap.add_argument("--github", action="store_true",
                    help="emit findings as GitHub workflow annotations "
                         "(::error file=...) plus a count summary")
    ap.add_argument("--sarif", action="store_true",
                    help="emit findings as a SARIF 2.1.0 document on stdout")
    ap.add_argument("--cache", metavar="DIR",
                    help="incremental mode: cache per-file token results and "
                         "whole-run findings in DIR, keyed on content hashes "
                         "(invalidated by any file or tool change)")
    ap.add_argument("--changed-only", action="store_true",
                    help="report only findings in files git sees as changed "
                         "(vs HEAD) or untracked; the whole tree is still "
                         "analyzed so cross-file contracts stay sound")
    ap.add_argument("--list-functions", action="store_true",
                    help="dump the parsed function database and exit")
    args = ap.parse_args(argv)

    if not args.files and not args.root and not args.compile_commands:
        args.root = "src" if os.path.isdir("src") else None

    files = collect_files(args)
    if args.frontend == "libclang":
        run_libclang(files)  # always exits (bindings missing / unimplemented)

    srcs = read_sources(files)
    cache = Cache(args.cache) if args.cache else None

    record = run_key = None
    if cache is not None:
        run_key = cache.run_key(
            [(rel, cache.file_key(text)) for rel, text in srcs])
        record = cache.get_run(run_key)

    if record is not None and not args.list_functions:
        # Run-layer hit: replay the stored (unfiltered) findings.  Output is
        # byte-identical to the cold run by construction.
        findings = [Finding(**f) for f in record["findings"]]
        n_functions = record["functions"]
    else:
        model = run_builtin(srcs, cache)

        if args.list_functions:
            for qname in sorted(model.functions):
                fn = model.functions[qname]
                print("%-50s %-10s %s"
                      % (qname, fn.annotation or "-",
                         "def" if fn.body is not None else "decl"))
            return 0

        findings = []
        check_annotation_conflicts(model, findings)
        check_annotation_mismatch(model, findings)
        check_data_annotations(model, findings)
        check_guard_violations(model, findings)
        check_context_reachability(model, findings)
        check_charge_domination(model, findings)
        check_buf_discipline(model, findings)
        check_lock_discipline(model, findings)
        check_error_paths(model, findings)
        check_stale_waivers(model, findings)  # last: consumes used_waivers
        n_functions = len(model.functions)

        if cache is not None:
            cache.put_run(run_key, {
                "format": CACHE_FORMAT,
                "functions": n_functions,
                "findings": [f.as_dict() for f in findings],
            })

    if args.changed_only:
        changed = git_changed_files()
        findings = [f for f in findings
                    if os.path.normpath(f.file) in changed]

    if args.json:
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    elif args.sarif:
        print(json.dumps(sarif_report(findings), indent=2))
    elif args.github:
        for f in findings:
            print("::error file=%s,line=%d,title=kcheck %s::[%s] %s"
                  % (f.file, f.line, f.rule, f.rule, f.message))
        print("kcheck: %d finding(s) across %d file(s)"
              % (len(findings), len(files)))
    else:
        for f in findings:
            print(f)
        print("kcheck: %d file(s), %d function(s), %d finding(s)"
              % (len(files), n_functions, len(findings)),
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
