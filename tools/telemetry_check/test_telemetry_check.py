#!/usr/bin/env python3
"""Self-test for telemetry_check: seeded-violation documents must be
rejected with the right finding, clean documents must pass, and the real
artifacts (when the benches have run in the working tree) must validate.

Run from the repo root (ctest does):
    python3 tools/telemetry_check/test_telemetry_check.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
CHECK = os.path.join(HERE, "telemetry_check.py")
REPO = os.path.dirname(os.path.dirname(HERE))


def run_check(*paths):
    proc = subprocess.run(
        [sys.executable, CHECK, "--json"] + list(paths),
        capture_output=True, text=True, cwd=REPO)
    if proc.returncode == 2:
        raise RuntimeError("usage error: %s" % proc.stderr)
    return proc.returncode, json.loads(proc.stdout)


def clean_telemetry():
    return {
        "schema": "ikdp.telemetry.v1",
        "counters": {
            "cpu.switches": 10, "trace.dropped_events": 0,
            "lock.spin_acquisitions": 200, "lock.sleep_acquisitions": 4,
            "lock.sleep_contention": 0, "lock.max_held": 2,
            "lock.max_held_rank": 90, "lock.order_edges": 3,
            "lock.violations": 0,
        },
        "histograms": {
            "disk.service_time.RZ56": {
                "count": 4, "sum": 4000, "min": 500, "max": 1500,
                "p50": 1000, "p90": 1400, "p99": 1500,
            },
        },
        "spans": {
            "begun": 3, "ended": 3, "bad_ends": 0, "open": 0,
            "by_name": {"request": 1, "splice.stream": 2},
        },
        "attribution": [
            {"bucket": "process", "subsystem": "process", "span": 1, "ns": 100},
            {"bucket": "interrupt", "subsystem": "disk", "span": 2, "ns": 50},
        ],
    }


def clean_server_row(mode):
    return {
        "mode": mode, "completed": 190, "errored": 10, "bytes": 190000,
        "elapsed_s": 1.5, "p50_ns": 1000, "p99_ns": 2000, "p999_ns": 3000,
        "max_ns": 4000, "goodput_bps": 126666.0, "stall_flags": 0,
        "server_traps": 400, "sigio_handled": 20, "spans": 380,
        "spans_balanced": True, "closure_ok": True, "overhead_zero": True,
    }


def clean_server_bench():
    return {
        "schema": "ikdp.server_bench.v1", "grid": "small", "clients": 64,
        "objects": 16, "object_kb": 16, "requests": 200, "offered_rps": 400.0,
        "zipf_s": 1.0, "seed": 42,
        "rows": [clean_server_row(m) for m in ("sync", "fasync", "ring")],
    }


def clean_kop_row(mode):
    user = mode == "user"
    return {
        "mode": mode, "bytes_in": 819200, "bytes_out": 81920,
        "chunks_in": 100, "chunks_dropped": 0 if user else 90,
        "elapsed_s": 0.5, "goodput_bps": 163840.0,
        "cpu_availability": 0.55 if user else 0.80,
        "syscall_traps": 400 if user else 12, "kop_exec_ns": 0 if user else 90000,
        "closure_ok": True, "spans_balanced": True,
    }


def clean_kop_bench():
    return {
        "schema": "ikdp.kop_bench.v1", "object_kb": 800, "blocks": 100,
        "keep_every": 10, "seed": 1,
        "rows": [clean_kop_row(m) for m in ("inkernel", "user")],
    }


class TelemetryCheckTest(unittest.TestCase):
    def check_doc(self, doc):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            return run_check(path)
        finally:
            os.unlink(path)

    def assert_finding(self, doc, needle):
        rc, findings = self.check_doc(doc)
        self.assertEqual(rc, 1, "expected a finding for %r" % needle)
        self.assertTrue(any(needle in f["finding"] for f in findings),
                        "no finding matching %r in %r" % (needle, findings))

    def test_clean_telemetry_passes(self):
        rc, findings = self.check_doc(clean_telemetry())
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_clean_server_bench_passes(self):
        rc, findings = self.check_doc(clean_server_bench())
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_unknown_schema_rejected(self):
        self.assert_finding({"schema": "nope.v9"}, "unknown schema")

    def test_invalid_json_rejected(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            f.write("{not json")
            path = f.name
        try:
            rc, findings = run_check(path)
        finally:
            os.unlink(path)
        self.assertEqual(rc, 1)
        self.assertIn("invalid JSON", findings[0]["finding"])

    def test_span_census_imbalance_rejected(self):
        doc = clean_telemetry()
        doc["spans"]["ended"] = 2
        doc["spans"]["open"] = 1
        self.assert_finding(doc, "span census unbalanced")

    def test_bad_ends_rejected(self):
        doc = clean_telemetry()
        doc["spans"]["bad_ends"] = 1
        self.assert_finding(doc, "bad_ends")

    def test_by_name_sum_mismatch_rejected(self):
        doc = clean_telemetry()
        doc["spans"]["by_name"]["request"] = 2
        self.assert_finding(doc, "by_name sums")

    def test_unknown_bucket_rejected(self):
        doc = clean_telemetry()
        doc["attribution"][0]["bucket"] = "dma"
        self.assert_finding(doc, "unknown bucket")

    def test_boolean_counter_rejected(self):
        doc = clean_telemetry()
        doc["counters"]["cpu.switches"] = True
        self.assert_finding(doc, "not an integer")

    def test_unordered_quantiles_rejected(self):
        doc = clean_telemetry()
        doc["histograms"]["disk.service_time.RZ56"]["p90"] = 10
        self.assert_finding(doc, "quantiles not ordered")

    def test_lock_violations_rejected(self):
        doc = clean_telemetry()
        doc["counters"]["lock.violations"] = 2
        self.assert_finding(doc, "lock discipline broken")

    def test_partial_lock_family_rejected(self):
        doc = clean_telemetry()
        del doc["counters"]["lock.order_edges"]
        self.assert_finding(doc, "lock.* family incomplete")

    def test_unknown_lock_counter_rejected(self):
        doc = clean_telemetry()
        doc["counters"]["lock.frobs"] = 1
        self.assert_finding(doc, "unknown lock.* counter")

    def test_lock_max_without_acquisitions_rejected(self):
        doc = clean_telemetry()
        doc["counters"]["lock.spin_acquisitions"] = 0
        doc["counters"]["lock.sleep_acquisitions"] = 0
        doc["counters"]["lock.order_edges"] = 0
        self.assert_finding(doc, "nonzero with zero acquisitions")

    def test_lockless_telemetry_passes(self):
        # Pre-klock documents carry no lock.* counters at all; still valid.
        doc = clean_telemetry()
        for k in list(doc["counters"]):
            if k.startswith("lock."):
                del doc["counters"][k]
        rc, findings = self.check_doc(doc)
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_missing_mode_row_rejected(self):
        doc = clean_server_bench()
        doc["rows"] = doc["rows"][:2]
        self.assert_finding(doc, "missing rows for mode")

    def test_failed_hard_gate_rejected(self):
        for gate in ("spans_balanced", "closure_ok", "overhead_zero"):
            doc = clean_server_bench()
            doc["rows"][1][gate] = False
            self.assert_finding(doc, "hard gate %r is false" % gate)

    def test_unordered_percentiles_rejected(self):
        doc = clean_server_bench()
        doc["rows"][0]["p99_ns"] = 10
        self.assert_finding(doc, "percentiles not ordered")

    def test_request_accounting_rejected(self):
        doc = clean_server_bench()
        doc["rows"][2]["completed"] = 150
        self.assert_finding(doc, "completed+errored != requests")

    def test_clean_kop_bench_passes(self):
        rc, findings = self.check_doc(clean_kop_bench())
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_kop_bucket_accepted(self):
        doc = clean_telemetry()
        doc["attribution"].append(
            {"bucket": "kop.softclock", "subsystem": "kop", "span": 2, "ns": 7})
        rc, findings = self.check_doc(doc)
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_kop_missing_mode_rejected(self):
        doc = clean_kop_bench()
        doc["rows"] = doc["rows"][:1]
        self.assert_finding(doc, "missing rows for mode")

    def test_kop_availability_win_rejected(self):
        doc = clean_kop_bench()
        doc["rows"][0]["cpu_availability"] = 0.40  # inkernel below user
        self.assert_finding(doc, "win condition failed: inkernel cpu_availability")

    def test_kop_trap_win_rejected(self):
        doc = clean_kop_bench()
        doc["rows"][0]["syscall_traps"] = 500  # inkernel above user
        self.assert_finding(doc, "win condition failed: inkernel syscall_traps")

    def test_kop_byte_conservation_rejected(self):
        doc = clean_kop_bench()
        doc["rows"][0]["bytes_out"] = doc["rows"][0]["bytes_in"] + 1
        self.assert_finding(doc, "bytes_out exceeds bytes_in")

    def test_kop_failed_hard_gate_rejected(self):
        for gate in ("closure_ok", "spans_balanced"):
            doc = clean_kop_bench()
            doc["rows"][1][gate] = False
            self.assert_finding(doc, "hard gate %r is false" % gate)

    def test_real_artifacts_validate_when_present(self):
        paths = [os.path.join(REPO, p)
                 for p in ("BENCH_server.json", "BENCH_telemetry.json",
                           "BENCH_kop.json")]
        present = [p for p in paths if os.path.exists(p)]
        if not present:
            self.skipTest("benches have not run in this tree")
        rc, findings = run_check(*present)
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
