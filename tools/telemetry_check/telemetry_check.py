#!/usr/bin/env python3
"""telemetry_check: schema and invariant validation for ikdp bench artifacts.

Validates the JSON documents the benches emit for CI upload, beyond "it
parses" (python3 -m json.tool): field presence, types, and the cross-field
invariants each schema promises.  Dispatches on the top-level "schema" field:

  ikdp.telemetry.v1     ExportRegistryJson output (trace_table2, bench_aio_ring):
                        counters are integers, histograms carry the full
                        quantile block with count/sum/min/max consistency.
                        The EXTENDED document's optional span sections are
                        validated when present: the "spans" census must
                        balance (ended == begun, open == 0, bad_ends == 0,
                        by_name sums to begun) and every "attribution" entry
                        must name a known charge bucket with non-negative
                        nanoseconds.

  ikdp.server_bench.v1  bench_splice_server output (BENCH_server.json): one
                        row per submit mode, ordered percentiles, positive
                        goodput on completed work, and the three hard gates
                        every row must report true — spans_balanced,
                        closure_ok, overhead_zero.

  ikdp.kop_bench.v1     bench_kop output (BENCH_kop.json): one row per
                        delivery mode (inkernel / user), per-row closure and
                        span-balance hard gates, byte conservation
                        (bytes_out <= bytes_in, drops <= chunks), and the
                        headline win conditions the in-kernel filter must
                        demonstrate — strictly higher CPU availability AND
                        strictly fewer syscall traps than the user-process
                        round trip at equal offered load.

Exit status: 0 when every file validates, 1 on any finding, 2 on usage
errors.  --json prints findings as a JSON list for tooling.

Run from anywhere:  python3 tools/telemetry_check/telemetry_check.py FILE...
"""

import argparse
import json
import sys

CHARGE_BUCKETS = {"process", "switch", "interrupt", "softclock",
                  "kop.process", "kop.interrupt", "kop.softclock"}
SERVER_MODES = {"sync", "fasync", "ring"}
KOP_MODES = {"inkernel", "user"}

KOP_ROW_INTS = [
    "bytes_in", "bytes_out", "chunks_in", "chunks_dropped",
    "syscall_traps", "kop_exec_ns",
]
KOP_ROW_BOOLS = ["closure_ok", "spans_balanced"]
KOP_TOP_INTS = ["object_kb", "blocks", "keep_every", "seed"]

SERVER_ROW_INTS = [
    "completed", "errored", "bytes", "p50_ns", "p99_ns", "p999_ns", "max_ns",
    "stall_flags", "server_traps", "sigio_handled", "spans",
]
SERVER_ROW_BOOLS = ["spans_balanced", "closure_ok", "overhead_zero"]
SERVER_TOP_INTS = ["clients", "objects", "object_kb", "requests", "seed"]

HISTOGRAM_FIELDS = ["count", "sum", "min", "max", "p50", "p90", "p99"]

LOCK_COUNTERS = [
    "lock.spin_acquisitions", "lock.sleep_acquisitions",
    "lock.sleep_contention", "lock.max_held", "lock.max_held_rank",
    "lock.order_edges", "lock.violations",
]


class Findings:
    def __init__(self):
        self.items = []

    def err(self, path, what):
        self.items.append({"file": path, "finding": what})


def is_int(v):
    # bool is an int subclass in python; a histogram count of `true` is a bug.
    return isinstance(v, int) and not isinstance(v, bool)


def is_num(v):
    return is_int(v) or isinstance(v, float)


def check_telemetry(path, doc, out):
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        out.err(path, "missing or non-object 'counters'")
    else:
        for name, v in counters.items():
            if not is_int(v):
                out.err(path, "counter %r is not an integer" % name)
        check_lock_counters(path, counters, out)

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        out.err(path, "missing or non-object 'histograms'")
    else:
        for name, h in histograms.items():
            if not isinstance(h, dict):
                out.err(path, "histogram %r is not an object" % name)
                continue
            for f in HISTOGRAM_FIELDS:
                if not is_num(h.get(f)):
                    out.err(path, "histogram %r missing numeric %r" % (name, f))
            if not all(is_num(h.get(f)) for f in HISTOGRAM_FIELDS):
                continue
            if h["count"] < 0 or h["sum"] < 0:
                out.err(path, "histogram %r has negative count/sum" % name)
            if h["count"] > 0 and not h["min"] <= h["p50"] <= h["p90"] <= h["p99"]:
                out.err(path, "histogram %r quantiles not ordered" % name)
            if h["count"] > 0 and h["max"] > h["sum"]:
                out.err(path, "histogram %r max exceeds sum" % name)

    # Optional extended sections (span census + attribution mirror).
    spans = doc.get("spans")
    if spans is not None:
        for f in ["begun", "ended", "bad_ends", "open"]:
            if not is_int(spans.get(f)):
                out.err(path, "spans section missing integer %r" % f)
                return
        if spans["bad_ends"] != 0:
            out.err(path, "spans.bad_ends = %d (lifecycle bug)" % spans["bad_ends"])
        if spans["ended"] != spans["begun"] or spans["open"] != 0:
            out.err(path, "span census unbalanced: begun=%d ended=%d open=%d"
                    % (spans["begun"], spans["ended"], spans["open"]))
        by_name = spans.get("by_name")
        if not isinstance(by_name, dict):
            out.err(path, "spans.by_name missing or not an object")
        elif sum(by_name.values()) != spans["begun"]:
            out.err(path, "spans.by_name sums to %d, begun is %d"
                    % (sum(by_name.values()), spans["begun"]))

    attribution = doc.get("attribution")
    if attribution is not None:
        if not isinstance(attribution, list) or not attribution:
            out.err(path, "'attribution' present but not a non-empty list")
            return
        for i, row in enumerate(attribution):
            where = "attribution[%d]" % i
            if not isinstance(row, dict):
                out.err(path, where + " is not an object")
                continue
            if row.get("bucket") not in CHARGE_BUCKETS:
                out.err(path, where + " has unknown bucket %r" % row.get("bucket"))
            if not isinstance(row.get("subsystem"), str) or not row["subsystem"]:
                out.err(path, where + " missing subsystem")
            if not is_int(row.get("span")) or row["span"] < 0:
                out.err(path, where + " span is not a non-negative integer")
            if not is_int(row.get("ns")) or row["ns"] < 0:
                out.err(path, where + " ns is not a non-negative integer")


def check_lock_counters(path, counters, out):
    """Validates the lock.* family (docs/klock.md).

    The family is all-or-nothing: a document that emits any lock.* counter
    must emit the whole set (the exporter writes them unconditionally), all
    non-negative, with lock.violations == 0 — a published artifact from a run
    that broke the lock discipline is a bug, not data.  max_held/max_held_rank
    must be zero when no lock was ever acquired.
    """
    present = [k for k in counters if k.startswith("lock.")]
    if not present:
        return
    vals = {}
    for f in LOCK_COUNTERS:
        v = counters.get(f)
        if not is_int(v):
            out.err(path, "lock.* family incomplete: missing integer %r" % f)
            return
        if v < 0:
            out.err(path, "counter %r is negative" % f)
            return
        vals[f] = v
    for k in present:
        if k not in LOCK_COUNTERS:
            out.err(path, "unknown lock.* counter %r" % k)
    if vals["lock.violations"] != 0:
        out.err(path, "lock.violations = %d (lock discipline broken)"
                % vals["lock.violations"])
    acquisitions = vals["lock.spin_acquisitions"] + vals["lock.sleep_acquisitions"]
    if acquisitions == 0 and (vals["lock.max_held"] != 0
                              or vals["lock.max_held_rank"] != 0):
        out.err(path, "lock.max_held/max_held_rank nonzero with zero acquisitions")


def check_server_bench(path, doc, out):
    for f in SERVER_TOP_INTS:
        if not is_int(doc.get(f)):
            out.err(path, "missing integer top-level field %r" % f)
    for f in ["offered_rps", "zipf_s"]:
        if not is_num(doc.get(f)):
            out.err(path, "missing numeric top-level field %r" % f)
    if doc.get("grid") not in ("small", "full"):
        out.err(path, "grid must be 'small' or 'full', got %r" % doc.get("grid"))

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        out.err(path, "missing or empty 'rows'")
        return
    seen_modes = set()
    for row in rows:
        mode = row.get("mode")
        if mode not in SERVER_MODES:
            out.err(path, "row has unknown mode %r" % mode)
            continue
        if mode in seen_modes:
            out.err(path, "duplicate row for mode %r" % mode)
        seen_modes.add(mode)
        where = "row %s" % mode
        ok = True
        for f in SERVER_ROW_INTS:
            if not is_int(row.get(f)):
                out.err(path, "%s: missing integer %r" % (where, f))
                ok = False
        for f in SERVER_ROW_BOOLS:
            if not isinstance(row.get(f), bool):
                out.err(path, "%s: missing boolean %r" % (where, f))
                ok = False
        if not is_num(row.get("elapsed_s")) or not is_num(row.get("goodput_bps")):
            out.err(path, "%s: missing numeric elapsed_s/goodput_bps" % where)
            ok = False
        if not ok:
            continue
        if row["completed"] + row["errored"] != doc.get("requests"):
            out.err(path, "%s: completed+errored != requests" % where)
        if not row["p50_ns"] <= row["p99_ns"] <= row["p999_ns"] <= row["max_ns"]:
            out.err(path, "%s: percentiles not ordered" % where)
        if row["completed"] > 0 and (row["p50_ns"] <= 0 or row["goodput_bps"] <= 0):
            out.err(path, "%s: completed work with non-positive p50/goodput" % where)
        # The hard gates: a published row may never carry a failed one.
        for f in SERVER_ROW_BOOLS:
            if row[f] is not True:
                out.err(path, "%s: hard gate %r is false" % (where, f))
        if row["spans"] <= 0:
            out.err(path, "%s: no spans recorded" % where)
    missing = SERVER_MODES - seen_modes
    if missing:
        out.err(path, "missing rows for mode(s): %s" % ", ".join(sorted(missing)))


def check_kop_bench(path, doc, out):
    for f in KOP_TOP_INTS:
        if not is_int(doc.get(f)):
            out.err(path, "missing integer top-level field %r" % f)

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        out.err(path, "missing or empty 'rows'")
        return
    by_mode = {}
    for row in rows:
        mode = row.get("mode")
        if mode not in KOP_MODES:
            out.err(path, "row has unknown mode %r" % mode)
            continue
        if mode in by_mode:
            out.err(path, "duplicate row for mode %r" % mode)
        by_mode[mode] = row
        where = "row %s" % mode
        ok = True
        for f in KOP_ROW_INTS:
            if not is_int(row.get(f)):
                out.err(path, "%s: missing integer %r" % (where, f))
                ok = False
        for f in KOP_ROW_BOOLS:
            if not isinstance(row.get(f), bool):
                out.err(path, "%s: missing boolean %r" % (where, f))
                ok = False
        if (not is_num(row.get("elapsed_s"))
                or not is_num(row.get("goodput_bps"))
                or not is_num(row.get("cpu_availability"))):
            out.err(path, "%s: missing numeric elapsed_s/goodput_bps/"
                    "cpu_availability" % where)
            ok = False
        if not ok:
            continue
        # Hard gates: a published row may never carry a failed one.
        for f in KOP_ROW_BOOLS:
            if row[f] is not True:
                out.err(path, "%s: hard gate %r is false" % (where, f))
        if row["bytes_out"] > row["bytes_in"]:
            out.err(path, "%s: bytes_out exceeds bytes_in" % where)
        if row["chunks_dropped"] > row["chunks_in"]:
            out.err(path, "%s: chunks_dropped exceeds chunks_in" % where)
        if not 0.0 <= row["cpu_availability"] <= 1.0:
            out.err(path, "%s: cpu_availability outside [0, 1]" % where)
        if row["bytes_out"] > 0 and row["goodput_bps"] <= 0:
            out.err(path, "%s: delivered bytes with non-positive goodput"
                    % where)
    missing = KOP_MODES - set(by_mode)
    if missing:
        out.err(path, "missing rows for mode(s): %s" % ", ".join(sorted(missing)))
        return

    # The headline claim the artifact exists to publish: the in-kernel filter
    # beats the user-process round trip on BOTH axes at equal offered load.
    ik, us = by_mode["inkernel"], by_mode["user"]
    if all(is_num(r.get("cpu_availability")) for r in (ik, us)):
        if ik["cpu_availability"] <= us["cpu_availability"]:
            out.err(path, "win condition failed: inkernel cpu_availability "
                    "%.4f <= user %.4f"
                    % (ik["cpu_availability"], us["cpu_availability"]))
    if all(is_int(r.get("syscall_traps")) for r in (ik, us)):
        if ik["syscall_traps"] >= us["syscall_traps"]:
            out.err(path, "win condition failed: inkernel syscall_traps "
                    "%d >= user %d" % (ik["syscall_traps"], us["syscall_traps"]))


CHECKERS = {
    "ikdp.telemetry.v1": check_telemetry,
    "ikdp.server_bench.v1": check_server_bench,
    "ikdp.kop_bench.v1": check_kop_bench,
}


def check_file(path, out):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        out.err(path, "unreadable or invalid JSON: %s" % e)
        return
    if not isinstance(doc, dict):
        out.err(path, "top level is not an object")
        return
    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        out.err(path, "unknown schema %r (known: %s)"
                % (schema, ", ".join(sorted(CHECKERS))))
        return
    checker(path, doc, out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="JSON artifacts to validate")
    parser.add_argument("--json", action="store_true",
                        help="print findings as a JSON list")
    args = parser.parse_args(argv)

    out = Findings()
    for path in args.files:
        check_file(path, out)

    if args.json:
        print(json.dumps(out.items, indent=2))
    else:
        for item in out.items:
            print("%s: %s" % (item["file"], item["finding"]))
        print("telemetry_check: %d file(s), %d finding(s)"
              % (len(args.files), len(out.items)), file=sys.stderr)
    return 1 if out.items else 0


if __name__ == "__main__":
    sys.exit(main())
