// Ablation: 4.3BSD CPU-usage priority decay (scheduler fidelity).
//
// The scheduler used for the main tables dispatches at fixed priorities
// (kernel sleep boosts + a flat user priority), which is what the paper's
// two-process experiments exercise.  Real 4.3BSD also decays the user
// priority of CPU-heavy processes (schedcpu()).  This bench re-runs the
// Table 1 experiments with decay enabled to show how sensitive the
// availability factors are to that scheduler refinement.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: scheduler priority-decay ablation (8 MB copy)\n\n");
  std::printf("  %-5s | %-9s | %-9s | %-9s | %-9s\n", "disk", "F_cp", "F_cp", "F_scp", "F_scp");
  std::printf("  %-5s | %-9s | %-9s | %-9s | %-9s\n", "", "(flat)", "(decay)", "(flat)",
              "(decay)");
  std::printf("  ------+-----------+-----------+-----------+----------\n");
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = disk;
    cfg.with_test_program = true;
    cfg.use_splice = false;
    const ikdp::ExperimentResult cp_flat = ikdp::RunCopyExperiment(cfg);
    cfg.use_splice = true;
    const ikdp::ExperimentResult scp_flat = ikdp::RunCopyExperiment(cfg);
    cfg.costs.priority_decay = true;
    cfg.use_splice = false;
    const ikdp::ExperimentResult cp_decay = ikdp::RunCopyExperiment(cfg);
    cfg.use_splice = true;
    const ikdp::ExperimentResult scp_decay = ikdp::RunCopyExperiment(cfg);
    std::printf("  %-5s | %7.2f   | %7.2f   | %7.2f   | %7.2f %s\n", ikdp::DiskKindName(disk),
                cp_flat.slowdown, cp_decay.slowdown, scp_flat.slowdown, scp_decay.slowdown,
                cp_flat.ok && cp_decay.ok && scp_flat.ok && scp_decay.ok ? "" : "FAILED");
  }
  std::printf(
      "\nMeasured shape: identical.  The copier contends from kernel sleep\n"
      "priorities (PRIBIO wakeups), which decay never touches, and the test\n"
      "program is the only user-priority process, so its penalty changes no\n"
      "scheduling decision.  The paper's factors are robust to this scheduler\n"
      "refinement; decay matters only for multi-process user-level competition\n"
      "(see CpuTest.FreshProcessOutranksPenalizedHog).\n");
  return 0;
}
