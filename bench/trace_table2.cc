// Traced Table 2 run (RZ56, splice): the observability layer end to end.
//
// Repeats the Table 2 RZ56/scp experiment three times — once bare, once with
// a TraceLog and the online telemetry collector attached, once more with the
// kspan collector minting request-scoped spans on top — and then:
//
//  1. proves zero tracing overhead in simulated time (all runs must agree
//     to the nanosecond on bytes, elapsed time, and throughput, and the
//     telemetry documents of the traced and spanned runs must be
//     byte-identical);
//  2. exports the trace as Chrome trace-event JSON (table2_rz56.trace.json,
//     loadable in Perfetto) and the metric registry as
//     BENCH_telemetry.json — the extended ikdp.telemetry.v1 document with
//     the optional "spans"/"attribution" sections rendered from the third
//     run;
//  3. re-parses both files with the bundled JSON reader and cross-checks
//     the telemetry against the experiment's reported numbers: chunk count,
//     bytes moved, per-disk transfer counts, histogram sums vs the disks'
//     busy-time counters, and the splice span vs reported elapsed time.
//
// Exits nonzero if any file fails to parse or any consistency check fails,
// so CI can gate on it.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/metrics/experiment.h"
#include "src/metrics/report.h"
#include "src/metrics/span_trace.h"
#include "src/metrics/telemetry.h"
#include "src/metrics/trace_export.h"
#include "src/sim/kspan.h"

using ikdp::bench::Slurp;

namespace {

ikdp::bench::CheckList g_checks;

void Check(bool cond, const char* what) { g_checks.Check(cond, what); }

}  // namespace

int main(int argc, char** argv) {
  const int64_t mb = ikdp::bench::ParseMb(argc, argv);
  const int64_t file_bytes = mb << 20;
  const int64_t chunks = file_bytes / 8192;
  std::printf("ikdp bench: traced Table 2 run (RZ56, splice, %lld MB)\n\n",
              static_cast<long long>(mb));

  ikdp::ExperimentConfig cfg;
  cfg.disk = ikdp::DiskKind::kRz56;
  cfg.use_splice = true;
  cfg.with_test_program = false;
  cfg.file_bytes = file_bytes;

  // Run 1: bare, the reference result.
  const ikdp::ExperimentResult bare = ikdp::RunCopyExperiment(cfg);

  // Run 2: traced, with the collector feeding histograms online and the
  // registry sampling every kernel counter at the end of the run.
  ikdp::TraceLog trace(1 << 18);
  ikdp::MetricsRegistry registry;
  ikdp::TelemetryCollector collector(&registry);
  collector.Attach(&trace);
  cfg.trace = &trace;
  cfg.inspect = [&registry](ikdp::Kernel& kernel) {
    ikdp::CaptureKernelCounters(&registry, kernel);
  };
  const ikdp::ExperimentResult traced = ikdp::RunCopyExperiment(cfg);

  // Run 3: spans on top — the kspan collector records every request-scoped
  // span the kernel mints while a fresh trace/registry pair watches the same
  // run.  Span recording is pure host-side bookkeeping, so this run must
  // reproduce runs 1 and 2 to the nanosecond AND its telemetry document
  // (before the span sections) must be byte-identical to run 2's.
  ikdp::TraceLog span_trace_log(1 << 18);
  ikdp::MetricsRegistry span_registry;
  ikdp::TelemetryCollector span_collector(&span_registry);
  span_collector.Attach(&span_trace_log);
  std::map<ikdp::CpuSystem::ChargeKey, ikdp::SimDuration> attribution;
  cfg.trace = &span_trace_log;
  cfg.inspect = [&span_registry, &attribution](ikdp::Kernel& kernel) {
    ikdp::CaptureKernelCounters(&span_registry, kernel);
    attribution = kernel.cpu().attribution();
  };
  ikdp::KspanCollector spans;
  ikdp::AttachKspan(&spans);
  const ikdp::ExperimentResult spanned = ikdp::RunCopyExperiment(cfg);
  ikdp::AttachKspan(nullptr);

  std::printf("reference: %s\n", ikdp::Summary(bare).c_str());
  std::printf("traced:    %s\n", ikdp::Summary(traced).c_str());
  std::printf("spanned:   %s\n\n", ikdp::Summary(spanned).c_str());

  std::printf("zero-overhead (simulated results identical with trace attached):\n");
  Check(bare.ok && traced.ok, "both runs verified");
  Check(bare.bytes == traced.bytes, "bytes identical");
  Check(bare.elapsed_s == traced.elapsed_s, "elapsed identical to the nanosecond");
  Check(bare.throughput_kbs == traced.throughput_kbs, "throughput identical");
  Check(trace.total() > 0, "trace actually recorded events");
  Check(trace.total() <= (1 << 18), "ring did not wrap (full run retained)");

  std::printf("\nzero-overhead (span recording changes nothing):\n");
  Check(spanned.ok, "spanned run verified");
  Check(bare.bytes == spanned.bytes && bare.elapsed_s == spanned.elapsed_s &&
            bare.throughput_kbs == spanned.throughput_kbs,
        "spanned run identical to reference to the nanosecond");
  std::string span_err;
  Check(spans.begun() > 0, "spans actually recorded");
  Check(spans.CheckBalanced(&span_err), "every span closed exactly once");
  if (!span_err.empty()) {
    std::fprintf(stderr, "span imbalance: %s\n", span_err.c_str());
  }
  {
    std::ostringstream a;
    std::ostringstream b;
    ikdp::ExportRegistryJson(registry, a);
    ikdp::ExportRegistryJson(span_registry, b);
    Check(a.str() == b.str(), "telemetry byte-identical with spans on");
  }

  // --- exports ---
  const char* trace_path = "table2_rz56.trace.json";
  const char* telemetry_path = "BENCH_telemetry.json";
  {
    std::ofstream out(trace_path);
    ikdp::ExportChromeTrace(trace, out);
  }
  {
    // The published document is the extended form: the base registry plus
    // the optional "spans"/"attribution" sections rendered from the third
    // run's span collector and CPU ledger (tools/telemetry_check validates
    // both layers in CI).
    std::ofstream out(telemetry_path);
    ikdp::ExportRegistryJson(span_registry, out, ikdp::RenderSpanSections(spans, attribution));
  }
  std::printf("\nwrote %s and %s\n\n", trace_path, telemetry_path);

  std::printf("round-trip (exports parse with the bundled JSON reader):\n");
  ikdp::JsonValue trace_json;
  ikdp::JsonValue telem_json;
  Check(ikdp::ParseJson(Slurp(trace_path), &trace_json), "trace JSON parses");
  Check(ikdp::ParseJson(Slurp(telemetry_path), &telem_json), "telemetry JSON parses");
  const ikdp::JsonValue* events = trace_json.Get("traceEvents");
  Check(events != nullptr && events->IsArray() && !events->items.empty(),
        "traceEvents is a non-empty array");
  const ikdp::JsonValue* schema = telem_json.Get("schema");
  Check(schema != nullptr && schema->IsString() && schema->str == ikdp::kTelemetrySchema,
        "telemetry schema is ikdp.telemetry.v1");
  const ikdp::JsonValue* spans_section = telem_json.Get("spans");
  Check(spans_section != nullptr && spans_section->Get("begun") != nullptr &&
            spans_section->Get("begun")->number == static_cast<double>(spans.begun()),
        "extended telemetry carries the span census");
  const ikdp::JsonValue* attr_section = telem_json.Get("attribution");
  Check(attr_section != nullptr && attr_section->IsArray() && !attr_section->items.empty(),
        "extended telemetry carries the attribution mirror");

  std::printf("\nconsistency (telemetry vs reported results):\n");
  const ikdp::LatencyHistogram* chunk_hist = registry.Histogram("splice.chunk_latency");
  Check(static_cast<int64_t>(chunk_hist->count()) == chunks,
        "splice chunk intervals == file blocks");
  Check(registry.GetCounter("splice.total_bytes") == file_bytes,
        "splice.total_bytes == file size");
  Check(registry.GetCounter("cache.delwri_write_errors") == 0, "no delwri write errors");

  // Per-disk: dispatch->complete intervals must account for every physical
  // transfer (requests minus the ones coalesced into a neighbour), and the
  // histogram's time sum must equal the disk's own busy-time ledger.
  for (const char* mount : {"srcfs", "dstfs"}) {
    const std::string prefix = std::string("disk.") + mount + ".";
    const int64_t transfers = registry.GetCounter(prefix + "reads") +
                              registry.GetCounter(prefix + "writes") -
                              registry.GetCounter(prefix + "coalesced");
    const std::string dev = mount[0] == 's' ? "RZ56.src" : "RZ56.dst";
    const ikdp::LatencyHistogram* h = registry.Histogram("disk.service_time." + dev);
    char label[96];
    std::snprintf(label, sizeof(label), "%s: service histogram count == %lld transfers", mount,
                  static_cast<long long>(transfers));
    Check(static_cast<int64_t>(h->count()) == transfers && transfers > 0, label);
    std::snprintf(label, sizeof(label), "%s: histogram sum == busy_time counter", mount);
    Check(h->sum() == registry.GetCounter(prefix + "busy_time_ns"), label);
    std::snprintf(label, sizeof(label), "%s: busy time <= elapsed", mount);
    Check(static_cast<double>(h->sum()) <= traced.elapsed_s * 1e9 + 1.0, label);
  }

  // The splice's async span in the Chrome trace must match the reported
  // elapsed time (the copy program adds open/close syscalls around it, so
  // allow a small margin).
  double span_begin = -1;
  double span_end = -1;
  int chunk_instants = 0;
  for (const ikdp::JsonValue& ev : events->items) {
    const ikdp::JsonValue* ph = ev.Get("ph");
    const ikdp::JsonValue* ts = ev.Get("ts");
    const ikdp::JsonValue* name = ev.Get("name");
    if (ph == nullptr || ts == nullptr || name == nullptr) {
      continue;
    }
    if (ph->str == "b") {
      span_begin = ts->number;
    } else if (ph->str == "e") {
      span_end = ts->number;
    } else if (ph->str == "n" && name->str.find("splice-chunk") != std::string::npos) {
      ++chunk_instants;
    }
  }
  Check(span_begin >= 0 && span_end > span_begin, "splice span present in Chrome trace");
  const double span_s = (span_end - span_begin) / 1e6;
  Check(span_s <= traced.elapsed_s && span_s > 0.9 * traced.elapsed_s,
        "splice span consistent with reported elapsed time");
  Check(chunk_instants == chunks, "every chunk completion present in Chrome trace");

  // Throughput from first principles: bytes over the elapsed time must land
  // on the reported number (KB = 1024 bytes, as the tables report).
  const double derived_kbs = static_cast<double>(traced.bytes) / 1024.0 / traced.elapsed_s;
  Check(std::fabs(derived_kbs - traced.throughput_kbs) / traced.throughput_kbs < 0.02,
        "trace-derived throughput matches reported");

  std::printf("\ndisk.service_time.RZ56.src:\n");
  std::ostringstream hist;
  registry.Histogram("disk.service_time.RZ56.src")->Print(hist);
  std::fputs(hist.str().c_str(), stdout);

  std::printf("\n%s\n", g_checks.ok ? "ALL CHECKS PASS" : "CHECKS FAILED");
  return g_checks.ok ? 0 : 1;
}
