// Ablation: the callout-list write-side deferral (paper Section 5.2.3).
//
// "The callout list is used to decouple the I/O access periods at the source
// and destination I/O devices.  Avoiding lock-step behavior by introducing
// the asynchrony provided by the callout list improves performance by
// allowing I/O operations at the source and destination points to proceed
// simultaneously."
//
// Two sweeps: (a) softclock frequency hz, which sets the granularity at
// which deferred write handlers run (and thus paces synchronous-device
// splices); (b) deferral disabled entirely — the write side runs inside the
// read-completion handler, recoupling the devices.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: callout-deferral ablation (8 MB scp)\n\n");

  std::printf("hz sweep (write handlers run on softclock ticks):\n");
  std::printf("  %-5s | %-5s | %-10s | %-8s\n", "disk", "hz", "scp KB/s", "F_scp");
  std::printf("  ------+-------+------------+---------\n");
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz58}) {
    for (int hz : {64, 128, 256, 512, 1024}) {
      ikdp::ExperimentConfig cfg;
      cfg.disk = disk;
      cfg.use_splice = true;
      cfg.with_test_program = true;
      cfg.hz = hz;
      const ikdp::ExperimentResult r = ikdp::RunCopyExperiment(cfg);
      std::printf("  %-5s | %5d | %8.0f   | %6.2f %s\n", ikdp::DiskKindName(disk), hz,
                  r.throughput_kbs, r.slowdown, r.ok ? "" : "FAILED");
    }
  }

  std::printf("\ndeferral on/off (write handler via callout vs inside read handler):\n");
  std::printf("  %-5s | %-10s | %-10s | %-8s | %-8s\n", "disk", "KB/s (on)", "KB/s (off)",
              "F (on)", "F (off)");
  std::printf("  ------+------------+------------+----------+---------\n");
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = disk;
    cfg.use_splice = true;
    cfg.with_test_program = true;
    cfg.splice_options.callout_deferral = true;
    const ikdp::ExperimentResult on = ikdp::RunCopyExperiment(cfg);
    cfg.splice_options.callout_deferral = false;
    const ikdp::ExperimentResult off = ikdp::RunCopyExperiment(cfg);
    std::printf("  %-5s | %8.0f   | %8.0f   | %6.2f   | %6.2f %s\n", ikdp::DiskKindName(disk),
                on.throughput_kbs, off.throughput_kbs, on.slowdown, off.slowdown,
                on.ok && off.ok ? "" : "FAILED");
  }
  std::printf(
      "\nExpected shape: higher hz lets a synchronous-device splice move more\n"
      "chunks per second (the per-tick budget turns over faster) at a CPU\n"
      "availability cost; disabling deferral couples the devices and removes the\n"
      "pacing entirely (fast but CPU-hungry on the RAM disk).\n");
  return 0;
}
