// Extension bench: continuous-media delivery under background load.
//
// The paper's motivation is multimedia ("the class of I/O intensive
// applications ... including multimedia programs wishing to connect audio
// and video streams between devices and files", Section 8), and its Section
// 4 example paces video frames with an interval timer.  Timeliness is what
// matters for playback, so this bench measures *frame delivery lateness*:
// the movie player delivers one 64 KB frame per 100 ms tick while a
// background 8 MB copy runs, implemented either as cp or as scp.
//
// The player also spends 30 ms of user-mode CPU per frame ("decode") — the
// part of a real player the kernel cannot do for it.
//
// The measured shape is instructive in both directions.  A background cp is
// USER-level competition: the player's timer wakeup outranks it and the
// 30 ms decode fits inside one quantum, so playback is fully protected —
// but the copy crawls (it only runs in the player's idle gaps).  A
// background splice is KERNEL-level work: its interrupt/softclock handlers
// steal cycles from the decode, adding bounded, small lateness — while the
// copy finishes far sooner.  The in-kernel data path trades a few
// milliseconds of frame lateness for a much faster transfer, and both stay
// comfortably within the frame budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/dev/paced_sink.h"
#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"
#include "src/workload/programs.h"

using namespace ikdp;

namespace {

constexpr int64_t kFrameBytes = 64 * 1024;
constexpr int kFrames = 40;
constexpr SimDuration kFrameInterval = Milliseconds(100);
constexpr SimDuration kDecodeCpu = Milliseconds(30);

struct JitterOutcome {
  double mean_late_ms = 0;
  double max_late_ms = 0;
  int frames = 0;
  bool copy_ok = false;
  double copy_elapsed_s = 0;
};

JitterOutcome RunPlayback(bool background_splice) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  RamDisk media(&kernel.cpu(), 16 << 20);
  RamDisk src(&kernel.cpu(), 16 << 20);
  RamDisk dst(&kernel.cpu(), 16 << 20);
  FileSystem* media_fs = kernel.MountFs(&media, "media");
  kernel.MountFs(&src, "src");
  kernel.MountFs(&dst, "dst");
  media_fs->CreateFileInstant("movie", kFrames * kFrameBytes,
                              [](int64_t i) { return static_cast<uint8_t>(i); });
  FileSystem* src_fs = kernel.FindFs("src");
  src_fs->CreateFileInstant("big", 8 << 20, [](int64_t i) { return static_cast<uint8_t>(i); });

  PacedSink video_dac(&sim, "video_dac", 4.0 * 10 * kFrameBytes, 4 * kFrameBytes);
  kernel.RegisterCharDev("video_dac", &video_dac);

  JitterOutcome out;
  std::vector<SimTime> delivered;

  kernel.Spawn("player", [&](Process& p) -> Task<> {
    const int movie = co_await kernel.Open(p, "media:movie", kOpenRead);
    const int dac = co_await kernel.Open(p, "/dev/video_dac", kOpenWrite);
    kernel.Setitimer(p, kFrameInterval);
    int64_t rval = 0;
    do {
      rval = co_await kernel.Splice(p, movie, dac, kFrameBytes);
      if (rval > 0) {
        // Per-frame user-mode work (decode/composite), at user priority.
        co_await kernel.cpu().Use(p, kDecodeCpu);
        delivered.push_back(sim.Now());
      }
      co_await kernel.Pause(p);
    } while (rval > 0);
    kernel.StopItimer(p);
  });

  CopyResult copy;
  kernel.Spawn(background_splice ? "scp" : "cp", [&](Process& p) -> Task<> {
    if (background_splice) {
      co_await ScpProgram(kernel, p, "src:big", "dst:copy", &copy);
    } else {
      co_await CpProgram(kernel, p, "src:big", "dst:copy", 8192, &copy);
    }
  });

  sim.Run();
  out.copy_ok = copy.ok;
  out.copy_elapsed_s = copy.ElapsedSeconds();
  out.frames = static_cast<int>(delivered.size());
  double total_late = 0;
  for (size_t i = 0; i < delivered.size(); ++i) {
    // Ideal delivery for frame i: i * interval after the first frame.
    const SimTime ideal = delivered.empty() ? 0 : delivered[0] + static_cast<SimTime>(i) * kFrameInterval;
    const double late = std::max(0.0, ToMilliseconds(delivered[i] - ideal));
    total_late += late;
    out.max_late_ms = std::max(out.max_late_ms, late);
  }
  out.mean_late_ms = delivered.empty() ? 0 : total_late / static_cast<double>(delivered.size());
  return out;
}

}  // namespace

int main() {
  std::printf("ikdp bench: movie playback jitter under background copy load\n");
  std::printf("player: %d frames x %lld KB at %lld ms intervals; background: 8 MB copy\n\n",
              kFrames, static_cast<long long>(kFrameBytes >> 10),
              static_cast<long long>(kFrameInterval / kMillisecond));
  const JitterOutcome cp = RunPlayback(/*background_splice=*/false);
  const JitterOutcome scp = RunPlayback(/*background_splice=*/true);
  std::printf("  background | frames | mean lateness | max lateness | copy time\n");
  std::printf("  -----------+--------+---------------+--------------+-----------\n");
  std::printf("  cp         | %4d   | %9.2f ms  | %8.2f ms  | %5.2f s %s\n", cp.frames,
              cp.mean_late_ms, cp.max_late_ms, cp.copy_elapsed_s, cp.copy_ok ? "" : "FAILED");
  std::printf("  scp        | %4d   | %9.2f ms  | %8.2f ms  | %5.2f s %s\n", scp.frames,
              scp.mean_late_ms, scp.max_late_ms, scp.copy_elapsed_s,
              scp.copy_ok ? "" : "FAILED");
  const double budget_ms = ToMilliseconds(kFrameInterval);
  const bool ok = cp.copy_ok && scp.copy_ok && cp.frames == kFrames && scp.frames == kFrames &&
                  cp.max_late_ms < budget_ms / 2 && scp.max_late_ms < budget_ms / 2 &&
                  scp.copy_elapsed_s < cp.copy_elapsed_s;
  std::printf(
      "\nMeasured shape: user-level competition (cp) cannot perturb the player —\n"
      "its timer wakeup outranks cp and the decode fits a quantum — but the copy\n"
      "crawls.  Kernel-level splice work adds small, bounded lateness while the\n"
      "copy finishes far sooner.  Both stay within the frame budget.\n%s\n",
      ok ? "OK" : "CHECK FAILED");
  return ok ? 0 : 1;
}
