// Hostile-world fault matrix for the splice data path (docs/faults.md).
//
// Sweeps device-error-rate x link-loss x stream-count x submission mode and
// asserts the error paths hold up under load:
//
//   * no hangs: every process exits, the CPU system drains to idle;
//   * no lost completions: completed + errored streams equals the stream
//     count, and on ring cells every SQE produced exactly one CQE even when
//     streams abort mid-flight;
//   * no buffer leaks: after the run every buffer in the cache can be
//     re-acquired (a stuck B_BUSY header would wedge this probe);
//   * determinism: the zero-fault column behaves exactly like the
//     pre-fault-plan code (contents verified byte-for-byte).
//
// Each cell is a fresh machine: two Rz56 SCSI disks carrying N file->file
// splice streams driven by MultiStreamCopyProgram, plus one file->socket
// splice over a lossy/jittery Ethernet link so the network fault plan is
// exercised in every cell.  Disk fault plans inject probabilistic read and
// write errors and latency spikes; seeds derive from the cell index so the
// whole grid is reproducible run to run.
//
// Emits BENCH_fault.json (schema ikdp.fault_bench.v1), re-parses it with
// the bundled strict JSON reader, and exits nonzero if any check fails.
// `bench_fault_matrix small` runs the reduced CI grid.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/dev/disk_driver.h"
#include "src/fs/filesystem.h"
#include "src/hw/fault.h"
#include "src/hw/link.h"
#include "src/net/udp_socket.h"
#include "src/metrics/trace_export.h"
#include "src/os/kernel.h"
#include "src/sim/kspan.h"
#include "src/sim/simulator.h"
#include "src/workload/programs.h"

namespace {

ikdp::bench::CheckList g_checks;

const char* ModeName(ikdp::SubmitMode m) {
  switch (m) {
    case ikdp::SubmitMode::kSyncLoop:
      return "sync";
    case ikdp::SubmitMode::kFasyncSigio:
      return "fasync";
    case ikdp::SubmitMode::kRing:
      return "ring";
  }
  return "?";
}

struct FaultCell {
  ikdp::SubmitMode mode;
  int n = 0;
  double dev_rate = 0;
  double loss = 0;
  ikdp::MultiStreamResult ms;
  bool relay_done = false;   // the MultiStreamCopyProgram coroutine returned
  bool net_done = false;     // the file->socket splice returned
  bool quiescent = false;    // cpu.alive() == 0 after the run
  bool engine_quiet = false; // no splice descriptors left active
  bool leaks_ok = false;     // every cache buffer re-acquirable afterwards
  bool verified = false;     // zero-device-fault cells only: dst == src
  int64_t net_moved = -2;
  int net_errno = 0;
  uint64_t disk_errors = 0;
  uint64_t disk_spikes = 0;
  uint64_t frames_lost = 0;
  uint64_t frames_jittered = 0;
  uint64_t delwri_data_lost = 0;
  // Observability invariants, checked per cell: the CPU attribution mirror
  // sums exactly to the ledger, and every minted kspan closed exactly once
  // even on the error paths this grid exists to provoke.
  bool closure_ok = false;
  bool spans_balanced = false;
  uint64_t spans_begun = 0;
  std::string span_err;
};

// One fresh machine per cell.  `seed` varies per cell so no two cells share
// a fault RNG stream, but re-running the binary reproduces the grid exactly.
FaultCell RunCell(ikdp::SubmitMode mode, int n, double dev_rate, double loss,
                  int64_t stream_bytes, uint64_t seed) {
  FaultCell cell;
  cell.mode = mode;
  cell.n = n;
  cell.dev_rate = dev_rate;
  cell.loss = loss;

  ikdp::Simulator sim;
  ikdp::Kernel kernel(&sim, ikdp::DecStation5000Costs());
  ikdp::DiskDriver src(&kernel.cpu(), &sim, ikdp::Rz56Params());
  ikdp::DiskDriver dst(&kernel.cpu(), &sim, ikdp::Rz56Params());
  ikdp::FileSystem* src_fs = kernel.MountFs(&src, "src");
  ikdp::FileSystem* dst_fs = kernel.MountFs(&dst, "dst");

  if (dev_rate > 0) {
    ikdp::DiskFaultPlan dp;
    dp.read_error_rate = dev_rate;
    dp.write_error_rate = dev_rate;
    dp.spike_rate = dev_rate / 2;
    dp.spike_delay = ikdp::Milliseconds(5);
    dp.seed = seed;
    src.disk().SetFaultPlan(dp);
    dp.seed = seed + 1;
    dst.disk().SetFaultPlan(dp);
  }

  ikdp::UdpSocket sa(&kernel.cpu());
  ikdp::UdpSocket sb(&kernel.cpu(), 48 * 1024, 1 << 20);
  ikdp::NetworkLink wire(&sim, ikdp::EthernetParams());
  if (loss > 0) {
    ikdp::LinkFaultPlan lp;
    lp.loss_rate = loss;
    lp.jitter_rate = 0.5;
    lp.jitter_max = ikdp::Milliseconds(2);
    lp.seed = seed + 2;
    wire.SetFaultPlan(lp);
  }
  sa.ConnectTo(&sb, &wire);

  auto pattern = [](int stream, int64_t i) {
    return static_cast<uint8_t>(((i * 2654435761u) >> 5 ^ stream * 97) & 0xff);
  };
  std::vector<ikdp::StreamSpec> streams;
  for (int i = 0; i < n; ++i) {
    const std::string name = "s" + std::to_string(i);
    if (src_fs->CreateFileInstant(name, stream_bytes,
                                  [&pattern, i](int64_t b) { return pattern(i, b); }) ==
        nullptr) {
      return cell;
    }
    ikdp::StreamSpec spec;
    spec.src = "src:" + name;
    spec.dst = "dst:d" + std::to_string(i);
    spec.nbytes = stream_bytes;
    streams.push_back(std::move(spec));
  }
  const int64_t net_bytes = 8 * ikdp::kBlockSize;
  if (src_fs->CreateFileInstant("net", net_bytes,
                                [&pattern](int64_t b) { return pattern(99, b); }) == nullptr) {
    return cell;
  }

  // Record span trees for the whole cell: every splice stream and ring op
  // minted under fault injection must close exactly once (checked below).
  ikdp::KspanCollector spans;
  ikdp::AttachKspan(&spans);

  ikdp::RingConfig ring_config;
  ring_config.sq_entries = 2 * n;
  ring_config.max_inflight = n;
  kernel.Spawn("relay", [&kernel, mode, streams, &cell,
                         ring_config](ikdp::Process& p) -> ikdp::Task<> {
    co_await ikdp::MultiStreamCopyProgram(kernel, p, mode, streams, &cell.ms, ring_config);
    cell.relay_done = true;
  });
  // The side stream: splice the same faulty source disk out the (possibly
  // lossy) wire.  UDP semantics: loss never blocks the sender, so this must
  // finish — with the full byte count or a disk errno — in every cell.
  kernel.Spawn("netsend", [&kernel, &sa, &cell](ikdp::Process& p) -> ikdp::Task<> {
    const int f = co_await kernel.Open(p, "src:net", ikdp::kOpenRead);
    const int sock = kernel.OpenSocket(p, &sa);
    cell.net_moved = co_await kernel.Splice(p, f, sock, ikdp::kSpliceEof);
    if (cell.net_moved < 0) {
      cell.net_errno = co_await kernel.SpliceError(p, f);
    }
    cell.net_done = true;
  });

  sim.Run();
  cell.quiescent = kernel.cpu().alive() == 0;
  cell.engine_quiet = kernel.splice_engine().active() == 0 &&
                      kernel.cache().PendingWrites(&src) == 0 &&
                      kernel.cache().PendingWrites(&dst) == 0;
  cell.disk_errors = src.disk().stats().errors + dst.disk().stats().errors;
  cell.disk_spikes = src.disk().stats().latency_spikes + dst.disk().stats().latency_spikes;
  cell.frames_lost = wire.stats().frames_lost;
  cell.frames_jittered = wire.stats().frames_jittered;
  cell.delwri_data_lost = kernel.cache().stats().delwri_data_lost;

  // Leak probe: with the fault plans lifted, every buffer header must still
  // be reclaimable.  A header left B_BUSY or stuck on an error path would
  // wedge this loop and show up as a hang.
  src.disk().SetFaultPlan(ikdp::DiskFaultPlan{});
  dst.disk().SetFaultPlan(ikdp::DiskFaultPlan{});
  int reacquired = 0;
  kernel.Spawn("leakprobe", [&kernel, &dst, &reacquired](ikdp::Process& p) -> ikdp::Task<> {
    std::vector<ikdp::Buf*> held;
    for (int i = 0; i < kernel.cache().nbufs(); ++i) {
      held.push_back(co_await kernel.cache().GetBlk(p, &dst, 30000 + i));
      ++reacquired;
    }
    for (ikdp::Buf* b : held) {
      kernel.cache().Brelse(b);
    }
  });
  sim.Run();
  cell.leaks_ok = reacquired == kernel.cache().nbufs() && kernel.cpu().alive() == 0;

  ikdp::AttachKspan(nullptr);
  cell.spans_begun = spans.begun();
  cell.spans_balanced = spans.CheckBalanced(&cell.span_err);
  std::string closure_err;
  cell.closure_ok = kernel.cpu().CheckAttributionClosure(&closure_err);
  if (!cell.closure_ok) {
    cell.span_err += (cell.span_err.empty() ? "" : "; ") + closure_err;
  }

  if (dev_rate == 0) {
    kernel.cache().FlushAllInstant();
    bool ok = cell.ms.ok;
    for (int i = 0; i < n && ok; ++i) {
      ikdp::Inode* ip = dst_fs->Lookup("d" + std::to_string(i));
      if (ip == nullptr || ip->size != stream_bytes) {
        ok = false;
        break;
      }
      const std::vector<uint8_t> back = dst_fs->ReadFileInstant(ip);
      for (int64_t b = 0; b < stream_bytes; ++b) {
        if (back[static_cast<size_t>(b)] != pattern(i, b)) {
          ok = false;
          break;
        }
      }
    }
    cell.verified = ok;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  const int64_t stream_bytes = 16 * ikdp::kBlockSize;

  const std::vector<double> dev_rates =
      small ? std::vector<double>{0.0, 0.2} : std::vector<double>{0.0, 0.05, 0.2};
  const std::vector<double> losses = {0.0, 0.25};
  const std::vector<int> ns = small ? std::vector<int>{2} : std::vector<int>{1, 4};
  const std::vector<ikdp::SubmitMode> modes = {
      ikdp::SubmitMode::kSyncLoop, ikdp::SubmitMode::kFasyncSigio, ikdp::SubmitMode::kRing};

  std::printf("ikdp bench: splice fault matrix (%s grid, %lld KB/stream, Rz56 SCSI)\n\n",
              small ? "small" : "full", static_cast<long long>(stream_bytes >> 10));
  std::printf("%-7s %2s %5s %5s %5s %4s %4s %6s %7s %5s %6s %6s\n", "mode", "N", "erate",
              "loss", "done", "err", "cqes", "dkerr", "lost", "jit", "net", "flags");

  std::vector<FaultCell> cells;
  uint64_t idx = 0;
  for (double e : dev_rates) {
    for (double l : losses) {
      for (int n : ns) {
        for (ikdp::SubmitMode mode : modes) {
          FaultCell c = RunCell(mode, n, e, l, stream_bytes, 17 * ++idx + 3);
          char flags[8] = "";
          std::snprintf(flags, sizeof(flags), "%c%c%c%c", c.quiescent ? 'q' : '-',
                        c.engine_quiet ? 'e' : '-', c.leaks_ok ? 'b' : '-',
                        (e > 0 || c.verified) ? 'v' : '-');
          std::printf("%-7s %2d %5.2f %5.2f %5d %4d %4d %6llu %7llu %5llu %6lld %6s\n",
                      ModeName(mode), n, e, l, c.ms.streams_completed, c.ms.streams_errored,
                      c.ms.ring_cqes, static_cast<unsigned long long>(c.disk_errors),
                      static_cast<unsigned long long>(c.frames_lost),
                      static_cast<unsigned long long>(c.frames_jittered),
                      static_cast<long long>(c.net_moved), flags);
          cells.push_back(std::move(c));
        }
      }
    }
  }
  std::printf("\n");

  // --- BENCH_fault.json ---
  const char* out_path = "BENCH_fault.json";
  {
    std::ofstream out(out_path);
    out << "{\n\"schema\":\"ikdp.fault_bench.v1\",\n\"grid\":\"" << (small ? "small" : "full")
        << "\",\n\"stream_kb\":" << (stream_bytes >> 10) << ",\n\"rows\":[";
    bool first = true;
    for (const FaultCell& c : cells) {
      out << (first ? "\n" : ",\n");
      first = false;
      char row[640];
      std::snprintf(
          row, sizeof(row),
          "{\"mode\":\"%s\",\"n\":%d,\"dev_rate\":%.2f,\"loss\":%.2f,"
          "\"completed\":%d,\"errored\":%d,\"first_errno\":%d,\"ring_cqes\":%d,"
          "\"bytes\":%lld,\"elapsed_s\":%.6f,\"traps\":%llu,"
          "\"disk_errors\":%llu,\"disk_spikes\":%llu,\"frames_lost\":%llu,"
          "\"frames_jittered\":%llu,\"delwri_data_lost\":%llu,"
          "\"net_moved\":%lld,\"net_errno\":%d,"
          "\"spans\":%llu,\"spans_balanced\":%s,\"closure_ok\":%s,"
          "\"quiescent\":%s,\"engine_quiet\":%s,\"leaks_ok\":%s,\"verified\":%s}",
          ModeName(c.mode), c.n, c.dev_rate, c.loss, c.ms.streams_completed,
          c.ms.streams_errored, c.ms.first_errno, c.ms.ring_cqes,
          static_cast<long long>(c.ms.bytes), c.ms.ElapsedSeconds(),
          static_cast<unsigned long long>(c.ms.syscall_traps),
          static_cast<unsigned long long>(c.disk_errors),
          static_cast<unsigned long long>(c.disk_spikes),
          static_cast<unsigned long long>(c.frames_lost),
          static_cast<unsigned long long>(c.frames_jittered),
          static_cast<unsigned long long>(c.delwri_data_lost),
          static_cast<long long>(c.net_moved), c.net_errno,
          static_cast<unsigned long long>(c.spans_begun), c.spans_balanced ? "true" : "false",
          c.closure_ok ? "true" : "false", c.quiescent ? "true" : "false",
          c.engine_quiet ? "true" : "false", c.leaks_ok ? "true" : "false",
          c.verified ? "true" : "false");
      out << row;
    }
    out << "\n]\n}\n";
  }
  std::printf("wrote %s\n\n", out_path);

  uint64_t faulty_errored = 0;
  uint64_t faulty_disk_errors = 0;
  uint64_t lossy_frames_lost = 0;
  for (const FaultCell& c : cells) {
    char label[128];
    std::snprintf(label, sizeof(label), "%s N=%d e=%.2f l=%.2f", ModeName(c.mode), c.n,
                  c.dev_rate, c.loss);
    char what[192];
    std::snprintf(what, sizeof(what), "%s: no hang (all processes exited)", label);
    g_checks.Check(c.quiescent && c.relay_done && c.net_done, what);
    std::snprintf(what, sizeof(what), "%s: engine quiescent, no pending writes", label);
    g_checks.Check(c.engine_quiet, what);
    std::snprintf(what, sizeof(what), "%s: no buffer leaks (all %s re-acquired)", label,
                  "headers");
    g_checks.Check(c.leaks_ok, what);
    std::snprintf(what, sizeof(what), "%s: no lost completions (done+err == N)", label);
    g_checks.Check(c.ms.streams_completed + c.ms.streams_errored == c.n, what);
    std::snprintf(what, sizeof(what), "%s: every kspan closed exactly once (%llu spans)",
                  label, static_cast<unsigned long long>(c.spans_begun));
    g_checks.Check(c.spans_balanced && c.spans_begun > 0, what);
    std::snprintf(what, sizeof(what), "%s: CPU attribution closes on the ledger", label);
    g_checks.Check(c.closure_ok, what);
    if (!c.span_err.empty()) {
      std::fprintf(stderr, "  [%s] %s\n", label, c.span_err.c_str());
    }
    if (c.mode == ikdp::SubmitMode::kRing) {
      std::snprintf(what, sizeof(what), "%s: one CQE per SQE", label);
      g_checks.Check(c.ms.ring_cqes == c.n, what);
    }
    if (c.dev_rate == 0) {
      std::snprintf(what, sizeof(what), "%s: zero-fault cell verified byte-for-byte", label);
      g_checks.Check(c.verified && c.ms.ok, what);
      std::snprintf(what, sizeof(what), "%s: zero-fault cell drew no disk errors", label);
      g_checks.Check(c.disk_errors == 0 && c.ms.streams_errored == 0, what);
      std::snprintf(what, sizeof(what), "%s: side stream moved every byte", label);
      g_checks.Check(c.net_moved == 8 * ikdp::kBlockSize, what);
    } else {
      faulty_errored += static_cast<uint64_t>(c.ms.streams_errored);
      faulty_disk_errors += c.disk_errors;
      std::snprintf(what, sizeof(what), "%s: errored streams carry an errno", label);
      g_checks.Check(c.ms.streams_errored == 0 || c.ms.first_errno != 0, what);
      std::snprintf(what, sizeof(what), "%s: side stream finished or errored", label);
      g_checks.Check(c.net_moved == 8 * ikdp::kBlockSize ||
                         (c.net_moved == -1 && c.net_errno != 0),
                     what);
    }
    if (c.loss > 0) {
      lossy_frames_lost += c.frames_lost;
    }
  }
  g_checks.Check(faulty_disk_errors > 0, "fault plans actually injected disk errors");
  g_checks.Check(faulty_errored > 0, "some streams aborted with errno under injection");
  g_checks.Check(lossy_frames_lost > 0, "lossy links actually dropped frames");

  ikdp::JsonValue bench_json;
  g_checks.Check(ikdp::ParseJson(ikdp::bench::Slurp(out_path), &bench_json),
                 "BENCH_fault.json parses (strict reader)");
  const ikdp::JsonValue* rows = bench_json.Get("rows");
  g_checks.Check(rows != nullptr && rows->IsArray() && rows->items.size() == cells.size(),
                 "BENCH_fault.json has a row per grid cell");

  std::printf("\n%s\n", g_checks.ok ? "ALL CHECKS PASS" : "CHECKS FAILED");
  return g_checks.ok ? 0 : 1;
}
