// Ablation: the shared-data-area (zero-copy) write side (paper Section
// 5.2.3).
//
// "The data pointer in the new buffer header is saved and altered to point
// to the same address the data pointer in the read-side buffer does, so both
// buffers share a common data area.  We thus avoid copying between cache
// buffers."  Turning zero_copy off makes the write handler bcopy each block
// between buffers (charged as kernel copy time), isolating how much of
// splice's win comes from copy avoidance versus context-switch avoidance.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: zero-copy ablation (8 MB scp)\n\n");
  std::printf("  %-5s | %-12s | %-12s | %-8s | %-8s\n", "disk", "scp KB/s", "scp KB/s", "F_scp",
              "F_scp");
  std::printf("  %-5s | %-12s | %-12s | %-8s | %-8s\n", "", "(zero-copy)", "(bcopy)",
              "(zero-copy)", "(bcopy)");
  std::printf("  ------+--------------+--------------+----------+---------\n");
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = disk;
    cfg.use_splice = true;
    cfg.with_test_program = true;
    cfg.splice_options.zero_copy = true;
    const ikdp::ExperimentResult zc = ikdp::RunCopyExperiment(cfg);
    cfg.splice_options.zero_copy = false;
    const ikdp::ExperimentResult bc = ikdp::RunCopyExperiment(cfg);
    std::printf("  %-5s | %10.0f   | %10.0f   | %6.2f   | %6.2f %s\n",
                ikdp::DiskKindName(disk), zc.throughput_kbs, bc.throughput_kbs, zc.slowdown,
                bc.slowdown, zc.ok && bc.ok ? "" : "FAILED");
  }
  std::printf(
      "\nExpected shape: the copy costs CPU availability everywhere (higher F), and\n"
      "costs throughput where the CPU is the bottleneck (RAM disk); disk-bound\n"
      "splices lose little throughput but still steal more cycles.\n");
  return 0;
}
