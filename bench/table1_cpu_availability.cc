// Reproduces Table 1 of the paper: "CPU Availability Factors (Copying 8 MB
// File)".
//
// A CPU-bound test program runs concurrently with a copy of an 8 MB file
// between filesystems on two identical disks; its slowdown F relative to the
// IDLE environment is reported for cp (read/write) and scp (splice), per
// disk type, together with the improvement factor I = F_cp / F_scp and the
// percentage CPU-availability improvement (I - 1) x 100.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/metrics/tables.h"

int main(int argc, char** argv) {
  const int64_t mb = ikdp::bench::ParseMb(argc, argv);
  std::printf("ikdp bench: Table 1 reproduction (file size %lld MB)\n\n",
              static_cast<long long>(mb));
  const auto rows = ikdp::RunTable1(mb << 20);
  ikdp::PrintTable1(std::cout, rows);
  std::printf(
      "Paper claim (Section 6.2): \"processes will experience a 20 to 70 percent\n"
      "execution speed improvement when contending with splice-based copying versus\n"
      "read/write-based copying, depending on the device speeds.\"\n");
  bool claim_holds = true;
  for (const auto& r : rows) {
    const double pct = (r.MeasuredImprovement() - 1.0) * 100.0;
    if (pct < 10.0 || !r.cp.ok || !r.scp.ok) {
      claim_holds = false;
    }
    // Fail loudly rather than publish slowdown factors computed from a
    // broken ledger.
    for (const auto* e : {&r.cp, &r.scp}) {
      if (!ikdp::bench::LedgerOk(*e, ikdp::DiskKindName(r.disk))) {
        claim_holds = false;
      }
    }
  }
  std::printf("Measured: claim %s.\n", claim_holds ? "HOLDS" : "DOES NOT HOLD");
  return claim_holds ? 0 : 1;
}
