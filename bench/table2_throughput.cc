// Reproduces Table 2 of the paper: "Mean Throughput Measurements (Copying
// 8 MB File)".
//
// The 8 MB copy runs with no competing process ("maximum attainable
// throughput ... assuming an otherwise idle CPU"); SCP and CP throughput in
// KB/s are reported per disk type.  The paper's legible values: RAM 3343 vs
// 1884 KB/s (+77%); for the real disks the text states the benefit is minor
// because disk transfer time dominates.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/metrics/tables.h"

int main(int argc, char** argv) {
  const int64_t mb = ikdp::bench::ParseMb(argc, argv);
  std::printf("ikdp bench: Table 2 reproduction (file size %lld MB)\n\n",
              static_cast<long long>(mb));
  const auto rows = ikdp::RunTable2(mb << 20);
  ikdp::PrintTable2(std::cout, rows);
  std::printf(
      "Paper claims (Section 6.3): splice-based copying reaches ~1.8x read/write\n"
      "throughput in the best case (RAM disk); for real disks the benefit is minor.\n");
  bool shape_holds = true;
  for (const auto& r : rows) {
    for (const auto* e : {&r.cp, &r.scp}) {
      if (!ikdp::bench::LedgerOk(*e, ikdp::DiskKindName(r.disk))) {
        shape_holds = false;
      }
    }
    if (!r.cp.ok || !r.scp.ok) {
      shape_holds = false;
      continue;
    }
    const double pct = r.MeasuredImprovementPct();
    if (r.disk == ikdp::DiskKind::kRam) {
      shape_holds = shape_holds && pct > 35.0;  // large win on the RAM disk
    } else {
      shape_holds = shape_holds && pct > 0.0 && pct < 25.0;  // minor on disks
    }
  }
  std::printf("Measured: shape %s.\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
