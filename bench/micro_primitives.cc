// google-benchmark microbenchmarks of the simulator's host-side primitives:
// event queue, callout table, coroutine tasks, buffer cache operations, and
// filesystem block mapping.  These measure the *simulator's* execution cost
// (host CPU), not simulated time — they exist to keep the engine fast enough
// for the large parameter sweeps in the ablation benches.

#include <benchmark/benchmark.h>

#include "src/buf/buffer_cache.h"
#include "src/dev/ram_disk.h"
#include "src/fs/filesystem.h"
#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/sim/callout.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ikdp {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  EventQueue q;
  SimTime when = 0;
  int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.Schedule(++t, [] {});
    }
    while (!q.empty()) {
      q.PopNext(&when)();
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue q;
  for (auto _ : state) {
    EventId ids[64];
    for (int i = 0; i < 64; ++i) {
      ids[i] = q.Schedule(i, [] {});
    }
    for (EventId id : ids) {
      q.Cancel(id);
    }
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueCancel);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int hops = 0;
    std::function<void()> hop = [&] {
      if (++hops < 1000) {
        sim.After(10, hop);
      }
    };
    sim.After(0, hop);
    sim.Run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_CalloutTimeout(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    CalloutTable callouts(&sim, 256);
    for (int i = 0; i < 256; ++i) {
      callouts.Timeout([] {}, 1 + (i % 8));
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CalloutTimeout);

void BM_TaskSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    auto body = [&sim]() -> Task<> {
      for (int i = 0; i < 100; ++i) {
        co_await SuspendAndCall(
            [&sim](std::coroutine_handle<> h) { sim.After(1, [h] { h.resume(); }); });
      }
    };
    Task<> t = body();
    t.Start();
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_TaskSpawnResume);

void BM_BufferCacheHitCycle(benchmark::State& state) {
  Simulator sim;
  CpuSystem cpu(&sim, DecStation5000Costs());
  BufferCache cache(&cpu, 64);
  RamDisk ram(&cpu, 4 << 20);
  // Warm one block, then measure hit lookups through the async interface.
  bool warmed = false;
  cache.BreadAsync(&ram, 1, [&](Buf& b) {
    cache.Brelse(&b);
    warmed = true;
  });
  sim.Run();
  if (!warmed) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    cache.BreadAsync(&ram, 1, [&](Buf& b) { cache.Brelse(&b); });
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheHitCycle);

void BM_FsBmapWarm(benchmark::State& state) {
  Simulator sim;
  CpuSystem cpu(&sim, DecStation5000Costs());
  BufferCache cache(&cpu, 64);
  RamDisk ram(&cpu, 64 << 20);
  FileSystem fs(&cpu, &cache, &ram, "bench");
  Inode* ip = fs.CreateFileInstant("f", 4 << 20, [](int64_t) { return 0; });
  int64_t lbn = 0;
  for (auto _ : state) {
    int64_t pbn = 0;
    cpu.Spawn("b", [&](Process& p) -> Task<> {
      pbn = co_await fs.Bmap(p, ip, lbn % ip->SizeBlocks(), false);
    });
    sim.Run();
    benchmark::DoNotOptimize(pbn);
    ++lbn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FsBmapWarm);

void BM_Rng(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

}  // namespace
}  // namespace ikdp

BENCHMARK_MAIN();
