// Ablation: the special destination bmap (paper Section 5.2.1).
//
// "The destination file is mapped similarly to the source file, except a
// special version of bmap() is used for improved performance which avoids
// delayed-writes of freshly allocated, zero-filled blocks."  With the stock
// bmap, premapping the whole destination dirties one zero-filled cache
// buffer per block; the splice's own writes then overwrite them, and any
// zero block forced out by cache pressure first is pure wasted disk I/O.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: destination-bmap ablation (8 MB scp)\n\n");
  std::printf("  %-5s | %-14s | %-14s | %-10s | %-10s\n", "disk", "KB/s (special)",
              "KB/s (stock)", "F (special)", "F (stock)");
  std::printf("  ------+----------------+----------------+------------+-----------\n");
  for (DiskKind disk : {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = disk;
    cfg.use_splice = true;
    cfg.with_test_program = true;
    cfg.splice_options.stock_destination_bmap = false;
    const ikdp::ExperimentResult special = ikdp::RunCopyExperiment(cfg);
    cfg.splice_options.stock_destination_bmap = true;
    const ikdp::ExperimentResult stock = ikdp::RunCopyExperiment(cfg);
    std::printf("  %-5s | %10.0f     | %10.0f     | %8.2f   | %8.2f %s\n",
                ikdp::DiskKindName(disk), special.throughput_kbs, stock.throughput_kbs,
                special.slowdown, stock.slowdown,
                special.ok && stock.ok ? "" : "FAILED");
  }
  std::printf(
      "\nExpected shape: the stock bmap pays an extra in-memory zero-fill per block\n"
      "at splice-setup time and floods the cache with dirty zero blocks (an 8 MB\n"
      "destination is 1024 blocks against a 400-buffer cache, forcing wasted\n"
      "writes), costing setup latency and some throughput.\n");
  return 0;
}
