// Ablation: file size.
//
// The paper reports only the 8 MB case: "Alternative sizes for the file were
// statistically indistinguishable from the 8MB representative case listed
// above" (Section 6.2).  This bench sweeps the copied file size and reports
// the availability factors and throughputs, which should be flat once the
// file comfortably exceeds the buffer cache warm-up region.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: file-size sweep (RZ58 disks)\n\n");
  std::printf("  %-6s | %-8s | %-8s | %-10s | %-10s | I\n", "size", "F_cp", "F_scp", "cp KB/s",
              "scp KB/s");
  std::printf("  -------+----------+----------+------------+------------+------\n");
  for (int64_t mb : {1, 2, 4, 8, 16, 24}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = DiskKind::kRz58;
    cfg.file_bytes = mb << 20;
    cfg.with_test_program = true;
    cfg.use_splice = false;
    const ikdp::ExperimentResult cp = ikdp::RunCopyExperiment(cfg);
    cfg.use_splice = true;
    const ikdp::ExperimentResult scp = ikdp::RunCopyExperiment(cfg);
    std::printf("  %3lld MB | %6.2f   | %6.2f   | %8.0f   | %8.0f   | %4.2f %s\n",
                static_cast<long long>(mb), cp.slowdown, scp.slowdown, cp.throughput_kbs,
                scp.throughput_kbs, cp.slowdown / scp.slowdown,
                cp.ok && scp.ok ? "" : "FAILED");
  }
  std::printf(
      "\nPaper claim: sizes other than 8 MB are statistically indistinguishable;\n"
      "the factors should be stable across the sweep.\n");
  return 0;
}
