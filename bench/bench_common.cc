#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ikdp::bench {

int64_t ParseMb(int argc, char** argv, int64_t def) {
  int64_t mb = def;
  if (argc > 1) {
    mb = std::max(1l, std::strtol(argv[1], nullptr, 10));
  }
  return mb;
}

bool LedgerOk(const ExperimentResult& e, const char* label) {
  if (e.idle_fraction < 0.0 || e.idle_fraction > 1.0) {
    std::fprintf(stderr, "ACCOUNTING BUG: %s idle fraction %.4f out of [0,1]\n", label,
                 e.idle_fraction);
    return false;
  }
  return true;
}

void CheckList::Check(bool cond, const char* what) {
  std::printf("  %-58s %s\n", what, cond ? "ok" : "FAIL");
  if (!cond) {
    ok = false;
  }
}

std::string Slurp(const char* path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace ikdp::bench
