// Extension bench: sequential read-ahead depth (paper Section 6.4 future
// work: "We plan to investigate these [buffering, scheduling, block
// allocation strategies] ... with the expectation of higher performance").
//
// 4.2BSD's read path issues one block of read-ahead (breada).  This bench
// sweeps the depth from 0 (none) to 8 blocks for the cp path on real disks,
// measuring throughput and the CPU-availability cost (each read-ahead pays
// an in-line bmap and buffer grab in the reader's context).  The splice path
// has its own pipeline (the flow-control watermarks) and ignores this knob,
// shown as the reference row.

#include <cstdio>
#include <string>

#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"
#include "src/workload/programs.h"

using namespace ikdp;

namespace {

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 13); }

struct Row {
  double kbs = 0;
  double slowdown = 0;
  bool ok = false;
};

Row RunCp(int ra_depth, bool use_splice) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  DiskDriver src_dev(&kernel.cpu(), &sim, Rz58Params());
  DiskDriver dst_dev(&kernel.cpu(), &sim, Rz58Params());
  FileSystem* src_fs = kernel.MountFs(&src_dev, "src");
  FileSystem* dst_fs = kernel.MountFs(&dst_dev, "dst");
  src_fs->set_read_ahead_blocks(ra_depth);
  dst_fs->set_read_ahead_blocks(ra_depth);
  constexpr int64_t kBytes = 8 << 20;
  src_fs->CreateFileInstant("big", kBytes, Fill);

  TestProgramState test_state;
  kernel.Spawn("test", [&](Process& p) -> Task<> {
    co_await TestProgram(kernel, p, Milliseconds(1), &test_state);
  });
  CopyResult copy;
  kernel.Spawn("copy", [&](Process& p) -> Task<> {
    if (use_splice) {
      co_await ScpProgram(kernel, p, "src:big", "dst:out", &copy);
    } else {
      co_await CpProgram(kernel, p, "src:big", "dst:out", 8192, &copy);
    }
    test_state.stop = true;
  });
  sim.Run();

  Row row;
  row.ok = copy.ok && copy.bytes == kBytes;
  row.kbs = copy.ThroughputKbs();
  const double ideal =
      static_cast<double>(copy.end - copy.start) / static_cast<double>(Milliseconds(1));
  row.slowdown = test_state.ops > 0 ? ideal / static_cast<double>(test_state.ops) : 0;
  return row;
}

}  // namespace

int main() {
  std::printf("ikdp bench: cp read-ahead depth sweep (8 MB copy, RZ58 disks)\n\n");
  std::printf("  %-12s | %-10s | %-8s |\n", "depth", "cp KB/s", "F_cp");
  std::printf("  -------------+------------+----------+---\n");
  for (int depth : {0, 1, 2, 4, 8}) {
    const Row r = RunCp(depth, /*use_splice=*/false);
    std::printf("  %2d block(s)  | %8.0f   | %6.2f   | %s\n", depth, r.kbs, r.slowdown,
                r.ok ? "verified" : "FAILED");
  }
  const Row scp = RunCp(1, /*use_splice=*/true);
  std::printf("  %-12s | %8.0f   | %6.2f   | %s\n", "scp (ref)", scp.kbs, scp.slowdown,
              scp.ok ? "verified" : "FAILED");
  std::printf(
      "\nExpected shape: depth 0 loses the read/transfer overlap badly; one block\n"
      "recovers most of it (4.2BSD's choice); deeper read-ahead approaches the\n"
      "splice pipeline's throughput at a growing in-line CPU cost.\n");
  return 0;
}
