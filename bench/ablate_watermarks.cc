// Ablation: splice flow-control watermarks (paper Section 5.2.4).
//
// The paper uses read-low = 3, write-high = 5, refill batches of 5, and
// argues these "prevent both the source from being underutilized and the
// destination from being overwhelmed"; the callout deferral "avoids
// lock-step behavior ... by allowing I/O operations at the source and
// destination points to proceed simultaneously".  This bench sweeps the
// watermark triple — including the degenerate (1, 1, 1) lock-step — and
// reports scp throughput and CPU availability per configuration on the two
// disk types where pipelining matters most.

#include <cstdio>

#include "src/metrics/experiment.h"

namespace {

struct Config {
  const char* label;
  int low;
  int high;
  int batch;
  int inflight;
};

}  // namespace

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: splice flow-control watermark ablation (8 MB scp)\n\n");
  const Config configs[] = {
      {"lock-step (1,1,1)", 1, 1, 1, 2},
      {"shallow   (2,2,2)", 2, 2, 2, 4},
      {"paper     (3,5,5)", 3, 5, 5, 8},
      {"deep      (6,10,10)", 6, 10, 10, 16},
      {"deeper    (12,20,20)", 12, 20, 20, 32},
  };
  for (DiskKind disk : {DiskKind::kRz56, DiskKind::kRz58, DiskKind::kRam}) {
    std::printf("%s disks:\n", ikdp::DiskKindName(disk));
    std::printf("  %-22s | %-10s | %-8s |\n", "watermarks", "scp KB/s", "F_scp");
    std::printf("  -----------------------+------------+----------+----------------\n");
    for (const Config& c : configs) {
      ikdp::ExperimentConfig cfg;
      cfg.disk = disk;
      cfg.use_splice = true;
      cfg.with_test_program = true;
      cfg.splice_options.read_low_watermark = c.low;
      cfg.splice_options.write_high_watermark = c.high;
      cfg.splice_options.refill_batch = c.batch;
      cfg.splice_options.max_inflight_chunks = c.inflight;
      const ikdp::ExperimentResult r = ikdp::RunCopyExperiment(cfg);
      std::printf("  %-22s | %8.0f   | %6.2f   | %s\n", c.label, r.throughput_kbs, r.slowdown,
                  r.ok ? "     (verified)" : "FAILED");
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: lock-step costs throughput on seek-bound disks (no\n"
      "read/write overlap); the paper's (3,5,5) recovers most of the deep-queue\n"
      "throughput while bounding buffer usage.\n");
  return 0;
}
