// Schedule-perturbation determinism check (src/sim/krace.h).
//
// The discrete-event engine's ONLY schedule freedom is the order of
// same-timestamp events; SetPerturbSeed re-keys that tie-break by a seeded
// hash, and every resulting permutation is a legal schedule.  A correct
// kernel model therefore produces IDENTICAL results under every seed: this
// bench renders Tables 1 and 2 (printed rows plus an exact hex-float dump
// of every underlying measurement and ledger field) at seed 0 and at eight
// perturbation seeds, and requires the blobs to be byte-identical.  Any
// divergence is an ordering bug — a result that silently depended on a
// tie-break the kernel never promised — not a flake.
//
// The krace detector runs in abort mode throughout, so a happens-before
// race found under any perturbed schedule kills the run with both sites.
//
// Usage: perturb_tables [mb] [seeds]   (defaults: 8 MB, 8 seeds)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/metrics/tables.h"
#include "src/sim/krace.h"

namespace {

void DumpResult(std::ostringstream& out, const char* label,
                const ikdp::ExperimentResult& e) {
  // %a (hex float) is exact: two runs that differ below printf's %.1f
  // rounding still fail the comparison.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s ok=%d bytes=%lld elapsed=%a tput=%a ops=%lld slow=%a "
                "idle=%a proc=%lld switch=%lld intr=%lld nsw=%llu nint=%llu "
                "hits=%llu misses=%llu transients=%llu\n",
                label, e.ok ? 1 : 0, static_cast<long long>(e.bytes),
                e.elapsed_s, e.throughput_kbs,
                static_cast<long long>(e.test_ops), e.slowdown,
                e.idle_fraction, static_cast<long long>(e.cpu.process_work),
                static_cast<long long>(e.cpu.context_switch),
                static_cast<long long>(e.cpu.interrupt_work),
                static_cast<unsigned long long>(e.cpu.switches),
                static_cast<unsigned long long>(e.cpu.interrupts),
                static_cast<unsigned long long>(e.cache_hits),
                static_cast<unsigned long long>(e.cache_misses),
                static_cast<unsigned long long>(e.splice_transients));
  out << buf;
}

// Runs both tables under the CURRENT perturbation seed and renders
// everything comparable about them into one string.
std::string RenderTables(int64_t bytes) {
  std::ostringstream out;
  const auto t1 = ikdp::RunTable1(bytes);
  ikdp::PrintTable1(out, t1);
  for (const auto& r : t1) {
    DumpResult(out, "t1.cp", r.cp);
    DumpResult(out, "t1.scp", r.scp);
  }
  const auto t2 = ikdp::RunTable2(bytes);
  ikdp::PrintTable2(out, t2);
  for (const auto& r : t2) {
    DumpResult(out, "t2.cp", r.cp);
    DumpResult(out, "t2.scp", r.scp);
  }
  bool ledger = true;
  for (const auto& r : t1) {
    ledger = ikdp::bench::LedgerOk(r.cp, "table1 cp") && ledger;
    ledger = ikdp::bench::LedgerOk(r.scp, "table1 scp") && ledger;
  }
  for (const auto& r : t2) {
    ledger = ikdp::bench::LedgerOk(r.cp, "table2 cp") && ledger;
    ledger = ikdp::bench::LedgerOk(r.scp, "table2 scp") && ledger;
  }
  out << "ledger " << (ledger ? "ok" : "BROKEN") << "\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t mb = ikdp::bench::ParseMb(argc, argv);
  int seeds = 8;
  if (argc > 2) {
    seeds = std::atoi(argv[2]);
    if (seeds < 1) {
      seeds = 1;
    }
  }
  std::printf(
      "ikdp bench: tie-break perturbation determinism "
      "(file size %lld MB, %d seed(s), krace abort mode)\n\n",
      static_cast<long long>(mb), seeds);

  // Abort on the first happens-before race anywhere in the runs below.
  ikdp::Krace().SetMode(ikdp::KraceDetector::Mode::kAbort);

  ikdp::Krace().SetPerturbSeed(0);
  const std::string baseline = RenderTables(mb << 20);
  std::printf("--- baseline (seed 0, insertion-order tie-break) ---\n%s\n",
              baseline.c_str());

  ikdp::bench::CheckList checks;
  for (int s = 1; s <= seeds; ++s) {
    ikdp::Krace().SetPerturbSeed(static_cast<uint64_t>(s));
    const std::string perturbed = RenderTables(mb << 20);
    char what[64];
    std::snprintf(what, sizeof(what), "seed %d byte-identical to baseline", s);
    checks.Check(perturbed == baseline, what);
    if (perturbed != baseline) {
      // Show the first differing line: that row's quantity is
      // schedule-dependent.
      std::istringstream a(baseline), b(perturbed);
      std::string la, lb;
      int line = 1;
      while (std::getline(a, la) && std::getline(b, lb)) {
        if (la != lb) {
          std::printf("  first divergence, line %d:\n   seed 0: %s\n   seed %d: %s\n",
                      line, la.c_str(), s, lb.c_str());
          break;
        }
        ++line;
      }
    }
  }
  ikdp::Krace().SetPerturbSeed(0);
  ikdp::Krace().SetMode(ikdp::KraceDetector::Mode::kOff);

  std::printf("\nResult: tables are %s under %d tie-break perturbation(s).\n",
              checks.ok ? "SCHEDULE-INDEPENDENT" : "SCHEDULE-DEPENDENT",
              seeds);
  return checks.ok ? 0 : 1;
}
