// SpliceServer SLO bench: 1000 clients, Poisson arrivals, Zipf objects,
// file->UDP splices under all three submission modes.
//
// For each mode the identical pre-drawn request stream (same seed) is served
// twice — once with the kspan collector detached and once attached — and the
// two runs must agree on every simulated-time observable (end time, bytes,
// completions, the CPU ledger): observability is free or it is broken.  The
// spans-off run feeds the online SLO monitor (src/metrics/slo.h); the
// spans-on run exports per-request artifacts for the ring mode:
//
//   SERVER_spans.json   span trees as Chrome trace async slices (Perfetto)
//   SERVER_folded.txt   flame-graph folded stacks of attributed CPU
//
// Emits BENCH_server.json (schema ikdp.server_bench.v1) with per-mode
// p50/p99/p999 latency, goodput, stall-watchdog flags, and the invariant
// bits; re-parses it with the strict reader and exits nonzero on any
// violated check.  The CPU attribution closure is asserted per run inside
// RunSpliceServer's result — a failed closure fails the bench.
//
// `bench_splice_server small` runs the reduced CI grid (64 clients).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/metrics/slo.h"
#include "src/metrics/span_trace.h"
#include "src/metrics/trace_export.h"
#include "src/sim/kspan.h"
#include "src/workload/splice_server.h"

namespace {

ikdp::bench::CheckList g_checks;

const char* ModeName(ikdp::SubmitMode m) {
  switch (m) {
    case ikdp::SubmitMode::kSyncLoop:
      return "sync";
    case ikdp::SubmitMode::kFasyncSigio:
      return "fasync";
    case ikdp::SubmitMode::kRing:
      return "ring";
  }
  return "?";
}

struct ModeRun {
  ikdp::SubmitMode mode;
  ikdp::SpliceServerResult off;  // collector detached (the measured run)
  ikdp::SpliceServerResult on;   // collector attached (the observed run)
  ikdp::SloReport slo;           // from the measured run
  uint64_t spans_begun = 0;
  bool spans_balanced = false;
  std::string span_err;
  bool overhead_zero = false;  // on == off on every simulated observable
};

ikdp::SpliceServerResult RunOnce(const ikdp::SpliceServerConfig& cfg, ikdp::SloMonitor* slo) {
  ikdp::SpliceServerHooks hooks;
  if (slo != nullptr) {
    hooks.on_start = [slo](uint64_t id, ikdp::SimTime t) { slo->OnRequestStart(id, t); };
    hooks.on_progress = [slo](uint64_t id, ikdp::SimTime t, int64_t) {
      slo->OnRequestProgress(id, t);
    };
    hooks.on_end = [slo](uint64_t id, ikdp::SimTime t, int64_t bytes, bool error) {
      slo->OnRequestEnd(id, t, bytes, error);
    };
    hooks.on_tick = [slo](ikdp::SimTime now) { slo->CheckStalls(now); };
  }
  return ikdp::RunSpliceServer(cfg, hooks);
}

bool SameStats(const ikdp::CpuSystem::Stats& a, const ikdp::CpuSystem::Stats& b) {
  return a.process_work == b.process_work && a.context_switch == b.context_switch &&
         a.interrupt_work == b.interrupt_work && a.switches == b.switches &&
         a.interrupts == b.interrupts;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;

  ikdp::SpliceServerConfig cfg;
  cfg.n_clients = small ? 64 : 1000;
  cfg.n_objects = small ? 16 : 64;
  cfg.object_bytes = 2 * ikdp::kBlockSize;  // 16 KB: ~13 ms on a 10 Mbit wire
  cfg.total_requests = small ? 200 : 2000;
  cfg.offered_rps = 400.0;
  cfg.sync_workers = 16;
  cfg.ring_inflight = 64;
  cfg.seed = 42;
  cfg.tick = ikdp::Milliseconds(100);
  // The watchdog gates on wedged requests, so the threshold must sit above
  // honest queueing delay.  The full grid offers 400 req/s (6.4 MB/s) against
  // a single-server capacity of ~5.6 MB/s in the fasync/ring modes, so late
  // arrivals legitimately wait ~2-3 s for their first byte; 1 s there would
  // flag plain overload as a stall.  The small CI grid is far under capacity
  // and keeps the tight threshold.
  const ikdp::SimDuration stall_threshold = small ? ikdp::Seconds(1) : ikdp::Seconds(5);

  std::printf("ikdp bench: SpliceServer SLO, %d clients, %d requests @ %.0f req/s "
              "(Poisson, Zipf %.1f over %d objects, %lld KB each)\n\n",
              cfg.n_clients, cfg.total_requests, cfg.offered_rps, cfg.zipf_s, cfg.n_objects,
              static_cast<long long>(cfg.object_bytes >> 10));
  std::printf("%-7s %6s %4s %9s %9s %9s %9s %7s %6s %7s\n", "mode", "done", "err", "p50 ms",
              "p99 ms", "p999 ms", "MB/s", "traps", "stall", "spans");

  const std::vector<ikdp::SubmitMode> modes = {
      ikdp::SubmitMode::kSyncLoop, ikdp::SubmitMode::kFasyncSigio, ikdp::SubmitMode::kRing};
  std::vector<ModeRun> runs;
  for (ikdp::SubmitMode mode : modes) {
    ModeRun mr;
    mr.mode = mode;
    cfg.mode = mode;

    ikdp::SloMonitor slo(stall_threshold);
    mr.off = RunOnce(cfg, &slo);
    mr.slo = slo.Report(mr.off.end_time);

    ikdp::KspanCollector spans;
    ikdp::AttachKspan(&spans);
    mr.on = RunOnce(cfg, nullptr);
    ikdp::AttachKspan(nullptr);
    mr.spans_begun = spans.begun();
    mr.spans_balanced = spans.CheckBalanced(&mr.span_err);

    mr.overhead_zero = mr.on.end_time == mr.off.end_time && mr.on.bytes == mr.off.bytes &&
                       mr.on.completed == mr.off.completed &&
                       mr.on.errored == mr.off.errored &&
                       mr.on.server_traps == mr.off.server_traps &&
                       SameStats(mr.on.server_cpu, mr.off.server_cpu) &&
                       SameStats(mr.on.client_cpu, mr.off.client_cpu);

    std::printf("%-7s %6llu %4llu %9.2f %9.2f %9.2f %9.2f %7llu %6llu %7llu\n",
                ModeName(mode), static_cast<unsigned long long>(mr.off.completed),
                static_cast<unsigned long long>(mr.off.errored),
                static_cast<double>(mr.slo.p50_ns) / 1e6,
                static_cast<double>(mr.slo.p99_ns) / 1e6,
                static_cast<double>(mr.slo.p999_ns) / 1e6, mr.slo.goodput_bps / 1e6,
                static_cast<unsigned long long>(mr.off.server_traps),
                static_cast<unsigned long long>(mr.slo.stall_flags),
                static_cast<unsigned long long>(mr.spans_begun));

    // Ring mode's observed run carries the richest trees (request -> aio.op
    // -> splice.stream); export its per-request artifacts.
    if (mode == ikdp::SubmitMode::kRing) {
      {
        std::ofstream out("SERVER_spans.json");
        ikdp::ExportSpanChromeTrace(spans, out);
      }
      {
        std::ofstream out("SERVER_folded.txt");
        ikdp::ExportFoldedStacks(spans, mr.on.attribution, out);
      }
      const std::vector<ikdp::RequestBreakdown> reqs =
          ikdp::BuildRequestBreakdowns(spans, mr.on.attribution);
      ikdp::SimDuration worst = -1;
      const ikdp::RequestBreakdown* slowest = nullptr;
      for (const ikdp::RequestBreakdown& r : reqs) {
        if (r.Latency() > worst) {
          worst = r.Latency();
          slowest = &r;
        }
      }
      if (slowest != nullptr) {
        std::printf("\nslowest ring request #%lld: %.2f ms wall, %.1f us CPU attributed\n",
                    static_cast<long long>(slowest->arg),
                    static_cast<double>(slowest->Latency()) / 1e6,
                    static_cast<double>(slowest->cpu_total) / 1e3);
        for (const auto& [key, ns] : slowest->cpu) {
          std::printf("    %-24s %9.1f us\n", key.c_str(), static_cast<double>(ns) / 1e3);
        }
      }
    }
    runs.push_back(std::move(mr));
  }
  std::printf("\n");

  // --- BENCH_server.json ---
  const char* out_path = "BENCH_server.json";
  {
    std::ofstream out(out_path);
    out << "{\n\"schema\":\"ikdp.server_bench.v1\",\n\"grid\":\"" << (small ? "small" : "full")
        << "\",\n\"clients\":" << cfg.n_clients << ",\n\"objects\":" << cfg.n_objects
        << ",\n\"object_kb\":" << (cfg.object_bytes >> 10)
        << ",\n\"requests\":" << cfg.total_requests << ",\n\"offered_rps\":" << cfg.offered_rps
        << ",\n\"zipf_s\":" << cfg.zipf_s << ",\n\"seed\":" << cfg.seed << ",\n\"rows\":[";
    bool first = true;
    for (const ModeRun& r : runs) {
      out << (first ? "\n" : ",\n");
      first = false;
      char row[768];
      std::snprintf(
          row, sizeof(row),
          "{\"mode\":\"%s\",\"completed\":%llu,\"errored\":%llu,\"bytes\":%lld,"
          "\"elapsed_s\":%.6f,\"p50_ns\":%lld,\"p99_ns\":%lld,\"p999_ns\":%lld,"
          "\"max_ns\":%lld,\"goodput_bps\":%.1f,\"stall_flags\":%llu,"
          "\"server_traps\":%llu,\"sigio_handled\":%llu,"
          "\"spans\":%llu,\"spans_balanced\":%s,\"closure_ok\":%s,\"overhead_zero\":%s}",
          ModeName(r.mode), static_cast<unsigned long long>(r.off.completed),
          static_cast<unsigned long long>(r.off.errored), static_cast<long long>(r.off.bytes),
          static_cast<double>(r.off.end_time) / 1e9, static_cast<long long>(r.slo.p50_ns),
          static_cast<long long>(r.slo.p99_ns), static_cast<long long>(r.slo.p999_ns),
          static_cast<long long>(r.slo.max_ns), r.slo.goodput_bps,
          static_cast<unsigned long long>(r.slo.stall_flags),
          static_cast<unsigned long long>(r.off.server_traps),
          static_cast<unsigned long long>(r.off.sigio_handled),
          static_cast<unsigned long long>(r.spans_begun), r.spans_balanced ? "true" : "false",
          (r.off.closure_ok && r.on.closure_ok) ? "true" : "false",
          r.overhead_zero ? "true" : "false");
      out << row;
    }
    out << "\n]\n}\n";
  }
  std::printf("wrote %s, SERVER_spans.json, SERVER_folded.txt\n\n", out_path);

  const int64_t want_bytes =
      static_cast<int64_t>(cfg.total_requests) * cfg.object_bytes;
  for (const ModeRun& r : runs) {
    char what[192];
    std::snprintf(what, sizeof(what), "%s: every request completed, none errored",
                  ModeName(r.mode));
    g_checks.Check(r.off.completed == static_cast<uint64_t>(cfg.total_requests) &&
                       r.off.errored == 0,
                   what);
    std::snprintf(what, sizeof(what), "%s: every byte delivered (%lld)", ModeName(r.mode),
                  static_cast<long long>(want_bytes));
    g_checks.Check(r.off.bytes == want_bytes, what);
    std::snprintf(what, sizeof(what), "%s: attribution closure (both runs, both CPUs)",
                  ModeName(r.mode));
    g_checks.Check(r.off.closure_ok && r.on.closure_ok, what);
    if (!r.off.closure_err.empty() || !r.on.closure_err.empty()) {
      std::fprintf(stderr, "  [%s] %s %s\n", ModeName(r.mode), r.off.closure_err.c_str(),
                   r.on.closure_err.c_str());
    }
    std::snprintf(what, sizeof(what), "%s: spans balanced (%llu minted, each closed once)",
                  ModeName(r.mode), static_cast<unsigned long long>(r.spans_begun));
    g_checks.Check(r.spans_balanced && r.spans_begun > 0, what);
    if (!r.span_err.empty()) {
      std::fprintf(stderr, "  [%s] %s\n", ModeName(r.mode), r.span_err.c_str());
    }
    std::snprintf(what, sizeof(what), "%s: span recording cost zero simulated time",
                  ModeName(r.mode));
    g_checks.Check(r.overhead_zero, what);
    std::snprintf(what, sizeof(what), "%s: no stall-watchdog flags", ModeName(r.mode));
    g_checks.Check(r.slo.stall_flags == 0, what);
    std::snprintf(what, sizeof(what), "%s: percentiles ordered, goodput positive",
                  ModeName(r.mode));
    g_checks.Check(r.slo.p50_ns > 0 && r.slo.p50_ns <= r.slo.p99_ns &&
                       r.slo.p99_ns <= r.slo.p999_ns && r.slo.p999_ns <= r.slo.max_ns &&
                       r.slo.goodput_bps > 0,
                   what);
  }

  ikdp::JsonValue bench_json;
  g_checks.Check(ikdp::ParseJson(ikdp::bench::Slurp(out_path), &bench_json),
                 "BENCH_server.json parses (strict reader)");
  const ikdp::JsonValue* rows = bench_json.Get("rows");
  g_checks.Check(rows != nullptr && rows->IsArray() && rows->items.size() == runs.size(),
                 "BENCH_server.json has a row per mode");
  if (rows != nullptr && rows->IsArray()) {
    bool fields = true;
    for (const ikdp::JsonValue& row : rows->items) {
      for (const char* key : {"p50_ns", "p99_ns", "p999_ns", "goodput_bps", "stall_flags"}) {
        const ikdp::JsonValue* v = row.Get(key);
        fields = fields && v != nullptr && v->IsNumber();
      }
    }
    g_checks.Check(fields, "every row carries the SLO percentile fields");
  }

  std::printf("\n%s\n", g_checks.ok ? "ALL CHECKS PASS" : "CHECKS FAILED");
  return g_checks.ok ? 0 : 1;
}
