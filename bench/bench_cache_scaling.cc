// Buffer-cache hot-path scaling benchmark.
//
// Unlike the ablation benches (which report *simulated* time), this one
// measures the HOST wall clock of the simulator's own hot path: a process
// hammering Bread/Brelse cache hits over a working set that exactly fills
// the cache.  Every hit must unlink the buffer from the LRU free list, so
// this is the operation whose cost must stay O(1) as the cache grows —
// a linear freelist scan makes the sweep superlinear in nbufs and poisons
// every cache-size ablation above a few hundred buffers.
//
// A second sweep drives the DiskModel request queue at increasing depths
// under each scheduler policy, reporting simulated completion time plus the
// scheduler's coalescing/sorting counters.
//
// Results are printed and also written to BENCH_cache.json in the current
// directory so the perf trajectory of this path is machine-readable.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "src/buf/buffer_cache.h"
#include "src/dev/ram_disk.h"
#include "src/hw/costs.h"
#include "src/hw/disk.h"
#include "src/kern/cpu.h"
#include "src/sim/simulator.h"

namespace {

struct QueueRow {
  const char* sched = "";
  int depth = 0;
  double sim_ms = 0;
  uint64_t coalesced = 0;
  uint64_t sort_passes = 0;
  size_t max_depth = 0;
};

// Drives the DiskModel with `depth` outstanding random-ish block requests,
// refilled on every completion, for `total` requests.  Reports simulated
// completion time and the scheduler counters.
QueueRow RunQueueSweep(ikdp::DiskSched sched, int depth, int total) {
  using namespace ikdp;
  Simulator sim;
  DiskParams p = Rz56Params();
  p.sched = sched;
  DiskModel disk(&sim, p);

  constexpr int64_t kBlock = 8192;
  const int64_t nblocks = p.capacity_bytes / kBlock;
  uint64_t lcg = 0x2545f4914f6cdd1dull;
  int submitted = 0;
  int completed = 0;
  // Count in-flight requests ourselves: inside a completion callback the
  // disk still reports itself busy, so QueueDepth() never drops below 1.
  std::function<void()> refill = [&] {
    while (submitted < total && submitted - completed < depth) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      // Half the stream is a sequential run (coalescable), half random.
      const int64_t blk = (submitted % 2 == 0)
                              ? (submitted / 2) % nblocks
                              : static_cast<int64_t>((lcg >> 33) % static_cast<uint64_t>(nblocks));
      ++submitted;
      disk.Submit(DiskRequest{blk * kBlock, kBlock, true, [&](bool) {
        ++completed;
        refill();
      }});
    }
  };
  refill();
  sim.Run();

  QueueRow row;
  row.sched = sched == DiskSched::kFifo ? "fifo" : "clook";
  row.depth = depth;
  row.sim_ms = ToSeconds(sim.Now()) * 1e3;
  row.coalesced = disk.stats().coalesced;
  row.sort_passes = disk.stats().queue_sort_passes;
  row.max_depth = disk.stats().max_queue_depth;
  return row;
}

struct CacheRow {
  int nbufs = 0;
  int64_t ops = 0;
  double wall_ms = 0;
  double sim_ms = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

CacheRow RunCacheSweep(int nbufs, int64_t ops) {
  using namespace ikdp;
  Simulator sim;
  CpuSystem cpu(&sim, DecStation5000Costs());
  BufferCache cache(&cpu, nbufs);
  RamDisk ram(&cpu, 64ll << 20);

  CacheRow row;
  row.nbufs = nbufs;
  row.ops = ops;
  const auto t0 = std::chrono::steady_clock::now();
  cpu.Spawn("hammer", [&](Process& p) -> Task<> {
    // Warm the cache: one miss per frame, after which the working set
    // exactly fills the pool and every further access is a hit.  Hits are
    // drawn uniformly at random (deterministic LCG), so the hit buffer sits
    // at a uniformly distributed depth of the LRU list — cyclic patterns
    // always reuse the least-recently-used buffer and would let a linear
    // freelist scan terminate at the list head.
    for (int64_t i = 0; i < nbufs; ++i) {
      Buf* b = co_await cache.Bread(p, &ram, i);
      cache.Brelse(b);
    }
    uint64_t lcg = 0x853c49e6748fea9bull;
    for (int64_t i = 0; i < ops; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const int64_t blk = static_cast<int64_t>((lcg >> 33) % static_cast<uint64_t>(nbufs));
      Buf* b = co_await cache.Bread(p, &ram, blk);
      cache.Brelse(b);
    }
  });
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.sim_ms = ikdp::ToSeconds(sim.Now()) * 1e3;
  row.hits = cache.stats().hits;
  row.misses = cache.stats().misses;
  return row;
}

}  // namespace

int main() {
  std::printf("ikdp bench: buffer-cache hot-path scaling (host wall clock)\n\n");
  std::printf("  %-7s | %-9s | %-10s | %-10s | %-10s\n", "nbufs", "ops", "wall ms", "hits",
              "misses");
  std::printf("  --------+-----------+------------+------------+-----------\n");
  constexpr int64_t kOps = 200000;
  std::vector<CacheRow> cache_rows;
  for (int nbufs : {64, 512, 4096}) {
    const CacheRow r = RunCacheSweep(nbufs, kOps);
    cache_rows.push_back(r);
    std::printf("  %5d   | %7lld   | %8.1f   | %8llu   | %8llu\n", r.nbufs,
                static_cast<long long>(r.ops), r.wall_ms, static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses));
  }

  std::printf("\nikdp bench: disk request queue, scheduler x depth (simulated time)\n\n");
  std::printf("  %-6s | %-6s | %-10s | %-10s | %-11s | %-9s\n", "sched", "depth", "sim ms",
              "coalesced", "sort passes", "max depth");
  std::printf("  -------+--------+------------+------------+-------------+----------\n");
  constexpr int kQueueRequests = 2000;
  std::vector<QueueRow> queue_rows;
  for (ikdp::DiskSched sched : {ikdp::DiskSched::kFifo, ikdp::DiskSched::kCLook}) {
    for (int depth : {1, 4, 16}) {
      const QueueRow r = RunQueueSweep(sched, depth, kQueueRequests);
      queue_rows.push_back(r);
      std::printf("  %-6s | %4d   | %8.1f   | %8llu   | %9llu   | %7zu\n", r.sched, r.depth,
                  r.sim_ms, static_cast<unsigned long long>(r.coalesced),
                  static_cast<unsigned long long>(r.sort_passes), r.max_depth);
    }
  }

  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"cache_scaling\",\n  \"cache_sweep\": [\n");
    for (size_t i = 0; i < cache_rows.size(); ++i) {
      const CacheRow& r = cache_rows[i];
      std::fprintf(f,
                   "    {\"nbufs\": %d, \"ops\": %lld, \"wall_ms\": %.2f, \"sim_ms\": %.2f, "
                   "\"hits\": %llu, \"misses\": %llu}%s\n",
                   r.nbufs, static_cast<long long>(r.ops), r.wall_ms, r.sim_ms,
                   static_cast<unsigned long long>(r.hits),
                   static_cast<unsigned long long>(r.misses),
                   i + 1 < cache_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"queue_sweep\": [\n");
    for (size_t i = 0; i < queue_rows.size(); ++i) {
      const QueueRow& r = queue_rows[i];
      std::fprintf(f,
                   "    {\"sched\": \"%s\", \"depth\": %d, \"requests\": %d, \"sim_ms\": %.2f, "
                   "\"coalesced\": %llu, \"sort_passes\": %llu, \"max_depth\": %zu}%s\n",
                   r.sched, r.depth, kQueueRequests, r.sim_ms,
                   static_cast<unsigned long long>(r.coalesced),
                   static_cast<unsigned long long>(r.sort_passes), r.max_depth,
                   i + 1 < queue_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_cache.json\n");
  }
  return 0;
}
