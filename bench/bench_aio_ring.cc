// Table-1-style grid for the asynchronous splice ring (docs/splice_ring.2.md).
//
// N concurrent 512 KB disk-to-disk streams (N in {1, 4, 16}) are driven from
// one process while the CPU-bound test program runs, submitted three ways:
//
//   sync    one synchronous splice at a time (no overlap, N traps)
//   fasync  the paper's FASYNC+SIGIO: N async splices, then SIGIO + tell(2)
//           polls to discover which stream finished (signals coalesce and
//           carry no per-operation status)
//   ring    the splice ring: one ring_enter trap submits the batch and waits;
//           completions harvest without trapping
//
// Each cell reports aggregate throughput, the test program's slowdown F, and
// the submitting process's mode-switch ledger (syscall traps and the CPU
// time they charged).  The ring runs with max_inflight = N so fasync and
// ring drive identical engine concurrency — the grid isolates submission
// cost, not overlap.
//
// Emits BENCH_aio.json (schema ikdp.aio_bench.v1) plus a ring-run telemetry
// export BENCH_aio_telemetry.json (schema ikdp.telemetry.v1, including the
// aio.sq_depth and aio.completion_latency histograms), re-parses both with
// the bundled JSON reader, and exits nonzero if any check fails — including
// the headline acceptance: at N = 16 the ring must reach at least FASYNC
// throughput while charging strictly fewer trap cycles.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/dev/ram_disk.h"
#include "src/fs/filesystem.h"
#include "src/metrics/report.h"
#include "src/metrics/telemetry.h"
#include "src/metrics/trace_export.h"
#include "src/os/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/programs.h"

namespace {

ikdp::bench::CheckList g_checks;

const char* ModeName(ikdp::SubmitMode m) {
  switch (m) {
    case ikdp::SubmitMode::kSyncLoop:
      return "sync";
    case ikdp::SubmitMode::kFasyncSigio:
      return "fasync";
    case ikdp::SubmitMode::kRing:
      return "ring";
  }
  return "?";
}

struct CellResult {
  ikdp::SubmitMode mode;
  int n = 0;
  ikdp::MultiStreamResult ms;
  int64_t test_ops = 0;
  double slowdown = 0;
  double idle_fraction = 0;
  bool verified = false;
};

// One fresh machine per cell: two RAM disks, N source files of
// `stream_bytes` each (per-stream byte patterns), the CPU-bound test
// program, and one relay process running MultiStreamCopyProgram.
// `registry`, when non-null, receives online histograms plus a final
// counter capture.
CellResult RunCell(ikdp::SubmitMode mode, int n, int64_t stream_bytes,
                   ikdp::MetricsRegistry* registry) {
  CellResult cell;
  cell.mode = mode;
  cell.n = n;

  ikdp::Simulator sim;
  ikdp::Kernel kernel(&sim, ikdp::DecStation5000Costs());
  ikdp::TraceLog trace(1 << 18);
  std::unique_ptr<ikdp::TelemetryCollector> collector;
  if (registry != nullptr) {
    collector = std::make_unique<ikdp::TelemetryCollector>(registry);
    collector->Attach(&trace);
    kernel.AttachTrace(&trace);
  }

  ikdp::RamDisk src_dev(&kernel.cpu(), 16ll << 20);
  ikdp::RamDisk dst_dev(&kernel.cpu(), 16ll << 20);
  ikdp::FileSystem* src_fs = kernel.MountFs(&src_dev, "srcfs");
  ikdp::FileSystem* dst_fs = kernel.MountFs(&dst_dev, "dstfs");

  auto pattern = [](int stream, int64_t i) {
    return static_cast<uint8_t>(((i * 2654435761u) >> 5 ^ stream * 97) & 0xff);
  };
  std::vector<ikdp::StreamSpec> streams;
  for (int i = 0; i < n; ++i) {
    const std::string name = "s" + std::to_string(i);
    if (src_fs->CreateFileInstant(name, stream_bytes,
                                  [&pattern, i](int64_t b) { return pattern(i, b); }) ==
        nullptr) {
      return cell;
    }
    ikdp::StreamSpec spec;
    spec.src = "srcfs:" + name;
    spec.dst = "dstfs:d" + std::to_string(i);
    spec.nbytes = stream_bytes;
    streams.push_back(std::move(spec));
  }

  ikdp::TestProgramState test_state;
  const ikdp::SimDuration op_cost = ikdp::Milliseconds(1);
  kernel.Spawn("test", [&kernel, op_cost, &test_state](ikdp::Process& p) -> ikdp::Task<> {
    co_await ikdp::TestProgram(kernel, p, op_cost, &test_state);
  });

  ikdp::RingConfig ring_config;
  ring_config.sq_entries = 2 * n;
  ring_config.max_inflight = n;  // match FASYNC's (uncapped) concurrency
  kernel.Spawn("relay",
               [&kernel, mode, streams, &cell, ring_config,
                &test_state](ikdp::Process& p) -> ikdp::Task<> {
                 co_await ikdp::MultiStreamCopyProgram(kernel, p, mode, streams, &cell.ms,
                                                       ring_config);
                 test_state.stop = true;
               });

  sim.Run();
  if (!cell.ms.ok || kernel.cpu().alive() != 0) {
    return cell;
  }

  kernel.cache().FlushAllInstant();
  for (int i = 0; i < n; ++i) {
    ikdp::Inode* ip = dst_fs->Lookup("d" + std::to_string(i));
    if (ip == nullptr || ip->size != stream_bytes) {
      return cell;
    }
    const std::vector<uint8_t> back = dst_fs->ReadFileInstant(ip);
    for (int64_t b = 0; b < stream_bytes; ++b) {
      if (back[static_cast<size_t>(b)] != pattern(i, b)) {
        return cell;
      }
    }
  }
  cell.verified = true;

  cell.test_ops = test_state.ops;
  const double ideal_ops = static_cast<double>(cell.ms.end - cell.ms.start) /
                           static_cast<double>(op_cost);
  cell.slowdown =
      cell.test_ops > 0 ? ideal_ops / static_cast<double>(cell.test_ops) : 0.0;
  cell.idle_fraction = ikdp::IdleFraction(kernel, sim.Now());
  if (registry != nullptr) {
    ikdp::CaptureKernelCounters(registry, kernel);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t stream_kb = 512;
  if (argc > 1) {
    stream_kb = std::max(8l, std::strtol(argv[1], nullptr, 10));
  }
  const int64_t stream_bytes = stream_kb << 10;
  std::printf("ikdp bench: splice ring vs FASYNC+SIGIO vs sync loop (%lld KB/stream, RAM)\n\n",
              static_cast<long long>(stream_kb));

  const std::vector<int> ns = {1, 4, 16};
  const std::vector<ikdp::SubmitMode> modes = {
      ikdp::SubmitMode::kSyncLoop, ikdp::SubmitMode::kFasyncSigio, ikdp::SubmitMode::kRing};

  // The N = 16 ring cell doubles as the telemetry specimen: its registry is
  // exported under ikdp.telemetry.v1 with the aio histograms populated.
  ikdp::MetricsRegistry ring_registry;

  std::printf("%-7s %4s %12s %10s %7s %8s %13s %7s\n", "mode", "N", "tput KB/s", "elapsed",
              "F", "traps", "trap-time ms", "SIGIOs");
  std::vector<CellResult> cells;
  for (int n : ns) {
    for (ikdp::SubmitMode mode : modes) {
      const bool specimen = mode == ikdp::SubmitMode::kRing && n == 16;
      CellResult cell = RunCell(mode, n, stream_bytes, specimen ? &ring_registry : nullptr);
      std::printf("%-7s %4d %12.0f %9.3fs %7.2f %8llu %13.3f %7llu%s\n", ModeName(mode), n,
                  cell.ms.ThroughputKbs(), cell.ms.ElapsedSeconds(), cell.slowdown,
                  static_cast<unsigned long long>(cell.ms.syscall_traps),
                  static_cast<double>(cell.ms.trap_time) / 1e6,
                  static_cast<unsigned long long>(cell.ms.sigio_handled),
                  cell.verified ? "" : "  NOT VERIFIED");
      cells.push_back(std::move(cell));
    }
  }
  std::printf("\n");

  auto find = [&cells](ikdp::SubmitMode mode, int n) -> const CellResult& {
    for (const CellResult& c : cells) {
      if (c.mode == mode && c.n == n) {
        return c;
      }
    }
    static const CellResult kEmpty{};
    return kEmpty;
  };
  const CellResult& ring16 = find(ikdp::SubmitMode::kRing, 16);
  const CellResult& fasync16 = find(ikdp::SubmitMode::kFasyncSigio, 16);
  const bool tput_ok = ring16.ms.ThroughputKbs() >= fasync16.ms.ThroughputKbs();
  const bool traps_ok = ring16.ms.trap_time < fasync16.ms.trap_time &&
                        ring16.ms.syscall_traps < fasync16.ms.syscall_traps;

  // --- BENCH_aio.json ---
  const char* out_path = "BENCH_aio.json";
  {
    std::ofstream out(out_path);
    out << "{\n\"schema\":\"ikdp.aio_bench.v1\",\n\"stream_kb\":" << stream_kb
        << ",\n\"rows\":[";
    bool first = true;
    for (const CellResult& c : cells) {
      out << (first ? "\n" : ",\n");
      first = false;
      char row[512];
      std::snprintf(row, sizeof(row),
                    "{\"mode\":\"%s\",\"n\":%d,\"throughput_kbs\":%.1f,"
                    "\"elapsed_s\":%.6f,\"slowdown\":%.4f,\"traps\":%llu,"
                    "\"trap_time_ns\":%lld,\"sigio\":%llu,\"idle_fraction\":%.4f,"
                    "\"verified\":%s}",
                    ModeName(c.mode), c.n, c.ms.ThroughputKbs(), c.ms.ElapsedSeconds(),
                    c.slowdown, static_cast<unsigned long long>(c.ms.syscall_traps),
                    static_cast<long long>(c.ms.trap_time),
                    static_cast<unsigned long long>(c.ms.sigio_handled), c.idle_fraction,
                    c.verified ? "true" : "false");
      out << row;
    }
    out << "\n],\n\"acceptance\":{\"n16_ring_tput_ge_fasync\":" << (tput_ok ? "true" : "false")
        << ",\"n16_ring_traps_lt_fasync\":" << (traps_ok ? "true" : "false") << "}\n}\n";
  }
  const char* telemetry_path = "BENCH_aio_telemetry.json";
  {
    std::ofstream out(telemetry_path);
    ikdp::ExportRegistryJson(ring_registry, out);
  }
  std::printf("wrote %s and %s\n\n", out_path, telemetry_path);

  for (const CellResult& c : cells) {
    char label[96];
    std::snprintf(label, sizeof(label), "%s N=%d verified, ledger sane", ModeName(c.mode), c.n);
    g_checks.Check(c.verified && c.idle_fraction >= 0.0 && c.idle_fraction <= 1.0, label);
  }
  g_checks.Check(tput_ok, "N=16: ring throughput >= FASYNC+SIGIO");
  g_checks.Check(traps_ok, "N=16: ring charges strictly fewer trap cycles");
  const CellResult& sync16 = find(ikdp::SubmitMode::kSyncLoop, 16);
  g_checks.Check(ring16.ms.ThroughputKbs() > sync16.ms.ThroughputKbs(),
                 "N=16: overlap beats the synchronous loop");
  g_checks.Check(fasync16.ms.sigio_handled >= 1 && fasync16.ms.sigio_handled <= 16,
                 "N=16: FASYNC SIGIOs coalesced into [1,16]");

  ikdp::JsonValue bench_json;
  g_checks.Check(ikdp::ParseJson(ikdp::bench::Slurp(out_path), &bench_json),
                 "BENCH_aio.json parses (strict reader)");
  const ikdp::JsonValue* rows = bench_json.Get("rows");
  g_checks.Check(rows != nullptr && rows->IsArray() &&
                     rows->items.size() == ns.size() * modes.size(),
                 "BENCH_aio.json has a row per grid cell");
  ikdp::JsonValue telem_json;
  g_checks.Check(ikdp::ParseJson(ikdp::bench::Slurp(telemetry_path), &telem_json),
                 "telemetry export parses (strict reader)");
  const ikdp::JsonValue* hists = telem_json.Get("histograms");
  g_checks.Check(hists != nullptr && hists->Get("aio.completion_latency") != nullptr &&
                     hists->Get("aio.sq_depth") != nullptr,
                 "aio histograms present in ikdp.telemetry.v1 export");
  const ikdp::LatencyHistogram* lat = ring_registry.Histogram("aio.completion_latency");
  g_checks.Check(static_cast<int>(lat->count()) == 16,
                 "completion-latency sample per ring op");
  g_checks.Check(ring_registry.GetCounter("aio.submitted") == 16 &&
                     ring_registry.GetCounter("aio.harvested") == 16,
                 "ring counters: 16 submitted, 16 harvested");

  std::printf("\n%s\n", g_checks.ok ? "ALL CHECKS PASS" : "CHECKS FAILED");
  return g_checks.ok ? 0 : 1;
}
