// In-kernel operator bench: disk -> filter(90%) -> UDP, in-kernel vs user.
//
// The paper's argument is that moving data MOVEMENT into the kernel buys
// back the CPU that read/write roundtrips burn; kop extends it to data
// COMPUTATION.  This bench puts a number on that: an object whose blocks
// are 90% chaff is streamed from an RZ56 disk to a UDP socket two ways,
// with the paper's CPU-bound test program running concurrently:
//
//   inkernel  kop_load a keep-if-tagged filter, kop_attach it to the
//             source, ONE splice(2).  Chaff dies at interrupt/softclock
//             level; only tagged blocks reach the wire; the process traps
//             a handful of times.
//   user      the classic roundtrip: read(2) each block into user space,
//             test its tag byte, write(2) the survivors to the socket —
//             two traps and a user-space crossing per block.
//
// Both runs must satisfy the CPU attribution closure and kspan balance
// (hard gates), and the in-kernel row must beat the user row on BOTH
// CPU availability (test-program progress per simulated second) and
// syscall traps — the win conditions tools/telemetry_check enforces on
// the emitted BENCH_kop.json (schema ikdp.kop_bench.v1).
//
// `bench_kop small` runs the reduced CI grid (100 blocks).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/dev/disk_driver.h"
#include "src/fs/filesystem.h"
#include "src/hw/disk.h"
#include "src/hw/link.h"
#include "src/kop/kop.h"
#include "src/metrics/trace_export.h"
#include "src/net/udp_socket.h"
#include "src/os/kernel.h"
#include "src/sim/kspan.h"
#include "src/sim/simulator.h"
#include "src/workload/programs.h"

namespace {

ikdp::bench::CheckList g_checks;

constexpr uint8_t kTag = 0xab;  // first byte of a block the filter keeps
constexpr ikdp::SimDuration kTestOpCost = ikdp::Milliseconds(1);

// Block k is tagged when k % keep_every == 0; the rest of the payload is a
// deterministic pattern that never collides with the tag byte at offset 0.
uint8_t PatternByte(int64_t i, int keep_every) {
  if (i % ikdp::kBlockSize == 0) {
    return (i / ikdp::kBlockSize) % keep_every == 0 ? kTag : 0x00;
  }
  return static_cast<uint8_t>((i * 2654435761u) >> 5 & 0xff);
}

struct ModeResult {
  const char* mode = "?";
  bool ok = false;  // transfer completed, machine quiesced
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t chunks_in = 0;
  int64_t chunks_dropped = 0;
  uint64_t syscall_traps = 0;
  int64_t kop_exec_ns = 0;
  double elapsed_s = 0;
  double goodput_bps = 0;
  double cpu_availability = 0;
  bool closure_ok = false;
  bool spans_balanced = false;
  std::string err;
};

ModeResult RunMode(bool inkernel, int blocks, int keep_every) {
  ModeResult r;
  r.mode = inkernel ? "inkernel" : "user";
  const int64_t total_bytes = static_cast<int64_t>(blocks) * ikdp::kBlockSize;

  ikdp::Simulator sim;
  ikdp::Kernel kernel(&sim, ikdp::DecStation5000Costs());
  ikdp::DiskDriver disk(&kernel.cpu(), &sim, ikdp::Rz56Params());
  ikdp::FileSystem* fs = kernel.MountFs(&disk, "obj");
  fs->CreateFileInstant("src", total_bytes,
                        [keep_every](int64_t i) { return PatternByte(i, keep_every); });

  // The client side is a host-side datagram sink: a roomy receive buffer
  // absorbs every kept block, so no reader process perturbs the server CPU.
  ikdp::UdpSocket out(&kernel.cpu());
  ikdp::UdpSocket client(&kernel.cpu(), 48 * 1024, total_bytes + 64 * 1024);
  ikdp::NetworkLink wire(&sim, ikdp::EthernetParams());
  out.ConnectTo(&client, &wire);

  ikdp::KspanCollector spans;
  ikdp::AttachKspan(&spans);

  ikdp::TestProgramState test;
  kernel.Spawn("test", [&kernel, &test](ikdp::Process& p) -> ikdp::Task<> {
    co_await ikdp::TestProgram(kernel, p, kTestOpCost, &test);
  });

  ikdp::SimTime end_time = 0;
  kernel.Spawn("xfer", [&](ikdp::Process& p) -> ikdp::Task<> {
    const int src = co_await kernel.Open(p, "obj:src", ikdp::kOpenRead);
    const int sock = kernel.OpenSocket(p, &out);
    if (inkernel) {
      const int id = co_await kernel.KopLoad(p, [&] {
        ikdp::KopProgram prog;
        ikdp::KopStage s;
        s.kind = ikdp::KopStageKind::kFilter;
        s.filter_mode = ikdp::KopFilterMode::kKeepIfEq;
        s.off = 0;
        s.len = 1;
        s.arg = kTag;
        prog.stages.push_back(s);
        return prog;
      }());
      if (id > 0 && co_await kernel.KopAttach(p, src, id) == 0) {
        const int64_t moved = co_await kernel.Splice(p, src, sock, ikdp::kSpliceEof);
        r.ok = moved >= 0;
      }
    } else {
      std::vector<uint8_t> buf;
      r.ok = true;
      for (;;) {
        const int64_t n = co_await kernel.Read(p, src, ikdp::kBlockSize, &buf);
        if (n == 0) {
          break;
        }
        if (n < 0) {
          r.ok = false;
          break;
        }
        ++r.chunks_in;
        r.bytes_in += n;
        if (buf[0] == kTag) {
          if (co_await kernel.Write(p, sock, buf.data(), n) != n) {
            r.ok = false;
            break;
          }
          r.bytes_out += n;
        }
      }
    }
    r.syscall_traps = p.stats().syscall_traps;
    end_time = sim.Now();
    test.stop = true;
  });

  sim.Run();
  ikdp::AttachKspan(nullptr);
  r.ok = r.ok && kernel.cpu().alive() == 0;

  if (inkernel) {
    const ikdp::SpliceEngine::Stats& s = kernel.splice_engine().stats();
    r.chunks_in = static_cast<int64_t>(s.kop_chunks_in);
    r.chunks_dropped = static_cast<int64_t>(s.kop_chunks_dropped);
    r.bytes_in = s.kop_bytes_in;
    r.bytes_out = s.kop_bytes_out;
    r.kop_exec_ns = s.kop_exec_time;
  }
  r.elapsed_s = static_cast<double>(end_time) / 1e9;
  r.goodput_bps = r.elapsed_s > 0 ? static_cast<double>(r.bytes_out) / r.elapsed_s : 0;
  // CPU availability: the fraction of the transfer interval the CPU-bound
  // test program actually progressed, relative to an idle machine.
  r.cpu_availability =
      end_time > 0
          ? std::min(1.0, static_cast<double>(test.ops) * static_cast<double>(kTestOpCost) /
                              static_cast<double>(end_time))
          : 0;
  r.closure_ok = kernel.cpu().CheckAttributionClosure(&r.err);
  std::string span_err;
  r.spans_balanced = spans.CheckBalanced(&span_err) && spans.bad_ends() == 0;
  if (!span_err.empty()) {
    r.err += (r.err.empty() ? "" : "; ") + span_err;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  const int blocks = small ? 100 : 1024;
  const int keep_every = 10;  // 90% of the stream is chaff
  const int seed = 1;         // nothing here draws randomness; recorded for the schema

  std::printf("ikdp bench: in-kernel filter vs user roundtrip "
              "(%d blocks of %lld B, keep every %dth, RZ56 -> UDP)\n\n",
              blocks, static_cast<long long>(ikdp::kBlockSize), keep_every);
  std::printf("%-9s %10s %10s %7s %7s %8s %9s %7s %7s\n", "mode", "bytes_in", "bytes_out",
              "chunks", "dropped", "traps", "MB/s", "avail", "kop ms");

  ModeResult rows[2] = {RunMode(/*inkernel=*/true, blocks, keep_every),
                        RunMode(/*inkernel=*/false, blocks, keep_every)};
  for (const ModeResult& r : rows) {
    std::printf("%-9s %10lld %10lld %7lld %7lld %8llu %9.3f %7.3f %7.2f\n", r.mode,
                static_cast<long long>(r.bytes_in), static_cast<long long>(r.bytes_out),
                static_cast<long long>(r.chunks_in), static_cast<long long>(r.chunks_dropped),
                static_cast<unsigned long long>(r.syscall_traps), r.goodput_bps / 1e6,
                r.cpu_availability, static_cast<double>(r.kop_exec_ns) / 1e6);
    if (!r.err.empty()) {
      std::fprintf(stderr, "  [%s] %s\n", r.mode, r.err.c_str());
    }
  }
  std::printf("\n");

  // --- BENCH_kop.json (schema ikdp.kop_bench.v1) ---
  const char* out_path = "BENCH_kop.json";
  {
    std::ofstream out(out_path);
    out << "{\n\"schema\":\"ikdp.kop_bench.v1\",\n\"object_kb\":"
        << (static_cast<int64_t>(blocks) * ikdp::kBlockSize >> 10) << ",\n\"blocks\":" << blocks
        << ",\n\"keep_every\":" << keep_every << ",\n\"seed\":" << seed << ",\n\"rows\":[";
    bool first = true;
    for (const ModeResult& r : rows) {
      out << (first ? "\n" : ",\n");
      first = false;
      char row[512];
      std::snprintf(row, sizeof(row),
                    "{\"mode\":\"%s\",\"bytes_in\":%lld,\"bytes_out\":%lld,"
                    "\"chunks_in\":%lld,\"chunks_dropped\":%lld,\"syscall_traps\":%llu,"
                    "\"kop_exec_ns\":%lld,\"elapsed_s\":%.6f,\"goodput_bps\":%.1f,"
                    "\"cpu_availability\":%.6f,\"closure_ok\":%s,\"spans_balanced\":%s}",
                    r.mode, static_cast<long long>(r.bytes_in),
                    static_cast<long long>(r.bytes_out), static_cast<long long>(r.chunks_in),
                    static_cast<long long>(r.chunks_dropped),
                    static_cast<unsigned long long>(r.syscall_traps),
                    static_cast<long long>(r.kop_exec_ns), r.elapsed_s, r.goodput_bps,
                    r.cpu_availability, r.closure_ok ? "true" : "false",
                    r.spans_balanced ? "true" : "false");
      out << row;
    }
    out << "\n]\n}\n";
  }
  std::printf("wrote %s\n\n", out_path);

  const ModeResult& ik = rows[0];
  const ModeResult& us = rows[1];
  const int64_t total_bytes = static_cast<int64_t>(blocks) * ikdp::kBlockSize;
  const int64_t kept_blocks = (blocks + keep_every - 1) / keep_every;
  const int64_t kept_bytes = kept_blocks * ikdp::kBlockSize;

  for (const ModeResult& r : rows) {
    char what[160];
    std::snprintf(what, sizeof(what), "%s: transfer completed and machine quiesced", r.mode);
    g_checks.Check(r.ok, what);
    std::snprintf(what, sizeof(what), "%s: every block read (%lld bytes in)", r.mode,
                  static_cast<long long>(total_bytes));
    g_checks.Check(r.bytes_in == total_bytes && r.chunks_in == blocks, what);
    std::snprintf(what, sizeof(what), "%s: exactly the tagged blocks delivered (%lld bytes)",
                  r.mode, static_cast<long long>(kept_bytes));
    g_checks.Check(r.bytes_out == kept_bytes, what);
    std::snprintf(what, sizeof(what), "%s: attribution closure (hard gate)", r.mode);
    g_checks.Check(r.closure_ok, what);
    std::snprintf(what, sizeof(what), "%s: kspans balanced (hard gate)", r.mode);
    g_checks.Check(r.spans_balanced, what);
  }
  g_checks.Check(ik.chunks_dropped == blocks - kept_blocks,
                 "inkernel: 90% of the stream filtered without surfacing");
  g_checks.Check(ik.kop_exec_ns > 0, "inkernel: operator execution time charged");
  g_checks.Check(us.chunks_dropped == 0, "user: nothing dropped in-kernel");
  // The win conditions (mirrored by tools/telemetry_check on the artifact).
  char what[160];
  std::snprintf(what, sizeof(what), "win: inkernel CPU availability %.3f > user %.3f",
                ik.cpu_availability, us.cpu_availability);
  g_checks.Check(ik.cpu_availability > us.cpu_availability, what);
  std::snprintf(what, sizeof(what), "win: inkernel traps %llu < user %llu",
                static_cast<unsigned long long>(ik.syscall_traps),
                static_cast<unsigned long long>(us.syscall_traps));
  g_checks.Check(ik.syscall_traps < us.syscall_traps, what);

  ikdp::JsonValue parsed;
  g_checks.Check(ikdp::ParseJson(ikdp::bench::Slurp(out_path), &parsed),
                 "BENCH_kop.json parses (strict reader)");
  const ikdp::JsonValue* jrows = parsed.Get("rows");
  g_checks.Check(jrows != nullptr && jrows->IsArray() && jrows->items.size() == 2,
                 "BENCH_kop.json has a row per mode");

  std::printf("\n%s\n", g_checks.ok ? "ALL CHECKS PASS" : "CHECKS FAILED");
  return g_checks.ok ? 0 : 1;
}
