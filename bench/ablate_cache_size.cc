// Ablation: buffer cache size.
//
// The paper's machine dedicates 3.2 MB (400 x 8 KB buffers) to the cache
// (Section 6.1).  splice touches at most ~10 buffers regardless of cache
// size (bounded by the flow-control watermarks), so it is exactly flat
// across the sweep — the "avoid the memory interface" argument of Section
// 2, made measurable.
//
// cp shows the opposite of the naive intuition: a LARGER cache makes the
// copy SLOWER.  Delayed writes accumulate in a big cache and are dumped in
// an unoverlapped burst at fsync time, while a small cache forces victim
// flushes early, overlapping destination writes with source reads — the
// classic write-behind pipelining effect.

#include <cstdio>

#include "src/metrics/experiment.h"

int main() {
  using ikdp::DiskKind;
  std::printf("ikdp bench: buffer-cache size sweep (8 MB copy, RZ58 disks)\n\n");
  std::printf("  %-7s | %-10s | %-10s | %-8s | %-8s\n", "bufs", "cp KB/s", "scp KB/s", "F_cp",
              "F_scp");
  std::printf("  --------+------------+------------+----------+---------\n");
  for (int bufs : {25, 50, 100, 200, 400, 800}) {
    ikdp::ExperimentConfig cfg;
    cfg.disk = DiskKind::kRz58;
    cfg.cache_bufs = bufs;
    cfg.with_test_program = true;
    cfg.use_splice = false;
    const ikdp::ExperimentResult cp = ikdp::RunCopyExperiment(cfg);
    cfg.use_splice = true;
    const ikdp::ExperimentResult scp = ikdp::RunCopyExperiment(cfg);
    std::printf("  %4d    | %8.0f   | %8.0f   | %6.2f   | %6.2f %s\n", bufs, cp.throughput_kbs,
                scp.throughput_kbs, cp.slowdown, scp.slowdown,
                cp.ok && scp.ok ? "" : "FAILED");
  }
  std::printf(
      "\nMeasured shape: splice exactly flat; cp fastest with a SMALL cache\n"
      "(early victim flushes overlap the destination writes with source reads;\n"
      "a big cache defers them into an unoverlapped fsync tail).\n");
  return 0;
}
