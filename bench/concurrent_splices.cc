// Extension bench: multiple simultaneous splices.
//
// The paper notes splice "provides support for multiple simultaneous I/O
// operations" (Section 4) and keeps all transfer state in per-splice
// descriptors precisely so several can be in flight (Section 5.2.1).  Two
// scenarios:
//
//  (a) N splices on N independent disk pairs — aggregate throughput should
//      scale until the CPU (interrupt handlers) saturates;
//  (b) N splices sharing ONE disk pair — the disksort elevator serializes
//      them; aggregate throughput should stay roughly flat while per-splice
//      fairness holds.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"

using namespace ikdp;

namespace {

constexpr int64_t kBytes = 4 << 20;

uint8_t Fill(int64_t i) { return static_cast<uint8_t>(i * 3); }

struct Outcome {
  double aggregate_kbs = 0;
  double min_kbs = 0;
  double max_kbs = 0;
  bool ok = true;
};

Outcome RunConcurrent(int nsplices, bool shared_disks) {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  std::vector<std::unique_ptr<DiskDriver>> disks;
  std::vector<FileSystem*> src_fs;
  std::vector<FileSystem*> dst_fs;
  const int npairs = shared_disks ? 1 : nsplices;
  for (int i = 0; i < npairs; ++i) {
    disks.push_back(std::make_unique<DiskDriver>(&kernel.cpu(), &sim, Rz58Params()));
    disks.push_back(std::make_unique<DiskDriver>(&kernel.cpu(), &sim, Rz58Params()));
    src_fs.push_back(kernel.MountFs(disks[disks.size() - 2].get(), "s" + std::to_string(i)));
    dst_fs.push_back(kernel.MountFs(disks[disks.size() - 1].get(), "d" + std::to_string(i)));
  }
  std::vector<SimTime> done(nsplices, -1);
  std::vector<int64_t> moved(nsplices, -1);
  for (int i = 0; i < nsplices; ++i) {
    const int pair = shared_disks ? 0 : i;
    src_fs[pair]->CreateFileInstant("f" + std::to_string(i), kBytes, Fill);
    kernel.Spawn("scp" + std::to_string(i), [&, i, pair](Process& p) -> Task<> {
      const std::string src = "s" + std::to_string(pair) + ":f" + std::to_string(i);
      const std::string dst = "d" + std::to_string(pair) + ":g" + std::to_string(i);
      const int s = co_await kernel.Open(p, src, kOpenRead);
      const int d = co_await kernel.Open(p, dst, kOpenWrite | kOpenCreate);
      moved[i] = co_await kernel.Splice(p, s, d, kSpliceEof);
      done[i] = sim.Now();
    });
  }
  sim.Run();
  Outcome out;
  out.min_kbs = 1e18;
  for (int i = 0; i < nsplices; ++i) {
    if (moved[i] != kBytes || done[i] <= 0) {
      out.ok = false;
      continue;
    }
    const double kbs = kBytes / 1024.0 / ToSeconds(done[i]);
    out.min_kbs = std::min(out.min_kbs, kbs);
    out.max_kbs = std::max(out.max_kbs, kbs);
  }
  SimTime last = 0;
  for (SimTime t : done) {
    last = std::max(last, t);
  }
  out.aggregate_kbs = nsplices * kBytes / 1024.0 / ToSeconds(last);
  return out;
}

}  // namespace

int main() {
  std::printf("ikdp bench: concurrent splices (%lld MB each, RZ58 disks)\n\n",
              static_cast<long long>(kBytes >> 20));
  std::printf("independent disk pairs:\n");
  std::printf("  %-3s | %-12s | %-10s | %-10s |\n", "N", "aggr KB/s", "min KB/s", "max KB/s");
  std::printf("  ----+--------------+------------+------------+---\n");
  bool all_ok = true;
  for (int n : {1, 2, 4, 8}) {
    const Outcome o = RunConcurrent(n, /*shared_disks=*/false);
    all_ok = all_ok && o.ok;
    std::printf("  %-3d | %10.0f   | %8.0f   | %8.0f   | %s\n", n, o.aggregate_kbs, o.min_kbs,
                o.max_kbs, o.ok ? "verified" : "FAILED");
  }
  std::printf("\nshared disk pair (elevator-serialized):\n");
  std::printf("  %-3s | %-12s | %-10s | %-10s |\n", "N", "aggr KB/s", "min KB/s", "max KB/s");
  std::printf("  ----+--------------+------------+------------+---\n");
  for (int n : {1, 2, 4}) {
    const Outcome o = RunConcurrent(n, /*shared_disks=*/true);
    all_ok = all_ok && o.ok;
    std::printf("  %-3d | %10.0f   | %8.0f   | %8.0f   | %s\n", n, o.aggregate_kbs, o.min_kbs,
                o.max_kbs, o.ok ? "verified" : "FAILED");
  }
  std::printf(
      "\nExpected shape: independent pairs scale aggregate throughput nearly\n"
      "linearly (splice CPU cost per byte is tiny); a shared pair holds aggregate\n"
      "roughly flat while splitting it fairly.\n");
  return all_ok ? 0 : 1;
}
