// Shared scaffolding for the bench executables: argv parsing, the CPU-ledger
// sanity check, the aligned pass/FAIL check list, and file slurping for
// JSON round-trips.  Keeping these in one place keeps every bench's output
// format and exit-code discipline identical.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "src/metrics/experiment.h"

namespace ikdp::bench {

// Parses the optional leading megabyte-count argument (clamped to >= 1).
int64_t ParseMb(int argc, char** argv, int64_t def = 8);

// Accounting identity: idle = elapsed - (process + switch + interrupt work)
// must land in [0, 1] or the bench's numbers rest on a broken CPU ledger.
// Prints on stderr (so a passing run's stdout is unchanged) and returns
// false on violation.
bool LedgerOk(const ExperimentResult& e, const char* label);

// An aligned "  <what>  ok|FAIL" list; `ok` latches false on any failure.
struct CheckList {
  bool ok = true;
  void Check(bool cond, const char* what);
};

// Reads a whole file into a string (empty on open failure).
std::string Slurp(const char* path);

}  // namespace ikdp::bench

#endif  // BENCH_BENCH_COMMON_H_
