// Framebuffer-to-socket splice: "framebuffer-to-socket splices for sending
// graphical images and video" (paper Section 5.1).
//
// A 320x240 8-bit framebuffer refreshing at 10 fps is spliced into a UDP
// socket; a viewer on the other end of an Ethernet link reassembles frames
// and verifies their contents against the generator pattern.  The sender
// process starts one splice and sleeps; scan-out, packetization, and
// transmission all proceed in kernel context.
//
// Run: build/examples/framebuffer_stream

#include <cstdio>
#include <vector>

#include "src/dev/frame_source.h"
#include "src/os/kernel.h"

using namespace ikdp;

int main() {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());

  constexpr int64_t kFrameBytes = 320 * 240;  // 75 KB, 8-bit pixels
  constexpr SimDuration kFrameInterval = Milliseconds(100);
  constexpr int kFramesToSend = 20;

  FrameSource fb(&sim, "fb0", kFrameBytes, kFrameInterval);
  kernel.RegisterCharDev("fb0", &fb);

  UdpSocket sender(&kernel.cpu(), 96 * 1024, 96 * 1024);
  UdpSocket receiver(&kernel.cpu(), 96 * 1024, 192 * 1024);
  NetworkLink wire(&sim, EthernetParams());
  sender.ConnectTo(&receiver, &wire);

  Process* streamer = kernel.Spawn("streamer", [&](Process& p) -> Task<> {
    const int fbfd = co_await kernel.Open(p, "/dev/fb0", kOpenRead);
    const int sock = kernel.OpenSocket(p, &sender);
    // Bounded splice: exactly kFramesToSend frames worth of bytes.
    const int64_t moved =
        co_await kernel.Splice(p, fbfd, sock, kFramesToSend * kFrameBytes);
    std::printf("[%8.3fs] streamer: splice moved %lld bytes\n", ToSeconds(sim.Now()),
                static_cast<long long>(moved));
    co_await kernel.Write(p, sock, nullptr, 0);  // end-of-stream
  });

  int64_t received = 0;
  int frames_ok = 0;
  kernel.Spawn("viewer", [&](Process& p) -> Task<> {
    const int sock = kernel.OpenSocket(p, &receiver);
    std::vector<uint8_t> frame;
    std::vector<uint8_t> chunk;
    std::vector<uint8_t> expect;
    int frame_no = 0;
    for (;;) {
      const int64_t n = co_await kernel.Read(p, sock, kFrameBytes, &chunk);
      if (n <= 0) {
        break;
      }
      frame.insert(frame.end(), chunk.begin(), chunk.end());
      received += n;
      while (static_cast<int64_t>(frame.size()) >= kFrameBytes) {
        FrameSource::FillFrame(frame_no, kFrameBytes, &expect);
        if (std::equal(expect.begin(), expect.end(), frame.begin())) {
          ++frames_ok;
        }
        frame.erase(frame.begin(), frame.begin() + kFrameBytes);
        ++frame_no;
      }
    }
  });

  sim.Run();

  const double wall = ToSeconds(sim.Now());
  std::printf("\nstreamed %d frames (%.0f KB) in %.2fs — %.1f fps over the wire\n", frames_ok,
              received / 1024.0, wall, frames_ok / wall);
  std::printf("streamer process CPU: %.1f ms (splice ran in kernel context)\n",
              ToSeconds(streamer->stats().cpu_time) * 1000);
  const bool ok = frames_ok == kFramesToSend && received == kFramesToSend * kFrameBytes;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
