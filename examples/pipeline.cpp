// A shell-style pipeline built on in-kernel pipes:
//
//     source.txt --splice--> [pipe A] -> filter -> [pipe B] -> consumer -> out.txt
//
// The first stage is a file-to-pipe splice (the sendfile pattern): the
// producer process starts it and goes idle while the kernel streams the
// file into pipe A at the filter's consumption rate (the pipe's
// reader-drain back-pressure is the splice's flow control).  The filter
// uppercases the text in user space; the consumer writes the result to a
// file and fsyncs.
//
// A TraceLog is attached for the run; the tail of the kernel event log is
// dumped at the end — the in-kernel splice shows up as splice-chunk events
// with no syscall activity from the producer in between.
//
// Run: build/examples/pipeline

#include <cctype>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"
#include "src/sim/trace.h"

using namespace ikdp;

namespace {
// Lowercase text with some structure, so the filter's work is visible.
uint8_t SourceByte(int64_t i) {
  static const char kText[] = "in-kernel data paths improve throughput. ";
  return static_cast<uint8_t>(kText[i % (sizeof(kText) - 1)]);
}
}  // namespace

int main() {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());
  TraceLog trace(1 << 14);
  kernel.cpu().set_trace(&trace);

  RamDisk disk(&kernel.cpu(), 16 << 20);
  FileSystem* fs = kernel.MountFs(&disk, "fs");
  constexpr int64_t kBytes = 32 * kBlockSize;
  fs->CreateFileInstant("source.txt", kBytes, SourceByte);

  int a_r = -1;
  int a_w = -1;
  int b_r = -1;
  int b_w = -1;
  bool plumbed = false;

  Process* producer = kernel.Spawn("producer", [&](Process& p) -> Task<> {
    co_await kernel.CreatePipe(p, &a_r, &a_w);
    co_await kernel.CreatePipe(p, &b_r, &b_w);
    plumbed = true;
    const int src = co_await kernel.Open(p, "fs:source.txt", kOpenRead);
    // One splice: the whole file flows into pipe A in kernel context, paced
    // by the filter's reads.
    const int64_t moved = co_await kernel.Splice(p, src, a_w, kSpliceEof);
    std::printf("[%7.3fs] producer: splice moved %lld bytes, closing pipe\n",
                ToSeconds(sim.Now()), static_cast<long long>(moved));
    co_await kernel.Close(p, a_w);
  });

  Process* filter = kernel.Spawn("filter", [&](Process& p) -> Task<> {
    while (!plumbed) {
      co_await kernel.SleepFor(p, Milliseconds(1));
    }
    std::shared_ptr<File> in = kernel.GetFile(*producer, a_r);
    std::shared_ptr<File> out = kernel.GetFile(*producer, b_w);
    std::vector<uint8_t> buf;
    int64_t through = 0;
    for (;;) {
      const int64_t n = co_await in->Read(p, 8192, &buf);
      if (n <= 0) {
        break;
      }
      for (auto& ch : buf) {
        ch = static_cast<uint8_t>(std::toupper(ch));
      }
      // A little per-chunk compute, as a real filter would burn.
      co_await kernel.cpu().Use(p, Microseconds(200));
      co_await out->Write(p, buf.data(), n);
      through += n;
    }
    std::printf("[%7.3fs] filter: %lld bytes transformed\n", ToSeconds(sim.Now()),
                static_cast<long long>(through));
    // The consumer terminates by byte count; pipe B needs no explicit EOF
    // (its ends live in the producer's descriptor table until teardown).
  });
  (void)filter;

  int64_t written = 0;
  kernel.Spawn("consumer", [&](Process& p) -> Task<> {
    while (!plumbed) {
      co_await kernel.SleepFor(p, Milliseconds(1));
    }
    std::shared_ptr<File> in = kernel.GetFile(*producer, b_r);
    const int dst = co_await kernel.Open(p, "fs:out.txt", kOpenWrite | kOpenCreate);
    std::vector<uint8_t> buf;
    int64_t total = 0;
    while (total < kBytes) {
      const int64_t n = co_await in->Read(p, 8192, &buf);
      if (n <= 0) {
        break;  // would be EOF/error; the byte count normally ends the loop
      }
      co_await kernel.Write(p, dst, buf.data(), n);
      total += n;
    }
    co_await kernel.FsyncFd(p, dst);
    written = total;
    std::printf("[%7.3fs] consumer: %lld bytes written + fsync\n", ToSeconds(sim.Now()),
                static_cast<long long>(written));
  });

  sim.Run();

  // Verify the transformation end to end.
  kernel.cache().FlushAllInstant();
  Inode* out_ip = fs->Lookup("out.txt");
  bool ok = out_ip != nullptr && out_ip->size == kBytes && written == kBytes;
  if (ok) {
    const std::vector<uint8_t> back = fs->ReadFileInstant(out_ip);
    for (int64_t i = 0; i < kBytes && ok; ++i) {
      ok = back[static_cast<size_t>(i)] ==
           static_cast<uint8_t>(std::toupper(SourceByte(i)));
    }
  }

  std::printf("\nlast kernel trace records:\n");
  const auto records = trace.Snapshot();
  const size_t show = std::min<size_t>(records.size(), 12);
  TraceLog tail(16);
  for (size_t i = records.size() - show; i < records.size(); ++i) {
    tail.Record(records[i].time, records[i].kind, records[i].a, records[i].b, records[i].tag);
  }
  tail.Dump(std::cout);

  std::printf("\nproducer CPU %.1f ms (splice did its I/O); pipeline %s\n",
              ToSeconds(producer->stats().cpu_time) * 1000, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
