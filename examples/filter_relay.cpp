// Filter relay: disk -> keep-1-in-10 filter -> UDP, with the filter running
// either as an in-kernel splice operator or as a user process roundtrip.
//
// A sensor log on disk is 90% chaff: only blocks whose first byte carries
// the tag 0xAB matter downstream.  The relay forwards the tagged blocks to
// a client over Ethernet, two ways:
//
//   user      the classic loop — read(2) each block into user space, test
//             its tag byte, write(2) the survivors to the socket.  Every
//             block pays two traps and a kernel/user crossing whether it
//             is kept or not.
//
//   inkernel  kop_load(2) a one-stage keep-if-tagged filter program (the
//             verifier accepts it statically), then submit ONE splice ring
//             SQE carrying its kop_id.  Chaff is dropped at interrupt/
//             softclock level inside the data path; only tagged blocks are
//             ever queued to the socket, the relay process sleeps in a
//             single ring_enter trap throughout, and the CQE reports how
//             many chunks the filter consumed in-kernel.
//
// A CPU-bound compute job shares the relay machine, so the example can
// print what the paper's Table 1 measures: how much CPU each style leaves
// over for everyone else.  The client verifies it receives exactly the
// tagged blocks, byte-for-byte.  Exits nonzero if either mode corrupts or
// loses data, or if the in-kernel filter fails to beat the user roundtrip
// on both trap count and compute-job progress.
//
// Run: build/examples/filter_relay

#include <cstdio>
#include <memory>
#include <vector>

#include "src/dev/ram_disk.h"
#include "src/kop/kop.h"
#include "src/os/kernel.h"

using namespace ikdp;

namespace {

constexpr int kBlocks = 120;
constexpr int kKeepEvery = 10;
constexpr int64_t kFileBytes = kBlocks * kBlockSize;
constexpr uint8_t kTag = 0xab;

bool Tagged(int64_t block) { return block % kKeepEvery == 0; }

uint8_t Fill(int64_t i) {
  if (i % kBlockSize == 0) {
    return Tagged(i / kBlockSize) ? kTag : 0x00;
  }
  return static_cast<uint8_t>((i * 40503u + 13) >> 3 & 0xff);
}

struct Outcome {
  int64_t sent = 0;           // bytes the relay put on the wire
  int64_t received = 0;       // bytes the client read back
  bool content_ok = true;     // client saw exactly the tagged blocks, in order
  double elapsed_s = 0;
  int64_t compute_ops = 0;    // progress of the co-resident compute job
  uint64_t relay_traps = 0;   // kernel entries paid by the relay process
};

Outcome RunRelay(bool inkernel) {
  Simulator sim;
  Kernel server(&sim, DecStation5000Costs());
  Kernel client(&sim, DecStation5000Costs());

  RamDisk disk(&server.cpu(), 16 << 20);
  FileSystem* fs = server.MountFs(&disk, "log");
  fs->CreateFileInstant("sensor", kFileBytes, Fill);

  UdpSocket out(&server.cpu());
  UdpSocket in(&client.cpu(), 48 * 1024, 256 * 1024);
  NetworkLink wire(&sim, EthernetParams());
  out.ConnectTo(&in, &wire);

  Outcome outcome;
  bool relay_done = false;

  Process* relay = server.Spawn("relay", [&, inkernel](Process& p) -> Task<> {
    const int src = co_await server.Open(p, "log:sensor", kOpenRead);
    const int dst = server.OpenSocket(p, &out);
    if (inkernel) {
      KopProgram prog;
      KopStage keep;
      keep.kind = KopStageKind::kFilter;
      keep.filter_mode = KopFilterMode::kKeepIfEq;
      keep.off = 0;
      keep.len = 1;
      keep.arg = kTag;
      prog.stages.push_back(keep);
      const int id = co_await server.KopLoad(p, prog);
      const int ring = co_await server.RingSetup(p, RingConfig{});
      SpliceSqe sqe;
      sqe.src_fd = src;
      sqe.dst_fd = dst;
      sqe.nbytes = kSpliceEof;
      sqe.kop_id = id;
      server.RingPrepare(p, ring, sqe);
      // One ring_enter trap; the filter runs per chunk inside the data
      // path and only the kept blocks are counted by the CQE result.
      co_await server.RingEnter(p, ring, 1, 1);
      SpliceCqe cqe;
      if (server.RingHarvest(p, ring, &cqe, 1) == 1 && cqe.error == 0 && cqe.kop_active) {
        outcome.sent = cqe.result;
      }
    } else {
      std::vector<uint8_t> buf;
      for (;;) {
        const int64_t n = co_await server.Read(p, src, kBlockSize, &buf);
        if (n <= 0) {
          break;
        }
        if (buf[0] == kTag) {
          outcome.sent += co_await server.Write(p, dst, buf.data(), n);
        }
      }
    }
    co_await server.Write(p, dst, nullptr, 0);  // end-of-stream datagram
    relay_done = true;
  });

  // The compute job sharing the relay machine: its op count is the CPU the
  // relay style left on the table.
  server.Spawn("compute", [&](Process& p) -> Task<> {
    while (!relay_done) {
      co_await server.cpu().Use(p, Milliseconds(1));
      ++outcome.compute_ops;
    }
  });

  client.Spawn("client", [&](Process& p) -> Task<> {
    const int sock = client.OpenSocket(p, &in);
    std::vector<uint8_t> buf;
    int64_t kept = 0;  // index among the TAGGED blocks only
    for (;;) {
      const int64_t n = co_await client.Read(p, sock, kBlockSize, &buf);
      if (n == 0) {
        break;
      }
      if (n < 0) {
        continue;
      }
      const int64_t block = kept * kKeepEvery;  // source block this must be
      for (int64_t j = 0; j < n && outcome.content_ok; ++j) {
        outcome.content_ok = buf[static_cast<size_t>(j)] == Fill(block * kBlockSize + j);
      }
      ++kept;
      outcome.received += n;
    }
  });

  sim.Run();
  outcome.elapsed_s = ToSeconds(sim.Now());
  outcome.relay_traps = relay->stats().syscall_traps;
  return outcome;
}

}  // namespace

int main() {
  constexpr int64_t kKeptBytes = ((kBlocks + kKeepEvery - 1) / kKeepEvery) * kBlockSize;
  std::printf("ikdp example: disk -> keep-1-in-%d filter -> UDP relay\n", kKeepEvery);
  std::printf("log: %d blocks (%lld KB), %lld KB tagged; filter in kernel vs user process\n\n",
              kBlocks, static_cast<long long>(kFileBytes >> 10),
              static_cast<long long>(kKeptBytes >> 10));

  const Outcome user = RunRelay(/*inkernel=*/false);
  const Outcome kern = RunRelay(/*inkernel=*/true);

  auto report = [](const char* label, const Outcome& o) {
    std::printf("%-9s: %5lld KB sent, %5lld KB received, %6.2f s, "
                "%4llu relay traps, compute job %4lld ops, %s\n",
                label, static_cast<long long>(o.sent >> 10),
                static_cast<long long>(o.received >> 10), o.elapsed_s,
                static_cast<unsigned long long>(o.relay_traps),
                static_cast<long long>(o.compute_ops), o.content_ok ? "content OK" : "CORRUPT");
  };
  report("user", user);
  report("inkernel", kern);

  const bool delivered = user.content_ok && kern.content_ok &&
                         user.sent == kKeptBytes && kern.sent == kKeptBytes &&
                         user.received == kKeptBytes && kern.received == kKeptBytes;
  const bool kern_wins =
      kern.relay_traps < user.relay_traps && kern.compute_ops > user.compute_ops;
  std::printf("\nin-kernel filter: %llu fewer kernel entries, +%lld compute-job ops "
              "(CPU availability delta %+.1f%%)\n",
              static_cast<unsigned long long>(user.relay_traps - kern.relay_traps),
              static_cast<long long>(kern.compute_ops - user.compute_ops),
              user.elapsed_s > 0 && kern.elapsed_s > 0
                  ? 100.0 * (static_cast<double>(kern.compute_ops) / (kern.elapsed_s * 1000.0) -
                             static_cast<double>(user.compute_ops) / (user.elapsed_s * 1000.0))
                  : 0.0);
  std::printf("%s\n", delivered && kern_wins ? "OK" : "FAILED");
  return delivered && kern_wins ? 0 : 1;
}
