// The paper's Section 4 example, reproduced scenario-for-scenario: "an
// application which plays back a digitized movie from a file".
//
//   audiofile = open("movie.audio", O_RDONLY);
//   videofile = open("movie.video", O_RDONLY);
//   audio_dev = open("/dev/speaker", O_WRONLY);
//   video_dev = open("/dev/video_dac", O_WRONLY);
//   fcntl(audiofile, F_SETFL, FASYNC);
//   splice(audiofile, audio_dev, SPLICE_EOF);   // returns immediately
//   setitimer(ITIMER_REAL, &inter_frame_time);
//   do {
//     rval = splice(videofile, video_dev, sizeof(video_frame));
//     pause();                                  // wait for the timer
//   } while (rval > 0);
//
// The audio DAC consumes at its own rate (the async splice's flow control
// tracks it); video frames are paced by the interval timer.  The player
// process does no buffer handling and is idle almost the whole time.
//
// Run: build/examples/movie_player

#include <cstdio>

#include "src/dev/paced_sink.h"
#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"

using namespace ikdp;

int main() {
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());

  // Media on a RAM disk (a fast local store).
  RamDisk disk(&kernel.cpu(), 32 << 20);
  FileSystem* fs = kernel.MountFs(&disk, "media");

  // A 5-second movie: 8-bit 8 kHz audio, and 10 fps video with 64 KB frames
  // (8 blocks each, block-aligned as file splices require).
  constexpr double kSeconds = 5.0;
  constexpr int64_t kAudioRate = 8000;
  constexpr int64_t kFrameBytes = 64 * 1024;
  constexpr int kFps = 10;
  constexpr int kFrames = static_cast<int>(kSeconds * kFps);
  const int64_t audio_bytes = static_cast<int64_t>(kSeconds * kAudioRate);
  fs->CreateFileInstant("movie.audio", audio_bytes,
                        [](int64_t i) { return static_cast<uint8_t>(i & 0x7f); });
  fs->CreateFileInstant("movie.video", kFrames * kFrameBytes,
                        [](int64_t i) { return static_cast<uint8_t>(i * 7); });

  // Output DACs: the speaker plays 8000 B/s; the video DAC can display
  // frames faster than the recording rate (the paper's assumption), here
  // 25 fps worth of bandwidth.
  PacedSink speaker(&sim, "speaker", static_cast<double>(kAudioRate), 16 * 1024);
  PacedSink video_dac(&sim, "video_dac", 25.0 * kFrameBytes, 2 * kFrameBytes);
  kernel.RegisterCharDev("speaker", &speaker);
  kernel.RegisterCharDev("video_dac", &video_dac);

  int frames_played = 0;
  int frames_fast_forwarded = 0;
  SimDuration ff_elapsed = 0;
  bool audio_done = false;

  kernel.Spawn("player", [&](Process& p) -> Task<> {
    const int audiofile = co_await kernel.Open(p, "media:movie.audio", kOpenRead);
    const int videofile = co_await kernel.Open(p, "media:movie.video", kOpenRead);
    const int audio_dev = co_await kernel.Open(p, "/dev/speaker", kOpenWrite);
    const int video_dev = co_await kernel.Open(p, "/dev/video_dac", kOpenWrite);

    // Async audio: set FASYNC, catch SIGIO, fire one splice for the whole
    // file and return immediately.
    kernel.Sigaction(p, kSigIo, [&] {
      audio_done = true;
      std::printf("[%8.3fs] SIGIO: audio splice complete\n", ToSeconds(sim.Now()));
    });
    co_await kernel.Fcntl(p, audiofile, /*fasync=*/true);
    const int64_t arv = co_await kernel.Splice(p, audiofile, audio_dev, kSpliceEof);
    std::printf("[%8.3fs] audio splice started (returned %lld immediately)\n",
                ToSeconds(sim.Now()), static_cast<long long>(arv));

    // Paced video: one frame-sized splice per timer interval.
    kernel.Setitimer(p, Milliseconds(1000 / kFps));
    int64_t rval = 0;
    do {
      rval = co_await kernel.Splice(p, videofile, video_dev, kFrameBytes);
      if (rval > 0) {
        ++frames_played;
        if (frames_played % 10 == 0) {
          std::printf("[%8.3fs] %d frames delivered\n", ToSeconds(sim.Now()), frames_played);
        }
      }
      co_await kernel.Pause(p);  // the timer reloads automatically
    } while (rval > 0);
    kernel.StopItimer(p);

    // Wait for the audio to finish if it has not already.
    while (!audio_done) {
      co_await kernel.Pause(p);
    }

    // "A video fast forward ... could be effected by adjusting the interval
    // timer value" (Section 4): rewind and replay at 2x by halving the
    // timer interval.
    co_await kernel.Lseek(p, videofile, 0);
    const SimTime ff_start = sim.Now();
    kernel.Setitimer(p, Milliseconds(1000 / kFps / 2));
    do {
      rval = co_await kernel.Splice(p, videofile, video_dev, kFrameBytes);
      if (rval > 0) {
        ++frames_fast_forwarded;
      }
      co_await kernel.Pause(p);
    } while (rval > 0);
    kernel.StopItimer(p);
    ff_elapsed = sim.Now() - ff_start;
    std::printf("[%8.3fs] fast-forward: %d frames in %s (2x)\n", ToSeconds(sim.Now()),
                frames_fast_forwarded, FormatDuration(ff_elapsed).c_str());
    co_await kernel.Close(p, audiofile);
    co_await kernel.Close(p, videofile);
    co_await kernel.Close(p, audio_dev);
    co_await kernel.Close(p, video_dev);
  });

  sim.Run();

  const double wall = ToSeconds(sim.Now());
  const double player_cpu =
      ToSeconds(kernel.cpu().stats().process_work + kernel.cpu().stats().context_switch);
  std::printf("\nmovie: %d video frames + %lld audio bytes in %.2fs simulated\n", frames_played,
              static_cast<long long>(speaker.bytes_accepted()), wall);
  std::printf("player process CPU: %.1f ms (%.2f%% of playback) — \"no buffer handling by the "
              "user program\"\n",
              player_cpu * 1000, 100.0 * player_cpu / wall);
  const bool ff_ok = frames_fast_forwarded == kFrames &&
                     ff_elapsed < SecondsF(kSeconds * 0.7);  // ~2x real time
  const bool ok = frames_played == kFrames && audio_done && ff_ok &&
                  speaker.bytes_accepted() == audio_bytes;
  std::printf("playback %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
