// UDP relay: user-space read()/write() loop versus in-kernel socket-to-socket
// splice (paper Section 5.1: "socket-to-socket splices for the UDP transport
// protocol").
//
// Three simulated machines share one virtual clock:
//
//   host A (producer) --wire1--> host B (relay) --wire2--> host C (consumer)
//
// Host B also runs a CPU-bound compute job.  The user-space relay spends two
// copies and two syscalls per datagram (~3 ms of a 25 MHz CPU per 8 KB
// datagram) and so eats roughly half the machine while keeping up with the
// 10 Mbit/s wire.  The splice relay forwards the same stream from kernel
// handlers: the relay process sleeps, only protocol/interrupt work remains,
// and the compute job runs nearly twice as fast — the paper's
// CPU-availability result, on a streaming workload.
//
// Each datagram carries its sequence number so the consumer verifies content
// and counts losses exactly.
//
// Run: build/examples/udp_relay

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/os/kernel.h"

using namespace ikdp;

namespace {

constexpr int kDgrams = 200;
constexpr int64_t kDgramBytes = 8192;

struct RelayOutcome {
  int64_t dgrams = 0;
  bool content_ok = true;
  double relay_cpu_s = 0;
  int64_t compute_ops = 0;
  double elapsed_s = 0;
};

uint8_t Payload(int64_t seq, int64_t j) {
  return static_cast<uint8_t>((seq * 97 + j * 31) & 0xff);
}

void FillDgram(int64_t seq, std::vector<uint8_t>* out) {
  out->resize(kDgramBytes);
  std::memcpy(out->data(), &seq, sizeof(seq));
  for (int64_t j = sizeof(seq); j < kDgramBytes; ++j) {
    (*out)[static_cast<size_t>(j)] = Payload(seq, j);
  }
}

bool CheckDgram(const std::vector<uint8_t>& d) {
  if (d.size() != kDgramBytes) {
    return false;
  }
  int64_t seq = 0;
  std::memcpy(&seq, d.data(), sizeof(seq));
  if (seq < 0 || seq >= kDgrams) {
    return false;
  }
  for (int64_t j = sizeof(seq); j < kDgramBytes; ++j) {
    if (d[static_cast<size_t>(j)] != Payload(seq, j)) {
      return false;
    }
  }
  return true;
}

RelayOutcome RunRelay(bool use_splice) {
  Simulator sim;
  // Three machines, one clock.
  Kernel host_a(&sim, DecStation5000Costs());
  Kernel host_b(&sim, DecStation5000Costs());
  Kernel host_c(&sim, DecStation5000Costs());

  UdpSocket producer_out(&host_a.cpu());
  UdpSocket relay_in(&host_b.cpu(), 48 * 1024, 96 * 1024);
  UdpSocket relay_out(&host_b.cpu());
  UdpSocket consumer_in(&host_c.cpu(), 48 * 1024, 96 * 1024);
  NetworkLink wire1(&sim, EthernetParams());
  NetworkLink wire2(&sim, EthernetParams());
  producer_out.ConnectTo(&relay_in, &wire1);
  relay_out.ConnectTo(&consumer_in, &wire2);

  host_a.Spawn("producer", [&](Process& p) -> Task<> {
    const int out = host_a.OpenSocket(p, &producer_out);
    std::vector<uint8_t> dgram;
    for (int i = 0; i < kDgrams; ++i) {
      FillDgram(i, &dgram);
      co_await host_a.Write(p, out, dgram);
    }
    co_await host_a.Write(p, out, nullptr, 0);  // end-of-stream datagram
  });

  RelayOutcome outcome;
  bool stream_done = false;

  Process* relay_proc = host_b.Spawn("relay", [&, use_splice](Process& p) -> Task<> {
    const int in = host_b.OpenSocket(p, &relay_in);
    const int out = host_b.OpenSocket(p, &relay_out);
    if (use_splice) {
      co_await host_b.Splice(p, in, out, kSpliceEof);
      co_await host_b.Write(p, out, nullptr, 0);  // forward the marker
    } else {
      std::vector<uint8_t> buf;
      for (;;) {
        const int64_t n = co_await host_b.Read(p, in, kDgramBytes, &buf);
        if (n < 0) {
          continue;
        }
        co_await host_b.Write(p, out, buf.data(), n);
        if (n == 0) {
          break;  // forwarded the end-of-stream marker
        }
      }
    }
    stream_done = true;
  });

  // The compute job sharing host B with the relay.
  host_b.Spawn("compute", [&](Process& p) -> Task<> {
    while (!stream_done) {
      co_await host_b.cpu().Use(p, Milliseconds(1));
      ++outcome.compute_ops;
    }
  });

  host_c.Spawn("consumer", [&](Process& p) -> Task<> {
    const int in = host_c.OpenSocket(p, &consumer_in);
    std::vector<uint8_t> buf;
    for (;;) {
      const int64_t n = co_await host_c.Read(p, in, kDgramBytes, &buf);
      if (n <= 0) {
        break;
      }
      outcome.content_ok = outcome.content_ok && CheckDgram(buf);
      ++outcome.dgrams;
    }
  });

  sim.Run();
  outcome.relay_cpu_s = ToSeconds(relay_proc->stats().cpu_time);
  outcome.elapsed_s = ToSeconds(sim.Now());
  return outcome;
}

}  // namespace

int main() {
  std::printf("ikdp example: UDP relay across three hosts, user-space vs splice\n");
  std::printf("stream: %d datagrams x %lld B over 10 Mbit/s Ethernet hops;\n", kDgrams,
              static_cast<long long>(kDgramBytes));
  std::printf("the relay host also runs a CPU-bound compute job\n\n");
  const RelayOutcome user = RunRelay(/*use_splice=*/false);
  const RelayOutcome spl = RunRelay(/*use_splice=*/true);

  auto report = [](const char* label, const RelayOutcome& o) {
    std::printf("%-12s: %3lld/%d delivered (%5.1f%% loss), relay CPU %6.1f ms, compute job "
                "%4lld ops, %s\n",
                label, static_cast<long long>(o.dgrams), kDgrams,
                100.0 * (kDgrams - o.dgrams) / kDgrams, o.relay_cpu_s * 1000,
                static_cast<long long>(o.compute_ops), o.content_ok ? "content OK" : "CORRUPT");
  };
  report("read/write", user);
  report("splice", spl);

  const bool ok = user.content_ok && spl.content_ok && spl.dgrams == kDgrams &&
                  spl.relay_cpu_s < user.relay_cpu_s && user.dgrams <= spl.dgrams &&
                  spl.compute_ops > user.compute_ops;
  std::printf("\nsplice relay: lossless, %.0fx less relay-process CPU, %.1f%% more compute-job "
              "progress\n",
              spl.relay_cpu_s > 0 ? user.relay_cpu_s / spl.relay_cpu_s : 999.0,
              100.0 * (spl.compute_ops - user.compute_ops) / std::max<int64_t>(1, user.compute_ops));
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
