// Quickstart: build a machine, create a file, and splice it to another disk.
//
// Shows the minimal end-to-end use of the library:
//   1. a Simulator and Kernel (CPU, scheduler, buffer cache, callouts),
//   2. two block devices with mounted filesystems,
//   3. a process that open()s both files and calls splice(),
//   4. verification that every byte arrived.
//
// Run: build/examples/quickstart

#include <cstdio>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/hw/disk.h"
#include "src/os/kernel.h"

using namespace ikdp;

namespace {
uint8_t Pattern(int64_t i) { return static_cast<uint8_t>((i * 131) & 0xff); }
}  // namespace

int main() {
  // The machine: a DECstation-5000/200-costed CPU, 3.2 MB buffer cache,
  // hz=256 callout wheel.
  Simulator sim;
  Kernel kernel(&sim, DecStation5000Costs());

  // Two disks: an RZ58 SCSI drive and a 16 MB RAM disk, each with a
  // filesystem.
  DiskDriver rz58(&kernel.cpu(), &sim, Rz58Params());
  RamDisk ram(&kernel.cpu(), 16 << 20);
  FileSystem* src_fs = kernel.MountFs(&rz58, "disk0");
  FileSystem* dst_fs = kernel.MountFs(&ram, "ram0");

  // A 2 MB source file, created directly on the device (no simulated time).
  constexpr int64_t kBytes = 2 << 20;
  src_fs->CreateFileInstant("data.bin", kBytes, Pattern);

  // A process that splices the file across devices.
  kernel.Spawn("copier", [&](Process& p) -> Task<> {
    const int src = co_await kernel.Open(p, "disk0:data.bin", kOpenRead);
    const int dst = co_await kernel.Open(p, "ram0:data.copy", kOpenWrite | kOpenCreate);
    std::printf("[%8.3fs] splice(src=%d, dst=%d, SPLICE_EOF)...\n", ToSeconds(sim.Now()), src,
                dst);
    const int64_t moved = co_await kernel.Splice(p, src, dst, kSpliceEof);
    std::printf("[%8.3fs] splice returned %lld bytes\n", ToSeconds(sim.Now()),
                static_cast<long long>(moved));
    co_await kernel.Close(p, src);
    co_await kernel.Close(p, dst);
  });

  sim.Run();

  // Verify.
  kernel.cache().FlushAllInstant();
  Inode* out = dst_fs->Lookup("data.copy");
  bool ok = out != nullptr && out->size == kBytes;
  if (ok) {
    const std::vector<uint8_t> back = dst_fs->ReadFileInstant(out);
    for (int64_t i = 0; i < kBytes && ok; ++i) {
      ok = back[static_cast<size_t>(i)] == Pattern(i);
    }
  }
  std::printf("copy %s; process CPU charged: %s; splice descriptors used: %llu\n",
              ok ? "verified byte-for-byte" : "FAILED",
              FormatDuration(kernel.cpu().stats().process_work).c_str(),
              static_cast<unsigned long long>(kernel.splice_engine().stats().splices_completed));
  return ok ? 0 : 1;
}
