// Async relay: 8 concurrent disk-to-UDP streams driven through ONE splice
// ring, versus the same work as sequential synchronous splices.
//
// A server machine holds 8 media files and feeds 8 clients, each over its
// own 10 Mbit/s Ethernet link.  The synchronous server splices one stream
// at a time: stream k+1 cannot start until stream k's wire drains, so total
// time is the SUM of the per-stream times.  The ring server prepares all 8
// SQEs and submits them with a single ring_enter trap; the streams overlap
// and total time collapses toward the SLOWEST single stream — with the
// relay process asleep in one syscall the whole while.  A CPU-bound compute
// job shares the server to show the relay's own footprint: whatever cycles
// the streams don't need (kernel I/O runs from interrupt/softclock context,
// the paper's availability mechanism) go to it, in either mode.
//
// Each client verifies every byte of its stream; the example exits nonzero
// if any byte is wrong, any stream is short, or the ring server fails to
// beat the synchronous one on elapsed time and kernel entries.
//
// Run: build/examples/async_relay

#include <cstdio>
#include <string>
#include <vector>

#include "src/dev/ram_disk.h"
#include "src/os/kernel.h"

using namespace ikdp;

namespace {

constexpr int kStreams = 8;
constexpr int64_t kFileBytes = 32 * kBlockSize;  // 256 KB per stream

uint8_t Fill(int stream, int64_t i) {
  return static_cast<uint8_t>((i * 40503u + 13) >> 3 ^ stream * 97) & 0xff;
}

struct Outcome {
  int64_t bytes = 0;          // delivered across all clients
  bool content_ok = true;
  int streams_done = 0;
  double elapsed_s = 0;
  int64_t compute_ops = 0;    // progress of the co-resident compute job
  uint64_t relay_traps = 0;   // kernel entries paid by the relay process
};

Outcome RunRelay(bool use_ring) {
  Simulator sim;
  Kernel server(&sim, DecStation5000Costs());
  Kernel client(&sim, DecStation5000Costs());

  RamDisk disk(&server.cpu(), 16 << 20);
  FileSystem* fs = server.MountFs(&disk, "media");
  for (int i = 0; i < kStreams; ++i) {
    fs->CreateFileInstant("f" + std::to_string(i), kFileBytes,
                          [i](int64_t j) { return Fill(i, j); });
  }

  // One private wire per client: the streams contend only for the server's
  // CPU and disk, never for each other's bandwidth.
  std::vector<std::unique_ptr<UdpSocket>> server_socks;
  std::vector<std::unique_ptr<UdpSocket>> client_socks;
  std::vector<std::unique_ptr<NetworkLink>> wires;
  for (int i = 0; i < kStreams; ++i) {
    server_socks.push_back(std::make_unique<UdpSocket>(&server.cpu()));
    client_socks.push_back(std::make_unique<UdpSocket>(&client.cpu(), 48 * 1024, 256 * 1024));
    wires.push_back(std::make_unique<NetworkLink>(&sim, EthernetParams()));
    server_socks.back()->ConnectTo(client_socks[static_cast<size_t>(i)].get(),
                                   wires.back().get());
  }

  Outcome outcome;
  bool stream_done = false;

  Process* relay = server.Spawn("relay", [&, use_ring](Process& p) -> Task<> {
    std::vector<int> src(kStreams);
    std::vector<int> dst(kStreams);
    for (int i = 0; i < kStreams; ++i) {
      src[static_cast<size_t>(i)] =
          co_await server.Open(p, "media:f" + std::to_string(i), kOpenRead);
      dst[static_cast<size_t>(i)] =
          server.OpenSocket(p, server_socks[static_cast<size_t>(i)].get());
    }
    if (use_ring) {
      RingConfig cfg;
      cfg.sq_entries = 2 * kStreams;
      cfg.max_inflight = kStreams;
      const int ring = co_await server.RingSetup(p, cfg);
      for (int i = 0; i < kStreams; ++i) {
        SpliceSqe sqe;
        sqe.src_fd = src[static_cast<size_t>(i)];
        sqe.dst_fd = dst[static_cast<size_t>(i)];
        sqe.nbytes = kFileBytes;
        sqe.cookie = static_cast<uint64_t>(i);
        server.RingPrepare(p, ring, sqe);
      }
      // All 8 streams admitted, started, and awaited under ONE trap.
      co_await server.RingEnter(p, ring, kStreams, kStreams);
      std::vector<SpliceCqe> cqes(kStreams);
      server.RingHarvest(p, ring, cqes.data(), kStreams);  // no trap
      for (const SpliceCqe& c : cqes) {
        if (c.error == 0 && c.result == kFileBytes) {
          ++outcome.streams_done;
        }
      }
    } else {
      for (int i = 0; i < kStreams; ++i) {
        const int64_t moved = co_await server.Splice(p, src[static_cast<size_t>(i)],
                                                     dst[static_cast<size_t>(i)], kFileBytes);
        if (moved == kFileBytes) {
          ++outcome.streams_done;
        }
      }
    }
    for (int i = 0; i < kStreams; ++i) {
      // End-of-stream datagram so each client's read loop terminates.
      co_await server.Write(p, dst[static_cast<size_t>(i)], nullptr, 0);
    }
    stream_done = true;
  });

  // The compute job sharing the server with the relay.
  server.Spawn("compute", [&](Process& p) -> Task<> {
    while (!stream_done) {
      co_await server.cpu().Use(p, Milliseconds(1));
      ++outcome.compute_ops;
    }
  });

  for (int i = 0; i < kStreams; ++i) {
    client.Spawn("client" + std::to_string(i), [&, i](Process& p) -> Task<> {
      const int in = client.OpenSocket(p, client_socks[static_cast<size_t>(i)].get());
      std::vector<uint8_t> buf;
      int64_t pos = 0;
      for (;;) {
        const int64_t n = co_await client.Read(p, in, kBlockSize, &buf);
        if (n == 0) {
          break;
        }
        if (n < 0) {
          continue;
        }
        for (int64_t j = 0; j < n && outcome.content_ok; ++j) {
          outcome.content_ok = buf[static_cast<size_t>(j)] == Fill(i, pos + j);
        }
        pos += n;
        outcome.bytes += n;
      }
    });
  }

  sim.Run();
  outcome.elapsed_s = ToSeconds(sim.Now());
  outcome.relay_traps = relay->stats().syscall_traps;
  return outcome;
}

}  // namespace

int main() {
  std::printf("ikdp example: %d disk->UDP relays, sequential splices vs one ring\n", kStreams);
  std::printf("stream: %lld KB per client over its own 10 Mbit/s Ethernet link;\n",
              static_cast<long long>(kFileBytes >> 10));
  std::printf("the server also runs a CPU-bound compute job\n\n");

  const Outcome sync = RunRelay(/*use_ring=*/false);
  const Outcome ring = RunRelay(/*use_ring=*/true);

  auto report = [](const char* label, const Outcome& o) {
    const double per_stream_kbs =
        o.elapsed_s > 0 ? static_cast<double>(o.bytes) / 1024.0 / o.elapsed_s / kStreams : 0;
    std::printf("%-10s: %d/%d streams, %6.2f s, %7.1f KB/s per stream, "
                "%3llu relay traps, compute job %4lld ops, %s\n",
                label, o.streams_done, kStreams, o.elapsed_s, per_stream_kbs,
                static_cast<unsigned long long>(o.relay_traps),
                static_cast<long long>(o.compute_ops), o.content_ok ? "content OK" : "CORRUPT");
  };
  report("sequential", sync);
  report("ring", ring);

  const bool delivered = sync.content_ok && ring.content_ok &&
                         sync.streams_done == kStreams && ring.streams_done == kStreams &&
                         sync.bytes == kStreams * kFileBytes &&
                         ring.bytes == kStreams * kFileBytes;
  const bool ring_wins = ring.elapsed_s < sync.elapsed_s && ring.relay_traps < sync.relay_traps;
  std::printf("\nring: %.1fx faster wall clock, %llu fewer kernel entries\n",
              ring.elapsed_s > 0 ? sync.elapsed_s / ring.elapsed_s : 999.0,
              static_cast<unsigned long long>(sync.relay_traps - ring.relay_traps));
  std::printf("%s\n", delivered && ring_wins ? "OK" : "FAILED");
  return delivered && ring_wins ? 0 : 1;
}
