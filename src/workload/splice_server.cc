#include "src/workload/splice_server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/dev/ram_disk.h"
#include "src/hw/link.h"
#include "src/net/udp_socket.h"
#include "src/os/kernel.h"
#include "src/sim/kspan.h"
#include "src/sim/random.h"

namespace ikdp {

namespace {

// Exponential inter-arrival gap with the given mean, in nanoseconds.
SimDuration ExpGap(Rng& rng, double mean_ns) {
  const double u = rng.NextDouble();  // [0, 1): log(1 - u) is finite
  const double gap = -std::log(1.0 - u) * mean_ns;
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(gap)));
}

// Zipf(s) sampler over [0, n) via inverse CDF lookup.
class Zipf {
 public:
  Zipf(int n, double s) {
    cdf_.reserve(static_cast<size_t>(n));
    double total = 0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) {
      c /= total;
    }
  }

  int Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(std::min<size_t>(static_cast<size_t>(it - cdf_.begin()),
                                             cdf_.size() - 1));
  }

 private:
  std::vector<double> cdf_;
};

struct Request {
  uint64_t id = 0;
  int client = 0;
  int object = 0;
  int64_t nbytes = 0;
  SimTime arrival = 0;
  SpanId span = kNoSpan;
  bool span_owned = false;
  bool ended = false;
  int64_t delivered = 0;
  int src_fd = -1;  // server-side file fd while the stream is in flight
};

// One delivery the client is still owed (front = oldest request).  The wire
// is FIFO and requests are serialized per client, so decrementing the front
// entry attributes every datagram correctly.
struct Expected {
  size_t req = 0;
  int64_t remaining = 0;
};

struct ClientState {
  std::unique_ptr<UdpSocket> server_sock;
  std::unique_ptr<UdpSocket> client_sock;
  std::unique_ptr<NetworkLink> wire;
  int server_fd = -1;  // persistent fd (single-server modes only)
  std::deque<size_t> queue;     // assigned requests; front is active
  std::deque<Expected> expect;  // deliveries outstanding
  std::function<void(BufData, int64_t)> on_recv;
};

uint8_t ObjectByte(int object, int64_t i) {
  return static_cast<uint8_t>((i * 131 + object * 29 + 7) & 0xff);
}

}  // namespace

SpliceServerResult RunSpliceServer(const SpliceServerConfig& config,
                                   const SpliceServerHooks& hooks) {
  SpliceServerResult result;
  const int total = config.total_requests;
  result.requests = static_cast<uint64_t>(total);

  Simulator sim;
  Kernel server(&sim, DecStation5000Costs());
  Kernel client(&sim, DecStation5000Costs());

  const int64_t fs_bytes =
      std::max<int64_t>(16 << 20, 2 * config.n_objects * config.object_bytes);
  RamDisk disk(&server.cpu(), fs_bytes);
  FileSystem* fs = server.MountFs(&disk, "obj");
  for (int i = 0; i < config.n_objects; ++i) {
    fs->CreateFileInstant("o" + std::to_string(i), config.object_bytes,
                          [i](int64_t j) { return ObjectByte(i, j); });
  }

  // Pre-draw the whole request stream so every mode serves the identical
  // arrival sequence for a given seed.
  Rng rng(config.seed);
  const double mean_ns = 1e9 / config.offered_rps;
  const Zipf zipf(config.n_objects, config.zipf_s);
  std::vector<Request> reqs(static_cast<size_t>(total));
  std::vector<SimTime> when(static_cast<size_t>(total));
  SimTime t = 0;
  for (int k = 0; k < total; ++k) {
    t += ExpGap(rng, mean_ns);
    when[static_cast<size_t>(k)] = t;
    Request& r = reqs[static_cast<size_t>(k)];
    r.id = static_cast<uint64_t>(k);
    r.client = static_cast<int>(rng.Below(static_cast<uint64_t>(config.n_clients)));
    r.object = zipf.Sample(rng);
    r.nbytes = config.object_bytes;
  }

  // One private wire per client, like the paper's per-stream interfaces; the
  // requests contend for the server's CPU, disk, and cache — never for each
  // other's bandwidth.
  std::vector<ClientState> clients(static_cast<size_t>(config.n_clients));
  for (ClientState& c : clients) {
    c.server_sock = std::make_unique<UdpSocket>(&server.cpu());
    c.client_sock = std::make_unique<UdpSocket>(&client.cpu(), 48 * 1024, 256 * 1024);
    c.wire = std::make_unique<NetworkLink>(&sim, EthernetParams());
    c.server_sock->ConnectTo(c.client_sock.get(), c.wire.get());
  }

  std::deque<size_t> ready;  // requests whose client is idle, oldest first
  Process* single_server = nullptr;  // kFasyncSigio / kRing server process
  int served = 0;                    // requests fully handled server-side
  int done_total = 0;                // requests ended (either side)
  SimTime last_end = 0;
  uint64_t sigio_handled = 0;

  const bool single_mode = config.mode != SubmitMode::kSyncLoop;
  auto ready_push = [&](size_t k) {
    ready.push_back(k);
    server.cpu().Wakeup(&ready);
    if (single_mode && single_server != nullptr) {
      // The single-process servers park in Pause / RingEnter waiting for
      // completions; a signal is the only stimulus that reaches them there.
      server.cpu().Post(*single_server, kSigIo);
    }
  };

  auto end_request = [&](size_t k, bool error) {
    Request& r = reqs[k];
    if (r.ended) {
      return;
    }
    r.ended = true;
    const SimTime now = sim.Now();
    last_end = std::max(last_end, now);
    result.bytes += r.delivered;
    if (error) {
      ++result.errored;
    } else {
      ++result.completed;
    }
    if (r.span_owned) {
      KspanEnd(now, r.span, r.delivered, error);
    }
    if (hooks.on_end) {
      hooks.on_end(r.id, now, r.delivered, error);
    }
    ++done_total;
    ClientState& c = clients[static_cast<size_t>(r.client)];
    if (!c.queue.empty() && c.queue.front() == k) {
      c.queue.pop_front();
    }
    if (!c.queue.empty()) {
      ready_push(c.queue.front());
    }
  };

  // An aborted stream delivers nothing further; drop the client's pending
  // byte count for it so later requests' datagrams are not mis-credited.
  auto drop_expected = [&](size_t k) {
    ClientState& c = clients[static_cast<size_t>(reqs[k].client)];
    for (auto it = c.expect.begin(); it != c.expect.end(); ++it) {
      if (it->req == k) {
        c.expect.erase(it);
        return;
      }
    }
  };

  // Clients: host-side datagram sinks, re-armed from the delivery interrupt.
  for (int i = 0; i < config.n_clients; ++i) {
    ClientState& c = clients[static_cast<size_t>(i)];
    c.on_recv = [&, i](BufData, int64_t n) {
      ClientState& me = clients[static_cast<size_t>(i)];
      if (n > 0 && !me.expect.empty()) {
        Expected& e = me.expect.front();
        Request& r = reqs[e.req];
        r.delivered += n;
        e.remaining -= n;
        if (hooks.on_progress) {
          hooks.on_progress(r.id, sim.Now(), n);
        }
        if (e.remaining <= 0) {
          const size_t k = e.req;
          me.expect.pop_front();
          end_request(k, /*error=*/false);
        }
      }
      me.client_sock->RecvAsync(config.object_bytes, me.on_recv);
    };
    c.client_sock->RecvAsync(config.object_bytes, c.on_recv);
  }

  // Poisson arrival chain.  Arrival events are host bookkeeping: they mint
  // the request's root span, enqueue it, and wake the server.
  std::function<void(int)> arrive = [&](int k) {
    Request& r = reqs[static_cast<size_t>(k)];
    r.arrival = sim.Now();
    r.span_owned = KspanOwned();
    r.span = KspanBegin(r.arrival, "server.request", static_cast<int64_t>(r.id));
    if (hooks.on_start) {
      hooks.on_start(r.id, r.arrival);
    }
    ClientState& c = clients[static_cast<size_t>(r.client)];
    c.queue.push_back(static_cast<size_t>(k));
    if (c.queue.size() == 1) {
      ready_push(static_cast<size_t>(k));
    }
    if (k + 1 < total) {
      sim.At(when[static_cast<size_t>(k + 1)], [&arrive, k] { arrive(k + 1); });
    }
  };
  if (total > 0) {
    sim.At(when[0], [&arrive] { arrive(0); });
  }

  // Watchdog tick for the SLO monitor, self-rescheduling until the last
  // request ends.  The tick body touches no simulated state.  (`tick` is a
  // function-scope object: the rescheduling closure references it across
  // the whole run.)
  std::function<void()> tick;
  if (hooks.on_tick && config.tick > 0) {
    tick = [&] {
      hooks.on_tick(sim.Now());
      if (done_total < total) {
        sim.After(config.tick, tick);
      }
    };
    sim.After(config.tick, tick);
  }

  std::vector<Process*> procs;

  auto open_object = [&](Process& p, const Request& r) -> Task<int> {
    co_return co_await server.Open(p, "obj:o" + std::to_string(r.object), kOpenRead);
  };

  switch (config.mode) {
    case SubmitMode::kSyncLoop: {
      for (int w = 0; w < config.sync_workers; ++w) {
        procs.push_back(server.Spawn(
            "worker" + std::to_string(w), [&](Process& p) -> Task<> {
              // Program tables are per process: each worker loads its own copy.
              int kop_id = 0;
              if (!config.kop_program.stages.empty()) {
                kop_id = co_await server.KopLoad(p, config.kop_program);
              }
              while (true) {
                if (ready.empty()) {
                  if (served >= total) {
                    break;
                  }
                  co_await server.cpu().Sleep(p, &ready, kPriWait, /*interruptible=*/false);
                  continue;
                }
                const size_t k = ready.front();
                ready.pop_front();
                Request& r = reqs[k];
                ClientState& c = clients[static_cast<size_t>(r.client)];
                server.cpu().SetSpan(p, r.span);
                const int sfd = co_await open_object(p, r);
                if (sfd < 0) {
                  server.cpu().SetSpan(p, kNoSpan);
                  end_request(k, /*error=*/true);
                } else {
                  if (kop_id > 0) {
                    co_await server.KopAttach(p, sfd, kop_id);
                  }
                  const int dfd = server.OpenSocket(p, c.server_sock.get());
                  c.expect.push_back({k, r.nbytes});
                  const int64_t moved = co_await server.Splice(p, sfd, dfd, r.nbytes);
                  co_await server.Close(p, sfd);
                  co_await server.Close(p, dfd);
                  server.cpu().SetSpan(p, kNoSpan);
                  if (moved != r.nbytes) {
                    drop_expected(k);
                    end_request(k, /*error=*/true);
                  }
                }
                ++served;
                if (served >= total) {
                  server.cpu().Wakeup(&ready);  // release the other workers
                }
              }
            }));
      }
      break;
    }

    case SubmitMode::kFasyncSigio: {
      single_server = server.Spawn("server", [&](Process& p) -> Task<> {
        server.Sigaction(p, kSigIo, [&sigio_handled] { ++sigio_handled; });
        int kop_id = 0;
        if (!config.kop_program.stages.empty()) {
          kop_id = co_await server.KopLoad(p, config.kop_program);
        }
        for (ClientState& c : clients) {
          c.server_fd = server.OpenSocket(p, c.server_sock.get());
          co_await server.Fcntl(p, c.server_fd, /*fasync=*/true);
        }
        std::vector<size_t> inflight;
        while (served < total || !inflight.empty()) {
          bool progressed = false;
          // Probe completions first: SIGIO says "something finished", and
          // SpliceStatus (one trap per probe — sockets have no offset for
          // Tell) says which.
          for (auto it = inflight.begin(); it != inflight.end();) {
            Request& r = reqs[*it];
            ClientState& c = clients[static_cast<size_t>(r.client)];
            server.cpu().SetSpan(p, r.span);
            const int active = co_await server.SpliceStatus(p, c.server_fd);
            if (active != 0) {
              server.cpu().SetSpan(p, kNoSpan);
              ++it;
              continue;
            }
            const int err = co_await server.SpliceError(p, c.server_fd);
            co_await server.Close(p, r.src_fd);
            server.cpu().SetSpan(p, kNoSpan);
            if (err != 0) {
              drop_expected(*it);
              end_request(*it, /*error=*/true);
            }
            it = inflight.erase(it);
            progressed = true;
          }
          while (!ready.empty()) {
            const size_t k = ready.front();
            ready.pop_front();
            Request& r = reqs[k];
            ClientState& c = clients[static_cast<size_t>(r.client)];
            server.cpu().SetSpan(p, r.span);
            r.src_fd = co_await open_object(p, r);
            if (r.src_fd < 0) {
              server.cpu().SetSpan(p, kNoSpan);
              end_request(k, /*error=*/true);
              ++served;
              continue;
            }
            if (kop_id > 0) {
              co_await server.KopAttach(p, r.src_fd, kop_id);
            }
            c.expect.push_back({k, r.nbytes});
            const int64_t rc = co_await server.Splice(p, r.src_fd, c.server_fd, r.nbytes);
            ++served;
            if (rc != 0) {
              const int err = co_await server.SpliceError(p, c.server_fd);
              (void)err;
              co_await server.Close(p, r.src_fd);
              server.cpu().SetSpan(p, kNoSpan);
              drop_expected(k);
              end_request(k, /*error=*/true);
              continue;
            }
            server.cpu().SetSpan(p, kNoSpan);
            inflight.push_back(k);
            progressed = true;
          }
          if (served >= total && inflight.empty()) {
            break;
          }
          if (!progressed && ready.empty()) {
            co_await server.Pause(p);  // SIGIO: completion or arrival
          }
        }
      });
      procs.push_back(single_server);
      break;
    }

    case SubmitMode::kRing: {
      single_server = server.Spawn("server", [&](Process& p) -> Task<> {
        server.Sigaction(p, kSigIo, [&sigio_handled] { ++sigio_handled; });
        int kop_id = 0;
        if (!config.kop_program.stages.empty()) {
          kop_id = co_await server.KopLoad(p, config.kop_program);
        }
        for (ClientState& c : clients) {
          c.server_fd = server.OpenSocket(p, c.server_sock.get());
        }
        RingConfig rc;
        rc.sq_entries = config.n_clients + 8;
        rc.cq_entries = config.n_clients + 8;
        rc.max_inflight = config.ring_inflight;
        const int ring = co_await server.RingSetup(p, rc);
        std::vector<SpliceCqe> cqes(static_cast<size_t>(config.n_clients) + 8);
        int inflight = 0;
        while (served < total || inflight > 0) {
          while (!ready.empty()) {
            const size_t k = ready.front();
            ready.pop_front();
            Request& r = reqs[k];
            ClientState& c = clients[static_cast<size_t>(r.client)];
            server.cpu().SetSpan(p, r.span);
            r.src_fd = co_await open_object(p, r);
            if (r.src_fd < 0) {
              server.cpu().SetSpan(p, kNoSpan);
              end_request(k, /*error=*/true);
              ++served;
              continue;
            }
            c.expect.push_back({k, r.nbytes});
            SpliceSqe sqe;
            sqe.src_fd = r.src_fd;
            sqe.dst_fd = c.server_fd;
            sqe.nbytes = r.nbytes;
            sqe.cookie = static_cast<uint64_t>(k);
            sqe.kop_id = kop_id;  // 0 = no operator; no per-request attach trap
            server.RingPrepare(p, ring, sqe);
            // Submit-only enter under the request's span, so the minted
            // aio.op (and the splice stream under it) parents here.
            co_await server.RingEnter(p, ring, 1, 0);
            server.cpu().SetSpan(p, kNoSpan);
            ++served;
            ++inflight;
          }
          if (inflight == 0) {
            if (served >= total) {
              break;
            }
            co_await server.cpu().Sleep(p, &ready, kPriWait, /*interruptible=*/false);
            continue;
          }
          // Wait for at least one completion; an arrival's SIGIO also breaks
          // this wait so queued requests are not stuck behind a slow stream.
          co_await server.RingEnter(p, ring, 0, 1);
          const int got = server.RingHarvest(p, ring, cqes.data(),
                                             static_cast<int>(cqes.size()));
          for (int i = 0; i < got; ++i) {
            const size_t k = static_cast<size_t>(cqes[static_cast<size_t>(i)].cookie);
            Request& r = reqs[k];
            server.cpu().SetSpan(p, r.span);
            co_await server.Close(p, r.src_fd);
            server.cpu().SetSpan(p, kNoSpan);
            if (cqes[static_cast<size_t>(i)].error != 0 ||
                cqes[static_cast<size_t>(i)].result != r.nbytes) {
              drop_expected(k);
              end_request(k, /*error=*/true);
            }
            --inflight;
          }
        }
      });
      procs.push_back(single_server);
      break;
    }
  }

  sim.Run();

  result.end_time = last_end;
  result.sigio_handled = sigio_handled;
  for (const Process* p : procs) {
    result.server_traps += p->stats().syscall_traps;
  }
  result.server_cpu = server.cpu().stats();
  result.client_cpu = client.cpu().stats();
  result.attribution = server.cpu().attribution();
  for (const auto& [key, dur] : client.cpu().attribution()) {
    result.attribution[key] += dur;
  }
  std::string err;
  result.closure_ok = server.cpu().CheckAttributionClosure(&err);
  if (!result.closure_ok) {
    result.closure_err = "server: " + err;
  } else {
    result.closure_ok = client.cpu().CheckAttributionClosure(&err);
    if (!result.closure_ok) {
      result.closure_err = "client: " + err;
    }
  }
  result.ok = result.closure_ok && result.errored == 0 &&
              result.completed == static_cast<uint64_t>(total);
  return result;
}

}  // namespace ikdp
