// The paper's user programs, as simulated-process coroutines.
//
//  * CpProgram — the UNIX cp used in the CP environments: an 8 KB
//    read()/write() loop through the buffer cache, with fsync() on the
//    destination "to ensure write-through behavior" (Section 6.1).
//  * ScpProgram — the splice-based copy (scp): open both files and issue
//    one splice(src, dst, SPLICE_EOF).
//  * TestProgram — the CPU-bound test program whose progress rate measures
//    CPU availability (Section 6.2): a loop of fixed-cost operations.

#ifndef SRC_WORKLOAD_PROGRAMS_H_
#define SRC_WORKLOAD_PROGRAMS_H_

#include <cstdint>
#include <string>

#include "src/os/kernel.h"

namespace ikdp {

struct CopyResult {
  int64_t bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool ok = false;

  double ElapsedSeconds() const { return ToSeconds(end - start); }
  // KB/s as the paper reports (1 KB = 1024 bytes).
  double ThroughputKbs() const {
    const double secs = ElapsedSeconds();
    return secs > 0 ? static_cast<double>(bytes) / 1024.0 / secs : 0.0;
  }
};

// cp: read/write in `chunk`-byte units (the paper's 8 KB blocks), then fsync.
Task<> CpProgram(Kernel& k, Process& p, std::string src, std::string dst, int64_t chunk,
                 CopyResult* out);

// scp: a single synchronous whole-file splice.
Task<> ScpProgram(Kernel& k, Process& p, std::string src, std::string dst, CopyResult* out);

struct TestProgramState {
  bool stop = false;
  int64_t ops = 0;
};

// The CPU-bound test program: runs ops of `op_cost` until state->stop.
Task<> TestProgram(Kernel& k, Process& p, SimDuration op_cost, TestProgramState* state);

}  // namespace ikdp

#endif  // SRC_WORKLOAD_PROGRAMS_H_
