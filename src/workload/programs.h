// The paper's user programs, as simulated-process coroutines.
//
//  * CpProgram — the UNIX cp used in the CP environments: an 8 KB
//    read()/write() loop through the buffer cache, with fsync() on the
//    destination "to ensure write-through behavior" (Section 6.1).
//  * ScpProgram — the splice-based copy (scp): open both files and issue
//    one splice(src, dst, SPLICE_EOF).
//  * TestProgram — the CPU-bound test program whose progress rate measures
//    CPU availability (Section 6.2): a loop of fixed-cost operations.
//  * MultiStreamCopyProgram — N concurrent splice streams driven from one
//    process, submitted one of three ways (a synchronous splice loop, the
//    paper's FASYNC+SIGIO, or the splice ring).  The per-mode trap ledger
//    is what bench_aio_ring compares.

#ifndef SRC_WORKLOAD_PROGRAMS_H_
#define SRC_WORKLOAD_PROGRAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/os/kernel.h"

namespace ikdp {

struct CopyResult {
  int64_t bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool ok = false;

  double ElapsedSeconds() const { return ToSeconds(end - start); }
  // KB/s as the paper reports (1 KB = 1024 bytes).
  double ThroughputKbs() const {
    const double secs = ElapsedSeconds();
    return secs > 0 ? static_cast<double>(bytes) / 1024.0 / secs : 0.0;
  }
};

// cp: read/write in `chunk`-byte units (the paper's 8 KB blocks), then fsync.
Task<> CpProgram(Kernel& k, Process& p, std::string src, std::string dst, int64_t chunk,
                 CopyResult* out);

// scp: a single synchronous whole-file splice.
Task<> ScpProgram(Kernel& k, Process& p, std::string src, std::string dst, CopyResult* out);

struct TestProgramState {
  bool stop = false;
  int64_t ops = 0;
};

// The CPU-bound test program: runs ops of `op_cost` until state->stop.
Task<> TestProgram(Kernel& k, Process& p, SimDuration op_cost, TestProgramState* state);

// How MultiStreamCopyProgram submits its splices.
enum class SubmitMode {
  kSyncLoop,     // one synchronous splice at a time (no overlap)
  kFasyncSigio,  // the paper's mechanism: N async splices, SIGIO + tell() polls
  kRing,         // the splice ring: one RingEnter batch, trapless harvest
};

// One stream: src is spliced to dst.  `nbytes` must be explicit (not
// kSpliceEof): FASYNC completion detection polls the destination offset
// against it, and the ring modes keep the same contract for comparability.
struct StreamSpec {
  std::string src;
  std::string dst;
  int64_t nbytes = 0;
};

struct MultiStreamResult {
  int64_t bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool ok = false;
  int streams_completed = 0;
  // Streams that finished with an errno instead of their full byte count
  // (fault plans make these routine).  completed + errored always equals the
  // stream count unless submission itself failed; `ok` stays strict: every
  // stream moved every byte.
  int streams_errored = 0;
  int first_errno = 0;
  // kRing only: CQEs harvested.  One CQE per SQE even when streams error or
  // a LINKED group cancels, so this must equal the stream count.
  int ring_cqes = 0;
  // Mode-switch ledger over the run (delta of Process::Stats).
  SimDuration trap_time = 0;
  uint64_t syscall_traps = 0;
  uint64_t sigio_handled = 0;  // FASYNC mode only

  double ElapsedSeconds() const { return ToSeconds(end - start); }
  double ThroughputKbs() const {
    const double secs = ElapsedSeconds();
    return secs > 0 ? static_cast<double>(bytes) / 1024.0 / secs : 0.0;
  }
};

// Copies every stream concurrently (modes kFasyncSigio/kRing) or back to
// back (kSyncLoop) from a single process, and fills `out` with aggregate
// throughput plus the trap ledger.  `ring_config` is used by kRing only.
Task<> MultiStreamCopyProgram(Kernel& k, Process& p, SubmitMode mode,
                              std::vector<StreamSpec> streams, MultiStreamResult* out,
                              RingConfig ring_config = {});

}  // namespace ikdp

#endif  // SRC_WORKLOAD_PROGRAMS_H_
