#include "src/workload/programs.h"

#include <utility>
#include <vector>

namespace ikdp {

Task<> CpProgram(Kernel& k, Process& p, std::string src, std::string dst, int64_t chunk,
                 CopyResult* out) {
  out->start = k.sim()->Now();
  const int sfd = co_await k.Open(p, src, kOpenRead);
  const int dfd = co_await k.Open(p, dst, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (sfd < 0 || dfd < 0) {
    out->end = k.sim()->Now();
    co_return;
  }
  std::vector<uint8_t> buf;
  for (;;) {
    const int64_t n = co_await k.Read(p, sfd, chunk, &buf);
    if (n <= 0) {
      break;
    }
    const int64_t put = co_await k.Write(p, dfd, buf.data(), n);
    if (put != n) {
      break;
    }
    out->bytes += n;
  }
  co_await k.FsyncFd(p, dfd);
  co_await k.Close(p, sfd);
  co_await k.Close(p, dfd);
  out->end = k.sim()->Now();
  out->ok = true;
}

Task<> ScpProgram(Kernel& k, Process& p, std::string src, std::string dst, CopyResult* out) {
  out->start = k.sim()->Now();
  const int sfd = co_await k.Open(p, src, kOpenRead);
  const int dfd = co_await k.Open(p, dst, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (sfd < 0 || dfd < 0) {
    out->end = k.sim()->Now();
    co_return;
  }
  const int64_t moved = co_await k.Splice(p, sfd, dfd, kSpliceEof);
  out->bytes = moved > 0 ? moved : 0;
  co_await k.Close(p, sfd);
  co_await k.Close(p, dfd);
  out->end = k.sim()->Now();
  out->ok = moved >= 0;
}

Task<> TestProgram(Kernel& k, Process& p, SimDuration op_cost, TestProgramState* state) {
  while (!state->stop) {
    co_await k.cpu().Use(p, op_cost);
    ++state->ops;
  }
}

Task<> MultiStreamCopyProgram(Kernel& k, Process& p, SubmitMode mode,
                              std::vector<StreamSpec> streams, MultiStreamResult* out,
                              RingConfig ring_config) {
  out->start = k.sim()->Now();
  const SimDuration trap_time0 = p.stats().trap_time;
  const uint64_t traps0 = p.stats().syscall_traps;
  auto finish = [&](bool ok) {
    out->end = k.sim()->Now();
    out->ok = ok;
    out->trap_time = p.stats().trap_time - trap_time0;
    out->syscall_traps = p.stats().syscall_traps - traps0;
  };

  const int n = static_cast<int>(streams.size());
  std::vector<int> sfd(n, -1);
  std::vector<int> dfd(n, -1);
  bool open_ok = true;
  for (int i = 0; i < n; ++i) {
    if (streams[i].nbytes <= 0) {
      open_ok = false;  // explicit sizes only; see StreamSpec
      break;
    }
    sfd[i] = co_await k.Open(p, streams[i].src, kOpenRead);
    dfd[i] = co_await k.Open(p, streams[i].dst, kOpenWrite | kOpenCreate | kOpenTrunc);
    if (sfd[i] < 0 || dfd[i] < 0) {
      open_ok = false;
      break;
    }
  }
  if (!open_ok) {
    finish(false);
    co_return;
  }

  bool moved_ok = true;
  switch (mode) {
    case SubmitMode::kSyncLoop: {
      for (int i = 0; i < n; ++i) {
        const int64_t moved = co_await k.Splice(p, sfd[i], dfd[i], streams[i].nbytes);
        if (moved != streams[i].nbytes) {
          moved_ok = false;
          ++out->streams_errored;
          const int err = co_await k.SpliceError(p, dfd[i]);
          if (out->first_errno == 0 && err != 0) {
            out->first_errno = err;
          }
          continue;
        }
        out->bytes += moved;
        ++out->streams_completed;
      }
      break;
    }
    case SubmitMode::kFasyncSigio: {
      // The paper's interface: one SIGIO per completion, no per-operation
      // status, and signals coalesce while pending.  The only way to learn
      // WHICH splice finished is to poll each destination offset with
      // tell(2) — a full trap per probe.
      uint64_t sigio_seen = 0;
      k.Sigaction(p, kSigIo, [&sigio_seen] { ++sigio_seen; });
      std::vector<bool> done(n, false);
      int remaining = n;
      for (int i = 0; i < n; ++i) {
        if (co_await k.Fcntl(p, dfd[i], /*fasync=*/true) != 0 ||
            co_await k.Splice(p, sfd[i], dfd[i], streams[i].nbytes) != 0) {
          // Setup refused this stream (e.g. its destination premap hit an
          // unreadable indirect block).  It is already over — count it
          // errored and keep waiting for the streams that did launch.
          moved_ok = false;
          done[i] = true;
          --remaining;
          ++out->streams_errored;
          const int err = co_await k.SpliceError(p, dfd[i]);
          if (out->first_errno == 0 && err != 0) {
            out->first_errno = err;
          }
        }
      }
      while (remaining > 0) {
        const uint64_t sweep_start = sigio_seen;
        for (int i = 0; i < n; ++i) {
          if (done[i]) {
            continue;
          }
          const int64_t off = co_await k.Tell(p, dfd[i]);
          if (off >= streams[i].nbytes) {
            done[i] = true;
            --remaining;
            out->bytes += streams[i].nbytes;
            ++out->streams_completed;
            continue;
          }
          // The offset stalls short of the target both while the stream is
          // still moving and after a mid-stream error, so an unfinished
          // stream costs a second probe trap to rule the error out.  Without
          // it an aborted stream would leave this loop pausing forever.
          const int err = co_await k.SpliceError(p, dfd[i]);
          if (err != 0) {
            done[i] = true;
            --remaining;
            ++out->streams_errored;
            if (out->first_errno == 0) {
              out->first_errno = err;
            }
            moved_ok = false;
          }
        }
        if (remaining == 0) {
          break;
        }
        // A completion that landed during the sweep was already polled past;
        // its signal is consumed, so pausing could hang.  Re-sweep instead.
        if (sigio_seen != sweep_start) {
          continue;
        }
        co_await k.Pause(p);
      }
      out->sigio_handled = sigio_seen;
      break;
    }
    case SubmitMode::kRing: {
      const int ring = co_await k.RingSetup(p, ring_config);
      if (ring < 0) {
        moved_ok = false;
        break;
      }
      for (int i = 0; i < n; ++i) {
        SpliceSqe sqe;
        sqe.src_fd = sfd[i];
        sqe.dst_fd = dfd[i];
        sqe.nbytes = streams[i].nbytes;
        sqe.cookie = static_cast<uint64_t>(i);
        k.RingPrepare(p, ring, sqe);
      }
      // ONE trap submits the batch and waits for every completion; the
      // harvest below reads posted CQEs without re-entering the kernel.
      const int rc = co_await k.RingEnter(p, ring, n, n);
      if (rc != n) {
        moved_ok = false;
      }
      std::vector<SpliceCqe> cqes(static_cast<size_t>(n) + 1);
      const int got = k.RingHarvest(p, ring, cqes.data(), n);
      out->ring_cqes = got;
      for (int i = 0; i < got; ++i) {
        const int idx = static_cast<int>(cqes[i].cookie);
        if (idx < 0 || idx >= n) {
          moved_ok = false;
          continue;
        }
        if (cqes[i].error != 0) {
          moved_ok = false;
          ++out->streams_errored;
          if (out->first_errno == 0) {
            out->first_errno = cqes[i].error;
          }
          continue;
        }
        if (cqes[i].result != streams[idx].nbytes) {
          moved_ok = false;
          continue;
        }
        out->bytes += cqes[i].result;
        ++out->streams_completed;
      }
      if (got != n) {
        moved_ok = false;
      }
      break;
    }
  }

  for (int i = 0; i < n; ++i) {
    co_await k.Close(p, sfd[i]);
    co_await k.Close(p, dfd[i]);
  }
  finish(moved_ok && out->streams_completed == n);
}

}  // namespace ikdp
