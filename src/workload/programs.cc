#include "src/workload/programs.h"

#include <utility>
#include <vector>

namespace ikdp {

Task<> CpProgram(Kernel& k, Process& p, std::string src, std::string dst, int64_t chunk,
                 CopyResult* out) {
  out->start = k.sim()->Now();
  const int sfd = co_await k.Open(p, src, kOpenRead);
  const int dfd = co_await k.Open(p, dst, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (sfd < 0 || dfd < 0) {
    out->end = k.sim()->Now();
    co_return;
  }
  std::vector<uint8_t> buf;
  for (;;) {
    const int64_t n = co_await k.Read(p, sfd, chunk, &buf);
    if (n <= 0) {
      break;
    }
    const int64_t put = co_await k.Write(p, dfd, buf.data(), n);
    if (put != n) {
      break;
    }
    out->bytes += n;
  }
  co_await k.FsyncFd(p, dfd);
  co_await k.Close(p, sfd);
  co_await k.Close(p, dfd);
  out->end = k.sim()->Now();
  out->ok = true;
}

Task<> ScpProgram(Kernel& k, Process& p, std::string src, std::string dst, CopyResult* out) {
  out->start = k.sim()->Now();
  const int sfd = co_await k.Open(p, src, kOpenRead);
  const int dfd = co_await k.Open(p, dst, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (sfd < 0 || dfd < 0) {
    out->end = k.sim()->Now();
    co_return;
  }
  const int64_t moved = co_await k.Splice(p, sfd, dfd, kSpliceEof);
  out->bytes = moved > 0 ? moved : 0;
  co_await k.Close(p, sfd);
  co_await k.Close(p, dfd);
  out->end = k.sim()->Now();
  out->ok = moved >= 0;
}

Task<> TestProgram(Kernel& k, Process& p, SimDuration op_cost, TestProgramState* state) {
  while (!state->stop) {
    co_await k.cpu().Use(p, op_cost);
    ++state->ops;
  }
}

}  // namespace ikdp
