// SpliceServer: a many-client file-to-UDP media server workload.
//
// The paper's motivating scenario scaled to a fleet: N simulated clients
// (default 1000) issue requests against a server that streams disk-resident
// objects to each client's private UDP socket with splice.  Arrivals are a
// Poisson process (exponential inter-arrival times) and object popularity is
// Zipf-distributed, so the buffer cache sees a realistic hot set.  The same
// request stream can be served three ways — the SubmitMode axis the rest of
// the suite measures:
//
//   kSyncLoop    a pool of worker processes, one blocking splice each
//   kFasyncSigio one server process, FASYNC splices, SIGIO + SpliceStatus
//                probes (sockets have no offset for Tell to poll)
//   kRing        one server process driving a splice ring
//
// Requests are serialized per client (a client has at most one stream in
// flight), so client-side byte counting can attribute every delivered
// datagram to exactly one request.  Clients are host-side datagram sinks
// (RecvAsync re-armed from the delivery interrupt), not simulated processes:
// 1000 clients cost 1000 sockets, not 1000 kernel stacks.
//
// Observability is the point of the workload:
//
//  * Each request gets a ROOT kspan ("server.request") minted at arrival,
//    ended at the last delivered byte (or at the server-side error), so the
//    whole in-kernel path — splice stream, disk transfers, wire occupancy,
//    completion interrupts — attributes to the request that caused it
//    (src/sim/kspan.h).  The server process re-labels itself with
//    CpuSystem::SetSpan around each request's syscalls.
//  * SpliceServerHooks reports request starts, per-datagram progress, ends,
//    and a periodic tick in simulated time — exactly the feed an online SLO
//    monitor (src/metrics/slo.h) needs.  Hooks are host-side observers; the
//    run is byte-identical with and without them.
//
// RunSpliceServer builds the whole machine (server kernel + ramdisk fs,
// client kernel, one Ethernet link per client), runs the request stream to
// completion, checks the CPU attribution closure on both CPUs, and returns
// the merged ledger so callers can export per-request breakdowns.

#ifndef SRC_WORKLOAD_SPLICE_SERVER_H_
#define SRC_WORKLOAD_SPLICE_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/kern/cpu.h"
#include "src/kop/kop.h"
#include "src/sim/time.h"
#include "src/workload/programs.h"

namespace ikdp {

struct SpliceServerConfig {
  int n_clients = 1000;
  int n_objects = 64;              // distinct objects on the server disk
  int64_t object_bytes = 8 * kBlockSize;  // per-request transfer size
  int total_requests = 2000;

  // Poisson arrival process: aggregate request rate (requests per simulated
  // second) and the Zipf popularity exponent for object selection.
  double offered_rps = 4000.0;
  double zipf_s = 1.0;

  SubmitMode mode = SubmitMode::kSyncLoop;
  int sync_workers = 8;    // worker-pool width (kSyncLoop only)
  int ring_inflight = 64;  // splice-engine concurrency (kRing only)

  // Optional in-kernel operator (src/kop) run over every request's stream:
  // loaded once per server process (kop_load) and bound to each request —
  // kop_attach on the source fd in the syscall modes, SQE kop_id on the
  // ring.  Empty stages = no operator, the byte-identical pre-kop server.
  // Completion accounting counts client-delivered bytes, so programs here
  // must not drop chunks (checksum / transform; a filter marks every
  // request short-delivered and therefore errored).
  KopProgram kop_program;

  uint64_t seed = 1;

  // Cadence of SpliceServerHooks::on_tick (0 disables ticking).
  SimDuration tick = Milliseconds(100);
};

// Host-side observers of the request stream, in simulated time.  All
// optional; none may advance the simulation.
struct SpliceServerHooks {
  // A request entered the system (Poisson arrival).
  std::function<void(uint64_t id, SimTime t)> on_start;
  // A datagram for the request reached its client.
  std::function<void(uint64_t id, SimTime t, int64_t nbytes)> on_progress;
  // The request left the system: all bytes delivered, or the server aborted
  // it (`error`).  `bytes` is what actually reached the client.
  std::function<void(uint64_t id, SimTime t, int64_t bytes, bool error)> on_end;
  // Fires every SpliceServerConfig::tick until the last request ends —
  // drive SloMonitor::CheckStalls from here.
  std::function<void(SimTime now)> on_tick;
};

struct SpliceServerResult {
  uint64_t requests = 0;   // arrivals issued (== config.total_requests)
  uint64_t completed = 0;  // delivered in full
  uint64_t errored = 0;    // aborted server-side
  int64_t bytes = 0;       // total bytes delivered to clients
  SimTime end_time = 0;    // sim clock when the machine went quiet

  uint64_t server_traps = 0;   // syscall traps across all server processes
  uint64_t sigio_handled = 0;  // SIGIO deliveries (kFasyncSigio / kRing)

  CpuSystem::Stats server_cpu;
  CpuSystem::Stats client_cpu;

  // Both CPUs' attribution ledgers merged (same key -> summed), taken after
  // the run; join with the attached KspanCollector for per-request views.
  std::map<CpuSystem::ChargeKey, SimDuration> attribution;

  // CheckAttributionClosure on both CPUs.  This is an acceptance gate, not a
  // report: benches abort when it fails.
  bool closure_ok = false;
  std::string closure_err;

  bool ok = false;  // every request completed, none errored, closure holds
};

// Runs the whole workload to completion on a private machine.  Attach a
// KspanCollector (AttachKspan) before calling to record span trees; the
// simulated timeline is identical either way.
SpliceServerResult RunSpliceServer(const SpliceServerConfig& config,
                                   const SpliceServerHooks& hooks = {});

}  // namespace ikdp

#endif  // SRC_WORKLOAD_SPLICE_SERVER_H_
