// Splice endpoints: the abstraction the engine pumps data between.
//
// The paper's implementation supports file-to-file, socket-to-socket (UDP),
// and framebuffer-to-socket splices, plus file-to-device playback in its
// example code.  The engine (splice_engine.h) is endpoint-agnostic: a source
// produces chunks asynchronously, a sink consumes them asynchronously, and
// everything in between — callout-deferred write handlers, rate-based flow
// control, shared data areas — is common mechanism.
//
// A chunk is at most one file block.  For file endpoints, `data` is the
// cache buffer's data area and `src_buf` the cache buffer itself, so the
// sink can alias the same memory (the paper's zero-copy buffer-header trick)
// and the engine can release the buffer when the sink is done.

#ifndef SRC_SPLICE_ENDPOINT_H_
#define SRC_SPLICE_ENDPOINT_H_

#include <cstdint>
#include <functional>

#include "src/buf/buf.h"
#include "src/kern/ctx.h"

namespace ikdp {

struct SpliceChunk {
  int64_t index = 0;   // sequence number within the splice
  int64_t nbytes = 0;  // valid payload bytes (0 = end-of-file marker)
  BufData data;        // shared data area
  Buf* src_buf = nullptr;  // cache buffer to release (file sources)
  // Errno of a failed transfer, 0 on success.  Read side: set by the source
  // before delivering the chunk (kBufError's b_error); aborts the splice.
  // Write side: the sink records the errno here before calling done(false) —
  // the chunk outlives the StartWrite call, so writing through the chunk
  // pointer is safe until `done` fires.
  int error = 0;
};

class SpliceSource {
 public:
  virtual ~SpliceSource() = default;

  // Total bytes this source will produce, or -1 when unknown (streams).
  virtual int64_t TotalBytes() const = 0;

  // Preferred chunk payload size.
  virtual int64_t ChunkBytes() const = 0;

  // Starts the asynchronous read of chunk `index`.  `done` fires in kernel
  // context (interrupt level, or synchronously for cache hits) with the
  // chunk; nbytes == 0 signals end of stream.  Returns false if the read
  // cannot be started right now (no buffer, request already outstanding) —
  // the engine retries on the next softclock tick or flow-control event.
  IKDP_CTX_ANY virtual bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) = 0;

  // Releases source-side resources of a chunk whose write completed.
  IKDP_CTX_ANY virtual void Release(SpliceChunk& chunk) = 0;

  // Aborts an outstanding StartRead whose `done` will otherwise never fire
  // because no more data is coming (stream sources blocked on a peer, e.g.
  // a pipe or socket recv).  Returns true if a pending read was dropped —
  // its `done` callback will NOT be invoked and the engine adjusts its
  // counters.  Sources whose reads always complete (disk: biodone is
  // guaranteed) keep the default and return false.
  IKDP_CTX_ANY virtual bool CancelRead() { return false; }
};

class SpliceSink {
 public:
  virtual ~SpliceSink() = default;

  // Starts writing `chunk`; `done(ok)` fires in kernel context when the sink
  // has consumed it (ok == false: unrecoverable write error, which aborts
  // the splice; the sink stores the errno in chunk.error first).  Returns
  // false if the sink cannot accept right now (device FIFO or socket buffer
  // full) — the engine retries on the next softclock tick, and must not
  // have retained `done`.
  IKDP_CTX_ANY virtual bool StartWrite(SpliceChunk& chunk, std::function<void(bool ok)> done) = 0;
};

}  // namespace ikdp

#endif  // SRC_SPLICE_ENDPOINT_H_
