#include "src/splice/file_endpoint.h"

#include <algorithm>
#include <cassert>

#include "src/hw/fault.h"

namespace ikdp {

bool FileSpliceSource::StartRead(int64_t index, std::function<void(SpliceChunk)> done) {
  assert(index >= 0 && index < static_cast<int64_t>(block_map_.size()));
  const int64_t pbn = block_map_[static_cast<size_t>(index)];
  const int64_t nbytes = std::min<int64_t>(kBlockSize, total_bytes_ - index * kBlockSize);
  return cache_->BreadAsync(dev_, pbn, [index, nbytes, done = std::move(done)](Buf& b) {
    SpliceChunk chunk;
    chunk.index = index;
    chunk.nbytes = nbytes;
    chunk.data = b.data;
    chunk.src_buf = &b;
    chunk.error = b.Has(kBufError) ? (b.error != 0 ? b.error : kErrIo) : 0;
    b.logical_blkno = index;
    done(std::move(chunk));
  });
}

void FileSpliceSource::Release(SpliceChunk& chunk) {
  if (chunk.src_buf != nullptr) {
    cache_->Brelse(chunk.src_buf);
    chunk.src_buf = nullptr;
  }
}

bool FileSpliceSink::StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) {
  assert(chunk.index >= 0 && chunk.index < static_cast<int64_t>(block_map_.size()));
  const int64_t pbn = block_map_[static_cast<size_t>(chunk.index)];
  // "The physical block number is used to request a buffer header using a
  // modified version of getblk() which avoids allocating any real memory to
  // the buffer ... the data pointer [is] altered to point to the same
  // address the data pointer in the read-side buffer does, so both buffers
  // share a common data area."  (Section 5.2.3)
  Buf* w = cache_->AllocTransientHeader(dev_, pbn);
  w->data = chunk.data;
  w->bcount = kBlockSize;  // whole-block write; tail bytes beyond nbytes are 0
  w->logical_blkno = chunk.index;
  w->splice_peer = chunk.src_buf;
  BufferCache* cache = cache_;
  SpliceChunk* cp = &chunk;  // outlives StartWrite; valid until done() fires
  cache_->BawriteAsync(w, [cache, cp, done = std::move(done)](Buf& wb) {
    const bool ok = !wb.Has(kBufError);
    if (!ok) {
      cp->error = wb.error != 0 ? wb.error : kErrIo;
    }
    cache->FreeTransientHeader(&wb);
    done(ok);
  });
  return true;
}

}  // namespace ikdp
