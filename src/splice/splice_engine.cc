#include "src/splice/splice_engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/hw/fault.h"
#include "src/sim/krace.h"

namespace ikdp {

// Krace probes: every mutation of a descriptor's flow-control state is a
// plain WRITE on the field group "SpliceDescriptor::counters" — two handler
// invocations for the same descriptor with no happens-before edge would be a
// genuine ordering bug (the counters are read-modify-write).  The ready_
// queue handoff from ReadDone (interrupt) to DrainWrites (softclock) is
// carried by the `callout` ordering channel keyed on &d->ready_.

SpliceEngine::SpliceEngine(CpuSystem* cpu, CalloutTable* callouts)
    : cpu_(cpu), callouts_(callouts) {}

void SpliceEngine::Charge(SimDuration d) {
  if (cpu_->InInterrupt()) {
    cpu_->ChargeInterrupt(d);
  } else {
    // Process context: a handler ran synchronously under a Start call (the
    // RAM disk completes reads inline).  Dropping the cost here would make
    // spliced setup look cheaper than it is; park it for the syscall layer
    // to charge to the calling process via TakeSyncCharge.
    pending_sync_charge_ += d;
  }
}

void SpliceEngine::ChargeKopCost(SimDuration d) {
  if (cpu_->InInterrupt()) {
    cpu_->ChargeKop(d);
  } else {
    pending_sync_kop_charge_ += d;
  }
}

void SpliceEngine::Softclock(SpanId span, std::function<void()> fn) {
  callouts_->ScheduleHead([this, span, fn = std::move(fn)] {
    // The scope covers the RunInterrupt call so the raise-time attribution
    // tag (and the softclock classification) carries the stream's span.
    KspanScope scope("splice", span);
    cpu_->RunInterrupt(cpu_->costs().softclock_per_callout, fn);
  });
}

SpliceDescriptor* SpliceEngine::Start(std::unique_ptr<SpliceSource> source,
                                      std::unique_ptr<SpliceSink> sink, SpliceOptions opts,
                                      std::function<void(int64_t)> on_complete) {
  return StartEx(std::move(source), std::move(sink), opts,
                 [cb = std::move(on_complete)](const SpliceCompletion& c) {
                   cb(c.io_error ? -1 : c.bytes_moved);
                 });
}

SpliceDescriptor* SpliceEngine::StartEx(std::unique_ptr<SpliceSource> source,
                                        std::unique_ptr<SpliceSink> sink, SpliceOptions opts,
                                        std::function<void(const SpliceCompletion&)> on_complete) {
  std::vector<std::unique_ptr<SpliceSink>> sinks;
  sinks.push_back(std::move(sink));
  return StartMulti(std::move(source), std::move(sinks), opts, std::move(on_complete));
}

SpliceDescriptor* SpliceEngine::StartMulti(
    std::unique_ptr<SpliceSource> source, std::vector<std::unique_ptr<SpliceSink>> sinks,
    SpliceOptions opts, std::function<void(const SpliceCompletion&)> on_complete) {
  // Reject-unverified-program: the engine is the last line of defence; the
  // bind sites (kop_attach, ResolveSqe) return kErrInval long before this.
  if (opts.kop_program != nullptr && !opts.kop_program->verified) {
    ContractAbort("splice: unverified kop program attached");
  }
  const int want_sinks = opts.kop_program != nullptr ? opts.kop_program->SinkCount() : 1;
  if (want_sinks != static_cast<int>(sinks.size())) {
    ContractAbort("splice: kop program wants %d sinks, splice has %d", want_sinks,
                  static_cast<int>(sinks.size()));
  }
  auto owned = std::make_unique<SpliceDescriptor>();
  SpliceDescriptor* d = owned.get();
  d->source_ = std::move(source);
  d->sinks_ = std::move(sinks);
  d->opts_ = opts;
  d->on_complete_ = std::move(on_complete);
  const int64_t total = d->source_->TotalBytes();
  int64_t chunks_total = -1;
  if (total >= 0) {
    const int64_t chunk = d->source_->ChunkBytes();
    chunks_total = (total + chunk - 1) / chunk;
  }
  d->lock_.Acquire();
  d->chunks_total_ = chunks_total;
  d->lock_.Release();
  descriptors_[d] = std::move(owned);
  ++stats_.splices_started;
  d->serial_ = stats_.splices_started;
  d->started_at_ = cpu_->sim()->Now();
  // The stream's span: a fresh child of the requester's span (the cursor —
  // the calling process, a ring op, or nothing) when a collector is
  // attached; the requester's span itself otherwise.
  d->span_owned_ = KspanOwned();
  d->span_ = KspanBegin(cpu_->sim()->Now(), "splice.stream",
                        static_cast<int64_t>(d->serial_));
  KspanScope scope("splice", d->span_);
  if (cpu_->trace() != nullptr) {
    cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceStart,
                          static_cast<int64_t>(d->serial_), chunks_total);
  }
  if (chunks_total == 0) {
    // Empty transfer: finish immediately (still asynchronously, so callers
    // always see completion after Start returns).
    Softclock(d->span_, [this, d] { MaybeFinish(d); });
    return d;
  }
  IssueReads(d);
  return d;
}

void SpliceEngine::Cancel(SpliceDescriptor* d) {
  KspanScope scope("splice", d->span_);
  d->lock_.Acquire();
  if (d->finished_) {
    d->lock_.Release();
    return;
  }
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->cancelled_ = true;
  d->lock_.Release();
  // A stream source blocked on its peer (pipe writer gone quiet, socket
  // with no sender) would hold pending_reads_ up forever; drop that read so
  // cancellation converges.
  AbortPendingRead(d);
  if (!d->ready_.empty()) {
    // Queued chunks still need releasing; the drain consumes them.
    ArmDrain(d);
  }
  MaybeFinish(d);
}

void SpliceEngine::AbortPendingRead(SpliceDescriptor* d) {
  // CancelRead is an endpoint call: probe the count under the lock, drop the
  // lock for the call, and retract the issue under the lock again.
  d->lock_.Acquire();
  const bool outstanding = d->pending_reads_ > 0;
  d->lock_.Release();
  if (outstanding && d->source_->CancelRead()) {
    // The dropped read's completion will never run: retract its issue, and
    // say so in the trace — the span builder closes the orphaned read
    // interval off this record instead of leaking an open chunk span.
    IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
    d->lock_.Acquire();
    --d->pending_reads_;
    --d->reads_issued_;
    d->lock_.Release();
    if (cpu_->trace() != nullptr) {
      cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceReadAbort,
                            static_cast<int64_t>(d->serial_));
    }
  }
}

void SpliceEngine::IssueReads(SpliceDescriptor* d) {
  // Reads issued under the stream's span: the buffer cache stamps acquired
  // bufs with the cursor, which is how the span rides into the disk queue
  // and back out through biodone.
  KspanScope scope("splice", d->span_);
  // The eof/cancel re-check on every iteration matters: StartRead may
  // complete synchronously (queued datagram, cache hit) and deliver the
  // end-of-stream marker while this loop is still issuing.  The in-flight
  // bound keeps a synchronous source (whose reads complete inside StartRead,
  // leaving pending_reads at zero) from reading the whole file ahead of the
  // writes.  Lock per iteration: the admission check and the issue counting
  // are one critical section; StartRead runs with the lock dropped (it can
  // re-enter ReadDone synchronously).
  for (;;) {
    d->lock_.Acquire();
    const bool admit = !d->eof_ && !d->cancelled_ &&
                       d->pending_reads_ < d->opts_.refill_batch &&
                       d->InFlight() < d->opts_.max_inflight_chunks &&
                       (d->chunks_total_ < 0 || d->next_read_ < d->chunks_total_);
    if (!admit) {
      d->lock_.Release();
      return;
    }
    const int64_t index = d->next_read_;
    // Count the read as issued BEFORE starting it: synchronous devices (RAM
    // disk, cache hits) complete inside StartRead, and the completion
    // handler must see consistent counters.
    IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
    ++d->next_read_;
    ++d->reads_issued_;
    ++d->pending_reads_;
    d->stats_.max_pending_reads = std::max(d->stats_.max_pending_reads, d->pending_reads_);
    d->lock_.Release();
    if (cpu_->trace() != nullptr) {
      cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceRead,
                            static_cast<int64_t>(d->serial_), index);
    }
    const bool ok = d->source_->StartRead(
        index, [this, d](SpliceChunk chunk) { ReadDone(d, std::move(chunk)); });
    if (!ok) {
      d->lock_.Acquire();
      --d->next_read_;
      --d->reads_issued_;
      --d->pending_reads_;
      d->lock_.Release();
      ++d->stats_.read_retries;
      ArmReadRetry(d);
      return;
    }
  }
}

void SpliceEngine::ArmReadRetry(SpliceDescriptor* d) {
  // Check-and-arm is one critical section, held across ScheduleHead — a
  // deliberate splice -> callout nesting (rank 30 -> 90; the callout table
  // never calls back into the descriptor synchronously).
  d->lock_.Acquire();
  if (d->read_retry_armed_) {
    d->lock_.Release();
    return;
  }
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->read_retry_armed_ = true;
  d->retry_callout_ = callouts_->ScheduleHead([this, d] {
    KspanScope scope("splice", d->span_);
    cpu_->RunInterrupt(cpu_->costs().softclock_per_callout, [this, d] {
      d->lock_.Acquire();
      d->read_retry_armed_ = false;
      d->retry_callout_ = kInvalidCalloutId;
      d->lock_.Release();
      IssueReads(d);
    });
  });
  d->lock_.Release();
}

void SpliceEngine::ReadDone(SpliceDescriptor* d, SpliceChunk chunk) {
  KspanScope scope("splice", d->span_);
  Charge(cpu_->costs().splice_read_handler);
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->lock_.Acquire();
  --d->pending_reads_;
  if (chunk.error != 0) {
    // Unrecoverable read error: stop issuing, drain what is in flight, and
    // report the failure with the errno the device delivered.
    d->io_error_ = true;
    d->cancelled_ = true;
    if (d->error_ == 0) {
      d->error_ = chunk.error;
    }
    ++d->chunks_done_;
    d->lock_.Release();
    d->source_->Release(chunk);
    MaybeFinish(d);
    return;
  }
  if (chunk.nbytes == 0) {
    // End-of-stream marker from an unbounded source; it carries no data, so
    // it drains right here.
    d->eof_ = true;
    ++d->chunks_done_;
    d->lock_.Release();
    if (chunk.src_buf != nullptr) {
      d->source_->Release(chunk);
    }
    MaybeFinish(d);
    return;
  }
  d->lock_.Release();
  // "When a read completes, the read handler is invoked which in turn
  // schedules a write by placing a reference to the write handler at the
  // head of the system callout list."  (Section 5.2.2)
  if (d->opts_.callout_deferral) {
    IKDP_KRACE_WRITE(d, "SpliceDescriptor::ready_");
    d->ready_.push_back(std::move(chunk));
    if (KraceEnabled()) Krace().ChannelRelease(&d->ready_);
    ArmDrain(d);
  } else {
    // Ablation: run the write side directly in the read handler (lock-step
    // coupling of the two devices' access periods).
    if (!StartChunkWrite(d, std::move(chunk))) {
      // Sink refused: fall back to the callout path for the retry.
      ArmDrain(d);
    }
  }
}

void SpliceEngine::ArmDrain(SpliceDescriptor* d) {
  // Same shape as ArmReadRetry: the latch and the ScheduleHead are one
  // critical section (splice -> callout nesting, legal by rank).
  d->lock_.Acquire();
  if (d->drain_armed_) {
    d->lock_.Release();
    return;
  }
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->drain_armed_ = true;
  callouts_->ScheduleHead([this, d] {
    KspanScope scope("splice", d->span_);
    cpu_->RunInterrupt(cpu_->costs().softclock_per_callout, [this, d] {
      d->lock_.Acquire();
      d->drain_armed_ = false;
      d->lock_.Release();
      DrainWrites(d);
    });
  });
  d->lock_.Release();
}

void SpliceEngine::DrainWrites(SpliceDescriptor* d) {
  // Bounded softclock work: start at most max_chunks_per_tick writes, leave
  // the rest for the next tick.  This is what paces a splice between two
  // synchronous devices and keeps the CPU available to user processes.
  int budget = d->opts_.max_chunks_per_tick;
  if (KraceEnabled()) Krace().ChannelAcquire(&d->ready_);
  while (budget > 0 && !d->ready_.empty()) {
    IKDP_KRACE_WRITE(d, "SpliceDescriptor::ready_");
    SpliceChunk chunk = std::move(d->ready_.front());
    d->ready_.pop_front();
    if (!StartChunkWrite(d, std::move(chunk))) {
      break;  // sink full; the refused chunk was re-queued at the front
    }
    --budget;
  }
  if (!d->ready_.empty()) {
    ArmDrain(d);
  }
}

bool SpliceEngine::StartChunkWrite(SpliceDescriptor* d, SpliceChunk chunk) {
  KspanScope scope("splice", d->span_);
  Charge(cpu_->costs().splice_write_handler);
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->lock_.Acquire();
  if (d->cancelled_) {
    // Count it as drained so cancellation converges.
    ++d->chunks_done_;
    d->lock_.Release();
    d->source_->Release(chunk);
    MaybeFinish(d);
    return true;  // consumed
  }
  d->lock_.Release();
  int sink_index = 0;
  if (d->opts_.kop_program != nullptr) {
    const KopOutcome out = ExecKop(d, chunk);
    switch (out.kind) {
      case KopOutcome::Kind::kDrop:
        // The operator consumed the chunk in-kernel: it drains here, never
        // reaching a sink.  A drop retires a chunk just like a write
        // completion, so it must also drive the flow control — a 90% filter
        // would otherwise stall once the initial read batch drained.
        d->source_->Release(chunk);
        d->lock_.Acquire();
        ++d->chunks_done_;
        d->lock_.Release();
        MaybeRefill(d);
        MaybeFinish(d);
        return true;  // consumed
      case KopOutcome::Kind::kReject:
        // Mid-stream operator rejection rides the PR6 fault machinery: the
        // errno is sticky-first on the descriptor, reads stop, in-flight
        // chunks drain, and the completion reports io_error.
        d->lock_.Acquire();
        d->io_error_ = true;
        d->cancelled_ = true;
        if (d->error_ == 0) {
          d->error_ = out.error != 0 ? out.error : kErrKopReject;
        }
        d->lock_.Release();
        AbortPendingRead(d);
        d->source_->Release(chunk);
        d->lock_.Acquire();
        ++d->chunks_done_;
        d->lock_.Release();
        MaybeFinish(d);
        return true;  // consumed
      case KopOutcome::Kind::kPass:
        sink_index = out.route;
        assert(sink_index >= 0 && sink_index < static_cast<int>(d->sinks_.size()));
        break;
    }
  }
  if (!d->opts_.zero_copy) {
    // Ablation: copy between kernel buffers instead of sharing the data
    // area.  The simulation charges the copy and physically duplicates the
    // bytes so content checks stay honest.
    Charge(cpu_->costs().BcopyTime(chunk.nbytes));
    chunk.data = std::make_shared<std::vector<uint8_t>>(*chunk.data);
  }
  // Count the write BEFORE starting it: synchronous sinks (RAM disk)
  // complete inside StartWrite and their completion handler must see
  // consistent counters.  StartWrite itself runs with the lock dropped — a
  // pipe sink can complete the PEER descriptor's read synchronously, and two
  // same-rank `splice` locks must never nest.
  d->lock_.Acquire();
  ++d->pending_writes_;
  d->stats_.max_pending_writes = std::max(d->stats_.max_pending_writes, d->pending_writes_);
  d->lock_.Release();
  SpliceChunk* heap_chunk = new SpliceChunk(std::move(chunk));
  const bool ok = d->sinks_[sink_index]->StartWrite(*heap_chunk, [this, d, heap_chunk](bool write_ok) {
    SpliceChunk done_chunk = std::move(*heap_chunk);
    delete heap_chunk;
    WriteDone(d, std::move(done_chunk), write_ok);
  });
  if (!ok) {
    // Sink full: requeue at the front; the drain retries next tick, pacing
    // the splice at the sink's drain rate.
    d->lock_.Acquire();
    --d->pending_writes_;
    d->lock_.Release();
    ++d->stats_.write_retries;
    IKDP_KRACE_WRITE(d, "SpliceDescriptor::ready_");
    d->ready_.push_front(std::move(*heap_chunk));
    delete heap_chunk;
    return false;
  }
  return true;
}

void SpliceEngine::WriteDone(SpliceDescriptor* d, SpliceChunk chunk, bool ok) {
  KspanScope scope("splice", d->span_);
  Charge(cpu_->costs().splice_wdone_handler);
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->lock_.Acquire();
  --d->pending_writes_;
  ++d->chunks_done_;
  if (ok) {
    d->bytes_moved_ += chunk.nbytes;
  } else {
    d->io_error_ = true;
    d->cancelled_ = true;  // stop issuing further reads
    if (d->error_ == 0) {
      d->error_ = chunk.error != 0 ? chunk.error : kErrIo;
    }
  }
  d->lock_.Release();
  if (cpu_->trace() != nullptr) {
    cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceChunk,
                          static_cast<int64_t>(d->serial_), chunk.index);
  }
  if (!ok) {
    // A stream read still outstanding against a quiet peer would pin
    // pending_reads_ and the errored splice would never finish.
    AbortPendingRead(d);
  }
  d->source_->Release(chunk);
  MaybeRefill(d);
  MaybeFinish(d);
}

void SpliceEngine::MaybeRefill(SpliceDescriptor* d) {
  // Rate-based flow control (Section 5.2.4): chunk retirements (write
  // completions, operator drops) pull more reads when both pending counts
  // are below their watermarks.  A torn-down splice (error or cancel) must
  // NOT keep burning refill work — IssueReads would refuse anyway, but the
  // accounting and trace churn here are real CPU charges.
  d->lock_.Acquire();
  const bool refill = !d->cancelled_ && d->pending_reads_ < d->opts_.read_low_watermark &&
                      d->pending_writes_ < d->opts_.write_high_watermark;
  const int pending_reads = d->pending_reads_;
  const int64_t issued_before = d->reads_issued_;
  d->lock_.Release();
  if (refill) {
    ++d->stats_.refills;
    if (cpu_->trace() != nullptr) {
      cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceLowWater,
                            static_cast<int64_t>(d->serial_), pending_reads);
    }
    IssueReads(d);
    d->lock_.Acquire();
    const int64_t issued_after = d->reads_issued_;
    d->lock_.Release();
    if (cpu_->trace() != nullptr) {
      cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceRefill,
                            static_cast<int64_t>(d->serial_), issued_after - issued_before);
    }
  }
}

KopOutcome SpliceEngine::ExecKop(SpliceDescriptor* d, SpliceChunk& chunk) {
  const SimTime now = cpu_->sim()->Now();
  // Operator execution is its own kspan mint site: with a collector
  // attached each chunk's execution is a child span of the stream, so the
  // folded stacks show exactly where operator cycles went; detached it
  // inherits the stream's span with zero allocation.
  const bool span_owned = KspanOwned();
  const SpanId span = KspanBegin(now, "kop.exec", chunk.index);
  KopOutcome out;
  {
    KspanScope scope("kop", span);
    out = KopExecChunk(*d->opts_.kop_program, chunk, &d->kop_, cpu_->costs());
    // Charged inside the scope so the kop buckets attribute to this span.
    ChargeKopCost(out.cost);
    if (cpu_->trace() != nullptr) {
      cpu_->trace()->Record(now, TraceKind::kKopExec, static_cast<int64_t>(d->serial_),
                            static_cast<int64_t>(out.cost));
      if (out.kind == KopOutcome::Kind::kDrop) {
        cpu_->trace()->Record(now, TraceKind::kKopDrop, static_cast<int64_t>(d->serial_),
                              chunk.index);
      } else if (out.kind == KopOutcome::Kind::kReject) {
        cpu_->trace()->Record(now, TraceKind::kKopReject, static_cast<int64_t>(d->serial_),
                              out.error);
      }
    }
  }
  if (span_owned) {
    KspanEnd(now, span, static_cast<int64_t>(out.kind), out.kind == KopOutcome::Kind::kReject);
  }
  ++stats_.kop_chunks_in;
  stats_.kop_bytes_in += chunk.nbytes;
  stats_.kop_exec_time += out.cost;
  switch (out.kind) {
    case KopOutcome::Kind::kDrop:
      ++stats_.kop_chunks_dropped;
      break;
    case KopOutcome::Kind::kReject:
      ++stats_.kop_chunks_rejected;
      break;
    case KopOutcome::Kind::kPass:
      stats_.kop_bytes_out += chunk.nbytes;
      break;
  }
  return out;
}

void SpliceEngine::MaybeFinish(SpliceDescriptor* d) {
  KspanScope scope("splice", d->span_);
  // The finished_ latch and the drained test are ONE critical section, and
  // everything below runs on a snapshot taken inside it: the completion
  // callback re-enters the ring, whose lock ranks OUTSIDE `splice`, so it
  // must never run under this lock.
  d->lock_.Acquire();
  if (d->finished_) {
    d->lock_.Release();
    return;
  }
  const bool no_more_input =
      d->cancelled_ || d->eof_ || (d->chunks_total_ >= 0 && d->reads_issued_ == d->chunks_total_);
  const bool drained = d->reads_issued_ == d->chunks_done_ && d->pending_reads_ == 0 &&
                       d->pending_writes_ == 0;
  if (!no_more_input || !drained) {
    d->lock_.Release();
    return;
  }
  IKDP_KRACE_WRITE(d, "SpliceDescriptor::counters");
  d->finished_ = true;
  const int64_t bytes_moved = d->bytes_moved_;
  const bool io_error = d->io_error_;
  const int error = d->error_;
  const bool cancelled = d->cancelled_;
  const CalloutId retry = d->retry_callout_;
  d->retry_callout_ = kInvalidCalloutId;
  d->lock_.Release();
  if (retry != kInvalidCalloutId) {
    callouts_->Untimeout(retry);
  }
  ++stats_.splices_completed;
  stats_.total_bytes += bytes_moved;
  if (cpu_->trace() != nullptr) {
    cpu_->trace()->Record(cpu_->sim()->Now(), TraceKind::kSpliceDone,
                          static_cast<int64_t>(d->serial_), bytes_moved);
  }
  // Exactly-once close of a minted stream span: finished_ latches above, so
  // every teardown path (drain, error, cancel) funnels through here once.
  if (d->span_owned_) {
    KspanEnd(cpu_->sim()->Now(), d->span_, bytes_moved, io_error);
  }
  if (d->on_complete_) {
    auto cb = std::move(d->on_complete_);
    SpliceCompletion c;
    c.serial = d->serial_;
    c.bytes_moved = bytes_moved;
    c.io_error = io_error;
    c.error = io_error ? (error != 0 ? error : kErrIo) : 0;
    // cancelled_ is also set on the error path (to stop issuing reads);
    // report "cancelled" only for genuine user cancels.
    c.cancelled = cancelled && !io_error;
    c.started_at = d->started_at_;
    c.finished_at = cpu_->sim()->Now();
    c.kop_active = d->opts_.kop_program != nullptr;
    c.kop_checksum = d->kop_.checksum;
    c.kop_dropped = d->kop_.chunks_dropped;
    cb(c);
  }
  // Defer destruction: callers (e.g. the write-drain loop) may still hold
  // `d` on their stack when the last chunk completes.
  cpu_->sim()->After(0, [this, d] { descriptors_.erase(d); });
}

}  // namespace ikdp
