#include "src/splice/stream_endpoint.h"

#include <algorithm>
#include <utility>

namespace ikdp {

bool SocketSpliceSource::StartRead(int64_t index, std::function<void(SpliceChunk)> done) {
  return sock_->RecvAsync(chunk_bytes_, [index, done = std::move(done)](BufData data, int64_t n) {
    SpliceChunk chunk;
    chunk.index = index;
    chunk.nbytes = n;  // n == 0: end-of-stream datagram
    chunk.data = std::move(data);
    done(std::move(chunk));
  });
}

bool SocketSpliceSink::StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) {
  CpuSystem* cpu = cpu_;
  return sock_->SendAsync(chunk.data, chunk.nbytes, [cpu, done = std::move(done)] {
    // Transmit-complete interrupt.
    cpu->RunInterrupt(cpu->costs().interrupt_overhead, [done] { done(true); });
  });
}

bool DeviceSpliceSink::StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) {
  CpuSystem* cpu = cpu_;
  return dev_->WriteAsync(chunk.data, chunk.nbytes, [cpu, done = std::move(done)] {
    // Device completion interrupt.
    cpu->RunInterrupt(cpu->costs().interrupt_overhead, [done] { done(true); });
  });
}

bool DeviceSpliceSource::StartRead(int64_t index, std::function<void(SpliceChunk)> done) {
  int64_t target = chunk_bytes_;
  if (remaining_ >= 0) {
    target = std::min(target, remaining_);
  }
  if (target == 0 || pending_eof_) {
    // Budget exhausted or the device already reported end-of-stream:
    // deliver the marker synchronously.
    pending_eof_ = false;
    SpliceChunk eof;
    eof.index = index;
    eof.nbytes = 0;
    done(std::move(eof));
    return true;
  }
  acc_ = MakeBufData();
  acc_->clear();
  return IssueRead(index, target, std::move(done));
}

bool DeviceSpliceSource::IssueRead(int64_t index, int64_t target,
                                   std::function<void(SpliceChunk)> done) {
  const int64_t want = target - static_cast<int64_t>(acc_->size());
  return dev_->ReadAsync(
      want, [this, index, target, done = std::move(done)](BufData data, int64_t n) {
        if (n > 0) {
          acc_->insert(acc_->end(), data->begin(), data->begin() + n);
          if (remaining_ >= 0) {
            remaining_ -= n;
          }
        } else {
          saw_eof_ = true;
        }
        const bool full = static_cast<int64_t>(acc_->size()) >= target;
        if (!coalesce_ || full || saw_eof_ || remaining_ == 0) {
          Deliver(index, done);
          return;
        }
        // Short delivery: keep accumulating this chunk.  A refusal here
        // cannot happen (this source is the device's only reader), but
        // deliver what we have rather than wedging if it ever does.
        if (!IssueRead(index, target, done)) {
          Deliver(index, done);
        }
      });
}

void DeviceSpliceSource::Deliver(int64_t index, const std::function<void(SpliceChunk)>& done) {
  SpliceChunk chunk;
  chunk.index = index;
  chunk.nbytes = static_cast<int64_t>(acc_->size());
  chunk.data = std::move(acc_);
  acc_ = nullptr;
  if (chunk.nbytes == 0) {
    // Nothing accumulated and the stream ended: this IS the EOF marker.
    done(std::move(chunk));
    return;
  }
  if (saw_eof_) {
    pending_eof_ = true;  // next StartRead delivers the marker
  }
  done(std::move(chunk));
}

}  // namespace ikdp
