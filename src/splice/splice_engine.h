// The splice engine: the paper's in-kernel data path (Sections 5.2-5.5).
//
// One SpliceDescriptor per active splice keeps "all necessary information
// ... so I/O [can] proceed without requiring the calling process context to
// be available" (Section 5.2.1).  The mechanism:
//
//  * Read side (5.2.2): asynchronous reads are issued through the source
//    endpoint (for files, the modified no-biowait bread()).  A completed
//    read's handler runs in interrupt context and schedules the write
//    handler "at the head of the system callout list".
//
//  * Write side (5.2.3): the write handler runs at softclock, acquires a
//    sink-side buffer that SHARES the read buffer's data area (no copy),
//    and issues an asynchronous write.  The write-completion handler
//    releases both buffers and restarts the cycle.
//
//  * Flow control (5.2.4): rate-based, driven by write completions.  "If
//    the number of pending reads and the number of pending writes drop
//    below pre-specified watermarks (currently 3 and 5, respectively), the
//    write handler will issue up to five additional reads."
//
// The callout indirection decouples the I/O access periods of the two
// devices (no lock-step), and chunks may complete out of order — each
// carries its logical index, as the paper's extended buffer headers do.
//
// SpliceOptions exposes the watermarks and a zero_copy switch so the
// ablation benches can measure each design choice in isolation.

#ifndef SRC_SPLICE_SPLICE_ENGINE_H_
#define SRC_SPLICE_SPLICE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kern/lock.h"
#include "src/kop/kop.h"
#include "src/sim/callout.h"
#include "src/sim/kspan.h"
#include "src/sim/trace.h"
#include "src/splice/endpoint.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "splice" onto the
// SpinLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define splice_ikdp_tsa_cap , lock_
#endif

namespace ikdp {

struct SpliceOptions {
  // Flow-control watermarks (paper defaults: 3 pending reads, 5 pending
  // writes, refill batches of up to 5 reads).
  int read_low_watermark = 3;
  int write_high_watermark = 5;
  int refill_batch = 5;

  // Upper bound on chunks a descriptor may hold between read completion and
  // write completion.  Keeps synchronous devices (RAM disk, cache hits) from
  // cascading the whole file through one call chain; async disks never reach
  // it (their depth is bounded by the watermarks).
  int max_inflight_chunks = 8;

  // Write-side chunks started per softclock tick.  Kernels bound the work
  // done at software-interrupt level per tick; this is what paces a splice
  // between fast (synchronous) devices and leaves CPU for user processes —
  // the RAM-disk rows of the paper's Tables 1 and 2 reflect exactly this
  // pacing.
  int max_chunks_per_tick = 2;

  // When false, the write side copies the data between buffers instead of
  // aliasing the read buffer's data area (ablation of the paper's zero-copy
  // design; the copy is charged as kernel bcopy time).
  bool zero_copy = true;

  // When false, the write handler runs directly from the read-completion
  // handler instead of via the callout list (ablation of the decoupling).
  bool callout_deferral = true;

  // When true, destination-file premapping uses the stock bmap, which
  // schedules zero-fill delayed writes for every fresh block (the behaviour
  // the paper's special bmap avoids, Section 5.2.1).  Consumed by the
  // syscall layer, not the engine.
  bool stock_destination_bmap = false;

  // Verified in-kernel operator program (src/kop) to run over every chunk on
  // the write side, in the context that starts the write (interrupt with
  // callout_deferral off, softclock otherwise).  Null — the default — takes
  // the exact pre-kop code path: no extra branches charged, no RNG, no
  // simulated-time change, which is what keeps Tables 1/2 byte-identical.
  // The engine aborts on an unverified program (reject-unverified-program);
  // bind sites turn that into kErrInval before it gets here.
  std::shared_ptr<const KopProgram> kop_program;
};

// Rich completion report delivered by StartEx: enough to build a
// completion-queue entry (result, error class, per-op latency) without the
// caller keeping shadow state.  `cancelled` means a user cancel, not an
// error-driven abort (io_error covers that).
struct SpliceCompletion {
  uint64_t serial = 0;
  int64_t bytes_moved = 0;
  bool io_error = false;
  bool cancelled = false;
  // Errno of the first failure when io_error is set (kErrIo, kErrNoSpc, ...);
  // 0 otherwise.  Rides into the ring's CQE res field and onto the
  // descriptor for sync/FASYNC callers.
  int error = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  // Operator results (src/kop), meaningful when kop_active: the final
  // checksum accumulator and how many chunks the program consumed in-kernel.
  bool kop_active = false;
  uint64_t kop_checksum = 0;
  int64_t kop_dropped = 0;
};

class SpliceDescriptor {
 public:
  uint64_t serial() const { return serial_; }
  int64_t bytes_moved() const {
    SpinGuard g(lock_);
    return bytes_moved_;
  }
  int64_t chunks_done() const {
    SpinGuard g(lock_);
    return chunks_done_;
  }
  bool finished() const {
    SpinGuard g(lock_);
    return finished_;
  }
  // Errno of the first I/O failure on this splice (0 while healthy).
  int error() const {
    SpinGuard g(lock_);
    return error_;
  }
  // The stream's kspan: a fresh child of the requester's span when a
  // collector is attached, the requester's span itself otherwise.  Every
  // handler pushes it, so interrupt/softclock charges and trace records for
  // this stream attribute to the request that started it.
  SpanId span() const { return span_; }

  struct Stats {
    uint64_t read_retries = 0;   // StartRead refusals
    uint64_t write_retries = 0;  // StartWrite refusals
    uint64_t refills = 0;        // flow-control read batches issued
    int max_pending_reads = 0;
    int max_pending_writes = 0;
  };
  const Stats& stats() const { return stats_; }
  // Operator run state (chunks in/dropped/rejected, checksum accumulator).
  const KopRunState& kop() const { return kop_; }

 private:
  friend class SpliceEngine;

  uint64_t serial_ = 0;
  std::unique_ptr<SpliceSource> source_;
  // Sinks this splice fans out to; sinks_[0] is the primary (and only)
  // destination unless a route-stage operator is attached, in which case the
  // operator picks the sink per chunk (fan-out fixed at StartMulti).
  std::vector<std::unique_ptr<SpliceSink>> sinks_;
  SpliceOptions opts_;
  // Per-descriptor operator state.  Touched by whichever context runs the
  // write side for this descriptor (same sharing as the counters below).
  KopRunState kop_ IKDP_GUARDED_BY(any);

  // The descriptor's flow-control lock (docs/klock.md).  Fine-grained: it
  // covers counter clusters only and is NEVER held across an endpoint call
  // (StartRead/StartWrite/Release/CancelRead — a pipe sink can complete the
  // peer descriptor's read synchronously, nesting two same-rank `splice`
  // locks) nor across the completion callback (the ring's lock ranks
  // OUTSIDE this one).  It IS held across ScheduleHead in ArmDrain /
  // ArmReadRetry — a deliberate splice -> callout nesting, legal by rank.
  // `mutable` lets the const accessors above lock.
  mutable SpinLock lock_ IKDP_LOCK_RANK(splice, 30) = SpinLock("splice", 30);

  // Flow-control state (paper Section 5.2.4).  Touched by the process that
  // starts the splice, the interrupt-level read handler, and the softclock
  // write handler — the whole point of the descriptor is that no single
  // context owns the transfer, hence the lock plus krace WRITE probes at
  // every mutation site in splice_engine.cc.
  int64_t chunks_total_ IKDP_GUARDED_BY(lock:splice) = -1;  // -1 until EOF bounds a stream
  int64_t next_read_ IKDP_GUARDED_BY(lock:splice) = 0;      // next chunk index to issue
  int64_t reads_issued_ IKDP_GUARDED_BY(lock:splice) = 0;   // StartRead successes
  int64_t chunks_done_ IKDP_GUARDED_BY(lock:splice) = 0;    // write completions
  int pending_reads_ IKDP_GUARDED_BY(lock:splice) = 0;      // issued, not yet completed reads
  int pending_writes_ IKDP_GUARDED_BY(lock:splice) = 0;     // issued, not yet completed writes
  int64_t bytes_moved_ IKDP_GUARDED_BY(lock:splice) = 0;
  bool eof_ IKDP_GUARDED_BY(lock:splice) = false;
  bool cancelled_ IKDP_GUARDED_BY(lock:splice) = false;
  bool io_error_ IKDP_GUARDED_BY(lock:splice) = false;  // unrecoverable read/write error
  int error_ IKDP_GUARDED_BY(lock:splice) IKDP_STICKY_ERRNO = 0;  // errno of the FIRST failure
  bool finished_ IKDP_GUARDED_BY(lock:splice) = false;
  bool read_retry_armed_ IKDP_GUARDED_BY(lock:splice) = false;
  bool drain_armed_ IKDP_GUARDED_BY(lock:splice) = false;
  // Written once at StartEx, read by every handler context afterwards —
  // immutable for the descriptor's life, so any context may read it.
  SpanId span_ IKDP_GUARDED_BY(any) = kNoSpan;
  bool span_owned_ IKDP_GUARDED_BY(any) = false;  // minted (must End) vs inherited
  SimTime started_at_ = 0;
  CalloutId retry_callout_ = kInvalidCalloutId;
  // Chunks whose reads completed, awaiting the softclock write handler.
  // Produced by ReadDone (interrupt), consumed by DrainWrites (softclock);
  // the handoff is serialized by the callout list, not by a context rule.
  std::deque<SpliceChunk> ready_ IKDP_ORDERED_BY(callout);
  std::function<void(const SpliceCompletion&)> on_complete_;
  Stats stats_;

  // Lock-held: every caller (the IssueReads admission condition) holds lock_.
  // IKDP_REQUIRES seeds the kcheck entry-held fixpoint and becomes
  // requires_capability under TSA.
  IKDP_REQUIRES(splice) int InFlight() const {
    return static_cast<int>(reads_issued_ - chunks_done_);
  }
};

class SpliceEngine {
 public:
  SpliceEngine(CpuSystem* cpu, CalloutTable* callouts);

  SpliceEngine(const SpliceEngine&) = delete;
  SpliceEngine& operator=(const SpliceEngine&) = delete;

  // Starts a splice.  The source bounds the transfer (TotalBytes, or EOF
  // chunks for streams); `on_complete(bytes_moved)` fires in kernel context
  // when every chunk has drained; bytes_moved is -1 if an unrecoverable I/O
  // error aborted the transfer.  The descriptor stays valid until then.
  IKDP_CTX_ANY SpliceDescriptor* Start(std::unique_ptr<SpliceSource> source,
                                       std::unique_ptr<SpliceSink> sink, SpliceOptions opts,
                                       std::function<void(int64_t)> on_complete);

  // Like Start, but the completion callback receives the full report
  // (bytes, error/cancel flags, start and finish timestamps) — the splice
  // ring builds CQEs from this without shadow bookkeeping.
  IKDP_CTX_ANY SpliceDescriptor* StartEx(std::unique_ptr<SpliceSource> source,
                                         std::unique_ptr<SpliceSink> sink, SpliceOptions opts,
                                         std::function<void(const SpliceCompletion&)> on_complete);

  // Fan-out form: the attached route-stage operator picks which of `sinks`
  // each chunk continues to.  The sink count must equal the program's
  // SinkCount() — bind sites validate with kErrInval, the engine aborts.
  IKDP_CTX_ANY SpliceDescriptor* StartMulti(
      std::unique_ptr<SpliceSource> source, std::vector<std::unique_ptr<SpliceSink>> sinks,
      SpliceOptions opts, std::function<void(const SpliceCompletion&)> on_complete);

  // Stops issuing reads; the splice completes (invoking on_complete) once
  // in-flight chunks drain.
  IKDP_CTX_ANY void Cancel(SpliceDescriptor* d);

  int active() const { return static_cast<int>(descriptors_.size()); }

  struct Stats {
    uint64_t splices_started = 0;
    uint64_t splices_completed = 0;
    int64_t total_bytes = 0;
    // Operator execution totals across all descriptors (descriptors are
    // destroyed at completion, so per-chunk results accumulate here).
    uint64_t kop_chunks_in = 0;
    uint64_t kop_chunks_dropped = 0;
    uint64_t kop_chunks_rejected = 0;
    int64_t kop_bytes_in = 0;
    int64_t kop_bytes_out = 0;
    SimDuration kop_exec_time = 0;
  };
  const Stats& stats() const { return stats_; }

  // Drains handler CPU cost accumulated while running in process context
  // (handlers invoked synchronously from a Start call rather than from an
  // interrupt).  The syscall layer charges this to the calling process;
  // mirrors BufferCache::TakeSyncCharge.
  SimDuration TakeSyncCharge() { return std::exchange(pending_sync_charge_, 0); }

  // Same, for operator execution cost: charged to the calling process via
  // CpuSystem::UseKop so it lands in the kKopProcess attribution bucket.
  SimDuration TakeSyncKopCharge() { return std::exchange(pending_sync_kop_charge_, 0); }

 private:
  // Issues reads up to the refill batch (paper Section 5.2.4).
  IKDP_CTX_ANY void IssueReads(SpliceDescriptor* d);

  // Read-completion handler.  Usually runs at interrupt level (device
  // biodone), but synchronous devices invoke it from the submitting context,
  // so it must tolerate any context.
  IKDP_CTX_ANY void ReadDone(SpliceDescriptor* d, SpliceChunk chunk);

  // Arms the next-tick write-side drain (softclock context).
  IKDP_CTX_ANY void ArmDrain(SpliceDescriptor* d);

  // Softclock write handler: starts up to max_chunks_per_tick ready chunks.
  // (With callout_deferral off it runs straight from ReadDone instead.)
  IKDP_CTX_SOFTCLOCK void DrainWrites(SpliceDescriptor* d);

  // Starts the write of one chunk.  Returns false if the sink refused it
  // (caller re-queues).
  IKDP_CTX_ANY bool StartChunkWrite(SpliceDescriptor* d, SpliceChunk chunk);

  // Write-completion handler.
  IKDP_CTX_ANY void WriteDone(SpliceDescriptor* d, SpliceChunk chunk, bool ok);

  // Rate-based flow control (Section 5.2.4): pulls more reads when both
  // pending counts are below their watermarks.  Runs on every chunk
  // retirement — write completions AND operator drops, which consume chunks
  // without ever reaching a sink and would otherwise stall a heavily
  // filtered stream once the initial read batch drained.
  IKDP_CTX_ANY void MaybeRefill(SpliceDescriptor* d);

  // Runs the attached operator program over `chunk` in the current context.
  // Charges the execution cost to the kop attribution buckets, traces the
  // outcome, and updates the descriptor + engine counters.
  IKDP_CTX_ANY KopOutcome ExecKop(SpliceDescriptor* d, SpliceChunk& chunk);

  // Drops an outstanding stream read whose completion will never arrive
  // (source blocked on a peer) once the splice is being torn down, so a
  // cancelled or errored splice converges instead of hanging on
  // pending_reads_.  No-op for sources whose reads always complete.
  IKDP_CTX_ANY void AbortPendingRead(SpliceDescriptor* d);

  // Arms a next-tick retry for refused reads.
  IKDP_CTX_ANY void ArmReadRetry(SpliceDescriptor* d);

  // Completes the splice if nothing is left in flight.
  IKDP_CTX_ANY void MaybeFinish(SpliceDescriptor* d);

  // Runs `fn` at the next softclock tick, charged as softclock work
  // attributed to `span`.
  IKDP_CTX_ANY void Softclock(SpanId span, std::function<void()> fn);

  // Charges handler work to the executing interrupt, or accumulates it for
  // TakeSyncCharge when running in process context (e.g. a read handler
  // invoked synchronously by a RAM-disk Strategy during splice setup).
  IKDP_CTX_ANY void Charge(SimDuration d);

  // Charge() for operator execution: ChargeKop at interrupt level (kop
  // interrupt/softclock buckets), parked for TakeSyncKopCharge otherwise.
  IKDP_CTX_ANY void ChargeKopCost(SimDuration d);

  CpuSystem* cpu_;
  CalloutTable* callouts_;
  std::unordered_map<SpliceDescriptor*, std::unique_ptr<SpliceDescriptor>> descriptors_;
  SimDuration pending_sync_charge_ = 0;
  SimDuration pending_sync_kop_charge_ = 0;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_SPLICE_SPLICE_ENGINE_H_
