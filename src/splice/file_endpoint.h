// File splice endpoints (paper Section 5.2).
//
// Built at splice(2) time, in the calling process's context: "the entire
// list of all physical block numbers comprising the source file is
// determined by successive calls to bmap().  The list of physical blocks is
// stored in a dynamically allocated table in the splice descriptor."  The
// destination is premapped the same way, with the special bmap that skips
// zero-fill delayed writes.
//
// At transfer time the source uses the modified no-biowait bread
// (BufferCache::BreadAsync); the sink allocates a data-less transient
// header, aliases the read buffer's data area, and issues bawrite — the
// zero-copy write side of Section 5.2.3.

#ifndef SRC_SPLICE_FILE_ENDPOINT_H_
#define SRC_SPLICE_FILE_ENDPOINT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/buf/buffer_cache.h"
#include "src/splice/endpoint.h"

namespace ikdp {

class FileSpliceSource : public SpliceSource {
 public:
  // `block_map[k]` is the physical block holding chunk k; `total_bytes`
  // bounds the transfer (the last chunk may be short).
  FileSpliceSource(BufferCache* cache, BlockDevice* dev, std::vector<int64_t> block_map,
                   int64_t total_bytes)
      : cache_(cache), dev_(dev), block_map_(std::move(block_map)), total_bytes_(total_bytes) {}

  int64_t TotalBytes() const override { return total_bytes_; }
  int64_t ChunkBytes() const override { return kBlockSize; }

  IKDP_CTX_ANY bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) override;
  IKDP_CTX_ANY void Release(SpliceChunk& chunk) override;

 private:
  BufferCache* cache_;
  BlockDevice* dev_;
  std::vector<int64_t> block_map_;
  int64_t total_bytes_;
};

class FileSpliceSink : public SpliceSink {
 public:
  FileSpliceSink(BufferCache* cache, BlockDevice* dev, std::vector<int64_t> block_map)
      : cache_(cache), dev_(dev), block_map_(std::move(block_map)) {}

  IKDP_CTX_ANY bool StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) override;

 private:
  BufferCache* cache_;
  BlockDevice* dev_;
  std::vector<int64_t> block_map_;
};

}  // namespace ikdp

#endif  // SRC_SPLICE_FILE_ENDPOINT_H_
