// Stream splice endpoints: UDP sockets, paced character devices, and the
// framebuffer (paper Section 5.1: "socket-to-socket splices for the UDP
// transport protocol, and framebuffer-to-socket splices").
//
// Stream sources deliver chunks strictly in order and allow one outstanding
// read at a time (a socket has one receive queue; a framebuffer one scan-out
// position), so StartRead returns false while a request is pending and the
// engine's flow control degrades gracefully to depth-1 pipelining on that
// side.  Sinks refuse chunks while their buffers are full; the engine
// retries each tick, which paces a device splice at playback rate.

#ifndef SRC_SPLICE_STREAM_ENDPOINT_H_
#define SRC_SPLICE_STREAM_ENDPOINT_H_

#include <cstdint>
#include <functional>

#include "src/dev/char_device.h"
#include "src/kern/cpu.h"
#include "src/net/udp_socket.h"
#include "src/splice/endpoint.h"

namespace ikdp {

// Receives datagrams from a socket.  Unbounded: the splice runs until a
// zero-length datagram (the UDP end-of-stream convention used throughout
// this codebase) arrives or the splice is cancelled.
class SocketSpliceSource : public SpliceSource {
 public:
  SocketSpliceSource(UdpSocket* sock, int64_t chunk_bytes = kBlockSize)
      : sock_(sock), chunk_bytes_(chunk_bytes) {}

  int64_t TotalBytes() const override { return -1; }
  int64_t ChunkBytes() const override { return chunk_bytes_; }

  IKDP_CTX_ANY bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) override;
  void Release(SpliceChunk& chunk) override { (void)chunk; }
  IKDP_CTX_ANY bool CancelRead() override { return sock_->CancelRecv(); }

 private:
  UdpSocket* sock_;
  int64_t chunk_bytes_;
};

// Sends each chunk as one datagram.  The chunk completes when the datagram
// has left the interface (send-buffer space released).
class SocketSpliceSink : public SpliceSink {
 public:
  SocketSpliceSink(CpuSystem* cpu, UdpSocket* sock) : cpu_(cpu), sock_(sock) {}

  IKDP_CTX_ANY bool StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) override;

 private:
  CpuSystem* cpu_;
  UdpSocket* sock_;
};

// Writes chunks into a character device (audio/video DAC); completion at the
// device's pace provides the natural-rate playback of the paper's example.
class DeviceSpliceSink : public SpliceSink {
 public:
  DeviceSpliceSink(CpuSystem* cpu, CharDevice* dev) : cpu_(cpu), dev_(dev) {}

  IKDP_CTX_ANY bool StartWrite(SpliceChunk& chunk, std::function<void(bool)> done) override;

 private:
  CpuSystem* cpu_;
  CharDevice* dev_;
};

// Reads chunks from a character device source (framebuffer scan-out).
// Bounded by a byte budget when `total_bytes` >= 0, otherwise unbounded
// (cancel to stop).  Devices may deliver short chunks (a framebuffer stops
// at frame boundaries), so the budget is tracked in bytes actually
// delivered, and exhaustion is signalled with a zero-length end-of-stream
// chunk; the source therefore reports itself unbounded to the engine.
// With `coalesce`, short device deliveries (a framebuffer stopping at a
// frame boundary, a pipe with little buffered) are accumulated until the
// chunk is full or the stream ends — required when the sink is a regular
// file, whose block map assumes chunk k carries bytes [k*B, (k+1)*B).
class DeviceSpliceSource : public SpliceSource {
 public:
  DeviceSpliceSource(CharDevice* dev, int64_t total_bytes, int64_t chunk_bytes = kBlockSize,
                     bool coalesce = false)
      : dev_(dev), remaining_(total_bytes), chunk_bytes_(chunk_bytes), coalesce_(coalesce) {}

  int64_t TotalBytes() const override { return -1; }
  int64_t ChunkBytes() const override { return chunk_bytes_; }

  IKDP_CTX_ANY bool StartRead(int64_t index, std::function<void(SpliceChunk)> done) override;
  void Release(SpliceChunk& chunk) override { (void)chunk; }
  IKDP_CTX_ANY bool CancelRead() override {
    acc_ = nullptr;  // drop the partially-accumulated chunk
    return dev_->CancelRead();
  }

 private:
  // Issues the next device read of an accumulating chunk.
  IKDP_CTX_ANY bool IssueRead(int64_t index, int64_t target, std::function<void(SpliceChunk)> done);
  IKDP_CTX_ANY void Deliver(int64_t index, const std::function<void(SpliceChunk)>& done);

  CharDevice* dev_;
  int64_t remaining_;  // bytes left in the budget; < 0 means unbounded
  int64_t chunk_bytes_;
  bool coalesce_;
  BufData acc_;            // accumulation buffer for the chunk in progress
  bool saw_eof_ = false;   // device reported end-of-stream
  bool pending_eof_ = false;  // deliver EOF on the next StartRead
};

}  // namespace ikdp

#endif  // SRC_SPLICE_STREAM_ENDPOINT_H_
