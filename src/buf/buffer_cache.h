// The 4.2BSD buffer cache ([LMK89] ch. 7), with the paper's extensions.
//
// A fixed pool of block buffers is indexed by (device, physical block) in a
// hash table and recycled through an LRU free list.  Two client APIs exist:
//
//  * The classic process-context API — Bread/Breada/Bwrite/Bawrite/Bdwrite/
//    Brelse/Biowait — used by the read()/write() file path.  These are
//    coroutines: they charge CPU to the calling process and sleep (PRIBIO)
//    on busy buffers, free-list exhaustion, and I/O completion.
//
//  * The splice API (paper Section 5.2.2): "New versions of the kernel
//    routines bread() and getblk(), with the calls to biowait() removed".
//    BreadAsync() schedules a read and returns immediately, delivering
//    completion through the buffer's b_iodone hook in interrupt context.
//    AllocTransientHeader() is the modified getblk "which avoids allocating
//    any real memory to the buffer": a header outside the pool whose data
//    pointer is aliased to the read-side buffer.
//
// CPU charging convention: process-context coroutines charge the calling
// process; non-blocking calls charge the executing interrupt when invoked at
// interrupt level and charge nothing otherwise (the syscall layer accounts
// for splice-setup work explicitly).

#ifndef SRC_BUF_BUFFER_CACHE_H_
#define SRC_BUF_BUFFER_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/buf/buf.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kern/lock.h"
#include "src/sim/task.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "cache" onto the
// SpinLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define cache_ikdp_tsa_cap , lock_
#endif

namespace ikdp {

class BufferCache {
 public:
  // `nbufs` block buffers of kBlockSize each (the paper's machine: 3.2 MB /
  // 8 KB = 400).
  BufferCache(CpuSystem* cpu, int nbufs);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  int nbufs() const { return nbufs_; }

  // --- process-context (coroutine) API ---

  // Returns the buffer for (dev, blkno) with valid data, reading from the
  // device if necessary.  The buffer is returned busy; release with Brelse.
  IKDP_CTX_PROCESS Task<Buf*> Bread(Process& p, BlockDevice* dev, int64_t blkno);

  // Bread plus an asynchronous read-ahead of `rablkno` (pass -1 for none).
  IKDP_CTX_PROCESS Task<Buf*> Breada(Process& p, BlockDevice* dev, int64_t blkno, int64_t rablkno);

  // Fires an asynchronous read of (dev, blkno) into the cache if the block
  // is not already cached and a buffer is available without sleeping.
  // Non-blocking; used by the deeper read-ahead of FileSystem::Read.
  IKDP_CTX_ANY void IssueReadAhead(BlockDevice* dev, int64_t blkno);

  // Returns the buffer for (dev, blkno) busy, WITHOUT reading: contents are
  // valid only if kBufDone is set (cache hit).  Used by whole-block
  // overwrites.
  IKDP_CTX_PROCESS Task<Buf*> GetBlk(Process& p, BlockDevice* dev, int64_t blkno);

  // Writes `b` synchronously: waits for the transfer, then releases it.
  IKDP_CTX_PROCESS Task<> Bwrite(Process& p, Buf* b);

  // Starts an asynchronous write of `b` and returns once issued.  The
  // buffer releases itself on completion.
  IKDP_CTX_PROCESS Task<> Bawrite(Process& p, Buf* b);

  // Marks `b` dirty for a delayed write and releases it (no I/O now).
  IKDP_CTX_PROCESS void Bdwrite(Process& p, Buf* b);

  // Releases a busy buffer to the free list (tail; head if kBufInval).
  // Interrupt-safe: biodone paths release async buffers at interrupt level.
  // Takes the cache lock itself, so the caller must not hold it.
  IKDP_CTX_ANY IKDP_EXCLUDES(cache) void Brelse(Buf* b);

  // Waits for I/O on a busy buffer to complete (kBufDone).
  IKDP_CTX_PROCESS Task<> Biowait(Process& p, Buf* b);

  // Writes out every delayed-write block for `dev` and waits for all
  // asynchronous writes on `dev` to drain (fsync(2) of the paper's cp).
  IKDP_CTX_PROCESS Task<> FlushDev(Process& p, BlockDevice* dev);

  // Invalidates every clean cached block of `dev` (cold-cache priming for
  // the experiments).  Buffers that are busy or dirty are left alone.
  void InvalidateDev(BlockDevice* dev);

  // Pushes every idle delayed-write block straight into its device's
  // backing store WITHOUT simulating any I/O time.  Host-side helper for
  // content verification in tests and harnesses; never part of a timed run.
  void FlushAllInstant();

  // --- splice (non-blocking) API ---

  // Paper's modified bread: acquires a buffer for (dev, blkno) and schedules
  // a read with `iodone` installed (kBufCall); returns immediately.  If the
  // block is already cached and idle, `iodone` runs synchronously.  Returns
  // false when no buffer can be had without sleeping (caller retries later).
  IKDP_CTX_ANY bool BreadAsync(BlockDevice* dev, int64_t blkno, std::function<void(Buf&)> iodone);

  // Paper's modified getblk: a transient header with NO data area, for the
  // splice write side.  Free with FreeTransientHeader (typically from the
  // write-completion handler).
  IKDP_CTX_ANY Buf* AllocTransientHeader(BlockDevice* dev, int64_t blkno);
  IKDP_CTX_ANY void FreeTransientHeader(Buf* b);

  // Starts an asynchronous write of any busy buffer with `iodone` installed;
  // non-blocking, charges interrupt context if executing in one.
  IKDP_CTX_ANY void BawriteAsync(Buf* b, std::function<void(Buf&)> iodone);

  // --- shared ---

  // Driver completion entry point (free-function Biodone forwards here).
  IKDP_CTX_ANY void IoDone(Buf* b);

  // Number of asynchronous writes outstanding on `dev`.  Locks the cache
  // for the lookup — callers must not already hold it.
  IKDP_EXCLUDES(cache) int PendingWrites(BlockDevice* dev) const;

  // Drains CPU cost accumulated by process-context SubmitIo() calls on the
  // non-blocking API (e.g. the synchronous RAM-disk copies behind the
  // initial reads a splice issues at setup).  The syscall layer charges this
  // to the calling process.
  SimDuration TakeSyncCharge() { return std::exchange(pending_sync_charge_, 0); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t delwri_flushes = 0;   // victim writes forced by reuse
    uint64_t delwri_write_errors = 0;  // delwri pushes that failed on media
    uint64_t delwri_data_lost = 0;     // dirty blocks dropped after the retry
                                       // budget (kDelwriRetryLimit) ran out
    uint64_t transient_allocs = 0;
    uint64_t async_read_fails = 0; // BreadAsync could not get a buffer
  };
  const Stats& stats() const { return stats_; }

  // Times a delayed write is retried after a media error before the cache
  // gives up, invalidates the block, and counts delwri_data_lost.
  static constexpr int kDelwriRetryLimit = 3;

 private:
  // Lock-held helpers: every declaration below carries IKDP_REQUIRES(cache) —
  // the caller enters with the cache lock held and gets it back held.  Both
  // checkers consume the contract: kcheck seeds its entry-held fixpoint from
  // it, and the TSA bridge turns it into requires_capability(lock_).

  // Looks up (dev, blkno); returns nullptr if not cached.
  IKDP_REQUIRES(cache) Buf* Incore(BlockDevice* dev, int64_t blkno);

  // Non-blocking variant of the getblk body: returns a busy buffer for
  // (dev, blkno) or nullptr if it would have to sleep.  Sets *was_hit.
  IKDP_CTX_ANY IKDP_REQUIRES(cache) Buf* TryGetBlk(BlockDevice* dev, int64_t blkno, bool* was_hit);

  // Takes a reusable buffer off the free list, writing out a delayed-write
  // victim if that is what the LRU yields.  Returns nullptr if none is
  // available without sleeping.  Drops and reacquires the lock around the
  // victim write's SubmitIo, but holds it at entry and exit.
  IKDP_CTX_ANY IKDP_REQUIRES(cache) Buf* TryGrabFree();

  // O(1) intrusive-list manipulation.  Every hot-path transition
  // (hit-acquire, release, victim grab) is a constant number of pointer
  // splices; no operation walks the free list.
  IKDP_REQUIRES(cache) size_t BucketOf(const BlockDevice* dev, int64_t blkno) const;
  IKDP_REQUIRES(cache) void HashInsert(Buf* b);
  IKDP_REQUIRES(cache) void HashRemove(Buf* b);
  IKDP_REQUIRES(cache) void FreelistPush(Buf* b, bool front);
  IKDP_REQUIRES(cache) void FreelistRemove(Buf* b);
  IKDP_REQUIRES(cache) Buf* FreelistPop();

  // Full-structure invariant check (O(nbufs)): freelist forward/backward
  // consistency and count, hash-chain membership, flag/link agreement.
  // Called from cold paths only; hot paths carry O(1) asserts instead.
  IKDP_REQUIRES(cache) void ValidateInvariants() const;

  // Records a kBreadHit / kBreadMiss trace event when a log is attached.
  void TraceLookup(bool hit, const BlockDevice* dev, int64_t blkno);

  // Issues `b` to its device, charging the submitting context.
  IKDP_CTX_ANY void SubmitIo(Buf* b);

  // Charges `d` to the current interrupt if executing at interrupt level.
  IKDP_CTX_ANY void ChargeIfInterrupt(SimDuration d);

  CpuSystem* cpu_;
  const int nbufs_;
  std::vector<std::unique_ptr<Buf>> pool_;
  // The cache lock (docs/klock.md): guards the hash table, the LRU free
  // list, the pending-write counts, and the transient-header registry.  It
  // ranks outside diskq (completion handlers re-enter Strategy through the
  // cache) and is NEVER held across SubmitIo — a RAM-disk Strategy delivers
  // Biodone synchronously, which re-enters Brelse — nor across a co_await.
  // `mutable` lets const accessors (PendingWrites) lock.
  mutable SpinLock lock_ IKDP_LOCK_RANK(cache, 40) = SpinLock("cache", 40);
  // Hash table: power-of-two bucket array of intrusive chains through
  // Buf::hash_prev/hash_next.  Insert/remove touch one keyed chain each;
  // distinct-key operations commute (COMMUTE probes in buffer_cache.cc).
  std::vector<Buf*> hash_buckets_ IKDP_GUARDED_BY(lock:cache);
  size_t hash_mask_ = 0;
  // LRU free list, intrusive through Buf::free_prev/free_next.
  // free_head_ = next victim (LRU); releases push at the tail, worthless
  // buffers at the head.  Push/pop ORDER decides victim choice, so these
  // carry plain WRITE probes — an unordered same-timestamp release pair
  // would make eviction schedule-dependent.
  Buf* free_head_ IKDP_GUARDED_BY(lock:cache) = nullptr;
  Buf* free_tail_ IKDP_GUARDED_BY(lock:cache) = nullptr;
  int free_count_ IKDP_GUARDED_BY(lock:cache) = 0;
  std::map<const BlockDevice*, int> pending_writes_ IKDP_GUARDED_BY(lock:cache);
  std::unordered_map<Buf*, std::unique_ptr<Buf>> transients_ IKDP_GUARDED_BY(lock:cache);
  int freelist_waiters_chan_ = 0;  // sleep channel for free-list exhaustion
  SimDuration pending_sync_charge_ = 0;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_BUF_BUFFER_CACHE_H_
