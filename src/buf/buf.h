// The buffer header, modelled on the 4.2BSD `struct buf` ([LMK89] ch. 7).
//
// A Buf describes one block-sized I/O in flight or cached: which device and
// physical block it maps, status flags, the data area, and the completion
// hook (`b_iodone`, invoked by biodone() when B_CALL is set) that the splice
// implementation uses to chain reads into writes without a process context.
//
// The paper adds two fields to the stock header (Section 5.2.3): the splice
// descriptor the buffer belongs to and the logical block number its data
// corresponds to, so several buffers can be in flight simultaneously and
// complete out of order.  Those fields appear here as `splice_owner` /
// `logical_blkno`, plus `splice_peer` for the write side to find the
// source-side buffer it aliases.

#ifndef SRC_BUF_BUF_H_
#define SRC_BUF_BUF_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/kern/ctx.h"
#include "src/sim/krace.h"
#include "src/sim/kspan.h"
#include "src/sim/time.h"

namespace ikdp {

// The filesystem block size used throughout (4.2BSD FFS default).
inline constexpr int64_t kBlockSize = 8192;

// A block's data area.  shared_ptr so a splice write-side header can alias
// the read-side buffer's data without copying (the paper's key zero-copy
// step: "both buffers share a common data area").
using BufData = std::shared_ptr<std::vector<uint8_t>>;

inline BufData MakeBufData() {
  return std::make_shared<std::vector<uint8_t>>(kBlockSize, 0);
}

// Buffer status flags (names follow 4.2BSD).
enum BufFlags : uint32_t {
  kBufBusy = 1u << 0,    // B_BUSY: owned by someone, not on the free list
  kBufDone = 1u << 1,    // B_DONE: contains valid data / I/O completed
  kBufDelwri = 1u << 2,  // B_DELWRI: dirty, write deferred
  kBufRead = 1u << 3,    // B_READ: current operation is a read
  kBufAsync = 1u << 4,   // B_ASYNC: release on completion, nobody waits
  kBufCall = 1u << 5,    // B_CALL: invoke b_iodone at completion
  kBufInval = 1u << 6,   // B_INVAL: contents invalid, reuse first
  kBufError = 1u << 7,   // B_ERROR: I/O failed
  kBufWanted = 1u << 8,  // B_WANTED: someone sleeps on this buffer
};

class BlockDevice;
class BufferCache;

struct Buf {
  BufferCache* cache = nullptr;  // owning cache (null for transient headers)
  BlockDevice* dev = nullptr;
  int64_t blkno = -1;  // physical block number on `dev`
  // Status flags cross every context: the process path sets kBufBusy, the
  // interrupt path (biodone) sets kBufDone, the softclock write side sets
  // kBufAsync|kBufCall.  Has/Set/Clear below carry the krace access probes.
  uint32_t flags IKDP_GUARDED_BY(any) = 0;
  // Errno of the failed I/O when kBufError is set (b_error in 4.2BSD);
  // written by the driver's completion interrupt just before Biodone, read
  // by whoever inspects kBufError.  0 when no error is pending.
  int error IKDP_GUARDED_BY(any) = 0;
  // Times a delwri victim write for this block has failed on media; bounds
  // the redirty-and-retry loop in Brelse (see BufferCache::Stats).
  int delwri_retries = 0;
  int64_t bcount = kBlockSize;  // bytes valid in this transfer
  BufData data;                 // may alias another buffer's data

  // Completion hook, run by biodone() when kBufCall is set.
  std::function<void(Buf&)> iodone;

  // --- splice extensions (paper Section 5.2.3) ---
  // Written at splice setup (process or interrupt context, whichever issues
  // the read) and consumed by the interrupt/softclock completion chain.
  void* splice_owner IKDP_GUARDED_BY(any) = nullptr;
  int64_t logical_blkno IKDP_GUARDED_BY(any) = -1;
  Buf* splice_peer IKDP_GUARDED_BY(any) = nullptr;

  // The kspan riding this I/O (src/sim/kspan.h): stamped from the cursor
  // when the buffer is acquired (getblk) and carried through the disk queue
  // so the completion interrupt attributes its work to the request that
  // issued the transfer.  Written by the acquiring context, read by the
  // driver and its completion interrupt — same contexts that own the flags.
  SpanId span IKDP_GUARDED_BY(any) = kNoSpan;

  // --- cache bookkeeping (BufferCache internal) ---
  //
  // Intrusive links, 4.2BSD-style (av_forw/av_back and b_forw/b_back): the
  // buffer is its own list node, so moving it between the LRU free list and
  // a hash chain is O(1) with no allocation.
  Buf* free_prev = nullptr;  // LRU free list (null when !on_freelist)
  Buf* free_next = nullptr;
  Buf* hash_prev = nullptr;  // per-bucket hash chain (null when !hashed)
  Buf* hash_next = nullptr;
  bool hashed = false;
  bool on_freelist = false;
  bool transient = false;      // header-only buffer outside the cache pool
  bool delwri_victim = false;  // in-flight delwri push (victim reuse/FlushDev)

  bool Has(BufFlags f) const {
    IKDP_KRACE_READ(this, "Buf::flags");
    return (flags & f) != 0;
  }
  void Set(BufFlags f) {
    IKDP_KRACE_WRITE(this, "Buf::flags");
    flags |= f;
  }
  void Clear(BufFlags f) {
    IKDP_KRACE_WRITE(this, "Buf::flags");
    flags &= ~static_cast<uint32_t>(f);
  }
};

// Marks the I/O on `b` complete, 4.2BSD biodone() semantics:
//  * kBufCall: clear it and invoke b->iodone (splice handlers run here);
//  * else kBufAsync: release the buffer back to its cache;
//  * else: set kBufDone and wake any biowait() sleeper.
// Device drivers call this when a transfer finishes.
IKDP_CTX_ANY void Biodone(Buf& b);

// A block device as the buffer cache sees it: a strategy routine that
// services one buffer and eventually calls Biodone(), plus a capacity.
//
// Strategy() returns the CPU time the *caller's context* must be charged for
// issuing (and, for synchronous devices like the RAM disk, performing) the
// transfer.  DMA devices return only their setup cost; the RAM disk returns
// the full bcopy time, because its "transfer" is a memory copy executed by
// the CPU in whoever's context submitted it (paper Section 6.1).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Begins servicing `b` (direction per kBufRead).  Completion is signalled
  // via Biodone(b), possibly synchronously before Strategy returns.
  // Interrupt-safe: the splice read path submits from completion handlers.
  IKDP_CTX_ANY virtual SimDuration Strategy(Buf& b) = 0;

  // Device size in kBlockSize blocks.
  virtual int64_t CapacityBlocks() const = 0;

  virtual const char* Name() const = 0;

  // Untimed content access, used for experiment setup (pre-creating files
  // without simulating the writes) and end-to-end verification.
  virtual void PokeBlock(int64_t blkno, const std::vector<uint8_t>& data) = 0;
  virtual std::vector<uint8_t> PeekBlock(int64_t blkno) const = 0;
};

}  // namespace ikdp

#endif  // SRC_BUF_BUF_H_
