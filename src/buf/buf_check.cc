#include "src/buf/buf_check.h"

#include "src/kern/ctx.h"

namespace ikdp {

void BufStateChecker::Fail(const char* rule, const Buf& b, const char* detail) {
  ContractAbort(
      "BufStateChecker: %s (dev=%s blkno=%lld flags=0x%x busy=%d done=%d "
      "delwri=%d transient=%d on_freelist=%d): %s",
      rule, b.dev != nullptr ? b.dev->Name() : "<none>",
      static_cast<long long>(b.blkno), b.flags, b.Has(kBufBusy) ? 1 : 0,
      b.Has(kBufDone) ? 1 : 0, b.Has(kBufDelwri) ? 1 : 0, b.transient ? 1 : 0,
      b.on_freelist ? 1 : 0, detail);
}

void BufStateChecker::OnAcquire(const Buf& b) {
  if (b.Has(kBufBusy)) {
    Fail("acquire of a busy buffer", b,
         "getblk must sleep on (or skip) a busy buffer, never hand it out twice");
  }
}

void BufStateChecker::OnRelease(const Buf& b) {
  if (b.transient) {
    Fail("brelse of a transient header", b,
         "transient splice headers are freed with FreeTransientHeader, not released");
  }
  if (!b.Has(kBufBusy)) {
    Fail("brelse of a non-busy buffer", b,
         "double-brelse, or a release on a path where kBufBusy was never established");
  }
}

void BufStateChecker::OnIoSubmit(const Buf& b) {
  if (!b.Has(kBufBusy)) {
    Fail("I/O submitted on a non-busy buffer", b,
         "strategy requires ownership: set kBufBusy before submitting");
  }
}

void BufStateChecker::OnIoDone(const Buf& b) {
  if (!b.Has(kBufBusy)) {
    Fail("biodone on a non-busy buffer", b,
         "completion after release: the buffer may already be reused");
  }
}

void BufStateChecker::OnDelwri(const Buf& b) {
  if (!b.Has(kBufBusy)) {
    Fail("bdwrite on a non-busy buffer", b,
         "only the busy holder may mark a buffer for delayed write");
  }
}

}  // namespace ikdp
