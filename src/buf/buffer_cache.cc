#include "src/buf/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/buf/buf_check.h"

namespace ikdp {

void Biodone(Buf& b) {
  assert(b.cache != nullptr);
  b.cache->IoDone(&b);
}

BufferCache::BufferCache(CpuSystem* cpu, int nbufs) : cpu_(cpu), nbufs_(nbufs) {
  assert(nbufs > 0);
  size_t buckets = 16;
  while (buckets < static_cast<size_t>(nbufs) * 2) {
    buckets <<= 1;
  }
  lock_.Acquire();
  hash_buckets_.assign(buckets, nullptr);
  hash_mask_ = buckets - 1;
  pool_.reserve(nbufs);
  for (int i = 0; i < nbufs; ++i) {
    auto b = std::make_unique<Buf>();
    b->cache = this;
    b->data = MakeBufData();
    FreelistPush(b.get(), /*front=*/false);
    pool_.push_back(std::move(b));
  }
  ValidateInvariants();
  lock_.Release();
}

BufferCache::~BufferCache() = default;

// --- internal helpers ---
//
// Everything in this section runs with lock_ ("cache") held by the caller.
// TryGrabFree is the one exception to "held throughout": it drops the lock
// around SubmitIo (a RAM-disk Strategy completes synchronously and re-enters
// Brelse, which acquires) and reacquires before continuing the scan.

size_t BufferCache::BucketOf(const BlockDevice* dev, int64_t blkno) const {
  const size_t h =
      std::hash<const void*>()(dev) ^ std::hash<int64_t>()(blkno) * 1099511628211u;
  return h & hash_mask_;
}

void BufferCache::HashInsert(Buf* b) {
  // Distinct (dev, blkno) keys land on independent chains; same-timestamp
  // inserts/removes of different blocks commute, and the same block is
  // protected by kBufBusy (so a same-block pair would already be a
  // buf-discipline violation).
  IKDP_KRACE_COMMUTE(this, "BufferCache::hash_buckets_");
  assert(!b->hashed && b->hash_prev == nullptr && b->hash_next == nullptr);
  Buf*& head = hash_buckets_[BucketOf(b->dev, b->blkno)];
  b->hash_next = head;
  if (head != nullptr) {
    head->hash_prev = b;
  }
  head = b;
  b->hashed = true;
}

void BufferCache::HashRemove(Buf* b) {
  if (!b->hashed) {
    return;
  }
  IKDP_KRACE_COMMUTE(this, "BufferCache::hash_buckets_");
  if (b->hash_prev != nullptr) {
    b->hash_prev->hash_next = b->hash_next;
  } else {
    assert(hash_buckets_[BucketOf(b->dev, b->blkno)] == b);
    hash_buckets_[BucketOf(b->dev, b->blkno)] = b->hash_next;
  }
  if (b->hash_next != nullptr) {
    b->hash_next->hash_prev = b->hash_prev;
  }
  b->hash_prev = nullptr;
  b->hash_next = nullptr;
  b->hashed = false;
}

void BufferCache::FreelistPush(Buf* b, bool front) {
  // LRU order is victim-selection order: push/pop sequencing is observable
  // through eviction, so the freelist carries plain WRITE probes.
  IKDP_KRACE_WRITE(this, "BufferCache::freelist");
  assert(!b->on_freelist && b->free_prev == nullptr && b->free_next == nullptr);
  if (front) {
    b->free_next = free_head_;
    if (free_head_ != nullptr) {
      free_head_->free_prev = b;
    } else {
      free_tail_ = b;
    }
    free_head_ = b;
  } else {
    b->free_prev = free_tail_;
    if (free_tail_ != nullptr) {
      free_tail_->free_next = b;
    } else {
      free_head_ = b;
    }
    free_tail_ = b;
  }
  b->on_freelist = true;
  ++free_count_;
  cpu_->Wakeup(&freelist_waiters_chan_);
}

void BufferCache::FreelistRemove(Buf* b) {
  IKDP_KRACE_WRITE(this, "BufferCache::freelist");
  assert(b->on_freelist);
  assert((b->free_prev == nullptr) == (free_head_ == b));
  assert((b->free_next == nullptr) == (free_tail_ == b));
  if (b->free_prev != nullptr) {
    b->free_prev->free_next = b->free_next;
  } else {
    free_head_ = b->free_next;
  }
  if (b->free_next != nullptr) {
    b->free_next->free_prev = b->free_prev;
  } else {
    free_tail_ = b->free_prev;
  }
  b->free_prev = nullptr;
  b->free_next = nullptr;
  b->on_freelist = false;
  --free_count_;
}

Buf* BufferCache::FreelistPop() {
  assert(free_head_ != nullptr);
  Buf* b = free_head_;
  FreelistRemove(b);
  return b;
}

void BufferCache::ValidateInvariants() const {
  int forward = 0;
  const Buf* prev = nullptr;
  for (const Buf* b = free_head_; b != nullptr; b = b->free_next) {
    assert(b->on_freelist);
    assert(b->free_prev == prev);
    assert(!b->Has(kBufBusy));
    prev = b;
    ++forward;
  }
  assert(prev == free_tail_);
  assert(forward == free_count_);
  for (const auto& owned : pool_) {
    const Buf* b = owned.get();
    assert(b->on_freelist == (b->free_prev != nullptr || b->free_next != nullptr ||
                              free_head_ == b));
    if (b->hashed) {
      const Buf* found = nullptr;
      for (const Buf* c = hash_buckets_[BucketOf(b->dev, b->blkno)]; c != nullptr;
           c = c->hash_next) {
        if (c == b) {
          found = c;
        }
      }
      assert(found == b && "hashed buffer missing from its bucket chain");
    } else {
      assert(b->hash_prev == nullptr && b->hash_next == nullptr);
    }
  }
}

Buf* BufferCache::Incore(BlockDevice* dev, int64_t blkno) {
  for (Buf* b = hash_buckets_[BucketOf(dev, blkno)]; b != nullptr; b = b->hash_next) {
    if (b->dev == dev && b->blkno == blkno) {
      return b;
    }
  }
  return nullptr;
}

Buf* BufferCache::TryGrabFree() {
  while (free_head_ != nullptr) {
    Buf* v = FreelistPop();
    if (v->Has(kBufDelwri)) {
      // The LRU victim is dirty: push it to the device asynchronously and
      // keep looking (4.2BSD getblk does the same bawrite-and-retry dance).
      BufStateChecker::OnAcquire(*v);
      v->Set(kBufBusy);
      v->Set(kBufAsync);
      v->Clear(kBufDelwri);
      v->Clear(kBufRead);
      v->Clear(kBufDone);
      v->delwri_victim = true;
      ++pending_writes_[v->dev];
      ++stats_.delwri_flushes;
      lock_.Release();
      if (TraceLog* t = cpu_->trace()) {
        t->Record(cpu_->sim()->Now(), TraceKind::kDelwriFlush, v->blkno, 0, v->dev->Name());
      }
      SubmitIo(v);
      lock_.Acquire();
      continue;
    }
    return v;
  }
  return nullptr;
}

Buf* BufferCache::TryGetBlk(BlockDevice* dev, int64_t blkno, bool* was_hit) {
  *was_hit = false;
  if (Buf* b = Incore(dev, blkno)) {
    if (b->Has(kBufBusy)) {
      return nullptr;
    }
    assert(b->on_freelist);
    BufStateChecker::OnAcquire(*b);
    FreelistRemove(b);
    b->Set(kBufBusy);
    b->Clear(kBufInval);
    b->span = CurrentKspan().span;
    *was_hit = b->Has(kBufDone);
    return b;
  }
  Buf* v = TryGrabFree();
  if (v == nullptr) {
    return nullptr;
  }
  BufStateChecker::OnAcquire(*v);
  HashRemove(v);
  v->dev = dev;
  v->blkno = blkno;
  v->flags = kBufBusy;
  v->error = 0;
  v->delwri_retries = 0;
  v->delwri_victim = false;
  v->bcount = kBlockSize;
  v->splice_owner = nullptr;
  v->logical_blkno = -1;
  v->splice_peer = nullptr;
  // Stamp the acquiring request's span; it rides the disk queue so the
  // completion interrupt can attribute its work (src/sim/kspan.h).
  v->span = CurrentKspan().span;
  v->iodone = nullptr;
  if (v->data.use_count() > 1) {
    // The old data area is still aliased by an in-flight splice header; give
    // this buffer a fresh frame rather than scribbling on shared bytes.
    v->data = MakeBufData();
  }
  HashInsert(v);
  return v;
}

void BufferCache::TraceLookup(bool hit, const BlockDevice* dev, int64_t blkno) {
  if (TraceLog* t = cpu_->trace()) {
    t->Record(cpu_->sim()->Now(), hit ? TraceKind::kBreadHit : TraceKind::kBreadMiss, blkno, 0,
              dev->Name());
  }
}

void BufferCache::SubmitIo(Buf* b) {
  BufStateChecker::OnIoSubmit(*b);
  const SimDuration cost = cpu_->costs().driver_start + b->dev->Strategy(*b);
  if (cpu_->InInterrupt()) {
    cpu_->ChargeInterrupt(cost);
  } else {
    pending_sync_charge_ += cost;
  }
}

void BufferCache::ChargeIfInterrupt(SimDuration d) {
  if (cpu_->InInterrupt()) {
    cpu_->ChargeInterrupt(d);
  }
}

// --- completion ---

void BufferCache::IoDone(Buf* b) {
  BufStateChecker::OnIoDone(*b);
  if (b->Has(kBufCall)) {
    b->Clear(kBufCall);
    b->Set(kBufDone);
    assert(b->iodone && "kBufCall buffer without an iodone hook");
    auto fn = std::move(b->iodone);
    b->iodone = nullptr;
    fn(*b);
    return;
  }
  b->Set(kBufDone);
  if (b->Has(kBufAsync)) {
    if (!b->Has(kBufRead)) {
      lock_.Acquire();
      auto it = pending_writes_.find(b->dev);
      assert(it != pending_writes_.end() && it->second > 0);
      --it->second;
      lock_.Release();
      cpu_->Wakeup(&pending_writes_);
    }
    Brelse(b);  // acquires the cache lock itself
    return;
  }
  cpu_->Wakeup(b);
}

void BufferCache::Brelse(Buf* b) {
  BufStateChecker::OnRelease(*b);
  // The whole release is one critical section: flag transitions, hash
  // removal, and the freelist push must be atomic with respect to a victim
  // scan.  Wakeup only enqueues (never runs the sleeper synchronously), so
  // holding the lock across it is safe.
  SpinGuard g(lock_);
  if (b->delwri_victim) {
    // A delwri push (victim flush or FlushDev) just completed.  On failure
    // the dirty data is still good in memory: re-dirty the buffer so a later
    // victim grab or FlushDev retries the write, instead of the worthless
    // path below silently discarding modified data.  The retry budget bounds
    // livelock against a permanently bad block; past it the loss is
    // accounted explicitly and the mapping invalidated.
    b->delwri_victim = false;
    if (b->Has(kBufError)) {
      ++stats_.delwri_write_errors;
      if (++b->delwri_retries < kDelwriRetryLimit && b->hashed) {
        b->Clear(kBufError);
        b->error = 0;
        b->Set(kBufDelwri);
        b->Set(kBufDone);
      } else {
        ++stats_.delwri_data_lost;
      }
    } else {
      b->delwri_retries = 0;
    }
  }
  if (b->Has(kBufWanted)) {
    b->Clear(kBufWanted);
    cpu_->Wakeup(b);
  }
  b->Clear(kBufBusy);
  b->Clear(kBufAsync);
  b->Clear(kBufRead);
  const bool worthless = b->Has(kBufInval) || b->Has(kBufError) || !b->hashed;
  if (worthless) {
    HashRemove(b);
    b->Clear(kBufDone);
    b->Clear(kBufDelwri);
    b->Clear(kBufError);
    b->error = 0;
    b->delwri_retries = 0;
  }
  FreelistPush(b, /*front=*/worthless);
}

// --- process-context API ---

Task<Buf*> BufferCache::GetBlk(Process& p, BlockDevice* dev, int64_t blkno) {
  co_await cpu_->Use(p, cpu_->costs().bufcache_op);
  for (;;) {
    // Explicit Acquire/Release, not SpinGuard: a guard must never span a
    // suspension point, and this loop sleeps.  The lock is released before
    // every co_await below.
    lock_.Acquire();
    bool hit = false;
    Buf* b = TryGetBlk(dev, blkno, &hit);
    if (b != nullptr) {
      if (hit) {
        ++stats_.hits;
      } else {
        ++stats_.misses;
      }
      lock_.Release();
      TraceLookup(hit, dev, blkno);
      const SimDuration charge = std::exchange(pending_sync_charge_, 0);
      if (charge > 0) {
        co_await cpu_->Use(p, charge);
      }
      co_return b;
    }
    Buf* busy = Incore(dev, blkno);
    const bool wait_busy = busy != nullptr && busy->Has(kBufBusy);
    if (wait_busy) {
      busy->Set(kBufWanted);
    }
    lock_.Release();
    if (TraceLog* t = cpu_->trace()) {
      t->Record(cpu_->sim()->Now(), TraceKind::kGetblkSleep, p.pid(), blkno, dev->Name());
    }
    if (wait_busy) {
      co_await cpu_->Sleep(p, busy, kPriBio);
    } else {
      co_await cpu_->Sleep(p, &freelist_waiters_chan_, kPriBio);
    }
  }
}

Task<Buf*> BufferCache::Bread(Process& p, BlockDevice* dev, int64_t blkno) {
  Buf* b = co_await GetBlk(p, dev, blkno);
  if (b->Has(kBufDone)) {
    co_return b;
  }
  b->Set(kBufRead);
  SubmitIo(b);
  const SimDuration charge = std::exchange(pending_sync_charge_, 0);
  if (charge > 0) {
    co_await cpu_->Use(p, charge);
  }
  co_await Biowait(p, b);
  co_return b;
}

void BufferCache::IssueReadAhead(BlockDevice* dev, int64_t blkno) {
  lock_.Acquire();
  if (blkno < 0 || blkno >= dev->CapacityBlocks() || Incore(dev, blkno) != nullptr) {
    lock_.Release();
    return;
  }
  bool hit = false;
  Buf* ra = TryGetBlk(dev, blkno, &hit);
  lock_.Release();
  if (ra == nullptr) {
    return;  // no buffer without sleeping; skip the read-ahead
  }
  if (hit) {
    // Raced into validity; just give it back (Brelse reacquires).
    Brelse(ra);
    return;
  }
  ++stats_.misses;
  TraceLookup(/*hit=*/false, dev, blkno);
  ra->Set(kBufRead);
  ra->Set(kBufAsync);
  SubmitIo(ra);
}

Task<Buf*> BufferCache::Breada(Process& p, BlockDevice* dev, int64_t blkno, int64_t rablkno) {
  // Issue the read-ahead first so the device can coalesce the stream.
  if (rablkno >= 0) {
    IssueReadAhead(dev, rablkno);
  }
  Buf* b = co_await Bread(p, dev, blkno);
  co_return b;
}

Task<> BufferCache::Biowait(Process& p, Buf* b) {
  while (!b->Has(kBufDone)) {
    co_await cpu_->Sleep(p, b, kPriBio);
  }
  // On failure kBufError stays set for the caller to inspect: injected
  // media errors surface here (tests/fault_test.cc) and ride up through
  // read()/write() as short counts or -1.
}

Task<> BufferCache::Bwrite(Process& p, Buf* b) {
  co_await cpu_->Use(p, cpu_->costs().bufcache_op);
  b->Clear(kBufRead);
  b->Clear(kBufDelwri);
  b->Clear(kBufDone);
  b->Clear(kBufAsync);
  SubmitIo(b);
  const SimDuration charge = std::exchange(pending_sync_charge_, 0);
  if (charge > 0) {
    co_await cpu_->Use(p, charge);
  }
  co_await Biowait(p, b);
  Brelse(b);
}

Task<> BufferCache::Bawrite(Process& p, Buf* b) {
  co_await cpu_->Use(p, cpu_->costs().bufcache_op);
  b->Clear(kBufRead);
  b->Clear(kBufDelwri);
  b->Clear(kBufDone);
  b->Set(kBufAsync);
  lock_.Acquire();
  ++pending_writes_[b->dev];
  lock_.Release();
  SubmitIo(b);
  const SimDuration charge = std::exchange(pending_sync_charge_, 0);
  if (charge > 0) {
    co_await cpu_->Use(p, charge);
  }
}

void BufferCache::Bdwrite(Process& /*p*/, Buf* b) {
  BufStateChecker::OnDelwri(*b);
  b->Set(kBufDelwri);
  b->Set(kBufDone);
  Brelse(b);
}

Task<> BufferCache::FlushDev(Process& p, BlockDevice* dev) {
  lock_.Acquire();
  ValidateInvariants();
  lock_.Release();
  // Push every idle delayed-write block of this device.  The lock covers
  // each per-buffer claim (flag check through pending-write count) but is
  // dropped for SubmitIo and for the charge suspension.
  for (const auto& owned : pool_) {
    Buf* b = owned.get();
    lock_.Acquire();
    if (b->dev != dev || !b->Has(kBufDelwri) || b->Has(kBufBusy)) {
      lock_.Release();
      continue;
    }
    assert(b->on_freelist);
    BufStateChecker::OnAcquire(*b);
    FreelistRemove(b);
    b->Set(kBufBusy);
    b->Clear(kBufDelwri);
    b->Clear(kBufDone);
    b->Clear(kBufRead);
    b->Set(kBufAsync);
    b->delwri_victim = true;  // route failures through the redirty path
    ++pending_writes_[dev];
    lock_.Release();
    SubmitIo(b);
    const SimDuration charge = std::exchange(pending_sync_charge_, 0);
    if (charge > 0) {
      co_await cpu_->Use(p, charge);
    }
  }
  while (PendingWrites(dev) > 0) {
    co_await cpu_->Sleep(p, &pending_writes_, kPriBio);
  }
}

void BufferCache::InvalidateDev(BlockDevice* dev) {
  SpinGuard g(lock_);
  for (const auto& owned : pool_) {
    Buf* b = owned.get();
    if (b->dev == dev && !b->Has(kBufBusy) && !b->Has(kBufDelwri) && b->hashed) {
      HashRemove(b);
      b->Clear(kBufDone);
      // Move to the front of the free list: it is the best victim now.
      if (b->on_freelist) {
        FreelistRemove(b);
        FreelistPush(b, /*front=*/true);
      }
    }
  }
  ValidateInvariants();
}

void BufferCache::FlushAllInstant() {
  for (const auto& owned : pool_) {
    Buf* b = owned.get();
    if (b->Has(kBufDelwri) && !b->Has(kBufBusy) && b->data != nullptr) {
      b->dev->PokeBlock(b->blkno, *b->data);
      b->Clear(kBufDelwri);
    }
  }
}

int BufferCache::PendingWrites(BlockDevice* dev) const {
  SpinGuard g(lock_);
  auto it = pending_writes_.find(dev);
  return it == pending_writes_.end() ? 0 : it->second;
}

// --- splice (non-blocking) API ---

bool BufferCache::BreadAsync(BlockDevice* dev, int64_t blkno, std::function<void(Buf&)> iodone) {
  ChargeIfInterrupt(cpu_->costs().bufcache_op);
  lock_.Acquire();
  bool hit = false;
  Buf* b = TryGetBlk(dev, blkno, &hit);
  lock_.Release();
  if (b == nullptr) {
    ++stats_.async_read_fails;
    return false;
  }
  TraceLookup(hit, dev, blkno);
  if (hit) {
    ++stats_.hits;
    // Already valid: deliver straight to the handler (unlocked — the
    // handler re-enters the cache heavily), as the paper's modified bread
    // does when the block is cached.
    iodone(*b);
    return true;
  }
  ++stats_.misses;
  b->Set(kBufRead);
  b->Set(kBufCall);
  b->iodone = std::move(iodone);
  SubmitIo(b);
  return true;
}

Buf* BufferCache::AllocTransientHeader(BlockDevice* dev, int64_t blkno) {
  auto owned = std::make_unique<Buf>();
  Buf* b = owned.get();
  lock_.Acquire();
  transients_[b] = std::move(owned);
  lock_.Release();
  b->cache = this;
  b->dev = dev;
  b->blkno = blkno;
  b->flags = kBufBusy;
  b->transient = true;
  b->data = nullptr;  // "avoids allocating any real memory to the buffer"
  ++stats_.transient_allocs;
  ChargeIfInterrupt(cpu_->costs().bufcache_op);
  return b;
}

void BufferCache::FreeTransientHeader(Buf* b) {
  assert(b->transient);
  SpinGuard g(lock_);
  auto it = transients_.find(b);
  assert(it != transients_.end());
  transients_.erase(it);
}

void BufferCache::BawriteAsync(Buf* b, std::function<void(Buf&)> iodone) {
  assert(b->Has(kBufBusy));
  ChargeIfInterrupt(cpu_->costs().bufcache_op);
  b->Clear(kBufRead);
  b->Clear(kBufDone);
  b->Set(kBufAsync);
  b->Set(kBufCall);
  b->iodone = std::move(iodone);
  SubmitIo(b);
}

}  // namespace ikdp
