// Runtime enforcement of the 4.2BSD buffer flag discipline.
//
// Every Buf walks a strict state machine ([LMK89] ch. 7): a buffer is
// acquired busy (getblk), does I/O while busy, and is released exactly once
// back to the free list.  The transitions the cache relies on:
//
//   !BUSY --getblk/bread/transient-alloc--> BUSY        (OnAcquire)
//   BUSY  --strategy submit-------------->  BUSY        (OnIoSubmit)
//   BUSY  --biodone---------------------->  BUSY|DONE   (OnIoDone)
//   BUSY  --bdwrite---------------------->  BUSY|DELWRI (OnDelwri)
//   BUSY  --brelse----------------------->  !BUSY       (OnRelease)
//
// Violations — releasing a buffer nobody owns, double-brelse, submitting or
// completing I/O on a non-busy buffer, marking a non-busy buffer dirty —
// would silently corrupt the cache's intrusive lists and the experiments'
// results.  Each hook aborts via ContractAbort with the buffer's identity
// and flag word, so a violation fails loudly in every build type.
//
// These are the same rules tools/kcheck enforces statically at call sites
// (rule class "busy-flag misuse"); the hooks catch dynamic paths the static
// call graph cannot see (completion std::functions, virtual endpoints).

#ifndef SRC_BUF_BUF_CHECK_H_
#define SRC_BUF_BUF_CHECK_H_

#include "src/buf/buf.h"

namespace ikdp {

class BufStateChecker {
 public:
  // A buffer is being granted to an owner: it must not already be busy.
  static void OnAcquire(const Buf& b);

  // A busy buffer is being released (brelse).  Aborts on the classic
  // double-brelse (buffer no longer busy) and on transient headers, which
  // are freed, never released.
  static void OnRelease(const Buf& b);

  // I/O is being submitted to the device: the buffer must be busy (owned),
  // or the strategy routine could race a concurrent reuse.
  static void OnIoSubmit(const Buf& b);

  // Device completion (biodone): the buffer must still be busy.
  static void OnIoDone(const Buf& b);

  // The buffer is being marked for delayed write: only its owner (busy
  // holder) may dirty it.
  static void OnDelwri(const Buf& b);

 private:
  [[noreturn]] static void Fail(const char* rule, const Buf& b, const char* detail);
};

}  // namespace ikdp

#endif  // SRC_BUF_BUF_CHECK_H_
