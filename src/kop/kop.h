// kop: verifiable in-kernel splice operators (the BPF-for-storage shape).
//
// The source paper moves data MOVEMENT into the kernel; its descendant "BPF
// for storage: an exokernel-inspired approach" (PAPERS.md) argues for moving
// computation over that data into the kernel path too.  A kop program is a
// tiny linear pipeline of typed stages that executes over each splice chunk
// *inside* the data path — at interrupt level on the synchronous read-
// completion path, at softclock level from the callout-deferred write handler
// and the ring reaper — so a stream can be checksummed, filtered, transformed
// or routed without ever surfacing to a user process.
//
// Safety comes from the same split the rest of this kernel uses:
//
//  * STATICALLY — KopVerify() runs at kop_load(2) time and rejects programs
//    that could misbehave in interrupt context: unbounded loops (repeat
//    counts outside [1, kKopMaxRepeat]), out-of-chunk access (stage windows
//    beyond the declared chunk size), and sink sets inconsistent with the
//    pipeline (a route stage that is not last, or whose fan-out does not
//    match the attached sink count).  Rule classes mirror tools/kcheck:
//    each violation carries a stable rule name, and KopSeededViolations()
//    provides one seeded fixture per rule class for the self-tests.
//
//  * DYNAMICALLY — the interpreter re-checks every stage window against the
//    ACTUAL chunk length (the last chunk of a file is short) and rejects the
//    chunk with kErrKopReject instead of reading out of bounds.  A rejection
//    rides the PR6 fault machinery: sticky first-errno on the descriptor,
//    SpliceError on both fds, LINKED-sibling cancellation on rings.
//
// CPU accounting: every stage charges per byte at the context that runs it,
// into dedicated ChargeKey buckets (kop.interrupt / kop.softclock /
// kop.process) so CheckAttributionClosure still closes exactly and the
// Table-1 availability math shows precisely what in-kernel computation
// costs.  Execution itself never blocks, never sleeps, never draws RNG.

#ifndef SRC_KOP_KOP_H_
#define SRC_KOP_KOP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/costs.h"
#include "src/kern/ctx.h"
#include "src/sim/time.h"
#include "src/splice/endpoint.h"

namespace ikdp {

// Errno for "operator rejected this chunk" (EBADMSG shape).  Distinct from
// kErrIo/kErrInval so tests and CQE consumers can tell an operator rejection
// from a device fault.
inline constexpr int kErrKopReject = 74;

// Program-shape limits enforced by the verifier.
inline constexpr int kKopMaxStages = 8;
inline constexpr int kKopMaxRepeat = 4;
inline constexpr int kKopMaxSinks = 4;

enum class KopStageKind : uint8_t {
  kChecksum = 0,  // fold the window into the running checksum accumulator
  kFilter,        // keep or drop the chunk on a byte comparison
  kTransform,     // xor the window with `arg` (clones the data area first)
  kRoute,         // pick sink = data[off] % n_sinks; must be the last stage
};

const char* KopStageKindName(KopStageKind k);

enum class KopFilterMode : uint8_t {
  kKeepIfEq = 0,  // keep the chunk iff data[off] == arg, else drop
  kKeepIfNe,      // keep the chunk iff data[off] != arg, else drop
  kAbortIfEq,     // reject the whole stream iff data[off] == arg
};

struct KopStage {
  KopStageKind kind = KopStageKind::kChecksum;
  // Byte window [off, off+len) within the chunk; len == -1 means "to the end
  // of the chunk".  Filters and routes examine data[off] only but still
  // declare their window for the verifier.
  int64_t off = 0;
  int64_t len = -1;
  // Stage argument: the filter compare byte, the transform xor key.
  uint8_t arg = 0;
  KopFilterMode filter_mode = KopFilterMode::kKeepIfEq;
  // kRoute: number of sinks the program fans out to (must match the
  // attachment's sink count).  1 everywhere else.
  int n_sinks = 1;
  // Bounded repeat count (checksum passes); the verifier rejects anything
  // outside [1, kKopMaxRepeat] — this is the "no unbounded loops" rule.
  int repeat = 1;
};

struct KopProgram {
  std::vector<KopStage> stages;
  // Set by KopVerify on success; every bind site (kop_attach, the engine,
  // ResolveSqe) enforces verified==true — the reject-unverified-program rule.
  bool verified = false;

  // Fan-out of the final route stage, or 1 for a linear program.
  int SinkCount() const {
    if (!stages.empty() && stages.back().kind == KopStageKind::kRoute)
      return stages.back().n_sinks;
    return 1;
  }
  // True when some stage can drop chunks (filter) — bind sites use this to
  // refuse file sinks, whose byte offsets would be corrupted by holes.
  bool CanDrop() const {
    for (const KopStage& s : stages)
      if (s.kind == KopStageKind::kFilter) return true;
    return false;
  }
};

// One verifier violation.  `rule` is a stable rule-class name (see
// docs/kop.md): empty-program, too-many-stages, unbounded-loop,
// out-of-chunk, route-not-last, sink-mismatch.
struct KopFinding {
  std::string rule;
  int stage = -1;  // offending stage index, -1 for whole-program rules
  std::string detail;
};

// Statically verifies `prog` against chunks of at most `chunk_bytes`.
// Returns all findings (empty == accepted) and, on acceptance, the caller
// marks the program verified.  Pure host-side computation: no simulated
// time, no RNG.
std::vector<KopFinding> KopVerify(const KopProgram& prog, int64_t chunk_bytes);

// Seeded-violation fixtures, one per rule class, mirroring
// tools/kcheck/testdata: each pairs a deliberately-broken program with the
// rule KopVerify must flag it under.  The kop self-tests iterate this table.
struct KopSeededViolation {
  const char* rule;
  KopProgram program;
};
std::vector<KopSeededViolation> KopSeededViolations(int64_t chunk_bytes);

// --- interpreter ---

// Per-attachment run state.  Lives in the splice descriptor / ring op and is
// touched from whatever context executes chunks there (interrupt on sync
// read completion, softclock from the callout write handler and the reaper),
// the same logically-concurrent sharing the descriptor's own counters have.
struct KopRunState {
  uint64_t checksum IKDP_GUARDED_BY(any) = 0;    // running FNV-style fold
  int64_t chunks_in IKDP_GUARDED_BY(any) = 0;
  int64_t chunks_dropped IKDP_GUARDED_BY(any) = 0;
  int64_t chunks_rejected IKDP_GUARDED_BY(any) = 0;
  int64_t bytes_in IKDP_GUARDED_BY(any) = 0;
  int64_t bytes_out IKDP_GUARDED_BY(any) = 0;
};

// Outcome of running a program over one chunk.
struct KopOutcome {
  enum class Kind : uint8_t {
    kPass = 0,  // chunk continues to sinks_[route]
    kDrop,      // chunk consumed in-kernel (filter), stream continues
    kReject,    // stream aborts with `error` (kErrKopReject)
  };
  Kind kind = Kind::kPass;
  int route = 0;  // sink index for kPass
  int error = 0;  // errno for kReject
  SimDuration cost = 0;  // total CPU to charge at the executing context
};

// Executes `prog` over `chunk` in the calling context.  Never blocks; the
// caller charges `outcome.cost` via the bucket for its context.  kTransform
// clones the data area before mutating (chunk.data aliases the buffer
// cache), charging the clone bcopy like the zero_copy=false ablation does.
// The verifier guarantee is re-checked against chunk.nbytes: a window beyond
// the actual payload rejects the chunk (out-of-chunk access at runtime).
IKDP_CTX_ANY KopOutcome KopExecChunk(const KopProgram& prog, SpliceChunk& chunk,
                                     KopRunState* st, const CostConfig& costs);

}  // namespace ikdp

#endif  // SRC_KOP_KOP_H_
