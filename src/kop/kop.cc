#include "src/kop/kop.h"

#include <cstdio>
#include <vector>

namespace ikdp {

const char* KopStageKindName(KopStageKind k) {
  switch (k) {
    case KopStageKind::kChecksum:
      return "checksum";
    case KopStageKind::kFilter:
      return "filter";
    case KopStageKind::kTransform:
      return "transform";
    case KopStageKind::kRoute:
      return "route";
  }
  return "?";
}

namespace {

std::string Detail(const char* fmt, long long a, long long b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

// Resolves a stage's declared window against a chunk of `nbytes`.  Returns
// false when any byte of the window falls outside the chunk.  A filter or
// route only examines data[off], but the declared window is still what the
// verifier (and the runtime re-check) holds the stage to.
bool ResolveWindow(const KopStage& s, int64_t nbytes, int64_t* off, int64_t* len) {
  if (s.off < 0 || s.off > nbytes) return false;
  int64_t l = s.len < 0 ? nbytes - s.off : s.len;
  if (l < 0 || s.off + l > nbytes) return false;
  // Stages that dereference data[off] need at least one byte in the window.
  if ((s.kind == KopStageKind::kFilter || s.kind == KopStageKind::kRoute) && l < 1)
    return false;
  *off = s.off;
  *len = l;
  return true;
}

}  // namespace

std::vector<KopFinding> KopVerify(const KopProgram& prog, int64_t chunk_bytes) {
  std::vector<KopFinding> findings;
  auto flag = [&](const char* rule, int stage, std::string detail) {
    findings.push_back(KopFinding{rule, stage, std::move(detail)});
  };

  if (prog.stages.empty()) {
    flag("empty-program", -1, "program has no stages");
    return findings;
  }
  if (static_cast<int>(prog.stages.size()) > kKopMaxStages) {
    flag("too-many-stages", -1,
         Detail("%lld stages exceeds the limit of %lld", (long long)prog.stages.size(),
                kKopMaxStages));
  }

  for (size_t i = 0; i < prog.stages.size(); ++i) {
    const KopStage& s = prog.stages[i];
    const int si = static_cast<int>(i);

    // Rule: unbounded-loop.  The only iteration construct is the bounded
    // per-stage repeat count; anything outside [1, kKopMaxRepeat] is either a
    // zero-trip no-op (a program bug) or an attempt at unbounded work in
    // interrupt context.
    if (s.repeat < 1 || s.repeat > kKopMaxRepeat) {
      flag("unbounded-loop", si,
           Detail("repeat=%lld outside [1, %lld]", s.repeat, kKopMaxRepeat));
    }

    // Rule: out-of-chunk.  The declared window must fit the declared chunk
    // size.  (The interpreter re-checks against the ACTUAL chunk length at
    // runtime — short last chunks — and rejects instead of reading past.)
    int64_t off = 0, len = 0;
    if (!ResolveWindow(s, chunk_bytes, &off, &len)) {
      flag("out-of-chunk", si,
           Detail("window [off=%lld, len=%lld) exceeds chunk", s.off, s.len));
    }

    // Rules: route-not-last / sink-mismatch.  Routing decides which sink the
    // chunk continues to, so it only makes sense as the final stage, exactly
    // once, with a fan-out the attachment can satisfy.
    if (s.kind == KopStageKind::kRoute) {
      if (i + 1 != prog.stages.size()) {
        flag("route-not-last", si, "route stage must be the final stage");
      }
      if (s.n_sinks < 2 || s.n_sinks > kKopMaxSinks) {
        flag("sink-mismatch", si,
             Detail("route fan-out %lld outside [2, %lld]", s.n_sinks, kKopMaxSinks));
      }
    } else if (s.n_sinks != 1) {
      flag("sink-mismatch", si,
           Detail("non-route stage declares %lld sinks (want 1)", s.n_sinks, 0));
    }
  }
  return findings;
}

std::vector<KopSeededViolation> KopSeededViolations(int64_t chunk_bytes) {
  std::vector<KopSeededViolation> v;

  // empty-program: no stages at all.
  v.push_back({"empty-program", KopProgram{}});

  // too-many-stages: kKopMaxStages+1 checksum stages.
  {
    KopProgram p;
    for (int i = 0; i < kKopMaxStages + 1; ++i)
      p.stages.push_back(KopStage{KopStageKind::kChecksum});
    v.push_back({"too-many-stages", std::move(p)});
  }

  // unbounded-loop: a checksum stage asking for more repeats than the bound.
  {
    KopProgram p;
    KopStage s;
    s.kind = KopStageKind::kChecksum;
    s.repeat = kKopMaxRepeat + 1;
    p.stages.push_back(s);
    v.push_back({"unbounded-loop", std::move(p)});
  }

  // out-of-chunk: a window starting past the end of the chunk.
  {
    KopProgram p;
    KopStage s;
    s.kind = KopStageKind::kFilter;
    s.off = chunk_bytes;  // data[chunk_bytes] is one past the end
    s.len = 1;
    p.stages.push_back(s);
    v.push_back({"out-of-chunk", std::move(p)});
  }

  // route-not-last: a route followed by a checksum.
  {
    KopProgram p;
    KopStage r;
    r.kind = KopStageKind::kRoute;
    r.n_sinks = 2;
    p.stages.push_back(r);
    p.stages.push_back(KopStage{KopStageKind::kChecksum});
    v.push_back({"route-not-last", std::move(p)});
  }

  // sink-mismatch: a route whose fan-out a splice cannot have.
  {
    KopProgram p;
    KopStage r;
    r.kind = KopStageKind::kRoute;
    r.n_sinks = 1;  // "routing" to one sink is not routing
    p.stages.push_back(r);
    v.push_back({"sink-mismatch", std::move(p)});
  }

  return v;
}

KopOutcome KopExecChunk(const KopProgram& prog, SpliceChunk& chunk, KopRunState* st,
                        const CostConfig& costs) {
  KopOutcome out;
  st->chunks_in += 1;
  st->bytes_in += chunk.nbytes;

  // Lazily cloned data area: the incoming chunk.data aliases the buffer
  // cache's storage (the paper's zero-copy trick), so a transform must copy
  // before scribbling — exactly what the zero_copy=false ablation charges.
  bool cloned = false;

  for (size_t i = 0; i < prog.stages.size(); ++i) {
    const KopStage& s = prog.stages[i];
    out.cost += costs.kop_stage_overhead;

    int64_t off = 0, len = 0;
    if (!ResolveWindow(s, chunk.nbytes, &off, &len)) {
      // Out-of-chunk access at runtime (short last chunk): reject rather
      // than read past the payload.
      st->chunks_rejected += 1;
      out.kind = KopOutcome::Kind::kReject;
      out.error = kErrKopReject;
      return out;
    }
    const uint8_t* data = chunk.data ? chunk.data->data() : nullptr;

    switch (s.kind) {
      case KopStageKind::kChecksum: {
        for (int r = 0; r < s.repeat; ++r) {
          out.cost += costs.ChecksumTime(len);
          // FNV-style multiply-xor: a plain rotate-xor fold cancels to zero
          // over periodic payloads (any pattern whose period divides the
          // window), which would make the CQE checksum useless for real data.
          uint64_t acc = st->checksum;
          for (int64_t b = 0; b < len; ++b)
            acc = (acc ^ data[off + b]) * 0x100000001b3ull;
          st->checksum = acc;
        }
        break;
      }
      case KopStageKind::kFilter: {
        out.cost += costs.KopScanTime(len);
        const bool eq = data[off] == s.arg;
        if (s.filter_mode == KopFilterMode::kAbortIfEq) {
          if (eq) {
            st->chunks_rejected += 1;
            out.kind = KopOutcome::Kind::kReject;
            out.error = kErrKopReject;
            return out;
          }
          break;
        }
        const bool keep = (s.filter_mode == KopFilterMode::kKeepIfEq) ? eq : !eq;
        if (!keep) {
          st->chunks_dropped += 1;
          out.kind = KopOutcome::Kind::kDrop;
          return out;
        }
        break;
      }
      case KopStageKind::kTransform: {
        if (!cloned) {
          out.cost += costs.BcopyTime(chunk.nbytes);
          chunk.data = std::make_shared<std::vector<uint8_t>>(*chunk.data);
          cloned = true;
        }
        out.cost += costs.BcopyTime(len);  // read-modify-write pass
        uint8_t* mut = chunk.data->data();
        for (int64_t b = 0; b < len; ++b) mut[off + b] ^= s.arg;
        break;
      }
      case KopStageKind::kRoute: {
        out.route = static_cast<int>(data[off] % static_cast<uint8_t>(s.n_sinks));
        break;
      }
    }
  }

  st->bytes_out += chunk.nbytes;
  return out;
}

}  // namespace ikdp
