// The discrete-event simulator: a virtual clock plus an event queue.
//
// Every component of the simulated machine (disks, CPU scheduler, network
// links, the callout table) schedules closures on one shared Simulator.  The
// simulator advances time only between events; closures themselves run in
// zero simulated time.  Simulated CPU consumption is modelled explicitly by
// the kernel scheduler (src/kern/scheduler.h), not by the event engine.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace ikdp {

class Simulator {
 public:
  // Starting a Simulator starts a new run of the process-wide krace
  // detector: EventIds restart per event queue, so causality state from a
  // previous simulation must not alias this one's events (src/sim/krace.h).
  Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` from now.  Negative delays are clamped to
  // zero (the event fires "immediately", i.e. after the current event and any
  // earlier-scheduled same-time events).
  EventId After(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at an absolute time, which must not be in the past.
  EventId At(SimTime when, std::function<void()> fn);

  // Cancels a scheduled event.  Returns true if it was still pending.
  bool Cancel(EventId id);

  // Runs events until the queue is empty.  Returns the final time.
  SimTime Run();

  // Runs events with firing time <= `deadline`, then sets the clock to
  // `deadline` (even if the queue still holds later events).  Returns the
  // final time (== deadline unless the queue drained earlier; the clock never
  // exceeds deadline).
  SimTime RunUntil(SimTime deadline);

  // Runs exactly one event if any is pending.  Returns false on an empty
  // queue.
  bool Step();

  // True when no events are pending.
  bool Idle() const { return queue_.empty(); }

  // Number of pending events.
  size_t PendingEvents() const { return queue_.size(); }

  // Total events executed so far (for stats / runaway detection in tests).
  uint64_t events_executed() const { return events_executed_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  uint64_t events_executed_ = 0;
};

}  // namespace ikdp

#endif  // SRC_SIM_SIMULATOR_H_
