// lockdep: dynamic lock-discipline validation for the simulated kernel's
// lock primitives (src/kern/lock.h), mirroring krace's shape.
//
// The simulation is single-threaded, so a lock can never be *contended* at
// host level — what lockdep checks is the DISCIPLINE the SMP kernel will
// need: every run records the observed acquisition-order graph (lock A held
// while B is acquired ⇒ edge A→B) and validates, as the run executes, that
//
//  * no acquisition closes a cycle in that graph (order inversion: some
//    other site acquires the same pair in the opposite order — on SMP that
//    pair of paths deadlocks),
//  * declared ranks are monotone (IKDP_LOCK_RANK gives every lock a rank;
//    lower = outer; acquiring a rank not strictly greater than every held
//    rank is an ordering bug even before a cycle exists),
//  * no non-recursive lock is re-acquired while held (double-acquire), and
//  * no blocking primitive runs while a SpinLock is held
//    (sleep-under-spinlock: a spinning CPU cannot give up the processor).
//
// This is the dynamic half of the klock checker; tools/kcheck enforces the
// same rules statically over the IKDP_ACQUIRES/IKDP_RELEASES/IKDP_EXCLUDES/
// IKDP_LOCK_RANK annotations (docs/klock.md).  Like krace, the validator is
// host-side only: it never advances simulated time, charges no simulated
// CPU, and with the mode off every hook is a single inlined flag test.
// Mode comes from the IKDP_LOCKDEP environment variable ("abort", "1",
// "collect", anything else/unset = off) or SetMode().

#ifndef SRC_SIM_LOCKDEP_H_
#define SRC_SIM_LOCKDEP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ikdp {

class LockdepValidator {
 public:
  enum class Mode : uint8_t {
    kOff = 0,   // hooks compile to a flag test
    kCollect,   // record violations; tests assert on violations()
    kAbort,     // first violation calls ContractAbort with both chains
  };

  LockdepValidator();

  LockdepValidator(const LockdepValidator&) = delete;
  LockdepValidator& operator=(const LockdepValidator&) = delete;

  Mode mode() const { return mode_; }

  // Switches mode and clears all per-run state (held stack, edges,
  // violations).
  void SetMode(Mode mode);

  // Clears per-run state; keeps mode.
  void Reset();

  struct Violation {
    std::string kind;  // order-inversion | rank | double-acquire | sleep-under-spinlock
    std::string detail;
    std::string Describe() const;
  };

  const std::vector<Violation>& violations() const { return violations_; }

  // The observed acquisition-order graph: (outer, inner) → first witness.
  const std::map<std::pair<std::string, std::string>, std::string>& edges() const {
    return edges_;
  }

  int held_depth() const { return static_cast<int>(held_.size()); }

  // --- hooks (called by the lock primitives; gated on LockdepEnabled()) ---

  // `spin` marks a SpinLock (sleep-under-spinlock applies).  Detects
  // double-acquire, rank violations, and order inversions, then pushes the
  // lock onto the held stack and records edges from every held lock.
  void OnAcquire(const void* lock, const char* name, int rank, bool spin);
  void OnRelease(const void* lock, const char* name);

  // Called on entry to every blocking primitive (AssertCanBlock) and on
  // SleepLock acquisition: a held SpinLock here is sleep-under-spinlock.
  void OnMayBlock(const char* what);

 private:
  struct Held {
    const void* lock;
    std::string name;
    int rank;
    bool spin;
  };

  // Is `to` reachable from `from` in the recorded edge graph?
  bool Reachable(const std::string& from, const std::string& to) const;
  void Report(const char* kind, std::string detail);

  Mode mode_ = Mode::kOff;
  std::vector<Held> held_;
  std::map<std::pair<std::string, std::string>, std::string> edges_;
  std::vector<Violation> violations_;
};

// The process-wide validator (one simulated machine per process at a time,
// matching the ContextGuard global in src/kern/ctx.h).
LockdepValidator& Lockdep();

namespace lockdep_internal {
// Fast-path flag mirroring Lockdep().mode() != kOff; kept separate so the
// disabled hook is a load and branch with no function call.
extern bool g_enabled;
}  // namespace lockdep_internal

inline bool LockdepEnabled() { return lockdep_internal::g_enabled; }

}  // namespace ikdp

#endif  // SRC_SIM_LOCKDEP_H_
