#include "src/sim/time.h"

#include <cstdio>

namespace ikdp {

std::string FormatDuration(SimDuration d) {
  char out[64];
  const double abs = static_cast<double>(d < 0 ? -d : d);
  if (abs >= static_cast<double>(kSecond)) {
    std::snprintf(out, sizeof(out), "%.3fs", static_cast<double>(d) / kSecond);
  } else if (abs >= static_cast<double>(kMillisecond)) {
    std::snprintf(out, sizeof(out), "%.3fms", static_cast<double>(d) / kMillisecond);
  } else if (abs >= static_cast<double>(kMicrosecond)) {
    std::snprintf(out, sizeof(out), "%.3fus", static_cast<double>(d) / kMicrosecond);
  } else {
    std::snprintf(out, sizeof(out), "%ldns", static_cast<long>(d));
  }
  return out;
}

}  // namespace ikdp
