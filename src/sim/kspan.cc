#include "src/sim/kspan.h"

namespace ikdp {

namespace {

KspanCursor g_cursor;               // NOLINT(cert-err58-cpp)
KspanCollector* g_collector = nullptr;

}  // namespace

const KspanCursor& CurrentKspan() { return g_cursor; }

void KspanCursorSetSpan(SpanId span) { g_cursor.span = span; }

KspanScope::KspanScope(const char* subsystem, SpanId span) : prev_(g_cursor) {
  g_cursor.subsystem = subsystem;
  g_cursor.span = span;
}

KspanScope::~KspanScope() { g_cursor = prev_; }

KspanCollector* Kspan() { return g_collector; }

void AttachKspan(KspanCollector* collector) { g_collector = collector; }

SpanId KspanCollector::Begin(SimTime t, const char* name, SpanId parent, int64_t arg) {
  const SpanId id = ++next_;
  SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.name = name;
  rec.start = t;
  rec.a = arg;
  index_[id] = spans_.size();
  spans_.push_back(rec);
  return id;
}

void KspanCollector::End(SimTime t, SpanId id, int64_t result, bool error) {
  auto it = index_.find(id);
  if (it == index_.end() || !spans_[it->second].open()) {
    ++bad_ends_;
    return;
  }
  SpanRecord& rec = spans_[it->second];
  rec.end = t;
  rec.result = result;
  rec.error = error;
  ++ended_;
}

bool KspanCollector::IsOpen(SpanId id) const {
  auto it = index_.find(id);
  return it != index_.end() && spans_[it->second].open();
}

SpanId KspanCollector::RootOf(SpanId id) const {
  SpanId cur = id;
  for (;;) {
    auto it = index_.find(cur);
    if (it == index_.end()) {
      return cur;
    }
    const SpanRecord& rec = spans_[it->second];
    if (rec.parent == kNoSpan || index_.count(rec.parent) == 0) {
      return cur;
    }
    cur = rec.parent;
  }
}

const SpanRecord* KspanCollector::Find(SpanId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

bool KspanCollector::CheckBalanced(std::string* err) const {
  if (bad_ends_ > 0) {
    if (err != nullptr) {
      *err = "End() on an unknown or already-ended span (" + std::to_string(bad_ends_) +
             " occurrence(s))";
    }
    return false;
  }
  for (const SpanRecord& rec : spans_) {
    if (rec.open()) {
      if (err != nullptr) {
        *err = std::string("span never ended: ") + rec.name + " id=" + std::to_string(rec.id);
      }
      return false;
    }
  }
  return true;
}

SpanId KspanBegin(SimTime t, const char* name, int64_t arg) {
  if (g_collector == nullptr) {
    return g_cursor.span;
  }
  return g_collector->Begin(t, name, g_cursor.span, arg);
}

void KspanEnd(SimTime t, SpanId id, int64_t result, bool error) {
  if (g_collector == nullptr) {
    return;
  }
  g_collector->End(t, id, result, error);
}

}  // namespace ikdp
