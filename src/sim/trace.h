// A ktrace-style kernel event log.
//
// A fixed-capacity ring of typed records, cheap enough to leave compiled in:
// when no TraceLog is attached (the default), every hook is a null-pointer
// check.  The kernel records scheduling transitions, interrupts, syscalls,
// and splice lifecycle events; tests and debugging sessions snapshot or dump
// the ring to see exactly what the machine did and when.
//
// Records carry two integer arguments and a static tag string; meaning is
// per-event (documented at each recording site).

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace ikdp {

enum class TraceKind : uint8_t {
  kDispatch,      // a = pid
  kSleep,         // a = pid, b = priority
  kWakeup,        // a = woken count
  kInterrupt,     // a = duration ns
  kSyscallEnter,  // a = pid, tag = syscall name
  kSyscallExit,   // a = pid, tag = syscall name
  kSpliceStart,   // a = descriptor serial
  kSpliceChunk,   // a = descriptor serial, b = chunk index
  kSpliceDone,    // a = descriptor serial, b = bytes moved
};

const char* TraceKindName(TraceKind k);

struct TraceRecord {
  SimTime time = 0;
  TraceKind kind = TraceKind::kDispatch;
  int64_t a = 0;
  int64_t b = 0;
  const char* tag = "";  // static storage only
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096) : capacity_(capacity) { ring_.reserve(capacity); }

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void Record(SimTime t, TraceKind kind, int64_t a = 0, int64_t b = 0, const char* tag = "") {
    TraceRecord rec{t, kind, a, b, tag};
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[next_ % capacity_] = rec;
    }
    ++next_;
  }

  // Total records ever written (>= Snapshot().size()).
  uint64_t total() const { return next_; }

  // Records currently retained, oldest first.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      const size_t head = next_ % capacity_;
      out.insert(out.end(), ring_.begin() + static_cast<int64_t>(head), ring_.end());
      out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<int64_t>(head));
    }
    return out;
  }

  // Retained records matching `pred` (oldest first).
  std::vector<TraceRecord> Filter(const std::function<bool(const TraceRecord&)>& pred) const {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : Snapshot()) {
      if (pred(r)) {
        out.push_back(r);
      }
    }
    return out;
  }

  // Human-readable dump, one record per line.
  void Dump(std::ostream& os) const;

 private:
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  uint64_t next_ = 0;
};

}  // namespace ikdp

#endif  // SRC_SIM_TRACE_H_
