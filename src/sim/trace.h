// A ktrace-style kernel event log.
//
// A fixed-capacity ring of typed records, cheap enough to leave compiled in:
// when no TraceLog is attached (the default), every hook is a null-pointer
// check.  The kernel records scheduling transitions, interrupts, syscalls,
// and splice lifecycle events; tests and debugging sessions snapshot or dump
// the ring to see exactly what the machine did and when.
//
// Records carry two integer arguments and a static tag string; meaning is
// per-event (documented at each recording site).  Tags must point at storage
// that outlives the log (string literals, or names owned by a live device).
//
// Several kinds form begin/end pairs from which intervals can be
// reconstructed (src/metrics/telemetry.h does this online, and the Chrome
// trace exporter renders them as slices):
//
//   kSyscallEnter -> kSyscallExit   keyed by pid (syscalls do not nest)
//   kRunnable     -> kDispatch      keyed by pid (run-queue wait)
//   kDiskDispatch -> kDiskComplete  keyed by (device tag, transfer serial)
//   kSpliceRead   -> kSpliceChunk   keyed by (descriptor serial, chunk index)
//   kSpliceStart  -> kSpliceDone    keyed by descriptor serial
//   kRingOpSubmit -> kRingOpComplete keyed by (ring id, cookie) — cookies
//                                    must be unique among a ring's in-flight
//                                    ops for the pairing to be well defined
//   kUdpSend      -> kUdpSent        keyed by datagram serial (interface
//                                    occupancy of one datagram)
//
// Every record also carries the kspan cursor's span id (src/sim/kspan.h), so
// the pairs above double as child spans of the request that caused them.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/kspan.h"
#include "src/sim/time.h"

namespace ikdp {

enum class TraceKind : uint8_t {
  // --- scheduler ---
  kDispatch,      // a = pid, tag = process name
  kSleep,         // a = pid, b = priority, tag = process name
  kWakeup,        // a = woken count
  kRunnable,      // a = pid — entered the run queue (pairs with kDispatch)
  kInterrupt,     // a = duration ns
  // --- syscalls ---
  kSyscallEnter,  // a = pid, tag = syscall name
  kSyscallExit,   // a = pid, tag = syscall name
  // --- splice lifecycle ---
  kSpliceStart,   // a = descriptor serial, b = total chunks (-1 unbounded)
  kSpliceChunk,   // a = descriptor serial, b = chunk index (write completed)
  kSpliceDone,    // a = descriptor serial, b = bytes moved
  // --- splice flow control ---
  kSpliceRead,      // a = descriptor serial, b = chunk index — read issued
  kSpliceLowWater,  // a = descriptor serial, b = pending reads at the crossing
  kSpliceRefill,    // a = descriptor serial, b = reads issued by the batch
  // --- buffer cache ---
  kBreadHit,      // a = blkno, tag = device name
  kBreadMiss,     // a = blkno, tag = device name
  kGetblkSleep,   // a = pid, b = blkno — getblk blocked (busy buf / no free)
  kDelwriFlush,   // a = blkno, tag = device name — dirty LRU victim pushed out
  // --- disk driver / DiskModel scheduler ---
  kDiskEnqueue,   // a = byte offset, b = nbytes, tag = "read" / "write"
  kDiskDispatch,  // a = transfer serial, b = total bytes, tag = device name
  kDiskComplete,  // a = transfer serial, b = total bytes, tag = device name
  kDiskCoalesce,  // a = transfer serial, b = bytes merged in, tag = device name
  kDiskSweepWrap, // a = wrap-to offset, b = sweep position before the wrap
  // --- callout table ---
  kCalloutArm,    // a = callout id, b = ticks ahead (0 = head of list)
  kSoftclockRun,  // a = callouts run on this tick
  // --- aio splice ring ---
  kRingSubmit,     // a = ring id, b = sqes admitted by one RingEnter batch
  kRingSqDepth,    // a = ring id, b = unfinished ops right after the batch
  kRingOpSubmit,   // a = ring id, b = cookie — op admitted to the kernel
  kRingOpComplete, // a = ring id, b = cookie — op finished (CQE ready)
  kRingReap,       // a = ring id, b = completions posted by this reaper pass
  kRingOverflow,   // a = ring id, b = overflow-staged completions (CQ full)
  kRingCancel,     // a = ring id, b = cookie — queued op cancelled
  // --- splice teardown ---
  kSpliceReadAbort, // a = descriptor serial — an outstanding read retracted
                    //     during teardown; its completion will never arrive
  // --- UDP ---
  kUdpSend,  // a = datagram serial, b = nbytes — accepted by the interface
  kUdpSent,  // a = datagram serial, b = nbytes — left the interface
             //     (pairs with kUdpSend, keyed by datagram serial)
  kUdpRecv,  // a = datagram serial, b = nbytes — delivered to the receiver
  // --- in-kernel splice operators (src/kop) ---
  kKopExec,    // a = descriptor serial, b = execution cost ns (one chunk)
  kKopDrop,    // a = descriptor serial, b = chunk index — filtered in-kernel
  kKopReject,  // a = descriptor serial, b = errno — operator aborted the stream
};

const char* TraceKindName(TraceKind k);

struct TraceRecord {
  SimTime time = 0;
  TraceKind kind = TraceKind::kDispatch;
  int64_t a = 0;
  int64_t b = 0;
  const char* tag = "";  // static storage only
  // The span the machine was working on when the record was written (the
  // kspan cursor; see src/sim/kspan.h).  0 when untagged.  Stamped
  // automatically by Record(); the span exporters group records into
  // per-request trees with it.
  SpanId span = kNoSpan;
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096) : capacity_(capacity) { ring_.reserve(capacity); }

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void Record(SimTime t, TraceKind kind, int64_t a = 0, int64_t b = 0, const char* tag = "") {
    TraceRecord rec{t, kind, a, b, tag, CurrentKspan().span};
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[next_ % capacity_] = rec;
    }
    ++next_;
    if (observer_) {
      observer_(rec);
    }
    for (const auto& obs : extra_observers_) {
      obs(rec);
    }
  }

  // Optional live tap: invoked with every record as it is written, before
  // ring eviction can drop it.  The telemetry collector uses this to feed
  // latency histograms online.  Observers run on the host only and must not
  // touch simulated state.
  void set_observer(std::function<void(const TraceRecord&)> obs) { observer_ = std::move(obs); }

  // Additional taps that coexist with set_observer (the span builder and the
  // SLO monitor attach here without evicting the telemetry collector).
  // Observers cannot be removed individually; they live as long as the log.
  void AddObserver(std::function<void(const TraceRecord&)> obs) {
    extra_observers_.push_back(std::move(obs));
  }

  // Total records ever written (>= Snapshot().size()).
  uint64_t total() const { return next_; }

  // Records lost to ring-buffer eviction: written, no longer retained.  A
  // nonzero value means Snapshot() (and any Chrome trace built from it) is
  // truncated; the telemetry layer surfaces this as trace.dropped_events.
  uint64_t dropped() const { return next_ - ring_.size(); }

  // Records currently retained, oldest first.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      const size_t head = next_ % capacity_;
      out.insert(out.end(), ring_.begin() + static_cast<int64_t>(head), ring_.end());
      out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<int64_t>(head));
    }
    return out;
  }

  // Retained records matching `pred` (oldest first).
  std::vector<TraceRecord> Filter(const std::function<bool(const TraceRecord&)>& pred) const {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : Snapshot()) {
      if (pred(r)) {
        out.push_back(r);
      }
    }
    return out;
  }

  // Human-readable dump, one record per line.
  void Dump(std::ostream& os) const;

 private:
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  uint64_t next_ = 0;
  std::function<void(const TraceRecord&)> observer_;
  std::vector<std::function<void(const TraceRecord&)>> extra_observers_;
};

}  // namespace ikdp

#endif  // SRC_SIM_TRACE_H_
