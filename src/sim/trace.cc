#include "src/sim/trace.h"

#include <cstdio>

namespace ikdp {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kSleep:
      return "sleep";
    case TraceKind::kWakeup:
      return "wakeup";
    case TraceKind::kInterrupt:
      return "interrupt";
    case TraceKind::kSyscallEnter:
      return "syscall-enter";
    case TraceKind::kSyscallExit:
      return "syscall-exit";
    case TraceKind::kSpliceStart:
      return "splice-start";
    case TraceKind::kSpliceChunk:
      return "splice-chunk";
    case TraceKind::kSpliceDone:
      return "splice-done";
    case TraceKind::kRunnable:
      return "runnable";
    case TraceKind::kSpliceRead:
      return "splice-read";
    case TraceKind::kSpliceLowWater:
      return "splice-lowwater";
    case TraceKind::kSpliceRefill:
      return "splice-refill";
    case TraceKind::kBreadHit:
      return "bread-hit";
    case TraceKind::kBreadMiss:
      return "bread-miss";
    case TraceKind::kGetblkSleep:
      return "getblk-sleep";
    case TraceKind::kDelwriFlush:
      return "delwri-flush";
    case TraceKind::kDiskEnqueue:
      return "disk-enqueue";
    case TraceKind::kDiskDispatch:
      return "disk-dispatch";
    case TraceKind::kDiskComplete:
      return "disk-complete";
    case TraceKind::kDiskCoalesce:
      return "disk-coalesce";
    case TraceKind::kDiskSweepWrap:
      return "disk-sweepwrap";
    case TraceKind::kCalloutArm:
      return "callout-arm";
    case TraceKind::kSoftclockRun:
      return "softclock-run";
    case TraceKind::kRingSubmit:
      return "ring-submit";
    case TraceKind::kRingSqDepth:
      return "ring-sqdepth";
    case TraceKind::kRingOpSubmit:
      return "ring-op-submit";
    case TraceKind::kRingOpComplete:
      return "ring-op-complete";
    case TraceKind::kRingReap:
      return "ring-reap";
    case TraceKind::kRingOverflow:
      return "ring-overflow";
    case TraceKind::kRingCancel:
      return "ring-cancel";
    case TraceKind::kSpliceReadAbort:
      return "splice-read-abort";
    case TraceKind::kUdpSend:
      return "udp-send";
    case TraceKind::kUdpSent:
      return "udp-sent";
    case TraceKind::kUdpRecv:
      return "udp-recv";
    case TraceKind::kKopExec:
      return "kop-exec";
    case TraceKind::kKopDrop:
      return "kop-drop";
    case TraceKind::kKopReject:
      return "kop-reject";
  }
  return "?";
}

void TraceLog::Dump(std::ostream& os) const {
  char line[160];
  for (const TraceRecord& r : Snapshot()) {
    std::snprintf(line, sizeof(line), "%12.6fs %-14s a=%-8lld b=%-8lld %s\n",
                  ToSeconds(r.time), TraceKindName(r.kind), static_cast<long long>(r.a),
                  static_cast<long long>(r.b), r.tag);
    os << line;
  }
}

}  // namespace ikdp
