#include "src/sim/trace.h"

#include <cstdio>

namespace ikdp {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kSleep:
      return "sleep";
    case TraceKind::kWakeup:
      return "wakeup";
    case TraceKind::kInterrupt:
      return "interrupt";
    case TraceKind::kSyscallEnter:
      return "syscall-enter";
    case TraceKind::kSyscallExit:
      return "syscall-exit";
    case TraceKind::kSpliceStart:
      return "splice-start";
    case TraceKind::kSpliceChunk:
      return "splice-chunk";
    case TraceKind::kSpliceDone:
      return "splice-done";
  }
  return "?";
}

void TraceLog::Dump(std::ostream& os) const {
  char line[160];
  for (const TraceRecord& r : Snapshot()) {
    std::snprintf(line, sizeof(line), "%12.6fs %-14s a=%-8lld b=%-8lld %s\n",
                  ToSeconds(r.time), TraceKindName(r.kind), static_cast<long long>(r.a),
                  static_cast<long long>(r.b), r.tag);
    os << line;
  }
}

}  // namespace ikdp
