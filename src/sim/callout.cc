#include "src/sim/callout.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

// Callout-list krace probes are COMMUTE, not WRITE: arming distinct ids on a
// tick and erasing distinct ids are order-insensitive map operations, and the
// one thing that is order-sensitive — the intra-tick run order of entries
// armed by different same-timestamp events — is invisible to happens-before
// detection anyway (the whole tick runs as one RunTick event) and is covered
// by the schedule-perturbation mode instead (docs/krace.md).  The `callout`
// ordering channel carries the arm -> RunTick edge for the declared
// IKDP_ORDERED_BY(callout) members.

CalloutTable::CalloutTable(Simulator* sim, int hz) : sim_(sim), hz_(hz) {
  assert(hz > 0);
  tick_ = kSecond / hz;
  assert(tick_ > 0);
}

SimTime CalloutTable::NextTickAfter(SimTime now) const {
  return (now / tick_ + 1) * tick_;
}

CalloutId CalloutTable::Timeout(std::function<void()> fn, int ticks) {
  assert(ticks >= 1);
  const SimTime when = NextTickAfter(sim_->Now()) + static_cast<SimTime>(ticks - 1) * tick_;
  lock_.Acquire();
  const CalloutId id = ++next_id_;
  IKDP_KRACE_COMMUTE(this, "CalloutTable::buckets_");
  IKDP_KRACE_COMMUTE(this, "CalloutTable::pending_");
  buckets_[when].push_back(Entry{id, std::move(fn), /*head=*/false});
  pending_[id] = when;
  if (KraceEnabled()) Krace().ChannelRelease(&buckets_);
  ArmSoftclock(when);
  lock_.Release();
  if (trace_ != nullptr) {
    trace_->Record(sim_->Now(), TraceKind::kCalloutArm, static_cast<int64_t>(id), ticks);
  }
  return id;
}

CalloutId CalloutTable::ScheduleHead(std::function<void()> fn) {
  const SimTime when = NextTickAfter(sim_->Now());
  lock_.Acquire();
  const CalloutId id = ++next_id_;
  auto& bucket = buckets_[when];
  // Head entries run before FIFO entries; among themselves they keep
  // insertion order (first ScheduleHead call on a tick runs first, matching
  // a list where each insert-at-head is drained in the original order by the
  // splice engine's per-descriptor sequencing — the exact intra-tick order is
  // not observable by the modelled workloads).
  auto it = std::find_if(bucket.begin(), bucket.end(), [](const Entry& e) { return !e.head; });
  IKDP_KRACE_COMMUTE(this, "CalloutTable::buckets_");
  IKDP_KRACE_COMMUTE(this, "CalloutTable::pending_");
  bucket.insert(it, Entry{id, std::move(fn), /*head=*/true});
  pending_[id] = when;
  if (KraceEnabled()) Krace().ChannelRelease(&buckets_);
  ArmSoftclock(when);
  lock_.Release();
  if (trace_ != nullptr) {
    trace_->Record(sim_->Now(), TraceKind::kCalloutArm, static_cast<int64_t>(id), 0);
  }
  return id;
}

bool CalloutTable::Untimeout(CalloutId id) {
  lock_.Acquire();
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    lock_.Release();
    return false;
  }
  const SimTime when = it->second;
  IKDP_KRACE_COMMUTE(this, "CalloutTable::buckets_");
  IKDP_KRACE_COMMUTE(this, "CalloutTable::pending_");
  pending_.erase(it);
  auto bucket_it = buckets_.find(when);
  if (bucket_it != buckets_.end()) {
    auto& entries = bucket_it->second;
    entries.erase(
        std::remove_if(entries.begin(), entries.end(), [id](const Entry& e) { return e.id == id; }),
        entries.end());
    if (entries.empty()) {
      buckets_.erase(bucket_it);
      auto armed_it = armed_.find(when);
      if (armed_it != armed_.end()) {
        IKDP_KRACE_COMMUTE(this, "CalloutTable::armed_");
        sim_->Cancel(armed_it->second);
        armed_.erase(armed_it);
      }
    }
  }
  lock_.Release();
  return true;
}

void CalloutTable::ArmSoftclock(SimTime when) {
  if (armed_.count(when) > 0) {
    return;
  }
  // Keyed insert under a unique tick time: simultaneous armers of one tick
  // reach the same final state in either order (the second sees the first's
  // entry and returns above).
  IKDP_KRACE_COMMUTE(this, "CalloutTable::armed_");
  armed_[when] = sim_->At(when, [this, when] { RunTick(when); });
}

void CalloutTable::RunTick(SimTime when) {
  if (KraceEnabled()) Krace().ChannelAcquire(&buckets_);
  lock_.Acquire();
  IKDP_KRACE_COMMUTE(this, "CalloutTable::buckets_");
  IKDP_KRACE_COMMUTE(this, "CalloutTable::armed_");
  armed_.erase(when);
  auto it = buckets_.find(when);
  if (it == buckets_.end()) {
    lock_.Release();
    return;
  }
  // Detach the bucket first: callouts frequently re-schedule themselves, and
  // fresh ScheduleHead() calls from inside a handler must land on the *next*
  // tick, not this one (NextTickAfter is strict, so they do).  The handlers
  // below run with the lock dropped — re-arming acquires it again.
  std::vector<Entry> entries = std::move(it->second);
  buckets_.erase(it);
  ++softclock_runs_;
  if (trace_ != nullptr) {
    trace_->Record(when, TraceKind::kSoftclockRun, static_cast<int64_t>(entries.size()));
  }
  for (Entry& e : entries) {
    pending_.erase(e.id);
  }
  lock_.Release();
  // Everything below runs at softclock level: the observer (softclock CPU
  // charging) and the expired entries themselves.  Entries that raise to
  // interrupt level (RunInterrupt) nest their own guard on top.
  ContextGuard at_softclock(ExecContext::kSoftclock);
  if (observer_) {
    observer_(static_cast<int>(entries.size()));
  }
  for (Entry& e : entries) {
    e.fn();
  }
}

}  // namespace ikdp
