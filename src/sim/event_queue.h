// A cancellable priority queue of timed events.
//
// This is the heart of the discrete-event engine.  Events are closures tagged
// with a firing time; ties are broken by insertion order so the simulation is
// fully deterministic.  Cancellation is lazy: a cancelled event stays in the
// heap but is skipped when popped, which keeps both schedule and cancel at
// O(log n) without a secondary index.
//
// Same-timestamp tie-breaks are the ONLY schedule freedom the modelled
// kernel has (events at distinct times are ordered by the clock), so each
// entry carries a tie key from KraceDetector::TieKey: insertion order by
// default, a seeded permutation of it in perturbation mode (see
// src/sim/krace.h).  Every key order is a legal schedule — an event
// scheduled by a same-timestamp event still runs after its creator, because
// the creator had already been popped when it scheduled.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace ikdp {

// Identifies a scheduled event so it can be cancelled.  Ids are never reused
// within one EventQueue instance.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to fire at absolute time `when`.  Returns an id usable
  // with Cancel().  Events scheduled for the same time fire in insertion
  // order.
  EventId Schedule(SimTime when, std::function<void()> fn);

  // Cancels a previously scheduled event.  Returns true if the event existed
  // and had not yet fired (or been cancelled).
  bool Cancel(EventId id);

  // True when no live (non-cancelled) events remain.
  bool empty() const { return live_.empty(); }

  // Number of live events.
  size_t size() const { return live_.size(); }

  // The firing time of the earliest live event.  Must not be called on an
  // empty queue.
  SimTime NextTime();

  // Pops and returns the earliest live event's closure, setting `*when` to
  // its firing time and (when non-null) `*id` to its EventId.  Must not be
  // called on an empty queue.
  std::function<void()> PopNext(SimTime* when, EventId* id = nullptr);

  // Total number of events ever scheduled (for stats / tests).
  uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    SimTime when = 0;
    EventId id = kInvalidEventId;  // doubles as the insertion sequence number
    uint64_t key = 0;              // same-timestamp tie-break (== id unless perturbed)
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      if (a.key != b.key) {
        return a.key > b.key;
      }
      return a.id > b.id;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
  EventId next_seq_ = 0;
};

}  // namespace ikdp

#endif  // SRC_SIM_EVENT_QUEUE_H_
