// krace: exact happens-before race detection for the simulated kernel's
// logically-concurrent state, plus deterministic schedule perturbation.
//
// The simulation is single-threaded and deterministic, yet the kernel it
// models is genuinely concurrent: b_iodone handlers run at interrupt level,
// the splice write side runs at softclock off the callout list, and the
// syscall path runs in process context, all mutating shared state (buffer
// flags, splice flow-control counters, ring queues, the CPU ledger).  The
// only nondeterminism the real machine would add is the ORDER of events that
// are simultaneous: the event queue breaks same-timestamp ties by insertion
// sequence, and nothing guarantees the modelled kernel is correct under any
// other legal tie-break.  krace makes that checkable two ways:
//
//  * HAPPENS-BEFORE DETECTION — every executed event is a node in the
//    causality graph.  Events at strictly increasing simulated times are
//    ordered by the clock (the discrete-event engine never reorders across
//    distinct timestamps), so the full vector-clock machinery degenerates to
//    an exact same-timestamp check: two events at one timestamp are ordered
//    iff a chain of schedule edges (event A, while running, scheduled event
//    B) or declared ordering-channel edges connects them.  Instrumented
//    field accesses (IKDP_KRACE_* probes below) from two same-timestamp
//    events with no such chain, where at least one access is a plain write,
//    are a race: a legal tie-break permutation could reverse them and the
//    simulation's result would depend on an ordering the kernel never
//    promised.  This is sound and complete over the instrumented accesses
//    for the executed schedule (no lockset-style false positives).
//
//  * SCHEDULE PERTURBATION — SetPerturbSeed(s) with s != 0 re-keys the
//    event queue's same-timestamp tie-break by a seeded hash instead of
//    insertion order.  Every permutation so produced is a legal schedule
//    (an event scheduled by a same-timestamp event still runs after its
//    creator, because the creator had already been popped).  Running an
//    experiment under several seeds and requiring byte-identical output
//    proves the result independent of tie-break order; any divergence is a
//    reported ordering bug, not a flake.  bench/perturb_tables does exactly
//    this for the paper's Tables 1 and 2.
//
// Access kinds:
//   read     — IKDP_KRACE_READ: races with concurrent writes.
//   write    — IKDP_KRACE_WRITE: races with any concurrent access.
//   commute  — IKDP_KRACE_COMMUTE: an order-insensitive update (counter
//              increment, max-tracking, set-insert keyed by a unique id).
//              Two commuting updates do not race with each other; a commute
//              against a plain read or write still does.  This is the moral
//              equivalent of a relaxed atomic counter and keeps honest
//              statistics (splices_completed and friends) from drowning the
//              report in order-independent noise.
//
// Ordering channels (the dynamic half of IKDP_ORDERED_BY, src/kern/ctx.h):
// a producer/consumer pair serialized by something coarser than a schedule
// edge — the callout list, the ring reaper — declares it by calling
// ChannelRelease(chan) after publishing and ChannelAcquire(chan) before
// consuming.  The edge is event-granular — the whole releasing event is
// ordered before the acquiring event — and composes transitively with
// schedule edges: the releaser's own same-timestamp ancestors are carried
// across, so X -schedule-> A -channel-> B makes X happen-before B.
//
// The detector is host-side only: it never advances simulated time, charges
// no simulated CPU, and with the mode off every probe is a single inlined
// flag test.  Mode comes from the IKDP_KRACE environment variable ("abort",
// "1", "collect", anything else/unset = off) or SetMode().

#ifndef SRC_SIM_KRACE_H_
#define SRC_SIM_KRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace ikdp {

// Redeclaration of src/sim/event_queue.h's alias (identical, so the two
// headers stay independent: krace.h is included from buf.h and friends).
using EventId = uint64_t;

enum class KraceAccess : uint8_t { kRead = 0, kWrite, kCommute };

class KraceDetector {
 public:
  enum class Mode : uint8_t {
    kOff = 0,   // probes compile to a flag test
    kCollect,   // record races; tests assert on races()
    kAbort,     // first race calls ContractAbort with both sites
  };

  KraceDetector();

  KraceDetector(const KraceDetector&) = delete;
  KraceDetector& operator=(const KraceDetector&) = delete;

  Mode mode() const { return mode_; }

  // Switches mode and clears all per-run state (races, causality).
  void SetMode(Mode mode);

  // Clears recorded races and causality state; keeps mode and seed.
  void Reset();

  // --- race reports ---

  struct Site {
    EventId event = 0;
    const char* ctx = "";  // ExecContextName at the access
    const char* file = "";
    int line = 0;
    KraceAccess kind = KraceAccess::kRead;
  };

  struct Race {
    const void* obj = nullptr;
    const char* field = "";
    SimTime time = 0;
    Site prior;    // executed first under the current tie-break
    Site current;  // executed second; no happens-before chain to prior
    std::string Describe() const;
  };

  const std::vector<Race>& races() const { return races_; }

  // --- causality hooks (wired by Simulator; event-engine use only) ---

  void OnSchedule(EventId child, SimTime when);
  void OnEventBegin(EventId id, SimTime when);
  void OnEventEnd();
  void OnCancel(EventId id);

  // --- ordering channels ---

  void ChannelRelease(const void* chan);
  void ChannelAcquire(const void* chan);

  // --- the access probe (use the IKDP_KRACE_* macros) ---

  void OnAccess(const void* obj, const char* field, KraceAccess kind,
                const char* file, int line);

  // --- schedule perturbation ---

  // 0 disables perturbation (tie-break = insertion order, the historical
  // behaviour).  Takes effect for events scheduled after the call; set it
  // before constructing the Simulator under test.  Each seed is a fresh
  // run, so this also clears per-run state (races, causality) — a seed
  // sweep must not compare the new schedule's events against the previous
  // seed's records.
  void SetPerturbSeed(uint64_t seed) {
    seed_ = seed;
    Reset();
  }
  uint64_t perturb_seed() const { return seed_; }

  // The same-timestamp tie-break key for event `id` under the current seed.
  uint64_t TieKey(EventId id) const;

 private:
  struct FieldKey {
    const void* obj;
    const char* field;
  };
  struct FieldKeyHash {
    size_t operator()(const FieldKey& k) const;
  };
  struct FieldKeyEq {
    bool operator()(const FieldKey& a, const FieldKey& b) const;
  };

  struct AccessRec {
    EventId event = 0;
    KraceAccess kind = KraceAccess::kRead;
    const char* ctx = "";
    const char* file = "";
    int line = 0;
  };

  // Accesses to one field at the CURRENT timestamp; slots from earlier
  // timestamps are stale (cross-time accesses are always ordered) and are
  // recycled in place.
  struct FieldSlot {
    SimTime time = -1;
    std::vector<AccessRec> acc;
  };

  struct ChannelState {
    SimTime time = -1;
    std::vector<EventId> releasers;  // same-timestamp releasing events
  };

  void ReportRace(const FieldKey& key, const AccessRec& prior, const AccessRec& cur);

  Mode mode_ = Mode::kOff;
  uint64_t seed_ = 0;

  // Currently executing event.
  bool in_event_ = false;
  EventId cur_ = 0;
  SimTime now_ = -1;
  // Same-timestamp happens-before ancestors of the current event (events at
  // now_ whose schedule-edge chain leads to cur_).
  std::unordered_set<EventId> cur_anc_;
  // Ancestor sets prepared for same-timestamp children not yet begun.
  std::unordered_map<EventId, std::vector<EventId>> pending_anc_;

  std::unordered_map<const void*, ChannelState> channels_;
  std::unordered_map<FieldKey, FieldSlot, FieldKeyHash, FieldKeyEq> table_;
  std::vector<Race> races_;
};

// The process-wide detector (one simulated machine per process at a time,
// matching the ContextGuard global in src/kern/ctx.h).
KraceDetector& Krace();

namespace krace_internal {
// Fast-path flag mirroring Krace().mode() != kOff; kept separate so the
// disabled probe is a load and branch with no function call.
extern bool g_enabled;
}  // namespace krace_internal

inline bool KraceEnabled() { return krace_internal::g_enabled; }

// Field-access probes.  `obj` is the owning object (identity), `field` a
// string literal naming it "Class::member".  Place at the mutation/read
// site; when the detector is off these cost one predictable branch.
#define IKDP_KRACE_READ(obj, field)                                               \
  do {                                                                            \
    if (::ikdp::KraceEnabled())                                                   \
      ::ikdp::Krace().OnAccess((obj), (field), ::ikdp::KraceAccess::kRead,        \
                               __FILE__, __LINE__);                               \
  } while (0)
#define IKDP_KRACE_WRITE(obj, field)                                              \
  do {                                                                            \
    if (::ikdp::KraceEnabled())                                                   \
      ::ikdp::Krace().OnAccess((obj), (field), ::ikdp::KraceAccess::kWrite,       \
                               __FILE__, __LINE__);                               \
  } while (0)
#define IKDP_KRACE_COMMUTE(obj, field)                                            \
  do {                                                                            \
    if (::ikdp::KraceEnabled())                                                   \
      ::ikdp::Krace().OnAccess((obj), (field), ::ikdp::KraceAccess::kCommute,     \
                               __FILE__, __LINE__);                               \
  } while (0)

}  // namespace ikdp

#endif  // SRC_SIM_KRACE_H_
