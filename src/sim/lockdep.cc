#include "src/sim/lockdep.h"

#include <cstdlib>
#include <cstring>
#include <deque>
#include <set>

#include "src/kern/ctx.h"

namespace ikdp {

namespace lockdep_internal {
bool g_enabled = false;
}  // namespace lockdep_internal

namespace {

LockdepValidator::Mode ModeFromEnv() {
  const char* v = std::getenv("IKDP_LOCKDEP");
  if (v == nullptr) {
    return LockdepValidator::Mode::kOff;
  }
  if (std::strcmp(v, "collect") == 0) {
    return LockdepValidator::Mode::kCollect;
  }
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "abort") == 0) {
    return LockdepValidator::Mode::kAbort;
  }
  return LockdepValidator::Mode::kOff;
}

// Violation reports are bounded: a systematically-broken discipline would
// otherwise flood collect mode.
constexpr size_t kMaxViolations = 256;

}  // namespace

LockdepValidator::LockdepValidator() { SetMode(ModeFromEnv()); }

void LockdepValidator::SetMode(Mode mode) {
  mode_ = mode;
  lockdep_internal::g_enabled = mode != Mode::kOff;
  Reset();
}

void LockdepValidator::Reset() {
  held_.clear();
  edges_.clear();
  violations_.clear();
}

std::string LockdepValidator::Violation::Describe() const {
  return "lockdep " + kind + ": " + detail;
}

bool LockdepValidator::Reachable(const std::string& from, const std::string& to) const {
  std::deque<std::string> frontier{from};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    if (cur == to) {
      return true;
    }
    for (const auto& [edge, witness] : edges_) {
      (void)witness;
      if (edge.first == cur && seen.insert(edge.second).second) {
        frontier.push_back(edge.second);
      }
    }
  }
  return false;
}

void LockdepValidator::Report(const char* kind, std::string detail) {
  if (mode_ == Mode::kAbort) {
    ContractAbort("lockdep %s: %s", kind, detail.c_str());
  }
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(Violation{kind, std::move(detail)});
  }
}

void LockdepValidator::OnAcquire(const void* lock, const char* name, int rank, bool spin) {
  for (const Held& h : held_) {
    if (h.lock == lock || h.name == name) {
      Report("double-acquire",
             std::string(name) + " re-acquired while already held (non-recursive)");
      return;  // treat as a re-entrant no-op so collect mode can continue
    }
  }
  for (const Held& h : held_) {
    if (h.rank >= rank) {
      Report("rank", std::string(name) + " (rank " + std::to_string(rank) +
                         ") acquired while holding " + h.name + " (rank " +
                         std::to_string(h.rank) + "); ranks must strictly increase inward");
    }
    // Closing a path inner→…→outer while acquiring outer-held→inner is a
    // cycle: some other site took these locks in the opposite order.
    if (Reachable(name, h.name)) {
      const auto reverse = edges_.find({name, h.name});
      std::string other = reverse != edges_.end()
                              ? reverse->second
                              : name + std::string(" …-> ") + h.name + " (transitive)";
      Report("order-inversion", std::string(h.name) + " -> " + name +
                                    " contradicts the recorded order [" + other + "]");
    }
    auto key = std::make_pair(h.name, std::string(name));
    if (edges_.find(key) == edges_.end()) {
      edges_[key] = h.name + std::string(" held while acquiring ") + name;
    }
  }
  held_.push_back(Held{lock, name, rank, spin});
}

void LockdepValidator::OnRelease(const void* lock, const char* name) {
  (void)name;
  // Out-of-order (hand-over-hand) release is legal: erase wherever it sits.
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (it->lock == lock) {
      held_.erase(std::next(it).base());
      return;
    }
  }
  // Releasing an untracked lock only happens after a recorded
  // double-acquire was treated as re-entrant; ignore the unwind.
}

void LockdepValidator::OnMayBlock(const char* what) {
  for (const Held& h : held_) {
    if (h.spin) {
      Report("sleep-under-spinlock", std::string(what) + " reached while SpinLock " + h.name +
                                         " is held; a spinning CPU cannot yield");
      return;
    }
  }
}

LockdepValidator& Lockdep() {
  static LockdepValidator v;
  return v;
}

}  // namespace ikdp
