#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace ikdp {

EventId Simulator::After(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return queue_.Schedule(now_ + delay, std::move(fn));
}

EventId Simulator::At(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "scheduling into the past");
  return queue_.Schedule(when, std::move(fn));
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime when = 0;
  std::function<void()> fn = queue_.PopNext(&when);
  assert(when >= now_ && "event queue went backwards");
  now_ = when;
  ++events_executed_;
  fn();
  return true;
}

}  // namespace ikdp
