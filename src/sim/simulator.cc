#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

Simulator::Simulator() {
  // A new simulator is a new run: EventIds restart at 1 in this queue, and
  // the allocator may hand freshly-constructed kernel objects the same
  // addresses a previous run used.  Stale records in the process-wide
  // detector would alias them — a coincidentally equal (id, timestamp,
  // address) triple reads as "same event" (silently skipping real races)
  // and an unequal one fabricates a cross-run race.
  Krace().Reset();
}

EventId Simulator::After(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return At(now_ + delay, std::move(fn));
}

EventId Simulator::At(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "scheduling into the past");
  const EventId id = queue_.Schedule(when, std::move(fn));
  if (KraceEnabled()) {
    // Schedule edge: the currently executing event happens-before `id`.
    Krace().OnSchedule(id, when);
  }
  return id;
}

bool Simulator::Cancel(EventId id) {
  const bool live = queue_.Cancel(id);
  if (live && KraceEnabled()) {
    Krace().OnCancel(id);
  }
  return live;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime when = 0;
  EventId id = kInvalidEventId;
  std::function<void()> fn = queue_.PopNext(&when, &id);
  assert(when >= now_ && "event queue went backwards");
  now_ = when;
  ++events_executed_;
  if (KraceEnabled()) {
    Krace().OnEventBegin(id, when);
    fn();
    Krace().OnEventEnd();
  } else {
    fn();
  }
  return true;
}

}  // namespace ikdp
