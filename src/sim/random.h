// Deterministic pseudo-random number generation for the simulation.
//
// The only stochastic quantities in the model are rotational position at the
// moment a disk request reaches the platters and datagram jitter on the
// simulated network link.  A small, seedable generator keeps runs exactly
// reproducible (the experiment harness prints its seed).

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>

namespace ikdp {

// xoshiro256** with a SplitMix64 seeding stage.  Public domain algorithms by
// Blackman & Vigna; reimplemented here so the simulation does not depend on
// libstdc++'s unspecified distribution implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  // Next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; simple rejection
    // keeps the distribution exact.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ikdp

#endif  // SRC_SIM_RANDOM_H_
