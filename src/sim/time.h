// Simulated time primitives.
//
// All simulation components share a single virtual clock measured in integer
// nanoseconds.  Integer time keeps the simulation exactly deterministic and
// makes event ordering total (ties are broken by insertion sequence numbers
// in the event queue).

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace ikdp {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.  Durations may be added to
// SimTime values freely; both are plain 64-bit integers.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

// Fractional constructors, useful for derived quantities such as
// "bytes / bandwidth".  Rounds to the nearest nanosecond.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond) + 0.5);
}
constexpr SimDuration MicrosecondsF(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond) + 0.5);
}

// Converts a duration back to floating-point seconds (for reporting).
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// The time it takes to move `bytes` bytes at `bytes_per_second`.
constexpr SimDuration TransferTime(int64_t bytes, double bytes_per_second) {
  return SecondsF(static_cast<double>(bytes) / bytes_per_second);
}

// Renders a time as a human-readable string, e.g. "1.204s" or "318.2us".
std::string FormatDuration(SimDuration d);

}  // namespace ikdp

#endif  // SRC_SIM_TIME_H_
