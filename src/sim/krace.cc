#include "src/sim/krace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/kern/ctx.h"

namespace ikdp {

namespace krace_internal {
bool g_enabled = false;
}  // namespace krace_internal

namespace {

// splitmix64: a well-mixed 64-bit permutation, enough to make the perturbed
// tie-break order look unrelated to insertion order while staying a strict
// total order per seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

KraceDetector::Mode ModeFromEnv() {
  const char* v = std::getenv("IKDP_KRACE");
  if (v == nullptr) {
    return KraceDetector::Mode::kOff;
  }
  if (std::strcmp(v, "collect") == 0) {
    return KraceDetector::Mode::kCollect;
  }
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "abort") == 0) {
    return KraceDetector::Mode::kAbort;
  }
  return KraceDetector::Mode::kOff;
}

const char* AccessKindName(KraceAccess k) {
  switch (k) {
    case KraceAccess::kRead:
      return "read";
    case KraceAccess::kWrite:
      return "write";
    case KraceAccess::kCommute:
      return "commute";
  }
  return "?";
}

}  // namespace

size_t KraceDetector::FieldKeyHash::operator()(const FieldKey& k) const {
  // FNV-1a over the field name (string literals for the same field may have
  // distinct addresses across translation units), mixed with the object.
  uint64_t h = 1469598103934665603ull;
  for (const char* p = k.field; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 1099511628211ull;
  }
  return static_cast<size_t>(Mix64(h ^ reinterpret_cast<uintptr_t>(k.obj)));
}

bool KraceDetector::FieldKeyEq::operator()(const FieldKey& a, const FieldKey& b) const {
  return a.obj == b.obj && std::strcmp(a.field, b.field) == 0;
}

KraceDetector::KraceDetector() { SetMode(ModeFromEnv()); }

void KraceDetector::SetMode(Mode mode) {
  mode_ = mode;
  krace_internal::g_enabled = (mode_ != Mode::kOff);
  Reset();
}

void KraceDetector::Reset() {
  in_event_ = false;
  cur_ = 0;
  now_ = -1;
  cur_anc_.clear();
  pending_anc_.clear();
  channels_.clear();
  table_.clear();
  races_.clear();
}

std::string KraceDetector::Race::Describe() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s @%p at t=%lld ns: %s in event #%llu (%s, %s:%d) is "
                "concurrent with %s in event #%llu (%s, %s:%d) — no "
                "happens-before chain; a legal tie-break permutation reorders "
                "them",
                field, obj, static_cast<long long>(time),
                AccessKindName(prior.kind), static_cast<unsigned long long>(prior.event),
                prior.ctx, prior.file, prior.line, AccessKindName(current.kind),
                static_cast<unsigned long long>(current.event), current.ctx, current.file,
                current.line);
  return std::string(buf);
}

void KraceDetector::OnSchedule(EventId child, SimTime when) {
  if (!in_event_ || when != now_) {
    // Cross-timestamp scheduling is ordered by the clock; host-side
    // scheduling has no executing-event creator.  Neither needs an edge.
    return;
  }
  // Same-timestamp child: it inherits the creator's same-timestamp ancestor
  // chain plus the creator itself.
  std::vector<EventId>& anc = pending_anc_[child];
  anc.assign(cur_anc_.begin(), cur_anc_.end());
  anc.push_back(cur_);
}

void KraceDetector::OnEventBegin(EventId id, SimTime when) {
  if (when != now_) {
    if (when < now_) {
      // The clock went backwards: a new simulation started in this process
      // without the Simulator-constructor Reset (e.g. a hand-driven
      // EventQueue).  Everything recorded belongs to the previous run, whose
      // event ids this run will reuse; drop it all rather than alias it.
      table_.clear();
      channels_.clear();
    }
    // Time advanced: everything recorded for the previous timestamp is
    // ordered before this event by the clock.  Same-timestamp children
    // always execute (or are cancelled) before time advances, so the
    // pending map cannot carry live entries across timestamps.
    now_ = when;
    pending_anc_.clear();
  }
  in_event_ = true;
  cur_ = id;
  cur_anc_.clear();
  auto it = pending_anc_.find(id);
  if (it != pending_anc_.end()) {
    cur_anc_.insert(it->second.begin(), it->second.end());
    pending_anc_.erase(it);
  }
}

void KraceDetector::OnEventEnd() {
  in_event_ = false;
  cur_ = 0;
  cur_anc_.clear();
}

void KraceDetector::OnCancel(EventId id) { pending_anc_.erase(id); }

void KraceDetector::ChannelRelease(const void* chan) {
  if (!in_event_) {
    return;  // host-side publication is ordered with everything
  }
  ChannelState& st = channels_[chan];
  if (st.time != now_) {
    st.time = now_;
    st.releasers.clear();
  }
  // The acquirer is ordered after everything that happens-before the
  // release, not just the releasing event itself: record cur_'s
  // same-timestamp ancestors too, so X -schedule-> A -channel-> B composes
  // into X happens-before B.  Duplicates are harmless (ChannelAcquire
  // inserts into a set).
  st.releasers.push_back(cur_);
  st.releasers.insert(st.releasers.end(), cur_anc_.begin(), cur_anc_.end());
}

void KraceDetector::ChannelAcquire(const void* chan) {
  if (!in_event_) {
    return;
  }
  auto it = channels_.find(chan);
  if (it == channels_.end() || it->second.time != now_) {
    return;  // releases at earlier timestamps are clock-ordered already
  }
  cur_anc_.insert(it->second.releasers.begin(), it->second.releasers.end());
}

void KraceDetector::OnAccess(const void* obj, const char* field, KraceAccess kind,
                             const char* file, int line) {
  if (mode_ == Mode::kOff || !in_event_) {
    // Host code (setup, verification) runs strictly between events on one
    // thread; it cannot be reordered against anything.
    return;
  }
  FieldSlot& slot = table_[FieldKey{obj, field}];
  if (slot.time != now_) {
    slot.time = now_;
    slot.acc.clear();
  }
  // One record per (event, kind): repeated identical accesses within one
  // event add nothing (program order covers them) and would duplicate race
  // reports.
  for (const AccessRec& r : slot.acc) {
    if (r.event == cur_ && r.kind == kind) {
      return;
    }
  }
  const AccessRec cur{cur_, kind, ExecContextName(CurrentExecContext()), file, line};
  for (const AccessRec& r : slot.acc) {
    if (r.event == cur_) {
      continue;  // same event, different kind: program-ordered
    }
    const bool conflicting =
        (kind == KraceAccess::kWrite || r.kind == KraceAccess::kWrite ||
         (kind == KraceAccess::kCommute) != (r.kind == KraceAccess::kCommute));
    if (!conflicting) {
      continue;  // read/read, or two commuting updates
    }
    if (cur_anc_.count(r.event) > 0) {
      continue;  // schedule/channel chain orders r before us
    }
    ReportRace(FieldKey{obj, field}, r, cur);
  }
  slot.acc.push_back(cur);
}

void KraceDetector::ReportRace(const FieldKey& key, const AccessRec& prior,
                               const AccessRec& cur) {
  Race race;
  race.obj = key.obj;
  race.field = key.field;
  race.time = now_;
  race.prior = Site{prior.event, prior.ctx, prior.file, prior.line, prior.kind};
  race.current = Site{cur.event, cur.ctx, cur.file, cur.line, cur.kind};
  if (mode_ == Mode::kAbort) {
    ContractAbort("krace: %s", race.Describe().c_str());
  }
  // Collect mode: keep a bounded report (a single hot pair could otherwise
  // flood the run).
  if (races_.size() < 256) {
    races_.push_back(std::move(race));
  }
}

uint64_t KraceDetector::TieKey(EventId id) const {
  if (seed_ == 0) {
    return id;  // historical behaviour: insertion order
  }
  return Mix64(id ^ seed_);
}

KraceDetector& Krace() {
  static KraceDetector detector;
  return detector;
}

}  // namespace ikdp
