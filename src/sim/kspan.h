// kspan: request-scoped causal spans for the simulated kernel.
//
// A span names one unit of causally-related work — a client request, one
// splice stream, one ring op — and every span has a parent, so spans form
// trees rooted at requests.  The span machinery answers the question the
// aggregate telemetry (src/metrics) cannot: WHICH request paid for this
// microsecond of interrupt time, this disk transfer, this softclock tick?
//
// Two pieces, both host-side only (attaching them can never change a single
// simulated nanosecond — the perturbation harness proves it):
//
//  * The CURSOR — a global (single host thread, single simulated CPU)
//    (subsystem, span) pair naming the work the machine is doing right now.
//    KspanScope pushes/pops it RAII-style, mirroring ContextGuard.  The
//    scheduler pushes the running process's span around every coroutine
//    resume; interrupt bodies run under the tag captured when the interrupt
//    was raised; handlers refine it (splice, disk, net, aio).  TraceLog
//    stamps every record with the cursor's span, and the CpuSystem ledger
//    attributes every charge to (context, subsystem, span) — summing exactly
//    to the existing totals (CheckAttributionClosure).
//
//    CAUTION: a KspanScope is a host-stack object.  Coroutines must NOT hold
//    one across co_await — the cursor is saved/restored in strict LIFO
//    order.  Process code sets Process::span (via CpuSystem::SetSpan)
//    instead; the scheduler re-pushes it on every resume.
//
//  * The COLLECTOR — an optional global recorder of span begin/end pairs.
//    When detached (the default) KspanBegin() degenerates to "inherit the
//    cursor's span": descriptors still ride their requester's span and
//    attribution still groups by request, with zero allocation.  When
//    attached, Begin mints fresh ids and the collector keeps the whole tree
//    for export (folded stacks, Chrome span tracks, critical-path
//    breakdowns — src/metrics/span_trace.h).
//
// Lifecycle discipline (checked by KspanCollector::CheckBalanced and the
// fault-matrix suite): every minted span is ended EXACTLY once.  Error
// paths end spans with error=true; they never leak an open span.

#ifndef SRC_SIM_KSPAN_H_
#define SRC_SIM_KSPAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kern/ctx.h"
#include "src/sim/time.h"

namespace ikdp {

// Span identity.  0 means "no span" everywhere.
using SpanId = uint64_t;

inline constexpr SpanId kNoSpan = 0;

// What the machine is working on right now.  `subsystem` is a static string
// ("process", "splice", "disk", "net", "aio", "sched", ...); empty means
// untagged.
struct KspanCursor {
  const char* subsystem = "";
  SpanId span = kNoSpan;
};

// The current cursor.  Single host thread: one global is exact.
const KspanCursor& CurrentKspan();

// Overwrites the span of the CURRENT cursor in place (no push).  Used by
// CpuSystem::SetSpan so a process that re-labels itself mid-resume is
// reflected immediately; the enclosing KspanScope still restores whatever
// was current before it.
void KspanCursorSetSpan(SpanId span);

// RAII cursor push/pop, mirroring ContextGuard.  Nests; never hold across a
// coroutine suspension (see header comment).
class KspanScope {
 public:
  KspanScope(const char* subsystem, SpanId span);
  ~KspanScope();

  KspanScope(const KspanScope&) = delete;
  KspanScope& operator=(const KspanScope&) = delete;

 private:
  KspanCursor prev_;
};

// One node of a span tree.  `name` must be a string literal (static
// storage), like TraceRecord tags.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  const char* name = "";
  SimTime start = 0;
  SimTime end = -1;  // -1 while open
  int64_t a = 0;       // site-specific argument (serial, cookie, pid, ...)
  int64_t result = 0;  // site-specific result (bytes moved, errno, ...)
  bool error = false;

  bool open() const { return end < 0; }
};

// Host-side recorder of span trees.  All methods are host work: no simulated
// time, no events, no RNG.
class KspanCollector {
 public:
  KspanCollector() = default;

  KspanCollector(const KspanCollector&) = delete;
  KspanCollector& operator=(const KspanCollector&) = delete;

  // Mints a new span.  parent == kNoSpan makes a root (a request).  Begin
  // and End run in whatever context does the work — process syscalls,
  // interrupt completion handlers, softclock refills — and never block.
  IKDP_CTX_ANY SpanId Begin(SimTime t, const char* name, SpanId parent, int64_t arg = 0);

  // Ends a span exactly once.  Ending an unknown or already-ended id is a
  // lifecycle bug; it is counted (bad_ends) and reported by CheckBalanced
  // rather than aborting, so tests can assert on it.
  IKDP_CTX_ANY void End(SimTime t, SpanId id, int64_t result = 0, bool error = false);

  bool Known(SpanId id) const { return index_.count(id) > 0; }
  bool IsOpen(SpanId id) const;

  // Walks parent links to the root request span (id itself if orphaned).
  SpanId RootOf(SpanId id) const;

  const SpanRecord* Find(SpanId id) const;
  // All spans in mint order.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  uint64_t begun() const { return static_cast<uint64_t>(spans_.size()); }
  uint64_t ended() const { return ended_; }
  uint64_t bad_ends() const { return bad_ends_; }
  size_t open_count() const { return begun() - ended_; }

  // True when every begun span was ended exactly once and no End targeted an
  // unknown/closed span.  On failure fills `err` with the first offender.
  bool CheckBalanced(std::string* err) const;

 private:
  // Every context mints and ends spans (the same logically-concurrent
  // sharing the CpuSystem ledger has), so the whole record store is
  // guarded-by-any: host-only bookkeeping, but touched from process,
  // interrupt, and softclock work alike.
  std::vector<SpanRecord> spans_ IKDP_GUARDED_BY(any);
  std::unordered_map<SpanId, size_t> index_ IKDP_GUARDED_BY(any);  // id -> spans_ slot
  SpanId next_ IKDP_GUARDED_BY(any) = 0;
  uint64_t ended_ IKDP_GUARDED_BY(any) = 0;
  uint64_t bad_ends_ IKDP_GUARDED_BY(any) = 0;
};

// The attached collector, or nullptr (the default).  Attach before a run,
// detach after; mid-run detaching orphans open spans.
KspanCollector* Kspan();
void AttachKspan(KspanCollector* collector);

// Convenience used by kernel code that mints child spans of whatever is
// current: with a collector attached, mints a span parented to the cursor
// and returns its fresh id; detached, returns the cursor's span unchanged
// (work inherits its requester's identity).  The caller must remember
// whether it owns the id (KspanOwned at mint time) and only KspanEnd ids it
// owns.
IKDP_CTX_ANY SpanId KspanBegin(SimTime t, const char* name, int64_t arg = 0);
inline bool KspanOwned() { return Kspan() != nullptr; }
IKDP_CTX_ANY void KspanEnd(SimTime t, SpanId id, int64_t result = 0, bool error = false);

}  // namespace ikdp

#endif  // SRC_SIM_KSPAN_H_
