// The BSD kernel callout list, as used by the splice write side.
//
// In 4.2BSD-derived kernels (including Ultrix 4.2A), timeout(fn, arg, ticks)
// places an entry on the callout list; the softclock interrupt, driven by the
// hardware clock at `hz` ticks per second, walks expired entries at software
// interrupt priority.  The splice implementation "places a reference to the
// write handler at the head of the system callout list" (paper Section 5.2.2)
// so the write side runs at the *next softclock tick* rather than in the disk
// interrupt handler itself, decoupling the I/O access periods of the source
// and destination devices.
//
// This model exposes both the classic timeout()/untimeout() interface and the
// head-of-list scheduling splice relies on.  Callouts fire only on tick
// boundaries, which matters for pacing: scheduling at the head of the list
// still delays execution to the next tick edge.

#ifndef SRC_SIM_CALLOUT_H_
#define SRC_SIM_CALLOUT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/kern/ctx.h"
#include "src/kern/lock.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "callout" onto the
// SpinLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define callout_ikdp_tsa_cap , lock_
#endif

namespace ikdp {

// Identifies a pending callout so it can be removed with Untimeout().
using CalloutId = uint64_t;

inline constexpr CalloutId kInvalidCalloutId = 0;

class CalloutTable {
 public:
  // `hz` is the clock interrupt frequency.  Ultrix on the DECstation 5000
  // used hz = 256.
  CalloutTable(Simulator* sim, int hz);

  CalloutTable(const CalloutTable&) = delete;
  CalloutTable& operator=(const CalloutTable&) = delete;

  // Classic BSD timeout(): run `fn` after `ticks` clock ticks (>= 1).
  IKDP_CTX_ANY CalloutId Timeout(std::function<void()> fn, int ticks);

  // Schedules `fn` at the head of the callout list: it fires at the next
  // softclock tick, before any other entry expiring on that tick.
  IKDP_CTX_ANY CalloutId ScheduleHead(std::function<void()> fn);

  // Removes a pending callout.  Returns true if it had not yet fired.
  IKDP_CTX_ANY bool Untimeout(CalloutId id);

  // Duration of one clock tick.
  SimDuration TickDuration() const { return tick_; }

  int hz() const { return hz_; }

  // Number of callouts currently pending (for tests).
  size_t Pending() const {
    SpinGuard g(lock_);
    return pending_.size();
  }

  // Total softclock activations (for stats).
  uint64_t softclock_runs() const { return softclock_runs_; }

  // Optional hook invoked with the total run duration each time softclock
  // dispatches a batch of callouts; the kernel scheduler uses this to charge
  // softclock CPU time.  The int argument is the number of callouts run.
  void set_softclock_observer(std::function<void(int)> obs) { observer_ = std::move(obs); }

  // Attaches a trace log recording kCalloutArm / kSoftclockRun events
  // (nullptr detaches; default off).  Kernel::AttachTrace wires this.
  void set_trace(TraceLog* trace) { trace_ = trace; }

 private:
  struct Entry {
    CalloutId id;
    std::function<void()> fn;
    bool head;  // head-of-list entries run before FIFO entries on the tick
  };

  // The absolute time of the next tick edge strictly after `now`.
  SimTime NextTickAfter(SimTime now) const;

  // Makes sure a softclock event is scheduled for tick time `when`.
  // Called with the callout lock held (IKDP_REQUIRES seeds the kcheck
  // entry-held fixpoint and becomes requires_capability under TSA).
  IKDP_REQUIRES(callout) void ArmSoftclock(SimTime when);

  // Runs all entries expiring at tick `when` at softclock level.
  IKDP_CTX_SOFTCLOCK void RunTick(SimTime when);

  Simulator* sim_;
  int hz_;
  SimDuration tick_;
  // The callout-wheel lock: innermost leaf of the hierarchy (docs/klock.md)
  // so armers may hold their own structure's lock across Timeout /
  // ScheduleHead.  RunTick detaches the expired bucket under the lock and
  // runs the handlers after release — handlers re-arm.  The `callout`
  // ordering channel still carries the arm -> run happens-before edge for
  // krace.  `mutable` lets const accessors (Pending) lock.
  mutable SpinLock lock_ IKDP_LOCK_RANK(callout, 90) = SpinLock("callout", 90);
  // tick time -> entries expiring on that tick, in insertion order (head
  // entries are prepended).  Armed/filled from any context, drained by
  // RunTick at softclock.
  std::map<SimTime, std::vector<Entry>> buckets_ IKDP_GUARDED_BY(lock:callout);
  std::map<SimTime, EventId> armed_ IKDP_GUARDED_BY(lock:callout);
  std::map<CalloutId, SimTime> pending_ IKDP_GUARDED_BY(lock:callout);
  CalloutId next_id_ IKDP_GUARDED_BY(lock:callout) = 0;
  uint64_t softclock_runs_ = 0;
  std::function<void(int)> observer_;
  TraceLog* trace_ = nullptr;
};

}  // namespace ikdp

#endif  // SRC_SIM_CALLOUT_H_
