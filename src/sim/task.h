// Minimal C++20 coroutine support for simulated processes.
//
// Simulated user programs (cp, scp, the CPU-bound test program, the movie
// player) are written as coroutines so they read like the straight-line C
// programs they model.  A coroutine suspends whenever the program would
// block in a real kernel (syscall CPU charge, disk wait, sleep()); the
// kernel scheduler resumes it when the simulated process is dispatched.
//
// Task<T> is a lazily-started awaitable coroutine with continuation chaining
// (symmetric transfer), so syscalls can themselves be coroutines awaited by
// the process body.  Resumption is always driven from simulator event
// context, never re-entrantly, which the kernel scheduler enforces.
//
// Lifetime: a Task owns its coroutine frame.  Nested frames are owned by the
// Task objects living in their parent frames, so destroying a root task
// tears down the whole stack of suspended coroutines.  The kernel only
// destroys a process after its root task completes (processes run to exit),
// so no external completion callback is left dangling.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace ikdp {

template <typename T>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::function<void()> on_done;  // set only on root (detached) tasks
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.on_done) {
        p.on_done();
      }
      if (p.continuation) {
        return p.continuation;
      }
      return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};

  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

// An awaitable, lazily-started coroutine returning T.
template <typename T = void>
class Task {
 public:
  using promise_type = internal::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Starts a detached (root) task.  `on_done` fires when the coroutine runs
  // to completion; the Task object must stay alive until then (it owns the
  // frame).
  void Start(std::function<void()> on_done = nullptr) {
    assert(handle_ && !started_);
    started_ = true;
    handle_.promise().on_done = std::move(on_done);
    handle_.resume();
  }

  // --- awaitable interface (for `co_await subtask`) ---

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }

  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    started_ = true;
    return handle_;  // symmetric transfer: start the child now
  }

  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) {
      std::rethrow_exception(p.exception);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(p.value);
    }
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
  bool started_ = false;
};

namespace internal {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal

// Suspends the awaiting coroutine and hands its handle to `arm`, which must
// arrange for the handle to be resumed later (typically via a simulator
// event).  Example:
//
//   co_await SuspendAndCall([&](std::coroutine_handle<> h) {
//     sim.After(Milliseconds(5), [h] { h.resume(); });
//   });
class SuspendAndCall {
 public:
  explicit SuspendAndCall(std::function<void(std::coroutine_handle<>)> arm)
      : arm_(std::move(arm)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { arm_(h); }
  void await_resume() const noexcept {}

 private:
  std::function<void(std::coroutine_handle<>)> arm_;
};

}  // namespace ikdp

#endif  // SRC_SIM_TASK_H_
