#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

EventId EventQueue::Schedule(SimTime when, std::function<void()> fn) {
  const EventId id = ++next_seq_;
  heap_.push(Entry{when, id, Krace().TieKey(id), std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // An id is cancellable only while it is live (scheduled, not yet fired and
  // not already cancelled).
  if (live_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty() && "NextTime() on empty EventQueue");
  return heap_.top().when;
}

std::function<void()> EventQueue::PopNext(SimTime* when, EventId* id) {
  SkipCancelled();
  assert(!heap_.empty() && "PopNext() on empty EventQueue");
  // priority_queue::top() returns a const ref; moving the closure out
  // requires a const_cast.  The entry is popped immediately afterwards, so
  // the moved-from state is never observed.
  Entry& top = const_cast<Entry&>(heap_.top());
  std::function<void()> fn = std::move(top.fn);
  *when = top.when;
  if (id != nullptr) {
    *id = top.id;
  }
  live_.erase(top.id);
  heap_.pop();
  return fn;
}

}  // namespace ikdp
